// Tests for the quantile-based adaptive Ψ threshold learner (the paper's
// future-work extension) and its integration into Gurita.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/adaptive_thresholds.h"
#include "core/gurita.h"
#include "flowsim/simulator.h"
#include "topology/fattree.h"

namespace gurita {
namespace {

TEST(AdaptiveThresholds, StartsEverythingAtHighestPriority) {
  const AdaptiveThresholds t(4);
  EXPECT_EQ(t.level(0.0), 0);
  EXPECT_EQ(t.level(1e12), 0);  // no observations yet
}

TEST(AdaptiveThresholds, LearnsQuartileBoundaries) {
  AdaptiveThresholds t(4, /*capacity=*/1024, /*refresh_every=*/1);
  for (int i = 1; i <= 100; ++i) t.observe(i);
  ASSERT_EQ(t.boundaries().size(), 3u);
  // Quantiles of 1..100 at 1/4, 2/4, 3/4.
  EXPECT_NEAR(t.boundaries()[0], 26.0, 1.0);
  EXPECT_NEAR(t.boundaries()[1], 51.0, 1.0);
  EXPECT_NEAR(t.boundaries()[2], 76.0, 1.0);
  EXPECT_EQ(t.level(10.0), 0);
  EXPECT_EQ(t.level(40.0), 1);
  EXPECT_EQ(t.level(60.0), 2);
  EXPECT_EQ(t.level(90.0), 3);
}

TEST(AdaptiveThresholds, LevelIsMonotone) {
  AdaptiveThresholds t(8, 512, 1);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) t.observe(rng.uniform(0, 1e6));
  int prev = 0;
  for (double x = 0; x <= 1e6; x += 12345.0) {
    const int lvl = t.level(x);
    EXPECT_GE(lvl, prev);
    EXPECT_LT(lvl, 8);
    prev = lvl;
  }
}

TEST(AdaptiveThresholds, AdaptsToDistributionShift) {
  AdaptiveThresholds t(2, /*capacity=*/64, /*refresh_every=*/8);
  for (int i = 0; i < 64; ++i) t.observe(10.0);
  const double small_regime = t.boundaries()[0];
  // Shift the workload's Ψ scale by 100x; the boundary follows.
  for (int i = 0; i < 64; ++i) t.observe(1000.0);
  EXPECT_GT(t.boundaries()[0], small_regime);
}

TEST(AdaptiveThresholds, SingleQueueAlwaysZero) {
  AdaptiveThresholds t(1);
  t.observe(5.0);
  EXPECT_EQ(t.level(1e9), 0);
}

TEST(AdaptiveThresholds, CountsObservations) {
  AdaptiveThresholds t(4);
  EXPECT_EQ(t.observations(), 0u);
  t.observe(1.0);
  t.observe(2.0);
  EXPECT_EQ(t.observations(), 2u);
}

TEST(AdaptiveThresholds, ReservoirForgetsOldRegime) {
  AdaptiveThresholds t(2, /*capacity=*/16, /*refresh_every=*/1);
  for (int i = 0; i < 16; ++i) t.observe(1.0);
  for (int i = 0; i < 16; ++i) t.observe(100.0);  // fully overwrites ring
  EXPECT_DOUBLE_EQ(t.boundaries()[0], 100.0);
}

TEST(AdaptiveThresholds, RejectsBadArgs) {
  EXPECT_THROW(AdaptiveThresholds(0), std::logic_error);
  EXPECT_THROW(AdaptiveThresholds(4, 2), std::logic_error);
  EXPECT_THROW(AdaptiveThresholds(4, 16, 0), std::logic_error);
  AdaptiveThresholds t(4);
  EXPECT_THROW(t.observe(-1.0), std::logic_error);
  EXPECT_THROW(t.level(-1.0), std::logic_error);
}

TEST(AdaptiveGurita, CompletesWorkloadAndStaysComparable) {
  const FatTree fabric(FatTree::Config{4, 100.0});
  auto submit_jobs = [&](Simulator& sim) {
    for (int i = 0; i < 12; ++i) {
      JobSpec job;
      CoflowSpec c1, c2;
      c1.flows.push_back(FlowSpec{i % 16, (i + 5) % 16, 100.0 + 40.0 * i});
      c2.flows.push_back(FlowSpec{(i + 5) % 16, (i + 9) % 16, 60.0});
      job.coflows = {c1, c2};
      job.deps = {{}, {0}};
      job.arrival_time = 0.25 * i;
      sim.submit(job);
    }
  };

  GuritaScheduler::Config fixed_config;
  fixed_config.first_threshold = 75.0;
  fixed_config.multiplier = 4.0;
  fixed_config.delta = 0.1;
  GuritaScheduler fixed(fixed_config);
  Simulator sim_fixed(fabric, fixed);
  submit_jobs(sim_fixed);
  const SimResults r_fixed = sim_fixed.run();

  GuritaScheduler::Config adaptive_config = fixed_config;
  adaptive_config.adaptive_thresholds = true;
  GuritaScheduler adaptive(adaptive_config);
  Simulator sim_adaptive(fabric, adaptive);
  submit_jobs(sim_adaptive);
  const SimResults r_adaptive = sim_adaptive.run();

  ASSERT_EQ(r_adaptive.jobs.size(), r_fixed.jobs.size());
  // Self-tuned thresholds should land within 2x of the hand-tuned ones on
  // this small mix (they need a few jobs to warm up).
  EXPECT_LT(r_adaptive.average_jct(), r_fixed.average_jct() * 2.0);
  EXPECT_GT(r_adaptive.average_jct(), r_fixed.average_jct() * 0.5);
}

}  // namespace
}  // namespace gurita
