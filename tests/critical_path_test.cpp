// Unit tests for critical-path analysis: longest weighted leaf→root path,
// critical-member marking, and the JCT lower bound (§III.A).
#include <gtest/gtest.h>

#include "coflow/critical_path.h"
#include "coflow/shapes.h"
#include "common/rng.h"

namespace gurita {
namespace {

JobSpec job_with(const shapes::Deps& deps, std::vector<Bytes> max_sizes) {
  JobSpec job;
  job.deps = deps;
  for (Bytes s : max_sizes) {
    CoflowSpec c;
    c.flows.push_back(FlowSpec{0, 1, s});
    job.coflows.push_back(c);
  }
  return job;
}

TEST(CriticalPath, SingleCoflow) {
  const JobSpec job = job_with(shapes::single(), {10.0});
  const auto info = compute_critical_path(job, {3.0});
  EXPECT_DOUBLE_EQ(info.length, 3.0);
  EXPECT_TRUE(info.on_critical[0]);
}

TEST(CriticalPath, ChainSumsCosts) {
  const JobSpec job = job_with(shapes::chain(3), {1.0, 1.0, 1.0});
  const auto info = compute_critical_path(job, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(info.length, 6.0);
  EXPECT_TRUE(info.on_critical[0]);
  EXPECT_TRUE(info.on_critical[1]);
  EXPECT_TRUE(info.on_critical[2]);
}

TEST(CriticalPath, DiamondPicksHeavierBranch) {
  // 3 depends on 1 and 2; both depend on 0. Branch via 1 is heavier.
  JobSpec job = job_with({{}, {0}, {0}, {1, 2}}, {1, 1, 1, 1});
  const auto info = compute_critical_path(job, {1.0, 5.0, 2.0, 1.0});
  EXPECT_DOUBLE_EQ(info.length, 7.0);  // 0 -> 1 -> 3
  EXPECT_TRUE(info.on_critical[0]);
  EXPECT_TRUE(info.on_critical[1]);
  EXPECT_FALSE(info.on_critical[2]);
  EXPECT_TRUE(info.on_critical[3]);
}

TEST(CriticalPath, TiedBranchesBothCritical) {
  JobSpec job = job_with({{}, {0}, {0}, {1, 2}}, {1, 1, 1, 1});
  const auto info = compute_critical_path(job, {1.0, 2.0, 2.0, 1.0});
  EXPECT_TRUE(info.on_critical[1]);
  EXPECT_TRUE(info.on_critical[2]);
}

TEST(CriticalPath, IndependentCoflowsOnlyLargestCritical) {
  JobSpec job = job_with({{}, {}, {}}, {1, 1, 1});
  const auto info = compute_critical_path(job, {1.0, 4.0, 2.0});
  EXPECT_DOUBLE_EQ(info.length, 4.0);
  EXPECT_FALSE(info.on_critical[0]);
  EXPECT_TRUE(info.on_critical[1]);
  EXPECT_FALSE(info.on_critical[2]);
}

TEST(CriticalPath, ParallelChainsLongestWins) {
  // Two chains of 2; second chain heavier.
  JobSpec job = job_with(shapes::parallel_chains(2, 2), {1, 1, 1, 1});
  const auto info = compute_critical_path(job, {1.0, 1.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(info.length, 6.0);
  EXPECT_FALSE(info.on_critical[0]);
  EXPECT_FALSE(info.on_critical[1]);
  EXPECT_TRUE(info.on_critical[2]);
  EXPECT_TRUE(info.on_critical[3]);
}

TEST(CriticalPath, ZeroCostsAllowed) {
  const JobSpec job = job_with(shapes::chain(2), {1.0, 1.0});
  const auto info = compute_critical_path(job, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(info.length, 0.0);
}

TEST(CriticalPath, RejectsWrongCostSize) {
  const JobSpec job = job_with(shapes::chain(2), {1.0, 1.0});
  EXPECT_THROW(compute_critical_path(job, {1.0}), std::logic_error);
}

TEST(CriticalPath, RejectsNegativeCost) {
  const JobSpec job = job_with(shapes::chain(2), {1.0, 1.0});
  EXPECT_THROW(compute_critical_path(job, {1.0, -1.0}), std::logic_error);
}

TEST(EstimatedCosts, UsesLargestFlowOverRate) {
  JobSpec job = job_with(shapes::single(), {100.0});
  job.coflows[0].flows.push_back(FlowSpec{2, 3, 40.0});
  const auto costs = estimated_cct_costs(job, 10.0);
  ASSERT_EQ(costs.size(), 1u);
  EXPECT_DOUBLE_EQ(costs[0], 10.0);  // 100 bytes at 10 B/s
}

TEST(EstimatedCosts, RejectsNonPositiveRate) {
  const JobSpec job = job_with(shapes::single(), {1.0});
  EXPECT_THROW(estimated_cct_costs(job, 0.0), std::logic_error);
}

TEST(JctLowerBound, ChainEqualsSumOfLargestFlows) {
  const JobSpec job = job_with(shapes::chain(3), {10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(jct_lower_bound(job, 10.0), 6.0);
}

// Property: the lower bound over random DAGs equals the longest path, is
// monotone in rate, and never exceeds total-bytes-at-line-rate.
class LowerBoundSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LowerBoundSeeds, BoundProperties) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.uniform_int(0, 8));
  const auto deps = shapes::random_dag(rng, n, 0.3);
  std::vector<Bytes> sizes;
  for (int i = 0; i < n; ++i) sizes.push_back(rng.uniform(1.0, 100.0));
  const JobSpec job = job_with(deps, sizes);

  const double lb_fast = jct_lower_bound(job, 100.0);
  const double lb_slow = jct_lower_bound(job, 10.0);
  EXPECT_GT(lb_fast, 0.0);
  EXPECT_NEAR(lb_slow, lb_fast * 10.0, 1e-9);

  // Bound can never exceed serializing every coflow's largest flow.
  double serial = 0;
  for (const auto& c : job.coflows) serial += c.max_flow_size() / 100.0;
  EXPECT_LE(lb_fast, serial + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, LowerBoundSeeds,
                         ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace gurita
