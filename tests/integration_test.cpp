// Cross-module integration tests: the full pipeline (workload -> fabric ->
// scheduler -> simulator -> metrics) for every scheduler, with invariants
// that must hold regardless of policy.
#include <gtest/gtest.h>

#include "coflow/critical_path.h"
#include "exp/experiment.h"
#include "exp/registry.h"

namespace gurita {
namespace {

ExperimentConfig tiny_experiment(StructureKind structure,
                                 ArrivalPattern arrivals) {
  ExperimentConfig config;
  config.fat_tree_k = 4;
  config.trace.num_jobs = 20;
  config.trace.structure = structure;
  config.trace.arrivals = arrivals;
  config.trace.mean_interarrival = 0.05;
  config.trace.max_width = 8;
  config.trace.seed = 21;
  // Keep the tiny fabric solvable: no category-VII monsters.
  config.trace.category_weights = {0.5, 0.3, 0.2, 0.0, 0.0, 0.0, 0.0};
  return config;
}

TEST(Registry, KnowsAllSchedulers) {
  EXPECT_EQ(scheduler_names().size(), 9u);
  for (const std::string& name : scheduler_names()) {
    const auto sched = make_scheduler(name);
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(sched->name(), name);
  }
}

TEST(Registry, RejectsUnknownName) {
  EXPECT_THROW(make_scheduler("orchestra"), std::logic_error);
}

// Every scheduler completes the identical workload; all results carry the
// same job population.
class AllSchedulers : public ::testing::TestWithParam<std::string> {};

TEST_P(AllSchedulers, CompletesTraceWorkload) {
  const ExperimentConfig config =
      tiny_experiment(StructureKind::kMixed, ArrivalPattern::kPoisson);
  const FatTree fabric(FatTree::Config{config.fat_tree_k, config.link_capacity});
  TraceConfig trace = config.trace;
  trace.num_hosts = fabric.num_hosts();
  const auto jobs = generate_trace(trace);

  const auto sched = make_scheduler(GetParam());
  const SimResults r = run_one(config, jobs, *sched);
  ASSERT_EQ(r.jobs.size(), jobs.size());
  for (const auto& j : r.jobs) {
    EXPECT_GE(j.finish, j.arrival);
    EXPECT_GT(j.jct(), 0.0);
  }
}

TEST_P(AllSchedulers, RespectsCriticalPathLowerBound) {
  const ExperimentConfig config =
      tiny_experiment(StructureKind::kTpcDs, ArrivalPattern::kPoisson);
  const FatTree fabric(FatTree::Config{config.fat_tree_k, config.link_capacity});
  TraceConfig trace = config.trace;
  trace.num_hosts = fabric.num_hosts();
  const auto jobs = generate_trace(trace);

  const auto sched = make_scheduler(GetParam());
  const SimResults r = run_one(config, jobs, *sched);
  // Results arrive ordered by job id == submission order.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double bound = jct_lower_bound(jobs[i], config.link_capacity);
    EXPECT_GE(r.jobs[i].jct(), bound - 1e-6)
        << GetParam() << " beat the critical-path bound on job " << i;
  }
}

TEST_P(AllSchedulers, CompletesBurstyWorkload) {
  const ExperimentConfig config =
      tiny_experiment(StructureKind::kFbTao, ArrivalPattern::kBursty);
  const FatTree fabric(FatTree::Config{config.fat_tree_k, config.link_capacity});
  TraceConfig trace = config.trace;
  trace.num_hosts = fabric.num_hosts();
  const auto jobs = generate_trace(trace);

  const auto sched = make_scheduler(GetParam());
  const SimResults r = run_one(config, jobs, *sched);
  EXPECT_EQ(r.jobs.size(), jobs.size());
}

INSTANTIATE_TEST_SUITE_P(Schedulers, AllSchedulers,
                         ::testing::ValuesIn(scheduler_names()));

TEST(CompareSchedulers, SharesIdenticalWorkload) {
  const ExperimentConfig config =
      tiny_experiment(StructureKind::kTpcDs, ArrivalPattern::kPoisson);
  const ComparisonResult result =
      compare_schedulers(config, {"pfs", "gurita"});
  ASSERT_EQ(result.collectors.size(), 2u);
  EXPECT_EQ(result.collectors.at("pfs").total_jobs(),
            result.collectors.at("gurita").total_jobs());
  EXPECT_GT(result.improvement("gurita", "pfs"), 0.0);
}

TEST(CompareSchedulers, ImprovementIsReciprocal) {
  const ExperimentConfig config =
      tiny_experiment(StructureKind::kFbTao, ArrivalPattern::kPoisson);
  const ComparisonResult result =
      compare_schedulers(config, {"pfs", "gurita"});
  const double a = result.improvement("gurita", "pfs");
  const double b = result.improvement("pfs", "gurita");
  EXPECT_NEAR(a * b, 1.0, 1e-9);
}

TEST(CompareSchedulers, UnknownNameThrows) {
  const ExperimentConfig config =
      tiny_experiment(StructureKind::kMixed, ArrivalPattern::kPoisson);
  const ComparisonResult result = compare_schedulers(config, {"pfs"});
  EXPECT_THROW(result.improvement("gurita", "pfs"), std::logic_error);
}

TEST(Scenarios, TraceScenarioDefaults) {
  const ExperimentConfig config =
      trace_scenario(StructureKind::kTpcDs, 100, 5);
  EXPECT_EQ(config.fat_tree_k, 8);
  EXPECT_EQ(config.trace.num_jobs, 100);
  EXPECT_EQ(config.trace.arrivals, ArrivalPattern::kPoisson);
  EXPECT_EQ(config.trace.structure, StructureKind::kTpcDs);
}

TEST(Scenarios, BurstyScenarioUsesPaperSpacing) {
  const ExperimentConfig config =
      bursty_scenario(StructureKind::kFbTao, 100, 5);
  EXPECT_EQ(config.trace.arrivals, ArrivalPattern::kBursty);
  EXPECT_DOUBLE_EQ(config.trace.burst_spacing, 2e-6);  // 2 µs (§V)
}

// The headline qualitative claim at test scale: on a multi-stage mix with
// contention, Gurita's average JCT beats the PFS baseline and is not far
// from the clairvoyant GuritaPlus.
TEST(HeadlineClaims, GuritaBeatsPfsOnMultiStageMix) {
  ExperimentConfig config =
      tiny_experiment(StructureKind::kTpcDs, ArrivalPattern::kPoisson);
  config.trace.num_jobs = 40;
  config.trace.mean_interarrival = 0.02;  // contention
  const ComparisonResult result =
      compare_schedulers(config, {"pfs", "gurita"});
  EXPECT_GT(result.improvement("gurita", "pfs"), 1.0);
}

TEST(CompareSchedulers, MultiSeedPoolsPopulations) {
  ExperimentConfig config =
      tiny_experiment(StructureKind::kFbTao, ArrivalPattern::kPoisson);
  config.trace.num_jobs = 8;
  const ComparisonResult pooled =
      compare_schedulers_seeds(config, {"pfs", "gurita"}, 3);
  EXPECT_EQ(pooled.collectors.at("pfs").total_jobs(), 24u);
  EXPECT_EQ(pooled.collectors.at("gurita").total_jobs(), 24u);
  // Per-job speedup works on the pooled, aligned populations.
  EXPECT_GT(pooled.per_job_speedup("gurita", "pfs"), 0.0);
}

TEST(CompareSchedulers, MultiSeedRejectsZeroSeeds) {
  ExperimentConfig config =
      tiny_experiment(StructureKind::kFbTao, ArrivalPattern::kPoisson);
  EXPECT_THROW(compare_schedulers_seeds(config, {"pfs"}, 0),
               std::logic_error);
}

TEST(HeadlineClaims, GuritaWithinRangeOfGuritaPlus) {
  ExperimentConfig config =
      tiny_experiment(StructureKind::kFbTao, ArrivalPattern::kPoisson);
  config.trace.num_jobs = 40;
  const ComparisonResult result =
      compare_schedulers(config, {"gurita", "gurita_plus"});
  const double ratio = result.improvement("gurita", "gurita_plus");
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.7);
}

}  // namespace
}  // namespace gurita
