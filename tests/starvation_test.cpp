// Unit tests for SPQ waiting-time modeling and WRR weight derivation, plus
// an end-to-end demonstration that WRR emulation prevents the starvation
// pure SPQ causes (§IV.B "Starvation Mitigation").
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/ava.h"
#include "core/starvation.h"
#include "flowsim/simulator.h"
#include "topology/fattree.h"

namespace gurita {
namespace {

// ------------------------------------------------------ spq_waiting_times

TEST(SpqWait, UniformLoadGrowsWithQueueIndex) {
  const auto w = spq_waiting_times({0.2, 0.2, 0.2, 0.2});
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);  // normalized
  for (std::size_t i = 1; i < w.size(); ++i) EXPECT_GT(w[i], w[i - 1]);
}

TEST(SpqWait, KnownTwoQueueValues) {
  // rho = {0.5, 0.25}: W0 ∝ 1/(1·0.5), W1 ∝ 1/(0.5·0.25).
  const auto w = spq_waiting_times({0.5, 0.25});
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_NEAR(w[1], (1.0 / (0.5 * 0.25)) / (1.0 / 0.5), 1e-12);  // = 4
}

TEST(SpqWait, ZeroLoadIsUnitWait) {
  const auto w = spq_waiting_times({0.0, 0.0});
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 1.0);
}

TEST(SpqWait, RejectsUnstableLoad) {
  EXPECT_THROW(spq_waiting_times({0.6, 0.5}), std::logic_error);
  EXPECT_THROW(spq_waiting_times({1.0}), std::logic_error);
}

TEST(SpqWait, RejectsNegativeLoadOrEmpty) {
  EXPECT_THROW(spq_waiting_times({-0.1}), std::logic_error);
  EXPECT_THROW(spq_waiting_times({}), std::logic_error);
}

// ------------------------------------------------------------ wrr_weights

TEST(WrrWeights, SumToOne) {
  const auto w = wrr_weights({1.0, 2.0, 8.0});
  EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-12);
}

TEST(WrrWeights, InverseOfWaitingTime) {
  const auto w = wrr_weights({1.0, 4.0});
  // 1/W: {1, 0.25} normalized -> {0.8, 0.2}.
  EXPECT_NEAR(w[0], 0.8, 1e-12);
  EXPECT_NEAR(w[1], 0.2, 1e-12);
}

TEST(WrrWeights, PreservesPriorityOrdering) {
  const auto wait = spq_waiting_times({0.3, 0.3, 0.3});
  const auto w = wrr_weights(wait);
  EXPECT_GT(w[0], w[1]);
  EXPECT_GT(w[1], w[2]);
  EXPECT_GT(w[2], 0.0);  // but nobody starves
}

TEST(WrrWeights, RejectsNonPositiveWait) {
  EXPECT_THROW(wrr_weights({1.0, 0.0}), std::logic_error);
  EXPECT_THROW(wrr_weights({}), std::logic_error);
}

// -------------------------------------------------- wrr_weights_from_demand

TEST(WrrFromDemand, ZeroDemandGivesEqualWeights) {
  const auto w = wrr_weights_from_demand({0.0, 0.0, 0.0});
  for (double x : w) EXPECT_NEAR(x, 1.0 / 3.0, 1e-12);
}

TEST(WrrFromDemand, ZeroDemandQueuesAmongBusyOnesKeepFiniteWeights) {
  // The Gurita WRR split always sees zero-demand queues (freshly released
  // traffic concentrates in queue 0): those queues get zero load but must
  // still receive a finite positive weight, the ladder must stay
  // non-increasing, and the min-queue-ratio floor must hold.
  const double ratio = 16.0;
  const auto w = wrr_weights_from_demand({2.0, 0.0, 1.0, 0.0}, 0.97, ratio);
  ASSERT_EQ(w.size(), 4u);
  double sum = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_TRUE(std::isfinite(w[i]));
    EXPECT_GT(w[i], 0.0);
    if (i > 0) {
      EXPECT_LE(w[i], w[i - 1] / ratio + 1e-12);
    }
    sum += w[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(WrrFromDemand, HeavierLowQueueStillDominates) {
  const auto w = wrr_weights_from_demand({10.0, 10.0, 10.0, 10.0});
  EXPECT_GT(w[0], w[3]);
  EXPECT_GT(w[3], 0.0);
}

TEST(WrrFromDemand, RejectsBadUtilization) {
  EXPECT_THROW(wrr_weights_from_demand({1.0}, 0.0), std::logic_error);
  EXPECT_THROW(wrr_weights_from_demand({1.0}, 1.0), std::logic_error);
}

TEST(WrrFromDemand, RejectsNegativeDemand) {
  EXPECT_THROW(wrr_weights_from_demand({-1.0}), std::logic_error);
}

// --------------------------------------------------------------- AVA here
// (small enough to share the binary)

TEST(Ava, NoObservationsIsConservative) {
  const AvaEstimator ava;
  EXPECT_FALSE(ava.likely_critical(1e12));
  EXPECT_DOUBLE_EQ(ava.mean(), 0.0);
}

TEST(Ava, MeanTracksObservations) {
  AvaEstimator ava;
  ava.observe(10.0);
  ava.observe(30.0);
  EXPECT_DOUBLE_EQ(ava.mean(), 20.0);
  EXPECT_EQ(ava.observations(), 2u);
}

TEST(Ava, AboveMeanIsLikelyCritical) {
  AvaEstimator ava;
  ava.observe(10.0);
  ava.observe(30.0);
  EXPECT_TRUE(ava.likely_critical(25.0));
  EXPECT_TRUE(ava.likely_critical(20.0));  // at the mean counts
  EXPECT_FALSE(ava.likely_critical(15.0));
}

TEST(Ava, RejectsNegativeObservation) {
  AvaEstimator ava;
  EXPECT_THROW(ava.observe(-1.0), std::logic_error);
}

// ------------------------------------------ end-to-end starvation behavior

/// Scheduler with two fixed tiers by job id parity; pure SPQ or WRR.
class TwoTierScheduler final : public Scheduler {
 public:
  explicit TwoTierScheduler(bool wrr) : wrr_(wrr) {}
  std::string name() const override { return "two_tier"; }
  void assign(Time now, const std::vector<SimFlow*>& active) override {
    (void)now;
    if (!wrr_) {
      for (SimFlow* f : active) {
        f->tier = f->job.value() % 2 == 0 ? 0 : 1;
        f->weight = 1.0;
      }
      return;
    }
    std::vector<double> demand(2, 0.0);
    for (SimFlow* f : active) demand[f->job.value() % 2] += 1.0;
    const auto weights = wrr_weights_from_demand(demand);
    for (SimFlow* f : active) {
      const std::size_t q = f->job.value() % 2;
      f->tier = 0;
      f->weight = std::max(weights[q] / std::max(demand[q], 1.0), 1e-9);
    }
  }

 private:
  bool wrr_;
};

TEST(StarvationEndToEnd, PureSpqStallsLowPriorityBehindBack11og) {
  const FatTree fabric(FatTree::Config{4, 100.0});
  // Job 1 (odd id -> low priority) contends with a steady stream of
  // high-priority jobs on the same links.
  auto build = [&](Scheduler& sched) {
    Simulator sim(fabric, sched);
    for (int i = 0; i < 6; ++i) {
      JobSpec high;
      high.arrival_time = i * 1.0;
      CoflowSpec c;
      c.flows.push_back(FlowSpec{0, 1, 100.0});
      high.coflows.push_back(c);
      high.deps = {{}};
      sim.submit(high);  // even ids 0,2,... wait: ids increment every submit
      JobSpec low;
      low.arrival_time = i * 1.0;
      CoflowSpec d;
      d.flows.push_back(FlowSpec{0, 1, 50.0});
      low.coflows.push_back(d);
      low.deps = {{}};
      sim.submit(low);
    }
    return sim.run();
  };

  TwoTierScheduler spq(false), wrr(true);
  const SimResults r_spq = build(spq);
  const SimResults r_wrr = build(wrr);

  // Low-priority job JCTs: under SPQ they wait for the entire high stream;
  // under WRR they progress (strictly earlier average finish).
  double spq_low = 0, wrr_low = 0;
  for (std::size_t i = 1; i < r_spq.jobs.size(); i += 2) {
    spq_low += r_spq.jobs[i].jct();
    wrr_low += r_wrr.jobs[i].jct();
  }
  EXPECT_LT(wrr_low, spq_low);
  // And under WRR the very first low job makes progress while the
  // high-priority stream is still arriving, finishing strictly earlier
  // than it does under pure SPQ.
  EXPECT_LT(r_wrr.jobs[1].finish, r_spq.jobs[1].finish);
}

}  // namespace
}  // namespace gurita
