// Differential harness for the incremental water-filling allocator
// (flowsim/allocator.h) against the from-scratch oracle. Three layers:
//
//  1. Lockstep fuzz at the allocator API: random synthetic event streams
//     (arrivals, finishes, in-place priority rewrites, capacity changes)
//     drive a RateAllocator, and after *every* event the full rate vector
//     and the changed-list are compared bitwise against a from-scratch
//     allocate_rates() on a clone of the same flow set.
//
//  2. Hand-computed dirty-frontier timelines: an arrival that splits a
//     bottleneck, a finish that relaxes one, and an external rate cap
//     (the straggler pattern) — each with AllocStats assertions proving
//     the untouched component was *not* re-solved.
//
//  3. End-to-end fuzz at the engine API: 200 randomized traces (fabrics,
//     schedulers, ramps, disruptions, fault plans) run through two full
//     Simulators that differ only in Config::allocator, asserting
//     bit-identical results including structured traces — and a sharded
//     sweep leg showing the pooled comparison matches the oracle's at 1,
//     2 and 8 workers.
//
// Failures print the trace seed for standalone reproduction.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exp/experiment.h"
#include "exp/registry.h"
#include "fault/plan.h"
#include "flowsim/allocator.h"
#include "flowsim/simulator.h"
#include "obs/trace.h"
#include "topology/big_switch.h"
#include "topology/ecmp.h"
#include "topology/fattree.h"
#include "workload/trace_gen.h"

namespace gurita {
namespace {

// ------------------------------------------------ allocator-level fuzz ---

/// Mutable flow population with stable addresses plus the incremental
/// allocator under test. The oracle side is re-derived from scratch on
/// every comparison, so it cannot inherit state to compare against.
struct LockstepHarness {
  const FatTree fabric;
  const EcmpRouter router;
  std::vector<Rate> caps;
  std::deque<SimFlow> store;  // stable addresses across growth
  std::vector<SimFlow*> active;
  RateAllocator alloc;
  std::uint64_t next_id = 0;

  explicit LockstepHarness(std::uint64_t salt)
      : fabric(FatTree::Config{4, 100.0}), router(fabric, salt) {
    const Topology& topo = fabric.topology();
    caps.resize(topo.link_count());
    for (std::size_t l = 0; l < topo.link_count(); ++l)
      caps[l] = topo.link(LinkId{l}).capacity;
    alloc.reset(&topo, AllocatorKind::kIncremental, /*flow_capacity=*/64);
  }

  SimFlow* arrive(Rng& rng) {
    const int src = static_cast<int>(rng.uniform_int(0, 15));
    int dst = static_cast<int>(rng.uniform_int(0, 15));
    if (dst == src) dst = (dst + 1) % 16;
    SimFlow f;
    f.id = FlowId{next_id++};
    f.size = 1000;
    f.remaining = 1000;
    f.path = router.route(f.id, src, dst);
    f.tier = static_cast<Tier>(rng.uniform_int(0, 2));
    f.weight = rng.uniform(0.1, 5.0);
    store.push_back(std::move(f));
    SimFlow* p = &store.back();
    active.push_back(p);
    alloc.add_flow(p);
    return p;
  }

  void finish(std::size_t idx) {
    alloc.remove_flow(active[idx]);
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(idx));
  }

  /// In-place scheduler rewrite: no allocator hook on purpose — the
  /// mirror scan must catch it.
  void reprioritize(Rng& rng, std::size_t idx) {
    SimFlow* f = active[idx];
    if (rng.next_double() < 0.5)
      f->tier = static_cast<Tier>((f->tier + 1) % 3);
    else
      f->weight = rng.uniform(0.1, 5.0);
  }

  void change_capacity(Rng& rng) {
    const LinkId l{rng.uniform_int(0, caps.size() - 1)};
    caps[l.value()] =
        fabric.topology().link(l).capacity * rng.uniform(0.05, 1.0);
    alloc.dirty_link(l);
  }

  /// Runs both allocators and asserts bitwise agreement on every rate and
  /// on the changed-list (content, order, old rates).
  void expect_lockstep() {
    // Clone before the incremental pass mutates stored rates: the clones
    // carry the previous allocation, which is exactly what the oracle's
    // changed-list is computed against.
    std::vector<SimFlow> clones;
    clones.reserve(active.size());
    for (const SimFlow* f : active) clones.push_back(*f);
    std::vector<SimFlow*> clone_ptrs;
    clone_ptrs.reserve(clones.size());
    for (SimFlow& f : clones) clone_ptrs.push_back(&f);

    std::vector<RateChange> want_changed;
    allocate_rates(fabric.topology(), caps, clone_ptrs, &want_changed);

    std::vector<RateChange> got_changed;
    alloc.allocate(caps, active, &got_changed, /*profiler=*/nullptr);

    ASSERT_EQ(active.size(), clones.size());
    for (std::size_t i = 0; i < active.size(); ++i)
      EXPECT_EQ(active[i]->rate, clones[i].rate)
          << "flow " << active[i]->id << " diverged from oracle";

    ASSERT_EQ(got_changed.size(), want_changed.size())
        << "changed-list length diverged";
    for (std::size_t i = 0; i < got_changed.size(); ++i) {
      EXPECT_EQ(got_changed[i].flow->id, want_changed[i].flow->id)
          << "changed-list entry " << i;
      EXPECT_EQ(got_changed[i].old_rate, want_changed[i].old_rate)
          << "changed-list entry " << i;
    }
  }
};

void run_lockstep_trial(std::uint64_t seed) {
  SCOPED_TRACE("reproduce with lockstep seed " + std::to_string(seed));
  Rng rng(seed);
  LockstepHarness h(rng.next_u64());
  const int events = 40 + static_cast<int>(rng.uniform_int(0, 60));
  for (int e = 0; e < events; ++e) {
    const double roll = rng.next_double();
    if (h.active.empty() || roll < 0.40) {
      h.arrive(rng);
    } else if (roll < 0.65) {
      h.finish(rng.uniform_int(0, h.active.size() - 1));
    } else if (roll < 0.80) {
      h.reprioritize(rng, rng.uniform_int(0, h.active.size() - 1));
    } else {
      h.change_capacity(rng);
    }
    h.expect_lockstep();
    if (::testing::Test::HasFailure()) return;
  }
}

// Every event — not just every quiescent point — must leave the
// incremental allocator bitwise in agreement with a from-scratch solve.
TEST(AllocatorDifferentialLockstep, FuzzEveryEventAgainstOracle) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    run_lockstep_trial(seed);
    if (::testing::Test::HasFailure()) {
      FAIL() << "lockstep fuzz diverged at seed " << seed
             << "; rerun run_lockstep_trial(" << seed << ") to debug";
    }
  }
}

// The allocation must be a pure function of (active set, capacities):
// reaching the same state through different dirty-event orders — including
// a detour through an extra flow — yields bitwise identical rates.
TEST(AllocatorDifferentialLockstep, AllocationIndependentOfEventOrder) {
  const FatTree fabric(FatTree::Config{4, 100.0});
  const EcmpRouter router(fabric, 7);
  std::vector<Rate> caps(fabric.topology().link_count());
  for (std::size_t l = 0; l < caps.size(); ++l)
    caps[l] = fabric.topology().link(LinkId{l}).capacity;

  auto make_population = [&] {
    std::vector<SimFlow> flows;
    for (std::uint64_t i = 0; i < 12; ++i) {
      SimFlow f;
      f.id = FlowId{i};
      f.size = 1000;
      f.remaining = 1000;
      f.path = router.route(f.id, static_cast<int>(i % 16),
                            static_cast<int>((i * 5 + 3) % 16));
      f.tier = static_cast<Tier>(i % 3);
      f.weight = 1.0 + static_cast<double>(i % 4);
      flows.push_back(std::move(f));
    }
    return flows;
  };

  // Order A: add 0..11 in id order, allocate once.
  std::vector<SimFlow> a = make_population();
  {
    RateAllocator alloc;
    alloc.reset(&fabric.topology(), AllocatorKind::kIncremental, a.size());
    std::vector<SimFlow*> active;
    for (SimFlow& f : a) active.push_back(&f);
    for (SimFlow* f : active) alloc.add_flow(f);
    alloc.allocate(caps, active, nullptr, nullptr);
  }

  // Order B: add in reverse, allocate after every arrival, then add and
  // remove a 13th flow that shares links with the others.
  std::vector<SimFlow> b = make_population();
  {
    RateAllocator alloc;
    alloc.reset(&fabric.topology(), AllocatorKind::kIncremental, 16);
    std::vector<SimFlow*> active;
    for (auto it = b.rbegin(); it != b.rend(); ++it) {
      active.push_back(&*it);
      alloc.add_flow(&*it);
      alloc.allocate(caps, active, nullptr, nullptr);
    }
    SimFlow extra;
    extra.id = FlowId{99};
    extra.size = 1000;
    extra.remaining = 1000;
    extra.path = router.route(extra.id, 0, 8);
    active.push_back(&extra);
    alloc.add_flow(&extra);
    alloc.allocate(caps, active, nullptr, nullptr);
    alloc.remove_flow(&extra);
    active.pop_back();
    alloc.allocate(caps, active, nullptr, nullptr);
  }

  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].rate, b[i].rate) << "flow " << i;
}

// Capacity and max-min optimality hold at every step of an incremental
// run, not just after a from-scratch solve (allocator_test.cpp covers the
// oracle; this covers the frontier path).
TEST(AllocatorDifferentialLockstep, IncrementalStepsRespectCapacityAndMaxMin) {
  Rng rng(11);
  LockstepHarness h(rng.next_u64());
  for (int e = 0; e < 60; ++e) {
    if (h.active.empty() || rng.next_double() < 0.5)
      h.arrive(rng);
    else
      h.finish(rng.uniform_int(0, h.active.size() - 1));
    h.alloc.allocate(h.caps, h.active, nullptr, nullptr);

    std::vector<double> used(h.caps.size(), 0.0);
    for (const SimFlow* f : h.active)
      for (LinkId l : f->path) used[l.value()] += f->rate;
    for (std::size_t l = 0; l < h.caps.size(); ++l)
      EXPECT_LE(used[l], h.caps[l] * (1 + 1e-9)) << "link " << l;
    for (const SimFlow* f : h.active) {
      EXPECT_GE(f->rate, 0.0);
      bool saturated = false;
      for (LinkId l : f->path)
        if (used[l.value()] >= h.caps[l.value()] * (1 - 1e-6))
          saturated = true;
      EXPECT_TRUE(saturated) << "flow " << f->id << " could be raised";
    }
  }
}

// -------------------------------------------- hand-computed timelines ---

/// Two disjoint host pairs through separate edge switches; pair 1 links
/// carry 90, pair 2 links carry 100. Component boundaries are exact, so
/// AllocStats counts are hand-checkable.
struct TwoPairFixture {
  Topology topo;
  LinkId up1, down1, up2, down2;
  std::vector<Rate> caps;

  TwoPairFixture() {
    const NodeId h0 = topo.add_node(NodeKind::kHost, 0, 0);
    const NodeId s1 = topo.add_node(NodeKind::kEdgeSwitch, 0, 0);
    const NodeId h1 = topo.add_node(NodeKind::kHost, 0, 1);
    const NodeId h2 = topo.add_node(NodeKind::kHost, 0, 2);
    const NodeId s2 = topo.add_node(NodeKind::kEdgeSwitch, 0, 1);
    const NodeId h3 = topo.add_node(NodeKind::kHost, 0, 3);
    up1 = topo.add_link(h0, s1, 90.0);
    down1 = topo.add_link(s1, h1, 90.0);
    up2 = topo.add_link(h2, s2, 100.0);
    down2 = topo.add_link(s2, h3, 100.0);
    caps = {90.0, 90.0, 100.0, 100.0};
  }

  static SimFlow flow(std::uint64_t id, std::vector<LinkId> path) {
    SimFlow f;
    f.id = FlowId{id};
    f.size = 1000;
    f.remaining = 1000;
    f.path = std::move(path);
    return f;
  }
};

TEST(AllocatorDifferentialTimeline, ArrivalSplitsOnlyItsBottleneck) {
  TwoPairFixture fx;
  SimFlow a = fx.flow(0, {fx.up1, fx.down1});
  SimFlow d = fx.flow(1, {fx.up2, fx.down2});
  RateAllocator alloc;
  alloc.reset(&fx.topo, AllocatorKind::kIncremental, 8);

  std::vector<SimFlow*> active = {&a, &d};
  alloc.add_flow(&a);
  alloc.add_flow(&d);
  alloc.allocate(fx.caps, active, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(a.rate, 90.0);
  EXPECT_DOUBLE_EQ(d.rate, 100.0);

  // B arrives on pair 1: only {A, B} re-solve; D's component stays cached.
  const AllocStats before = alloc.stats();
  SimFlow b = fx.flow(2, {fx.up1, fx.down1});
  active.push_back(&b);
  alloc.add_flow(&b);
  std::vector<RateChange> changed;
  alloc.allocate(fx.caps, active, &changed, nullptr);
  const AllocStats after = alloc.stats();

  EXPECT_DOUBLE_EQ(a.rate, 45.0);
  EXPECT_DOUBLE_EQ(b.rate, 45.0);
  EXPECT_DOUBLE_EQ(d.rate, 100.0);
  EXPECT_EQ(after.flows_solved - before.flows_solved, 2u)
      << "arrival must not re-solve the untouched component";
  EXPECT_EQ(after.components_solved - before.components_solved, 1u);
  EXPECT_EQ(after.dirty_links - before.dirty_links, 2u);
  // A moved 90 -> 45 and B 0 -> 45; D must not appear.
  ASSERT_EQ(changed.size(), 2u);
  EXPECT_EQ(changed[0].flow->id, a.id);
  EXPECT_EQ(changed[0].old_rate, 90.0);
  EXPECT_EQ(changed[1].flow->id, b.id);
  EXPECT_EQ(changed[1].old_rate, 0.0);
}

TEST(AllocatorDifferentialTimeline, FinishRelaxesOnlyItsBottleneck) {
  TwoPairFixture fx;
  SimFlow a = fx.flow(0, {fx.up1, fx.down1});
  SimFlow b = fx.flow(1, {fx.up1, fx.down1});
  SimFlow c = fx.flow(2, {fx.up1, fx.down1});
  SimFlow d = fx.flow(3, {fx.up2, fx.down2});
  RateAllocator alloc;
  alloc.reset(&fx.topo, AllocatorKind::kIncremental, 8);

  std::vector<SimFlow*> active = {&a, &b, &c, &d};
  for (SimFlow* f : active) alloc.add_flow(f);
  alloc.allocate(fx.caps, active, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(a.rate, 30.0);
  EXPECT_DOUBLE_EQ(b.rate, 30.0);
  EXPECT_DOUBLE_EQ(c.rate, 30.0);

  // B finishes: A and C absorb the slack; D's component is untouched.
  const AllocStats before = alloc.stats();
  alloc.remove_flow(&b);
  active.erase(active.begin() + 1);
  std::vector<RateChange> changed;
  alloc.allocate(fx.caps, active, &changed, nullptr);
  const AllocStats after = alloc.stats();

  EXPECT_DOUBLE_EQ(a.rate, 45.0);
  EXPECT_DOUBLE_EQ(c.rate, 45.0);
  EXPECT_DOUBLE_EQ(d.rate, 100.0);
  EXPECT_EQ(after.flows_solved - before.flows_solved, 2u);
  EXPECT_EQ(after.components_solved - before.components_solved, 1u);
  ASSERT_EQ(changed.size(), 2u);
  EXPECT_EQ(changed[0].flow->id, a.id);
  EXPECT_EQ(changed[1].flow->id, c.id);
}

TEST(AllocatorDifferentialTimeline, ExternalRateCapRedirtiesItsLinks) {
  // The straggler pattern: the engine caps a stored rate below the pure
  // allocation and touch_flow()s the victim before the next allocation, so
  // the allocator re-reports it exactly as the oracle would (the oracle
  // recomputes from scratch and always sees the capped value as stale).
  TwoPairFixture fx;
  SimFlow a = fx.flow(0, {fx.up1, fx.down1});
  SimFlow b = fx.flow(1, {fx.up1, fx.down1});
  SimFlow d = fx.flow(2, {fx.up2, fx.down2});
  RateAllocator alloc;
  alloc.reset(&fx.topo, AllocatorKind::kIncremental, 8);

  std::vector<SimFlow*> active = {&a, &b, &d};
  for (SimFlow* f : active) alloc.add_flow(f);
  alloc.allocate(fx.caps, active, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(a.rate, 45.0);

  a.rate = 10.0;  // external cap (straggler window / TCP ramp)
  alloc.touch_flow(&a);
  const AllocStats before = alloc.stats();
  std::vector<RateChange> changed;
  alloc.allocate(fx.caps, active, &changed, nullptr);
  const AllocStats after = alloc.stats();

  EXPECT_DOUBLE_EQ(a.rate, 45.0) << "cap lifted: pure allocation restored";
  EXPECT_DOUBLE_EQ(b.rate, 45.0);
  EXPECT_DOUBLE_EQ(d.rate, 100.0);
  // Only the capped component re-solves, and only A is reported (B's pure
  // rate is unchanged bitwise).
  EXPECT_EQ(after.flows_solved - before.flows_solved, 2u);
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0].flow->id, a.id);
  EXPECT_EQ(changed[0].old_rate, 10.0);
}

// ---------------------------------------------------- engine-level fuzz ---

/// One engine-level trial: same shape as differential_engine_test.cpp's,
/// plus fault plans (crashes, flaps, stragglers, state loss) on ~30% of
/// trials — the fault paths dirty links and cap rates behind the
/// allocator's back, which is exactly what the frontier must survive.
struct Trial {
  std::unique_ptr<Fabric> fabric;
  std::vector<JobSpec> jobs;
  std::string scheduler;
  Simulator::Config sim_config;
};

Trial draw_trial(std::uint64_t seed) {
  Rng rng(seed);
  Trial trial;

  if (rng.next_double() < 0.5) {
    BigSwitch::Config bs;
    bs.num_hosts = static_cast<int>(rng.uniform_int(8, 32));
    trial.fabric = std::make_unique<BigSwitch>(bs);
  } else {
    FatTree::Config ft;
    ft.k = 4;
    ft.ecmp_salt = rng.next_u64();
    trial.fabric = std::make_unique<FatTree>(ft);
  }

  TraceConfig trace;
  trace.num_jobs = static_cast<int>(rng.uniform_int(3, 10));
  trace.num_hosts = trial.fabric->num_hosts();
  trace.structure = static_cast<StructureKind>(rng.uniform_int(0, 2));
  trace.arrivals = rng.next_double() < 0.5 ? ArrivalPattern::kPoisson
                                           : ArrivalPattern::kBursty;
  trace.mean_interarrival = rng.uniform(1.0, 50.0) * kMillisecond;
  trace.burst_size = static_cast<int>(rng.uniform_int(2, 6));
  trace.max_width = static_cast<int>(rng.uniform_int(2, 16));
  trace.width_pareto_alpha = rng.uniform(0.8, 2.0);
  trace.flow_skew_sigma = rng.uniform(0.2, 1.5);
  trace.stage_skew_sigma = rng.uniform(0.5, 2.0);
  trace.seed = rng.next_u64();
  trial.jobs = generate_trace(trace);

  const std::vector<std::string>& names = scheduler_names();
  trial.scheduler = names[rng.uniform_int(0, names.size() - 1)];

  if (rng.next_double() < 0.3)
    trial.sim_config.tcp_ramp_time = rng.uniform(1.0, 10.0) * kMillisecond;

  if (rng.next_double() < 0.4) {
    const std::size_t links = trial.fabric->topology().link_count();
    const int n = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < n; ++i) {
      CapacityChange change;
      change.time = rng.uniform(0.0, 0.5);
      change.link = LinkId{rng.uniform_int(0, links - 1)};
      const Rate nominal =
          trial.fabric->topology().link(change.link).capacity;
      change.new_capacity = nominal * rng.uniform(0.2, 1.0);
      trial.sim_config.disruptions.push_back(change);
    }
  }

  // Fault plans on ~30% of trials: crashes abort flows mid-transfer, flaps
  // zero capacities, stragglers cap stored rates below the pure allocation
  // and state loss rewrites priorities in place.
  if (rng.next_double() < 0.3) {
    FaultPlanConfig plan;
    plan.host_crash_rate = rng.uniform(0.0, 4.0);
    plan.link_flap_rate = rng.uniform(0.0, 3.0);
    plan.straggler_rate = rng.uniform(0.0, 4.0);
    plan.state_loss_rate = rng.uniform(0.0, 2.0);
    plan.horizon = 0.5;
    plan.mean_downtime = 0.05;
    trial.sim_config.faults = generate_fault_plan(
        plan, rng.next_u64(), trial.fabric->num_hosts(),
        trial.fabric->topology().link_count());
  }

  trial.sim_config.collect_link_stats = rng.next_double() < 0.25;
  return trial;
}

void expect_identical_runs(const SimResults& inc, const SimResults& ora,
                           const SimState& inc_state,
                           const SimState& ora_state) {
  EXPECT_EQ(inc.events, ora.events);
  EXPECT_EQ(inc.rate_recomputations, ora.rate_recomputations);
  EXPECT_EQ(inc.makespan, ora.makespan);

  ASSERT_EQ(inc.jobs.size(), ora.jobs.size());
  for (std::size_t i = 0; i < inc.jobs.size(); ++i) {
    EXPECT_EQ(inc.jobs[i].id, ora.jobs[i].id) << "job " << i;
    EXPECT_EQ(inc.jobs[i].arrival, ora.jobs[i].arrival) << "job " << i;
    EXPECT_EQ(inc.jobs[i].finish, ora.jobs[i].finish) << "job " << i;
    EXPECT_EQ(inc.jobs[i].total_bytes, ora.jobs[i].total_bytes)
        << "job " << i;
  }

  ASSERT_EQ(inc.coflows.size(), ora.coflows.size());
  for (std::size_t i = 0; i < inc.coflows.size(); ++i) {
    EXPECT_EQ(inc.coflows[i].release, ora.coflows[i].release)
        << "coflow " << i;
    EXPECT_EQ(inc.coflows[i].finish, ora.coflows[i].finish)
        << "coflow " << i;
    EXPECT_EQ(inc.coflows[i].total_bytes, ora.coflows[i].total_bytes)
        << "coflow " << i;
  }

  ASSERT_EQ(inc_state.flow_count(), ora_state.flow_count());
  for (std::size_t i = 0; i < inc_state.flow_count(); ++i) {
    const SimFlow& a = inc_state.flow(FlowId{i});
    const SimFlow& b = ora_state.flow(FlowId{i});
    EXPECT_EQ(a.start_time, b.start_time) << "flow " << i;
    EXPECT_EQ(a.finish_time, b.finish_time) << "flow " << i;
    EXPECT_EQ(a.size, b.size) << "flow " << i;
  }

  ASSERT_EQ(inc.link_bytes.size(), ora.link_bytes.size());
  for (std::size_t i = 0; i < inc.link_bytes.size(); ++i)
    EXPECT_EQ(inc.link_bytes[i], ora.link_bytes[i]) << "link " << i;
}

void run_engine_trial(std::uint64_t seed) {
  SCOPED_TRACE("reproduce with trace seed " + std::to_string(seed));
  const Trial trial = draw_trial(seed);

  std::unique_ptr<Scheduler> inc_sched = make_scheduler(trial.scheduler);
  std::unique_ptr<Scheduler> ora_sched = make_scheduler(trial.scheduler);

  // Identical configs except the allocator; structured traces recorded on
  // both sides must match record for record (operator== is field-exact).
  obs::TraceRecorder inc_rec(obs::TraceRecorder::kDefaultKinds);
  obs::TraceRecorder ora_rec(obs::TraceRecorder::kDefaultKinds);
  Simulator::Config inc_config = trial.sim_config;
  inc_config.allocator = AllocatorKind::kIncremental;
  inc_config.trace = &inc_rec;
  Simulator::Config ora_config = trial.sim_config;
  ora_config.allocator = AllocatorKind::kOracle;
  ora_config.trace = &ora_rec;

  Simulator inc(*trial.fabric, *inc_sched, inc_config);
  Simulator ora(*trial.fabric, *ora_sched, ora_config);
  for (const JobSpec& job : trial.jobs) {
    inc.submit(job);
    ora.submit(job);
  }

  const SimResults inc_results = inc.run();
  const SimResults ora_results = ora.run();
  expect_identical_runs(inc_results, ora_results, inc.state(), ora.state());
  EXPECT_TRUE(inc_rec.take() == ora_rec.take())
      << "structured traces diverged";
}

// The main gate: 200 randomized traces through two engines that differ
// only in Config::allocator.
TEST(AllocatorDifferential, FuzzIncrementalEngineAgainstOracleEngine) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    run_engine_trial(seed);
    if (::testing::Test::HasFailure()) {
      FAIL() << "allocator differential fuzz diverged at trace seed " << seed
             << "; rerun run_engine_trial(" << seed << ") to debug";
    }
  }
}

// ------------------------------------------------------ sharded sweeps ---

void expect_same_comparison(const ComparisonResult& got,
                            const ComparisonResult& want) {
  ASSERT_EQ(got.results.size(), want.results.size());
  for (const auto& [name, w] : want.results) {
    const auto it = got.results.find(name);
    ASSERT_NE(it, got.results.end()) << "missing scheduler " << name;
    const SimResults& g = it->second;
    EXPECT_EQ(g.makespan, w.makespan) << name;
    EXPECT_EQ(g.events, w.events) << name;
    EXPECT_EQ(g.rate_recomputations, w.rate_recomputations) << name;
    ASSERT_EQ(g.jobs.size(), w.jobs.size()) << name;
    for (std::size_t i = 0; i < g.jobs.size(); ++i) {
      EXPECT_EQ(g.jobs[i].arrival, w.jobs[i].arrival) << name << " job " << i;
      EXPECT_EQ(g.jobs[i].finish, w.jobs[i].finish) << name << " job " << i;
    }
    ASSERT_EQ(g.coflows.size(), w.coflows.size()) << name;
    for (std::size_t i = 0; i < g.coflows.size(); ++i)
      EXPECT_EQ(g.coflows[i].finish, w.coflows[i].finish)
          << name << " coflow " << i;
    EXPECT_TRUE(g.trace == w.trace) << name << ": pooled traces diverged";
  }
}

// A pooled multi-seed sweep under the incremental allocator is
// bit-identical to the oracle's at every worker count — the allocator's
// determinism is per-run, so sharding must not be able to perturb it.
TEST(AllocatorDifferentialWorkers, PooledSweepMatchesOracleAtAnyWorkerCount) {
  ExperimentConfig config = trace_scenario(StructureKind::kMixed, 6, 42);
  config.fat_tree_k = 4;
  config.obs.trace = true;
  const std::vector<std::string> names = {"gurita", "aalo"};

  config.allocator = AllocatorKind::kOracle;
  const ComparisonResult want = compare_schedulers_seeds(config, names, 6, 1);

  config.allocator = AllocatorKind::kIncremental;
  for (const int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers " + std::to_string(workers));
    const ComparisonResult got =
        compare_schedulers_seeds(config, names, 6, workers);
    expect_same_comparison(got, want);
  }
}

}  // namespace
}  // namespace gurita
