// Randomized property tests over the whole stack: random DAG jobs pushed
// through the engine under every scheduler must satisfy structural
// invariants regardless of policy or seed.
//
//   P1  Byte conservation: every flow delivers exactly its size.
//   P2  DAG order: a coflow is released at the instant its last dependency
//       finishes (never earlier, never later).
//   P3  CCT semantics: a coflow finishes with its slowest flow.
//   P4  JCT >= critical-path lower bound at line rate.
//   P5  Job completion: finish time equals the max coflow finish.
//   P6  Determinism: identical seeds give identical schedules.
#include <gtest/gtest.h>

#include "coflow/critical_path.h"
#include "coflow/shapes.h"
#include "exp/registry.h"
#include "flowsim/simulator.h"
#include "topology/fattree.h"

namespace gurita {
namespace {

struct PropertyParams {
  std::uint64_t seed;
  std::string scheduler;
};

std::vector<PropertyParams> make_params() {
  std::vector<PropertyParams> params;
  for (std::uint64_t seed = 0; seed < 6; ++seed)
    for (const std::string& name : scheduler_names())
      params.push_back({seed, name});
  return params;
}

std::vector<JobSpec> random_jobs(std::uint64_t seed, int num_hosts) {
  Rng rng(seed);
  std::vector<JobSpec> jobs;
  const int count = 4 + static_cast<int>(rng.uniform_int(0, 8));
  for (int j = 0; j < count; ++j) {
    JobSpec job;
    job.arrival_time = rng.uniform(0.0, 2.0);
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 5));
    job.deps = shapes::random_dag(rng, n, 0.4);
    for (int c = 0; c < n; ++c) {
      CoflowSpec coflow;
      const int width = 1 + static_cast<int>(rng.uniform_int(0, 3));
      for (int f = 0; f < width; ++f) {
        FlowSpec flow;
        flow.src_host = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(num_hosts) - 1));
        do {
          flow.dst_host = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(num_hosts) - 1));
        } while (flow.dst_host == flow.src_host);
        flow.size = rng.uniform(10.0, 500.0);
        coflow.flows.push_back(flow);
      }
      job.coflows.push_back(coflow);
    }
    jobs.push_back(job);
  }
  return jobs;
}

class EngineProperties : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(EngineProperties, StructuralInvariantsHold) {
  const auto& p = GetParam();
  const FatTree fabric(FatTree::Config{4, 100.0});
  const auto jobs = random_jobs(p.seed, fabric.num_hosts());

  const auto sched = make_scheduler(p.scheduler);
  Simulator sim(fabric, *sched);
  for (const auto& job : jobs) sim.submit(job);
  const SimResults results = sim.run();
  const SimState& state = sim.state();

  // P1: byte conservation.
  for (std::size_t i = 0; i < state.flow_count(); ++i) {
    const SimFlow& f = state.flow(FlowId{i});
    ASSERT_TRUE(f.finished());
    EXPECT_NEAR(f.bytes_sent(), f.size, 1e-2);
  }

  // P2 + P3 + P5 per job.
  for (std::size_t j = 0; j < state.job_count(); ++j) {
    const SimJob& job = state.job(JobId{j});
    double max_coflow_finish = 0;
    for (std::size_t c = 0; c < job.coflows.size(); ++c) {
      const SimCoflow& coflow = state.coflow(job.coflows[c]);
      ASSERT_TRUE(coflow.finished());
      max_coflow_finish = std::max(max_coflow_finish, coflow.finish_time);

      // P2: release = max(arrival, latest dependency finish).
      double dep_finish = job.arrival_time;
      for (int d : job.spec.deps[c]) {
        dep_finish = std::max(
            dep_finish, state.coflow(job.coflows[static_cast<std::size_t>(d)]).finish_time);
      }
      EXPECT_NEAR(coflow.release_time, dep_finish, 1e-9)
          << p.scheduler << " violated DAG release order";

      // P3: CCT ends with the slowest flow.
      double max_flow_finish = 0;
      for (FlowId fid : coflow.flows)
        max_flow_finish = std::max(max_flow_finish, state.flow(fid).finish_time);
      EXPECT_NEAR(coflow.finish_time, max_flow_finish, 1e-9);
    }
    // P5: job finishes with its last coflow.
    EXPECT_NEAR(job.finish_time, max_coflow_finish, 1e-9);

    // P4: critical-path bound.
    EXPECT_GE(job.finish_time - job.arrival_time,
              jct_lower_bound(job.spec, 100.0) - 1e-6);
  }

  // Results mirror state.
  EXPECT_EQ(results.jobs.size(), jobs.size());
}

TEST_P(EngineProperties, DeterministicReplay) {
  const auto& p = GetParam();
  const FatTree fabric(FatTree::Config{4, 100.0});
  const auto jobs = random_jobs(p.seed, fabric.num_hosts());

  auto run_once = [&] {
    const auto sched = make_scheduler(p.scheduler);
    Simulator sim(fabric, *sched);
    for (const auto& job : jobs) sim.submit(job);
    return sim.run();
  };
  const SimResults a = run_once();
  const SimResults b = run_once();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    EXPECT_DOUBLE_EQ(a.jobs[i].finish, b.jobs[i].finish) << p.scheduler;
  EXPECT_EQ(a.rate_recomputations, b.rate_recomputations);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsTimesSchedulers, EngineProperties, ::testing::ValuesIn(make_params()),
    [](const ::testing::TestParamInfo<PropertyParams>& info) {
      return info.param.scheduler + "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace gurita
