// Unit tests for src/topology: generic graph invariants, fat-tree
// construction (the paper's 8-pod / 80-switch / 128-host fabric), path
// validity and ECMP behaviour.
#include <gtest/gtest.h>

#include <set>

#include "topology/ecmp.h"
#include "topology/fattree.h"
#include "topology/graph.h"

namespace gurita {
namespace {

// ------------------------------------------------------------------ Graph

TEST(Topology, AddNodeAssignsSequentialIds) {
  Topology topo;
  const NodeId a = topo.add_node(NodeKind::kHost, 0, 0);
  const NodeId b = topo.add_node(NodeKind::kHost, 0, 1);
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(topo.node_count(), 2u);
}

TEST(Topology, AddLinkConnects) {
  Topology topo;
  const NodeId a = topo.add_node(NodeKind::kHost, 0, 0);
  const NodeId b = topo.add_node(NodeKind::kEdgeSwitch, 0, 0);
  const LinkId l = topo.add_link(a, b, gbps(10));
  EXPECT_EQ(topo.link(l).src, a);
  EXPECT_EQ(topo.link(l).dst, b);
  EXPECT_DOUBLE_EQ(topo.link(l).capacity, gbps(10));
  EXPECT_EQ(topo.find_link(a, b), l);
  EXPECT_FALSE(topo.find_link(b, a).valid());
}

TEST(Topology, AddDuplexCreatesBothDirections) {
  Topology topo;
  const NodeId a = topo.add_node(NodeKind::kHost, 0, 0);
  const NodeId b = topo.add_node(NodeKind::kEdgeSwitch, 0, 0);
  topo.add_duplex(a, b, 1e9);
  EXPECT_TRUE(topo.find_link(a, b).valid());
  EXPECT_TRUE(topo.find_link(b, a).valid());
  EXPECT_EQ(topo.link_count(), 2u);
}

TEST(Topology, RejectsSelfLoop) {
  Topology topo;
  const NodeId a = topo.add_node(NodeKind::kHost, 0, 0);
  EXPECT_THROW(topo.add_link(a, a, 1e9), std::logic_error);
}

TEST(Topology, RejectsDuplicateLink) {
  Topology topo;
  const NodeId a = topo.add_node(NodeKind::kHost, 0, 0);
  const NodeId b = topo.add_node(NodeKind::kHost, 0, 1);
  topo.add_link(a, b, 1e9);
  EXPECT_THROW(topo.add_link(a, b, 1e9), std::logic_error);
}

TEST(Topology, RejectsNonPositiveCapacity) {
  Topology topo;
  const NodeId a = topo.add_node(NodeKind::kHost, 0, 0);
  const NodeId b = topo.add_node(NodeKind::kHost, 0, 1);
  EXPECT_THROW(topo.add_link(a, b, 0), std::logic_error);
  EXPECT_THROW(topo.add_link(a, b, -1), std::logic_error);
}

TEST(Topology, OutLinksListsDepartures) {
  Topology topo;
  const NodeId a = topo.add_node(NodeKind::kEdgeSwitch, 0, 0);
  const NodeId b = topo.add_node(NodeKind::kHost, 0, 0);
  const NodeId c = topo.add_node(NodeKind::kHost, 0, 1);
  topo.add_link(a, b, 1e9);
  topo.add_link(a, c, 1e9);
  EXPECT_EQ(topo.out_links(a).size(), 2u);
  EXPECT_EQ(topo.out_links(b).size(), 0u);
}

TEST(Topology, NodeKindNames) {
  EXPECT_STREQ(to_string(NodeKind::kHost), "host");
  EXPECT_STREQ(to_string(NodeKind::kEdgeSwitch), "edge");
  EXPECT_STREQ(to_string(NodeKind::kAggSwitch), "agg");
  EXPECT_STREQ(to_string(NodeKind::kCoreSwitch), "core");
}

// ---------------------------------------------------------------- FatTree

TEST(FatTree, RejectsOddOrTinyK) {
  EXPECT_THROW(FatTree(FatTree::Config{3, gbps(10)}), std::logic_error);
  EXPECT_THROW(FatTree(FatTree::Config{0, gbps(10)}), std::logic_error);
  EXPECT_THROW(FatTree(FatTree::Config{-2, gbps(10)}), std::logic_error);
}

TEST(FatTree, PaperScaleEightPods) {
  // §V: "8 pods FatTree network topology with 128 servers and 80 switches".
  const FatTree ft(FatTree::Config{8, gbps(10)});
  EXPECT_EQ(ft.num_hosts(), 128);
  EXPECT_EQ(ft.num_switches(), 80);
  EXPECT_EQ(ft.topology().count(NodeKind::kHost), 128u);
  EXPECT_EQ(ft.topology().count(NodeKind::kEdgeSwitch), 32u);
  EXPECT_EQ(ft.topology().count(NodeKind::kAggSwitch), 32u);
  EXPECT_EQ(ft.topology().count(NodeKind::kCoreSwitch), 16u);
}

// The paper's bursty scenario uses k=48: 27,648 servers and 2,880 switches.
// Constructing the full fabric is cheap enough to verify the counts.
TEST(FatTree, PaperScaleFortyEightPods) {
  const FatTree ft(FatTree::Config{48, gbps(10)});
  EXPECT_EQ(ft.num_hosts(), 27648);
  EXPECT_EQ(ft.num_switches(), 2880);
}

struct FatTreeParams {
  int k;
  int hosts;
  int switches;
};

class FatTreeCounts : public ::testing::TestWithParam<FatTreeParams> {};

TEST_P(FatTreeCounts, HostAndSwitchFormulas) {
  const auto p = GetParam();
  const FatTree ft(FatTree::Config{p.k, gbps(10)});
  EXPECT_EQ(ft.num_hosts(), p.hosts);
  EXPECT_EQ(ft.num_switches(), p.switches);
  // Link count: hosts + edge-agg (k * (k/2)^2) + agg-core (k * (k/2)^2),
  // each duplex.
  const std::size_t half = static_cast<std::size_t>(p.k) / 2;
  const std::size_t expected_links =
      2 * (static_cast<std::size_t>(p.hosts) +
           static_cast<std::size_t>(p.k) * half * half * 2);
  EXPECT_EQ(ft.topology().link_count(), expected_links);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FatTreeCounts,
                         ::testing::Values(FatTreeParams{2, 2, 5},
                                           FatTreeParams{4, 16, 20},
                                           FatTreeParams{6, 54, 45},
                                           FatTreeParams{8, 128, 80},
                                           FatTreeParams{16, 1024, 320}));

TEST(FatTree, HostAddressing) {
  const FatTree ft(FatTree::Config{4, gbps(10)});
  // k=4: 4 hosts per pod, 2 per edge switch.
  EXPECT_EQ(ft.pod_of_host(0), 0);
  EXPECT_EQ(ft.pod_of_host(3), 0);
  EXPECT_EQ(ft.pod_of_host(4), 1);
  EXPECT_EQ(ft.pod_of_host(15), 3);
  EXPECT_EQ(ft.edge_of_host(0), ft.edge_of_host(1));
  EXPECT_NE(ft.edge_of_host(1), ft.edge_of_host(2));
}

TEST(FatTree, HostIndexOutOfRangeThrows) {
  const FatTree ft(FatTree::Config{4, gbps(10)});
  EXPECT_THROW(ft.host(-1), std::logic_error);
  EXPECT_THROW(ft.host(16), std::logic_error);
  EXPECT_THROW(ft.pod_of_host(16), std::logic_error);
}

TEST(FatTree, PathSameEdgeSwitchHasTwoHops) {
  const FatTree ft(FatTree::Config{4, gbps(10)});
  const auto path = ft.path(0, 1, 0, 0);  // same edge switch
  EXPECT_EQ(path.size(), 2u);
}

TEST(FatTree, PathSamePodHasFourHops) {
  const FatTree ft(FatTree::Config{4, gbps(10)});
  const auto path = ft.path(0, 2, 0, 0);  // same pod, different edge
  EXPECT_EQ(path.size(), 4u);
}

TEST(FatTree, PathCrossPodHasSixHops) {
  const FatTree ft(FatTree::Config{4, gbps(10)});
  const auto path = ft.path(0, 15, 0, 0);
  EXPECT_EQ(path.size(), 6u);
}

TEST(FatTree, PathIsConnected) {
  const FatTree ft(FatTree::Config{8, gbps(10)});
  const Topology& topo = ft.topology();
  for (const auto& [src, dst] : std::vector<std::pair<int, int>>{
           {0, 1}, {0, 5}, {0, 127}, {17, 93}, {64, 63}}) {
    for (std::uint64_t choice = 0; choice < 4; ++choice) {
      const auto path = ft.path(src, dst, choice, choice * 3 + 1);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(topo.link(path.front()).src, ft.host(src));
      EXPECT_EQ(topo.link(path.back()).dst, ft.host(dst));
      for (std::size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_EQ(topo.link(path[i]).dst, topo.link(path[i + 1]).src);
    }
  }
}

TEST(FatTree, PathBetweenSameHostThrows) {
  const FatTree ft(FatTree::Config{4, gbps(10)});
  EXPECT_THROW(ft.path(3, 3, 0, 0), std::logic_error);
  EXPECT_THROW(ft.path_count(3, 3), std::logic_error);
}

TEST(FatTree, PathCountMatchesStructure) {
  const FatTree ft(FatTree::Config{8, gbps(10)});
  EXPECT_EQ(ft.path_count(0, 1), 1u);       // same edge
  EXPECT_EQ(ft.path_count(0, 5), 4u);       // same pod: k/2 agg choices
  EXPECT_EQ(ft.path_count(0, 127), 16u);    // cross pod: (k/2)^2
}

TEST(FatTree, DistinctChoicesGiveDistinctCrossPodPaths) {
  const FatTree ft(FatTree::Config{8, gbps(10)});
  std::set<std::vector<std::uint64_t>> unique_paths;
  for (std::uint64_t up = 0; up < 4; ++up) {
    for (std::uint64_t core = 0; core < 4; ++core) {
      const auto path = ft.path(0, 127, up, core);
      std::vector<std::uint64_t> key;
      for (LinkId l : path) key.push_back(l.value());
      unique_paths.insert(key);
    }
  }
  EXPECT_EQ(unique_paths.size(), 16u);
}

TEST(FatTree, CoreGroupWiring) {
  // Core group g must connect to agg switch g of every pod.
  const FatTree ft(FatTree::Config{4, gbps(10)});
  const Topology& topo = ft.topology();
  for (int g = 0; g < 2; ++g) {
    for (int m = 0; m < 2; ++m) {
      const NodeId core = ft.core_switch(g, m);
      for (int pod = 0; pod < 4; ++pod) {
        EXPECT_TRUE(topo.find_link(core, ft.agg_switch(pod, g)).valid());
        EXPECT_FALSE(topo.find_link(core, ft.agg_switch(pod, 1 - g)).valid());
      }
    }
  }
}

// ------------------------------------------------------------------- ECMP

TEST(Ecmp, RouteIsStableForAFlow) {
  const FatTree ft(FatTree::Config{8, gbps(10)});
  const EcmpRouter router(ft);
  const auto p1 = router.route(FlowId{7}, 3, 99);
  const auto p2 = router.route(FlowId{7}, 3, 99);
  EXPECT_EQ(p1, p2);
}

TEST(Ecmp, DifferentFlowsSpreadAcrossPaths) {
  const FatTree ft(FatTree::Config{8, gbps(10)});
  const EcmpRouter router(ft);
  std::set<std::vector<std::uint64_t>> unique_paths;
  for (std::uint64_t f = 0; f < 200; ++f) {
    const auto path = router.route(FlowId{f}, 0, 127);
    std::vector<std::uint64_t> key;
    for (LinkId l : path) key.push_back(l.value());
    unique_paths.insert(key);
  }
  // 16 equal-cost paths exist; a healthy hash should find most of them.
  EXPECT_GE(unique_paths.size(), 12u);
}

TEST(Ecmp, SaltChangesPathSelection) {
  const FatTree ft(FatTree::Config{8, gbps(10)});
  const EcmpRouter a(ft, 1), b(ft, 2);
  int differing = 0;
  for (std::uint64_t f = 0; f < 50; ++f) {
    if (a.route(FlowId{f}, 0, 127) != b.route(FlowId{f}, 0, 127)) ++differing;
  }
  EXPECT_GT(differing, 10);
}

TEST(Ecmp, RoutedPathsAreValid) {
  const FatTree ft(FatTree::Config{4, gbps(10)});
  const EcmpRouter router(ft, 3);
  const Topology& topo = ft.topology();
  for (std::uint64_t f = 0; f < 64; ++f) {
    const int src = static_cast<int>(f % 16);
    const int dst = static_cast<int>((f * 7 + 1) % 16);
    if (src == dst) continue;
    const auto path = router.route(FlowId{f}, src, dst);
    EXPECT_EQ(topo.link(path.front()).src, ft.host(src));
    EXPECT_EQ(topo.link(path.back()).dst, ft.host(dst));
  }
}

}  // namespace
}  // namespace gurita
