// Tests for the exact single-machine FFS-MJ optimum and the reference
// policies (FIFO, TBS-SJF, per-stage greedy), including the paper's
// Figure 2 arithmetic, which this model reproduces exactly.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/optimal.h"

namespace gurita {
namespace {

TEST(Optimal, SingleJobIsItsOwnLength) {
  const std::vector<StagedJob> jobs = {{{2.0, 3.0}}};
  EXPECT_DOUBLE_EQ(optimal_average_jct(jobs), 5.0);
  EXPECT_DOUBLE_EQ(fifo_average_jct(jobs), 5.0);
  EXPECT_DOUBLE_EQ(sjf_tbs_average_jct(jobs), 5.0);
  EXPECT_DOUBLE_EQ(stage_greedy_average_jct(jobs), 5.0);
}

TEST(Optimal, TwoSingleStageJobsShortestFirst) {
  const std::vector<StagedJob> jobs = {{{3.0}}, {{1.0}}};
  // Optimal: run the 1 first -> JCTs {1, 4}, avg 2.5.
  EXPECT_DOUBLE_EQ(optimal_average_jct(jobs), 2.5);
  EXPECT_DOUBLE_EQ(sjf_tbs_average_jct(jobs), 2.5);
  EXPECT_DOUBLE_EQ(fifo_average_jct(jobs), 3.5);  // 3 then 4
}

TEST(Optimal, PaperFigure2Arithmetic) {
  // Job A: stages 10/1/1/1; jobs B, C, D: single stage of 2 each.
  // TBS (SJF by totals): B,C,D before A. Note the paper's toy runs B/C/D
  // on parallel machines; on one machine the analogous schedules still
  // order the same way: per-stage awareness beats job-level TBS.
  const std::vector<StagedJob> jobs = {
      {{10.0, 1.0, 1.0, 1.0}}, {{2.0}}, {{2.0}}, {{2.0}}};

  const double tbs = sjf_tbs_average_jct(jobs);
  const double greedy = stage_greedy_average_jct(jobs);
  const double best = optimal_average_jct(jobs);

  // TBS: B@2 C@4 D@6 A@19 -> avg 7.75.
  EXPECT_DOUBLE_EQ(tbs, 7.75);
  // Per-stage greedy: B@2 C@4 D@6, A runs 10 then its three 1s -> also
  // serialized behind, but its mouse stages never wait again: A@19.
  // Optimal must be <= TBS.
  EXPECT_LE(best, tbs);
  EXPECT_LE(best, greedy);
  EXPECT_GE(greedy, best);
}

TEST(Optimal, MultiStageInterleavingBeatsJobSerial) {
  // Two jobs: X = {4, 4}, Y = {1, 1}. Any whole-job serialization gives
  // avg >= (2 + 10)/2 = 6; interleaving Y inside X's gap cannot help on
  // one machine (no idle), but running Y first gives (2 + 10)/2 = 6.
  const std::vector<StagedJob> jobs = {{{4.0, 4.0}}, {{1.0, 1.0}}};
  EXPECT_DOUBLE_EQ(optimal_average_jct(jobs), 6.0);
}

TEST(Optimal, NeverWorseThanAnyReferencePolicy) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<StagedJob> jobs;
    const int n = 2 + static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < n; ++i) {
      StagedJob j;
      const int stages = 1 + static_cast<int>(rng.uniform_int(0, 3));
      for (int s = 0; s < stages; ++s)
        j.stage_demand.push_back(rng.uniform(0.5, 10.0));
      jobs.push_back(j);
    }
    const double best = optimal_average_jct(jobs);
    EXPECT_LE(best, fifo_average_jct(jobs) + 1e-9);
    EXPECT_LE(best, sjf_tbs_average_jct(jobs) + 1e-9);
    EXPECT_LE(best, stage_greedy_average_jct(jobs) + 1e-9);
  }
}

TEST(Optimal, TbsSjfIsOptimalOnOneMachine) {
  // A real theory point this model surfaces: with ONE machine and all jobs
  // present at t=0, whole-job shortest-processing-time order is optimal
  // (exchange argument — interleaving stages cannot beat serializing jobs
  // in their completion order on a never-idle machine). The paper's
  // per-stage advantage therefore comes from the *network's parallelism*
  // and online arrivals, not from the single-machine collapse; the figure
  // benches demonstrate exactly that.
  Rng rng(7);
  for (int t = 0; t < 25; ++t) {
    std::vector<StagedJob> jobs;
    for (int i = 0; i < 4; ++i) {
      StagedJob j;
      const int stages = 1 + static_cast<int>(rng.uniform_int(0, 3));
      for (int s = 0; s < stages; ++s)
        j.stage_demand.push_back(rng.lognormal(0.0, 1.5) + 0.1);
      jobs.push_back(j);
    }
    EXPECT_NEAR(sjf_tbs_average_jct(jobs), optimal_average_jct(jobs), 1e-9);
  }
}

TEST(Optimal, StageGreedyStaysNearOptimal) {
  // Per-stage greedy pays a bounded price for its myopia on one machine
  // (it may start a long job's short first stage); it must stay within a
  // modest factor of the optimum on skewed mixes.
  Rng rng(7);
  double greedy_gap = 0;
  const int trials = 25;
  for (int t = 0; t < trials; ++t) {
    std::vector<StagedJob> jobs;
    for (int i = 0; i < 4; ++i) {
      StagedJob j;
      const int stages = 1 + static_cast<int>(rng.uniform_int(0, 3));
      for (int s = 0; s < stages; ++s)
        j.stage_demand.push_back(rng.lognormal(0.0, 1.5) + 0.1);
      jobs.push_back(j);
    }
    greedy_gap += stage_greedy_average_jct(jobs) / optimal_average_jct(jobs);
  }
  greedy_gap /= trials;
  EXPECT_LT(greedy_gap, 1.25);
  EXPECT_GE(greedy_gap, 1.0);
}

TEST(Optimal, RejectsDegenerateInput) {
  EXPECT_THROW(optimal_average_jct({}), std::logic_error);
  EXPECT_THROW(optimal_average_jct({{{}}}), std::logic_error);
  EXPECT_THROW(optimal_average_jct({{{0.0}}}), std::logic_error);
  EXPECT_THROW(optimal_average_jct({{{-1.0}}}), std::logic_error);
}

TEST(Optimal, StateSpaceGuard) {
  // 20 jobs x 10 stages = 11^20 states: must refuse, not hang — and the
  // error must say how big the space was and where the limit sits.
  std::vector<StagedJob> jobs(20, StagedJob{std::vector<double>(10, 1.0)});
  try {
    optimal_average_jct(jobs);
    FAIL() << "state-space guard did not fire";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("optimal DP state space too large"), std::string::npos)
        << what;
    // 11^20 ~ 6.73e20 overflows the integer rendering threshold, so the
    // count appears in scientific notation.
    EXPECT_NE(what.find("6.727e+20"), std::string::npos) << what;
    EXPECT_NE(what.find("20 jobs"), std::string::npos) << what;
    EXPECT_NE(what.find("exceeds the limit of 50000000"), std::string::npos)
        << what;
  }
}

TEST(Optimal, StateSpaceGuardReportsExactCountBelowOverflow) {
  // 9 jobs x 9 stages = 10^9 states: over the 5e7 limit but small enough
  // that the message renders the exact integer count.
  std::vector<StagedJob> jobs(9, StagedJob{std::vector<double>(9, 1.0)});
  try {
    optimal_average_jct(jobs);
    FAIL() << "state-space guard did not fire";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1000000000 states for 9 jobs"), std::string::npos)
        << what;
  }
}

}  // namespace
}  // namespace gurita
