// Tests for extended metrics (CCT stats, slowdowns, Jain fairness) and the
// engine's failure injection + link utilization statistics.
#include <gtest/gtest.h>

#include "metrics/extended.h"
#include "sched/pfs.h"
#include "topology/fattree.h"

namespace gurita {
namespace {

// ------------------------------------------------------------ CctCollector

SimResults coflow_results(
    std::initializer_list<std::pair<int, double>> stage_cct) {
  SimResults r;
  std::uint64_t id = 0;
  for (const auto& [stage, cct] : stage_cct) {
    SimResults::CoflowResult c;
    c.id = CoflowId{id++};
    c.stage = stage;
    c.release = 0;
    c.finish = cct;
    r.coflows.push_back(c);
  }
  return r;
}

TEST(CctCollector, OverallAverage) {
  CctCollector c;
  c.add(coflow_results({{1, 2.0}, {1, 4.0}, {2, 6.0}}));
  EXPECT_DOUBLE_EQ(c.average_cct(), 4.0);
  EXPECT_EQ(c.coflows(), 3u);
}

TEST(CctCollector, PerStage) {
  CctCollector c;
  c.add(coflow_results({{1, 2.0}, {1, 4.0}, {3, 9.0}}));
  EXPECT_DOUBLE_EQ(c.average_cct_at_stage(1), 3.0);
  EXPECT_DOUBLE_EQ(c.average_cct_at_stage(2), 0.0);
  EXPECT_DOUBLE_EQ(c.average_cct_at_stage(3), 9.0);
  EXPECT_EQ(c.max_stage_seen(), 3);
}

TEST(CctCollector, P95) {
  CctCollector c;
  SimResults r;
  for (int i = 1; i <= 100; ++i) {
    SimResults::CoflowResult cf;
    cf.id = CoflowId{static_cast<std::uint64_t>(i)};
    cf.stage = 1;
    cf.finish = i;
    r.coflows.push_back(cf);
  }
  c.add(r);
  EXPECT_DOUBLE_EQ(c.p95_cct(), 95.0);
}

TEST(CctCollector, RejectsZeroStage) {
  CctCollector c;
  SimResults r;
  SimResults::CoflowResult cf;
  cf.stage = 0;
  r.coflows.push_back(cf);
  EXPECT_THROW(c.add(r), std::logic_error);
}

// ---------------------------------------------------------------- slowdown

TEST(Slowdown, OneMeansOptimal) {
  const FatTree fabric(FatTree::Config{4, 100.0});
  PfsScheduler pfs;
  Simulator sim(fabric, pfs);
  JobSpec job;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{0, 1, 200.0});
  job.coflows.push_back(c);
  job.deps = {{}};
  sim.submit(job);
  const SimResults r = sim.run();
  const auto slowdowns = job_slowdowns({job}, r, 100.0);
  ASSERT_EQ(slowdowns.size(), 1u);
  EXPECT_NEAR(slowdowns[0], 1.0, 1e-9);  // alone at line rate
}

TEST(Slowdown, ContentionRaisesIt) {
  const FatTree fabric(FatTree::Config{4, 100.0});
  PfsScheduler pfs;
  Simulator sim(fabric, pfs);
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 2; ++i) {
    JobSpec job;
    CoflowSpec c;
    c.flows.push_back(FlowSpec{0, 1, 100.0});
    job.coflows.push_back(c);
    job.deps = {{}};
    jobs.push_back(job);
    sim.submit(job);
  }
  const SimResults r = sim.run();
  const auto slowdowns = job_slowdowns(jobs, r, 100.0);
  for (double s : slowdowns) EXPECT_NEAR(s, 2.0, 1e-9);  // halved rate
}

TEST(Slowdown, RejectsMismatch) {
  SimResults r;
  EXPECT_THROW(job_slowdowns({JobSpec{}}, r, 100.0), std::logic_error);
}

// ------------------------------------------------------------------- Jain

TEST(Jain, PerfectlyEvenIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({2.0, 2.0, 2.0}), 1.0);
}

TEST(Jain, SkewLowersIndex) {
  const double skewed = jain_fairness({1.0, 1.0, 10.0});
  EXPECT_LT(skewed, 1.0);
  EXPECT_GT(skewed, 1.0 / 3.0);  // lower bound is 1/n
}

TEST(Jain, SingleValueIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({5.0}), 1.0);
}

TEST(Jain, RejectsDegenerate) {
  EXPECT_THROW(jain_fairness({}), std::logic_error);
  EXPECT_THROW(jain_fairness({0.0, 0.0}), std::logic_error);
  EXPECT_THROW(jain_fairness({-1.0, 2.0}), std::logic_error);
}

// --------------------------------------------- failure injection + stats

class DisruptionFixture : public ::testing::Test {
 protected:
  DisruptionFixture() : fabric_(FatTree::Config{4, 100.0}) {}
  FatTree fabric_;
  PfsScheduler pfs_;

  JobSpec job(Bytes size, int src, int dst, Time arrival = 0) {
    JobSpec j;
    j.arrival_time = arrival;
    CoflowSpec c;
    c.flows.push_back(FlowSpec{src, dst, size});
    j.coflows.push_back(c);
    j.deps = {{}};
    return j;
  }
};

TEST_F(DisruptionFixture, DegradedLinkSlowsFlows) {
  // Degrade host 0's uplink to 25% at t=1.
  Simulator::Config config;
  const LinkId uplink =
      fabric_.topology().find_link(fabric_.host(0), fabric_.edge_of_host(0));
  config.disruptions.push_back(CapacityChange{1.0, uplink, 25.0});
  Simulator sim(fabric_, pfs_, config);
  sim.submit(job(200.0, 0, 1));
  const SimResults r = sim.run();
  // 100 B in the first second, then 100 B at 25 B/s: finish at 5.
  EXPECT_NEAR(r.jobs[0].finish, 5.0, 1e-9);
}

TEST_F(DisruptionFixture, RestoredLinkSpeedsBackUp) {
  Simulator::Config config;
  const LinkId uplink =
      fabric_.topology().find_link(fabric_.host(0), fabric_.edge_of_host(0));
  config.disruptions.push_back(CapacityChange{0.0, uplink, 25.0});
  config.disruptions.push_back(CapacityChange{2.0, uplink, 100.0});
  Simulator sim(fabric_, pfs_, config);
  sim.submit(job(150.0, 0, 1));
  const SimResults r = sim.run();
  // 50 B in [0,2] at 25 B/s, then 100 B at full rate: finish at 3.
  EXPECT_NEAR(r.jobs[0].finish, 3.0, 1e-9);
}

TEST_F(DisruptionFixture, UnaffectedPathsKeepFullRate) {
  Simulator::Config config;
  const LinkId uplink =
      fabric_.topology().find_link(fabric_.host(0), fabric_.edge_of_host(0));
  config.disruptions.push_back(CapacityChange{0.0, uplink, 10.0});
  Simulator sim(fabric_, pfs_, config);
  sim.submit(job(100.0, 8, 9));  // different pod entirely
  const SimResults r = sim.run();
  EXPECT_NEAR(r.jobs[0].finish, 1.0, 1e-9);
}

TEST_F(DisruptionFixture, DeadLinkTripsStallGuard) {
  Simulator::Config config;
  config.max_time = 100.0;
  const LinkId uplink =
      fabric_.topology().find_link(fabric_.host(0), fabric_.edge_of_host(0));
  config.disruptions.push_back(CapacityChange{0.5, uplink, 0.0});
  Simulator sim(fabric_, pfs_, config);
  sim.submit(job(200.0, 0, 1));
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST_F(DisruptionFixture, RejectsUnknownLink) {
  Simulator::Config config;
  config.disruptions.push_back(CapacityChange{0.0, LinkId{999999}, 1.0});
  EXPECT_THROW(Simulator(fabric_, pfs_, config), std::logic_error);
}

TEST_F(DisruptionFixture, LinkStatsAccountDeliveredBytes) {
  Simulator::Config config;
  config.collect_link_stats = true;
  Simulator sim(fabric_, pfs_, config);
  sim.submit(job(200.0, 0, 1));
  const SimResults r = sim.run();
  ASSERT_EQ(r.link_bytes.size(), fabric_.topology().link_count());
  const LinkId uplink =
      fabric_.topology().find_link(fabric_.host(0), fabric_.edge_of_host(0));
  EXPECT_NEAR(r.link_bytes[uplink.value()], 200.0, 1e-3);
  // Utilization: 200 B over (100 B/s * 2 s) = 1.0 on the used link.
  EXPECT_NEAR(r.link_utilization(uplink, 100.0), 1.0, 1e-6);
  // An untouched link carried nothing.
  const LinkId other =
      fabric_.topology().find_link(fabric_.host(8), fabric_.edge_of_host(8));
  EXPECT_DOUBLE_EQ(r.link_bytes[other.value()], 0.0);
}

TEST_F(DisruptionFixture, LinkStatsOffByDefault) {
  Simulator sim(fabric_, pfs_);
  sim.submit(job(100.0, 0, 1));
  const SimResults r = sim.run();
  EXPECT_TRUE(r.link_bytes.empty());
  EXPECT_THROW(r.link_utilization(LinkId{0}, 100.0), std::logic_error);
}

}  // namespace
}  // namespace gurita
