// Behavioural tests for the Gurita scheduler: HR observation caching,
// priority dynamics (start-high, demote-only, per-stage reset), LBEF
// ordering, and the paper's motivation examples (Figs. 2 and 4) as
// qualitative scheduling claims.
#include <gtest/gtest.h>

#include "core/gurita.h"
#include "core/head_receiver.h"
#include "flowsim/simulator.h"
#include "sched/pfs.h"
#include "sched/stream.h"
#include "topology/big_switch.h"
#include "topology/fattree.h"

namespace gurita {
namespace {

class GuritaFixture : public ::testing::Test {
 protected:
  GuritaFixture() : fabric_(FatTree::Config{4, 100.0}) {}
  FatTree fabric_;
};

JobSpec one_flow_job(Bytes size, int src, int dst, Time arrival = 0) {
  JobSpec job;
  job.arrival_time = arrival;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{src, dst, size});
  job.coflows.push_back(c);
  job.deps = {{}};
  return job;
}

GuritaScheduler::Config small_scale_config() {
  GuritaScheduler::Config config;
  config.queues = 4;
  config.first_threshold = 75.0;  // Ψ in byte-scale for 100 B/s fixtures
  config.multiplier = 4.0;
  config.delta = 0.1;
  return config;
}

// -------------------------------------------------------------- lifecycle

TEST_F(GuritaFixture, CompletesAllJobs) {
  GuritaScheduler gurita(small_scale_config());
  Simulator sim(fabric_, gurita);
  for (int i = 0; i < 5; ++i)
    sim.submit(one_flow_job(100.0 + 50.0 * i, i, 15 - i, 0.2 * i));
  const SimResults r = sim.run();
  EXPECT_EQ(r.jobs.size(), 5u);
  for (const auto& j : r.jobs) EXPECT_GT(j.jct(), 0.0);
}

TEST_F(GuritaFixture, NewCoflowStartsAtHighestPriority) {
  GuritaScheduler gurita(small_scale_config());
  Simulator sim(fabric_, gurita);
  sim.submit(one_flow_job(1000.0, 0, 1));
  // Immediately after release, before the first δ tick, the coflow must be
  // in queue 0 (the paper: new flows transmit at highest priority).
  EXPECT_EQ(gurita.coflow_queue(CoflowId{0}), 0);
  (void)sim.run();
}

TEST_F(GuritaFixture, ElephantIsDemotedWithinDelta) {
  // A wide elephant coflow (high Ψ) vs a fresh mouse arriving later:
  // the mouse should effectively preempt the demoted elephant.
  GuritaScheduler::Config config = small_scale_config();
  config.starvation_mitigation = false;  // strict SPQ: crisp preemption
  GuritaScheduler gurita(config);
  Simulator sim(fabric_, gurita);
  JobSpec elephant;
  CoflowSpec c;
  for (int i = 0; i < 4; ++i) c.flows.push_back(FlowSpec{i, i + 4, 500.0});
  elephant.coflows.push_back(c);
  elephant.deps = {{}};
  sim.submit(elephant);
  sim.submit(one_flow_job(50.0, 0, 4, 2.0));  // shares links with elephant
  const SimResults r = sim.run();
  // The mouse (job 1) runs at ~full rate despite the elephant backlog.
  EXPECT_LT(r.jobs[1].jct(), 1.5);
}

TEST_F(GuritaFixture, DemoteOnlyWhileCoflowRuns) {
  // Once demoted, a coflow's queue must never climb back (TCP reordering).
  GuritaScheduler::Config config = small_scale_config();
  config.first_threshold = 10.0;  // everything demotes fast
  GuritaScheduler gurita(config);
  Simulator sim(fabric_, gurita);
  JobSpec big;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{0, 1, 2000.0});
  c.flows.push_back(FlowSpec{2, 3, 2000.0});
  big.coflows.push_back(c);
  big.deps = {{}};
  sim.submit(big);
  (void)sim.run();
  // After the run the coflow was erased from the map; this checks the API
  // default. The demote-only property is asserted by the engine not
  // throwing and by LBEF tests below; here we verify accessor behavior.
  EXPECT_EQ(gurita.coflow_queue(CoflowId{0}), 0);
}

TEST_F(GuritaFixture, LaterStageResetsPriority) {
  // A job whose stage 1 is an elephant gets demoted there, but its tiny
  // stage 2 coflow re-enters at the top queue — the core fix over TBS.
  GuritaScheduler::Config config = small_scale_config();
  config.starvation_mitigation = false;
  GuritaScheduler gurita(config);
  Simulator sim(fabric_, gurita);

  JobSpec job;
  CoflowSpec big, tiny;
  big.flows.push_back(FlowSpec{0, 1, 1000.0});
  tiny.flows.push_back(FlowSpec{1, 2, 50.0});
  job.coflows = {big, tiny};
  job.deps = {{}, {0}};
  sim.submit(job);
  // Competitor that has been running on the stage-2 path long enough to be
  // demoted by the time stage 2 starts (t=10).
  sim.submit(one_flow_job(3000.0, 1, 2, 0.0));
  const SimResults r = sim.run();

  // Stage 2 takes ~0.5 s at full rate; TBS-based Stream would park it
  // behind the competitor. Allow generous slack for sharing before the
  // competitor's demotion.
  const double stage2_time = r.coflows[1].cct();
  EXPECT_LT(stage2_time, 2.0);
}

TEST_F(GuritaFixture, StarvationMitigationKeepsElephantMoving) {
  // With WRR on, a demoted elephant still progresses while mice pass.
  GuritaScheduler::Config wrr_config = small_scale_config();
  wrr_config.starvation_mitigation = true;
  GuritaScheduler wrr(wrr_config);
  GuritaScheduler::Config spq_config = small_scale_config();
  spq_config.starvation_mitigation = false;
  GuritaScheduler spq(spq_config);

  auto run = [&](Scheduler& sched) {
    Simulator sim(fabric_, sched);
    sim.submit(one_flow_job(1000.0, 0, 1, 0.0));  // elephant
    for (int i = 0; i < 8; ++i)
      sim.submit(one_flow_job(60.0, 0, 1, 1.0 + i * 0.7));  // mouse stream
    return sim.run();
  };
  const SimResults r_wrr = run(wrr);
  const SimResults r_spq = run(spq);
  // The elephant finishes sooner when it keeps a trickle of bandwidth.
  EXPECT_LT(r_wrr.jobs[0].jct(), r_spq.jobs[0].jct() + 1e-9);
}

// ----------------------------------------------------------- HeadReceiver

TEST_F(GuritaFixture, HeadReceiverObservesActiveCoflows) {
  PfsScheduler pfs;  // neutral scheduler; we drive HR manually
  Simulator sim(fabric_, pfs);
  JobSpec job;
  CoflowSpec c1, c2;
  c1.flows.push_back(FlowSpec{0, 1, 100.0});
  c1.flows.push_back(FlowSpec{2, 3, 300.0});
  c2.flows.push_back(FlowSpec{1, 2, 100.0});
  job.coflows = {c1, c2};
  job.deps = {{}, {0}};
  sim.submit(job);
  (void)sim.run();

  // Post-run: stage-2 coflow finished; HR.update sees no active coflows.
  HeadReceiver hr(JobId{0});
  hr.update(sim.state(), 99.0);
  EXPECT_DOUBLE_EQ(hr.last_update(), 99.0);
  EXPECT_TRUE(hr.observations().empty());
  EXPECT_EQ(hr.completed_stages(), 2);
  EXPECT_THROW(hr.observation(CoflowId{0}), std::logic_error);
}

TEST_F(GuritaFixture, HeadReceiverObservationFields) {
  // Freeze a simulation mid-flight using a tick-driven probe scheduler.
  class Probe final : public Scheduler {
   public:
    std::string name() const override { return "probe"; }
    Time tick_interval() const override { return 1.0; }
    bool on_tick(Time now) override {
      if (now >= 2.0 && !captured_) {
        hr_.update(state(), now);
        captured_ = true;
      }
      return false;
    }
    void assign(Time now, const std::vector<SimFlow*>& active) override {
      (void)now;
      for (SimFlow* f : active) {
        f->tier = 0;
        f->weight = 1.0;
      }
    }
    HeadReceiver hr_{JobId{0}};
    bool captured_ = false;
  };

  Probe probe;
  Simulator sim(fabric_, probe);
  JobSpec job;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{0, 1, 1000.0});  // shares uplink: 50 B/s each
  c.flows.push_back(FlowSpec{0, 2, 1000.0});
  job.coflows.push_back(c);
  job.deps = {{}};
  sim.submit(job);
  (void)sim.run();

  ASSERT_TRUE(probe.captured_);
  const CoflowObservation& obs = probe.hr_.observation(CoflowId{0});
  EXPECT_EQ(obs.stage, 1);
  EXPECT_DOUBLE_EQ(obs.open_connections, 2.0);
  // At t=2 each flow sent ~100 B (50 B/s shared uplink).
  EXPECT_NEAR(obs.ell_max_observed, 100.0, 1.0);
  EXPECT_NEAR(obs.ell_avg_observed, 100.0, 1.0);
  EXPECT_NEAR(obs.bytes_received, 200.0, 2.0);
}

// ------------------------------------------- motivation examples (paper)

// Figure 2: TBS-based scheduling punishes multi-stage job A (bytes 10/1/1/1
// per stage) behind single-stage jobs B, C, D (2 units each); per-stage
// scheduling lowers the average JCT. We reproduce the *claim* (per-stage
// aware < TBS-based on this workload) rather than the paper's toy units.
TEST_F(GuritaFixture, Figure2PerStageBeatsTbsOnMotivationWorkload) {
  auto build_jobs = [&](Simulator& sim) {
    // Job A: four-stage chain, bytes 1000/100/100/100, on hosts 0->1->2->3->4.
    JobSpec a;
    const Bytes stage_bytes[4] = {1000.0, 100.0, 100.0, 100.0};
    for (int s = 0; s < 4; ++s) {
      CoflowSpec c;
      c.flows.push_back(FlowSpec{s, s + 1, stage_bytes[s]});
      a.coflows.push_back(c);
    }
    a.deps = {{}, {0}, {1}, {2}};
    sim.submit(a);
    // Jobs B, C, D: single-stage 600 B jobs contending with A's later mouse
    // stages, arriving as those stages are about to start (stage 1 runs
    // uncontended 0..10 s).
    sim.submit(one_flow_job(600.0, 1, 2, 9.0));
    sim.submit(one_flow_job(600.0, 2, 3, 10.5));
    sim.submit(one_flow_job(600.0, 3, 4, 12.0));
  };

  // TBS-based decentralized baseline (Stream).
  StreamScheduler::Config stream_config;
  stream_config.queues = 4;
  stream_config.first_threshold = 150.0;
  stream_config.multiplier = 4.0;
  stream_config.update_interval = 0.1;
  StreamScheduler stream(stream_config);
  Simulator sim_tbs(fabric_, stream);
  build_jobs(sim_tbs);
  const SimResults r_tbs = sim_tbs.run();

  GuritaScheduler gurita(small_scale_config());
  Simulator sim_stage(fabric_, gurita);
  build_jobs(sim_stage);
  const SimResults r_stage = sim_stage.run();

  // Job A's later mouse stages must not be punished for its early elephant:
  // under TBS (Stream) every 100 B stage parks behind a fresh 600 B job;
  // under Gurita the per-stage blocking effect keeps those stages at high
  // priority. A's JCT improves without wrecking the average.
  EXPECT_LT(r_stage.jobs[0].jct(), r_tbs.jobs[0].jct());
  EXPECT_LE(r_stage.average_jct(), r_tbs.average_jct() * 1.02);
}

// Figure 4: blocking example. Job A has three 2-unit coflows; jobs B, C, D
// have two 3-unit coflows each. Prioritizing the less-blocking B/C/D first
// lowers average JCT (paper: 3.50 vs 4.25 time units).
TEST_F(GuritaFixture, Figure4LeastBlockingFirstLowersAverageJct) {
  // Encode as single-stage jobs on a shared bottleneck: A is wide (3
  // flows), B/C/D narrow (2 flows), equal totals.
  auto submit_all = [&](Simulator& sim) {
    JobSpec a;
    CoflowSpec ca;
    for (int i = 0; i < 3; ++i) ca.flows.push_back(FlowSpec{0, 1, 200.0});
    a.coflows.push_back(ca);
    a.deps = {{}};
    sim.submit(a);
    for (int j = 0; j < 3; ++j) {
      JobSpec b;
      CoflowSpec cb;
      for (int i = 0; i < 2; ++i) cb.flows.push_back(FlowSpec{0, 1, 300.0});
      b.coflows.push_back(cb);
      b.deps = {{}};
      sim.submit(b);
    }
  };

  GuritaScheduler gurita(small_scale_config());
  Simulator sim_g(fabric_, gurita);
  submit_all(sim_g);
  const SimResults r_g = sim_g.run();

  PfsScheduler pfs;
  Simulator sim_p(fabric_, pfs);
  submit_all(sim_p);
  const SimResults r_p = sim_p.run();

  // LBEF should not be worse than fair sharing on the blocking example.
  EXPECT_LE(r_g.average_jct(), r_p.average_jct() * 1.05);
}

// ------------------------------------------------- self-demote regressions

TEST_F(GuritaFixture, SelfDemoteChecksOncePerCoflowUnderInterleavedOrder) {
  // The engine's active list is arrival order modulo swap-with-last
  // removals, so one coflow's flows need not stay contiguous. The old
  // previous-flow dedup re-checked a coflow for every contiguity break;
  // self-demotion must run exactly once per released coflow per assignment
  // regardless.
  //
  // Disjoint same-pod pairs: every flow always runs at the full 100 B/s,
  // so event times are fixed. Job A = one coflow {a1: 300 B, a2: 100 B,
  // a3: 300 B}, job B = {b1: 600 B}, all arriving at t=0.
  //   t=0  arrival assign, active [a1,a2,a3,b1]   -> 2 released coflows
  //   t=1  a2 finishes; swap-pop -> [a1,b1,a3]    -> 2 (A is split by b1;
  //        the old dedup would have checked A twice here, 3 total)
  //   t=3  a1,a3 finish, coflow A finishes        -> 1 (only B remains)
  //   t=6  b1 finishes, run ends (no assignment follows the last event)
  GuritaScheduler::Config config = small_scale_config();
  config.delta = 1000.0;  // suppress HR ticks: isolate per-assign checks
  GuritaScheduler gurita(config);
  Simulator sim(fabric_, gurita);
  JobSpec a;
  CoflowSpec ca;
  ca.flows = {FlowSpec{0, 1, 300.0}, FlowSpec{2, 3, 100.0},
              FlowSpec{4, 5, 300.0}};
  a.coflows.push_back(ca);
  a.deps = {{}};
  sim.submit(a);
  sim.submit(one_flow_job(600.0, 6, 7));
  const SimResults r = sim.run();
  EXPECT_NEAR(r.jobs[0].jct(), 3.0, 1e-9);
  EXPECT_NEAR(r.jobs[1].jct(), 6.0, 1e-9);
  EXPECT_EQ(gurita.stats().self_demote_checks, 5u);
  EXPECT_EQ(gurita.stats().hr_updates, 0u);
}

TEST_F(GuritaFixture, FreshCoflowWithZeroObservationIsNotDemoted) {
  // A released coflow that has not moved a byte (ℓ̈_max = 0, zero bytes)
  // must yield Ψ̈ = 0 at both the HR and the receiver-local check — never a
  // demotion, never a NaN from the ε skew ratio. Hold the flow at rate 0
  // for a full second of δ=0.1 ticks via a dead uplink, then restore; the
  // flow is small enough that Ψ̈ stays below the first threshold afterwards
  // too, so any demotion counted must have come from the zero window.
  const BigSwitch fabric(BigSwitch::Config{4, 100.0});
  GuritaScheduler gurita(small_scale_config());
  Simulator::Config sim_config;
  sim_config.disruptions.push_back(CapacityChange{0.0, fabric.uplink(0), 0.0});
  sim_config.disruptions.push_back(
      CapacityChange{1.0, fabric.uplink(0), 100.0});
  Simulator sim(fabric, gurita, sim_config);
  sim.submit(one_flow_job(50.0, 0, 1));
  const SimResults r = sim.run();
  EXPECT_NEAR(r.makespan, 1.5, 1e-9);
  EXPECT_GE(gurita.stats().hr_updates, 10u);  // ticks saw the zero window
  EXPECT_EQ(gurita.stats().demotions, 0u);
  EXPECT_EQ(gurita.stats().self_demotions, 0u);
}

}  // namespace
}  // namespace gurita
