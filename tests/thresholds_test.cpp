// Unit tests for exponentially-spaced demotion thresholds.
#include <gtest/gtest.h>

#include "sched/thresholds.h"

namespace gurita {
namespace {

TEST(ExpThresholds, LevelsAreExponentiallySpaced) {
  const ExpThresholds t(4, 10.0, 10.0);  // thresholds: 10, 100, 1000
  EXPECT_DOUBLE_EQ(t.threshold(0), 10.0);
  EXPECT_DOUBLE_EQ(t.threshold(1), 100.0);
  EXPECT_DOUBLE_EQ(t.threshold(2), 1000.0);
}

TEST(ExpThresholds, LevelMapping) {
  const ExpThresholds t(4, 10.0, 10.0);
  EXPECT_EQ(t.level(0.0), 0);
  EXPECT_EQ(t.level(9.99), 0);
  EXPECT_EQ(t.level(10.0), 1);  // boundary goes to the lower priority
  EXPECT_EQ(t.level(99.0), 1);
  EXPECT_EQ(t.level(100.0), 2);
  EXPECT_EQ(t.level(999.0), 2);
  EXPECT_EQ(t.level(1000.0), 3);
  EXPECT_EQ(t.level(1e12), 3);  // clamped to the last queue
}

TEST(ExpThresholds, SingleQueueAlwaysLevelZero) {
  const ExpThresholds t(1, 10.0, 10.0);
  EXPECT_EQ(t.level(0.0), 0);
  EXPECT_EQ(t.level(1e18), 0);
}

TEST(ExpThresholds, TwoQueues) {
  const ExpThresholds t(2, 5.0, 2.0);
  EXPECT_EQ(t.level(4.9), 0);
  EXPECT_EQ(t.level(5.0), 1);
}

TEST(ExpThresholds, NonDecreasingInSignal) {
  const ExpThresholds t(8, 1.0, 3.0);
  int prev = 0;
  for (double x = 0; x < 10000; x += 13.7) {
    const int lvl = t.level(x);
    EXPECT_GE(lvl, prev);
    EXPECT_LT(lvl, 8);
    prev = lvl;
  }
}

TEST(ExpThresholds, RejectsBadArguments) {
  EXPECT_THROW(ExpThresholds(0, 1.0, 2.0), std::logic_error);
  EXPECT_THROW(ExpThresholds(4, 0.0, 2.0), std::logic_error);
  EXPECT_THROW(ExpThresholds(4, 1.0, 1.0), std::logic_error);
  EXPECT_THROW(ExpThresholds(4, -5.0, 2.0), std::logic_error);
}

TEST(ExpThresholds, RejectsNegativeSignal) {
  const ExpThresholds t(4, 1.0, 2.0);
  EXPECT_THROW(t.level(-1.0), std::logic_error);
}

TEST(ExpThresholds, ThresholdIndexOutOfRangeThrows) {
  const ExpThresholds t(4, 1.0, 2.0);
  EXPECT_THROW(t.threshold(3), std::logic_error);
  EXPECT_THROW(t.threshold(-1), std::logic_error);
}

class ThresholdQueueCounts : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdQueueCounts, LevelRangeMatchesQueues) {
  const int q = GetParam();
  const ExpThresholds t(q, 2.0, 4.0);
  EXPECT_EQ(t.level(0.0), 0);
  EXPECT_EQ(t.level(1e30), q - 1);
}

INSTANTIATE_TEST_SUITE_P(Queues, ThresholdQueueCounts,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace gurita
