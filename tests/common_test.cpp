// Unit tests for src/common: typed ids, RNG determinism and distribution
// sanity, online statistics, histograms and the check macro.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <unordered_set>

#include "common/check.h"
#include "common/ids.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "common/units.h"

namespace gurita {
namespace {

// ---------------------------------------------------------------- TypedId

TEST(TypedId, DefaultConstructedIsInvalid) {
  FlowId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, FlowId::invalid());
}

TEST(TypedId, ValueRoundTrip) {
  FlowId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(TypedId, Ordering) {
  EXPECT_LT(JobId{1}, JobId{2});
  EXPECT_GT(JobId{3}, JobId{2});
  EXPECT_LE(JobId{2}, JobId{2});
  EXPECT_GE(JobId{2}, JobId{2});
  EXPECT_NE(JobId{1}, JobId{2});
}

TEST(TypedId, Hashable) {
  std::unordered_set<CoflowId> set;
  set.insert(CoflowId{1});
  set.insert(CoflowId{1});
  set.insert(CoflowId{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(IdAllocator, Monotonic) {
  IdAllocator<FlowId> alloc;
  EXPECT_EQ(alloc.next(), FlowId{0});
  EXPECT_EQ(alloc.next(), FlowId{1});
  EXPECT_EQ(alloc.count(), 2u);
  alloc.reset();
  EXPECT_EQ(alloc.next(), FlowId{0});
}

// ------------------------------------------------------------------ Units

TEST(Units, Constants) {
  EXPECT_DOUBLE_EQ(kMB, 1e6);
  EXPECT_DOUBLE_EQ(kGB, 1e9);
  EXPECT_DOUBLE_EQ(kTB, 1e12);
  // 10 Gbit/s = 1.25 GB/s.
  EXPECT_DOUBLE_EQ(gbps(10.0), 1.25e9);
}

// ------------------------------------------------------------------ Check

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(GURITA_CHECK(1 + 1 == 2));
}

TEST(Check, FailingConditionThrowsLogicError) {
  EXPECT_THROW(GURITA_CHECK(false), std::logic_error);
}

TEST(Check, MessageIsIncluded) {
  try {
    GURITA_CHECK_MSG(false, "the reason");
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("the reason"), std::string::npos);
  }
}

// -------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(3.0, 5.0);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(13);
  EXPECT_EQ(rng.uniform_int(4, 4), 4u);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, ExponentialRejectsBadMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::logic_error);
  EXPECT_THROW(rng.exponential(-1.0), std::logic_error);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 2.0), 0.0);
}

TEST(Rng, BoundedParetoWithinBounds) {
  Rng rng(29);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.bounded_pareto(1.0, 100.0, 1.3);
    EXPECT_GE(x, 1.0 - 1e-9);
    EXPECT_LE(x, 100.0 + 1e-9);
  }
}

TEST(Rng, BoundedParetoIsHeavyTailed) {
  // Most mass near the lower bound for alpha > 1.
  Rng rng(31);
  int below_10 = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (rng.bounded_pareto(1.0, 1000.0, 1.5) < 10.0) ++below_10;
  EXPECT_GT(below_10, n * 8 / 10);
}

TEST(Rng, WeightedChoiceRespectsWeights) {
  Rng rng(37);
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i)
    ++counts[rng.weighted_choice({1.0, 2.0, 7.0})];
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / double(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / double(n), 0.7, 0.02);
}

TEST(Rng, WeightedChoiceZeroWeightNeverPicked) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i)
    EXPECT_NE(rng.weighted_choice({1.0, 0.0, 1.0}), 1u);
}

TEST(Rng, WeightedChoiceRejectsDegenerate) {
  Rng rng(43);
  EXPECT_THROW(rng.weighted_choice({}), std::logic_error);
  EXPECT_THROW(rng.weighted_choice({0.0, 0.0}), std::logic_error);
  EXPECT_THROW(rng.weighted_choice({-1.0, 2.0}), std::logic_error);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(123);
  Rng child = a.split();
  Rng b(123);
  (void)b.split();
  // The child stream differs from the parent's continuation.
  EXPECT_NE(child.next_u64(), a.next_u64());
}

// ------------------------------------------------------------ RunningStats

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a, b, all;
  Rng rng(47);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    if (i % 2 == 0)
      a.add(x);
    else
      b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

// ---------------------------------------------------------------- Samples

TEST(Samples, MeanAndPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Samples, PercentileOfEmptyThrows) {
  Samples s;
  EXPECT_THROW(s.percentile(50), std::logic_error);
}

TEST(Samples, PercentileOutOfRangeThrows) {
  Samples s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), std::logic_error);
  EXPECT_THROW(s.percentile(101), std::logic_error);
}

TEST(Samples, AddAfterPercentileStillCorrect) {
  Samples s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

// ------------------------------------------------------------ LogHistogram

TEST(LogHistogram, CountsBucketed) {
  LogHistogram h(10.0);
  h.add(5.0);     // [1, 10)
  h.add(7.0);     // [1, 10)
  h.add(50.0);    // [10, 100)
  h.add(0.5);     // [0.1, 1)
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_in_bucket_of(2.0), 2u);
  EXPECT_EQ(h.count_in_bucket_of(99.0), 1u);
  EXPECT_EQ(h.count_in_bucket_of(0.2), 1u);
  EXPECT_EQ(h.count_in_bucket_of(1e6), 0u);
}

TEST(LogHistogram, ZeroLandsInZeroBucketNegativeThrows) {
  LogHistogram h;
  h.add(0.0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.zeros(), 1u);
  EXPECT_TRUE(h.buckets().empty());
  EXPECT_THROW(h.add(-1.0), std::logic_error);
}

TEST(LogHistogram, RejectsBadBase) {
  EXPECT_THROW(LogHistogram(1.0), std::logic_error);
  EXPECT_THROW(LogHistogram(0.5), std::logic_error);
}

TEST(LogHistogram, PercentileReturnsBucketUpperEdge) {
  LogHistogram h(10.0);
  for (int i = 0; i < 90; ++i) h.add(5.0);    // [1, 10) -> edge 10
  for (int i = 0; i < 9; ++i) h.add(50.0);    // [10, 100) -> edge 100
  h.add(5000.0);                              // [1000, 10000) -> edge 10000
  EXPECT_DOUBLE_EQ(h.percentile(50), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(95), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 10000.0);
}

TEST(LogHistogram, PercentileCountsZerosFirst) {
  LogHistogram h(10.0);
  for (int i = 0; i < 60; ++i) h.add(0.0);
  for (int i = 0; i < 40; ++i) h.add(5.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(95), 10.0);
  EXPECT_THROW(LogHistogram().percentile(50), std::logic_error);
}

TEST(LogHistogram, MergeIsCommutativeAndSums) {
  LogHistogram a(10.0), b(10.0);
  a.add(5.0);
  a.add(0.0);
  b.add(5.0);
  b.add(500.0);
  LogHistogram ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.total(), 4u);
  EXPECT_EQ(ab.zeros(), 1u);
  EXPECT_EQ(ab.count_in_bucket_of(5.0), 2u);
  EXPECT_EQ(ab.count_in_bucket_of(500.0), 1u);
  EXPECT_EQ(ab.to_string(), ba.to_string());
  EXPECT_DOUBLE_EQ(ab.percentile(99), ba.percentile(99));

  LogHistogram other_base(2.0);
  EXPECT_THROW(ab.merge(other_base), std::logic_error);
}

TEST(PercentileRankIndex, NearestRankKernel) {
  // The shared kernel behind Samples, LogHistogram and the metrics
  // collectors: rank = ceil(p/100 * n), clamped to [0, n-1].
  EXPECT_EQ(percentile_rank_index(0, 100), 0u);
  EXPECT_EQ(percentile_rank_index(50, 100), 49u);
  EXPECT_EQ(percentile_rank_index(95, 100), 94u);
  EXPECT_EQ(percentile_rank_index(99, 100), 98u);
  EXPECT_EQ(percentile_rank_index(100, 100), 99u);
  EXPECT_EQ(percentile_rank_index(50, 1), 0u);
  EXPECT_THROW(percentile_rank_index(50, 0), std::logic_error);
  EXPECT_THROW(percentile_rank_index(-1, 10), std::logic_error);
  EXPECT_THROW(percentile_rank_index(101, 10), std::logic_error);
}

TEST(LogHistogram, ToStringListsBuckets) {
  LogHistogram h(10.0);
  h.add(5.0);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("1"), std::string::npos);
}

// -------------------------------------------------------------------- log

TEST(Log, LevelFromString) {
  EXPECT_EQ(log::level_from_string("debug"), log::Level::kDebug);
  EXPECT_EQ(log::level_from_string("info"), log::Level::kInfo);
  EXPECT_EQ(log::level_from_string("warn"), log::Level::kWarn);
  EXPECT_EQ(log::level_from_string("error"), log::Level::kError);
  EXPECT_EQ(log::level_from_string("off"), log::Level::kOff);
  EXPECT_THROW(log::level_from_string("loud"), std::logic_error);
  EXPECT_THROW(log::level_from_string(""), std::logic_error);
}

TEST(Log, SetLevelFiltersBelow) {
  const log::Level saved = log::level();
  log::set_level(log::Level::kError);
  EXPECT_EQ(log::level(), log::Level::kError);
  ::testing::internal::CaptureStderr();
  log::warn("suppressed");
  log::error("emitted");
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("suppressed"), std::string::npos);
  EXPECT_NE(out.find("emitted"), std::string::npos);
  log::set_level(saved);
}

// Hammers write() from every pool worker and asserts whole lines: each line
// must be exactly one writer's composed message — the mutex in write() is
// what keeps concurrent workers from interleaving mid-line.
TEST(Log, ConcurrentWritesStayWholeLines) {
  const log::Level saved = log::level();
  log::set_level(log::Level::kInfo);
  constexpr std::size_t kWriters = 8;
  constexpr int kLinesPerWriter = 200;
  ::testing::internal::CaptureStderr();
  {
    ThreadPool pool(static_cast<int>(kWriters));
    pool.parallel_for(kWriters, [&](std::size_t w) {
      const std::string payload(20 + w, static_cast<char>('a' + w));
      for (int i = 0; i < kLinesPerWriter; ++i) log::info("w", w, " ", payload);
    });
  }
  const std::string out = ::testing::internal::GetCapturedStderr();
  log::set_level(saved);

  std::size_t lines = 0;
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_EQ(line.rfind("[INFO ] w", 0), 0u) << "interleaved line: " << line;
    // "wN <payload>": the payload is one run of a single repeated letter
    // whose length identifies the writer — any mid-line interleaving breaks
    // the run or the length.
    const std::size_t space = line.find(' ', sizeof("[INFO ] ") - 1);
    ASSERT_NE(space, std::string::npos);
    const std::string payload = line.substr(space + 1);
    ASSERT_FALSE(payload.empty());
    const char c = payload[0];
    EXPECT_EQ(payload, std::string(payload.size(), c)) << line;
    EXPECT_EQ(payload.size(), 20 + static_cast<std::size_t>(c - 'a')) << line;
  }
  EXPECT_EQ(lines, kWriters * static_cast<std::size_t>(kLinesPerWriter));
}

}  // namespace
}  // namespace gurita
