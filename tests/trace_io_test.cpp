// Tests for trace serialization: round trips, format validation and
// malformed-input diagnostics.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace gurita {
namespace {

class TraceIoFixture : public ::testing::Test {
 protected:
  std::string path_;

  void SetUp() override {
    path_ = ::testing::TempDir() + "gurita_trace_io_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->line()) +
            ".trace";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write_file(const std::string& contents) {
    std::ofstream out(path_);
    out << contents;
  }
};

TEST_F(TraceIoFixture, RoundTripPreservesEverything) {
  TraceConfig config;
  config.num_jobs = 25;
  config.num_hosts = 64;
  config.seed = 5;
  const std::vector<JobSpec> original = generate_trace(config);

  save_trace(path_, original);
  const std::vector<JobSpec> loaded = load_trace(path_);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t j = 0; j < original.size(); ++j) {
    EXPECT_DOUBLE_EQ(loaded[j].arrival_time, original[j].arrival_time);
    ASSERT_EQ(loaded[j].coflows.size(), original[j].coflows.size());
    EXPECT_EQ(loaded[j].deps, original[j].deps);
    for (std::size_t c = 0; c < original[j].coflows.size(); ++c) {
      const auto& oc = original[j].coflows[c];
      const auto& lc = loaded[j].coflows[c];
      ASSERT_EQ(lc.flows.size(), oc.flows.size());
      for (std::size_t f = 0; f < oc.flows.size(); ++f) {
        EXPECT_EQ(lc.flows[f].src_host, oc.flows[f].src_host);
        EXPECT_EQ(lc.flows[f].dst_host, oc.flows[f].dst_host);
        EXPECT_DOUBLE_EQ(lc.flows[f].size, oc.flows[f].size);
      }
    }
  }
}

TEST_F(TraceIoFixture, LoadedTraceValidatesAgainstFabric) {
  TraceConfig config;
  config.num_jobs = 5;
  config.num_hosts = 16;
  const auto jobs = generate_trace(config);
  save_trace(path_, jobs);
  for (const JobSpec& job : load_trace(path_))
    EXPECT_NO_THROW(validate(job, 16));
}

TEST_F(TraceIoFixture, HandWrittenMinimalTrace) {
  write_file(
      "gurita-trace v1\n"
      "# one two-stage job\n"
      "J 0.5 2\n"
      "C 0\n"
      "F 0 1 1000\n"
      "C 1 0\n"
      "F 1 2 500\n");
  const auto jobs = load_trace(path_);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival_time, 0.5);
  ASSERT_EQ(jobs[0].coflows.size(), 2u);
  EXPECT_EQ(jobs[0].deps[1], (std::vector<int>{0}));
  EXPECT_DOUBLE_EQ(jobs[0].coflows[1].flows[0].size, 500.0);
}

TEST_F(TraceIoFixture, MissingMagicRejected) {
  write_file("J 0 1\nC 0\nF 0 1 10\n");
  EXPECT_THROW(load_trace(path_), std::logic_error);
}

TEST_F(TraceIoFixture, FlowBeforeCoflowRejected) {
  write_file("gurita-trace v1\nJ 0 1\nF 0 1 10\n");
  EXPECT_THROW(load_trace(path_), std::logic_error);
}

TEST_F(TraceIoFixture, CoflowBeforeJobRejected) {
  write_file("gurita-trace v1\nC 0\n");
  EXPECT_THROW(load_trace(path_), std::logic_error);
}

TEST_F(TraceIoFixture, CoflowCountMismatchRejected) {
  write_file("gurita-trace v1\nJ 0 2\nC 0\nF 0 1 10\n");
  EXPECT_THROW(load_trace(path_), std::logic_error);
}

TEST_F(TraceIoFixture, CyclicDepsRejected) {
  write_file(
      "gurita-trace v1\n"
      "J 0 2\n"
      "C 1 1\n"
      "F 0 1 10\n"
      "C 1 0\n"
      "F 1 2 10\n");
  EXPECT_THROW(load_trace(path_), std::logic_error);
}

TEST_F(TraceIoFixture, NonPositiveFlowSizeRejected) {
  write_file("gurita-trace v1\nJ 0 1\nC 0\nF 0 1 0\n");
  EXPECT_THROW(load_trace(path_), std::logic_error);
}

TEST_F(TraceIoFixture, UnknownTagRejected) {
  write_file("gurita-trace v1\nX what\n");
  EXPECT_THROW(load_trace(path_), std::logic_error);
}

TEST_F(TraceIoFixture, MissingFileRejected) {
  EXPECT_THROW(load_trace("/nonexistent/path/to.trace"), std::logic_error);
}

TEST_F(TraceIoFixture, TrailingTokensRejected) {
  write_file("gurita-trace v1\nJ 0 1\nC 0\nF 0 1 10 surprise\n");
  EXPECT_THROW(load_trace(path_), std::logic_error);
}

TEST_F(TraceIoFixture, TruncatedDepListRejected) {
  write_file("gurita-trace v1\nJ 0 2\nC 0\nF 0 1 10\nC 2 0\nF 1 2 10\n");
  EXPECT_THROW(load_trace(path_), std::logic_error);
}

TEST_F(TraceIoFixture, SelfFlowRejected) {
  write_file("gurita-trace v1\nJ 0 1\nC 0\nF 3 3 10\n");
  EXPECT_THROW(load_trace(path_), std::logic_error);
}

TEST_F(TraceIoFixture, NegativeArrivalRejected) {
  write_file("gurita-trace v1\nJ -0.25 1\nC 0\nF 0 1 10\n");
  EXPECT_THROW(load_trace(path_), std::logic_error);
}

TEST_F(TraceIoFixture, EmptyCoflowRejected) {
  write_file("gurita-trace v1\nJ 0 2\nC 0\nC 1 0\nF 1 2 10\n");
  EXPECT_THROW(load_trace(path_), std::logic_error);
}

TEST_F(TraceIoFixture, SaveIsAtomicAndCorruptionIsDetected) {
  TraceConfig config;
  config.num_jobs = 10;
  config.num_hosts = 32;
  const auto jobs = generate_trace(config);
  save_trace(path_, jobs);
  // Atomic save leaves no temp file behind.
  EXPECT_FALSE(std::ifstream(path_ + ".tmp").good());
  std::remove((path_ + ".tmp").c_str());

  // Simulated mid-write crash: truncate the archive in the middle of its
  // last coflow record (an arbitrary byte cut can land on a record
  // boundary and leave a shorter-but-valid trace). The loader must reject
  // it, never return a partial workload silently.
  std::string contents;
  {
    std::ifstream in(path_);
    contents.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  const std::size_t last_coflow = contents.rfind("\nC ");
  ASSERT_NE(last_coflow, std::string::npos);
  write_file(contents.substr(0, last_coflow + 2));  // ends "...\nC"
  EXPECT_THROW(load_trace(path_), std::logic_error);
}

TEST_F(TraceIoFixture, ErrorsCarryLineNumbers) {
  write_file("gurita-trace v1\nJ 0 1\nC 0\nF 0 1 10\nX bogus\n");
  try {
    (void)load_trace(path_);
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos);
  }
}

}  // namespace
}  // namespace gurita
