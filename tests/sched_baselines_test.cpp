// Behavioural tests for the four baseline schedulers: PFS fairness, Baraat
// FIFO-LM ordering and heavy-job multiplexing, Stream TBS demotion, Aalo
// D-CLAS coflow demotion with intra-queue FIFO.
#include <gtest/gtest.h>

#include "flowsim/simulator.h"
#include "sched/aalo.h"
#include "sched/baraat.h"
#include "sched/pfs.h"
#include "sched/stream.h"
#include "topology/fattree.h"

namespace gurita {
namespace {

JobSpec one_flow_job(Bytes size, int src, int dst, Time arrival = 0) {
  JobSpec job;
  job.arrival_time = arrival;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{src, dst, size});
  job.coflows.push_back(c);
  job.deps = {{}};
  return job;
}

class BaselineFixture : public ::testing::Test {
 protected:
  BaselineFixture() : fabric_(FatTree::Config{4, 100.0}) {}
  FatTree fabric_;
};

// -------------------------------------------------------------------- PFS

TEST_F(BaselineFixture, PfsSharesEqually) {
  PfsScheduler pfs;
  Simulator sim(fabric_, pfs);
  // Two jobs, same host pair: equal sharing means both finish at t=4
  // (200 B total at 100 B/s shared -> each at 50 B/s for 2 s, then the
  // remaining one... actually equal sizes finish together at t=2*size/cap).
  sim.submit(one_flow_job(100.0, 0, 1));
  sim.submit(one_flow_job(100.0, 0, 1));
  const SimResults r = sim.run();
  EXPECT_NEAR(r.jobs[0].jct(), 2.0, 1e-9);
  EXPECT_NEAR(r.jobs[1].jct(), 2.0, 1e-9);
}

TEST_F(BaselineFixture, PfsNameAndDefaults) {
  PfsScheduler pfs;
  EXPECT_EQ(pfs.name(), "pfs");
  EXPECT_DOUBLE_EQ(pfs.tick_interval(), 0.0);
}

// ----------------------------------------------------------------- Baraat

TEST_F(BaselineFixture, BaraatServesFifo) {
  BaraatScheduler::Config config;
  config.base_multiplexing = 1;  // strict FIFO for crisp arithmetic
  BaraatScheduler baraat(config);
  Simulator sim(fabric_, baraat);
  // Job 0 arrives first and is light: it should run alone at full rate;
  // job 1 (same links) waits behind it.
  sim.submit(one_flow_job(100.0, 0, 1, 0.0));
  sim.submit(one_flow_job(100.0, 0, 1, 0.5));
  const SimResults r = sim.run();
  EXPECT_NEAR(r.jobs[0].jct(), 1.0, 1e-9);        // full rate, no sharing
  EXPECT_NEAR(r.jobs[1].finish, 2.0, 1e-9);       // starts at t=1
}

TEST_F(BaselineFixture, BaraatHeavyJobLetsOthersPass) {
  BaraatScheduler::Config config;
  config.heavy_threshold = 50.0;  // bytes
  config.base_multiplexing = 1;
  BaraatScheduler baraat(config);
  Simulator sim(fabric_, baraat);
  // Job 0 is an elephant: once it exceeds 50 B sent it is heavy and job 1
  // multiplexes with it instead of waiting for all 1000 B.
  sim.submit(one_flow_job(1000.0, 0, 1, 0.0));
  sim.submit(one_flow_job(100.0, 0, 1, 1.0));
  const SimResults r = sim.run();
  // Strict FIFO would finish job 1 at t=11 (JCT 10). With multiplexing it
  // shares fairly once the elephant is marked heavy: finishes earlier.
  EXPECT_LT(r.jobs[1].jct(), 5.0);
  // The elephant still finishes around t=11 (its tail runs alone).
  EXPECT_NEAR(r.jobs[0].finish, 11.0, 0.5);
}

TEST_F(BaselineFixture, BaraatLightJobsStillOrdered) {
  BaraatScheduler::Config config;
  config.base_multiplexing = 1;  // nothing is heavy; strict FIFO
  BaraatScheduler baraat(config);
  Simulator sim(fabric_, baraat);
  sim.submit(one_flow_job(100.0, 0, 1, 0.0));
  sim.submit(one_flow_job(100.0, 0, 1, 0.0));
  sim.submit(one_flow_job(100.0, 0, 1, 0.0));
  const SimResults r = sim.run();
  // FIFO by submission order (serial ties broken by arrival processing):
  // sequential completions at 1, 2, 3.
  std::vector<double> finishes = {r.jobs[0].finish, r.jobs[1].finish,
                                  r.jobs[2].finish};
  std::sort(finishes.begin(), finishes.end());
  EXPECT_NEAR(finishes[0], 1.0, 1e-9);
  EXPECT_NEAR(finishes[1], 2.0, 1e-9);
  EXPECT_NEAR(finishes[2], 3.0, 1e-9);
}

TEST_F(BaselineFixture, BaraatBaseMultiplexingSharesAmongFirstM) {
  BaraatScheduler::Config config;
  config.base_multiplexing = 2;
  BaraatScheduler baraat(config);
  Simulator sim(fabric_, baraat);
  for (int i = 0; i < 3; ++i) sim.submit(one_flow_job(100.0, 0, 1, 0.0));
  const SimResults r = sim.run();
  // First two share (finish together at 2); the third runs after: 3.
  std::vector<double> finishes = {r.jobs[0].finish, r.jobs[1].finish,
                                  r.jobs[2].finish};
  std::sort(finishes.begin(), finishes.end());
  EXPECT_NEAR(finishes[0], 2.0, 1e-9);
  EXPECT_NEAR(finishes[1], 2.0, 1e-9);
  EXPECT_NEAR(finishes[2], 3.0, 1e-9);
}

// ----------------------------------------------------------------- Stream

TEST_F(BaselineFixture, StreamDemotesByTotalBytesSent) {
  StreamScheduler::Config config;
  config.queues = 2;
  config.first_threshold = 150.0;  // bytes
  config.update_interval = 0.1;
  StreamScheduler stream(config);
  Simulator sim(fabric_, stream);
  // Job 0: 400 B elephant. Job 1 arrives later, small. Once job 0 crosses
  // 150 B sent it drops to queue 1 and job 1 preempts it.
  sim.submit(one_flow_job(400.0, 0, 1, 0.0));
  sim.submit(one_flow_job(100.0, 0, 1, 2.5));
  const SimResults r = sim.run();
  // Job 1 runs at full rate on arrival: JCT ~= 1.
  EXPECT_NEAR(r.jobs[1].jct(), 1.0, 0.2);
  // Job 0 pauses while job 1 runs: finish ~= 5.
  EXPECT_NEAR(r.jobs[0].finish, 5.0, 0.2);
}

TEST_F(BaselineFixture, StreamPunishesEarlyBytesAcrossStages) {
  // The pathology Gurita fixes: a job that sent many bytes in stage 1
  // keeps its low priority in a tiny stage 2.
  StreamScheduler::Config config;
  config.queues = 2;
  config.first_threshold = 150.0;
  config.update_interval = 0.1;
  StreamScheduler stream(config);
  Simulator sim(fabric_, stream);

  JobSpec big_then_small;
  CoflowSpec c1, c2;
  c1.flows.push_back(FlowSpec{0, 1, 400.0});
  c2.flows.push_back(FlowSpec{1, 2, 50.0});
  big_then_small.coflows = {c1, c2};
  big_then_small.deps = {{}, {0}};
  sim.submit(big_then_small);
  // Competitor on the stage-2 path, arriving when stage 2 starts.
  sim.submit(one_flow_job(400.0, 1, 2, 4.0));
  const SimResults r = sim.run();

  // Job 0's stage 2 (50 B) is stuck at queue 1 while the fresh job 1 runs
  // at queue 0 (until job 1 itself crosses the 150 B boundary and the two
  // share): stage 2 pays multiple seconds for 0.5 s of work.
  EXPECT_GT(r.jobs[0].jct(), 6.0);
  // Reference: without the competitor the job would finish in 4.5 s.
  EXPECT_NEAR(r.coflows[0].finish, 4.0, 0.1);
}

TEST_F(BaselineFixture, StreamTickIntervalConfigured) {
  StreamScheduler::Config config;
  config.update_interval = 0.25;
  StreamScheduler stream(config);
  EXPECT_DOUBLE_EQ(stream.tick_interval(), 0.25);
}

// ------------------------------------------------------------------- Aalo

TEST_F(BaselineFixture, AaloPrioritizesFreshCoflows) {
  AaloScheduler::Config config;
  config.queues = 2;
  config.first_threshold = 150.0;
  AaloScheduler aalo(config);
  Simulator sim(fabric_, aalo);
  sim.submit(one_flow_job(400.0, 0, 1, 0.0));
  sim.submit(one_flow_job(100.0, 0, 1, 2.5));
  const SimResults r = sim.run();
  // With instantaneous global knowledge the elephant is demoted as soon as
  // it crosses the boundary, so the late small coflow runs at full rate.
  EXPECT_NEAR(r.jobs[1].jct(), 1.0, 1e-6);
  EXPECT_NEAR(r.jobs[0].finish, 5.0, 1e-6);
}

TEST_F(BaselineFixture, AaloFifoWithinQueue) {
  AaloScheduler::Config config;
  config.queues = 2;
  config.first_threshold = 1e9;  // nobody demotes: all in queue 0
  config.intra_queue_fifo = true;
  AaloScheduler aalo(config);
  Simulator sim(fabric_, aalo);
  sim.submit(one_flow_job(100.0, 0, 1, 0.0));
  sim.submit(one_flow_job(100.0, 0, 1, 0.0));
  const SimResults r = sim.run();
  // Intra-queue FIFO: first released coflow runs first, completions at 1, 2.
  std::vector<double> finishes = {r.jobs[0].finish, r.jobs[1].finish};
  std::sort(finishes.begin(), finishes.end());
  EXPECT_NEAR(finishes[0], 1.0, 1e-9);
  EXPECT_NEAR(finishes[1], 2.0, 1e-9);
}

TEST_F(BaselineFixture, AaloPerStagePriorityResets) {
  // Unlike Stream, Aalo demotes *coflows*, so a job's later small coflow
  // starts fresh in the top queue even after an elephant first stage.
  AaloScheduler::Config config;
  config.queues = 2;
  config.first_threshold = 150.0;
  AaloScheduler aalo(config);
  Simulator sim(fabric_, aalo);

  JobSpec big_then_small;
  CoflowSpec c1, c2;
  c1.flows.push_back(FlowSpec{0, 1, 400.0});
  c2.flows.push_back(FlowSpec{1, 2, 50.0});
  big_then_small.coflows = {c1, c2};
  big_then_small.deps = {{}, {0}};
  sim.submit(big_then_small);
  sim.submit(one_flow_job(400.0, 1, 2, 4.0));
  const SimResults r = sim.run();

  // Stage 2 (a fresh 50 B coflow, queue 0) defeats job 1 (already demoted
  // by the time it has sent 150 B): job 0 completes in about 4.5-5 s.
  EXPECT_LT(r.jobs[0].jct(), 6.0);
}

}  // namespace
}  // namespace gurita
