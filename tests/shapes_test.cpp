// Unit tests for the job-shape builders (chain, tree, W, inverted-V, ...)
// and the random-DAG generator used by property tests.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "coflow/shapes.h"

namespace gurita::shapes {
namespace {

int count_leaves(const Deps& deps) {
  int leaves = 0;
  for (const auto& d : deps)
    if (d.empty()) ++leaves;
  return leaves;
}

int count_roots(const Deps& deps) {
  std::vector<bool> has_dependent(deps.size(), false);
  for (const auto& d : deps)
    for (int x : d) has_dependent[static_cast<std::size_t>(x)] = true;
  int roots = 0;
  for (std::size_t i = 0; i < deps.size(); ++i)
    if (!has_dependent[i]) ++roots;
  return roots;
}

TEST(Shapes, Single) {
  const Deps d = single();
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(depth_of(d), 1);
}

TEST(Shapes, Chain) {
  const Deps d = chain(5);
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(depth_of(d), 5);
  EXPECT_EQ(count_leaves(d), 1);
  EXPECT_EQ(count_roots(d), 1);
}

TEST(Shapes, ChainOfOneIsSingle) {
  EXPECT_EQ(chain(1), single());
}

TEST(Shapes, ChainRejectsNonPositive) {
  EXPECT_THROW(chain(0), std::logic_error);
}

TEST(Shapes, ParallelChains) {
  const Deps d = parallel_chains(3, 4);
  EXPECT_EQ(d.size(), 12u);
  EXPECT_EQ(depth_of(d), 4);
  EXPECT_EQ(count_leaves(d), 3);
  EXPECT_EQ(count_roots(d), 3);
}

TEST(Shapes, TreeBinaryDepthThree) {
  // depth 3, fanout 2: 1 root + 2 + 4 = 7 nodes.
  const Deps d = tree(3, 2);
  EXPECT_EQ(d.size(), 7u);
  EXPECT_EQ(depth_of(d), 3);
  EXPECT_EQ(count_leaves(d), 4);
  EXPECT_EQ(count_roots(d), 1);
  // Every non-leaf has exactly `fanout` dependencies.
  int internal = 0;
  for (const auto& dep : d)
    if (!dep.empty()) {
      EXPECT_EQ(dep.size(), 2u);
      ++internal;
    }
  EXPECT_EQ(internal, 3);
}

TEST(Shapes, TreeDepthOneIsSingle) {
  EXPECT_EQ(tree(1, 3), single());
}

TEST(Shapes, InvertedV) {
  const Deps d = inverted_v(4);
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(depth_of(d), 2);
  EXPECT_EQ(count_leaves(d), 4);
  EXPECT_EQ(count_roots(d), 1);
}

TEST(Shapes, VShape) {
  const Deps d = v_shape(3);
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(depth_of(d), 2);
  EXPECT_EQ(count_leaves(d), 1);
  EXPECT_EQ(count_roots(d), 3);
}

TEST(Shapes, WShape) {
  const Deps d = w_shape();
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(depth_of(d), 2);
  EXPECT_EQ(count_leaves(d), 3);
  EXPECT_EQ(count_roots(d), 2);
  // The middle leaf (1) feeds both roots.
  EXPECT_EQ(d[3], (std::vector<int>{0, 1}));
  EXPECT_EQ(d[4], (std::vector<int>{1, 2}));
}

TEST(Shapes, MultiRoot) {
  const Deps d = multi_root(3, 4);
  EXPECT_EQ(d.size(), 7u);
  EXPECT_EQ(count_roots(d), 3);
  EXPECT_EQ(count_leaves(d), 4);
  EXPECT_EQ(depth_of(d), 2);
}

class RandomDagSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDagSeeds, AlwaysAcyclicAndInRange) {
  Rng rng(GetParam());
  const Deps d = random_dag(rng, 12, 0.3);
  ASSERT_EQ(d.size(), 12u);
  // Edges only point backwards (i depends on j < i) => acyclic by
  // construction; depth_of throws on cycles.
  for (std::size_t i = 0; i < d.size(); ++i)
    for (int dep : d[i]) {
      EXPECT_GE(dep, 0);
      EXPECT_LT(dep, static_cast<int>(i));
    }
  EXPECT_NO_THROW(depth_of(d));
  EXPECT_GE(depth_of(d), 1);
  EXPECT_LE(depth_of(d), 12);
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, RandomDagSeeds,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(Shapes, RandomDagEdgeProbabilityExtremes) {
  Rng rng(5);
  const Deps none = random_dag(rng, 6, 0.0);
  for (const auto& d : none) EXPECT_TRUE(d.empty());
  const Deps all = random_dag(rng, 6, 1.0);
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(all[i].size(), i);
  EXPECT_EQ(depth_of(all), 6);
}

TEST(Shapes, DepthOfDetectsCycle) {
  Deps cyclic(2);
  cyclic[0] = {1};
  cyclic[1] = {0};
  EXPECT_THROW(depth_of(cyclic), std::logic_error);
}

}  // namespace
}  // namespace gurita::shapes
