// Property tests under failure injection: random link degradations must
// never break the engine's structural invariants, only slow things down.
#include <gtest/gtest.h>

#include "coflow/shapes.h"
#include "exp/registry.h"
#include "flowsim/simulator.h"
#include "topology/fattree.h"

namespace gurita {
namespace {

std::vector<JobSpec> random_jobs(Rng& rng, int num_hosts) {
  std::vector<JobSpec> jobs;
  const int count = 4 + static_cast<int>(rng.uniform_int(0, 4));
  for (int j = 0; j < count; ++j) {
    JobSpec job;
    job.arrival_time = rng.uniform(0.0, 1.0);
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 3));
    job.deps = shapes::random_dag(rng, n, 0.4);
    for (int c = 0; c < n; ++c) {
      CoflowSpec coflow;
      const int width = 1 + static_cast<int>(rng.uniform_int(0, 2));
      for (int f = 0; f < width; ++f) {
        FlowSpec flow;
        flow.src_host = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(num_hosts) - 1));
        do {
          flow.dst_host = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(num_hosts) - 1));
        } while (flow.dst_host == flow.src_host);
        flow.size = rng.uniform(20.0, 400.0);
        coflow.flows.push_back(flow);
      }
      job.coflows.push_back(coflow);
    }
    jobs.push_back(job);
  }
  return jobs;
}

class DisruptionProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisruptionProperties, InvariantsSurviveDegradations) {
  Rng rng(GetParam());
  const FatTree fabric(FatTree::Config{4, 100.0});
  const auto jobs = random_jobs(rng, fabric.num_hosts());

  Simulator::Config config;
  // A handful of random degradations (never to zero) and restorations.
  const int changes = 2 + static_cast<int>(rng.uniform_int(0, 4));
  for (int i = 0; i < changes; ++i) {
    CapacityChange change;
    change.time = rng.uniform(0.0, 5.0);
    change.link = LinkId{rng.uniform_int(0, fabric.topology().link_count() - 1)};
    change.new_capacity = rng.uniform(10.0, 100.0);
    config.disruptions.push_back(change);
  }

  const auto sched = make_scheduler(GetParam() % 2 == 0 ? "gurita" : "pfs");
  Simulator sim(fabric, *sched, config);
  for (const auto& job : jobs) sim.submit(job);
  const SimResults results = sim.run();

  // Everything still completes, bytes conserved, DAG order preserved.
  ASSERT_EQ(results.jobs.size(), jobs.size());
  const SimState& state = sim.state();
  for (std::size_t i = 0; i < state.flow_count(); ++i) {
    const SimFlow& f = state.flow(FlowId{i});
    EXPECT_TRUE(f.finished());
    EXPECT_NEAR(f.bytes_sent(), f.size, 1e-2);
  }
  for (std::size_t j = 0; j < state.job_count(); ++j) {
    const SimJob& job = state.job(JobId{j});
    for (std::size_t c = 0; c < job.coflows.size(); ++c) {
      const SimCoflow& coflow = state.coflow(job.coflows[c]);
      double dep_finish = job.arrival_time;
      for (int d : job.spec.deps[c])
        dep_finish = std::max(
            dep_finish,
            state.coflow(job.coflows[static_cast<std::size_t>(d)]).finish_time);
      EXPECT_NEAR(coflow.release_time, dep_finish, 1e-9);
    }
  }
}

TEST_P(DisruptionProperties, DegradationNeverSpeedsUpTheRun) {
  Rng rng(GetParam() + 1000);
  const FatTree fabric(FatTree::Config{4, 100.0});
  const auto jobs = random_jobs(rng, fabric.num_hosts());

  auto run_with = [&](bool degrade) {
    Simulator::Config config;
    if (degrade) {
      // Degrade every host uplink to half rate at t=0: uniform slowdown.
      for (int h = 0; h < fabric.num_hosts(); ++h) {
        const LinkId up =
            fabric.topology().find_link(fabric.host(h), fabric.edge_of_host(h));
        config.disruptions.push_back(CapacityChange{0.0, up, 50.0});
      }
    }
    const auto sched = make_scheduler("pfs");
    Simulator sim(fabric, *sched, config);
    for (const auto& job : jobs) sim.submit(job);
    return sim.run();
  };

  const SimResults normal = run_with(false);
  const SimResults degraded = run_with(true);
  EXPECT_GE(degraded.makespan, normal.makespan - 1e-9);
  for (std::size_t i = 0; i < normal.jobs.size(); ++i)
    EXPECT_GE(degraded.jobs[i].jct(), normal.jobs[i].jct() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisruptionProperties,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace gurita
