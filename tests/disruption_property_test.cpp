// Property tests under failure injection: random link degradations and
// random fault plans must never break the engine's structural invariants,
// only slow things down (or fail jobs, accounted exactly).
#include <gtest/gtest.h>

#include <sstream>

#include "coflow/shapes.h"
#include "exp/experiment.h"
#include "exp/registry.h"
#include "fault/plan.h"
#include "flowsim/simulator.h"
#include "topology/fattree.h"

namespace gurita {
namespace {

std::vector<JobSpec> random_jobs(Rng& rng, int num_hosts) {
  std::vector<JobSpec> jobs;
  const int count = 4 + static_cast<int>(rng.uniform_int(0, 4));
  for (int j = 0; j < count; ++j) {
    JobSpec job;
    job.arrival_time = rng.uniform(0.0, 1.0);
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 3));
    job.deps = shapes::random_dag(rng, n, 0.4);
    for (int c = 0; c < n; ++c) {
      CoflowSpec coflow;
      const int width = 1 + static_cast<int>(rng.uniform_int(0, 2));
      for (int f = 0; f < width; ++f) {
        FlowSpec flow;
        flow.src_host = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(num_hosts) - 1));
        do {
          flow.dst_host = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(num_hosts) - 1));
        } while (flow.dst_host == flow.src_host);
        flow.size = rng.uniform(20.0, 400.0);
        coflow.flows.push_back(flow);
      }
      job.coflows.push_back(coflow);
    }
    jobs.push_back(job);
  }
  return jobs;
}

class DisruptionProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisruptionProperties, InvariantsSurviveDegradations) {
  Rng rng(GetParam());
  const FatTree fabric(FatTree::Config{4, 100.0});
  const auto jobs = random_jobs(rng, fabric.num_hosts());

  Simulator::Config config;
  // A handful of random degradations (never to zero) and restorations.
  const int changes = 2 + static_cast<int>(rng.uniform_int(0, 4));
  for (int i = 0; i < changes; ++i) {
    CapacityChange change;
    change.time = rng.uniform(0.0, 5.0);
    change.link = LinkId{rng.uniform_int(0, fabric.topology().link_count() - 1)};
    change.new_capacity = rng.uniform(10.0, 100.0);
    config.disruptions.push_back(change);
  }

  const auto sched = make_scheduler(GetParam() % 2 == 0 ? "gurita" : "pfs");
  Simulator sim(fabric, *sched, config);
  for (const auto& job : jobs) sim.submit(job);
  const SimResults results = sim.run();

  // Everything still completes, bytes conserved, DAG order preserved.
  ASSERT_EQ(results.jobs.size(), jobs.size());
  const SimState& state = sim.state();
  for (std::size_t i = 0; i < state.flow_count(); ++i) {
    const SimFlow& f = state.flow(FlowId{i});
    EXPECT_TRUE(f.finished());
    EXPECT_NEAR(f.bytes_sent(), f.size, 1e-2);
  }
  for (std::size_t j = 0; j < state.job_count(); ++j) {
    const SimJob& job = state.job(JobId{j});
    for (std::size_t c = 0; c < job.coflows.size(); ++c) {
      const SimCoflow& coflow = state.coflow(job.coflows[c]);
      double dep_finish = job.arrival_time;
      for (int d : job.spec.deps[c])
        dep_finish = std::max(
            dep_finish,
            state.coflow(job.coflows[static_cast<std::size_t>(d)]).finish_time);
      EXPECT_NEAR(coflow.release_time, dep_finish, 1e-9);
    }
  }
}

TEST_P(DisruptionProperties, DegradationNeverSpeedsUpTheRun) {
  Rng rng(GetParam() + 1000);
  const FatTree fabric(FatTree::Config{4, 100.0});
  const auto jobs = random_jobs(rng, fabric.num_hosts());

  auto run_with = [&](bool degrade) {
    Simulator::Config config;
    if (degrade) {
      // Degrade every host uplink to half rate at t=0: uniform slowdown.
      for (int h = 0; h < fabric.num_hosts(); ++h) {
        const LinkId up =
            fabric.topology().find_link(fabric.host(h), fabric.edge_of_host(h));
        config.disruptions.push_back(CapacityChange{0.0, up, 50.0});
      }
    }
    const auto sched = make_scheduler("pfs");
    Simulator sim(fabric, *sched, config);
    for (const auto& job : jobs) sim.submit(job);
    return sim.run();
  };

  const SimResults normal = run_with(false);
  const SimResults degraded = run_with(true);
  EXPECT_GE(degraded.makespan, normal.makespan - 1e-9);
  for (std::size_t i = 0; i < normal.jobs.size(); ++i)
    EXPECT_GE(degraded.jobs[i].jct(), normal.jobs[i].jct() - 1e-9);
}

TEST_P(DisruptionProperties, RandomFaultPlansPreserveInvariants) {
  Rng rng(GetParam() + 2000);
  const FatTree fabric(FatTree::Config{4, 100.0});
  const auto jobs = random_jobs(rng, fabric.num_hosts());

  // A randomly generated fault plan over the busy window, with a tight
  // retry budget so job failures are actually reachable.
  FaultPlanConfig plan;
  plan.host_crash_rate = rng.uniform(0.5, 3.0);
  plan.link_flap_rate = rng.uniform(0.5, 2.0);
  plan.straggler_rate = rng.uniform(0.5, 3.0);
  plan.state_loss_rate = rng.uniform(0.0, 1.0);
  plan.horizon = 4.0;
  plan.mean_downtime = 0.3;
  plan.retry.max_attempts = 3;

  Simulator::Config config;
  config.faults = generate_fault_plan(plan, GetParam() * 7919 + 13,
                                      fabric.num_hosts(),
                                      fabric.topology().link_count());

  // Rotate through every scheduler implementing the fault hooks.
  static const char* kNames[] = {"gurita", "gurita_plus", "aalo", "baraat",
                                 "varys"};
  const auto sched = make_scheduler(kNames[GetParam() % 5]);
  Simulator sim(fabric, *sched, config);
  for (const auto& job : jobs) sim.submit(job);
  const SimResults results = sim.run();

  const SimState& state = sim.state();
  ASSERT_EQ(results.jobs.size(), jobs.size());

  // Job-failure accounting matches between results and state.
  std::size_t failed = 0;
  for (std::size_t j = 0; j < state.job_count(); ++j)
    if (state.job(JobId{j}).failed) ++failed;
  EXPECT_EQ(failed, results.failed_jobs);

  // Per-flow invariants: bytes stay in range, every flow of a surviving
  // job completed in full, and flows of failed jobs are finished,
  // cancelled or never released — nothing is left limping.
  Bytes lost = 0;
  for (std::size_t i = 0; i < state.flow_count(); ++i) {
    const SimFlow& f = state.flow(FlowId{i});
    lost += f.lost_bytes;
    EXPECT_GE(f.remaining, -1e-6);
    EXPECT_LE(f.remaining, f.size + 1e-6);
    if (!state.job(f.job).failed) {
      EXPECT_TRUE(f.finished());
      EXPECT_FALSE(f.cancelled);
      EXPECT_NEAR(f.bytes_sent(), f.size, 1e-2);
    } else {
      EXPECT_TRUE(f.finished() || f.cancelled || !f.started());
    }
  }
  EXPECT_NEAR(lost, results.bytes_lost, 1e-6);
  // Every retry re-entered a previously aborted flow, and only bytes that
  // were lost can have been re-sent.
  EXPECT_LE(results.flow_retries, results.flow_aborts);
  EXPECT_LE(results.bytes_retransmitted, results.bytes_lost + 1e-6);

  // DAG order still holds for the coflows that did release.
  for (std::size_t j = 0; j < state.job_count(); ++j) {
    const SimJob& job = state.job(JobId{j});
    for (std::size_t c = 0; c < job.coflows.size(); ++c) {
      const SimCoflow& coflow = state.coflow(job.coflows[c]);
      if (!coflow.released()) continue;
      for (int d : job.spec.deps[c]) {
        const SimCoflow& dep =
            state.coflow(job.coflows[static_cast<std::size_t>(d)]);
        ASSERT_TRUE(dep.finished());
        EXPECT_GE(coflow.release_time, dep.finish_time - 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisruptionProperties,
                         ::testing::Range<std::uint64_t>(0, 8));

// The determinism contract extended to faults: a faulty replicated sweep —
// trace, metrics and fault counters included — is byte-identical whether
// the replicates run serially or sharded over 2 or 8 workers.
TEST(FaultDeterminism, ByteIdenticalAcrossWorkerCounts) {
  ExperimentConfig config = trace_scenario(StructureKind::kFbTao, 30, 11);
  config.fat_tree_k = 4;
  config.obs.trace = true;
  config.faults.enabled = true;
  config.faults.plan.host_crash_rate = 3.0;
  config.faults.plan.link_flap_rate = 1.0;
  config.faults.plan.straggler_rate = 4.0;
  config.faults.plan.state_loss_rate = 1.0;
  const std::vector<std::string> names = {"gurita", "gurita_plus", "aalo",
                                          "baraat", "varys"};

  const auto fingerprint = [&](int jobs) {
    const ComparisonResult pooled =
        compare_schedulers_seeds(config, names, /*num_seeds=*/4, jobs);
    std::ostringstream os;
    os.precision(17);
    for (const auto& [name, res] : pooled.results) {
      os << name << " " << res.makespan << " " << res.average_jct() << " "
         << res.failed_jobs << " " << res.flow_aborts << " "
         << res.flow_retries << " " << res.bytes_lost << " "
         << res.bytes_retransmitted << " " << res.total_recovery_latency
         << " " << res.events << "\n";
      obs::write_jsonl(os, res.trace, name);
    }
    return os.str();
  };

  const std::string serial = fingerprint(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, fingerprint(2));
  EXPECT_EQ(serial, fingerprint(8));
}

}  // namespace
}  // namespace gurita
