// Unit tests for src/coflow: coflow dimensions, job validation, stage
// assignment, topological ordering and the shape builders.
#include <gtest/gtest.h>

#include "coflow/coflow.h"
#include "coflow/job.h"
#include "coflow/shapes.h"

namespace gurita {
namespace {

CoflowSpec coflow_with_sizes(std::initializer_list<Bytes> sizes) {
  CoflowSpec c;
  int host = 0;
  for (Bytes s : sizes) {
    c.flows.push_back(FlowSpec{host, host + 1, s});
    host += 2;
  }
  return c;
}

// ------------------------------------------------------------- CoflowSpec

TEST(CoflowSpec, Dimensions) {
  const CoflowSpec c = coflow_with_sizes({10.0, 30.0, 20.0});
  EXPECT_EQ(c.width(), 3u);            // horizontal
  EXPECT_DOUBLE_EQ(c.max_flow_size(), 30.0);  // vertical
  EXPECT_DOUBLE_EQ(c.total_bytes(), 60.0);
  EXPECT_DOUBLE_EQ(c.avg_flow_size(), 20.0);
}

TEST(CoflowSpec, EmptyCoflow) {
  const CoflowSpec c;
  EXPECT_EQ(c.width(), 0u);
  EXPECT_DOUBLE_EQ(c.max_flow_size(), 0.0);
  EXPECT_DOUBLE_EQ(c.avg_flow_size(), 0.0);
}

// ---------------------------------------------------------------- JobSpec

JobSpec two_stage_job() {
  JobSpec job;
  job.coflows.push_back(coflow_with_sizes({5.0}));
  job.coflows.push_back(coflow_with_sizes({7.0, 3.0}));
  job.deps = {{}, {0}};  // coflow 1 depends on coflow 0
  return job;
}

TEST(JobSpec, TotalBytes) {
  EXPECT_DOUBLE_EQ(two_stage_job().total_bytes(), 15.0);
}

TEST(JobValidate, AcceptsWellFormed) {
  EXPECT_NO_THROW(validate(two_stage_job(), 16));
}

TEST(JobValidate, RejectsEmptyJob) {
  JobSpec job;
  EXPECT_THROW(validate(job, 16), std::logic_error);
}

TEST(JobValidate, RejectsDepsSizeMismatch) {
  JobSpec job = two_stage_job();
  job.deps.pop_back();
  EXPECT_THROW(validate(job, 16), std::logic_error);
}

TEST(JobValidate, RejectsSelfDependency) {
  JobSpec job = two_stage_job();
  job.deps[0] = {0};
  EXPECT_THROW(validate(job, 16), std::logic_error);
}

TEST(JobValidate, RejectsOutOfRangeDependency) {
  JobSpec job = two_stage_job();
  job.deps[1] = {5};
  EXPECT_THROW(validate(job, 16), std::logic_error);
}

TEST(JobValidate, RejectsCycle) {
  JobSpec job;
  job.coflows.push_back(coflow_with_sizes({1.0}));
  job.coflows.push_back(coflow_with_sizes({1.0}));
  job.deps = {{1}, {0}};
  EXPECT_THROW(validate(job, 16), std::logic_error);
}

TEST(JobValidate, RejectsEmptyCoflow) {
  JobSpec job = two_stage_job();
  job.coflows[0].flows.clear();
  EXPECT_THROW(validate(job, 16), std::logic_error);
}

TEST(JobValidate, RejectsNonPositiveFlowSize) {
  JobSpec job = two_stage_job();
  job.coflows[0].flows[0].size = 0;
  EXPECT_THROW(validate(job, 16), std::logic_error);
}

TEST(JobValidate, RejectsHostOutOfRange) {
  JobSpec job = two_stage_job();
  job.coflows[0].flows[0].dst_host = 16;
  EXPECT_THROW(validate(job, 16), std::logic_error);
}

TEST(JobValidate, RejectsSelfFlow) {
  JobSpec job = two_stage_job();
  job.coflows[0].flows[0].dst_host = job.coflows[0].flows[0].src_host;
  EXPECT_THROW(validate(job, 16), std::logic_error);
}

TEST(JobValidate, RejectsNegativeArrival) {
  JobSpec job = two_stage_job();
  job.arrival_time = -1.0;
  EXPECT_THROW(validate(job, 16), std::logic_error);
}

// ----------------------------------------------------------------- Stages

TEST(Stages, ChainIsSequential) {
  JobSpec job;
  for (int i = 0; i < 4; ++i) job.coflows.push_back(coflow_with_sizes({1.0}));
  job.deps = shapes::chain(4);
  EXPECT_EQ(stages_of(job), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(stage_count(job), 4);
}

TEST(Stages, DiamondTakesLongestPath) {
  // 0 -> {1, 2} -> 3, with an extra edge 0 -> 3. Stage of 3 is still 3.
  JobSpec job;
  for (int i = 0; i < 4; ++i) job.coflows.push_back(coflow_with_sizes({1.0}));
  job.deps = {{}, {0}, {0}, {0, 1, 2}};
  EXPECT_EQ(stages_of(job), (std::vector<int>{1, 2, 2, 3}));
}

TEST(Stages, IndependentCoflowsAllStageOne) {
  JobSpec job;
  for (int i = 0; i < 3; ++i) job.coflows.push_back(coflow_with_sizes({1.0}));
  job.deps = {{}, {}, {}};
  EXPECT_EQ(stages_of(job), (std::vector<int>{1, 1, 1}));
  EXPECT_EQ(stage_count(job), 1);
}

// ---------------------------------------------------------- Topo ordering

TEST(TopologicalOrder, DependenciesComeFirst) {
  JobSpec job;
  for (int i = 0; i < 5; ++i) job.coflows.push_back(coflow_with_sizes({1.0}));
  job.deps = {{}, {0}, {0}, {1, 2}, {3}};
  const auto order = topological_order(job);
  std::vector<int> position(5);
  for (int i = 0; i < 5; ++i) position[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  for (int i = 0; i < 5; ++i)
    for (int d : job.deps[static_cast<std::size_t>(i)])
      EXPECT_LT(position[static_cast<std::size_t>(d)], position[static_cast<std::size_t>(i)]);
}

TEST(TopologicalOrder, DetectsCycle) {
  JobSpec job;
  for (int i = 0; i < 3; ++i) job.coflows.push_back(coflow_with_sizes({1.0}));
  job.deps = {{2}, {0}, {1}};
  EXPECT_THROW(topological_order(job), std::logic_error);
}

}  // namespace
}  // namespace gurita
