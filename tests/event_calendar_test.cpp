// Tests for the incremental event-calendar engine: exact finish times under
// lazy byte draining, incremental per-coflow aggregates vs brute-force
// recomputation, rate-zero flows (no calendar entry) across disruptions,
// and the engine-cost counters bench_engine reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/gurita.h"
#include "flowsim/simulator.h"
#include "obs/registry.h"
#include "sched/pfs.h"
#include "topology/big_switch.h"
#include "topology/fattree.h"

namespace gurita {
namespace {

JobSpec one_flow_job(Bytes size, int src, int dst, Time arrival = 0) {
  JobSpec job;
  job.arrival_time = arrival;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{src, dst, size});
  job.coflows.push_back(c);
  job.deps = {{}};
  return job;
}

/// One job, one coflow, `flows` transfers on disjoint host pairs
/// (i -> flows + i), sizes spread over `groups` batches.
JobSpec disjoint_pairs_job(int flows, int groups) {
  JobSpec job;
  CoflowSpec coflow;
  for (int i = 0; i < flows; ++i)
    coflow.flows.push_back(
        FlowSpec{i, flows + i, 100.0 * static_cast<double>(1 + i % groups)});
  job.coflows.push_back(coflow);
  job.deps = {{}};
  return job;
}

// -------------------------------------------------- exact lazy-drain times

TEST(EventCalendar, ContentionFinishTimesExact) {
  // Two flows share host 0's uplink (100 B/s): equal-share 50/50 until the
  // small one drains (100 B at t=2), then the big one takes the full port
  // and its calendar key must be re-projected from the lazily-settled
  // residue: 300 - 2*50 = 200 B at 100 B/s -> t=4.
  const BigSwitch fabric(BigSwitch::Config{4, 100.0});
  PfsScheduler pfs;
  Simulator sim(fabric, pfs);
  sim.submit(one_flow_job(100.0, 0, 1));
  sim.submit(one_flow_job(300.0, 0, 2));
  const SimResults r = sim.run();
  ASSERT_EQ(r.jobs.size(), 2u);
  EXPECT_NEAR(r.jobs[0].jct(), 2.0, 1e-9);
  EXPECT_NEAR(r.jobs[1].jct(), 4.0, 1e-9);
  EXPECT_NEAR(r.makespan, 4.0, 1e-9);
}

TEST(EventCalendar, StaggeredArrivalRekeysInFlightFlow) {
  // Flow A (400 B) runs alone at 100 B/s for 1 s, then flow B (100 B)
  // arrives on the same uplink: A has 300 B left, both drop to 50 B/s, B
  // drains at t=3, A re-projects to 300 - 2*50 = 200 B -> finishes t=5.
  const BigSwitch fabric(BigSwitch::Config{4, 100.0});
  PfsScheduler pfs;
  Simulator sim(fabric, pfs);
  sim.submit(one_flow_job(400.0, 0, 1));
  sim.submit(one_flow_job(100.0, 0, 2, 1.0));
  const SimResults r = sim.run();
  EXPECT_NEAR(r.jobs[0].jct(), 5.0, 1e-9);
  EXPECT_NEAR(r.jobs[1].jct(), 2.0, 1e-9);  // arrived t=1, done t=3
}

// ------------------------------------------------- rate-zero / disruptions

TEST(EventCalendar, ZeroCapacityStallThenRestore) {
  // A rate-0 flow has no calendar entry; the disruption that restores the
  // link must re-key it. 100 B flow: 50 B by t=0.5, stalled during
  // [0.5, 1.5), finishes at t=2.0.
  const BigSwitch fabric(BigSwitch::Config{4, 100.0});
  PfsScheduler pfs;
  Simulator::Config config;
  config.disruptions.push_back(CapacityChange{0.5, fabric.uplink(0), 0.0});
  config.disruptions.push_back(CapacityChange{1.5, fabric.uplink(0), 100.0});
  Simulator sim(fabric, pfs, config);
  sim.submit(one_flow_job(100.0, 0, 1));
  const SimResults r = sim.run();
  EXPECT_NEAR(r.makespan, 2.0, 1e-9);
}

// ----------------------------------------- aggregates vs brute-force sums

/// PFS priorities plus an audit pass: at every tick and every assignment it
/// recomputes each coflow/job byte aggregate by brute force from the flows'
/// lazy state and compares against the engine's O(1) incremental getters.
class AggregateAuditScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "audit"; }
  [[nodiscard]] Time tick_interval() const override { return 0.05; }
  bool on_tick(Time now) override {
    audit(now);
    return false;
  }
  void assign(Time now, const std::vector<SimFlow*>& active) override {
    audit(now);
    for (SimFlow* f : active) {
      const SimJob& job = state().job(f->job);
      f->tier = static_cast<Tier>(job.id.value());
      f->weight = 1.0;
    }
  }
  [[nodiscard]] int audits() const { return audits_; }

 private:
  void audit(Time now) {
    const SimState& s = state();
    ASSERT_DOUBLE_EQ(s.now(), now);
    for (std::size_t ci = 0; ci < s.coflow_count(); ++ci) {
      const SimCoflow& c = s.coflow(CoflowId{ci});
      if (!c.released()) continue;
      Bytes brute_sent = 0;
      Bytes brute_ell_max = 0;
      int brute_open = 0;
      for (FlowId fid : c.flows) {
        const SimFlow& f = s.flow(fid);
        const Bytes sent = f.bytes_sent_at(now);
        brute_sent += sent;
        brute_ell_max = std::max(brute_ell_max, sent);
        if (f.active()) ++brute_open;
      }
      const double tol = 1e-6 * (1.0 + brute_sent);
      EXPECT_NEAR(s.coflow_bytes_sent(c.id), brute_sent, tol);
      EXPECT_NEAR(s.coflow_ell_max(c.id), brute_ell_max, tol);
      EXPECT_EQ(s.coflow_open_connections(c.id), brute_open);
    }
    for (std::size_t ji = 0; ji < s.job_count(); ++ji) {
      const SimJob& j = s.job(JobId{ji});
      Bytes brute_job = 0;
      for (CoflowId cid : j.coflows) {
        const SimCoflow& c = s.coflow(cid);
        if (!c.released()) continue;
        for (FlowId fid : c.flows) brute_job += s.flow(fid).bytes_sent_at(now);
      }
      EXPECT_NEAR(s.job_bytes_sent(j.id), brute_job, 1e-6 * (1.0 + brute_job));
    }
    ++audits_;
  }
  int audits_ = 0;
};

TEST(EventCalendar, AggregatesMatchBruteForce) {
  // Contended multi-stage workload on a fat-tree: shared endpoints force
  // frequent rate changes (settle/set_rate churn on partial progress), the
  // DAG forces mid-run releases, staggered arrivals force mid-run joins.
  const FatTree fabric(FatTree::Config{4, 100.0});
  AggregateAuditScheduler audit;
  Simulator sim(fabric, audit);

  JobSpec dag;  // stage 1: two coflows; stage 2 depends on both.
  CoflowSpec s1a, s1b, s2;
  s1a.flows = {FlowSpec{0, 8, 300.0}, FlowSpec{1, 8, 120.0}};
  s1b.flows = {FlowSpec{2, 9, 250.0}};
  s2.flows = {FlowSpec{8, 0, 180.0}, FlowSpec{9, 1, 90.0}};
  dag.coflows = {s1a, s1b, s2};
  dag.deps = {{}, {}, {0, 1}};
  sim.submit(dag);

  sim.submit(one_flow_job(500.0, 0, 8, 0.3));   // contends with s1a
  sim.submit(one_flow_job(70.0, 2, 9, 1.1));    // contends with s1b
  sim.submit(one_flow_job(260.0, 8, 1, 2.7));   // contends with s2

  const SimResults r = sim.run();
  EXPECT_EQ(r.jobs.size(), 4u);
  // The audit must actually have run often, including mid-drain instants.
  EXPECT_GT(audit.audits(), 20);
}

// ------------------------------------------------------- cost counters

TEST(EventCalendar, TouchCountersBeatLegacyScans) {
  // Disjoint host pairs: completions disturb no other flow, the regime the
  // calendar engine exists for. The engine's per-flow touches must be at
  // least 2x below the equivalent legacy full-scan count (the bench_engine
  // acceptance bar, checked here at test scale).
  const BigSwitch fabric(BigSwitch::Config{128, 100.0});
  PfsScheduler pfs;
  Simulator sim(fabric, pfs);
  sim.submit(disjoint_pairs_job(64, 8));
  const SimResults r = sim.run();
  EXPECT_GT(r.events, 0u);
  EXPECT_GT(r.flow_touches, 0u);
  EXPECT_GE(r.legacy_flow_touches, 2 * r.flow_touches);
}

TEST(EventCalendar, CountersAreDeterministic) {
  // Same workload, same scheduler -> bit-identical results and counters
  // (the engine has no hidden iteration-order or timing dependence).
  auto run_once = [] {
    const FatTree fabric(FatTree::Config{4, 100.0});
    GuritaScheduler::Config config;
    config.first_threshold = 75.0;
    config.multiplier = 4.0;
    config.delta = 0.1;
    GuritaScheduler gurita(config);
    Simulator sim(fabric, gurita);
    for (int i = 0; i < 5; ++i)
      sim.submit(one_flow_job(100.0 + 40.0 * i, i, 15 - i, 0.25 * i));
    sim.submit(disjoint_pairs_job(4, 2));
    return sim.run();
  };
  const SimResults a = run_once();
  const SimResults b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.rate_recomputations, b.rate_recomputations);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.flow_touches, b.flow_touches);
  EXPECT_EQ(a.legacy_flow_touches, b.legacy_flow_touches);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    EXPECT_DOUBLE_EQ(a.jobs[i].finish, b.jobs[i].finish);
}

TEST(EventCalendar, CountersArePerRunAndMergeExplicitly) {
  // Cost counters are strictly per-run: the engine only ever writes the
  // SimResults of its own run(), so each run's counters are unaffected by
  // other runs, and pooling them is the explicit merge_counters() fold —
  // sum of counters, max of makespans — in whatever order the caller
  // merges (the parallel runner merges in matrix order).
  auto run_once = [](int flows) {
    const BigSwitch fabric(BigSwitch::Config{16, 100.0});
    PfsScheduler pfs;
    Simulator sim(fabric, pfs);
    sim.submit(disjoint_pairs_job(flows, 2));
    return sim.run();
  };
  const SimResults a = run_once(3);
  const SimResults b = run_once(6);

  // Re-running a does not observe b: per-run isolation.
  const SimResults a2 = run_once(3);
  EXPECT_EQ(a.events, a2.events);
  EXPECT_EQ(a.flow_touches, a2.flow_touches);
  EXPECT_EQ(a.rate_recomputations, a2.rate_recomputations);

  SimResults pooled = a;
  pooled.merge_counters(b);
  EXPECT_EQ(pooled.events, a.events + b.events);
  EXPECT_EQ(pooled.flow_touches, a.flow_touches + b.flow_touches);
  EXPECT_EQ(pooled.legacy_flow_touches,
            a.legacy_flow_touches + b.legacy_flow_touches);
  EXPECT_EQ(pooled.rate_recomputations,
            a.rate_recomputations + b.rate_recomputations);
  EXPECT_DOUBLE_EQ(pooled.makespan, std::max(a.makespan, b.makespan));
  // merge_counters leaves populations alone (absorb() re-ids those).
  EXPECT_EQ(pooled.jobs.size(), a.jobs.size());
  EXPECT_EQ(pooled.coflows.size(), a.coflows.size());

  // The registry projection (obs/registry.h) is the other pooling path for
  // the same counters; merging per-run registries must agree with
  // merge_counters exactly (tests/obs_test.cpp covers 1/2/8 workers).
  obs::Registry via_merge_counters;
  pooled.export_counters(via_merge_counters);
  obs::Registry via_registry_merge, shard_a, shard_b;
  a.export_counters(shard_a);
  b.export_counters(shard_b);
  via_registry_merge.merge(shard_a);
  via_registry_merge.merge(shard_b);
  EXPECT_EQ(via_merge_counters.to_json(), via_registry_merge.to_json());
}

}  // namespace
}  // namespace gurita
