// Tests for the event-driven flow-level engine: exact timing on known
// scenarios, coflow/job semantics (CCT = slowest flow, DAG release order),
// byte conservation, determinism, tick handling and failure guards.
#include <gtest/gtest.h>

#include "coflow/critical_path.h"
#include "coflow/shapes.h"
#include "flowsim/simulator.h"
#include "sched/pfs.h"
#include "topology/fattree.h"

namespace gurita {
namespace {

// k=4 fat-tree with 100 B/s links: hand-computable numbers.
class SimFixture : public ::testing::Test {
 protected:
  SimFixture() : fabric_(FatTree::Config{4, 100.0}) {}
  FatTree fabric_;
  PfsScheduler pfs_;
};

JobSpec single_flow_job(Bytes size, int src = 0, int dst = 1,
                        Time arrival = 0) {
  JobSpec job;
  job.arrival_time = arrival;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{src, dst, size});
  job.coflows.push_back(c);
  job.deps = {{}};
  return job;
}

TEST_F(SimFixture, SingleFlowFinishesAtSizeOverCapacity) {
  Simulator sim(fabric_, pfs_);
  sim.submit(single_flow_job(500.0));
  const SimResults r = sim.run();
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_NEAR(r.jobs[0].jct(), 5.0, 1e-9);  // 500 B at 100 B/s
  EXPECT_NEAR(r.makespan, 5.0, 1e-9);
}

TEST_F(SimFixture, ArrivalTimeShiftsCompletion) {
  Simulator sim(fabric_, pfs_);
  sim.submit(single_flow_job(100.0, 0, 1, /*arrival=*/3.0));
  const SimResults r = sim.run();
  EXPECT_NEAR(r.jobs[0].finish, 4.0, 1e-9);
  EXPECT_NEAR(r.jobs[0].jct(), 1.0, 1e-9);
}

TEST_F(SimFixture, TwoFlowsOnSameLinkShare) {
  // Same src/dst host pair: both flows traverse the same host links.
  JobSpec job;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{0, 1, 100.0});
  c.flows.push_back(FlowSpec{0, 1, 100.0});
  job.coflows.push_back(c);
  job.deps = {{}};

  Simulator sim(fabric_, pfs_);
  sim.submit(job);
  const SimResults r = sim.run();
  // Fair sharing: both at 50 B/s, finish together at t=2.
  EXPECT_NEAR(r.jobs[0].jct(), 2.0, 1e-9);
}

TEST_F(SimFixture, CoflowCompletesWithSlowestFlow) {
  JobSpec job;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{0, 1, 100.0});   // shares h0->edge with next
  c.flows.push_back(FlowSpec{0, 2, 300.0});
  job.coflows.push_back(c);
  job.deps = {{}};

  Simulator sim(fabric_, pfs_);
  sim.submit(job);
  const SimResults r = sim.run();
  ASSERT_EQ(r.coflows.size(), 1u);
  // Phase 1: both share the h0->edge uplink at 50 B/s until t=2 when flow 0
  // (100 B) finishes. Flow 1 then runs at 100 B/s: 200 B left -> 2 s more.
  EXPECT_NEAR(r.coflows[0].cct(), 4.0, 1e-9);
  EXPECT_NEAR(r.jobs[0].jct(), 4.0, 1e-9);
}

TEST_F(SimFixture, TwoStageJobSerializesStages) {
  JobSpec job;
  CoflowSpec c1, c2;
  c1.flows.push_back(FlowSpec{0, 1, 200.0});
  c2.flows.push_back(FlowSpec{1, 2, 300.0});
  job.coflows = {c1, c2};
  job.deps = {{}, {0}};

  Simulator sim(fabric_, pfs_);
  sim.submit(job);
  const SimResults r = sim.run();
  ASSERT_EQ(r.coflows.size(), 2u);
  EXPECT_NEAR(r.coflows[0].finish, 2.0, 1e-9);
  EXPECT_NEAR(r.coflows[1].release, 2.0, 1e-9);  // starts when dep completes
  EXPECT_NEAR(r.coflows[1].finish, 5.0, 1e-9);
  EXPECT_NEAR(r.jobs[0].jct(), 5.0, 1e-9);
}

TEST_F(SimFixture, DiamondDagReleasesAfterAllDeps) {
  // 0 and 1 independent; 2 depends on both. Coflow 2 must wait for the
  // slower of the two.
  JobSpec job;
  CoflowSpec a, b, c;
  a.flows.push_back(FlowSpec{0, 1, 100.0});
  b.flows.push_back(FlowSpec{2, 3, 400.0});
  c.flows.push_back(FlowSpec{4, 5, 100.0});
  job.coflows = {a, b, c};
  job.deps = {{}, {}, {0, 1}};

  Simulator sim(fabric_, pfs_);
  sim.submit(job);
  const SimResults r = sim.run();
  EXPECT_NEAR(r.coflows[2].release, 4.0, 1e-9);
  EXPECT_NEAR(r.jobs[0].jct(), 5.0, 1e-9);
}

TEST_F(SimFixture, ParallelChainsOverlapStages) {
  // Two independent chains in one job: the second chain's stage-2 coflow
  // must not wait for the first chain (the §I "special case").
  JobSpec job;
  for (int i = 0; i < 4; ++i) {
    CoflowSpec c;
    // Chain 0 on hosts 0/1, chain 1 on hosts 8/9 (different pods): no
    // network contention between the chains.
    const int base = i < 2 ? 0 : 8;
    c.flows.push_back(FlowSpec{base, base + 1, i < 2 ? 400.0 : 100.0});
    job.coflows.push_back(c);
  }
  job.deps = shapes::parallel_chains(2, 2);

  Simulator sim(fabric_, pfs_);
  sim.submit(job);
  const SimResults r = sim.run();
  // Chain 1 (100 B + 100 B) finishes at t=2 even though chain 0 runs to t=8.
  EXPECT_NEAR(r.coflows[3].finish, 2.0, 1e-9);
  EXPECT_NEAR(r.jobs[0].jct(), 8.0, 1e-9);
}

TEST_F(SimFixture, CompletedStagesTracksProgress) {
  JobSpec job;
  for (int i = 0; i < 3; ++i) {
    CoflowSpec c;
    c.flows.push_back(FlowSpec{0, 1, 100.0});
    job.coflows.push_back(c);
  }
  job.deps = shapes::chain(3);

  Simulator sim(fabric_, pfs_);
  const JobId id = sim.submit(job);
  (void)id;
  const SimResults r = sim.run();
  EXPECT_EQ(sim.state().job(JobId{0}).completed_stages, 3);
  EXPECT_NEAR(r.jobs[0].jct(), 3.0, 1e-9);
}

TEST_F(SimFixture, AllBytesDelivered) {
  JobSpec job;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{0, 3, 123.0});
  c.flows.push_back(FlowSpec{1, 2, 456.0});
  job.coflows.push_back(c);
  job.deps = {{}};

  Simulator sim(fabric_, pfs_);
  sim.submit(job);
  (void)sim.run();
  for (std::size_t i = 0; i < sim.state().flow_count(); ++i) {
    const SimFlow& f = sim.state().flow(FlowId{i});
    EXPECT_TRUE(f.finished());
    EXPECT_NEAR(f.bytes_sent(), f.size, 1e-3);
  }
}

TEST_F(SimFixture, JctNeverBeatsCriticalPathBound) {
  JobSpec job;
  for (int i = 0; i < 3; ++i) {
    CoflowSpec c;
    c.flows.push_back(FlowSpec{i, i + 1, 100.0 * (i + 1)});
    job.coflows.push_back(c);
  }
  job.deps = shapes::chain(3);

  Simulator sim(fabric_, pfs_);
  sim.submit(job);
  const SimResults r = sim.run();
  EXPECT_GE(r.jobs[0].jct(), jct_lower_bound(job, 100.0) - 1e-9);
}

TEST_F(SimFixture, SimultaneousArrivalsBothRun) {
  Simulator sim(fabric_, pfs_);
  sim.submit(single_flow_job(100.0, 0, 1, 1.0));
  sim.submit(single_flow_job(100.0, 8, 9, 1.0));  // different pod: no share
  const SimResults r = sim.run();
  EXPECT_NEAR(r.jobs[0].jct(), 1.0, 1e-9);
  EXPECT_NEAR(r.jobs[1].jct(), 1.0, 1e-9);
}

TEST_F(SimFixture, LateArrivalReusesIdleNetwork) {
  Simulator sim(fabric_, pfs_);
  sim.submit(single_flow_job(100.0, 0, 1, 0.0));
  sim.submit(single_flow_job(100.0, 0, 1, 10.0));  // network idle by then
  const SimResults r = sim.run();
  EXPECT_NEAR(r.jobs[1].jct(), 1.0, 1e-9);
  EXPECT_NEAR(r.makespan, 11.0, 1e-9);
}

TEST_F(SimFixture, DeterministicAcrossRuns) {
  auto run_once = [&] {
    PfsScheduler pfs;
    Simulator sim(fabric_, pfs);
    for (int i = 0; i < 8; ++i)
      sim.submit(single_flow_job(100.0 + i * 37.0, i, 15 - i, i * 0.1));
    return sim.run();
  };
  const SimResults a = run_once();
  const SimResults b = run_once();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    EXPECT_DOUBLE_EQ(a.jobs[i].finish, b.jobs[i].finish);
}

TEST_F(SimFixture, SubmitAfterRunThrows) {
  Simulator sim(fabric_, pfs_);
  sim.submit(single_flow_job(10.0));
  (void)sim.run();
  EXPECT_THROW(sim.submit(single_flow_job(10.0)), std::logic_error);
}

TEST_F(SimFixture, RunTwiceThrows) {
  Simulator sim(fabric_, pfs_);
  sim.submit(single_flow_job(10.0));
  (void)sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST_F(SimFixture, InvalidJobRejectedAtSubmit) {
  Simulator sim(fabric_, pfs_);
  JobSpec bad = single_flow_job(10.0);
  bad.coflows[0].flows[0].dst_host = 999;  // beyond 16 hosts
  EXPECT_THROW(sim.submit(bad), std::logic_error);
}

TEST_F(SimFixture, MaxTimeGuardTrips) {
  Simulator::Config config;
  config.max_time = 0.5;
  Simulator sim(fabric_, pfs_, config);
  sim.submit(single_flow_job(1000.0));  // needs 10 s
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST_F(SimFixture, EmptySimulationCompletes) {
  Simulator sim(fabric_, pfs_);
  const SimResults r = sim.run();
  EXPECT_TRUE(r.jobs.empty());
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
}

TEST_F(SimFixture, ResultsCarryJobMetadata) {
  Simulator sim(fabric_, pfs_);
  JobSpec job = single_flow_job(100.0);
  CoflowSpec c2;
  c2.flows.push_back(FlowSpec{1, 2, 50.0});
  job.coflows.push_back(c2);
  job.deps = {{}, {0}};
  sim.submit(job);
  const SimResults r = sim.run();
  EXPECT_EQ(r.jobs[0].num_stages, 2);
  EXPECT_DOUBLE_EQ(r.jobs[0].total_bytes, 150.0);
  EXPECT_EQ(r.coflows[1].stage, 2);
}

// ------------------------------------------------------------- tick logic

/// Scheduler that counts ticks and reports a priority change every Nth.
class TickProbe final : public Scheduler {
 public:
  explicit TickProbe(Time interval, int change_every)
      : interval_(interval), change_every_(change_every) {}
  std::string name() const override { return "tick_probe"; }
  Time tick_interval() const override { return interval_; }
  bool on_tick(Time now) override {
    (void)now;
    ++ticks_;
    return change_every_ > 0 && ticks_ % change_every_ == 0;
  }
  void assign(Time now, const std::vector<SimFlow*>& active) override {
    (void)now;
    ++assigns_;
    for (SimFlow* f : active) {
      f->tier = 0;
      f->weight = 1.0;
    }
  }
  int ticks() const { return ticks_; }
  int assigns() const { return assigns_; }

 private:
  Time interval_;
  int change_every_;
  int ticks_ = 0;
  int assigns_ = 0;
};

TEST_F(SimFixture, TicksFireAtInterval) {
  TickProbe probe(/*interval=*/1.0, /*change_every=*/0);
  Simulator sim(fabric_, probe);
  sim.submit(single_flow_job(500.0));  // runs 5 s
  (void)sim.run();
  // Ticks at t=1,2,3,4 (flow completes at 5, tick at 5 may race the end).
  EXPECT_GE(probe.ticks(), 4);
  EXPECT_LE(probe.ticks(), 5);
}

TEST_F(SimFixture, UnchangedTicksDoNotRecompute) {
  TickProbe quiet(1.0, /*change_every=*/0);
  Simulator sim_a(fabric_, quiet);
  sim_a.submit(single_flow_job(500.0));
  const SimResults ra = sim_a.run();

  TickProbe noisy(1.0, /*change_every=*/1);
  Simulator sim_b(fabric_, noisy);
  sim_b.submit(single_flow_job(500.0));
  const SimResults rb = sim_b.run();

  EXPECT_LT(ra.rate_recomputations, rb.rate_recomputations);
}

TEST_F(SimFixture, FlowPathsAssignedViaEcmp) {
  Simulator sim(fabric_, pfs_);
  sim.submit(single_flow_job(100.0, 0, 15));  // cross-pod: 6 hops
  (void)sim.run();
  EXPECT_EQ(sim.state().flow(FlowId{0}).path.size(), 6u);
}

TEST_F(SimFixture, StateQueriesObserveProgress) {
  // Two-flow coflow; run to completion then inspect final accounting.
  JobSpec job;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{0, 1, 100.0});
  c.flows.push_back(FlowSpec{2, 3, 200.0});
  job.coflows.push_back(c);
  job.deps = {{}};
  Simulator sim(fabric_, pfs_);
  sim.submit(job);
  (void)sim.run();
  EXPECT_NEAR(sim.state().coflow_bytes_sent(CoflowId{0}), 300.0, 1e-3);
  EXPECT_DOUBLE_EQ(sim.state().coflow_total_bytes(CoflowId{0}), 300.0);
  EXPECT_NEAR(sim.state().job_bytes_sent(JobId{0}), 300.0, 1e-3);
  EXPECT_NEAR(sim.state().job_stage_bytes_sent(JobId{0}, 1), 300.0, 1e-3);
  EXPECT_EQ(sim.state().coflow_open_connections(CoflowId{0}), 0);
}

}  // namespace
}  // namespace gurita
