// Differential fuzz harness: the event-calendar engine vs the reference
// oracle (tests/oracle_sim.h) on randomized workloads.
//
// Every trace draws a random fabric (big-switch or fat-tree), a random
// trace shape (fan-out, skew, arrival pattern), a random scheduler from the
// registry, and optionally link disruptions and the TCP slow-start ramp —
// then replays the identical job specs through both engines with fresh
// scheduler instances and asserts the runs are indistinguishable: same
// event count, same rate recomputations, bit-identical makespan, per-job
// and per-coflow times, and per-flow start/finish trajectories. Any
// divergence indicts the calendar machinery (stale-entry invalidation,
// re-keying, pop ordering), since that is the only part the oracle leaves
// out. Failures print the trace seed for standalone reproduction.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exp/registry.h"
#include "flowsim/simulator.h"
#include "oracle_sim.h"
#include "topology/big_switch.h"
#include "topology/fattree.h"
#include "workload/trace_gen.h"

namespace gurita {
namespace {

/// Everything one differential trial needs, drawn from a single seed.
struct Trial {
  std::unique_ptr<Fabric> fabric;
  std::vector<JobSpec> jobs;
  std::string scheduler;
  Simulator::Config sim_config;
};

Trial draw_trial(std::uint64_t seed) {
  Rng rng(seed);
  Trial trial;

  if (rng.next_double() < 0.5) {
    BigSwitch::Config bs;
    bs.num_hosts = static_cast<int>(rng.uniform_int(8, 32));
    trial.fabric = std::make_unique<BigSwitch>(bs);
  } else {
    FatTree::Config ft;
    ft.k = 4;  // 16 hosts; plenty of path diversity at fuzz scale
    ft.ecmp_salt = rng.next_u64();
    trial.fabric = std::make_unique<FatTree>(ft);
  }

  TraceConfig trace;
  trace.num_jobs = static_cast<int>(rng.uniform_int(3, 10));
  trace.num_hosts = trial.fabric->num_hosts();
  trace.structure = static_cast<StructureKind>(rng.uniform_int(0, 2));
  trace.arrivals = rng.next_double() < 0.5 ? ArrivalPattern::kPoisson
                                           : ArrivalPattern::kBursty;
  trace.mean_interarrival = rng.uniform(1.0, 50.0) * kMillisecond;
  trace.burst_size = static_cast<int>(rng.uniform_int(2, 6));
  trace.max_width = static_cast<int>(rng.uniform_int(2, 16));
  trace.width_pareto_alpha = rng.uniform(0.8, 2.0);
  trace.flow_skew_sigma = rng.uniform(0.2, 1.5);
  trace.stage_skew_sigma = rng.uniform(0.5, 2.0);
  trace.seed = rng.next_u64();
  trial.jobs = generate_trace(trace);

  const std::vector<std::string>& names = scheduler_names();
  trial.scheduler = names[rng.uniform_int(0, names.size() - 1)];

  // TCP slow-start ramp on ~30% of trials: exercises the capped-flow
  // refresh path where the engine re-dirties itself at ramp granularity.
  if (rng.next_double() < 0.3)
    trial.sim_config.tcp_ramp_time = rng.uniform(1.0, 10.0) * kMillisecond;

  // Disruptions on ~40% of trials. Capacities stay strictly positive so
  // routed flows always finish (a dead link trips the stall guard by
  // design, which is not what this harness probes).
  if (rng.next_double() < 0.4) {
    const std::size_t links = trial.fabric->topology().link_count();
    const int n = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < n; ++i) {
      CapacityChange change;
      change.time = rng.uniform(0.0, 0.5);
      change.link = LinkId{rng.uniform_int(0, links - 1)};
      const Rate nominal =
          trial.fabric->topology().link(change.link).capacity;
      change.new_capacity = nominal * rng.uniform(0.2, 1.0);
      trial.sim_config.disruptions.push_back(change);
    }
  }

  // Link stats on ~25% of trials: every settle's per-link byte deposits
  // must agree bitwise too.
  trial.sim_config.collect_link_stats = rng.next_double() < 0.25;
  return trial;
}

/// Asserts the two runs are bit-identical in everything the oracle models
/// (calendar bookkeeping counters — flow_touches — are engine-specific and
/// excluded by construction).
void expect_identical_runs(const SimResults& fast, const SimResults& oracle,
                           const SimState& fast_state,
                           const SimState& oracle_state) {
  EXPECT_EQ(fast.events, oracle.events);
  EXPECT_EQ(fast.rate_recomputations, oracle.rate_recomputations);
  EXPECT_EQ(fast.makespan, oracle.makespan);

  ASSERT_EQ(fast.jobs.size(), oracle.jobs.size());
  for (std::size_t i = 0; i < fast.jobs.size(); ++i) {
    EXPECT_EQ(fast.jobs[i].id, oracle.jobs[i].id) << "job " << i;
    EXPECT_EQ(fast.jobs[i].arrival, oracle.jobs[i].arrival) << "job " << i;
    EXPECT_EQ(fast.jobs[i].finish, oracle.jobs[i].finish) << "job " << i;
    EXPECT_EQ(fast.jobs[i].total_bytes, oracle.jobs[i].total_bytes)
        << "job " << i;
  }

  ASSERT_EQ(fast.coflows.size(), oracle.coflows.size());
  for (std::size_t i = 0; i < fast.coflows.size(); ++i) {
    EXPECT_EQ(fast.coflows[i].release, oracle.coflows[i].release)
        << "coflow " << i;
    EXPECT_EQ(fast.coflows[i].finish, oracle.coflows[i].finish)
        << "coflow " << i;
    EXPECT_EQ(fast.coflows[i].total_bytes, oracle.coflows[i].total_bytes)
        << "coflow " << i;
  }

  ASSERT_EQ(fast_state.flow_count(), oracle_state.flow_count());
  for (std::size_t i = 0; i < fast_state.flow_count(); ++i) {
    const SimFlow& a = fast_state.flow(FlowId{i});
    const SimFlow& b = oracle_state.flow(FlowId{i});
    EXPECT_EQ(a.start_time, b.start_time) << "flow " << i;
    EXPECT_EQ(a.finish_time, b.finish_time) << "flow " << i;
    EXPECT_EQ(a.size, b.size) << "flow " << i;
  }

  ASSERT_EQ(fast.link_bytes.size(), oracle.link_bytes.size());
  for (std::size_t i = 0; i < fast.link_bytes.size(); ++i)
    EXPECT_EQ(fast.link_bytes[i], oracle.link_bytes[i]) << "link " << i;
}

void run_differential_trial(std::uint64_t seed) {
  SCOPED_TRACE("reproduce with trace seed " + std::to_string(seed));
  const Trial trial = draw_trial(seed);

  // Fresh scheduler per engine: schedulers are stateful and attach() to
  // exactly one run's SimState.
  std::unique_ptr<Scheduler> fast_sched = make_scheduler(trial.scheduler);
  std::unique_ptr<Scheduler> oracle_sched = make_scheduler(trial.scheduler);

  Simulator fast(*trial.fabric, *fast_sched, trial.sim_config);
  OracleSimulator oracle(*trial.fabric, *oracle_sched, trial.sim_config);
  for (const JobSpec& job : trial.jobs) {
    fast.submit(job);
    oracle.submit(job);
  }

  const SimResults fast_results = fast.run();
  const SimResults oracle_results = oracle.run();
  expect_identical_runs(fast_results, oracle_results, fast.state(),
                        oracle.state());
}

// The main gate: 200 randomized traces through both engines. Trial i is
// fully determined by its seed, so a failure reproduces standalone.
TEST(DifferentialEngineTest, FuzzFastEngineAgainstOracle) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    run_differential_trial(seed);
    if (::testing::Test::HasFailure()) {
      FAIL() << "differential fuzz diverged at trace seed " << seed
             << "; rerun run_differential_trial(" << seed << ") to debug";
    }
  }
}

// Targeted worst case: everything at once — bursty arrivals, TCP ramp,
// repeated disruptions on a fat-tree, a tick-driven scheduler.
TEST(DifferentialEngineTest, KitchenSinkScenarioMatchesOracle) {
  FatTree::Config ft;
  ft.k = 4;
  const FatTree fabric(ft);

  TraceConfig trace;
  trace.num_jobs = 12;
  trace.num_hosts = fabric.num_hosts();
  trace.structure = StructureKind::kMixed;
  trace.arrivals = ArrivalPattern::kBursty;
  trace.burst_size = 4;
  trace.max_width = 12;
  trace.seed = 1234;
  const std::vector<JobSpec> jobs = generate_trace(trace);

  Simulator::Config config;
  config.tcp_ramp_time = 5 * kMillisecond;
  config.collect_link_stats = true;
  const std::size_t links = fabric.topology().link_count();
  for (int i = 0; i < 6; ++i) {
    CapacityChange change;
    change.time = 0.05 * (i + 1);
    change.link = LinkId{static_cast<std::size_t>(i * 7) % links};
    change.new_capacity =
        fabric.topology().link(change.link).capacity * (i % 2 ? 0.25 : 1.0);
    config.disruptions.push_back(change);
  }

  for (const std::string& name : {std::string("gurita"), std::string("aalo"),
                                  std::string("pfs")}) {
    SCOPED_TRACE("scheduler " + name);
    std::unique_ptr<Scheduler> fast_sched = make_scheduler(name);
    std::unique_ptr<Scheduler> oracle_sched = make_scheduler(name);
    Simulator fast(fabric, *fast_sched, config);
    OracleSimulator oracle(fabric, *oracle_sched, config);
    for (const JobSpec& job : jobs) {
      fast.submit(job);
      oracle.submit(job);
    }
    const SimResults fast_results = fast.run();
    const SimResults oracle_results = oracle.run();
    expect_identical_runs(fast_results, oracle_results, fast.state(),
                          oracle.state());
  }
}

}  // namespace
}  // namespace gurita
