// Property tests for the work-stealing pool behind the parallel runner:
// no lost tasks under submission contention, results independent of worker
// count (the determinism contract's foundation), deterministic exception
// propagation (smallest failing index), nested parallelism without
// deadlock, and destructor drain.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace gurita {
namespace {

TEST(ThreadPoolTest, SizeResolvesHardwareAndExplicitCounts) {
  EXPECT_EQ(ThreadPool(3).size(), 3);
  EXPECT_EQ(ThreadPool(0).size(), ThreadPool::hardware_threads());
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

// Submission contention: several foreign threads hammer submit()
// concurrently; the destructor's drain guarantee means every task must
// have run by the time the pool is gone.
TEST(ThreadPoolTest, NoTasksLostUnderContendedSubmission) {
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 500;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s)
      submitters.emplace_back([&pool, &ran] {
        for (int t = 0; t < kTasksEach; ++t)
          pool.submit([&ran] { ran.fetch_add(1); });
      });
    for (std::thread& t : submitters) t.join();
  }  // ~ThreadPool drains before joining workers
  EXPECT_EQ(ran.load(), kSubmitters * kTasksEach);
}

// The determinism contract's foundation: a computation keyed only on its
// index produces identical output at every pool size, because slots are
// index-addressed and no task reads another's state.
TEST(ThreadPoolTest, ResultsIndependentOfWorkerCount) {
  constexpr std::size_t kN = 200;
  const auto run_at = [](int workers) {
    ThreadPool pool(workers);
    std::vector<std::uint64_t> out(kN, 0);
    pool.parallel_for(kN, [&](std::size_t i) {
      Rng rng(static_cast<std::uint64_t>(i) * 0x9e3779b9ULL + 1);
      std::uint64_t acc = 0;
      for (int k = 0; k < 100; ++k) acc ^= rng.next_u64();
      out[i] = acc;
    });
    return out;
  };
  const std::vector<std::uint64_t> serial = run_at(1);
  EXPECT_EQ(run_at(2), serial);
  EXPECT_EQ(run_at(8), serial);
}

// If several invocations throw, the exception of the SMALLEST index is
// rethrown — regardless of which failing task finished first — and the
// non-throwing invocations still all run.
TEST(ThreadPoolTest, SmallestFailingIndexWinsExceptionPropagation) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 64;
  std::vector<std::atomic<int>> ran(kN);
  const auto body = [&](std::size_t i) {
    ran[i].fetch_add(1);
    if (i == 5 || i == 11 || i == 40)
      throw std::runtime_error("boom " + std::to_string(i));
  };
  try {
    pool.parallel_for(kN, body);
    FAIL() << "parallel_for swallowed the exceptions";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 5");
  }
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(ran[i].load(), 1) << "index " << i;
}

// A worker blocked in a nested parallel_for must help execute queued tasks
// rather than sleep, or a pool smaller than the nesting depth deadlocks.
TEST(ThreadPoolTest, NestedParallelForCompletesAtEveryPoolSize) {
  for (const int workers : {1, 2, 4}) {
    SCOPED_TRACE("pool size " + std::to_string(workers));
    ThreadPool pool(workers);
    constexpr std::size_t kOuter = 6;
    constexpr std::size_t kInner = 10;
    std::vector<std::atomic<int>> cells(kOuter * kInner);
    pool.parallel_for(kOuter, [&](std::size_t o) {
      pool.parallel_for(
          kInner, [&](std::size_t i) { cells[o * kInner + i].fetch_add(1); });
    });
    for (std::size_t c = 0; c < cells.size(); ++c)
      ASSERT_EQ(cells[c].load(), 1) << "cell " << c;
  }
}

// Tasks may spawn further tasks from inside a worker (routed to the
// worker's own deque); children queued when the destructor begins still
// run before the pool joins.
TEST(ThreadPoolTest, NestedSubmissionsFromWorkersAllRun) {
  constexpr std::size_t kParents = 100;
  std::atomic<int> children_ran{0};
  {
    ThreadPool pool(4);
    pool.parallel_for(kParents, [&](std::size_t) {
      pool.submit([&children_ran] { children_ran.fetch_add(1); });
    });
  }
  EXPECT_EQ(children_ran.load(), static_cast<int>(kParents));
}

// Even a single-worker pool runs submitted tasks on its worker thread, not
// inline on the submitting thread.
TEST(ThreadPoolTest, SubmittedTasksRunOffTheSubmittingThread) {
  const std::thread::id main_id = std::this_thread::get_id();
  std::thread::id task_id;
  {
    ThreadPool pool(1);
    pool.submit([&task_id] { task_id = std::this_thread::get_id(); });
  }
  EXPECT_NE(task_id, main_id);
}

TEST(ThreadPoolTest, ParallelForOfZeroIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "fn called for n=0"; });
}

// Contention/starvation stress: a flood of tiny tasks from several foreign
// threads interleaved with nested parallel_for waves. Everything must
// complete (no livelock, no lost tasks) and the workers' empty-scan count
// must stay bounded — the pool parks idle workers instead of busy-spinning,
// so failed scans can only accrue kMaxEmptyScans per wakeup, not per
// microsecond.
TEST(ThreadPoolTest, TinyTaskFloodWithNestedLoopsCompletesWithoutLivelock) {
  constexpr int kSubmitters = 4;
  constexpr int kTasksPerSubmitter = 2000;
  constexpr std::size_t kWaves = 20;
  ThreadPool pool(4);
  std::atomic<int> ran{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &ran] {
      for (int i = 0; i < kTasksPerSubmitter; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    });
  }
  std::atomic<std::uint64_t> inner{0};
  for (std::size_t w = 0; w < kWaves; ++w) {
    // Nested shape: every outer index fans out an inner loop on the same
    // pool while the submitters keep flooding it.
    pool.parallel_for(8, [&pool, &inner](std::size_t) {
      pool.parallel_for(50, [&inner](std::size_t) { inner.fetch_add(1); });
    });
  }
  for (std::thread& t : submitters) t.join();
  // Drain the flood: a parallel_for only returns when its own batch is
  // done, so wait for the counter (tasks are independent of the batches).
  while (ran.load() < kSubmitters * kTasksPerSubmitter)
    std::this_thread::yield();

  EXPECT_EQ(ran.load(), kSubmitters * kTasksPerSubmitter);
  EXPECT_EQ(inner.load(), kWaves * 8 * 50);
  // Bounded idle spinning: each worker wakeup can fail at most
  // kMaxEmptyScans scans before parking again, and every executed task can
  // wake at most all workers once. The generous linear bound below fails
  // catastrophically (orders of magnitude) if the pool ever busy-spins.
  const ThreadPool::Stats stats = pool.stats();
  const std::uint64_t wakeups = stats.executed + stats.sleeps + 16;
  EXPECT_LE(stats.failed_scans,
            wakeups * static_cast<std::uint64_t>(ThreadPool::kMaxEmptyScans) *
                pool.size());
}

// The destructor drain contract: every task accepted by submit() before
// destruction begins runs before the destructor returns — including tasks
// still queued behind long-running ones when teardown starts. The workers
// are parked on gate-blocked tasks with a backlog queued behind them, the
// destructor starts with that backlog in place, and a third thread opens
// the gate only after teardown is already underway.
TEST(ThreadPoolTest, DestructorDrainsTasksStillQueuedWhenTeardownStarts) {
  constexpr int kBacklog = 200;
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    std::atomic<bool> gate{false};
    std::atomic<bool> tearing_down{false};
    std::thread releaser;
    {
      ThreadPool pool(2);
      // Park both workers on the gate, then queue a backlog behind them.
      for (int i = 0; i < 2; ++i)
        pool.submit([&gate] {
          while (!gate.load()) std::this_thread::yield();
        });
      for (int i = 0; i < kBacklog; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
      releaser = std::thread([&] {
        while (!tearing_down.load()) std::this_thread::yield();
        std::this_thread::yield();
        gate.store(true);  // destructor is now blocked joining the workers
      });
      tearing_down.store(true);
    }  // ~ThreadPool: must drain the whole backlog before joining.
    releaser.join();
    EXPECT_EQ(ran.load(), kBacklog) << "round " << round;
  }
}

TEST(ThreadPoolTest, SubmitOnStoppingPoolThrowsLogicError) {
  // Destruction is the only stop path; catch a submit that provably lost
  // the race by submitting from a worker task that outlives the start of
  // teardown.
  std::atomic<bool> tearing_down{false};
  std::atomic<bool> task_done{false};
  std::atomic<bool> saw_reject{false};
  {
    ThreadPool pool(1);
    pool.submit([&] {
      while (!tearing_down.load()) std::this_thread::yield();
      try {
        // The destructor has set stop_ (or is about to); keep trying until
        // the reject fires — it must, because stop_ is already visible or
        // will be before this loop ends.
        for (int i = 0; i < 1000000 && !saw_reject.load(); ++i) {
          pool.submit([] {});
        }
      } catch (const std::logic_error&) {
        saw_reject.store(true);
      }
      task_done.store(true);
    });
    tearing_down.store(true);
  }  // ~ThreadPool blocks until the worker task finishes.
  EXPECT_TRUE(task_done.load());
}

TEST(ThreadPoolTest, StatsCountExecutedTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  // submit() always runs on a worker (never the caller), so executed has a
  // deterministic floor; parallel_for's batch handles may or may not be
  // reached before the caller drains the whole loop.
  for (int i = 0; i < 10; ++i) pool.submit([&ran] { ran.fetch_add(1); });
  pool.parallel_for(100, [&](std::size_t) { ran.fetch_add(1); });
  while (ran.load() < 110) std::this_thread::yield();
  const ThreadPool::Stats stats = pool.stats();
  EXPECT_GE(stats.executed, 10u);
  EXPECT_LE(stats.executed, 110u + pool.size());
}

}  // namespace
}  // namespace gurita
