// Tests for the obs/ telemetry subsystem (ISSUE: structured simulation
// telemetry) and its determinism contracts:
//
//  * recorder filtering, caps and export round-trips (JSONL and binary);
//  * registry merge == SimResults::merge_counters, and counter pooling is
//    identical at 1/2/8 workers (the ordered-merge half of DESIGN.md §9
//    applied to telemetry);
//  * same seed + same workload ⇒ byte-identical exported trace at any
//    worker count;
//  * differential check: the event-calendar engine and the reference oracle
//    (tests/oracle_sim.h) drive a scheduler through the *same ordered
//    sequence* of coflow queue-transition records;
//  * the phase profiler accounts for the run without perturbing it;
//  * registry histograms pool byte-identically at 1/2/8 workers, and the
//    interval sampler emits a deterministic timeline on an exact sim-time
//    grid without perturbing the run (DESIGN.md §14).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "exp/registry.h"
#include "flowsim/simulator.h"
#include "obs/memory.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "oracle_sim.h"
#include "topology/big_switch.h"
#include "workload/trace_gen.h"

namespace gurita {
namespace {

using obs::TraceEventKind;
using obs::TraceRecord;
using obs::TraceRecorder;

// --------------------------------------------------------------- recorder

TraceRecord queue_change(double t, std::uint64_t job, int old_q, int new_q) {
  TraceRecord r;
  r.kind = TraceEventKind::kQueueChange;
  r.time = t;
  r.job = job;
  r.coflow = job * 10;
  r.i0 = old_q;
  r.i1 = new_q;
  r.i2 = static_cast<int>(obs::QueueChangeCause::kHrDecision);
  r.v0 = 0.5;
  r.v1 = 0.25;
  r.v2 = 1e9;
  r.v3 = 40;
  r.v4 = 0.5;
  r.v5 = 0.5 * 0.25 * 1e9 * 40 * 0.5;
  return r;
}

TEST(TraceRecorder, FiltersByKindMask) {
  TraceRecorder rec(obs::mask_of(TraceEventKind::kQueueChange));
  EXPECT_TRUE(rec.wants(TraceEventKind::kQueueChange));
  EXPECT_FALSE(rec.wants(TraceEventKind::kFlowFinish));

  rec.emit(queue_change(1.0, 1, 0, 1));
  TraceRecord other;
  other.kind = TraceEventKind::kFlowFinish;
  rec.emit(other);
  ASSERT_EQ(rec.records().size(), 1u);
  EXPECT_EQ(rec.records()[0].kind, TraceEventKind::kQueueChange);
}

TEST(TraceRecorder, EmptyMaskKeepsNothing) {
  TraceRecorder rec(/*mask=*/0);
  rec.emit(queue_change(1.0, 1, 0, 1));
  EXPECT_TRUE(rec.records().empty());
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorder, CapCountsDropped) {
  TraceRecorder rec(TraceRecorder::kAllKinds, /*max_records=*/2);
  for (int i = 0; i < 5; ++i)
    rec.emit(queue_change(static_cast<double>(i), 1, i, i + 1));
  EXPECT_EQ(rec.records().size(), 2u);
  EXPECT_EQ(rec.dropped(), 3u);
  // The kept prefix is the earliest records.
  EXPECT_EQ(rec.records()[0].time, 0.0);
  EXPECT_EQ(rec.records()[1].time, 1.0);
}

TEST(TraceRecorder, TakeMovesBufferOut) {
  TraceRecorder rec;
  rec.emit(queue_change(1.0, 1, 0, 1));
  const std::vector<TraceRecord> out = rec.take();
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(rec.records().empty());
}

TEST(TraceFilter, ParsesNamedSets) {
  EXPECT_EQ(obs::parse_trace_filter("all"), TraceRecorder::kAllKinds);
  EXPECT_EQ(obs::parse_trace_filter("default"), TraceRecorder::kDefaultKinds);
  EXPECT_EQ(obs::parse_trace_filter("queue_change"),
            obs::mask_of(TraceEventKind::kQueueChange));
  EXPECT_EQ(obs::parse_trace_filter("queue_change,flow_finish"),
            obs::mask_of(TraceEventKind::kQueueChange) |
                obs::mask_of(TraceEventKind::kFlowFinish));
  EXPECT_THROW(obs::parse_trace_filter("not_a_kind"), std::logic_error);
  EXPECT_THROW(obs::parse_trace_filter("queue_change,,flow_finish"),
               std::logic_error);
}

TEST(TraceFilter, DefaultExcludesFirehoses) {
  const std::uint32_t mask = TraceRecorder::kDefaultKinds;
  EXPECT_EQ(mask & obs::mask_of(TraceEventKind::kFlowRateChange), 0u);
  EXPECT_EQ(mask & obs::mask_of(TraceEventKind::kStarvationWeights), 0u);
  EXPECT_NE(mask & obs::mask_of(TraceEventKind::kQueueChange), 0u);
}

TEST(TraceKinds, NamesRoundTrip) {
  for (int k = 0; k < obs::kNumTraceEventKinds; ++k) {
    const auto kind = static_cast<TraceEventKind>(k);
    EXPECT_EQ(obs::kind_from_name(obs::kind_name(kind)), kind);
  }
  EXPECT_THROW(obs::kind_from_name("bogus"), std::logic_error);
}

// ---------------------------------------------------------------- export

std::vector<TraceRecord> sample_records() {
  std::vector<TraceRecord> records;
  records.push_back(queue_change(0.25, 3, -1, 0));
  records.push_back(queue_change(0.5, 3, 0, 2));
  TraceRecord fr;
  fr.kind = TraceEventKind::kFlowRelease;
  fr.time = 1.0 / 3.0;  // a double that needs full precision to round-trip
  fr.job = 3;
  fr.coflow = 30;
  fr.flow = 7;
  fr.i0 = 4;   // src host
  fr.i1 = 19;  // dst host
  fr.v0 = 1.5e8;
  records.push_back(fr);
  TraceRecord cap;
  cap.kind = TraceEventKind::kCapacityChange;
  cap.time = 2.0;
  cap.i0 = 11;
  cap.v0 = 5e9;
  records.push_back(cap);
  return records;
}

TEST(TraceJsonl, RoundTripsRecordsAndLabel) {
  const std::vector<TraceRecord> records = sample_records();
  std::ostringstream out;
  obs::write_jsonl(out, records, "run-a/gurita");
  std::istringstream in(out.str());
  const std::vector<obs::TraceSection> sections = obs::read_jsonl(in);
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].label, "run-a/gurita");
  ASSERT_EQ(sections[0].records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& a = records[i];
    const TraceRecord& b = sections[0].records[i];
    EXPECT_EQ(a.kind, b.kind) << "record " << i;
    EXPECT_EQ(a.time, b.time) << "record " << i;
    EXPECT_EQ(a.i0, b.i0) << "record " << i;
    EXPECT_EQ(a.i1, b.i1) << "record " << i;
    EXPECT_EQ(a.v0, b.v0) << "record " << i;
    EXPECT_EQ(a.v5, b.v5) << "record " << i;
  }
}

// flow_release carries a field literally named "src" (the source host); the
// section label must not collide with it on read-back.
TEST(TraceJsonl, FlowReleaseSrcFieldDoesNotSplitSections) {
  std::vector<TraceRecord> records;
  for (int i = 0; i < 4; ++i) {
    TraceRecord fr;
    fr.kind = TraceEventKind::kFlowRelease;
    fr.time = i;
    fr.job = 1;
    fr.coflow = 2;
    fr.flow = static_cast<std::uint64_t>(i);
    fr.i0 = i;      // src host — a different value per record
    fr.i1 = i + 8;  // dst host
    fr.v0 = 100.0;
    records.push_back(fr);
  }
  std::ostringstream out;
  obs::write_jsonl(out, records, "label");
  std::istringstream in(out.str());
  const std::vector<obs::TraceSection> sections = obs::read_jsonl(in);
  ASSERT_EQ(sections.size(), 1u);
  ASSERT_EQ(sections[0].records.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(sections[0].records[i].i0, i);
}

TEST(TraceJsonl, ConsecutiveLabelsGroupIntoSections) {
  std::ostringstream out;
  obs::write_jsonl(out, {queue_change(1.0, 1, 0, 1)}, "a");
  obs::write_jsonl(out, {queue_change(2.0, 2, 0, 1)}, "a");
  obs::write_jsonl(out, {queue_change(3.0, 3, 0, 1)}, "b");
  std::istringstream in(out.str());
  const std::vector<obs::TraceSection> sections = obs::read_jsonl(in);
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].label, "a");
  EXPECT_EQ(sections[0].records.size(), 2u);
  EXPECT_EQ(sections[1].label, "b");
}

TEST(TraceJsonl, MalformedLineThrows) {
  std::istringstream missing_kind(R"({"t":1,"job":3})" "\n");
  EXPECT_THROW(obs::read_jsonl(missing_kind), std::logic_error);
  std::istringstream unknown_field(
      R"({"t":1,"kind":"job_finish","bogus":7})" "\n");
  EXPECT_THROW(obs::read_jsonl(unknown_field), std::logic_error);
  std::istringstream not_json("queue_change at t=1\n");
  EXPECT_THROW(obs::read_jsonl(not_json), std::logic_error);
}

TEST(TraceBinary, RoundTripsExactly) {
  const std::vector<TraceRecord> records = sample_records();
  std::ostringstream out(std::ios::binary);
  obs::write_binary_header(out);
  obs::write_binary_section(out, "run-a/gurita", records);
  obs::write_binary_section(out, "run-b/aalo", {});
  std::istringstream in(out.str(), std::ios::binary);
  const std::vector<obs::TraceSection> sections = obs::read_binary(in);
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].label, "run-a/gurita");
  EXPECT_EQ(sections[1].label, "run-b/aalo");
  EXPECT_TRUE(sections[1].records.empty());
  ASSERT_EQ(sections[0].records.size(), records.size());
  // Binary is a field dump, so equality is exact on every field.
  for (std::size_t i = 0; i < records.size(); ++i)
    EXPECT_EQ(sections[0].records[i], records[i]) << "record " << i;
}

TEST(TraceBinary, BadMagicThrows) {
  std::istringstream in("not a binary trace", std::ios::binary);
  EXPECT_THROW(obs::read_binary(in), std::logic_error);
}

// --------------------------------------------------------------- registry

TEST(Registry, CountersAndGauges) {
  obs::Registry reg;
  reg.add("a.events");
  reg.add("a.events", 4);
  reg.set_gauge("a.makespan", 2.5);
  EXPECT_EQ(reg.counter("a.events"), 5u);
  EXPECT_EQ(reg.counter("absent"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("a.makespan"), 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("absent"), 0.0);
}

TEST(Registry, MergeSumsCountersMaxesGauges) {
  obs::Registry a, b;
  a.add("events", 2);
  a.set_gauge("makespan", 1.0);
  b.add("events", 3);
  b.add("only_b", 1);
  b.set_gauge("makespan", 0.5);
  b.set_gauge("only_b", 7.0);
  a.merge(b);
  EXPECT_EQ(a.counter("events"), 5u);
  EXPECT_EQ(a.counter("only_b"), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("makespan"), 1.0);  // max, not last-write
  EXPECT_DOUBLE_EQ(a.gauge("only_b"), 7.0);
}

TEST(Registry, ToJsonIsNameOrderedAndStable) {
  obs::Registry reg;
  reg.add("z.last", 1);
  reg.add("a.first", 2);
  reg.set_gauge("m.gauge", 0.5);
  const std::string json = reg.to_json();
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  obs::Registry same;
  same.set_gauge("m.gauge", 0.5);
  same.add("a.first", 2);
  same.add("z.last", 1);
  EXPECT_EQ(json, same.to_json());  // insertion order is irrelevant
}

TEST(Registry, ExportTraceCountersCountsPerKind) {
  obs::Registry reg;
  std::vector<TraceRecord> records = {queue_change(1.0, 1, 0, 1),
                                      queue_change(2.0, 1, 1, 2)};
  TraceRecord fr;
  fr.kind = TraceEventKind::kFlowFinish;
  records.push_back(fr);
  obs::export_trace_counters(records, /*dropped=*/4, reg);
  EXPECT_EQ(reg.counter("trace.queue_change"), 2u);
  EXPECT_EQ(reg.counter("trace.flow_finish"), 1u);
  EXPECT_EQ(reg.counter("trace.dropped"), 4u);
}

// ------------------------------------------- counter pooling equivalence

ExperimentConfig small_config(std::uint64_t seed) {
  ExperimentConfig config = trace_scenario(StructureKind::kMixed, 20, seed);
  return config;
}

// Registry::merge over per-run exports must agree with pooling the raw
// counters through SimResults::merge_counters (the two documented pooling
// paths for engine cost counters).
TEST(RegistryMerge, MatchesMergeCounters) {
  std::vector<SimResults> per_seed;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const ExperimentConfig config = small_config(seed);
    const std::vector<JobSpec> jobs = generate_trace(config.trace);
    std::unique_ptr<Scheduler> sched = make_scheduler("gurita");
    per_seed.push_back(run_one(config, jobs, *sched));
  }

  SimResults pooled = per_seed[0];
  for (std::size_t i = 1; i < per_seed.size(); ++i)
    pooled.merge_counters(per_seed[i]);

  obs::Registry merged;
  for (const SimResults& res : per_seed) {
    obs::Registry shard;
    res.export_counters(shard);
    merged.merge(shard);
  }

  obs::Registry direct;
  pooled.export_counters(direct);
  EXPECT_EQ(direct.to_json(), merged.to_json());
  EXPECT_EQ(merged.counter("engine.events"), pooled.events);
  EXPECT_EQ(merged.counter("engine.flow_touches"), pooled.flow_touches);
  EXPECT_EQ(merged.counter("engine.rate_recomputations"),
            pooled.rate_recomputations);
  EXPECT_DOUBLE_EQ(merged.gauge("engine.makespan"), pooled.makespan);
}

// Pooled counters must come out identical at 1, 2 and 8 workers: the
// replicates are merged in replicate order regardless of which worker ran
// them (DESIGN.md §9), and the registry projection inherits that.
TEST(RegistryMerge, WorkerCountInvariant) {
  const std::vector<std::string> names = {"gurita", "aalo"};
  std::vector<std::string> jsons;
  for (const int jobs : {1, 2, 8}) {
    const ComparisonResult result =
        compare_schedulers_seeds(small_config(7), names, /*num_seeds=*/4, jobs);
    obs::Registry reg;
    for (const auto& [name, res] : result.results) {
      obs::Registry shard;
      res.export_counters(shard);
      // Prefix with the scheduler name so the two schedulers' counters
      // stay distinguishable in the pooled registry.
      for (const auto& [k, v] : shard.counters()) reg.add(name + "." + k, v);
      for (const auto& [k, v] : shard.gauges()) {
        if (v > reg.gauge(name + "." + k)) reg.set_gauge(name + "." + k, v);
      }
    }
    jsons.push_back(reg.to_json());
  }
  EXPECT_EQ(jsons[0], jsons[1]) << "1 worker vs 2 workers";
  EXPECT_EQ(jsons[0], jsons[2]) << "1 worker vs 8 workers";
}

// ----------------------------------------------------- trace determinism

std::string pooled_trace_jsonl(int jobs) {
  ExperimentConfig config = small_config(11);
  config.obs.trace = true;
  const ComparisonResult result = compare_schedulers_seeds(
      config, {"gurita", "aalo"}, /*num_seeds=*/3, jobs);
  std::ostringstream out;
  for (const auto& [name, res] : result.results)
    obs::write_jsonl(out, res.trace, name);
  return out.str();
}

// Same seed + same workload ⇒ byte-identical exported trace at any worker
// count: per-replicate traces are appended in replicate order with job and
// coflow ids re-based, exactly like the serial run.
TEST(TraceDeterminism, ByteIdenticalAcrossWorkerCounts) {
  const std::string serial = pooled_trace_jsonl(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, pooled_trace_jsonl(2)) << "1 worker vs 2 workers";
  EXPECT_EQ(serial, pooled_trace_jsonl(8)) << "1 worker vs 8 workers";
}

TEST(TraceDeterminism, RerunIsByteIdentical) {
  EXPECT_EQ(pooled_trace_jsonl(1), pooled_trace_jsonl(1));
}

// Differential oracle: the fast engine and the reference oracle must drive
// a scheduler through the same ordered sequence of queue-transition
// decisions. The fast engine gets its recorder through Simulator::Config
// (which forwards it to the scheduler); the oracle's scheduler is handed
// its recorder directly — the hook the engine deliberately leaves open for
// externally driven schedulers.
void expect_same_queue_transitions(const std::string& scheduler_name,
                                   std::uint64_t seed) {
  SCOPED_TRACE(scheduler_name + " @ seed " + std::to_string(seed));
  const BigSwitch fabric(BigSwitch::Config{24, gbps(10.0)});
  TraceConfig trace;
  trace.num_jobs = 8;
  trace.num_hosts = fabric.num_hosts();
  trace.structure = StructureKind::kMixed;
  trace.seed = seed;
  const std::vector<JobSpec> jobs = generate_trace(trace);

  const std::uint32_t mask = obs::mask_of(TraceEventKind::kQueueChange);
  TraceRecorder fast_rec(mask);
  TraceRecorder oracle_rec(mask);

  std::unique_ptr<Scheduler> fast_sched = make_scheduler(scheduler_name);
  std::unique_ptr<Scheduler> oracle_sched = make_scheduler(scheduler_name);
  oracle_sched->set_trace_recorder(&oracle_rec);

  Simulator::Config config;
  config.trace = &fast_rec;
  Simulator fast(fabric, *fast_sched, config);
  OracleSimulator oracle(fabric, *oracle_sched);
  for (const JobSpec& job : jobs) {
    fast.submit(job);
    oracle.submit(job);
  }
  (void)fast.run();
  (void)oracle.run();

  const std::vector<TraceRecord>& a = fast_rec.records();
  const std::vector<TraceRecord>& b = oracle_rec.records();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty()) << "workload produced no queue transitions";
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << "transition " << i;
}

TEST(TraceDifferential, EnginesEmitSameQueueTransitionSequence) {
  for (const char* name : {"gurita", "gurita_plus", "aalo"})
    for (std::uint64_t seed : {21u, 22u, 23u})
      expect_same_queue_transitions(name, seed);
}

// ---------------------------------------------------------------- profiler

TEST(Profiler, NullScopedPhaseIsNoOp) {
  obs::ScopedPhase scope(nullptr, obs::Phase::kAllocator);  // must not crash
  obs::PhaseProfiler profiler;
  EXPECT_EQ(profiler.snapshot().runs, 0u);
  EXPECT_EQ(profiler.snapshot().tracked_ns(), 0u);
  EXPECT_DOUBLE_EQ(profiler.snapshot().coverage(), 0.0);
}

TEST(Profiler, ExclusiveAttributionNests) {
  obs::PhaseProfiler profiler;
  profiler.begin_run();
  {
    obs::ScopedPhase outer(&profiler, obs::Phase::kCompletion);
    obs::ScopedPhase inner(&profiler, obs::Phase::kDagRelease);
  }
  profiler.end_run();
  const obs::PhaseProfile& p = profiler.snapshot();
  EXPECT_EQ(p.runs, 1u);
  EXPECT_EQ(p.phases[static_cast<int>(obs::Phase::kCompletion)].count, 1u);
  EXPECT_EQ(p.phases[static_cast<int>(obs::Phase::kDagRelease)].count, 1u);
  EXPECT_LE(p.tracked_ns(), p.run_wall_ns);
  EXPECT_LE(p.coverage(), 1.0);
}

TEST(Profiler, MergeSums) {
  obs::PhaseProfile a, b;
  a.phases[0].ns = 10;
  a.phases[0].count = 1;
  a.run_wall_ns = 100;
  a.runs = 1;
  b.phases[0].ns = 5;
  b.phases[0].count = 2;
  b.run_wall_ns = 50;
  b.runs = 2;
  a.merge(b);
  EXPECT_EQ(a.phases[0].ns, 15u);
  EXPECT_EQ(a.phases[0].count, 3u);
  EXPECT_EQ(a.run_wall_ns, 150u);
  EXPECT_EQ(a.runs, 3u);
}

TEST(Profiler, CoversEngineRunWithoutPerturbingIt) {
  const ExperimentConfig config = small_config(5);
  const std::vector<JobSpec> jobs = generate_trace(config.trace);

  std::unique_ptr<Scheduler> plain_sched = make_scheduler("gurita");
  const SimResults plain = run_one(config, jobs, *plain_sched);

  ExperimentConfig profiled_config = config;
  profiled_config.obs.profile = true;
  std::unique_ptr<Scheduler> profiled_sched = make_scheduler("gurita");
  const SimResults profiled = run_one(profiled_config, jobs, *profiled_sched);

  // Profiling never touches simulation state: bit-identical outcomes.
  EXPECT_EQ(profiled.makespan, plain.makespan);
  EXPECT_EQ(profiled.events, plain.events);
  EXPECT_EQ(profiled.flow_touches, plain.flow_touches);

  const obs::PhaseProfile& p = profiled.profile;
  EXPECT_EQ(p.runs, 1u);
  EXPECT_LE(p.tracked_ns(), p.run_wall_ns);
  // The event loop's glue is small; keep the bound loose enough for
  // sanitizer builds while still proving the phases cover the run.
  EXPECT_GE(p.coverage(), 0.5);
  EXPECT_GT(p.phases[static_cast<int>(obs::Phase::kAllocator)].count, 0u);
  EXPECT_GT(p.phases[static_cast<int>(obs::Phase::kCompletion)].count, 0u);
  EXPECT_GT(
      p.phases[static_cast<int>(obs::Phase::kSchedulerAssign)].count, 0u);

  const std::string table = p.to_table();
  EXPECT_NE(table.find("allocator"), std::string::npos);
  EXPECT_NE(table.find("coverage"), std::string::npos);

  obs::Registry reg;
  p.export_to(reg);
  EXPECT_EQ(reg.counter("profile.run_wall_ns"), p.run_wall_ns);
  EXPECT_GT(reg.gauge("profile.coverage"), 0.0);
}

// ------------------------------------------------- registry histograms

TEST(RegistryHistograms, ObserveAndJsonPercentiles) {
  obs::Registry reg;
  for (int i = 0; i < 99; ++i) reg.observe("jct", 5.0);
  reg.observe("jct", 5000.0);
  reg.observe("queue_wait", 0.0);

  EXPECT_EQ(reg.histograms().at("jct").total(), 100u);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"jct\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
  for (const char* key : {"\"p50\"", "\"p95\"", "\"p99\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  // p50/p95 sit in [1, 10) -> upper edge 10; p99 lands in the top bucket.
  EXPECT_DOUBLE_EQ(reg.histogram("jct").percentile(50), 10.0);
  EXPECT_DOUBLE_EQ(reg.histogram("jct").percentile(95), 10.0);
  EXPECT_DOUBLE_EQ(reg.histogram("jct").percentile(100), 10000.0);
  // Re-declaring with a different base is a bug, not a silent resplit.
  EXPECT_THROW(reg.histogram("jct", 2.0), std::logic_error);
}

TEST(RegistryHistograms, MergeSumsBucketsCommutatively) {
  obs::Registry a, b;
  a.observe("jct", 5.0);
  a.observe("only_a", 1.0);
  b.observe("jct", 50.0);
  b.observe("jct", 0.0);
  obs::Registry ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.to_json(), ba.to_json());
  EXPECT_EQ(ab.histograms().at("jct").total(), 3u);
  EXPECT_EQ(ab.histograms().at("jct").zeros(), 1u);
  EXPECT_EQ(ab.histograms().at("only_a").total(), 1u);
}

// The export-layer projection: pooled results observed into latency
// histograms must serialize identically at 1, 2 and 8 workers (the
// replicate-order pooling of DESIGN.md §9 carried through to percentiles).
std::string pooled_histogram_json(int jobs) {
  const ComparisonResult result = compare_schedulers_seeds(
      small_config(17), {"gurita", "aalo"}, /*num_seeds=*/4, jobs);
  obs::Registry reg;
  for (const auto& [name, res] : result.results) {
    for (const SimResults::JobResult& j : res.jobs)
      if (!j.failed) reg.observe(name + ".jct", j.jct());
    for (const SimResults::CoflowResult& c : res.coflows) {
      if (c.failed || c.release < 0) continue;
      reg.observe(name + ".queue_wait",
                  c.release - res.jobs[c.job.value()].arrival);
    }
  }
  return reg.to_json();
}

TEST(RegistryHistograms, WorkerCountInvariant) {
  const std::string serial = pooled_histogram_json(1);
  EXPECT_NE(serial.find("\"gurita.jct\""), std::string::npos);
  EXPECT_EQ(serial, pooled_histogram_json(2)) << "1 worker vs 2 workers";
  EXPECT_EQ(serial, pooled_histogram_json(8)) << "1 worker vs 8 workers";
}

// ------------------------------------------------------ interval sampler

TEST(Sampler, BoundariesAreGridMultiples) {
  obs::IntervalSampler sampler(obs::IntervalSampler::Config{0.5});
  TraceRecorder rec(TraceRecorder::kAllKinds);
  EXPECT_DOUBLE_EQ(sampler.next_due(), 0.5);
  obs::IntervalSampler::SimSample sim;
  obs::IntervalSampler::MemSample mem;
  sim.events = 10;
  mem.state_bytes = 100;
  sampler.emit(rec, sim, mem);
  EXPECT_DOUBLE_EQ(sampler.next_due(), 1.0);
  sim.events = 30;
  sampler.emit(rec, sim, mem);
  // 1.5, not 0.5 + 0.5 + 0.5 accumulated: boundaries come from k * every.
  EXPECT_DOUBLE_EQ(sampler.next_due(), 3 * 0.5);

  ASSERT_EQ(rec.records().size(), 4u);  // (kSample, kMemSample) x 2
  const TraceRecord& s0 = rec.records()[0];
  EXPECT_EQ(s0.kind, TraceEventKind::kSample);
  EXPECT_DOUBLE_EQ(s0.time, 0.5);
  EXPECT_DOUBLE_EQ(s0.v0, 10.0);              // events
  EXPECT_DOUBLE_EQ(s0.v1, 10.0 / 0.5);        // events/s over the interval
  EXPECT_EQ(rec.records()[1].kind, TraceEventKind::kMemSample);
  EXPECT_DOUBLE_EQ(rec.records()[1].v5, 100.0);  // total
  const TraceRecord& s1 = rec.records()[2];
  EXPECT_DOUBLE_EQ(s1.time, 1.0);
  EXPECT_DOUBLE_EQ(s1.v1, (30.0 - 10.0) / 0.5);  // delta since last boundary
}

TEST(Sampler, CursorRoundTripResumesTheGrid) {
  obs::IntervalSampler a(obs::IntervalSampler::Config{0.25});
  TraceRecorder rec(TraceRecorder::kAllKinds);
  obs::IntervalSampler::SimSample sim;
  obs::IntervalSampler::MemSample mem;
  sim.events = 7;
  a.emit(rec, sim, mem);
  a.emit(rec, sim, mem);

  obs::IntervalSampler b(obs::IntervalSampler::Config{0.25});
  b.restore_cursor(a.cursor());
  EXPECT_DOUBLE_EQ(b.next_due(), a.next_due());
  // The restored events/sec delta matches: both emit identical records.
  TraceRecorder ra(TraceRecorder::kAllKinds), rb(TraceRecorder::kAllKinds);
  sim.events = 19;
  a.emit(ra, sim, mem);
  b.emit(rb, sim, mem);
  ASSERT_EQ(ra.records().size(), rb.records().size());
  for (std::size_t i = 0; i < ra.records().size(); ++i)
    EXPECT_EQ(ra.records()[i], rb.records()[i]);
}

TEST(Sampler, RejectsNonPositiveInterval) {
  EXPECT_THROW(obs::IntervalSampler(obs::IntervalSampler::Config{0.0}),
               std::logic_error);
}

// Attaching the sampler never perturbs the simulation: bit-identical
// outcomes, with kSample/kMemSample records riding the trace buffer.
TEST(Sampler, EngineTimelineDoesNotPerturbTheRun) {
  ExperimentConfig config = small_config(29);
  const std::vector<JobSpec> jobs = generate_trace(config.trace);
  std::unique_ptr<Scheduler> plain_sched = make_scheduler("gurita");
  const SimResults plain = run_one(config, jobs, *plain_sched);

  ExperimentConfig timeline_config = config;
  timeline_config.obs.timeline_every = 0.02;
  std::unique_ptr<Scheduler> timeline_sched = make_scheduler("gurita");
  const SimResults timed = run_one(timeline_config, jobs, *timeline_sched);

  EXPECT_EQ(timed.makespan, plain.makespan);
  EXPECT_EQ(timed.events, plain.events);
  EXPECT_EQ(timed.flow_touches, plain.flow_touches);

  std::size_t samples = 0, mem_samples = 0, wall_samples = 0;
  double prev = 0;
  for (const TraceRecord& r : timed.trace) {
    if (r.kind == TraceEventKind::kSample) {
      ++samples;
      // Strictly increasing grid times, each an exact multiple of the
      // cadence (multiplication, not accumulation).
      EXPECT_GT(r.time, prev);
      const double k = r.time / 0.02;
      EXPECT_DOUBLE_EQ(k, std::round(k));
      prev = r.time;
    } else if (r.kind == TraceEventKind::kMemSample) {
      ++mem_samples;
    } else if (r.kind == TraceEventKind::kWallSample) {
      ++wall_samples;
    }
  }
  EXPECT_GT(samples, 0u) << "makespan " << timed.makespan
                         << " crossed no 0.02 s boundary";
  EXPECT_EQ(samples, mem_samples);
  EXPECT_EQ(wall_samples, 0u) << "wall samples must be opt-in";
}

std::string pooled_timeline_jsonl(int jobs) {
  ExperimentConfig config = small_config(11);
  config.obs.timeline_every = 0.02;
  const ComparisonResult result = compare_schedulers_seeds(
      config, {"gurita", "aalo"}, /*num_seeds=*/3, jobs);
  std::ostringstream out;
  for (const auto& [name, res] : result.results)
    obs::write_jsonl(out, res.trace, name);
  return out.str();
}

// The tentpole determinism claim: the pooled timeline (sampler records
// included) is byte-identical at any worker count.
TEST(TimelineDeterminism, ByteIdenticalAcrossWorkerCounts) {
  const std::string serial = pooled_timeline_jsonl(1);
  EXPECT_NE(serial.find("sample"), std::string::npos)
      << "timeline export carried no sampler records";
  EXPECT_EQ(serial, pooled_timeline_jsonl(2)) << "1 worker vs 2 workers";
  EXPECT_EQ(serial, pooled_timeline_jsonl(8)) << "1 worker vs 8 workers";
}

// --------------------------------------------------- memory accountant

TEST(MemoryAccountant, PeaksFoldAndMergeByMax) {
  using S = obs::MemoryAccountant::Subsystem;
  obs::MemoryAccountant a;
  a.observe(S::kState, 100);
  a.observe(S::kCalendar, 50);
  a.observe(S::kState, 40);  // current drops, peak holds
  EXPECT_EQ(a.current(S::kState), 40u);
  EXPECT_EQ(a.peak(S::kState), 100u);
  EXPECT_EQ(a.peak_total(), 150u);

  obs::MemoryAccountant b;
  b.observe(S::kState, 70);
  b.observe(S::kTrace, 500);
  a.merge(b);
  EXPECT_EQ(a.peak(S::kState), 100u);
  EXPECT_EQ(a.peak(S::kTrace), 500u);
  EXPECT_EQ(a.peak_total(), 570u);

  obs::Registry reg;
  a.export_to(reg);
  EXPECT_DOUBLE_EQ(reg.gauge("mem.state.peak_bytes"), 100.0);
  EXPECT_DOUBLE_EQ(reg.gauge("mem.total.peak_bytes"), 570.0);
}

// -------------------------------------------------- engine trace content

// The engine's own record stream is internally consistent: releases pair
// with finishes, ids resolve, and queue transitions carry the Ψ̈ breakdown.
TEST(EngineTrace, RecordsPairUpAndCarryPsiBreakdown) {
  ExperimentConfig config = small_config(13);
  config.obs.trace = true;
  const std::vector<JobSpec> jobs = generate_trace(config.trace);
  std::unique_ptr<Scheduler> sched = make_scheduler("gurita");
  const SimResults res = run_one(config, jobs, *sched);
  ASSERT_FALSE(res.trace.empty());

  std::uint64_t count[obs::kNumTraceEventKinds] = {};
  bool saw_psi_breakdown = false;
  for (const TraceRecord& r : res.trace) {
    ++count[static_cast<int>(r.kind)];
    if (r.kind == TraceEventKind::kQueueChange &&
        r.i2 == static_cast<int>(obs::QueueChangeCause::kHrDecision)) {
      EXPECT_GT(r.v5, 0.0);  // Ψ̈ itself
      EXPECT_GT(r.v3, 0.0);  // n̈ (width)
      EXPECT_GT(r.v4, 0.0);  // critical-path discount in (0, 1]
      EXPECT_LE(r.v4, 1.0);
      saw_psi_breakdown = true;
    }
  }
  const auto n = [&](TraceEventKind k) { return count[static_cast<int>(k)]; };
  EXPECT_EQ(n(TraceEventKind::kJobArrival), jobs.size());
  EXPECT_EQ(n(TraceEventKind::kJobFinish), jobs.size());
  EXPECT_EQ(n(TraceEventKind::kCoflowRelease),
            n(TraceEventKind::kCoflowFinish));
  EXPECT_EQ(n(TraceEventKind::kFlowRelease), n(TraceEventKind::kFlowFinish));
  EXPECT_GT(n(TraceEventKind::kQueueChange), 0u);
  EXPECT_TRUE(saw_psi_breakdown)
      << "no HR-decision queue transition carried the Ψ̈ factor breakdown";
}

}  // namespace
}  // namespace gurita
