// Tests for deadline support: JobSpec validation, tardiness metrics,
// deadline assignment, trace round-trip and Gurita's slack discount
// (Johnson's fourth rule).
#include <gtest/gtest.h>

#include <cstdio>

#include "coflow/critical_path.h"
#include "core/gurita.h"
#include "flowsim/simulator.h"
#include "metrics/deadlines.h"
#include "sched/pfs.h"
#include "topology/fattree.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace gurita {
namespace {

JobSpec one_flow_job(Bytes size, int src, int dst, Time arrival = 0) {
  JobSpec job;
  job.arrival_time = arrival;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{src, dst, size});
  job.coflows.push_back(c);
  job.deps = {{}};
  return job;
}

TEST(Deadlines, ValidationRejectsDeadlineBeforeArrival) {
  JobSpec job = one_flow_job(100.0, 0, 1, 5.0);
  job.deadline = 4.0;
  EXPECT_THROW(validate(job, 16), std::logic_error);
  job.deadline = 6.0;
  EXPECT_NO_THROW(validate(job, 16));
  job.deadline = 0.0;  // "no deadline" is always fine
  EXPECT_NO_THROW(validate(job, 16));
}

TEST(Deadlines, TardinessReportCountsMisses) {
  std::vector<JobSpec> jobs;
  SimResults results;
  for (int i = 0; i < 3; ++i) {
    JobSpec job = one_flow_job(100.0, 0, 1);
    job.deadline = 2.0;
    jobs.push_back(job);
    SimResults::JobResult r;
    r.id = JobId{static_cast<std::uint64_t>(i)};
    r.finish = 1.0 + i;  // finishes at 1, 2, 3: one miss (3 > 2)
    results.jobs.push_back(r);
  }
  // A job without a deadline never counts.
  jobs.push_back(one_flow_job(100.0, 0, 1));
  SimResults::JobResult r;
  r.id = JobId{3};
  r.finish = 100.0;
  results.jobs.push_back(r);

  const TardinessReport report = tardiness_report(jobs, results);
  EXPECT_EQ(report.jobs_with_deadline, 3u);
  EXPECT_EQ(report.misses, 1u);
  EXPECT_NEAR(report.miss_rate(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(report.mean_tardiness, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(report.max_tardiness, 1.0);
}

TEST(Deadlines, EmptyReport) {
  const TardinessReport report = tardiness_report({}, SimResults{});
  EXPECT_EQ(report.jobs_with_deadline, 0u);
  EXPECT_DOUBLE_EQ(report.miss_rate(), 0.0);
}

TEST(Deadlines, AssignDeadlinesRespectsBounds) {
  TraceConfig config;
  config.num_jobs = 30;
  config.num_hosts = 32;
  auto jobs = generate_trace(config);
  Rng rng(3);
  assign_deadlines(jobs, rng, 1.5, 4.0, gbps(10.0));
  for (const JobSpec& job : jobs) {
    ASSERT_TRUE(job.has_deadline());
    const double bound = jct_lower_bound(job, gbps(10.0));
    EXPECT_GE(job.deadline, job.arrival_time + 1.5 * bound - 1e-9);
    EXPECT_LE(job.deadline, job.arrival_time + 4.0 * bound + 1e-9);
    EXPECT_NO_THROW(validate(job, config.num_hosts));
  }
}

TEST(Deadlines, AssignRejectsUnmeetableSlack) {
  std::vector<JobSpec> jobs = {one_flow_job(100.0, 0, 1)};
  Rng rng(1);
  EXPECT_THROW(assign_deadlines(jobs, rng, 0.9, 2.0, 100.0),
               std::logic_error);
  EXPECT_THROW(assign_deadlines(jobs, rng, 2.0, 1.5, 100.0),
               std::logic_error);
}

TEST(Deadlines, TraceRoundTripKeepsDeadline) {
  const std::string path = ::testing::TempDir() + "deadline_roundtrip.trace";
  std::vector<JobSpec> jobs = {one_flow_job(100.0, 0, 1, 1.0)};
  jobs[0].deadline = 7.5;
  jobs.push_back(one_flow_job(50.0, 1, 2));  // no deadline
  save_trace(path, jobs);
  const auto loaded = load_trace(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[0].deadline, 7.5);
  EXPECT_FALSE(loaded[1].has_deadline());
}

TEST(Deadlines, SlackDiscountRescuesUrgentJob) {
  // An urgent deadline job contends with a same-size job; with the slack
  // discount its Ψ shrinks when its budget runs low, letting it win the
  // bottleneck and meet the deadline.
  const FatTree fabric(FatTree::Config{4, 100.0});
  auto run_with = [&](double discount) {
    GuritaScheduler::Config config;
    config.first_threshold = 75.0;
    config.multiplier = 4.0;
    config.delta = 0.1;
    config.starvation_mitigation = false;
    config.slack_discount = discount;
    config.slack_urgency = 0.2;
    GuritaScheduler gurita(config);
    Simulator sim(fabric, gurita);
    std::vector<JobSpec> jobs;
    // Deadline job: 400 B, needs 4 s alone; deadline at t=6.
    JobSpec urgent = one_flow_job(400.0, 0, 1, 0.0);
    urgent.deadline = 6.0;
    jobs.push_back(urgent);
    sim.submit(urgent);
    // Competitor without deadline, same link, same size.
    jobs.push_back(one_flow_job(400.0, 0, 1, 0.0));
    sim.submit(jobs.back());
    const SimResults r = sim.run();
    return tardiness_report(jobs, r);
  };

  const TardinessReport without = run_with(0.0);
  const TardinessReport with = run_with(0.9);
  // Fair split finishes both at 8 -> the deadline (6) is missed without
  // the discount; the boosted job preempts and makes it with slack on.
  EXPECT_EQ(without.misses, 1u);
  EXPECT_EQ(with.misses, 0u);
}

}  // namespace
}  // namespace gurita
