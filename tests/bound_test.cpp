// Tests for the network-level lower bounds (src/bound/).
//
// Two families: hand-computed instances where a bound is provably *tight*
// (so the exact value is asserted, not just soundness), and a randomized
// soundness corpus replaying every registry scheduler — with and without
// fault injection — and checking bound <= achieved in every report cell.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "bound/bound.h"
#include "bound/gap.h"
#include "common/rng.h"
#include "exp/experiment.h"
#include "exp/registry.h"
#include "topology/fattree.h"
#include "workload/trace_gen.h"

namespace gurita {
namespace {

// ------------------------------------------------------------------ SRPT

TEST(Srpt, EmptyAndSingleJob) {
  EXPECT_DOUBLE_EQ(srpt_total_flow_time({}), 0.0);
  // One job released at 2 with 3s of work: flow time is its own length.
  EXPECT_DOUBLE_EQ(srpt_total_flow_time({{2.0, 3.0}}), 3.0);
}

TEST(Srpt, PreemptsForShorterArrival) {
  // A(release 0, work 4), B(release 1, work 1). SRPT preempts A at t=1,
  // finishes B at 2 (flow 1), resumes A to 5 (flow 5): total 6. Any
  // non-preemptive order is worse (A-first: 4 + 4 = 8).
  EXPECT_DOUBLE_EQ(srpt_total_flow_time({{0.0, 4.0}, {1.0, 1.0}}), 6.0);
}

TEST(Srpt, BatchCollapsesToSjf) {
  // Batch release: SRPT = SJF. Completions 1, 3, 6 -> total 10.
  EXPECT_DOUBLE_EQ(
      srpt_total_flow_time({{0.0, 1.0}, {0.0, 2.0}, {0.0, 3.0}}), 10.0);
  // Input order must not matter.
  EXPECT_DOUBLE_EQ(
      srpt_total_flow_time({{0.0, 3.0}, {0.0, 1.0}, {0.0, 2.0}}), 10.0);
}

TEST(Srpt, IdleGapBetweenReleases) {
  // Work of 1 at t=0, then nothing until t=10: the machine idles, and the
  // second job's flow time restarts from its own release.
  EXPECT_DOUBLE_EQ(srpt_total_flow_time({{0.0, 1.0}, {10.0, 2.0}}), 3.0);
}

// ------------------------------------------- hand-computed tight instances

/// One coflow of single-flow transfers; sizes[i] goes src -> dst pairs[i].
CoflowSpec coflow_of(
    const std::vector<std::pair<std::pair<int, int>, Bytes>>& flows) {
  CoflowSpec c;
  for (const auto& [hosts, bytes] : flows) {
    FlowSpec f;
    f.src_host = hosts.first;
    f.dst_host = hosts.second;
    f.size = bytes;
    c.flows.push_back(f);
  }
  return c;
}

TEST(PortLoadBound, FanOutBottlenecksOnTheSenderUplink) {
  // One job, one coflow: host 0 sends 200 B to host 1 and 300 B to host 2
  // at 100 B/s. The sender uplink carries 500 B -> 5 s; each receiver
  // downlink carries less. The bound is exactly 5 s and the sequential
  // reference achieves it (a single job runs alone).
  JobSpec job;
  job.coflows.push_back(coflow_of({{{0, 1}, 200.0}, {{0, 2}, 300.0}}));
  job.deps = {{}};

  const BoundAnalysis analysis({job}, /*num_hosts=*/3, /*capacity=*/100.0);
  ASSERT_EQ(analysis.jobs().size(), 1u);
  EXPECT_DOUBLE_EQ(analysis.jobs()[0].critical_path, 5.0);
  EXPECT_DOUBLE_EQ(analysis.jobs()[0].serial_duration, 5.0);
  EXPECT_DOUBLE_EQ(analysis.port_load_bound(), 5.0);
  EXPECT_DOUBLE_EQ(analysis.ordering_bound(), 5.0);
  EXPECT_DOUBLE_EQ(analysis.average_jct_bound(), 5.0);
  EXPECT_DOUBLE_EQ(analysis.reference_average_jct(), 5.0);
}

TEST(PortLoadBound, DagChainsAsACriticalPath) {
  // coflow 0 (2 s on hosts 0->1) then coflow 1 (4 s on hosts 2->3): no
  // port is shared, but the dependency forces 2 + 4 = 6 s. The per-port
  // SRPT relaxation alone would only see 4 s — the DAG term dominates.
  JobSpec job;
  job.coflows.push_back(coflow_of({{{0, 1}, 200.0}}));
  job.coflows.push_back(coflow_of({{{2, 3}, 400.0}}));
  job.deps = {{}, {0}};

  const BoundAnalysis analysis({job}, /*num_hosts=*/4, /*capacity=*/100.0);
  EXPECT_DOUBLE_EQ(analysis.jobs()[0].critical_path, 6.0);
  EXPECT_DOUBLE_EQ(analysis.jobs()[0].serial_duration, 6.0);
  EXPECT_DOUBLE_EQ(analysis.average_jct_bound(), 6.0);
}

TEST(PortLoadBound, ParallelChainsTakeTheLongestBranch) {
  // coflows 0 (2 s) and 1 (3 s) independent, coflow 2 (1 s) joins them:
  // critical path max(2, 3) + 1 = 4 s; serial duration 6 s.
  JobSpec job;
  job.coflows.push_back(coflow_of({{{0, 1}, 200.0}}));
  job.coflows.push_back(coflow_of({{{2, 3}, 300.0}}));
  job.coflows.push_back(coflow_of({{{4, 5}, 100.0}}));
  job.deps = {{}, {}, {0, 1}};

  const BoundAnalysis analysis({job}, /*num_hosts=*/6, /*capacity=*/100.0);
  EXPECT_DOUBLE_EQ(analysis.jobs()[0].critical_path, 4.0);
  EXPECT_DOUBLE_EQ(analysis.jobs()[0].serial_duration, 6.0);
  EXPECT_DOUBLE_EQ(analysis.port_load_bound(), 4.0);
}

/// Three single-flow jobs contending on the same 0 -> 1 pair, batch
/// arrivals, sizes 100/200/300 B at 100 B/s.
std::vector<JobSpec> contended_batch() {
  std::vector<JobSpec> jobs;
  for (const Bytes size : {100.0, 200.0, 300.0}) {
    JobSpec job;
    job.coflows.push_back(coflow_of({{{0, 1}, size}}));
    job.deps = {{}};
    jobs.push_back(job);
  }
  return jobs;
}

TEST(OrderingBound, SharedPortBatchIsSjfTight) {
  // Per-job critical paths are 1/2/3 s -> port-load bound 2 s. The shared
  // uplink forces SJF completions 1, 3, 6 -> ordering bound 10/3 s, which
  // dominates — and the Shafiee–Ghaderi reference (shortest job first on
  // the bottleneck) achieves exactly that, so the bound is tight.
  const BoundAnalysis analysis(contended_batch(), /*num_hosts=*/2,
                               /*capacity=*/100.0);
  EXPECT_DOUBLE_EQ(analysis.port_load_bound(), 2.0);
  EXPECT_DOUBLE_EQ(analysis.ordering_bound(), 10.0 / 3.0);
  EXPECT_DOUBLE_EQ(analysis.average_jct_bound(), 10.0 / 3.0);
  EXPECT_DOUBLE_EQ(analysis.reference_average_jct(), 10.0 / 3.0);
}

TEST(OrderingBound, SubsetRestrictionStaysExact) {
  const BoundAnalysis analysis(contended_batch(), /*num_hosts=*/2,
                               /*capacity=*/100.0);
  // Only the 200 B job: alone on the port, its bound is its own 2 s.
  EXPECT_DOUBLE_EQ(analysis.average_jct_bound({false, true, false}), 2.0);
  // Jobs 0 and 2: SRPT completions 1 and 4 -> (1 + 4) / 2.
  EXPECT_DOUBLE_EQ(analysis.average_jct_bound({true, false, true}), 2.5);
  // Empty subset is defined as 0.
  EXPECT_DOUBLE_EQ(analysis.average_jct_bound({false, false, false}), 0.0);
}

TEST(OrderingBound, ReleaseDatesEnterTheRelaxation) {
  // A: 300 B at t=0, B: 100 B at t=1, same port. SRPT preempts A for B
  // (B flows 1 s, A flows 4 s) -> sum 5, bound 2.5 s; the critical-path
  // bound alone would only give (3 + 1) / 2 = 2 s.
  std::vector<JobSpec> jobs = contended_batch();
  jobs.resize(2);
  jobs[0].coflows[0].flows[0].size = 300.0;
  jobs[1].coflows[0].flows[0].size = 100.0;
  jobs[1].arrival_time = 1.0;

  const BoundAnalysis analysis(jobs, /*num_hosts=*/2, /*capacity=*/100.0);
  EXPECT_DOUBLE_EQ(analysis.port_load_bound(), 2.0);
  EXPECT_DOUBLE_EQ(analysis.average_jct_bound(), 2.5);
  // The sequential reference stays above the bound (it cannot preempt).
  EXPECT_GE(analysis.reference_average_jct(), 2.5);
}

// ------------------------------------------------------ soundness corpus

/// Draws one randomized experiment the way the differential harness does:
/// a small fat-tree, a random trace shape, and faults on ~30% of trials.
ExperimentConfig draw_config(std::uint64_t seed) {
  Rng rng(seed);
  ExperimentConfig config;
  config.fat_tree_k = 4;  // 16 hosts; corpus scale
  config.trace.num_jobs = static_cast<int>(rng.uniform_int(3, 10));
  config.trace.structure = static_cast<StructureKind>(rng.uniform_int(0, 2));
  config.trace.arrivals = rng.next_double() < 0.5 ? ArrivalPattern::kPoisson
                                                  : ArrivalPattern::kBursty;
  config.trace.mean_interarrival = rng.uniform(1.0, 50.0) * kMillisecond;
  config.trace.burst_size = static_cast<int>(rng.uniform_int(2, 6));
  config.trace.max_width = static_cast<int>(rng.uniform_int(2, 16));
  config.trace.width_pareto_alpha = rng.uniform(0.8, 2.0);
  config.trace.flow_skew_sigma = rng.uniform(0.2, 1.5);
  config.trace.stage_skew_sigma = rng.uniform(0.5, 2.0);
  config.trace.seed = rng.next_u64();

  // Faults only *slow* a run (crash/flap/straggle at nominal-or-lower
  // capacity), so the bound must hold on faulty runs too — including ones
  // with failed jobs, which the report masks out on both sides.
  if (rng.next_double() < 0.3) {
    config.faults.enabled = true;
    config.faults.plan.host_crash_rate = rng.uniform(0.5, 3.0);
    config.faults.plan.link_flap_rate = rng.uniform(0.0, 2.0);
    config.faults.plan.straggler_rate = rng.uniform(0.0, 4.0);
    config.faults.plan.state_loss_rate = rng.uniform(0.0, 1.0);
    // A stingy retry budget on some faulty trials abandons jobs, so the
    // corpus exercises the report's failed-job masking path too.
    if (rng.next_double() < 0.5) config.faults.plan.retry.max_attempts = 1;
  }
  return config;
}

/// The exact workload compare_schedulers replays (same fabric sizing).
std::vector<JobSpec> workload_of(const ExperimentConfig& config) {
  const FatTree fabric(
      FatTree::Config{config.fat_tree_k, config.link_capacity});
  TraceConfig trace = config.trace;
  trace.num_hosts = fabric.num_hosts();
  return generate_trace(trace);
}

TEST(BoundSoundness, CorpusOfRandomRunsNeverBeatsTheBound) {
  int faulty_trials = 0;
  int masked_cells = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const ExperimentConfig config = draw_config(seed);
    const std::vector<JobSpec> jobs = workload_of(config);
    const ComparisonResult result =
        compare_schedulers(config, scheduler_names());

    std::vector<std::pair<std::string, const SimResults*>> achieved;
    for (const std::string& name : scheduler_names())
      achieved.emplace_back(name, &result.results.at(name));
    const FatTree fabric(
        FatTree::Config{config.fat_tree_k, config.link_capacity});
    const GapReport checked = make_gap_report(
        "corpus", jobs, fabric.num_hosts(), config.link_capacity, achieved);
    ASSERT_TRUE(checked.sound()) << "unsound bound at corpus seed " << seed;

    if (config.faults.enabled) ++faulty_trials;
    for (const SchedulerGap& s : checked.schedulers) {
      EXPECT_GE(s.overall.gap(), 1.0 - 1e-9)
          << s.scheduler << " at corpus seed " << seed;
      if (s.overall.jobs < jobs.size()) ++masked_cells;
    }
  }
  // The corpus must actually exercise the fault path and the failed-job
  // masking, or the soundness claim above is weaker than advertised.
  EXPECT_GE(faulty_trials, 30);
  EXPECT_GE(masked_cells, 1);
}

// -------------------------------------------------------------- gap report

TEST(GapReport, MasksFailedJobsPerScheduler) {
  // Two schedulers over a 3-job workload; scheduler "b" failed job 1. Its
  // cells must cover only jobs 0 and 2, and the bound must restrict too.
  const std::vector<JobSpec> jobs = contended_batch();
  SimResults a, b;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SimResults::JobResult r;
    r.id = JobId{i};
    r.arrival = jobs[i].arrival_time;
    r.finish = r.arrival + 10.0;  // comfortably above any bound
    r.total_bytes = jobs[i].total_bytes();
    a.jobs.push_back(r);
    if (i == 1) r.failed = true;
    b.jobs.push_back(r);
  }

  const GapReport report = make_gap_report(
      "masking", jobs, /*num_hosts=*/2, /*capacity=*/100.0,
      {{"a", &a}, {"b", &b}});
  ASSERT_EQ(report.schedulers.size(), 2u);
  EXPECT_EQ(report.schedulers[0].overall.jobs, 3u);
  EXPECT_EQ(report.schedulers[1].overall.jobs, 2u);
  // a sees the full batch (SJF bound 10/3); b only jobs 0 and 2 (2.5).
  EXPECT_DOUBLE_EQ(report.schedulers[0].overall.bound, 10.0 / 3.0);
  EXPECT_DOUBLE_EQ(report.schedulers[1].overall.bound, 2.5);
  EXPECT_TRUE(report.sound());
}

TEST(GapReport, JsonIsDeterministicAndCarriesTheScenario) {
  const std::vector<JobSpec> jobs = contended_batch();
  SimResults res;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SimResults::JobResult r;
    r.id = JobId{i};
    r.finish = 8.0;
    r.total_bytes = jobs[i].total_bytes();
    res.jobs.push_back(r);
  }
  const GapReport report = make_gap_report("unit", jobs, 2, 100.0,
                                           {{"solo", &res}});
  const std::string json = report.to_json();
  EXPECT_EQ(json, report.to_json());
  EXPECT_NE(json.find("\"scenario\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduler\": \"solo\""), std::string::npos);
  EXPECT_NE(json.find("\"narrow\""), std::string::npos);
  EXPECT_NE(json.find("\"wide\""), std::string::npos);
  EXPECT_FALSE(report.to_table().empty());
}

// The gap pipeline rides on pooled parallel runs: the report over a
// sharded multi-seed comparison must be byte-identical at any worker
// count (the repo-wide determinism contract extended to src/bound/).
TEST(BoundDeterminism, GapReportByteIdenticalAcrossWorkerCounts) {
  ExperimentConfig config = trace_scenario(StructureKind::kFbTao, 12, 5);
  config.fat_tree_k = 4;
  const std::vector<std::string> names = {"gurita", "stream", "adaptive"};
  constexpr int kSeeds = 3;

  // The pooled populations concatenate in replicate order; rebuild the
  // matching concatenated workload (legacy schedule: seed, seed+1, ...).
  std::vector<JobSpec> jobs;
  const FatTree fabric(
      FatTree::Config{config.fat_tree_k, config.link_capacity});
  for (int s = 0; s < kSeeds; ++s) {
    TraceConfig trace = config.trace;
    trace.seed += static_cast<std::uint64_t>(s);
    trace.num_hosts = fabric.num_hosts();
    const std::vector<JobSpec> one = generate_trace(trace);
    jobs.insert(jobs.end(), one.begin(), one.end());
  }

  const auto fingerprint = [&](int workers) {
    const ComparisonResult pooled =
        compare_schedulers_seeds(config, names, kSeeds, workers);
    std::vector<std::pair<std::string, const SimResults*>> achieved;
    for (const std::string& name : names)
      achieved.emplace_back(name, &pooled.results.at(name));
    return make_gap_report("det", jobs, fabric.num_hosts(),
                           config.link_capacity, achieved)
        .to_json();
  };

  const std::string serial = fingerprint(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, fingerprint(2));
  EXPECT_EQ(serial, fingerprint(8));
}

}  // namespace
}  // namespace gurita
