// Behavioural tests for GuritaPlus, the clairvoyant variant (Fig. 8
// comparator): exact critical paths, instantaneous Ψ, free promotion.
#include <gtest/gtest.h>

#include "core/gurita.h"
#include "core/gurita_plus.h"
#include "flowsim/simulator.h"
#include "topology/fattree.h"

namespace gurita {
namespace {

class GuritaPlusFixture : public ::testing::Test {
 protected:
  GuritaPlusFixture() : fabric_(FatTree::Config{4, 100.0}) {}
  FatTree fabric_;

  static GuritaPlusScheduler::Config small_config() {
    GuritaPlusScheduler::Config config;
    config.first_threshold = 75.0;
    config.multiplier = 4.0;
    config.line_rate = 100.0;
    return config;
  }
};

JobSpec one_flow_job(Bytes size, int src, int dst, Time arrival = 0) {
  JobSpec job;
  job.arrival_time = arrival;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{src, dst, size});
  job.coflows.push_back(c);
  job.deps = {{}};
  return job;
}

TEST_F(GuritaPlusFixture, CompletesAllJobs) {
  GuritaPlusScheduler plus(small_config());
  Simulator sim(fabric_, plus);
  for (int i = 0; i < 6; ++i)
    sim.submit(one_flow_job(80.0 + 40.0 * i, i, 15 - i, 0.1 * i));
  const SimResults r = sim.run();
  EXPECT_EQ(r.jobs.size(), 6u);
}

TEST_F(GuritaPlusFixture, NoTicksNeeded) {
  // Clairvoyant: information is instantaneous, no δ coordination.
  GuritaPlusScheduler plus(small_config());
  EXPECT_DOUBLE_EQ(plus.tick_interval(), 0.0);
}

TEST_F(GuritaPlusFixture, MousePreemptsElephantInstantly) {
  GuritaPlusScheduler::Config config = small_config();
  config.starvation_mitigation = false;
  GuritaPlusScheduler plus(config);
  Simulator sim(fabric_, plus);
  JobSpec elephant;
  CoflowSpec c;
  for (int i = 0; i < 4; ++i) c.flows.push_back(FlowSpec{i, i + 4, 500.0});
  elephant.coflows.push_back(c);
  elephant.deps = {{}};
  sim.submit(elephant);
  sim.submit(one_flow_job(50.0, 0, 4, 2.0));
  const SimResults r = sim.run();
  // No δ staleness: the mouse is never blocked at all.
  EXPECT_NEAR(r.jobs[1].jct(), 0.5, 0.05);
}

TEST_F(GuritaPlusFixture, TracksGuritaCloselyOnMixedWorkload) {
  // Fig. 8's claim at toy scale: Gurita within a small factor of the
  // clairvoyant version on the same workload.
  auto submit_jobs = [&](Simulator& sim) {
    for (int i = 0; i < 10; ++i) {
      JobSpec job;
      CoflowSpec c1, c2;
      c1.flows.push_back(FlowSpec{i, (i + 5) % 16, 100.0 + 30.0 * i});
      c2.flows.push_back(FlowSpec{(i + 5) % 16, (i + 9) % 16, 60.0});
      job.coflows = {c1, c2};
      job.deps = {{}, {0}};
      job.arrival_time = 0.3 * i;
      sim.submit(job);
    }
  };

  GuritaPlusScheduler plus(small_config());
  Simulator sim_plus(fabric_, plus);
  submit_jobs(sim_plus);
  const SimResults r_plus = sim_plus.run();

  GuritaScheduler::Config gc;
  gc.first_threshold = 75.0;
  gc.multiplier = 4.0;
  gc.delta = 0.1;
  GuritaScheduler gurita(gc);
  Simulator sim_g(fabric_, gurita);
  submit_jobs(sim_g);
  const SimResults r_g = sim_g.run();

  EXPECT_LT(r_g.average_jct(), r_plus.average_jct() * 1.5);
  EXPECT_GT(r_g.average_jct(), r_plus.average_jct() * 0.5);
}

TEST_F(GuritaPlusFixture, CriticalPathCoflowPrioritized) {
  // Job 0's leaf is on its critical path; job 1's contending coflow is the
  // *lighter* branch of a fork, i.e. off job 1's critical path. With the
  // rule-4 discount the critical leaf wins the shared 0->1 bottleneck.
  GuritaPlusScheduler::Config with_cp = small_config();
  with_cp.use_critical_path = true;
  with_cp.starvation_mitigation = false;
  with_cp.first_threshold = 10.0;
  with_cp.multiplier = 4.0;  // thresholds 10 / 40 / 160
  GuritaPlusScheduler plus(with_cp);
  Simulator sim(fabric_, plus);

  // Job 0: chain of 2; leaf (300 B, critical) on shared link 0->1.
  JobSpec chained;
  CoflowSpec leaf, root;
  leaf.flows.push_back(FlowSpec{0, 1, 300.0});
  root.flows.push_back(FlowSpec{1, 2, 300.0});
  chained.coflows = {leaf, root};
  chained.deps = {{}, {0}};
  sim.submit(chained);

  // Job 1: fork with a heavy branch (500 B, elsewhere, critical) and a
  // light branch (250 B on 0->1, off-critical), joined by a root.
  JobSpec forked;
  CoflowSpec heavy, light, join;
  heavy.flows.push_back(FlowSpec{8, 9, 500.0});
  light.flows.push_back(FlowSpec{0, 1, 250.0});
  join.flows.push_back(FlowSpec{9, 10, 100.0});
  forked.coflows = {heavy, light, join};
  forked.deps = {{}, {}, {0, 1}};
  sim.submit(forked);

  const SimResults r = sim.run();
  // Ψ(leaf) = 0.75·300·0.5 = 112.5 -> queue 2; Ψ(light) = 0.75·250 =
  // 187.5 -> queue 3: the critical leaf preempts the off-critical branch.
  // coflows: 0 = leaf, 3 = light (job 1's second coflow).
  EXPECT_NEAR(r.coflows[0].finish, 3.0, 0.1);
  EXPECT_GT(r.coflows[3].finish, r.coflows[0].finish);
}

TEST_F(GuritaPlusFixture, AblationCriticalPathOnOff) {
  // The discount must only ever help or be neutral for chained jobs in
  // aggregate on a chain-heavy workload.
  auto run_with = [&](bool use_cp) {
    GuritaPlusScheduler::Config config = small_config();
    config.use_critical_path = use_cp;
    GuritaPlusScheduler plus(config);
    Simulator sim(fabric_, plus);
    for (int i = 0; i < 8; ++i) {
      JobSpec job;
      CoflowSpec c1, c2, c3;
      c1.flows.push_back(FlowSpec{i, i + 8, 200.0});
      c2.flows.push_back(FlowSpec{i, i + 8, 40.0});
      c3.flows.push_back(FlowSpec{i + 8, (i + 1) % 8, 150.0});
      job.coflows = {c1, c2, c3};
      job.deps = {{}, {}, {0, 1}};  // c1 heavy branch = critical path
      job.arrival_time = 0.2 * i;
      sim.submit(job);
    }
    return sim.run().average_jct();
  };
  const double with_cp = run_with(true);
  const double without_cp = run_with(false);
  // Not a strict inequality in every topology, but on this chain-heavy mix
  // the discount should not hurt by more than noise.
  EXPECT_LT(with_cp, without_cp * 1.1);
}

}  // namespace
}  // namespace gurita
