// Tests for Gurita's introspection counters and the umbrella header.
#include <gtest/gtest.h>

#include "gurita.h"  // umbrella: everything below must resolve through it

namespace gurita {
namespace {

TEST(GuritaStats, CountersStartAtZero) {
  GuritaScheduler gurita;
  EXPECT_EQ(gurita.stats().hr_updates, 0u);
  EXPECT_EQ(gurita.stats().demotions, 0u);
  EXPECT_EQ(gurita.stats().self_demotions, 0u);
  EXPECT_EQ(gurita.stats().critical_path_hits, 0u);
}

TEST(GuritaStats, HrUpdatesAccumulateWithTicks) {
  const FatTree fabric(FatTree::Config{4, 100.0});
  GuritaScheduler::Config config;
  config.delta = 0.5;
  config.first_threshold = 75.0;
  config.multiplier = 4.0;
  GuritaScheduler gurita(config);
  Simulator sim(fabric, gurita);
  JobSpec job;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{0, 1, 500.0});  // runs 5 s -> ~9 ticks
  job.coflows.push_back(c);
  job.deps = {{}};
  sim.submit(job);
  (void)sim.run();
  EXPECT_GE(gurita.stats().hr_updates, 8u);
}

TEST(GuritaStats, ElephantTriggersDemotion) {
  const FatTree fabric(FatTree::Config{4, 100.0});
  GuritaScheduler::Config config;
  config.delta = 0.1;
  config.first_threshold = 50.0;
  config.multiplier = 4.0;
  GuritaScheduler gurita(config);
  Simulator sim(fabric, gurita);
  JobSpec job;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{0, 1, 1000.0});
  c.flows.push_back(FlowSpec{2, 3, 1000.0});
  job.coflows.push_back(c);
  job.deps = {{}};
  sim.submit(job);
  (void)sim.run();
  // Demoted either by an HR round or the receiver-local self check.
  EXPECT_GE(gurita.stats().demotions + gurita.stats().self_demotions, 1u);
}

TEST(GuritaStats, CriticalPathHitsWithMultipleJobs) {
  const FatTree fabric(FatTree::Config{4, 100.0});
  GuritaScheduler::Config config;
  config.delta = 0.1;
  config.first_threshold = 50.0;
  config.multiplier = 4.0;
  GuritaScheduler gurita(config);
  Simulator sim(fabric, gurita);
  // Several jobs so AVA accumulates coflow ℓ_max observations; the larger
  // later coflows then get flagged as critical-path candidates.
  for (int i = 0; i < 6; ++i) {
    JobSpec job;
    CoflowSpec c;
    c.flows.push_back(
        FlowSpec{i, 8 + i, i < 3 ? 100.0 : 1500.0});  // small then large
    job.coflows.push_back(c);
    job.deps = {{}};
    job.arrival_time = i * 1.5;
    sim.submit(job);
  }
  (void)sim.run();
  EXPECT_GE(gurita.stats().critical_path_hits, 1u);
}

TEST(UmbrellaHeader, ExposesTheWholeApi) {
  // Compile-time smoke: one symbol from every major module.
  (void)sizeof(FatTree);
  (void)sizeof(BigSwitch);
  (void)sizeof(JobSpec);
  (void)sizeof(Simulator);
  (void)sizeof(GuritaScheduler);
  (void)sizeof(GuritaPlusScheduler);
  (void)sizeof(AaloScheduler);
  (void)sizeof(VarysScheduler);
  (void)sizeof(McsScheduler);
  (void)sizeof(TraceConfig);
  (void)sizeof(JctCollector);
  (void)sizeof(CctCollector);
  EXPECT_EQ(category_of(10 * kMB), 0);
  EXPECT_EQ(scheduler_names().size(), 9u);
}

}  // namespace
}  // namespace gurita
