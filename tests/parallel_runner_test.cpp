// Determinism regression tests for the parallel experiment runner: the
// same experiment matrix executed at 1, 2 and 8 workers must produce
// byte-identical serialized metric reports (hexfloat — every bit of every
// double — not just approximately equal summaries). Plus unit coverage of
// the seed-derivation key and worker-count resolution.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "exp/runner.h"

namespace gurita {
namespace {

/// Serializes everything a pooled comparison carries, with hexfloat
/// doubles so byte-equal strings imply bit-identical results.
std::string serialize_report(const ComparisonResult& result) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto& [name, r] : result.results) {
    os << name << " makespan=" << r.makespan << " events=" << r.events
       << " recomputes=" << r.rate_recomputations
       << " touches=" << r.flow_touches << "\n";
    for (const SimResults::JobResult& j : r.jobs)
      os << "  job " << j.id << " arrival=" << j.arrival
         << " finish=" << j.finish << " bytes=" << j.total_bytes << "\n";
    for (const SimResults::CoflowResult& c : r.coflows)
      os << "  coflow " << c.id << " job=" << c.job
         << " release=" << c.release << " finish=" << c.finish << "\n";
    const JctCollector& collector = result.collectors.at(name);
    os << "  jct avg=" << collector.average_jct()
       << " p95=" << collector.p95_jct() << " n=" << collector.total_jobs();
    for (int cat = 0; cat < 7; ++cat)
      os << " cat" << cat << "=" << collector.average_jct(cat) << "/"
         << collector.jobs(cat);
    os << "\n";
  }
  return os.str();
}

std::string serialize_reports(const std::vector<ComparisonResult>& pooled) {
  std::string out;
  for (const ComparisonResult& r : pooled) out += serialize_report(r);
  return out;
}

SweepSpec small_sweep() {
  SweepSpec sweep;
  sweep.experiment = "parallel_runner_test";
  sweep.configs = {trace_scenario(StructureKind::kTpcDs, 6, 21),
                   trace_scenario(StructureKind::kFbTao, 5, 22)};
  sweep.schedulers = {"gurita", "aalo", "pfs"};
  sweep.replicates = 4;
  return sweep;
}

// The tentpole's headline guarantee: the full sweep — 2 configs x 4
// replicates x 3 schedulers — serializes to the same bytes at every worker
// count, including oversubscribed (more workers than this machine has
// cores, and more than there are runs per config).
TEST(ParallelRunnerTest, SweepReportsAreByteIdenticalAcrossWorkerCounts) {
  const std::string serial = serialize_reports(run_sweep(small_sweep(), 1));
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serialize_reports(run_sweep(small_sweep(), 2)), serial);
  EXPECT_EQ(serialize_reports(run_sweep(small_sweep(), 8)), serial);
}

TEST(ParallelRunnerTest, MatrixReportsAreByteIdenticalAcrossWorkerCounts) {
  std::vector<ExperimentRun> runs;
  for (int i = 0; i < 5; ++i) {
    ExperimentRun run;
    run.label = "cell " + std::to_string(i);
    run.config = trace_scenario(StructureKind::kMixed, 4 + i, 100 + i);
    run.schedulers = {"gurita", "baraat"};
    runs.push_back(run);
  }
  const std::string serial = serialize_reports(run_matrix(runs, 1));
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serialize_reports(run_matrix(runs, 2)), serial);
  EXPECT_EQ(serialize_reports(run_matrix(runs, 8)), serial);
}

// compare_schedulers_seeds keeps its legacy (seed, seed+1, ...) schedule;
// its parallel path must reproduce the serial pooling bit-for-bit too.
TEST(ParallelRunnerTest, MultiSeedComparisonMatchesSerialAtAnyJobs) {
  const ExperimentConfig config = trace_scenario(StructureKind::kTpcDs, 5, 7);
  const std::vector<std::string> names = {"gurita", "pfs"};
  const std::string serial =
      serialize_report(compare_schedulers_seeds(config, names, 3, 1));
  EXPECT_EQ(serialize_report(compare_schedulers_seeds(config, names, 3, 2)),
            serial);
  EXPECT_EQ(serialize_report(compare_schedulers_seeds(config, names, 3, 8)),
            serial);
}

TEST(DeriveRunSeedTest, DependsOnEveryKeyComponent) {
  const std::uint64_t base = derive_run_seed(7, "fig5", 0, 0);
  EXPECT_EQ(derive_run_seed(7, "fig5", 0, 0), base);  // pure function
  EXPECT_NE(derive_run_seed(8, "fig5", 0, 0), base);
  EXPECT_NE(derive_run_seed(7, "fig6", 0, 0), base);
  EXPECT_NE(derive_run_seed(7, "fig5", 1, 0), base);
  EXPECT_NE(derive_run_seed(7, "fig5", 0, 1), base);
}

TEST(DeriveRunSeedTest, ProducesDistinctSeedsAcrossAMatrix) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t c = 0; c < 16; ++c)
    for (std::uint64_t r = 0; r < 16; ++r)
      seen.insert(derive_run_seed(42, "grid", c, r));
  EXPECT_EQ(seen.size(), 16u * 16u);
}

// The derivation is part of the recorded-experiment contract ("fixed
// forever"): golden values pin the exact bit pattern so an accidental
// reformulation cannot slip through as a refactor.
TEST(DeriveRunSeedTest, GoldenValuesPinTheDerivation) {
  EXPECT_EQ(derive_run_seed(0, "", 0, 0), 0xd5784dc90ff56603ULL);
  EXPECT_EQ(derive_run_seed(7, "bench_parallel", 0, 3),
            0x824c1f06c78f5300ULL);
}

TEST(ResolveJobsTest, FlagBeatsEnvBeatsSerialDefault) {
  unsetenv("GURITA_JOBS");
  {
    const char* argv[] = {"prog"};
    EXPECT_EQ(resolve_jobs(Args(1, const_cast<char**>(argv))), 1);
  }
  {
    const char* argv[] = {"prog", "--jobs", "5"};
    EXPECT_EQ(resolve_jobs(Args(3, const_cast<char**>(argv))), 5);
  }
  setenv("GURITA_JOBS", "3", 1);
  {
    const char* argv[] = {"prog"};
    EXPECT_EQ(resolve_jobs(Args(1, const_cast<char**>(argv))), 3);
  }
  {
    const char* argv[] = {"prog", "--jobs", "5"};
    EXPECT_EQ(resolve_jobs(Args(3, const_cast<char**>(argv))), 5);
  }
  unsetenv("GURITA_JOBS");
}

TEST(ResolveJobsTest, ZeroMeansAllHardwareThreads) {
  const char* argv[] = {"prog", "--jobs", "0"};
  EXPECT_GE(resolve_jobs(Args(3, const_cast<char**>(argv))), 1);
}

// The per-worker arena (exp/arena.h) recycles simulator buffer capacity
// and caches fabrics across cells. Reuse must be invisible: running the
// same sweep repeatedly on one thread — each pass adopting the previous
// pass's dirty buffers — must serialize identically to the first pass, and
// identically at every worker count (workers inherit whatever their
// arena accumulated from earlier cells in the same process).
TEST(ParallelRunnerTest, ArenaReuseKeepsRepeatedSweepsByteIdentical) {
  const std::string first = serialize_reports(run_sweep(small_sweep(), 1));
  ASSERT_FALSE(first.empty());
  // Same thread, now-warm arena: adopted capacity, cached fabric.
  EXPECT_EQ(serialize_reports(run_sweep(small_sweep(), 1)), first);
  EXPECT_EQ(serialize_reports(run_sweep(small_sweep(), 1)), first);
  // Warm and cold workers mixed (fresh pool threads each call).
  EXPECT_EQ(serialize_reports(run_sweep(small_sweep(), 2)), first);
  EXPECT_EQ(serialize_reports(run_sweep(small_sweep(), 8)), first);
}

// run_sharded is the primitive under everything: exceptions surface (by
// smallest index) instead of being lost on a worker.
TEST(RunShardedTest, PropagatesTheSmallestFailingIndex) {
  for (const int jobs : {1, 4}) {
    SCOPED_TRACE("jobs " + std::to_string(jobs));
    try {
      run_sharded(10, jobs, [](std::size_t i) {
        if (i >= 4) throw std::runtime_error("shard " + std::to_string(i));
      });
      FAIL() << "exception was swallowed";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "shard 4");
    }
  }
}

}  // namespace
}  // namespace gurita
