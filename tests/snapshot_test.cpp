// Tests for the checkpoint/restore subsystem (src/snapshot/): the byte
// codec, the snapshot header, and the headline invariant — run to T,
// checkpoint, restore into a fresh simulator, finish, and the results
// (JCTs, counters, link stats, traces) are byte-identical to an
// uninterrupted run. Covered per scheduler, with and without a fault plan,
// at targeted pause points (mid-fault-park, mid-retry-backoff, mid-stage
// release), under randomized fuzz, against the reference oracle, and
// through the experiment runner's halt/resume path at 1/2/8 workers
// (the SnapshotDeterminism suite, part of the TSan gate).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exp/experiment.h"
#include "exp/registry.h"
#include "exp/runner.h"
#include "fault/plan.h"
#include "flowsim/simulator.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "oracle_sim.h"
#include "snapshot/snapshot.h"
#include "topology/fattree.h"
#include "workload/trace_gen.h"

namespace gurita {
namespace {

// ------------------------------------------------------------------ codec

TEST(SnapshotCodec, PrimitivesRoundTripBitExactly) {
  snapshot::Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.f64(std::numeric_limits<double>::infinity());
  w.boolean(true);
  w.boolean(false);
  w.str("hello snapshot");

  snapshot::Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  const double neg_zero = r.f64();
  EXPECT_EQ(std::bit_cast<std::uint64_t>(neg_zero),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_TRUE(std::isnan(r.f64()));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello snapshot");
  EXPECT_TRUE(r.done());
}

TEST(SnapshotCodec, TruncatedBufferThrows) {
  snapshot::Writer w;
  w.u64(1);
  snapshot::Reader r(std::string_view(w.buffer()).substr(0, 4));
  EXPECT_THROW(r.u64(), snapshot::SnapshotError);
}

TEST(SnapshotCodec, SectionVerifiesExactConsumption) {
  snapshot::Writer w;
  const std::size_t token = w.begin_section();
  w.u32(7);
  w.u32(9);
  w.end_section(token);

  {
    snapshot::Reader r(w.buffer());
    const std::size_t end = r.begin_section();
    EXPECT_EQ(r.u32(), 7u);
    EXPECT_EQ(r.u32(), 9u);
    r.end_section(end);  // consumed exactly — no throw
    EXPECT_TRUE(r.done());
  }
  {
    snapshot::Reader r(w.buffer());
    const std::size_t end = r.begin_section();
    EXPECT_EQ(r.u32(), 7u);  // under-consume
    EXPECT_THROW(r.end_section(end), snapshot::SnapshotError);
  }
  {
    // A reader may skip a section it does not understand.
    snapshot::Reader r(w.buffer());
    r.skip_to(r.begin_section());
    EXPECT_TRUE(r.done());
  }
}

TEST(SnapshotHeader, RoundTripsAndRejectsCorruption) {
  snapshot::Writer w;
  snapshot::write_header(w, snapshot::PayloadKind::kSimulatorState);
  {
    snapshot::Reader r(w.buffer());
    EXPECT_EQ(snapshot::read_header(r),
              snapshot::PayloadKind::kSimulatorState);
  }
  {
    std::string bad = w.buffer();
    bad[0] = 'X';  // wrong magic
    snapshot::Reader r(bad);
    EXPECT_THROW(snapshot::read_header(r), snapshot::SnapshotError);
  }
  {
    snapshot::Writer v;
    v.u32(snapshot::kMagic);
    v.u32(snapshot::kFormatVersion + 1);  // future version
    v.u8(1);
    snapshot::Reader r(v.buffer());
    EXPECT_THROW(snapshot::read_header(r), snapshot::SnapshotError);
  }
}

TEST(SnapshotHeader, ServiceStatePayloadKindRoundTrips) {
  snapshot::Writer w;
  snapshot::write_header(w, snapshot::PayloadKind::kServiceState);
  snapshot::Reader r(w.buffer());
  EXPECT_EQ(snapshot::read_header(r), snapshot::PayloadKind::kServiceState);
}

// The kServiceState payload embeds job specs verbatim — an open-horizon
// resume cannot rebuild the admitted population from the original inputs.
TEST(SnapshotCodec, JobSpecRoundTripsBitExactly) {
  JobSpec spec;
  spec.arrival_time = 1.25 + 1e-16;
  spec.deadline = 9.5;
  spec.coflows = {CoflowSpec{{FlowSpec{0, 5, 1048576.0},
                              FlowSpec{3, 4, 524288.5}}},
                  CoflowSpec{{FlowSpec{8, 9, 7.0}}}};
  spec.deps = {{}, {0}};

  snapshot::Writer w;
  snapshot::write_job_spec(w, spec);
  snapshot::Reader r(w.buffer());
  const JobSpec got = snapshot::read_job_spec(r);
  EXPECT_TRUE(r.done());

  EXPECT_EQ(std::bit_cast<std::uint64_t>(got.arrival_time),
            std::bit_cast<std::uint64_t>(spec.arrival_time));
  EXPECT_EQ(got.deadline, spec.deadline);
  EXPECT_EQ(got.deps, spec.deps);
  ASSERT_EQ(got.coflows.size(), spec.coflows.size());
  for (std::size_t c = 0; c < spec.coflows.size(); ++c) {
    ASSERT_EQ(got.coflows[c].flows.size(), spec.coflows[c].flows.size());
    for (std::size_t f = 0; f < spec.coflows[c].flows.size(); ++f) {
      EXPECT_EQ(got.coflows[c].flows[f].src_host,
                spec.coflows[c].flows[f].src_host);
      EXPECT_EQ(got.coflows[c].flows[f].dst_host,
                spec.coflows[c].flows[f].dst_host);
      EXPECT_EQ(got.coflows[c].flows[f].size, spec.coflows[c].flows[f].size);
    }
  }
}

TEST(SnapshotFile, AtomicWriteAndReadBack) {
  const std::string dir =
      ::testing::TempDir() + "gurita_snapshot_file_test";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/probe.ckpt";
  snapshot::write_snapshot_file(path, "payload bytes");
  EXPECT_EQ(snapshot::read_snapshot_file(path), "payload bytes");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_THROW((void)snapshot::read_snapshot_file(dir + "/absent.ckpt"),
               snapshot::SnapshotError);
}

// -------------------------------------------------- round-trip harness ---

/// Serializes results through the cache codec: two runs are byte-identical
/// iff these strings are equal (jobs, coflows, makespan, every counter,
/// link stats and the trace all travel through it).
std::string results_bytes(const SimResults& results) {
  snapshot::Writer w;
  snapshot::save_results(w, results);
  return w.take();
}

struct Scenario {
  const Fabric& fabric;
  std::string scheduler;
  const std::vector<JobSpec>& jobs;
  Simulator::Config sim_config;  ///< trace field is overwritten per run
  bool with_trace = true;
};

SimResults run_uninterrupted(const Scenario& s) {
  obs::TraceRecorder recorder(obs::TraceRecorder::kAllKinds);
  Simulator::Config config = s.sim_config;
  if (s.with_trace) config.trace = &recorder;
  const std::unique_ptr<Scheduler> sched = make_scheduler(s.scheduler);
  Simulator sim(s.fabric, *sched, config);
  for (const JobSpec& job : s.jobs) sim.submit(job);
  SimResults results = sim.run();
  if (s.with_trace) results.trace = recorder.take();
  return results;
}

/// Runs to `split`, checkpoints, destroys the simulator, rebuilds a fresh
/// one from the same inputs (as a restarted process would), restores and
/// finishes. The snapshot string is the only state that crosses over.
SimResults run_split(const Scenario& s, Time split) {
  std::string bytes;
  {
    obs::TraceRecorder recorder(obs::TraceRecorder::kAllKinds);
    Simulator::Config config = s.sim_config;
    if (s.with_trace) config.trace = &recorder;
    const std::unique_ptr<Scheduler> sched = make_scheduler(s.scheduler);
    Simulator sim(s.fabric, *sched, config);
    for (const JobSpec& job : s.jobs) sim.submit(job);
    (void)sim.run_until(split);
    snapshot::Writer w;
    sim.checkpoint(w);
    bytes = w.take();
  }
  obs::TraceRecorder recorder(obs::TraceRecorder::kAllKinds);
  Simulator::Config config = s.sim_config;
  if (s.with_trace) config.trace = &recorder;
  const std::unique_ptr<Scheduler> sched = make_scheduler(s.scheduler);
  Simulator sim(s.fabric, *sched, config);
  for (const JobSpec& job : s.jobs) sim.submit(job);
  snapshot::Reader r(bytes);
  sim.restore(r);
  SimResults results = sim.finish();
  if (s.with_trace) results.trace = recorder.take();
  return results;
}

/// The headline invariant at a set of pause points.
void expect_split_invariant(const Scenario& s, const std::vector<Time>& splits,
                            const SimResults& reference) {
  const std::string want = results_bytes(reference);
  for (const Time split : splits) {
    SCOPED_TRACE("scheduler " + s.scheduler + ", split at " +
                 std::to_string(split));
    const SimResults resumed = run_split(s, split);
    EXPECT_EQ(results_bytes(resumed), want);
    EXPECT_EQ(resumed.makespan, reference.makespan);
    EXPECT_EQ(resumed.events, reference.events);
  }
}

std::vector<JobSpec> small_trace(const Fabric& fabric, std::uint64_t seed,
                                 int num_jobs = 8) {
  TraceConfig trace;
  trace.num_jobs = num_jobs;
  trace.num_hosts = fabric.num_hosts();
  trace.structure = StructureKind::kMixed;
  trace.seed = seed;
  return generate_trace(trace);
}

// --------------------------------------------- per-scheduler round trip ---

TEST(SnapshotRoundTrip, EverySchedulerByteIdentical) {
  const FatTree fabric(FatTree::Config{4});
  const std::vector<JobSpec> jobs = small_trace(fabric, 11);
  for (const std::string& name : scheduler_names()) {
    Scenario s{fabric, name, jobs, {}, /*with_trace=*/true};
    s.sim_config.collect_link_stats = true;
    const SimResults reference = run_uninterrupted(s);
    ASSERT_GT(reference.makespan, 0.0);
    expect_split_invariant(s,
                           {0.0, 0.25 * reference.makespan,
                            0.5 * reference.makespan,
                            0.75 * reference.makespan,
                            2.0 * reference.makespan},
                           reference);
  }
}

TEST(SnapshotRoundTrip, EverySchedulerWithFaultPlanByteIdentical) {
  const FatTree fabric(FatTree::Config{4});
  const std::vector<JobSpec> jobs = small_trace(fabric, 17);
  FaultPlanConfig plan;
  plan.host_crash_rate = 6.0;
  plan.link_flap_rate = 4.0;
  plan.straggler_rate = 4.0;
  plan.state_loss_rate = 2.0;
  plan.horizon = 0.5;
  plan.mean_downtime = 0.05;
  for (const std::string& name : scheduler_names()) {
    Scenario s{fabric, name, jobs, {}, /*with_trace=*/true};
    s.sim_config.faults = generate_fault_plan(
        plan, 77, fabric.num_hosts(), fabric.topology().link_count());
    const SimResults reference = run_uninterrupted(s);
    expect_split_invariant(s,
                           {0.1 * reference.makespan, 0.5 * reference.makespan,
                            0.9 * reference.makespan},
                           reference);
  }
}

// ------------------------------------------------- targeted pause points ---

// k=4 fat-tree at 100 B/s: a 1000 B flow takes 10 s uncontended, so the
// fault windows below are easy to aim at.
JobSpec single_flow_job(Bytes size, int src, int dst, Time arrival = 0) {
  JobSpec job;
  job.arrival_time = arrival;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{src, dst, size});
  job.coflows.push_back(c);
  job.deps = {{}};
  return job;
}

Simulator::Config park_retry_config() {
  Simulator::Config config;
  FaultEvent down;
  down.kind = FaultKind::kHostDown;
  down.time = 2.0;
  down.host = 1;
  FaultEvent up;
  up.kind = FaultKind::kHostUp;
  up.time = 6.0;
  up.host = 1;
  config.faults.events = {down, up};
  config.faults.retry.backoff = RetryPolicy::Backoff::kFixed;
  config.faults.retry.base_delay = 0.5;
  config.faults.retry.jitter = 0.0;
  config.faults.seed = 3;
  return config;
}

// Checkpoint while the aborted flow sits in the parked set (host still
// down), and while its retry entry sits in the backoff heap (host back up,
// restart pending) — the two fault-runtime structures the snapshot must
// carry. Every scheduler goes through both.
TEST(SnapshotRoundTrip, MidFaultParkAndMidRetryBackoff) {
  const FatTree fabric(FatTree::Config{4, 100.0});
  const std::vector<JobSpec> jobs = {single_flow_job(1000, 0, 1)};
  for (const std::string& name : scheduler_names()) {
    Scenario s{fabric, name, jobs, park_retry_config(), /*with_trace=*/true};
    const SimResults reference = run_uninterrupted(s);
    // The scenario really does abort and retry.
    EXPECT_GE(reference.flow_aborts, 1u) << name;
    EXPECT_GE(reference.flow_retries, 1u) << name;
    // Pause right after the crash (flow parked), right after the recovery
    // (retry scheduled, not yet fired), and after the restart.
    expect_split_invariant(s, {2.0, 6.0, 8.0}, reference);
  }
}

// Checkpoint between the stages of a dependent job: stage 0's coflow has
// finished, stage 1's was released from the dependency tracker mid-run.
TEST(SnapshotRoundTrip, MidStageRelease) {
  const FatTree fabric(FatTree::Config{4, 100.0});
  JobSpec job;
  job.arrival_time = 0;
  CoflowSpec first;
  first.flows.push_back(FlowSpec{0, 1, 1000});
  CoflowSpec second;
  second.flows.push_back(FlowSpec{2, 3, 1000});
  job.coflows = {first, second};
  job.deps = {{}, {0}};  // stage 1 waits for stage 0 (~10 s each)
  const std::vector<JobSpec> jobs = {job};
  for (const std::string& name : scheduler_names()) {
    Scenario s{fabric, name, jobs, {}, /*with_trace=*/true};
    const SimResults reference = run_uninterrupted(s);
    ASSERT_EQ(reference.coflows.size(), 2u);
    // Mid stage 0, at the release boundary, and mid stage 1.
    expect_split_invariant(s, {5.0, 10.0, 15.0}, reference);
  }
}

// Checkpoint between two allocator-dirtying events. The snapshot codec
// never serializes the incremental allocator's scratch state (per-link
// membership lists, mirrors, dirty frontier) — restore rebuilds it from
// the active set alone, and the rebuilt bookkeeping must finish the run
// byte-identically. Flow B's arrival right after the split is the probe:
// it splits A's bottleneck, so a stale or missing membership list would
// misallocate immediately. A disjoint component rides along to catch
// over-invalidation, and both allocator kinds must agree with each other.
TEST(SnapshotDeterminism, MidConvergenceSplitRebuildsAllocatorState) {
  const FatTree fabric(FatTree::Config{4, 100.0});
  std::vector<JobSpec> jobs;
  jobs.push_back(single_flow_job(1000, 0, 1, 0.0));  // A: alone until t=4
  jobs.push_back(single_flow_job(1000, 0, 1, 4.0));  // B: splits A's links
  jobs.push_back(single_flow_job(500, 8, 9, 1.0));   // disjoint component
  std::string bytes_by_kind[2];
  int i = 0;
  for (const AllocatorKind kind :
       {AllocatorKind::kIncremental, AllocatorKind::kOracle}) {
    SCOPED_TRACE(std::string("allocator ") + to_string(kind));
    Scenario s{fabric, "gurita", jobs, {}, /*with_trace=*/true};
    s.sim_config.allocator = kind;
    s.sim_config.collect_link_stats = true;
    const SimResults reference = run_uninterrupted(s);
    // Between A's and B's arrivals (2.0), at B's arrival instant (4.0),
    // and mid-drain of the post-split rates (6.5).
    expect_split_invariant(s, {2.0, 4.0, 6.5}, reference);
    bytes_by_kind[i++] = results_bytes(reference);
  }
  EXPECT_EQ(bytes_by_kind[0], bytes_by_kind[1])
      << "incremental and oracle allocators diverged";
}

// ------------------------------------------------------- sampler cursor ---

/// One timeline run: recorder + interval sampler at `every`, optionally
/// checkpointed at `split` and finished by a freshly built simulator (the
/// sampler object is rebuilt too — only the serialized cursor crosses).
SimResults run_timeline(const Fabric& fabric, const std::vector<JobSpec>& jobs,
                        double every, const Time* split) {
  std::string bytes;
  if (split != nullptr) {
    obs::TraceRecorder recorder(obs::TraceRecorder::kAllKinds);
    obs::IntervalSampler sampler(obs::IntervalSampler::Config{every});
    Simulator::Config config;
    config.trace = &recorder;
    config.sampler = &sampler;
    const std::unique_ptr<Scheduler> sched = make_scheduler("gurita");
    Simulator sim(fabric, *sched, config);
    for (const JobSpec& job : jobs) sim.submit(job);
    (void)sim.run_until(*split);
    snapshot::Writer w;
    sim.checkpoint(w);
    bytes = w.take();
  }
  obs::TraceRecorder recorder(obs::TraceRecorder::kAllKinds);
  obs::IntervalSampler sampler(obs::IntervalSampler::Config{every});
  Simulator::Config config;
  config.trace = &recorder;
  config.sampler = &sampler;
  const std::unique_ptr<Scheduler> sched = make_scheduler("gurita");
  Simulator sim(fabric, *sched, config);
  for (const JobSpec& job : jobs) sim.submit(job);
  SimResults results;
  if (split != nullptr) {
    snapshot::Reader r(bytes);
    sim.restore(r);
    results = sim.finish();
  } else {
    results = sim.run();
  }
  results.trace = recorder.take();
  return results;
}

// The tentpole claim for the interval sampler (DESIGN.md §14): the sample
// timeline of a run split across a checkpoint/restore is bitwise identical
// to the uninterrupted run's — grid boundaries come from the serialized
// cursor by multiplication, never from re-accumulation, and the poll points
// (every processed event) are the same on both sides of the split.
TEST(SnapshotDeterminism, SamplerTimelineSurvivesSplitBitwise) {
  const FatTree fabric(FatTree::Config{4});
  const std::vector<JobSpec> jobs = small_trace(fabric, 23);
  const double every = 0.02;
  const SimResults reference =
      run_timeline(fabric, jobs, every, /*split=*/nullptr);

  std::size_t samples = 0;
  for (const obs::TraceRecord& r : reference.trace)
    if (r.kind == obs::TraceEventKind::kSample) ++samples;
  ASSERT_GT(samples, 2u) << "cadence too coarse to put a split between "
                            "samples (makespan "
                         << reference.makespan << ")";

  const std::string want = results_bytes(reference);
  // Mid-run splits plus a boundary-adjacent one: 0.04 is an exact grid
  // time, so the resumed run must not re-emit that boundary's sample.
  for (const Time split : {0.25 * reference.makespan,
                           0.5 * reference.makespan,
                           0.75 * reference.makespan, 2 * every}) {
    SCOPED_TRACE("split at " + std::to_string(split));
    const SimResults resumed = run_timeline(fabric, jobs, every, &split);
    EXPECT_EQ(results_bytes(resumed), want);
  }
}

// ------------------------------------------------------------- rejection ---

// The sampler's configuration is part of the snapshot fingerprint: a
// resumed run with a different cadence (or no sampler at all) would emit a
// different timeline, so restore refuses it up front.
TEST(SnapshotRestore, RejectsMismatchedSampler) {
  const FatTree fabric(FatTree::Config{4});
  const std::vector<JobSpec> jobs = small_trace(fabric, 23);

  obs::TraceRecorder recorder(obs::TraceRecorder::kAllKinds);
  obs::IntervalSampler sampler(obs::IntervalSampler::Config{0.05});
  Simulator::Config config;
  config.trace = &recorder;
  config.sampler = &sampler;
  const std::unique_ptr<Scheduler> sched = make_scheduler("gurita");
  Simulator sim(fabric, *sched, config);
  for (const JobSpec& job : jobs) sim.submit(job);
  (void)sim.run_until(0.1);
  snapshot::Writer w;
  sim.checkpoint(w);
  const std::string bytes = w.take();

  const auto expect_rejected = [&](Simulator::Config bad_config) {
    obs::TraceRecorder rec2(obs::TraceRecorder::kAllKinds);
    bad_config.trace = &rec2;
    const std::unique_ptr<Scheduler> sched2 = make_scheduler("gurita");
    Simulator other(fabric, *sched2, bad_config);
    for (const JobSpec& job : jobs) other.submit(job);
    snapshot::Reader r(bytes);
    EXPECT_THROW(other.restore(r), snapshot::SnapshotError);
  };

  // No sampler attached on the restoring side.
  expect_rejected(Simulator::Config{});
  // Different cadence.
  obs::IntervalSampler coarse(obs::IntervalSampler::Config{0.1});
  Simulator::Config coarse_config;
  coarse_config.sampler = &coarse;
  expect_rejected(coarse_config);
  // Different wall-sample setting.
  obs::IntervalSampler wall(obs::IntervalSampler::Config{0.05, true, true});
  Simulator::Config wall_config;
  wall_config.sampler = &wall;
  expect_rejected(wall_config);
}

TEST(SnapshotRestore, RejectsMismatchedWorkload) {
  const FatTree fabric(FatTree::Config{4});
  const std::vector<JobSpec> jobs = small_trace(fabric, 11);
  Scenario s{fabric, "gurita", jobs, {}, /*with_trace=*/false};

  const std::unique_ptr<Scheduler> sched = make_scheduler("gurita");
  Simulator sim(fabric, *sched, s.sim_config);
  for (const JobSpec& job : jobs) sim.submit(job);
  (void)sim.run_until(0.0);
  snapshot::Writer w;
  sim.checkpoint(w);
  const std::string bytes = w.take();

  // Different jobs → fingerprint mismatch, rejected before any mutation.
  const std::vector<JobSpec> other_jobs = small_trace(fabric, 12);
  const std::unique_ptr<Scheduler> sched2 = make_scheduler("gurita");
  Simulator other(fabric, *sched2, s.sim_config);
  for (const JobSpec& job : other_jobs) other.submit(job);
  snapshot::Reader r(bytes);
  EXPECT_THROW(other.restore(r), snapshot::SnapshotError);

  // Different scheduler → likewise.
  const std::unique_ptr<Scheduler> sched3 = make_scheduler("aalo");
  Simulator wrong_sched(fabric, *sched3, s.sim_config);
  for (const JobSpec& job : jobs) wrong_sched.submit(job);
  snapshot::Reader r2(bytes);
  EXPECT_THROW(wrong_sched.restore(r2), snapshot::SnapshotError);

  // Truncated snapshot → SnapshotError, not garbage state.
  const std::unique_ptr<Scheduler> sched4 = make_scheduler("gurita");
  Simulator truncated(fabric, *sched4, s.sim_config);
  for (const JobSpec& job : jobs) truncated.submit(job);
  snapshot::Reader r3(std::string_view(bytes).substr(0, bytes.size() / 2));
  EXPECT_THROW(truncated.restore(r3), snapshot::SnapshotError);
}

// ------------------------------------------------------------------ fuzz ---

/// One fuzz trial: a randomized workload/scheduler/fault draw, checkpointed
/// at a random fraction of its makespan and diffed against the
/// uninterrupted run — the snapshot analogue of the differential engine
/// fuzz (differential_engine_test.cpp).
void run_fuzz_trial(std::uint64_t seed) {
  SCOPED_TRACE("reproduce with fuzz seed " + std::to_string(seed));
  Rng rng(seed);
  FatTree::Config ft;
  ft.k = 4;
  ft.ecmp_salt = rng.next_u64();
  const FatTree fabric(ft);

  TraceConfig trace;
  trace.num_jobs = static_cast<int>(rng.uniform_int(3, 10));
  trace.num_hosts = fabric.num_hosts();
  trace.structure = static_cast<StructureKind>(rng.uniform_int(0, 2));
  trace.arrivals = rng.next_double() < 0.5 ? ArrivalPattern::kPoisson
                                           : ArrivalPattern::kBursty;
  trace.max_width = static_cast<int>(rng.uniform_int(2, 12));
  trace.seed = rng.next_u64();
  const std::vector<JobSpec> jobs = generate_trace(trace);

  const std::vector<std::string>& names = scheduler_names();
  Scenario s{fabric, names[rng.uniform_int(0, names.size() - 1)], jobs, {},
             /*with_trace=*/rng.next_double() < 0.5};
  s.sim_config.collect_link_stats = rng.next_double() < 0.5;
  if (rng.next_double() < 0.3)
    s.sim_config.tcp_ramp_time = rng.uniform(1.0, 10.0) * kMillisecond;
  if (rng.next_double() < 0.4) {
    FaultPlanConfig plan;
    plan.host_crash_rate = rng.uniform(1.0, 8.0);
    plan.straggler_rate = rng.uniform(0.0, 4.0);
    plan.horizon = 0.5;
    plan.mean_downtime = rng.uniform(0.01, 0.1);
    s.sim_config.faults = generate_fault_plan(
        plan, rng.next_u64(), fabric.num_hosts(),
        fabric.topology().link_count());
  }

  const SimResults reference = run_uninterrupted(s);
  const Time split = rng.uniform(0.0, 1.0) * reference.makespan;
  const SimResults resumed = run_split(s, split);
  EXPECT_EQ(results_bytes(resumed), results_bytes(reference))
      << "scheduler " << s.scheduler << ", split " << split;
}

TEST(SnapshotRoundTrip, FuzzRandomSplitAgainstUninterrupted) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    run_fuzz_trial(seed);
    if (::testing::Test::HasFailure())
      FAIL() << "snapshot fuzz diverged at seed " << seed;
  }
}

// A restored run must also still agree with the reference oracle — the
// checkpoint machinery sits on top of the calendar engine the oracle
// cross-checks, so this closes the loop end to end.
TEST(SnapshotRoundTrip, RestoredRunMatchesOracle) {
  const FatTree fabric(FatTree::Config{4});
  const std::vector<JobSpec> jobs = small_trace(fabric, 23);
  for (const std::string& name :
       {std::string("gurita"), std::string("aalo"), std::string("pfs")}) {
    SCOPED_TRACE("scheduler " + name);
    Scenario s{fabric, name, jobs, {}, /*with_trace=*/false};

    const std::unique_ptr<Scheduler> oracle_sched = make_scheduler(name);
    OracleSimulator oracle(fabric, *oracle_sched, s.sim_config);
    for (const JobSpec& job : jobs) oracle.submit(job);
    const SimResults oracle_results = oracle.run();

    const SimResults resumed = run_split(s, 0.5 * oracle_results.makespan);
    EXPECT_EQ(resumed.makespan, oracle_results.makespan);
    EXPECT_EQ(resumed.events, oracle_results.events);
    EXPECT_EQ(resumed.rate_recomputations, oracle_results.rate_recomputations);
    ASSERT_EQ(resumed.jobs.size(), oracle_results.jobs.size());
    for (std::size_t i = 0; i < resumed.jobs.size(); ++i)
      EXPECT_EQ(resumed.jobs[i].finish, oracle_results.jobs[i].finish)
          << "job " << i;
  }
}

// ------------------------------------------------------ results cache ---

TEST(SnapshotResults, CacheRoundTripsEverything) {
  const FatTree fabric(FatTree::Config{4});
  const std::vector<JobSpec> jobs = small_trace(fabric, 31);
  Scenario s{fabric, "gurita", jobs, {}, /*with_trace=*/true};
  s.sim_config.collect_link_stats = true;
  const SimResults results = run_uninterrupted(s);

  snapshot::Writer w;
  snapshot::save_results(w, results);
  snapshot::Reader r(w.buffer());
  const SimResults loaded = snapshot::load_results(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(results_bytes(loaded), results_bytes(results));
  EXPECT_EQ(loaded.trace.size(), results.trace.size());
  EXPECT_EQ(loaded.makespan, results.makespan);
}

// --------------------------------------- experiment runner halt/resume ---

/// Byte-level comparison of two pooled comparisons: per-scheduler results
/// serialized through the cache codec (covers jobs, coflows, counters,
/// link stats and traces; the wall-clock profile is outside the contract).
void expect_same_comparison(const ComparisonResult& a,
                            const ComparisonResult& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (const auto& [name, results] : a.results) {
    const auto it = b.results.find(name);
    ASSERT_NE(it, b.results.end()) << name;
    EXPECT_EQ(results_bytes(results), results_bytes(it->second)) << name;
  }
}

ExperimentConfig checkpointed_scenario(const std::string& dir) {
  ExperimentConfig config = trace_scenario(StructureKind::kMixed, 12, 5);
  config.fat_tree_k = 4;
  config.obs.trace = true;
  config.checkpoint.every = 0.05;
  config.checkpoint.dir = dir;
  return config;
}

TEST(SnapshotDeterminism, HaltedRunResumesByteIdentical) {
  const std::vector<std::string> names = {"gurita", "aalo"};
  ExperimentConfig baseline = trace_scenario(StructureKind::kMixed, 12, 5);
  baseline.fat_tree_k = 4;
  baseline.obs.trace = true;
  const ComparisonResult want = compare_schedulers(baseline, names);

  const std::string dir = ::testing::TempDir() + "gurita_snapshot_halt_test";
  std::filesystem::remove_all(dir);
  ExperimentConfig halted = checkpointed_scenario(dir);
  halted.checkpoint.halt_after = 1;
  EXPECT_THROW((void)compare_schedulers(halted, names, "cell0"),
               snapshot::HaltedError);

  ExperimentConfig resumed = checkpointed_scenario(dir);
  resumed.checkpoint.resume = true;
  const ComparisonResult got = compare_schedulers(resumed, names, "cell0");
  expect_same_comparison(got, want);

  // A second resume short-circuits through the .done caches and still
  // reports the identical bytes.
  const ComparisonResult cached = compare_schedulers(resumed, names, "cell0");
  expect_same_comparison(cached, want);
}

TEST(SnapshotDeterminism, HaltResumeSweepByteIdenticalAcrossWorkerCounts) {
  SweepSpec sweep;
  sweep.experiment = "snapshot-determinism";
  sweep.schedulers = {"gurita", "pfs"};
  sweep.replicates = 2;
  for (int jobs : {8, 12}) {
    ExperimentConfig config = trace_scenario(StructureKind::kMixed, jobs, 3);
    config.fat_tree_k = 4;
    config.obs.trace = true;
    sweep.configs.push_back(config);
  }
  const std::vector<ComparisonResult> want = run_sweep(sweep, 1);

  for (const int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers " + std::to_string(workers));
    const std::string dir = ::testing::TempDir() +
                            "gurita_snapshot_sweep_test_w" +
                            std::to_string(workers);
    std::filesystem::remove_all(dir);

    SweepSpec halted = sweep;
    for (ExperimentConfig& config : halted.configs) {
      config.checkpoint.every = 0.05;
      config.checkpoint.dir = dir;
      config.checkpoint.halt_after = 1;
    }
    EXPECT_THROW((void)run_sweep(halted, workers), snapshot::HaltedError);

    SweepSpec resumed = sweep;
    for (ExperimentConfig& config : resumed.configs) {
      config.checkpoint.every = 0.05;
      config.checkpoint.dir = dir;
      config.checkpoint.resume = true;
    }
    const std::vector<ComparisonResult> got = run_sweep(resumed, workers);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t c = 0; c < want.size(); ++c) {
      SCOPED_TRACE("config " + std::to_string(c));
      expect_same_comparison(got[c], want[c]);
    }
  }
}

}  // namespace
}  // namespace gurita
