// Tests for Table-1 size categories, JCT collection and the improvement
// factor, plus the text table reporter.
#include <gtest/gtest.h>

#include "metrics/category.h"
#include "metrics/collector.h"
#include "metrics/report.h"

namespace gurita {
namespace {

// ------------------------------------------------------------- categories

struct CategoryCase {
  Bytes size;
  int expected;
};

class CategoryBoundaries : public ::testing::TestWithParam<CategoryCase> {};

TEST_P(CategoryBoundaries, MapsToTableOne) {
  EXPECT_EQ(category_of(GetParam().size), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, CategoryBoundaries,
    ::testing::Values(CategoryCase{0, 0},                  // folds into I
                      CategoryCase{6 * kMB, 0},            // I lower bound
                      CategoryCase{80 * kMB, 0},           // inside I
                      CategoryCase{81 * kMB, 1},           // II
                      CategoryCase{800 * kMB, 1},          // inside II
                      CategoryCase{801 * kMB, 2},          // III
                      CategoryCase{8 * kGB, 3},            // IV
                      CategoryCase{9 * kGB, 3},            // inside IV
                      CategoryCase{10 * kGB, 4},           // V
                      CategoryCase{99 * kGB, 4},           // inside V
                      CategoryCase{100 * kGB, 5},          // VI
                      CategoryCase{1 * kTB, 6},            // VII
                      CategoryCase{50 * kTB, 6}));         // deep in VII

TEST(Category, Names) {
  EXPECT_EQ(category_name(0), "I");
  EXPECT_EQ(category_name(3), "IV");
  EXPECT_EQ(category_name(6), "VII");
  EXPECT_THROW(category_name(7), std::logic_error);
  EXPECT_THROW(category_name(-1), std::logic_error);
}

TEST(Category, RejectsNegativeSize) {
  EXPECT_THROW(category_of(-1.0), std::logic_error);
}

// -------------------------------------------------------------- collector

SimResults results_with_jobs(
    std::initializer_list<std::pair<Bytes, double>> size_jct) {
  SimResults r;
  std::uint64_t id = 0;
  for (const auto& [bytes, jct] : size_jct) {
    SimResults::JobResult j;
    j.id = JobId{id++};
    j.arrival = 0;
    j.finish = jct;
    j.total_bytes = bytes;
    r.jobs.push_back(j);
  }
  return r;
}

TEST(Collector, AveragesOverall) {
  JctCollector c;
  c.add(results_with_jobs({{10 * kMB, 2.0}, {10 * kMB, 4.0}}));
  EXPECT_DOUBLE_EQ(c.average_jct(), 3.0);
  EXPECT_EQ(c.total_jobs(), 2u);
}

TEST(Collector, SplitsByCategory) {
  JctCollector c;
  c.add(results_with_jobs(
      {{10 * kMB, 1.0}, {20 * kMB, 3.0}, {2 * kGB, 10.0}}));
  EXPECT_DOUBLE_EQ(c.average_jct(0), 2.0);
  EXPECT_DOUBLE_EQ(c.average_jct(2), 10.0);
  EXPECT_EQ(c.jobs(0), 2u);
  EXPECT_EQ(c.jobs(1), 0u);
  EXPECT_DOUBLE_EQ(c.average_jct(1), 0.0);
}

TEST(Collector, AccumulatesAcrossRuns) {
  JctCollector c;
  c.add(results_with_jobs({{10 * kMB, 2.0}}));
  c.add(results_with_jobs({{10 * kMB, 6.0}}));
  EXPECT_DOUBLE_EQ(c.average_jct(), 4.0);
}

TEST(Collector, P95) {
  JctCollector c;
  SimResults r;
  for (int i = 1; i <= 100; ++i) {
    SimResults::JobResult j;
    j.id = JobId{static_cast<std::uint64_t>(i)};
    j.finish = i;
    j.total_bytes = 10 * kMB;
    r.jobs.push_back(j);
  }
  c.add(r);
  EXPECT_DOUBLE_EQ(c.p95_jct(), 95.0);
}

TEST(Collector, CategoryOutOfRangeThrows) {
  JctCollector c;
  EXPECT_THROW(c.average_jct(7), std::logic_error);
  EXPECT_THROW(c.jobs(-1), std::logic_error);
}

// ------------------------------------------------------------ improvement

TEST(Improvement, PaperDefinition) {
  JctCollector gurita, other;
  gurita.add(results_with_jobs({{10 * kMB, 2.0}}));
  other.add(results_with_jobs({{10 * kMB, 4.0}}));
  // other is 2x slower: improvement = 2 (> 1 means Gurita faster).
  EXPECT_DOUBLE_EQ(improvement_factor(gurita, other), 2.0);
  EXPECT_DOUBLE_EQ(improvement_factor(other, gurita), 0.5);
}

TEST(Improvement, PerCategory) {
  JctCollector gurita, other;
  gurita.add(results_with_jobs({{10 * kMB, 1.0}, {2 * kGB, 10.0}}));
  other.add(results_with_jobs({{10 * kMB, 8.0}, {2 * kGB, 11.0}}));
  EXPECT_DOUBLE_EQ(improvement_factor(gurita, other, 0), 8.0);
  EXPECT_DOUBLE_EQ(improvement_factor(gurita, other, 2), 1.1);
}

TEST(Improvement, EmptyCategoryIsZero) {
  JctCollector gurita, other;
  gurita.add(results_with_jobs({{10 * kMB, 1.0}}));
  other.add(results_with_jobs({{10 * kMB, 2.0}}));
  EXPECT_DOUBLE_EQ(improvement_factor(gurita, other, 5), 0.0);
}

TEST(Improvement, EmptyCollectorsAreZero) {
  JctCollector a, b;
  EXPECT_DOUBLE_EQ(improvement_factor(a, b), 0.0);
}

// ------------------------------------------------------------- text table

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1.5"});
  t.add_row({"longer-name", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::logic_error);
}

TEST(TextTable, NumFormatsThreeDecimals) {
  EXPECT_EQ(TextTable::num(1.23456), "1.235");
  EXPECT_EQ(TextTable::num(2.0), "2.000");
}

}  // namespace
}  // namespace gurita
