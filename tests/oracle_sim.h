// Reference-oracle engine for the differential test harness.
//
// A deliberately simple O(active-flows)-per-event re-implementation of the
// simulator's allocation/drain loop: no completion calendar, no generation
// counters, no lazily-invalidated heap — every event scans the whole active
// set for the next completion and for due flows, exactly like the seed
// engine before the event-calendar PR. Everything else (lazy settle-point
// byte accounting, aggregate maintenance, scheduler hook order, active-list
// swap-with-last order, arrival coalescing, disruptions, TCP ramp caps) is
// kept ARITHMETICALLY IDENTICAL to flowsim/simulator.cpp, expression by
// expression, so real schedulers observe bit-identical state and drive both
// engines down the same trajectory.
//
// That makes the pair a differential oracle: any divergence in event times,
// JCT/CCT or counters between Simulator and OracleSimulator on the same
// workload indicts the calendar machinery (stale-entry handling, re-keying,
// pop ordering) — precisely the part this oracle leaves out. The
// differential fuzz gate (differential_engine_test.cpp) replays randomized
// traces through both and asserts equality; keep this file boring and in
// lock-step with simulator.cpp.
//
// Test-only: lives in tests/, never linked into the library
// (SimState befriends OracleSimulator for state maintenance).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "flowsim/allocator.h"
#include "flowsim/scheduler.h"
#include "flowsim/simulator.h"
#include "flowsim/state.h"
#include "topology/fabric.h"

namespace gurita {

class OracleSimulator {
 public:
  OracleSimulator(const Fabric& fabric, Scheduler& scheduler,
                  Simulator::Config config)
      : fabric_(&fabric), scheduler_(&scheduler), config_(std::move(config)) {
    capacities_.resize(fabric.topology().link_count());
    for (std::size_t i = 0; i < capacities_.size(); ++i)
      capacities_[i] = fabric.topology().link(LinkId{i}).capacity;
    for (const CapacityChange& change : config_.disruptions) {
      GURITA_CHECK_MSG(change.link.value() < capacities_.size(),
                       "disruption targets an unknown link");
      GURITA_CHECK_MSG(change.new_capacity >= 0, "negative capacity");
      GURITA_CHECK_MSG(change.time >= 0, "disruption before time zero");
    }
  }
  OracleSimulator(const Fabric& fabric, Scheduler& scheduler)
      : OracleSimulator(fabric, scheduler, Simulator::Config{}) {}

  JobId submit(const JobSpec& spec) {
    GURITA_CHECK_MSG(!ran_, "submit after run()");
    validate(spec, fabric_->num_hosts());

    const JobId jid{state_.jobs_.size()};
    SimJob job;
    job.id = jid;
    job.spec = spec;
    job.arrival_time = spec.arrival_time;
    job.stage_of = stages_of(spec);
    job.num_stages = 0;
    for (int s : job.stage_of) job.num_stages = std::max(job.num_stages, s);
    job.coflows_remaining = static_cast<int>(spec.coflows.size());
    job.total_bytes = spec.total_bytes();

    for (std::size_t i = 0; i < spec.coflows.size(); ++i) {
      const CoflowId cid{state_.coflows_.size()};
      SimCoflow c;
      c.id = cid;
      c.job = jid;
      c.index = static_cast<int>(i);
      c.stage = job.stage_of[i];
      c.deps_remaining = static_cast<int>(spec.deps[i].size());
      state_.coflows_.push_back(std::move(c));
      state_.aggregates_.emplace_back();
      job.coflows.push_back(cid);
    }
    state_.jobs_.push_back(std::move(job));
    return jid;
  }

  SimResults run() {
    GURITA_CHECK_MSG(!ran_, "run() called twice");
    ran_ = true;
    scheduler_->attach(state_);

    std::size_t total_flows = 0;
    for (const SimJob& j : state_.jobs_)
      for (const CoflowSpec& c : j.spec.coflows) total_flows += c.flows.size();
    state_.flows_.reserve(total_flows);
    pos_in_active_.reserve(total_flows);

    std::vector<JobId> arrival_order;
    arrival_order.reserve(state_.jobs_.size());
    for (const SimJob& j : state_.jobs_) arrival_order.push_back(j.id);
    std::sort(arrival_order.begin(), arrival_order.end(),
              [this](JobId a, JobId b) {
                const Time ta = state_.jobs_[a.value()].arrival_time;
                const Time tb = state_.jobs_[b.value()].arrival_time;
                if (ta != tb) return ta < tb;
                return a < b;
              });

    std::size_t next_arrival = 0;
    const Time tick = scheduler_->tick_interval();
    GURITA_CHECK_MSG(tick >= 0, "negative tick interval");
    Time next_tick = std::numeric_limits<Time>::infinity();
    bool dirty = true;
    SimResults results;
    live_results_ = &results;
    if (config_.collect_link_stats)
      results.link_bytes.assign(fabric_->topology().link_count(), 0.0);

    std::vector<CapacityChange> disruptions = config_.disruptions;
    std::sort(disruptions.begin(), disruptions.end(),
              [](const CapacityChange& a, const CapacityChange& b) {
                return a.time < b.time;
              });
    std::size_t next_disruption = 0;
    const auto apply_due_disruptions = [&] {
      while (next_disruption < disruptions.size() &&
             disruptions[next_disruption].time <= now_ + kTimeEpsilon) {
        const CapacityChange& change = disruptions[next_disruption++];
        capacities_[change.link.value()] = change.new_capacity;
        dirty = true;
      }
    };

    std::vector<FlowId> done;
    std::uint64_t iterations = 0;

    while (next_arrival < arrival_order.size() || !active_.empty()) {
      if (++iterations > config_.max_iterations) {
        std::ostringstream os;
        os << "oracle live-lock guard tripped: now=" << now_
           << " active_flows=" << active_.size()
           << " pending_arrivals=" << (arrival_order.size() - next_arrival)
           << " recomputations=" << results.rate_recomputations;
        throw std::logic_error(os.str());
      }
      ++results.events;
      if (active_.empty()) {
        SimJob& job = state_.jobs_[arrival_order[next_arrival].value()];
        now_ = std::max(now_, job.arrival_time);
        state_.now_ = now_;
        ++next_arrival;
        arrive_job(job);
        while (next_arrival < arrival_order.size()) {
          SimJob& j = state_.jobs_[arrival_order[next_arrival].value()];
          if (j.arrival_time > now_ + kTimeEpsilon) break;
          ++next_arrival;
          arrive_job(j);
        }
        if (tick > 0) next_tick = now_ + tick;
        apply_due_disruptions();
        dirty = true;
        continue;
      }

      bool any_ramp_capped = false;
      if (dirty) {
        scheduler_->assign(now_, active_);
        allocate_rates(fabric_->topology(), capacities_, active_,
                       &rate_changes_);
        ++results.rate_recomputations;
        for (const RateChange& rc : rate_changes_) {
          SimFlow& f = *rc.flow;
          Rate target = f.rate;  // the allocator's output
          f.rate = rc.old_rate;  // restore: the flow drained at the old rate
          settle(f);
          if (config_.tcp_ramp_time > 0) {
            const Rate cap = (config_.tcp_initial_window + f.bytes_sent()) /
                             config_.tcp_ramp_time;
            if (target > cap) {
              target = cap;
              any_ramp_capped = true;
            }
          }
          set_rate(f, target);
        }
        dirty = false;
      }

      // ORACLE DIVERGENCE #1: next completion by full active-set scan.
      // Candidate finish per flow = the exact expression the fast engine
      // froze into its calendar entry at the flow's last settle point
      // (push_key): `last_touched + remaining / rate`, or `last_touched`
      // for an already-drained residue; rate-zero flows with real bytes
      // left have no projected finish.
      Time t_complete = std::numeric_limits<Time>::infinity();
      for (const SimFlow* f : active_) {
        Time candidate;
        if (f->remaining <= kByteEpsilon) {
          candidate = f->last_touched;
        } else if (f->rate > 0) {
          candidate = f->last_touched + f->remaining / f->rate;
        } else {
          continue;
        }
        t_complete = std::min(t_complete, candidate);
      }
      const Time t_arrival =
          next_arrival < arrival_order.size()
              ? state_.jobs_[arrival_order[next_arrival].value()].arrival_time
              : std::numeric_limits<Time>::infinity();
      const Time t_tick =
          tick > 0 ? next_tick : std::numeric_limits<Time>::infinity();
      const Time t_disruption = next_disruption < disruptions.size()
                                    ? disruptions[next_disruption].time
                                    : std::numeric_limits<Time>::infinity();

      Time t_next = std::min({t_complete, t_arrival, t_tick, t_disruption});
      if (any_ramp_capped) {
        t_next = std::min(t_next, now_ + config_.tcp_ramp_time);
        dirty = true;
      }
      GURITA_CHECK_MSG(std::isfinite(t_next),
                       "oracle stalled: active flows but no next event");
      GURITA_CHECK_MSG(t_next <= config_.max_time,
                       "oracle exceeded max_time");
      t_next = std::max(t_next, now_);

      now_ = t_next;
      state_.now_ = now_;
      apply_due_disruptions();

      // ORACLE DIVERGENCE #2: completions by full active-set scan with the
      // engine's exact due predicate, then sorted by flow id — the same
      // finish order the fast engine applies to its popped batch.
      const Time quantum = std::max(1.0, now_) * 1e-12;
      done.clear();
      for (const SimFlow* f : active_) {
        const Bytes rem = f->remaining_at(now_);
        if (rem <= kByteEpsilon || rem <= f->rate * quantum)
          done.push_back(f->id);
      }
      if (!done.empty()) {
        std::sort(done.begin(), done.end());
        for (FlowId id : done) finish_flow(state_.flows_[id.value()]);
        dirty = true;
      }

      while (next_arrival < arrival_order.size()) {
        SimJob& j = state_.jobs_[arrival_order[next_arrival].value()];
        if (j.arrival_time > now_ + kTimeEpsilon) break;
        ++next_arrival;
        arrive_job(j);
        dirty = true;
      }

      if (tick > 0 && now_ + kTimeEpsilon >= next_tick) {
        if (scheduler_->on_tick(now_)) dirty = true;
        next_tick += tick;
      }
    }

    results.makespan = now_;
    results.jobs.reserve(state_.jobs_.size());
    for (const SimJob& j : state_.jobs_) {
      GURITA_CHECK_MSG(j.finished(), "job left unfinished at end of run");
      results.jobs.push_back(SimResults::JobResult{
          j.id, j.arrival_time, j.finish_time, j.total_bytes, j.num_stages});
    }
    results.coflows.reserve(state_.coflows_.size());
    for (const SimCoflow& c : state_.coflows_) {
      results.coflows.push_back(SimResults::CoflowResult{
          c.id, c.job, c.stage, c.release_time, c.finish_time,
          state_.coflow_total_bytes(c.id)});
    }
    live_results_ = nullptr;
    return results;
  }

  [[nodiscard]] const SimState& state() const { return state_; }

 private:
  const Fabric* fabric_;
  Scheduler* scheduler_;
  Simulator::Config config_;
  SimState state_;
  bool ran_ = false;

  // Same active-list discipline as the fast engine (swap-with-last
  // removal): allocator input order is part of the bit-identity contract.
  std::vector<SimFlow*> active_;
  std::vector<std::uint32_t> pos_in_active_;
  std::vector<RateChange> rate_changes_;
  SimResults* live_results_ = nullptr;

  Time now_ = 0;
  std::vector<Rate> capacities_;

  SimState::CoflowAggregate& aggregate_of(const SimFlow& flow) {
    const CoflowId cid =
        state_.jobs_[flow.job.value()].coflows[flow.coflow_index];
    return state_.aggregates_[cid.value()];
  }

  void settle(SimFlow& flow) {
    const Time elapsed = now_ - flow.last_touched;
    if (elapsed > 0 && flow.rate > 0) {
      if (config_.collect_link_stats) {
        for (LinkId l : flow.path)
          live_results_->link_bytes[l.value()] += flow.rate * elapsed;
      }
      const Bytes after = std::max(0.0, flow.remaining - flow.rate * elapsed);
      SimState::CoflowAggregate& agg = aggregate_of(flow);
      agg.base_bytes += flow.remaining - after;
      agg.rate_time_sum += flow.rate * elapsed;
      flow.remaining = after;
    }
    flow.last_touched = now_;
  }

  void set_rate(SimFlow& flow, Rate new_rate) {
    SimState::CoflowAggregate& agg = aggregate_of(flow);
    agg.rate_sum += new_rate - flow.rate;
    agg.rate_time_sum += (new_rate - flow.rate) * now_;
    flow.rate = new_rate;
  }

  void remove_from_active(SimFlow& flow) {
    const std::uint32_t pos = pos_in_active_[flow.id.value()];
    SimFlow* last = active_.back();
    active_[pos] = last;
    pos_in_active_[last->id.value()] = pos;
    active_.pop_back();
  }

  void release_coflow(SimCoflow& coflow) {
    GURITA_CHECK_MSG(!coflow.released(), "double release");
    const SimJob& job = state_.jobs_[coflow.job.value()];
    const CoflowSpec& spec = job.spec.coflows[coflow.index];

    coflow.release_time = now_;
    coflow.flows_remaining = static_cast<int>(spec.flows.size());
    SimState::CoflowAggregate& agg = state_.aggregates_[coflow.id.value()];
    for (const FlowSpec& fs : spec.flows) {
      GURITA_CHECK_MSG(state_.flows_.size() < state_.flows_.capacity(),
                       "flow store would reallocate under the active list");
      const FlowId fid{state_.flows_.size()};
      SimFlow f;
      f.id = fid;
      f.job = coflow.job;
      f.coflow_index = coflow.index;
      f.src_host = fs.src_host;
      f.dst_host = fs.dst_host;
      f.size = fs.size;
      f.remaining = fs.size;
      f.start_time = now_;
      f.last_touched = now_;
      f.path = fabric_->route(fid, fs.src_host, fs.dst_host);
      state_.flows_.push_back(std::move(f));
      coflow.flows.push_back(fid);

      SimFlow& stored = state_.flows_.back();
      pos_in_active_.push_back(static_cast<std::uint32_t>(active_.size()));
      active_.push_back(&stored);
      ++agg.open_connections;
    }
    scheduler_->on_coflow_release(coflow, now_);
  }

  void finish_coflow(SimCoflow& coflow) {
    coflow.finish_time = now_;
    scheduler_->on_coflow_finish(coflow, now_);

    SimJob& job = state_.jobs_[coflow.job.value()];
    --job.coflows_remaining;

    const JobSpec& spec = job.spec;
    for (std::size_t i = 0; i < spec.coflows.size(); ++i) {
      SimCoflow& cand = state_.coflows_[job.coflows[i].value()];
      if (cand.released()) continue;
      bool depends = false;
      for (int d : spec.deps[i]) {
        if (d == coflow.index) {
          depends = true;
          break;
        }
      }
      if (!depends) continue;
      if (--cand.deps_remaining == 0) release_coflow(cand);
    }

    if (job.coflows_remaining == 0) {
      job.finish_time = now_;
      job.completed_stages = job.num_stages;
      scheduler_->on_job_finish(job, now_);
    } else {
      int k = job.num_stages;
      for (std::size_t i = 0; i < job.coflows.size(); ++i) {
        const SimCoflow& c = state_.coflows_[job.coflows[i].value()];
        if (!c.finished()) k = std::min(k, job.stage_of[i] - 1);
      }
      job.completed_stages = k;
    }
  }

  void finish_flow(SimFlow& flow) {
    settle(flow);
    set_rate(flow, 0.0);
    SimState::CoflowAggregate& agg = aggregate_of(flow);
    agg.base_bytes += flow.remaining;
    flow.remaining = 0;
    agg.ell_max_settled = std::max(agg.ell_max_settled, flow.size);
    --agg.open_connections;
    remove_from_active(flow);
    flow.finish_time = now_;

    SimCoflow& coflow = state_.coflows_[state_.jobs_[flow.job.value()]
                                            .coflows[flow.coflow_index]
                                            .value()];
    --coflow.flows_remaining;
    scheduler_->on_flow_finish(flow, now_);
    if (coflow.flows_remaining == 0) finish_coflow(coflow);
  }

  void arrive_job(SimJob& job) {
    scheduler_->on_job_arrival(job, now_);
    for (std::size_t i = 0; i < job.coflows.size(); ++i) {
      SimCoflow& c = state_.coflows_[job.coflows[i].value()];
      if (c.deps_remaining == 0) release_coflow(c);
    }
  }
};

}  // namespace gurita
