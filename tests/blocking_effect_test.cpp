// Unit tests for the blocking-effect formula Ψ (eq. 2/3) and its factors
// ω (final-stage weight), ε (flow-size skew) and the critical-path discount.
#include <gtest/gtest.h>

#include <cmath>

#include "core/blocking_effect.h"

namespace gurita {
namespace {

// ------------------------------------------------------------------ omega

TEST(Omega, ClairvoyantDecreasesWithProgress) {
  EXPECT_DOUBLE_EQ(omega_clairvoyant(0, 5), 1.0);
  EXPECT_DOUBLE_EQ(omega_clairvoyant(1, 5), 0.8);
  EXPECT_DOUBLE_EQ(omega_clairvoyant(4, 5), 0.2);
}

TEST(Omega, ClairvoyantFinalStageFloored) {
  // Floor keeps Ψ ordered among final-stage coflows instead of zeroing.
  EXPECT_GT(omega_clairvoyant(5, 5), 0.0);
  EXPECT_LT(omega_clairvoyant(5, 5), 0.01);
}

TEST(Omega, ClairvoyantRejectsBadArgs) {
  EXPECT_THROW(omega_clairvoyant(-1, 5), std::logic_error);
  EXPECT_THROW(omega_clairvoyant(6, 5), std::logic_error);
  EXPECT_THROW(omega_clairvoyant(0, 0), std::logic_error);
}

TEST(Omega, OnlineHarmonicDecay) {
  EXPECT_DOUBLE_EQ(omega_online(0), 1.0);
  EXPECT_DOUBLE_EQ(omega_online(1), 0.5);
  EXPECT_DOUBLE_EQ(omega_online(4), 0.2);
}

TEST(Omega, OnlineInfluenceDiminishes) {
  // "The influence diminishes as k -> inf" — deep jobs don't look final.
  EXPECT_LT(omega_online(100), 0.01);
  EXPECT_GT(omega_online(100), 0.0);
}

TEST(Omega, OnlineRejectsNegative) {
  EXPECT_THROW(omega_online(-1), std::logic_error);
}

// ---------------------------------------------------------------- epsilon

TEST(Epsilon, UniformFlowsBlockMost) {
  // d = 1 (all flows near ℓ_max): ε -> 1 - γ, the maximum.
  const double uniform = epsilon_skew(100.0, 100.0, 0.25);
  const double skewed = epsilon_skew(10.0, 100.0, 0.25);
  EXPECT_DOUBLE_EQ(uniform, 0.75);
  EXPECT_LT(skewed, uniform);
  EXPECT_GT(skewed, 0.0);
}

TEST(Epsilon, MonotoneInSkewRatio) {
  double prev = 0.0;
  for (double avg = 5.0; avg <= 100.0; avg += 5.0) {
    const double e = epsilon_skew(avg, 100.0, 0.5);
    EXPECT_GE(e, prev);
    prev = e;
  }
}

TEST(Epsilon, NothingObservedIsNeutral) {
  EXPECT_DOUBLE_EQ(epsilon_skew(0.0, 0.0, 0.25), 0.75);
}

TEST(Epsilon, FreshCoflowYieldsZeroPsi) {
  // A freshly released coflow has ℓ̈_max = 0 and zero bytes observed: ε
  // must stay finite (neutral branch, no 0/0) and Ψ̈ must be exactly 0 so
  // the coflow is never demoted on an empty observation.
  BlockingInputs in;
  in.omega = omega_online(0);
  in.epsilon = epsilon_skew(0.0, 0.0, 0.25);
  in.ell_max = 0.0;
  in.width = 0.0;
  in.beta = 0.5;
  EXPECT_TRUE(std::isfinite(in.epsilon));
  EXPECT_DOUBLE_EQ(blocking_effect(in), 0.0);
  // Same with connections open but nothing received yet.
  in.width = 8.0;
  EXPECT_DOUBLE_EQ(blocking_effect(in), 0.0);
}

TEST(Epsilon, PaperLiteralBranch) {
  // The ambiguous d >= 1 branch of the paper's ε: 0.1·γ.
  EXPECT_DOUBLE_EQ(epsilon_skew(100.0, 100.0, 0.25, /*paper_literal=*/true),
                   0.025);
  // d < 1 is unaffected by the flag.
  EXPECT_DOUBLE_EQ(epsilon_skew(50.0, 100.0, 0.25, true),
                   epsilon_skew(50.0, 100.0, 0.25, false));
}

TEST(Epsilon, RejectsBadGamma) {
  EXPECT_THROW(epsilon_skew(1.0, 2.0, 0.0), std::logic_error);
  EXPECT_THROW(epsilon_skew(1.0, 2.0, 1.0), std::logic_error);
  EXPECT_THROW(epsilon_skew(1.0, 2.0, -0.5), std::logic_error);
}

TEST(Epsilon, RejectsNegativeSizes) {
  EXPECT_THROW(epsilon_skew(-1.0, 2.0, 0.5), std::logic_error);
  EXPECT_THROW(epsilon_skew(1.0, -2.0, 0.5), std::logic_error);
}

// -------------------------------------------------------------------- psi

BlockingInputs base_inputs() {
  BlockingInputs in;
  in.omega = 0.5;
  in.epsilon = 0.6;
  in.ell_max = 100.0;
  in.width = 10.0;
  return in;
}

TEST(Psi, ProductForm) {
  // Ψ = ω · ε · ℓ_max · n  (eq. 2).
  EXPECT_DOUBLE_EQ(blocking_effect(base_inputs()), 0.5 * 0.6 * 100.0 * 10.0);
}

TEST(Psi, MonotoneInEachDimension) {
  const double base = blocking_effect(base_inputs());
  auto bump = [&](auto f) {
    BlockingInputs in = base_inputs();
    f(in);
    return blocking_effect(in);
  };
  EXPECT_GT(bump([](BlockingInputs& in) { in.ell_max *= 2; }), base);
  EXPECT_GT(bump([](BlockingInputs& in) { in.width *= 2; }), base);
  EXPECT_GT(bump([](BlockingInputs& in) { in.omega = 1.0; }), base);
  EXPECT_GT(bump([](BlockingInputs& in) { in.epsilon = 1.0; }), base);
}

TEST(Psi, CriticalPathDiscount) {
  BlockingInputs in = base_inputs();
  in.beta = 0.5;
  in.on_critical_path = true;
  EXPECT_DOUBLE_EQ(blocking_effect(in),
                   blocking_effect(base_inputs()) * 0.5);
}

TEST(Psi, NoDiscountOffCriticalPath) {
  BlockingInputs in = base_inputs();
  in.beta = 0.5;
  in.on_critical_path = false;
  EXPECT_DOUBLE_EQ(blocking_effect(in), blocking_effect(base_inputs()));
}

TEST(Psi, ZeroWidthIsZero) {
  BlockingInputs in = base_inputs();
  in.width = 0;
  EXPECT_DOUBLE_EQ(blocking_effect(in), 0.0);
}

TEST(Psi, RejectsInvalidInputs) {
  BlockingInputs in = base_inputs();
  in.omega = -1;
  EXPECT_THROW(blocking_effect(in), std::logic_error);
  in = base_inputs();
  in.beta = 2.0;
  EXPECT_THROW(blocking_effect(in), std::logic_error);
  in = base_inputs();
  in.width = -1;
  EXPECT_THROW(blocking_effect(in), std::logic_error);
}

// Parameterized sanity: Ψ ordering matches intuition across a sweep — the
// coflow with more/larger flows always blocks at least as much.
struct PsiCase {
  double ell_a, width_a, ell_b, width_b;
};

class PsiDominance : public ::testing::TestWithParam<PsiCase> {};

TEST_P(PsiDominance, DominatedCoflowHasSmallerPsi) {
  const auto p = GetParam();
  BlockingInputs a, b;
  a.ell_max = p.ell_a;
  a.width = p.width_a;
  b.ell_max = p.ell_b;
  b.width = p.width_b;
  ASSERT_LE(p.ell_a, p.ell_b);
  ASSERT_LE(p.width_a, p.width_b);
  EXPECT_LE(blocking_effect(a), blocking_effect(b));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PsiDominance,
    ::testing::Values(PsiCase{1, 1, 2, 1}, PsiCase{1, 1, 1, 2},
                      PsiCase{10, 5, 20, 50}, PsiCase{0, 0, 100, 100},
                      PsiCase{5, 5, 5, 5}));

}  // namespace
}  // namespace gurita
