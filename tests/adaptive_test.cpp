// Tests for the workload-adaptive scheduler (sched/adaptive.h): feature
// store, hysteresis switching, tier blending, checkpoint round-trips, the
// worker-count determinism contract, and survival of daemon compaction.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/experiment.h"
#include "exp/registry.h"
#include "obs/trace.h"
#include "sched/adaptive.h"
#include "service/daemon.h"
#include "snapshot/codec.h"

namespace gurita {
namespace {

/// Minimal deterministic child: assigns tiers from a repeating pattern and
/// checkpoints one marker word (so the adaptive wrapper's per-child
/// sections carry real payloads).
class StubScheduler final : public Scheduler {
 public:
  StubScheduler(std::string name, std::vector<Tier> pattern)
      : name_(std::move(name)), pattern_(std::move(pattern)) {}

  [[nodiscard]] std::string name() const override { return name_; }

  void assign(Time now, const std::vector<SimFlow*>& active) override {
    (void)now;
    for (std::size_t i = 0; i < active.size(); ++i)
      active[i]->tier = pattern_[i % pattern_.size()];
    ++assigns_;
  }

  void on_job_arrival(const SimJob& job, Time now) override {
    (void)job;
    (void)now;
    ++marker_;
  }

  void save_state(snapshot::Writer& w) const override { w.u64(marker_); }
  void load_state(snapshot::Reader& r) override { marker_ = r.u64(); }

  std::uint64_t marker_ = 0;
  std::uint64_t assigns_ = 0;

 private:
  std::string name_;
  std::vector<Tier> pattern_;
};

/// Three stub children wired the way the registry wires the real ones:
/// 0 = deep/fault primary, 1 = shallow, 2 = shallow + bursty.
std::vector<std::unique_ptr<Scheduler>> stub_children() {
  std::vector<std::unique_ptr<Scheduler>> children;
  children.push_back(std::make_unique<StubScheduler>("g", std::vector<Tier>{3}));
  children.push_back(
      std::make_unique<StubScheduler>("s", std::vector<Tier>{0, 1}));
  children.push_back(std::make_unique<StubScheduler>("b", std::vector<Tier>{2}));
  return children;
}

/// A synthetic arrival that touches no engine state: the adaptive wrapper
/// only reads num_stages and spec.coflows, the stubs read nothing.
SimJob job_with_stages(int stages) {
  SimJob job;
  job.num_stages = stages;
  return job;
}

TEST(AdaptiveRegistry, WiredAsTheNinthScheduler) {
  EXPECT_EQ(scheduler_names().back(), "adaptive");
  const std::unique_ptr<Scheduler> s = make_scheduler("adaptive");
  EXPECT_EQ(s->name(), "adaptive");
  EXPECT_GT(s->tick_interval(), 0.0);
}

TEST(AdaptiveSwitching, HysteresisDelaysEverySwitch) {
  AdaptiveScheduler adaptive(AdaptiveScheduler::Config{}, stub_children());
  EXPECT_EQ(adaptive.active_child(), "g");

  // An empty workload reads as shallow (stages EWMA 0 < 1.5): the wrapper
  // wants the shallow child, but hysteresis holds the first tick back.
  EXPECT_FALSE(adaptive.on_tick(0.008));
  EXPECT_EQ(adaptive.active_child(), "g");
  EXPECT_TRUE(adaptive.on_tick(0.016));
  EXPECT_EQ(adaptive.active_child(), "s");
  EXPECT_EQ(adaptive.features().counter("adaptive.switches"), 1u);

  // Deep arrivals drag the EWMA over deep_stages: two more ticks to swing
  // back to the primary.
  adaptive.on_job_arrival(job_with_stages(5), 0.020);
  EXPECT_FALSE(adaptive.on_tick(0.024));
  EXPECT_EQ(adaptive.active_child(), "s");
  EXPECT_TRUE(adaptive.on_tick(0.032));
  EXPECT_EQ(adaptive.active_child(), "g");
  EXPECT_EQ(adaptive.features().counter("adaptive.switches"), 2u);
}

TEST(AdaptiveFeatures, ArrivalsFaultsAndFinishesDriveTheStore) {
  AdaptiveScheduler adaptive(AdaptiveScheduler::Config{}, stub_children());

  adaptive.on_job_arrival(job_with_stages(4), 0.0);
  EXPECT_EQ(adaptive.features().counter("adaptive.jobs_seen"), 1u);
  // Gauges refresh at tick boundaries (the staleness model of δ).
  EXPECT_DOUBLE_EQ(adaptive.features().gauge("adaptive.stages_ewma"), 0.0);
  adaptive.on_tick(0.008);
  EXPECT_DOUBLE_EQ(adaptive.features().gauge("adaptive.stages_ewma"), 4.0);

  adaptive.on_job_arrival(job_with_stages(2), 0.010);
  adaptive.on_tick(0.016);
  // EWMA with alpha 0.25: 0.75 * 4 + 0.25 * 2.
  EXPECT_DOUBLE_EQ(adaptive.features().gauge("adaptive.stages_ewma"), 3.5);
  EXPECT_DOUBLE_EQ(adaptive.features().gauge("adaptive.active_jobs"), 2.0);

  // State loss clears what was *learned*; the live population is
  // observable by a restarted scheduler, so it survives.
  FaultEvent loss;
  loss.kind = FaultKind::kSchedulerStateLoss;
  adaptive.on_fault(loss, 0.020);
  EXPECT_EQ(adaptive.features().counter("adaptive.faults"), 1u);
  EXPECT_DOUBLE_EQ(adaptive.features().gauge("adaptive.stages_ewma"), 0.0);
  EXPECT_DOUBLE_EQ(adaptive.features().gauge("adaptive.active_jobs"), 2.0);

  adaptive.on_job_finish(job_with_stages(4), 0.022);
  adaptive.on_tick(0.024);
  EXPECT_DOUBLE_EQ(adaptive.features().gauge("adaptive.active_jobs"), 1.0);
  // The fresh fault raised the decayed pressure over the threshold: the
  // decision pins to the primary child regardless of the shallow EWMA.
  EXPECT_GE(adaptive.features().gauge("adaptive.fault_pressure"), 0.5);
  adaptive.on_tick(0.032);
  EXPECT_EQ(adaptive.active_child(), "g");
}

TEST(AdaptiveBlend, SecondaryFirstServedFlowsGetTheWeightBoost) {
  AdaptiveScheduler adaptive(AdaptiveScheduler::Config{}, stub_children());

  std::vector<SimFlow> flows(4);
  std::vector<SimFlow*> active;
  for (SimFlow& f : flows) active.push_back(&f);
  adaptive.assign(0.0, active);

  for (const SimFlow& f : flows)
    EXPECT_EQ(f.tier, 3) << "tiers must be the primary child's alone";
  // The secondary ("s", pattern 0,1) put flows 0 and 2 in its top tier:
  // they get the 25% boost, the others keep weight 1.
  EXPECT_DOUBLE_EQ(flows[0].weight, 1.25);
  EXPECT_DOUBLE_EQ(flows[1].weight, 1.0);
  EXPECT_DOUBLE_EQ(flows[2].weight, 1.25);
  EXPECT_DOUBLE_EQ(flows[3].weight, 1.0);

  // blend_boost = 0 turns the secondary pass off entirely.
  AdaptiveScheduler::Config plain;
  plain.blend_boost = 0;
  AdaptiveScheduler unblended(plain, stub_children());
  std::vector<SimFlow> flat(4);
  std::vector<SimFlow*> flat_active;
  for (SimFlow& f : flat) flat_active.push_back(&f);
  unblended.assign(0.0, flat_active);
  for (const SimFlow& f : flat) EXPECT_DOUBLE_EQ(f.weight, 1.0);
}

TEST(AdaptiveSingleChild, DegradesToAForwardingWrapper) {
  std::vector<std::unique_ptr<Scheduler>> one;
  one.push_back(std::make_unique<StubScheduler>("solo", std::vector<Tier>{7}));
  AdaptiveScheduler adaptive(AdaptiveScheduler::Config{}, std::move(one));

  EXPECT_FALSE(adaptive.on_tick(0.008));
  EXPECT_FALSE(adaptive.on_tick(0.016));
  EXPECT_EQ(adaptive.active_child(), "solo");

  std::vector<SimFlow> flows(2);
  std::vector<SimFlow*> active = {&flows[0], &flows[1]};
  adaptive.assign(0.0, active);
  EXPECT_EQ(flows[0].tier, 7);
  EXPECT_DOUBLE_EQ(flows[0].weight, 1.0);  // nothing to blend with
}

TEST(AdaptiveSnapshot, RoundTripIsByteIdentical) {
  AdaptiveScheduler adaptive(AdaptiveScheduler::Config{}, stub_children());
  adaptive.on_job_arrival(job_with_stages(1), 0.0);
  adaptive.on_tick(0.008);
  adaptive.on_tick(0.016);  // switched to the shallow child
  ASSERT_EQ(adaptive.active_child(), "s");

  snapshot::Writer first;
  adaptive.save_state(first);

  AdaptiveScheduler restored(AdaptiveScheduler::Config{}, stub_children());
  snapshot::Reader reader(first.buffer());
  restored.load_state(reader);
  EXPECT_EQ(restored.active_child(), "s");
  EXPECT_DOUBLE_EQ(restored.features().gauge("adaptive.stages_ewma"), 1.0);

  snapshot::Writer second;
  restored.save_state(second);
  EXPECT_EQ(first.buffer(), second.buffer());
}

TEST(AdaptiveSnapshot, RejectsAChildCountMismatch) {
  AdaptiveScheduler three(AdaptiveScheduler::Config{}, stub_children());
  snapshot::Writer w;
  three.save_state(w);

  std::vector<std::unique_ptr<Scheduler>> one;
  one.push_back(std::make_unique<StubScheduler>("solo", std::vector<Tier>{0}));
  AdaptiveScheduler narrow(AdaptiveScheduler::Config{}, std::move(one));
  snapshot::Reader r(w.buffer());
  EXPECT_THROW(narrow.load_state(r), std::logic_error);
}

// The repo-wide determinism contract: a faulty replicated sweep including
// `adaptive` is byte-identical whether the replicates run serially or
// sharded over 2 or 8 workers (mirrors FaultDeterminism, with the adaptive
// wrapper's switching and feature decay in the loop).
TEST(AdaptiveDeterminism, ByteIdenticalAcrossWorkerCounts) {
  ExperimentConfig config = trace_scenario(StructureKind::kFbTao, 30, 11);
  config.fat_tree_k = 4;
  config.obs.trace = true;
  config.faults.enabled = true;
  config.faults.plan.host_crash_rate = 3.0;
  config.faults.plan.straggler_rate = 4.0;
  config.faults.plan.state_loss_rate = 1.0;
  const std::vector<std::string> names = {"adaptive", "gurita", "stream",
                                          "baraat"};

  const auto fingerprint = [&](int jobs) {
    const ComparisonResult pooled =
        compare_schedulers_seeds(config, names, /*num_seeds=*/4, jobs);
    std::ostringstream os;
    os.precision(17);
    for (const auto& [name, res] : pooled.results) {
      os << name << " " << res.makespan << " " << res.average_jct() << " "
         << res.failed_jobs << " " << res.events << "\n";
      obs::write_jsonl(os, res.trace, name);
    }
    return os.str();
  };

  const std::string serial = fingerprint(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, fingerprint(2));
  EXPECT_EQ(serial, fingerprint(8));
}

TEST(AdaptiveEndToEnd, CompletesEveryJobAndStaysCompetitive) {
  ExperimentConfig config = trace_scenario(StructureKind::kTpcDs, 40, 3);
  config.fat_tree_k = 4;
  const ComparisonResult result = compare_schedulers(
      config, {"adaptive", "gurita", "stream", "baraat"});

  const SimResults& adaptive = result.results.at("adaptive");
  ASSERT_EQ(adaptive.jobs.size(), 40u);
  for (const SimResults::JobResult& j : adaptive.jobs) {
    EXPECT_FALSE(j.failed);
    EXPECT_GE(j.finish, j.arrival);
  }
  // Sanity, not optimality: the wrapper must stay in the children's band,
  // not degrade below the worst of what it is made of.
  double worst_child = 0;
  for (const char* name : {"gurita", "stream", "baraat"})
    worst_child =
        std::max(worst_child, result.results.at(name).average_jct());
  EXPECT_LE(adaptive.average_jct(), 1.2 * worst_child);
  EXPECT_GT(adaptive.average_jct(), 0.0);
}

// ISSUE acceptance: `adaptive` survives the daemon's live compaction
// (Simulator::compact() + on_compact forwarding) with memory bounded by
// the active population and per-configuration determinism intact.
TEST(AdaptiveCompaction, SurvivesDaemonCompactionDeterministically) {
  using service::Daemon;
  using service::DaemonOptions;
  using service::DaemonReport;
  DaemonOptions options;
  options.scheduler = "adaptive";
  options.fat_tree_k = 4;
  options.open_loop.shape.seed = 9;
  options.open_loop.load = 0.5;
  options.open_loop.service_rate = 16 * options.link_capacity;
  options.max_jobs = 40;
  options.poll_signals = false;
  options.trace_mask = obs::TraceRecorder::kDefaultKinds;

  Daemon daemon(options);
  const DaemonReport report = daemon.run();
  EXPECT_EQ(report.admitted, 40u);
  EXPECT_GT(report.compactions, 0u);
  EXPECT_LT(report.peak_live_jobs, 40u)
      << "memory must stay O(active), not O(ever admitted)";

  const SimResults& res = report.comparison.results.at("adaptive");
  EXPECT_EQ(res.jobs.size(), 40u);
  for (const SimResults::JobResult& j : res.jobs)
    EXPECT_GE(j.finish, j.arrival);

  // Identical configuration, identical run — compaction must not have
  // introduced any order dependence.
  Daemon again(options);
  const DaemonReport rerun = again.run();
  const SimResults& res2 = rerun.comparison.results.at("adaptive");
  EXPECT_EQ(res.makespan, res2.makespan);
  EXPECT_EQ(res.average_jct(), res2.average_jct());
  EXPECT_EQ(res.events, res2.events);
  EXPECT_EQ(rerun.compactions, report.compactions);
}

}  // namespace
}  // namespace gurita
