// Tests for the open-horizon service daemon (src/service/, DESIGN.md §15):
// hardened feed parsing, aggregated option validation, the async-signal-safe
// latch, recovery identity checks, and the ServiceDeterminism suite — shed
// decisions byte-identical across 1/2/8 concurrent daemon instances, a
// drained run agreeing with the uninterrupted one on every job that finished
// before the trigger, halt + recover byte-identical exports, and the
// compaction memory bound. ServiceDeterminism is part of the TSan gate.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/units.h"
#include "exp/export.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "service/daemon.h"
#include "service/feed.h"
#include "service/signals.h"
#include "snapshot/snapshot.h"

namespace gurita::service {
namespace {

std::string test_dir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "gurita_service_test/" + leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Export a report's trace + summary and return both as one byte string.
std::string export_bytes(const DaemonReport& report, const std::string& path) {
  (void)export_traces({"service"}, {report.comparison}, path,
                      /*binary=*/false);
  return slurp(path) + slurp(path + ".summary.json");
}

/// Open-loop options sized so every ServiceDeterminism case runs in well
/// under a second: a k=4 fabric (16 hosts) at moderate load.
DaemonOptions base_options(std::uint64_t seed, std::uint64_t jobs,
                           double load) {
  DaemonOptions o;
  o.fat_tree_k = 4;
  o.open_loop.shape.seed = seed;
  o.open_loop.load = load;
  o.open_loop.service_rate = 16 * o.link_capacity;
  o.max_jobs = jobs;
  o.poll_signals = false;
  o.trace_mask = obs::TraceRecorder::kDefaultKinds;
  return o;
}

/// Overload variant: watermarks and queue small enough that the shed policy
/// fires constantly at 3x offered load.
DaemonOptions overload_options(std::uint64_t jobs) {
  DaemonOptions o = base_options(/*seed=*/11, jobs, /*load=*/3.0);
  o.queue_capacity = 2;
  o.watermarks.active_flows_high = 8;
  o.watermarks.active_flows_low = 4;
  o.shed_policy = ShedPolicy::kDropLargest;
  return o;
}

// ------------------------------------------------------------------- feed

TEST(ServiceFeed, AggregatesEveryCorruptLineIntoOneError) {
  std::istringstream in(
      "# comment lines and blanks are skipped\n"
      "\n"
      "{\"id\": 1, \"arrival\": 0.5, \"coflows\": "
      "[{\"flows\": [{\"src\": 0, \"dst\": 1, \"bytes\": 100}]}]}\n"
      "this is not json\n"
      "{\"id\": 1, \"arrival\": 1.0, \"coflows\": "
      "[{\"flows\": [{\"src\": 0, \"dst\": 1, \"bytes\": 100}]}]}\n"
      "{\"id\": 2, \"arrival\": 0.25, \"coflows\": "
      "[{\"flows\": [{\"src\": 0, \"dst\": 1, \"bytes\": 100}]}]}\n"
      "{\"id\": 3, \"arrival\": 2.0, \"coflows\": "
      "[{\"flows\": [{\"src\": 0, \"dst\": 9, \"bytes\": 100}]}]}\n"
      "{\"id\": 4, \"arrival\": 3.0, \"coflows\": "
      "[{\"flows\": [{\"src\": 0, \"dst\": 1, \"bytes\": 0}]}]}\n");
  try {
    (void)parse_feed(in, "test-feed", /*num_hosts=*/4);
    FAIL() << "corrupt feed must throw";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;  // bad JSON
    EXPECT_NE(what.find("line 5"), std::string::npos) << what;  // dup id
    EXPECT_NE(what.find("line 6"), std::string::npos) << what;  // backwards
    EXPECT_NE(what.find("line 7"), std::string::npos) << what;  // bad host
    EXPECT_NE(what.find("line 8"), std::string::npos) << what;  // zero bytes
  }
}

TEST(ServiceFeed, WriteReadRoundTripIsValueExact) {
  std::vector<FeedJob> jobs(3);
  jobs[0].id = 7;
  jobs[0].spec.arrival_time = 0.125;
  jobs[0].spec.coflows = {CoflowSpec{{FlowSpec{0, 5, 1048576.0}}}};
  jobs[0].spec.deps = {{}};
  jobs[1].id = 8;
  jobs[1].spec.arrival_time = 0.1250000000000001;  // survives max_digits10
  jobs[1].spec.deadline = 9.5;
  jobs[1].spec.coflows = {CoflowSpec{{FlowSpec{1, 2, 2097152.0},
                                      FlowSpec{3, 4, 524288.0}}},
                          CoflowSpec{{FlowSpec{6, 7, 0.5}}}};
  jobs[1].spec.deps = {{}, {0}};
  jobs[2].id = 9;
  jobs[2].spec.arrival_time = 4.0;
  jobs[2].spec.coflows = {CoflowSpec{{FlowSpec{8, 9, 7.0}}}};
  jobs[2].spec.deps = {{}};

  std::ostringstream out;
  write_feed(out, jobs);
  std::istringstream in(out.str());
  const std::vector<FeedJob> got = parse_feed(in, "round-trip", 16);

  ASSERT_EQ(got.size(), jobs.size());
  EXPECT_EQ(feed_fingerprint(got), feed_fingerprint(jobs));
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(got[i].id, jobs[i].id);
    EXPECT_EQ(got[i].spec.arrival_time, jobs[i].spec.arrival_time);
    EXPECT_EQ(got[i].spec.deadline, jobs[i].spec.deadline);
    EXPECT_EQ(got[i].spec.deps, jobs[i].spec.deps);
    ASSERT_EQ(got[i].spec.coflow_count(), jobs[i].spec.coflow_count());
    EXPECT_EQ(got[i].spec.total_bytes(), jobs[i].spec.total_bytes());
  }
}

// ---------------------------------------------------------------- options

TEST(ServiceOptions, ValidationAggregatesEveryIssue) {
  DaemonOptions bad = base_options(1, 4, 0.5);
  bad.queue_capacity = 0;
  bad.watermarks.active_flows_high = 4;   // high < low: nonsense ordering
  bad.watermarks.active_flows_low = 8;
  bad.checkpoint_every = 0.5;             // cadence without a path
  try {
    Daemon daemon(std::move(bad));
    FAIL() << "contradictory options must throw";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("queue_capacity"), std::string::npos) << what;
    EXPECT_NE(what.find("active_flows"), std::string::npos) << what;
    EXPECT_NE(what.find("checkpoint"), std::string::npos) << what;
  }
}

TEST(ServiceOptions, ShedPolicyNamesRoundTrip) {
  for (ShedPolicy p : {ShedPolicy::kRejectNew, ShedPolicy::kDropLargest,
                       ShedPolicy::kDegradeToFifo})
    EXPECT_EQ(shed_policy_from_name(to_string(p)), p);
  EXPECT_THROW((void)shed_policy_from_name("drop-smallest"), ConfigError);
}

// ---------------------------------------------------------------- signals

TEST(ServiceSignals, LatchDeliversAndClears) {
  clear_pending_signal();
  EXPECT_EQ(pending_signal(), 0);
  raise_pending_signal(SIGTERM);
  EXPECT_EQ(pending_signal(), SIGTERM);
  clear_pending_signal();
  EXPECT_EQ(pending_signal(), 0);
}

TEST(ServiceSignals, PendingSignalTriggersDrainBeforeAdmission) {
  clear_pending_signal();
  raise_pending_signal(SIGTERM);
  DaemonOptions o = base_options(2, 8, 0.5);
  o.poll_signals = true;  // sole daemon in this test: safe to poll
  Daemon daemon(std::move(o));
  const DaemonReport report = daemon.run();
  clear_pending_signal();
  EXPECT_EQ(report.drain_cause, SIGTERM);
  EXPECT_EQ(report.admitted, 0u);  // latched before the first boundary
}

// ---------------------------------------------------------------- recover

TEST(ServiceRecover, MismatchedOptionsAreRejectedWithOneError) {
  const std::string dir = test_dir("recover_mismatch");
  const std::string snap = dir + "/ck.snap";

  DaemonOptions o = base_options(3, 12, 0.5);
  o.checkpoint_path = snap;
  o.checkpoint_every = 10.0;
  o.halt_after_checkpoints = 1;
  {
    DaemonOptions crashing = o;
    Daemon daemon(std::move(crashing));
    EXPECT_THROW((void)daemon.run(), snapshot::HaltedError);
  }

  DaemonOptions wrong_seed = o;
  wrong_seed.halt_after_checkpoints = 0;
  wrong_seed.open_loop.shape.seed = 4;  // different generator stream
  {
    Daemon daemon(std::move(wrong_seed));
    EXPECT_THROW((void)daemon.recover(snap), ConfigError);
  }

  DaemonOptions wrong_policy = o;
  wrong_policy.halt_after_checkpoints = 0;
  wrong_policy.shed_policy = ShedPolicy::kDegradeToFifo;
  {
    Daemon daemon(std::move(wrong_policy));
    EXPECT_THROW((void)daemon.recover(snap), ConfigError);
  }
}

// ----------------------------------------------------- determinism gate

TEST(ServiceDeterminism, ShedDecisionsByteIdenticalAcross128Instances) {
  const std::string dir = test_dir("shed_concurrency");

  Daemon reference(overload_options(40));
  const DaemonReport ref = reference.run();
  EXPECT_GT(ref.shed_total, 0u) << "overload config must actually shed";
  EXPECT_EQ(ref.admitted + ref.shed_total, 40u);
  const std::string want = export_bytes(ref, dir + "/ref.jsonl");

  for (const int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers " + std::to_string(workers));
    std::vector<DaemonReport> reports(workers);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (int i = 0; i < workers; ++i)
      threads.emplace_back([&reports, i] {
        Daemon daemon(overload_options(40));
        reports[i] = daemon.run();
      });
    for (std::thread& t : threads) t.join();
    for (int i = 0; i < workers; ++i) {
      SCOPED_TRACE("instance " + std::to_string(i));
      const std::string got = export_bytes(
          reports[i],
          dir + "/w" + std::to_string(workers) + "_" + std::to_string(i) +
              ".jsonl");
      EXPECT_EQ(got, want);
    }
  }
}

TEST(ServiceDeterminism, DrainAgreesWithUninterruptedRunBeforeTrigger) {
  Daemon uninterrupted(base_options(5, 50, 0.8));
  const DaemonReport full = uninterrupted.run();
  const SimResults& full_results = full.comparison.results.at("gurita");
  ASSERT_EQ(full_results.jobs.size(), 50u);

  // Trigger the drain mid-run: at the median finish time every event up to
  // the trigger is shared with the uninterrupted run, so any job that
  // *finished* by then must report the identical JCT — later admissions
  // only ever change contention after the trigger.
  const Time trigger = full_results.jobs[25].finish;
  DaemonOptions drained_options = base_options(5, 50, 0.8);
  drained_options.drain_after_sim_time = trigger;
  Daemon drained(std::move(drained_options));
  const DaemonReport part = drained.run();
  const SimResults& part_results = part.comparison.results.at("gurita");
  EXPECT_LT(part_results.jobs.size(), full_results.jobs.size());

  std::map<std::uint64_t, SimResults::JobResult> by_id;
  for (const SimResults::JobResult& job : full_results.jobs)
    by_id[job.id.value()] = job;
  std::size_t compared = 0;
  for (const SimResults::JobResult& job : part_results.jobs) {
    if (job.finish > trigger) continue;  // finished during the drain tail
    const auto it = by_id.find(job.id.value());
    ASSERT_NE(it, by_id.end()) << "job " << job.id.value();
    EXPECT_EQ(job.arrival, it->second.arrival);
    EXPECT_EQ(job.finish, it->second.finish);  // bit-exact, not approximate
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

TEST(ServiceDeterminism, HaltRecoverExportByteIdentical) {
  const std::string dir = test_dir("halt_recover");
  const std::string snap = dir + "/ck.snap";

  Daemon uninterrupted(base_options(7, 30, 0.5));
  const std::string want =
      export_bytes(uninterrupted.run(), dir + "/full.jsonl");

  DaemonOptions crashing = base_options(7, 30, 0.5);
  crashing.checkpoint_path = snap;
  crashing.checkpoint_every = 25.0;
  crashing.halt_after_checkpoints = 2;
  {
    Daemon daemon(std::move(crashing));
    EXPECT_THROW((void)daemon.run(), snapshot::HaltedError);
  }
  ASSERT_TRUE(std::filesystem::exists(snap));

  DaemonOptions resuming = base_options(7, 30, 0.5);
  resuming.checkpoint_path = snap;
  resuming.checkpoint_every = 25.0;
  Daemon recovered(std::move(resuming));
  const std::string got =
      export_bytes(recovered.recover(snap), dir + "/recovered.jsonl");
  EXPECT_EQ(got, want);
}

TEST(ServiceDeterminism, CompactionBoundsLiveJobsAndStaysDeterministic) {
  const std::string dir = test_dir("compaction");

  Daemon compacting(base_options(9, 40, 0.5));  // compact_every default on
  const DaemonReport tight = compacting.run();
  EXPECT_EQ(tight.admitted, 40u);
  EXPECT_GT(tight.compactions, 0u);
  EXPECT_LE(tight.peak_live_jobs, 10u)
      << "memory must stay O(active), not O(ever admitted)";

  // Per-configuration determinism: the identical cadence reruns to the
  // byte (the engine contract compaction must not weaken).
  Daemon again(base_options(9, 40, 0.5));
  EXPECT_EQ(export_bytes(again.run(), dir + "/again.jsonl"),
            export_bytes(tight, dir + "/tight.jsonl"));

  DaemonOptions unbounded_options = base_options(9, 40, 0.5);
  unbounded_options.compact_every = 0;
  Daemon unbounded(std::move(unbounded_options));
  const DaemonReport loose = unbounded.run();
  EXPECT_EQ(loose.peak_live_jobs, 40u);

  // Against the uncompacted run the ledger-merged populations agree
  // job-for-job on everything spec-derived — same external ids, arrivals,
  // bytes and stage counts, no job lost or duplicated. Finishes are NOT
  // compared: the allocator rebuild after an eviction re-sums link loads
  // in the survivors' renumbered order, rates move by an ulp, and
  // near-tie scheduling decisions can flip, so individual trajectories
  // drift (simulator.h, compact()). The spec-derived fields are exactly
  // what a ledger mispairing bug would corrupt, and they are immune to
  // that drift.
  const SimResults& a = tight.comparison.results.at("gurita");
  const SimResults& b = loose.comparison.results.at("gurita");
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].id.value(), b.jobs[i].id.value());
    EXPECT_EQ(a.jobs[i].arrival, b.jobs[i].arrival);
    EXPECT_EQ(a.jobs[i].total_bytes, b.jobs[i].total_bytes);
    EXPECT_EQ(a.jobs[i].num_stages, b.jobs[i].num_stages);
    EXPECT_GE(a.jobs[i].finish, a.jobs[i].arrival);
  }
  ASSERT_EQ(a.coflows.size(), b.coflows.size());
}

}  // namespace
}  // namespace gurita::service
