// Tests for the fault-injection subsystem (fault/ + engine integration):
// retry-policy determinism, plan generation, setup validation, crash /
// flap / straggler semantics, job failure, scheduler state loss and the
// zero-fault byte-identity contract.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>

#include "core/gurita.h"
#include "fault/plan.h"
#include "fault/validation.h"
#include "flowsim/simulator.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sched/pfs.h"
#include "topology/fattree.h"

namespace gurita {
namespace {

// k=4 fat-tree with 100 B/s links: hand-computable numbers, 16 hosts.
class FaultFixture : public ::testing::Test {
 protected:
  FaultFixture() : fabric_(FatTree::Config{4, 100.0}) {}
  FatTree fabric_;
  PfsScheduler pfs_;
};

JobSpec single_flow_job(Bytes size, int src = 0, int dst = 1,
                        Time arrival = 0) {
  JobSpec job;
  job.arrival_time = arrival;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{src, dst, size});
  job.coflows.push_back(c);
  job.deps = {{}};
  return job;
}

FaultEvent host_event(FaultKind kind, Time time, int host) {
  FaultEvent e;
  e.kind = kind;
  e.time = time;
  e.host = host;
  return e;
}

// ---------------------------------------------------------------- retry ---

TEST(RetryPolicy, DelayIsPureAndJitterBounded) {
  RetryPolicy p;
  p.backoff = RetryPolicy::Backoff::kExponential;
  p.base_delay = 0.01;
  p.multiplier = 2.0;
  p.max_delay = 1.0;
  p.jitter = 0.25;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const Time d1 = p.delay(attempt, 42, 7);
    const Time d2 = p.delay(attempt, 42, 7);
    EXPECT_DOUBLE_EQ(d1, d2) << "delay must be a pure function";
    const double base = 0.01 * std::pow(2.0, attempt - 1);
    EXPECT_GE(d1, base);
    EXPECT_LE(d1, base * (1.0 + p.jitter) + 1e-12);
  }
  // Different flows (streams) and seeds jitter independently.
  EXPECT_NE(p.delay(1, 42, 7), p.delay(1, 42, 8));
  EXPECT_NE(p.delay(1, 42, 7), p.delay(1, 43, 7));
}

TEST(RetryPolicy, ExponentialGrowthIsCapped) {
  RetryPolicy p;
  p.backoff = RetryPolicy::Backoff::kExponential;
  p.base_delay = 0.01;
  p.multiplier = 4.0;
  p.max_delay = 0.05;
  p.jitter = 0.0;
  EXPECT_DOUBLE_EQ(p.delay(1, 0, 0), 0.01);
  EXPECT_DOUBLE_EQ(p.delay(2, 0, 0), 0.04);
  EXPECT_DOUBLE_EQ(p.delay(3, 0, 0), 0.05);  // capped
  EXPECT_DOUBLE_EQ(p.delay(9, 0, 0), 0.05);
}

TEST(RetryPolicy, FixedBackoffAndAttemptClamp) {
  RetryPolicy p;
  p.backoff = RetryPolicy::Backoff::kFixed;
  p.base_delay = 0.02;
  p.jitter = 0.0;
  EXPECT_DOUBLE_EQ(p.delay(5, 1, 2), 0.02);
  // A flow parked before it ever transmitted retries with attempt 0;
  // that clamps to the first-attempt delay instead of underflowing.
  EXPECT_DOUBLE_EQ(p.delay(0, 1, 2), p.delay(1, 1, 2));
}

// ----------------------------------------------------------------- plan ---

TEST(FaultPlanGeneration, DeterministicAndWellPaired) {
  FaultPlanConfig config;
  config.host_crash_rate = 5.0;
  config.link_flap_rate = 3.0;
  config.straggler_rate = 4.0;
  config.state_loss_rate = 1.0;
  config.horizon = 2.0;

  const FaultPlan a = generate_fault_plan(config, 99, 16, 64);
  const FaultPlan b = generate_fault_plan(config, 99, 16, 64);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_DOUBLE_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].host, b.events[i].host);
  }
  EXPECT_FALSE(a.events.empty());
  EXPECT_EQ(a.seed, 99u);

  // Sorted by time, each down paired with a later up, no double-downs.
  std::map<int, bool> host_down;
  Time prev = 0;
  for (const FaultEvent& e : a.events) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
    if (!is_recovery(e.kind)) {
      EXPECT_LT(e.time, config.horizon);
    }
    if (e.kind == FaultKind::kHostDown) {
      EXPECT_FALSE(host_down[e.host]);
      host_down[e.host] = true;
    } else if (e.kind == FaultKind::kHostUp) {
      EXPECT_TRUE(host_down[e.host]);
      host_down[e.host] = false;
    } else if (e.kind == FaultKind::kStragglerStart) {
      EXPECT_GT(e.factor, 0.0);
      EXPECT_LT(e.factor, 1.0);
    }
  }
  for (const auto& [host, down] : host_down) EXPECT_FALSE(down) << host;

  // A different seed moves the schedule.
  const FaultPlan c = generate_fault_plan(config, 100, 16, 64);
  EXPECT_TRUE(c.events.size() != a.events.size() ||
              c.events[0].time != a.events[0].time);

  // Zero rates compile to the empty plan (the resilience baseline).
  FaultPlanConfig zero;
  EXPECT_TRUE(generate_fault_plan(zero, 99, 16, 64).empty());
}

// ----------------------------------------------------------- validation ---

TEST(FaultValidation, AggregatesEveryIssue) {
  FaultPlan plan;
  plan.events.push_back(host_event(FaultKind::kHostDown, 0.1, 99));  // range
  FaultEvent straggle = host_event(FaultKind::kStragglerStart, 0.2, 1);
  straggle.factor = 1.5;  // not in (0,1)
  plan.events.push_back(straggle);
  plan.events.push_back(host_event(FaultKind::kHostDown, -0.3, 1));  // time
  plan.retry.max_attempts = 0;  // must be >= 1
  try {
    validate_fault_plan(plan, 16, 64);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_GE(e.issues().size(), 4u);
    EXPECT_NE(std::string(e.what()).find("fault"), std::string::npos);
  }
}

TEST(FaultValidation, PairingDisciplineEnforced) {
  FaultPlan plan;
  plan.events.push_back(host_event(FaultKind::kHostDown, 0.1, 1));
  plan.events.push_back(host_event(FaultKind::kHostDown, 0.2, 1));  // again
  EXPECT_THROW(validate_fault_plan(plan, 16, 64), ConfigError);

  FaultPlan up_only;
  up_only.events.push_back(host_event(FaultKind::kHostUp, 0.1, 1));
  EXPECT_THROW(validate_fault_plan(up_only, 16, 64), ConfigError);

  // A trailing down (never recovered) is legal: permanent failure.
  FaultPlan trailing;
  trailing.events.push_back(host_event(FaultKind::kHostDown, 0.1, 1));
  EXPECT_NO_THROW(validate_fault_plan(trailing, 16, 64));
}

TEST_F(FaultFixture, SimulatorRejectsInvalidPlansAndDisruptions) {
  Simulator::Config bad_plan;
  bad_plan.faults.events.push_back(host_event(FaultKind::kHostDown, 0.1, -5));
  EXPECT_THROW(Simulator(fabric_, pfs_, bad_plan), ConfigError);

  Simulator::Config bad_disruption;
  CapacityChange change;
  change.time = -1.0;
  change.link = LinkId{0};
  change.new_capacity = 10.0;
  bad_disruption.disruptions.push_back(change);
  EXPECT_THROW(Simulator(fabric_, pfs_, bad_disruption), ConfigError);
}

// ------------------------------------------------------- crash + retry ---

TEST_F(FaultFixture, HostCrashAbortsAndRetries) {
  // 500 B at 100 B/s; dst host crashes at t=1 (400 B still in flight) and
  // recovers at t=2. The flow restarts from byte zero after the backoff.
  Simulator::Config config;
  config.faults.events.push_back(host_event(FaultKind::kHostDown, 1.0, 1));
  config.faults.events.push_back(host_event(FaultKind::kHostUp, 2.0, 1));
  config.faults.retry.backoff = RetryPolicy::Backoff::kFixed;
  config.faults.retry.base_delay = 0.5;
  config.faults.retry.jitter = 0.0;

  Simulator sim(fabric_, pfs_, config);
  sim.submit(single_flow_job(500.0));
  const SimResults r = sim.run();

  EXPECT_EQ(r.flow_aborts, 1u);
  EXPECT_EQ(r.flow_retries, 1u);
  EXPECT_EQ(r.failed_jobs, 0u);
  EXPECT_NEAR(r.bytes_lost, 100.0, 1e-6);            // 1 s of transmission
  EXPECT_NEAR(r.bytes_retransmitted, 100.0, 1e-6);   // all recovered
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_FALSE(r.jobs[0].failed);
  // Recover at 2.0 + 0.5 backoff, then the full 500 B again -> finish 7.5.
  EXPECT_NEAR(r.jobs[0].finish, 7.5, 1e-9);
  EXPECT_NEAR(r.total_recovery_latency, 1.5, 1e-9);  // parked 1.0..2.5

  const SimFlow& flow = sim.state().flow(FlowId{0});
  EXPECT_TRUE(flow.finished());
  EXPECT_EQ(flow.attempts, 1);
  EXPECT_NEAR(flow.bytes_sent(), 500.0, 1e-6);
}

TEST_F(FaultFixture, PermanentCrashFailsTheJobInsteadOfHanging) {
  Simulator::Config config;
  config.faults.events.push_back(host_event(FaultKind::kHostDown, 1.0, 1));
  // No recovery, ever: the run must terminate with the job failed.
  Simulator sim(fabric_, pfs_, config);
  sim.submit(single_flow_job(500.0));
  sim.submit(single_flow_job(200.0, 4, 5));  // unaffected bystander
  const SimResults r = sim.run();

  EXPECT_EQ(r.failed_jobs, 1u);
  ASSERT_EQ(r.jobs.size(), 2u);
  EXPECT_TRUE(r.jobs[0].failed);
  EXPECT_FALSE(r.jobs[1].failed);
  // Failed jobs are excluded from JCT statistics.
  EXPECT_NEAR(r.average_jct(), 2.0, 1e-9);
  EXPECT_TRUE(sim.state().flow(FlowId{0}).cancelled);
}

TEST_F(FaultFixture, ExhaustedAttemptsFailTheJob) {
  Simulator::Config config;
  config.faults.events.push_back(host_event(FaultKind::kHostDown, 1.0, 1));
  config.faults.events.push_back(host_event(FaultKind::kHostUp, 2.0, 1));
  config.faults.retry.max_attempts = 1;  // the first abort is fatal
  Simulator sim(fabric_, pfs_, config);
  sim.submit(single_flow_job(500.0));
  const SimResults r = sim.run();

  EXPECT_EQ(r.flow_aborts, 1u);
  EXPECT_EQ(r.flow_retries, 0u);
  EXPECT_EQ(r.failed_jobs, 1u);
  EXPECT_TRUE(r.jobs[0].failed);
}

TEST_F(FaultFixture, ParkAtReleaseConsumesNoAttempt) {
  // Host 1 is down before the job arrives; the flow parks at release
  // (blocked, nothing in flight) and enters once the host recovers.
  Simulator::Config config;
  config.faults.events.push_back(host_event(FaultKind::kHostDown, 0.0, 1));
  config.faults.events.push_back(host_event(FaultKind::kHostUp, 2.0, 1));
  config.faults.retry.backoff = RetryPolicy::Backoff::kFixed;
  config.faults.retry.base_delay = 0.5;
  config.faults.retry.jitter = 0.0;
  config.faults.retry.max_attempts = 1;  // would fail if release counted

  Simulator sim(fabric_, pfs_, config);
  sim.submit(single_flow_job(500.0, 0, 1, /*arrival=*/0.5));
  const SimResults r = sim.run();

  EXPECT_EQ(r.failed_jobs, 0u);
  EXPECT_EQ(r.flow_aborts, 1u);  // the park-at-release abort
  EXPECT_EQ(r.flow_retries, 1u);
  EXPECT_NEAR(r.bytes_lost, 0.0, 1e-9);  // nothing was in flight
  EXPECT_EQ(sim.state().flow(FlowId{0}).attempts, 0);
  // Recover at 2.0 + 0.5 backoff + 5 s transmission.
  EXPECT_NEAR(r.jobs[0].finish, 7.5, 1e-9);
}

TEST_F(FaultFixture, LinkFlapAbortsCrossingFlows) {
  // Kill the src host's uplink instead of a host: same abort/retry cycle.
  const LinkId uplink =
      fabric_.topology().find_link(fabric_.host(0), fabric_.edge_of_host(0));
  FaultEvent down;
  down.kind = FaultKind::kLinkDown;
  down.time = 1.0;
  down.link = uplink;
  FaultEvent up;
  up.kind = FaultKind::kLinkUp;
  up.time = 2.0;
  up.link = uplink;
  Simulator::Config config;
  config.faults.events = {down, up};
  config.faults.retry.backoff = RetryPolicy::Backoff::kFixed;
  config.faults.retry.base_delay = 0.5;
  config.faults.retry.jitter = 0.0;

  Simulator sim(fabric_, pfs_, config);
  sim.submit(single_flow_job(500.0));
  const SimResults r = sim.run();
  EXPECT_EQ(r.flow_aborts, 1u);
  EXPECT_EQ(r.flow_retries, 1u);
  EXPECT_EQ(r.failed_jobs, 0u);
  EXPECT_NEAR(r.jobs[0].finish, 7.5, 1e-9);
}

TEST_F(FaultFixture, StragglerSlowsWithoutAborting) {
  // Factor 0.2 on the dst host for t in [0, 5): the 500 B flow drains at
  // 20 B/s for 5 s (100 B), then at full rate -> finish at 9.
  FaultEvent start = host_event(FaultKind::kStragglerStart, 0.0, 1);
  start.factor = 0.2;
  FaultEvent end = host_event(FaultKind::kStragglerEnd, 5.0, 1);
  Simulator::Config config;
  config.faults.events = {start, end};

  Simulator sim(fabric_, pfs_, config);
  sim.submit(single_flow_job(500.0));
  const SimResults r = sim.run();
  EXPECT_EQ(r.flow_aborts, 0u);
  EXPECT_EQ(r.failed_jobs, 0u);
  EXPECT_NEAR(r.jobs[0].finish, 9.0, 1e-9);
  EXPECT_NEAR(r.bytes_lost, 0.0, 1e-9);
}

// ------------------------------------------------------ scheduler reset ---

TEST_F(FaultFixture, SchedulerStateLossResetsGuritaQueues) {
  // Two fat coflows long enough for Gurita's HR rounds to demote them,
  // then a state loss: the trace must show kFaultReset re-admissions and
  // the run must still complete.
  JobSpec job;
  CoflowSpec c1, c2;
  for (int f = 0; f < 4; ++f) {
    c1.flows.push_back(FlowSpec{f, 8 + f, 5000.0});
    c2.flows.push_back(FlowSpec{4 + f, 12 + f, 5000.0});
  }
  job.coflows = {c1, c2};
  job.deps = {{}, {}};

  GuritaScheduler gurita;
  obs::TraceRecorder recorder(obs::TraceRecorder::kAllKinds);
  Simulator::Config config;
  config.trace = &recorder;
  FaultEvent loss;
  loss.kind = FaultKind::kSchedulerStateLoss;
  loss.time = 20.0;
  config.faults.events = {loss};

  Simulator sim(fabric_, gurita, config);
  sim.submit(job);
  const SimResults r = sim.run();
  EXPECT_EQ(r.failed_jobs, 0u);

  int fault_records = 0, reset_records = 0;
  for (const obs::TraceRecord& rec : recorder.records()) {
    if (rec.kind == obs::TraceEventKind::kFault) ++fault_records;
    if (rec.kind == obs::TraceEventKind::kQueueChange &&
        rec.i2 ==
            static_cast<std::int32_t>(obs::QueueChangeCause::kFaultReset)) {
      ++reset_records;
      EXPECT_EQ(rec.i1, 0) << "state loss must re-admit at the top queue";
    }
  }
  EXPECT_EQ(fault_records, 1);
  EXPECT_EQ(reset_records, 2) << "both live coflows re-admitted";
}

// ----------------------------------------------------- counters + trace ---

TEST_F(FaultFixture, CountersExportAndTraceKindsRoundTrip) {
  Simulator::Config config;
  config.faults.events.push_back(host_event(FaultKind::kHostDown, 1.0, 1));
  config.faults.events.push_back(host_event(FaultKind::kHostUp, 2.0, 1));
  obs::TraceRecorder recorder(obs::TraceRecorder::kAllKinds);
  config.trace = &recorder;

  Simulator sim(fabric_, pfs_, config);
  sim.submit(single_flow_job(500.0));
  const SimResults r = sim.run();

  obs::Registry registry;
  r.export_counters(registry);
  EXPECT_EQ(registry.counter("fault.flow_aborts"), 1u);
  EXPECT_EQ(registry.counter("fault.flow_retries"), 1u);
  EXPECT_EQ(registry.counter("fault.failed_jobs"), 0u);

  // JSONL and binary exports of the fault kinds parse back identically.
  const std::vector<obs::TraceRecord> records = recorder.records();
  std::stringstream jsonl;
  obs::write_jsonl(jsonl, records, "fault-run");
  const auto back = obs::read_jsonl(jsonl);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].records, records);

  std::stringstream binary(std::ios::in | std::ios::out | std::ios::binary);
  obs::write_binary_header(binary);
  obs::write_binary_section(binary, "fault-run", records);
  const auto bin_back = obs::read_binary(binary);
  ASSERT_EQ(bin_back.size(), 1u);
  EXPECT_EQ(bin_back[0].records, records);

  int aborts = 0, retries = 0, faults = 0;
  for (const obs::TraceRecord& rec : records) {
    if (rec.kind == obs::TraceEventKind::kFlowAbort) ++aborts;
    if (rec.kind == obs::TraceEventKind::kFlowRetry) ++retries;
    if (rec.kind == obs::TraceEventKind::kFault) ++faults;
  }
  EXPECT_EQ(aborts, 1);
  EXPECT_EQ(retries, 1);
  EXPECT_EQ(faults, 2);
}

// ------------------------------------------------- zero-fault identity ---

TEST_F(FaultFixture, EmptyPlanIsByteIdenticalToNoFaultSupport) {
  const auto run_trace = [&](bool with_empty_plan) {
    obs::TraceRecorder recorder(obs::TraceRecorder::kAllKinds);
    Simulator::Config config;
    config.trace = &recorder;
    if (with_empty_plan) {
      // A generated zero-rate plan: exactly what bench_resilience's
      // baseline factor produces.
      config.faults = generate_fault_plan(FaultPlanConfig{}, 7,
                                          fabric_.num_hosts(),
                                          fabric_.topology().link_count());
      EXPECT_TRUE(config.faults.empty());
    }
    PfsScheduler pfs;
    Simulator sim(fabric_, pfs, config);
    sim.submit(single_flow_job(500.0));
    sim.submit(single_flow_job(300.0, 2, 9, 0.25));
    const SimResults r = sim.run();
    std::ostringstream os;
    os.precision(17);
    os << r.makespan << " " << r.average_jct() << " " << r.events << "\n";
    obs::write_jsonl(os, recorder.records());
    return os.str();
  };
  EXPECT_EQ(run_trace(false), run_trace(true));
}

}  // namespace
}  // namespace gurita
