// Tests for the big-switch fabric abstraction and MCS, plus cross-fabric
// engine runs (the Fabric interface in action).
#include <gtest/gtest.h>

#include "exp/registry.h"
#include "flowsim/simulator.h"
#include "sched/mcs.h"
#include "sched/pfs.h"
#include "topology/big_switch.h"
#include "topology/fattree.h"
#include "workload/trace_gen.h"

namespace gurita {
namespace {

// -------------------------------------------------------------- BigSwitch

TEST(BigSwitch, Structure) {
  const BigSwitch bs(BigSwitch::Config{16, 100.0});
  EXPECT_EQ(bs.num_hosts(), 16);
  EXPECT_EQ(bs.topology().node_count(), 17u);  // hosts + core
  EXPECT_EQ(bs.topology().link_count(), 32u);  // up + down per host
  EXPECT_EQ(bs.topology().count(NodeKind::kCoreSwitch), 1u);
}

TEST(BigSwitch, RoutesAreTwoHops) {
  const BigSwitch bs(BigSwitch::Config{8, 100.0});
  const auto path = bs.route(FlowId{0}, 2, 5);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], bs.uplink(2));
  EXPECT_EQ(path[1], bs.downlink(5));
}

TEST(BigSwitch, RejectsDegenerate) {
  EXPECT_THROW(BigSwitch(BigSwitch::Config{1, 100.0}), std::logic_error);
  EXPECT_THROW(BigSwitch(BigSwitch::Config{8, 0.0}), std::logic_error);
  const BigSwitch bs(BigSwitch::Config{8, 100.0});
  EXPECT_THROW(bs.route(FlowId{0}, 3, 3), std::logic_error);
  EXPECT_THROW(bs.uplink(8), std::logic_error);
}

TEST(BigSwitch, OnlyPortsCongest) {
  // Two flows sharing a sender port halve; disjoint ports don't interact —
  // a non-blocking core by construction.
  const BigSwitch bs(BigSwitch::Config{8, 100.0});
  PfsScheduler pfs;
  Simulator sim(bs, pfs);
  JobSpec shared;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{0, 1, 100.0});
  c.flows.push_back(FlowSpec{0, 2, 100.0});  // same sender port
  c.flows.push_back(FlowSpec{3, 4, 100.0});  // disjoint
  shared.coflows.push_back(c);
  shared.deps = {{}};
  sim.submit(shared);
  const SimResults r = sim.run();
  EXPECT_NEAR(sim.state().flow(FlowId{0}).finish_time, 2.0, 1e-9);
  EXPECT_NEAR(sim.state().flow(FlowId{1}).finish_time, 2.0, 1e-9);
  EXPECT_NEAR(sim.state().flow(FlowId{2}).finish_time, 1.0, 1e-9);
  EXPECT_NEAR(r.makespan, 2.0, 1e-9);
}

TEST(BigSwitch, WorksWithEverySchedulerOnTraceWorkload) {
  const BigSwitch bs(BigSwitch::Config{32, gbps(10.0)});
  TraceConfig trace;
  trace.num_jobs = 12;
  trace.num_hosts = bs.num_hosts();
  trace.max_width = 8;
  trace.category_weights = {0.5, 0.3, 0.2, 0.0, 0.0, 0.0, 0.0};
  trace.seed = 17;
  const auto jobs = generate_trace(trace);
  for (const std::string& name : scheduler_names()) {
    const auto sched = make_scheduler(name);
    Simulator sim(bs, *sched);
    for (const JobSpec& job : jobs) sim.submit(job);
    const SimResults r = sim.run();
    EXPECT_EQ(r.jobs.size(), jobs.size()) << name;
  }
}

TEST(BigSwitch, BigSwitchIsNeverSlowerThanFatTreeForOneFlow) {
  // A single flow sees line rate on both fabrics (sanity of capacities).
  PfsScheduler pfs_a, pfs_b;
  const BigSwitch bs(BigSwitch::Config{16, 100.0});
  const FatTree ft(FatTree::Config{4, 100.0});
  JobSpec job;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{0, 9, 300.0});
  job.coflows.push_back(c);
  job.deps = {{}};

  Simulator sim_bs(bs, pfs_a);
  sim_bs.submit(job);
  Simulator sim_ft(ft, pfs_b);
  sim_ft.submit(job);
  EXPECT_NEAR(sim_bs.run().makespan, 3.0, 1e-9);
  EXPECT_NEAR(sim_ft.run().makespan, 3.0, 1e-9);
}

// -------------------------------------------------------------------- MCS

class McsFixture : public ::testing::Test {
 protected:
  McsFixture() : fabric_(FatTree::Config{4, 100.0}) {}
  FatTree fabric_;
};

JobSpec one_flow_job(Bytes size, int src, int dst, Time arrival = 0) {
  JobSpec job;
  job.arrival_time = arrival;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{src, dst, size});
  job.coflows.push_back(c);
  job.deps = {{}};
  return job;
}

TEST_F(McsFixture, WideLongCoflowDemoted) {
  McsScheduler::Config config;
  config.first_threshold = 200.0;  // width x bytes signal
  config.update_interval = 0.1;
  McsScheduler mcs(config);
  Simulator sim(fabric_, mcs);
  // Wide elephant: 4 flows from distinct senders into distinct receivers
  // sharing nothing with the mouse until host 0.
  JobSpec elephant;
  CoflowSpec c;
  for (int i = 0; i < 4; ++i) c.flows.push_back(FlowSpec{i, i + 4, 500.0});
  elephant.coflows.push_back(c);
  elephant.deps = {{}};
  sim.submit(elephant);
  sim.submit(one_flow_job(50.0, 0, 4, 2.0));
  const SimResults r = sim.run();
  // The mouse preempts the demoted wide coflow.
  EXPECT_LT(r.jobs[1].jct(), 1.0);
}

TEST_F(McsFixture, StageAgnosticByDesign) {
  // MCS never resets priority per stage; a later mouse stage of a big job
  // re-enters at the TOP though, because each coflow is a fresh signal —
  // document the actual semantic: per-coflow (like Aalo), not per-job.
  McsScheduler::Config config;
  config.first_threshold = 200.0;
  config.update_interval = 0.1;
  McsScheduler mcs(config);
  Simulator sim(fabric_, mcs);
  JobSpec job;
  CoflowSpec big, tiny;
  big.flows.push_back(FlowSpec{0, 1, 1000.0});
  tiny.flows.push_back(FlowSpec{1, 2, 50.0});
  job.coflows = {big, tiny};
  job.deps = {{}, {0}};
  sim.submit(job);
  const SimResults r = sim.run();
  EXPECT_NEAR(r.jobs[0].jct(), 10.5, 1e-6);
}

TEST_F(McsFixture, CompletesMixedWorkload) {
  McsScheduler mcs;
  Simulator sim(fabric_, mcs);
  for (int i = 0; i < 8; ++i)
    sim.submit(one_flow_job(100.0 + 30.0 * i, i, 15 - i, 0.1 * i));
  const SimResults r = sim.run();
  EXPECT_EQ(r.jobs.size(), 8u);
}

}  // namespace
}  // namespace gurita
