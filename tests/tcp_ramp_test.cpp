// Tests for the TCP slow-start ramp approximation.
#include <gtest/gtest.h>

#include "flowsim/simulator.h"
#include "sched/pfs.h"
#include "topology/fattree.h"

namespace gurita {
namespace {

class TcpRampFixture : public ::testing::Test {
 protected:
  TcpRampFixture() : fabric_(FatTree::Config{4, 1000.0}) {}
  FatTree fabric_;
  PfsScheduler pfs_;

  JobSpec job(Bytes size) {
    JobSpec j;
    CoflowSpec c;
    c.flows.push_back(FlowSpec{0, 1, size});
    j.coflows.push_back(c);
    j.deps = {{}};
    return j;
  }
};

TEST_F(TcpRampFixture, DisabledByDefault) {
  Simulator sim(fabric_, pfs_);
  sim.submit(job(1000.0));
  // Full rate immediately: 1000 B at 1000 B/s.
  EXPECT_NEAR(sim.run().makespan, 1.0, 1e-9);
}

TEST_F(TcpRampFixture, RampSlowsShortFlows) {
  Simulator::Config config;
  config.tcp_ramp_time = 0.1;
  config.tcp_initial_window = 10.0;  // bytes
  Simulator sim(fabric_, pfs_, config);
  sim.submit(job(1000.0));
  const SimResults r = sim.run();
  // Initial cap: 10/0.1 = 100 B/s << 1000 B/s line rate; the window grows
  // with bytes sent so the flow accelerates, but the total must exceed the
  // unramped 1 s noticeably.
  EXPECT_GT(r.makespan, 1.2);
  EXPECT_LT(r.makespan, 5.0);  // and the ramp does open up
}

TEST_F(TcpRampFixture, LargeFlowsAmortizeTheRamp) {
  Simulator::Config config;
  config.tcp_ramp_time = 0.1;
  config.tcp_initial_window = 10.0;  // ramp bites until ~90 bytes sent
  // Relative penalty shrinks as flows grow.
  auto jct_of = [&](Bytes size) {
    PfsScheduler pfs;
    Simulator sim(fabric_, pfs, config);
    sim.submit(job(size));
    return sim.run().makespan;
  };
  const double small_penalty = jct_of(200.0) / (200.0 / 1000.0);
  const double big_penalty = jct_of(100000.0) / (100000.0 / 1000.0);
  EXPECT_GT(small_penalty, big_penalty);
  EXPECT_LT(big_penalty, 1.2);
}

TEST_F(TcpRampFixture, BytesStillConserved) {
  Simulator::Config config;
  config.tcp_ramp_time = 0.05;
  config.tcp_initial_window = 50.0;
  Simulator sim(fabric_, pfs_, config);
  sim.submit(job(777.0));
  (void)sim.run();
  const SimFlow& f = sim.state().flow(FlowId{0});
  EXPECT_TRUE(f.finished());
  EXPECT_NEAR(f.bytes_sent(), 777.0, 1e-2);
}

TEST_F(TcpRampFixture, RampNeverSpeedsAnythingUp) {
  auto run_with_ramp = [&](bool ramp) {
    Simulator::Config config;
    if (ramp) {
      config.tcp_ramp_time = 0.05;
      config.tcp_initial_window = 100.0;
    }
    PfsScheduler pfs;
    Simulator sim(fabric_, pfs, config);
    for (int i = 0; i < 4; ++i) sim.submit(job(500.0 + 100.0 * i));
    return sim.run();
  };
  const SimResults plain = run_with_ramp(false);
  const SimResults ramped = run_with_ramp(true);
  for (std::size_t i = 0; i < plain.jobs.size(); ++i)
    EXPECT_GE(ramped.jobs[i].jct(), plain.jobs[i].jct() - 1e-9);
}

}  // namespace
}  // namespace gurita
