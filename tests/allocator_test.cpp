// Unit tests for the tiered weighted max-min allocator: capacity respect,
// work conservation, fairness, weights and strict tier priority.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "flowsim/allocator.h"
#include "topology/ecmp.h"
#include "topology/fattree.h"

namespace gurita {
namespace {

/// A tiny line topology: h0 -> s -> h1, both directed links capacity `cap`.
struct LineFixture {
  Topology topo;
  NodeId h0, sw, h1;
  LinkId up, down;

  explicit LineFixture(Rate cap = 100.0) {
    h0 = topo.add_node(NodeKind::kHost, 0, 0);
    sw = topo.add_node(NodeKind::kEdgeSwitch, 0, 0);
    h1 = topo.add_node(NodeKind::kHost, 0, 1);
    up = topo.add_link(h0, sw, cap);
    down = topo.add_link(sw, h1, cap);
  }
};

SimFlow make_flow(std::uint64_t id, std::vector<LinkId> path, Tier tier = 0,
                  double weight = 1.0) {
  SimFlow f;
  f.id = FlowId{id};
  f.size = 1000;
  f.remaining = 1000;
  f.start_time = 0;
  f.path = std::move(path);
  f.tier = tier;
  f.weight = weight;
  return f;
}

double sum_rate_on(const std::vector<SimFlow>& flows, LinkId link) {
  double sum = 0;
  for (const SimFlow& f : flows)
    for (LinkId l : f.path)
      if (l == link) sum += f.rate;
  return sum;
}

TEST(Waterfill, SingleFlowGetsFullCapacity) {
  LineFixture fx(100.0);
  std::vector<SimFlow> flows = {make_flow(0, {fx.up, fx.down})};
  std::vector<SimFlow*> ptrs = {&flows[0]};
  allocate_rates(fx.topo, ptrs);
  EXPECT_DOUBLE_EQ(flows[0].rate, 100.0);
}

TEST(Waterfill, EqualFlowsShareEqually) {
  LineFixture fx(100.0);
  std::vector<SimFlow> flows = {make_flow(0, {fx.up, fx.down}),
                                make_flow(1, {fx.up, fx.down}),
                                make_flow(2, {fx.up, fx.down}),
                                make_flow(3, {fx.up, fx.down})};
  std::vector<SimFlow*> ptrs;
  for (auto& f : flows) ptrs.push_back(&f);
  allocate_rates(fx.topo, ptrs);
  for (const auto& f : flows) EXPECT_DOUBLE_EQ(f.rate, 25.0);
}

TEST(Waterfill, WeightedSharesProportional) {
  LineFixture fx(100.0);
  std::vector<SimFlow> flows = {make_flow(0, {fx.up, fx.down}, 0, 1.0),
                                make_flow(1, {fx.up, fx.down}, 0, 3.0)};
  std::vector<SimFlow*> ptrs = {&flows[0], &flows[1]};
  allocate_rates(fx.topo, ptrs);
  EXPECT_DOUBLE_EQ(flows[0].rate, 25.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 75.0);
}

TEST(Waterfill, CapacityNeverExceeded) {
  const FatTree ft(FatTree::Config{4, 100.0});
  const EcmpRouter router(ft);
  std::vector<SimFlow> flows;
  for (std::uint64_t i = 0; i < 40; ++i) {
    const int src = static_cast<int>(i % 16);
    const int dst = static_cast<int>((i * 5 + 3) % 16);
    if (src == dst) continue;
    SimFlow f = make_flow(i, router.route(FlowId{i}, src, dst), 0,
                          1.0 + static_cast<double>(i % 3));
    flows.push_back(std::move(f));
  }
  std::vector<SimFlow*> ptrs;
  for (auto& f : flows) ptrs.push_back(&f);
  allocate_rates(ft.topology(), ptrs);
  for (std::size_t l = 0; l < ft.topology().link_count(); ++l) {
    EXPECT_LE(sum_rate_on(flows, LinkId{l}),
              ft.topology().link(LinkId{l}).capacity * (1 + 1e-9));
  }
}

TEST(Waterfill, WorkConserving) {
  // Every flow's rate equals the min residual fair share along its path;
  // in particular a lone flow on an uncontended path gets full capacity and
  // a bottlenecked group saturates the bottleneck.
  LineFixture fx(100.0);
  // Second, independent path: h2 -> sw2 -> h3.
  const NodeId h2 = fx.topo.add_node(NodeKind::kHost, 0, 2);
  const NodeId sw2 = fx.topo.add_node(NodeKind::kEdgeSwitch, 0, 1);
  const NodeId h3 = fx.topo.add_node(NodeKind::kHost, 0, 3);
  const LinkId up2 = fx.topo.add_link(h2, sw2, 40.0);
  const LinkId down2 = fx.topo.add_link(sw2, h3, 40.0);

  std::vector<SimFlow> flows = {make_flow(0, {fx.up, fx.down}),
                                make_flow(1, {fx.up, fx.down}),
                                make_flow(2, {up2, down2})};
  std::vector<SimFlow*> ptrs;
  for (auto& f : flows) ptrs.push_back(&f);
  allocate_rates(fx.topo, ptrs);
  EXPECT_DOUBLE_EQ(flows[0].rate, 50.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 50.0);
  EXPECT_DOUBLE_EQ(flows[2].rate, 40.0);  // saturates its own bottleneck
}

TEST(Waterfill, MaxMinBeatsBottleneckSplitting) {
  // Classic max-min: flows A (link1 only), B (link1+link2), C (link2 only).
  // A and B share link1; B is also constrained by link2 shared with C.
  Topology topo;
  const NodeId n0 = topo.add_node(NodeKind::kHost, 0, 0);
  const NodeId n1 = topo.add_node(NodeKind::kHost, 0, 1);
  const NodeId n2 = topo.add_node(NodeKind::kHost, 0, 2);
  const LinkId l1 = topo.add_link(n0, n1, 100.0);
  const LinkId l2 = topo.add_link(n1, n2, 60.0);

  std::vector<SimFlow> flows = {make_flow(0, {l1}), make_flow(1, {l1, l2}),
                                make_flow(2, {l2})};
  std::vector<SimFlow*> ptrs;
  for (auto& f : flows) ptrs.push_back(&f);
  allocate_rates(topo, ptrs);
  // link2 is the bottleneck for B and C: each gets 30. A then fills link1.
  EXPECT_DOUBLE_EQ(flows[1].rate, 30.0);
  EXPECT_DOUBLE_EQ(flows[2].rate, 30.0);
  EXPECT_DOUBLE_EQ(flows[0].rate, 70.0);
}

TEST(Waterfill, StrictTierPriority) {
  LineFixture fx(100.0);
  std::vector<SimFlow> flows = {make_flow(0, {fx.up, fx.down}, /*tier=*/1),
                                make_flow(1, {fx.up, fx.down}, /*tier=*/0)};
  std::vector<SimFlow*> ptrs = {&flows[0], &flows[1]};
  allocate_rates(fx.topo, ptrs);
  EXPECT_DOUBLE_EQ(flows[1].rate, 100.0);  // high priority takes everything
  EXPECT_DOUBLE_EQ(flows[0].rate, 0.0);    // low priority starves under SPQ
}

TEST(Waterfill, LowerTierGetsLeftovers) {
  LineFixture fx(100.0);
  // High-priority flow limited elsewhere: add a slow private hop.
  const NodeId hx = fx.topo.add_node(NodeKind::kHost, 0, 9);
  const LinkId slow = fx.topo.add_link(hx, fx.h0, 30.0);
  std::vector<SimFlow> flows = {
      make_flow(0, {slow, fx.up, fx.down}, /*tier=*/0),
      make_flow(1, {fx.up, fx.down}, /*tier=*/5)};
  std::vector<SimFlow*> ptrs = {&flows[0], &flows[1]};
  allocate_rates(fx.topo, ptrs);
  EXPECT_DOUBLE_EQ(flows[0].rate, 30.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 70.0);  // leftovers, not zero
}

TEST(Waterfill, ManyTiersServedInOrder) {
  LineFixture fx(90.0);
  std::vector<SimFlow> flows = {make_flow(0, {fx.up, fx.down}, 2),
                                make_flow(1, {fx.up, fx.down}, 0),
                                make_flow(2, {fx.up, fx.down}, 1)};
  std::vector<SimFlow*> ptrs;
  for (auto& f : flows) ptrs.push_back(&f);
  allocate_rates(fx.topo, ptrs);
  EXPECT_DOUBLE_EQ(flows[1].rate, 90.0);
  EXPECT_DOUBLE_EQ(flows[2].rate, 0.0);
  EXPECT_DOUBLE_EQ(flows[0].rate, 0.0);
}

TEST(Waterfill, ExtremeWeightRatiosStayFinite) {
  // Regression: starved WRR weights (1e-9) used to leave float residue on
  // links and livelock the progressive filling loop.
  LineFixture fx(100.0);
  std::vector<SimFlow> flows;
  for (std::uint64_t i = 0; i < 20; ++i)
    flows.push_back(
        make_flow(i, {fx.up, fx.down}, 0, i % 2 == 0 ? 1.0 : 1e-9));
  std::vector<SimFlow*> ptrs;
  for (auto& f : flows) ptrs.push_back(&f);
  ASSERT_NO_THROW(allocate_rates(fx.topo, ptrs));
  double total = 0;
  for (const auto& f : flows) {
    EXPECT_GE(f.rate, 0.0);
    total += f.rate;
  }
  EXPECT_NEAR(total, 100.0, 1e-6);
}

TEST(Waterfill, RejectsNonPositiveWeight) {
  LineFixture fx;
  std::vector<SimFlow> flows = {make_flow(0, {fx.up, fx.down}, 0, 0.0)};
  std::vector<SimFlow*> ptrs = {&flows[0]};
  EXPECT_THROW(allocate_rates(fx.topo, ptrs), std::logic_error);
}

TEST(Waterfill, RejectsEmptyPath) {
  LineFixture fx;
  std::vector<SimFlow> flows = {make_flow(0, {})};
  std::vector<SimFlow*> ptrs = {&flows[0]};
  EXPECT_THROW(allocate_rates(fx.topo, ptrs), std::logic_error);
}

TEST(Waterfill, EmptyGroupIsNoop) {
  LineFixture fx;
  std::vector<SimFlow*> ptrs;
  EXPECT_NO_THROW(allocate_rates(fx.topo, ptrs));
}

TEST(Waterfill, PureFunctionOfFlowSet) {
  // The allocation depends only on the flow *set* and the capacities, not
  // on the order flows are presented in: components are solved over a
  // (tier, id)-sorted copy, so any permutation yields bitwise equal rates.
  const FatTree ft(FatTree::Config{4, 100.0});
  const EcmpRouter router(ft, 3);
  auto make_population = [&] {
    std::vector<SimFlow> flows;
    for (std::uint64_t i = 0; i < 24; ++i) {
      const int src = static_cast<int>(i % 16);
      const int dst = static_cast<int>((i * 7 + 5) % 16);
      if (src == dst) continue;
      flows.push_back(make_flow(i, router.route(FlowId{i}, src, dst),
                                static_cast<Tier>(i % 3),
                                1.0 + static_cast<double>(i % 5)));
    }
    return flows;
  };
  std::vector<SimFlow> forward = make_population();
  std::vector<SimFlow> backward = make_population();
  std::vector<SimFlow*> fwd, bwd;
  for (auto& f : forward) fwd.push_back(&f);
  for (auto it = backward.rbegin(); it != backward.rend(); ++it)
    bwd.push_back(&*it);
  allocate_rates(ft.topology(), fwd);
  allocate_rates(ft.topology(), bwd);
  for (std::size_t i = 0; i < forward.size(); ++i)
    EXPECT_EQ(forward[i].rate, backward[i].rate) << "flow " << i;
}

// Property sweep: random flows on a fat-tree; check capacity, non-negative
// rates, and that no unfrozen flow could be raised (max-min optimality
// witness: every flow has at least one saturated link on its path).
class AllocatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorProperty, SaturatedBottleneckPerFlow) {
  Rng rng(GetParam());
  const FatTree ft(FatTree::Config{4, 100.0});
  const EcmpRouter router(ft, GetParam());
  std::vector<SimFlow> flows;
  const int n = 3 + static_cast<int>(rng.uniform_int(0, 25));
  for (int i = 0; i < n; ++i) {
    const int src = static_cast<int>(rng.uniform_int(0, 15));
    int dst = static_cast<int>(rng.uniform_int(0, 15));
    if (dst == src) dst = (dst + 1) % 16;
    flows.push_back(make_flow(static_cast<std::uint64_t>(i),
                              router.route(FlowId{static_cast<std::uint64_t>(i)}, src, dst),
                              static_cast<Tier>(rng.uniform_int(0, 2)),
                              rng.uniform(0.1, 5.0)));
  }
  std::vector<SimFlow*> ptrs;
  for (auto& f : flows) ptrs.push_back(&f);
  allocate_rates(ft.topology(), ptrs);

  // Capacity respected on every link.
  for (std::size_t l = 0; l < ft.topology().link_count(); ++l)
    EXPECT_LE(sum_rate_on(flows, LinkId{l}),
              ft.topology().link(LinkId{l}).capacity * (1 + 1e-9));

  // Each flow with a positive rate has a nearly-saturated link on its path
  // (otherwise its rate could grow: not max-min).
  for (const SimFlow& f : flows) {
    EXPECT_GE(f.rate, 0.0);
    bool saturated = false;
    for (LinkId l : f.path) {
      const double used = sum_rate_on(flows, l);
      if (used >= ft.topology().link(l).capacity * (1 - 1e-6))
        saturated = true;
    }
    EXPECT_TRUE(saturated) << "flow " << f.id << " could be raised";
  }
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, AllocatorProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace gurita
