// Tests for the Varys/SEBF clairvoyant baseline.
#include <gtest/gtest.h>

#include "flowsim/simulator.h"
#include "sched/varys.h"
#include "topology/fattree.h"

namespace gurita {
namespace {

SimFlow flow_between(std::uint64_t id, int src, int dst, Bytes remaining) {
  SimFlow f;
  f.id = FlowId{id};
  f.src_host = src;
  f.dst_host = dst;
  f.size = remaining;
  f.remaining = remaining;
  return f;
}

TEST(VarysBottleneck, SingleFlow) {
  const SimFlow f = flow_between(0, 0, 1, 100.0);
  EXPECT_DOUBLE_EQ(VarysScheduler::bottleneck_bytes({&f}, 0.0), 100.0);
}

TEST(VarysBottleneck, SharedSenderPortAggregates) {
  const SimFlow a = flow_between(0, 0, 1, 100.0);
  const SimFlow b = flow_between(1, 0, 2, 150.0);
  // Both leave host 0: its egress carries 250.
  EXPECT_DOUBLE_EQ(VarysScheduler::bottleneck_bytes({&a, &b}, 0.0), 250.0);
}

TEST(VarysBottleneck, SharedReceiverPortAggregates) {
  const SimFlow a = flow_between(0, 1, 0, 100.0);
  const SimFlow b = flow_between(1, 2, 0, 150.0);
  EXPECT_DOUBLE_EQ(VarysScheduler::bottleneck_bytes({&a, &b}, 0.0), 250.0);
}

TEST(VarysBottleneck, DisjointPortsTakeMax) {
  const SimFlow a = flow_between(0, 0, 1, 100.0);
  const SimFlow b = flow_between(1, 2, 3, 60.0);
  EXPECT_DOUBLE_EQ(VarysScheduler::bottleneck_bytes({&a, &b}, 0.0), 100.0);
}

class VarysFixture : public ::testing::Test {
 protected:
  VarysFixture() : fabric_(FatTree::Config{4, 100.0}) {}
  FatTree fabric_;
};

JobSpec one_flow_job(Bytes size, int src, int dst, Time arrival = 0) {
  JobSpec job;
  job.arrival_time = arrival;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{src, dst, size});
  job.coflows.push_back(c);
  job.deps = {{}};
  return job;
}

TEST_F(VarysFixture, SmallestBottleneckRunsFirst) {
  VarysScheduler::Config config;
  config.port_rate = 100.0;
  VarysScheduler varys(config);
  Simulator sim(fabric_, varys);
  sim.submit(one_flow_job(300.0, 0, 1));  // Γ = 3 s
  sim.submit(one_flow_job(100.0, 0, 1));  // Γ = 1 s: first
  const SimResults r = sim.run();
  EXPECT_NEAR(r.jobs[1].finish, 1.0, 1e-9);
  EXPECT_NEAR(r.jobs[0].finish, 4.0, 1e-9);
}

TEST_F(VarysFixture, RemainingBytesDrivePreemption) {
  // An almost-done elephant outranks a fresh mouse with more remaining.
  VarysScheduler varys;
  Simulator sim(fabric_, varys);
  sim.submit(one_flow_job(200.0, 0, 1, 0.0));
  sim.submit(one_flow_job(150.0, 0, 1, 1.2));  // elephant has 80 left then
  const SimResults r = sim.run();
  // Elephant keeps the link (smaller remaining Γ): finishes at 2.0.
  EXPECT_NEAR(r.jobs[0].finish, 2.0, 1e-6);
  EXPECT_NEAR(r.jobs[1].finish, 3.5, 1e-6);
}

TEST_F(VarysFixture, CompletesMultiStageWorkload) {
  VarysScheduler varys;
  Simulator sim(fabric_, varys);
  for (int i = 0; i < 6; ++i) {
    JobSpec job;
    CoflowSpec c1, c2;
    c1.flows.push_back(FlowSpec{i, i + 8, 100.0 + 25.0 * i});
    c2.flows.push_back(FlowSpec{i + 8, (i + 1) % 8, 50.0});
    job.coflows = {c1, c2};
    job.deps = {{}, {0}};
    job.arrival_time = 0.1 * i;
    sim.submit(job);
  }
  const SimResults r = sim.run();
  EXPECT_EQ(r.jobs.size(), 6u);
  for (const auto& j : r.jobs) EXPECT_GT(j.jct(), 0.0);
}

}  // namespace
}  // namespace gurita
