// Tests for the synthetic trace generator and benchmark DAG structures:
// validity of every generated job, determinism, category coverage, arrival
// patterns and structure templates.
#include <gtest/gtest.h>

#include <set>

#include "coflow/critical_path.h"
#include "metrics/category.h"
#include "workload/trace_gen.h"

namespace gurita {
namespace {

TraceConfig small_config() {
  TraceConfig config;
  config.num_jobs = 60;
  config.num_hosts = 128;
  config.seed = 11;
  return config;
}

TEST(Structures, TpcDsQuery42Shape) {
  const auto deps = tpcds_q42_deps();
  EXPECT_EQ(deps.size(), 7u);
  EXPECT_EQ(shapes::depth_of(deps), 5);  // production average depth
  // Three scans are leaves.
  int leaves = 0;
  for (const auto& d : deps)
    if (d.empty()) ++leaves;
  EXPECT_EQ(leaves, 3);
}

TEST(Structures, FbTaoShape) {
  const auto deps = fb_tao_deps();
  EXPECT_EQ(deps.size(), 7u);
  EXPECT_EQ(shapes::depth_of(deps), 3);  // wide and shallow
  int leaves = 0;
  for (const auto& d : deps)
    if (d.empty()) ++leaves;
  EXPECT_EQ(leaves, 4);
}

TEST(Structures, StringRoundTrip) {
  EXPECT_EQ(structure_from_string("tpcds"), StructureKind::kTpcDs);
  EXPECT_EQ(structure_from_string("fbtao"), StructureKind::kFbTao);
  EXPECT_EQ(structure_from_string("mixed"), StructureKind::kMixed);
  EXPECT_STREQ(to_string(StructureKind::kTpcDs), "tpcds");
  EXPECT_THROW(structure_from_string("nope"), std::logic_error);
}

TEST(Structures, MixedDrawsAreValidDags) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto deps = mixed_deps(rng);
    EXPECT_GE(deps.size(), 1u);
    EXPECT_NO_THROW(shapes::depth_of(deps));
  }
}

TEST(Structures, MixedFavorsTrees) {
  // The Microsoft study's headline number: ~40% of jobs are trees. A tree
  // here shows up as every internal node having exactly 2 deps and one
  // root; rather than classify, check the depth distribution is diverse.
  Rng rng(5);
  std::set<int> depths;
  for (int i = 0; i < 300; ++i) depths.insert(shapes::depth_of(mixed_deps(rng)));
  EXPECT_GE(depths.size(), 4u);  // singles, chains, trees, deep chains...
}

TEST(TraceGen, EveryJobValidates) {
  const auto jobs = generate_trace(small_config());
  ASSERT_EQ(jobs.size(), 60u);
  for (const auto& job : jobs)
    EXPECT_NO_THROW(validate(job, 128));
}

TEST(TraceGen, DeterministicForSeed) {
  const auto a = generate_trace(small_config());
  const auto b = generate_trace(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_time, b[i].arrival_time);
    EXPECT_DOUBLE_EQ(a[i].total_bytes(), b[i].total_bytes());
    EXPECT_EQ(a[i].coflows.size(), b[i].coflows.size());
  }
}

TEST(TraceGen, DifferentSeedsDiffer) {
  TraceConfig other = small_config();
  other.seed = 12;
  const auto a = generate_trace(small_config());
  const auto b = generate_trace(other);
  int identical = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].total_bytes() == b[i].total_bytes()) ++identical;
  EXPECT_LT(identical, 5);
}

TEST(TraceGen, ArrivalsSortedAndPoissonSpaced) {
  const auto jobs = generate_trace(small_config());
  double prev = 0;
  for (const auto& job : jobs) {
    EXPECT_GE(job.arrival_time, prev);
    prev = job.arrival_time;
  }
  // Mean inter-arrival should be in the ballpark of the configured mean.
  const double mean = jobs.back().arrival_time / static_cast<double>(jobs.size());
  EXPECT_GT(mean, small_config().mean_interarrival * 0.5);
  EXPECT_LT(mean, small_config().mean_interarrival * 2.0);
}

TEST(TraceGen, BurstyArrivalsComeInBatches) {
  TraceConfig config = small_config();
  config.arrivals = ArrivalPattern::kBursty;
  config.burst_size = 10;
  config.burst_spacing = 2e-6;
  config.burst_gap = 1.0;
  config.num_jobs = 30;
  const auto jobs = generate_trace(config);
  // Jobs 0..9 within ~20µs, then a >= 1 s gap before job 10.
  EXPECT_LT(jobs[9].arrival_time - jobs[0].arrival_time, 1e-4);
  EXPECT_GE(jobs[10].arrival_time - jobs[9].arrival_time, 0.9);
}

TEST(TraceGen, CategoryMixCoversAllSeven) {
  TraceConfig config = small_config();
  config.num_jobs = 600;
  const auto jobs = generate_trace(config);
  std::set<int> seen;
  for (const auto& job : jobs) seen.insert(category_of(job.total_bytes()));
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumCategories));
}

TEST(TraceGen, CategoryWeightsRespected) {
  TraceConfig config = small_config();
  config.num_jobs = 400;
  config.category_weights = {1, 0, 0, 0, 0, 0, 0};  // everything category I
  const auto jobs = generate_trace(config);
  for (const auto& job : jobs)
    EXPECT_EQ(category_of(job.total_bytes()), 0);
}

TEST(TraceGen, StructureKindHonored) {
  TraceConfig config = small_config();
  config.structure = StructureKind::kTpcDs;
  config.num_jobs = 10;
  const auto jobs = generate_trace(config);
  for (const auto& job : jobs) {
    EXPECT_EQ(job.coflows.size(), 7u);
    EXPECT_EQ(stage_count(job), 5);
  }
}

TEST(TraceGen, WidthsWithinCap) {
  TraceConfig config = small_config();
  config.max_width = 16;
  config.num_jobs = 100;
  const auto jobs = generate_trace(config);
  for (const auto& job : jobs)
    for (const auto& c : job.coflows) {
      EXPECT_GE(c.width(), 1u);
      EXPECT_LE(c.width(), 16u);
    }
}

TEST(TraceGen, OnAndOffJobsExist) {
  // Per-stage byte skew: some multi-coflow jobs should have a >= 4x spread
  // between their largest and smallest coflow (the "on-and-off" profile).
  TraceConfig config = small_config();
  config.num_jobs = 200;
  const auto jobs = generate_trace(config);
  int skewed = 0;
  for (const auto& job : jobs) {
    if (job.coflows.size() < 2) continue;
    Bytes lo = job.coflows[0].total_bytes(), hi = lo;
    for (const auto& c : job.coflows) {
      lo = std::min(lo, c.total_bytes());
      hi = std::max(hi, c.total_bytes());
    }
    if (hi > 4 * lo) ++skewed;
  }
  EXPECT_GT(skewed, 20);
}

TEST(TraceGen, RejectsBadConfig) {
  TraceConfig config = small_config();
  config.num_jobs = 0;
  EXPECT_THROW(generate_trace(config), std::logic_error);
  config = small_config();
  config.num_hosts = 1;
  EXPECT_THROW(generate_trace(config), std::logic_error);
  config = small_config();
  config.category_weights = {1.0};
  EXPECT_THROW(generate_trace(config), std::logic_error);
}

TEST(TraceGen, ArrivalPatternNames) {
  EXPECT_STREQ(to_string(ArrivalPattern::kPoisson), "poisson");
  EXPECT_STREQ(to_string(ArrivalPattern::kBursty), "bursty");
}

class TraceGenSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceGenSeeds, AlwaysValidAcrossSeeds) {
  TraceConfig config = small_config();
  config.seed = GetParam();
  config.num_jobs = 40;
  config.structure = GetParam() % 2 == 0 ? StructureKind::kMixed
                                         : StructureKind::kFbTao;
  const auto jobs = generate_trace(config);
  for (const auto& job : jobs) {
    EXPECT_NO_THROW(validate(job, config.num_hosts));
    EXPECT_GT(jct_lower_bound(job, gbps(10.0)), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, TraceGenSeeds,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace gurita
