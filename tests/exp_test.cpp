// Tests for the experiment-harness utilities: the flag parser, the
// per-job speedup metric and scenario plumbing.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "exp/args.h"
#include "exp/experiment.h"
#include "fault/fault.h"
#include "metrics/collector.h"

namespace gurita {
namespace {

// ------------------------------------------------------------------- Args

Args parse(std::vector<std::string> tokens) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(tokens);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) argv.push_back(s.data());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, ParsesKeyValuePairs) {
  const Args args = parse({"--jobs", "300", "--seed", "9", "--name", "x"});
  EXPECT_EQ(args.get_int("jobs", 0), 300);
  EXPECT_EQ(args.get_u64("seed", 0), 9u);
  EXPECT_EQ(args.get_string("name", ""), "x");
  EXPECT_TRUE(args.has("jobs"));
  EXPECT_FALSE(args.has("missing"));
}

TEST(Args, FallbacksWhenAbsent) {
  const Args args = parse({});
  EXPECT_EQ(args.get_int("jobs", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 1.5), 1.5);
  EXPECT_EQ(args.get_string("name", "dflt"), "dflt");
}

TEST(Args, ParsesDoubles) {
  const Args args = parse({"--rate", "2.75"});
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0), 2.75);
}

TEST(Args, BareFlagIsBoolean) {
  const Args args = parse({"--profile", "--trace", "out.jsonl"});
  EXPECT_TRUE(args.has("profile"));
  EXPECT_TRUE(args.get_bool("profile", false));
  EXPECT_EQ(args.get_string("trace", ""), "out.jsonl");
}

TEST(Args, TrailingBareFlagIsBoolean) {
  const Args args = parse({"--trace", "out.jsonl", "--profile"});
  EXPECT_TRUE(args.get_bool("profile", false));
}

TEST(Args, GetBoolParsesExplicitValues) {
  EXPECT_TRUE(parse({"--profile", "true"}).get_bool("profile", false));
  EXPECT_TRUE(parse({"--profile", "1"}).get_bool("profile", false));
  EXPECT_FALSE(parse({"--profile", "false"}).get_bool("profile", true));
  EXPECT_FALSE(parse({"--profile", "0"}).get_bool("profile", true));
  EXPECT_TRUE(parse({}).get_bool("profile", true));
  EXPECT_FALSE(parse({}).get_bool("profile", false));
  EXPECT_THROW(parse({"--profile", "yep"}).get_bool("profile", false),
               std::logic_error);
}

TEST(Args, RejectsPositionalArgument) {
  EXPECT_THROW(parse({"300"}), std::logic_error);
}

TEST(Args, RejectsDuplicateFlags) {
  // Last-write-wins is a silent trap in long sweep invocations; every
  // repeated flag is reported in one aggregated ConfigError.
  try {
    parse({"--jobs", "1", "--jobs", "2", "--seed", "7", "--seed", "8",
           "--num-jobs", "10"});
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    ASSERT_EQ(e.issues().size(), 2u);
    EXPECT_EQ(e.issues()[0].where, "--jobs");
    EXPECT_EQ(e.issues()[1].where, "--seed");
    EXPECT_NE(std::string(e.what()).find("--jobs"), std::string::npos);
  }
}

// ------------------------------------------------- strict token parsing

TEST(StrictParse, AcceptsFullTokens) {
  EXPECT_EQ(parse_int_strict("42"), 42);
  EXPECT_EQ(parse_int_strict("-7"), -7);
  EXPECT_EQ(parse_u64_strict("18446744073709551615"),
            18446744073709551615ULL);
  EXPECT_DOUBLE_EQ(parse_double_strict("2.5e3"), 2500.0);
}

TEST(StrictParse, RejectsTrailingGarbage) {
  // std::stoi("4x8") returns 4 — the historic bug that made --jobs-list
  // silently run a different worker count than asked.
  EXPECT_THROW(parse_int_strict("4x8"), std::invalid_argument);
  EXPECT_THROW(parse_int_strict("7 "), std::invalid_argument);
  EXPECT_THROW(parse_int_strict(""), std::invalid_argument);
  EXPECT_THROW(parse_double_strict("1.5.2"), std::invalid_argument);
  EXPECT_THROW(parse_u64_strict("9beta"), std::invalid_argument);
}

TEST(StrictParse, U64RejectsNegatives) {
  // stoull wraps "-1" to 2^64-1 instead of failing.
  EXPECT_THROW(parse_u64_strict("-1"), std::invalid_argument);
}

TEST(StrictParse, ErrorNamesOffendingToken) {
  try {
    parse_int_strict("4x8");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("4x8"), std::string::npos);
  }
}

TEST(ParseIntList, ParsesValidLists) {
  EXPECT_EQ(parse_int_list("1,2,8"), (std::vector<int>{1, 2, 8}));
  EXPECT_EQ(parse_int_list("5"), (std::vector<int>{5}));
}

TEST(ParseIntList, LateBadTokenNamesItselfAndShipsNothing) {
  // The old bench parser cleared the validated prefix on a late bad token
  // and then reported "expects positive counts" against the whole list.
  try {
    parse_int_list("1,2,4x8");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("4x8"), std::string::npos);
  }
  EXPECT_THROW(parse_int_list(""), std::invalid_argument);
  EXPECT_THROW(parse_int_list("1,,2"), std::invalid_argument);
  EXPECT_THROW(parse_int_list("1,2,"), std::invalid_argument);
}

TEST(Args, GetIntRejectsTrailingGarbageNamingTheFlag) {
  const Args args = parse({"--jobs", "4x8"});
  try {
    args.get_int("jobs", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--jobs"), std::string::npos);
    EXPECT_NE(what.find("4x8"), std::string::npos);
  }
}

TEST(Args, KeysWithPrefix) {
  const Args args =
      parse({"--fault-horizon", "2", "--faults", "--fault-downtime", "0.5"});
  const std::vector<std::string> keys = args.keys_with_prefix("fault-");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "fault-downtime");
  EXPECT_EQ(keys[1], "fault-horizon");
}

TEST(Args, FaultFlagsRejectUnknownNames) {
  // A typo like --fault-host-rat must not silently run with default rates.
  const Args args = parse({"--fault-host-rat", "0.5", "--fault-horizn", "2"});
  ExperimentConfig config;
  try {
    apply_fault_flags(args, config);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    ASSERT_EQ(e.issues().size(), 2u);
    EXPECT_EQ(e.issues()[0].where, "--fault-horizn");
    EXPECT_EQ(e.issues()[1].where, "--fault-host-rat");
  }
  EXPECT_FALSE(config.faults.enabled);
}

TEST(Args, FaultFlagsStillApplyKnownNames) {
  const Args args = parse({"--fault-horizon", "2.5", "--fault-downtime", "1"});
  ExperimentConfig config;
  apply_fault_flags(args, config);
  EXPECT_TRUE(config.faults.enabled);
  EXPECT_DOUBLE_EQ(config.faults.plan.horizon, 2.5);
  EXPECT_DOUBLE_EQ(config.faults.plan.mean_downtime, 1.0);
}

TEST(Args, CheckpointFlagsApply) {
  const Args args = parse({"--checkpoint-every", "0.25", "--checkpoint-dir",
                           "ckpts", "--checkpoint-halt-after", "3"});
  ExperimentConfig config;
  apply_checkpoint_flags(args, config);
  EXPECT_DOUBLE_EQ(config.checkpoint.every, 0.25);
  EXPECT_EQ(config.checkpoint.dir, "ckpts");
  EXPECT_FALSE(config.checkpoint.resume);
  EXPECT_EQ(config.checkpoint.halt_after, 3);
  EXPECT_TRUE(config.checkpoint.active());
}

TEST(Args, ResumeFromImpliesDirAndResume) {
  const Args args = parse({"--resume-from", "ckpts"});
  ExperimentConfig config;
  apply_checkpoint_flags(args, config);
  EXPECT_EQ(config.checkpoint.dir, "ckpts");
  EXPECT_TRUE(config.checkpoint.resume);
}

TEST(Args, CheckpointFlagsAbsentLeaveConfigUntouched) {
  const Args args = parse({"--num-jobs", "10"});
  ExperimentConfig config;
  apply_checkpoint_flags(args, config);
  EXPECT_FALSE(config.checkpoint.active());
  EXPECT_FALSE(config.checkpoint.resume);
}

TEST(Args, CheckpointFlagsAggregateProblems) {
  const Args args = parse({"--checkpoint-every", "-1", "--checkpoint-halt-after",
                           "0"});
  ExperimentConfig config;
  try {
    apply_checkpoint_flags(args, config);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    // Non-positive cadence and non-positive halt count, reported together.
    EXPECT_EQ(e.issues().size(), 2u);
  }
}

TEST(Args, CheckpointFlagsRejectUnknownNames) {
  const Args args = parse({"--checkpoint-evry", "1"});
  ExperimentConfig config;
  EXPECT_THROW(apply_checkpoint_flags(args, config), ConfigError);
}

TEST(Args, ResumeFromConflictingDirRejected) {
  const Args args =
      parse({"--resume-from", "a", "--checkpoint-dir", "b"});
  ExperimentConfig config;
  EXPECT_THROW(apply_checkpoint_flags(args, config), ConfigError);
}

// --------------------------------------------------------- per-job speedup

SimResults make_results(std::vector<std::pair<Bytes, double>> size_jct) {
  SimResults r;
  std::uint64_t id = 0;
  for (const auto& [bytes, jct] : size_jct) {
    SimResults::JobResult j;
    j.id = JobId{id++};
    j.arrival = 0;
    j.finish = jct;
    j.total_bytes = bytes;
    r.jobs.push_back(j);
  }
  return r;
}

TEST(PerJobSpeedup, AveragesRatios) {
  const SimResults ref = make_results({{10 * kMB, 1.0}, {10 * kMB, 2.0}});
  const SimResults oth = make_results({{10 * kMB, 3.0}, {10 * kMB, 2.0}});
  // Ratios: 3.0 and 1.0 -> mean 2.0.
  EXPECT_DOUBLE_EQ(mean_per_job_speedup(ref, oth), 2.0);
}

TEST(PerJobSpeedup, FiltersByCategory) {
  const SimResults ref = make_results({{10 * kMB, 1.0}, {2 * kGB, 10.0}});
  const SimResults oth = make_results({{10 * kMB, 5.0}, {2 * kGB, 10.0}});
  EXPECT_DOUBLE_EQ(mean_per_job_speedup(ref, oth, 0), 5.0);
  EXPECT_DOUBLE_EQ(mean_per_job_speedup(ref, oth, 2), 1.0);
  EXPECT_DOUBLE_EQ(mean_per_job_speedup(ref, oth, 6), 0.0);  // empty
}

TEST(PerJobSpeedup, GiantJobsDoNotDominate) {
  // One giant unchanged job + many 4x-faster small jobs: the ratio of
  // averages stays ~1, the per-job mean shows ~3.4x.
  std::vector<std::pair<Bytes, double>> ref_jobs, oth_jobs;
  ref_jobs.emplace_back(2 * kTB, 1000.0);
  oth_jobs.emplace_back(2 * kTB, 1000.0);
  for (int i = 0; i < 9; ++i) {
    ref_jobs.emplace_back(10 * kMB, 1.0);
    oth_jobs.emplace_back(10 * kMB, 4.0);
  }
  const SimResults ref = make_results(ref_jobs);
  const SimResults oth = make_results(oth_jobs);

  JctCollector cref, coth;
  cref.add(ref);
  coth.add(oth);
  EXPECT_LT(improvement_factor(cref, coth), 1.05);
  EXPECT_NEAR(mean_per_job_speedup(ref, oth), 3.7, 0.01);
}

TEST(PerJobSpeedup, RejectsMismatchedPopulations) {
  const SimResults ref = make_results({{10 * kMB, 1.0}});
  const SimResults oth = make_results({{10 * kMB, 1.0}, {10 * kMB, 2.0}});
  EXPECT_THROW(mean_per_job_speedup(ref, oth), std::logic_error);
}

}  // namespace
}  // namespace gurita
