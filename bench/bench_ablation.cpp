// Ablation bench — the design choices DESIGN.md calls out, each toggled on
// the same trace workload:
//
//   * rule 4 (critical-path discount) on/off,
//   * starvation mitigation (WRR emulation) vs pure SPQ,
//   * HR update interval δ sweep (coordination staleness),
//   * priority-queue count (the paper uses 4, notes switches offer 8),
//   * ε variant: continuous vs the paper's literal d>=1 branch.
//
//   ./bench_ablation [--jobs 250] [--seed 7]
#include <iostream>

#include "core/gurita.h"
#include "exp/args.h"
#include "exp/experiment.h"
#include "metrics/report.h"

namespace gurita {
namespace {

double run_gurita(const ExperimentConfig& config,
                  const std::vector<JobSpec>& jobs,
                  const GuritaScheduler::Config& gc) {
  GuritaScheduler gurita(gc);
  return run_one(config, jobs, gurita).average_jct();
}

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  const int jobs_n = args.get_int("jobs", 250);
  const std::uint64_t seed = args.get_u64("seed", 7);

  ExperimentConfig config = trace_scenario(StructureKind::kTpcDs, jobs_n, seed);
  const FatTree fabric(FatTree::Config{config.fat_tree_k, config.link_capacity});
  TraceConfig trace = config.trace;
  trace.num_hosts = fabric.num_hosts();
  const std::vector<JobSpec> jobs = generate_trace(trace);

  std::cout << "=== Ablation: Gurita design choices (avg JCT in seconds; "
               "lower is better) ===\n\n";

  const GuritaScheduler::Config base;
  TextTable t({"variant", "avg JCT(s)", "vs default"});
  const double base_jct = run_gurita(config, jobs, base);
  t.add_row({"default (4 queues, CP on, WRR on, delta=8ms)",
             TextTable::num(base_jct), "1.000"});

  auto add = [&](const std::string& name, GuritaScheduler::Config gc) {
    const double jct = run_gurita(config, jobs, gc);
    t.add_row({name, TextTable::num(jct), TextTable::num(jct / base_jct)});
  };

  {
    GuritaScheduler::Config gc = base;
    gc.use_critical_path = false;
    add("rule 4 off (no critical-path discount)", gc);
  }
  {
    GuritaScheduler::Config gc = base;
    gc.starvation_mitigation = false;
    add("pure SPQ (no WRR starvation mitigation)", gc);
  }
  for (const double delta_ms : {1.0, 4.0, 20.0, 80.0}) {
    GuritaScheduler::Config gc = base;
    gc.delta = delta_ms * kMillisecond;
    add("delta = " + TextTable::num(delta_ms) + " ms", gc);
  }
  for (const int queues : {2, 8}) {
    GuritaScheduler::Config gc = base;
    gc.queues = queues;
    add("queues = " + std::to_string(queues), gc);
  }
  {
    GuritaScheduler::Config gc = base;
    gc.paper_literal_epsilon = true;
    add("paper-literal epsilon branch", gc);
  }
  {
    GuritaScheduler::Config gc = base;
    gc.beta = 0.1;
    add("beta = 0.1 (weak critical-path discount)", gc);
  }
  {
    GuritaScheduler::Config gc = base;
    gc.gamma = 0.75;
    add("gamma = 0.75 (weak skew adjustment)", gc);
  }
  {
    GuritaScheduler::Config gc = base;
    gc.adaptive_thresholds = true;
    add("adaptive (quantile-learned) thresholds", gc);
  }

  std::cout << t.to_string() << std::endl;
  return 0;
}
