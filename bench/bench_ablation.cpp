// Ablation bench — the design choices DESIGN.md calls out, each toggled on
// the same trace workload:
//
//   * rule 4 (critical-path discount) on/off,
//   * starvation mitigation (WRR emulation) vs pure SPQ,
//   * HR update interval δ sweep (coordination staleness),
//   * priority-queue count (the paper uses 4, notes switches offer 8),
//   * ε variant: continuous vs the paper's literal d>=1 branch.
//
// Every variant replays the identical job set, so the variants are
// independent runs the parallel runner can shard (--jobs N; the printed
// table is identical at any N).
//
//   ./bench_ablation [--num-jobs 250] [--seed 7] [--jobs N]
#include <iostream>

#include "core/gurita.h"
#include "exp/args.h"
#include "exp/experiment.h"
#include "exp/runner.h"
#include "metrics/report.h"

namespace gurita {
namespace {

struct Variant {
  std::string name;
  GuritaScheduler::Config config;
};

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  apply_log_level(args);
  const int num_jobs = args.get_int("num-jobs", 250);
  const std::uint64_t seed = args.get_u64("seed", 7);
  const int jobs = resolve_jobs(args);

  ExperimentConfig config =
      trace_scenario(StructureKind::kTpcDs, num_jobs, seed);
  const FatTree fabric(FatTree::Config{config.fat_tree_k, config.link_capacity});
  TraceConfig trace = config.trace;
  trace.num_hosts = fabric.num_hosts();
  const std::vector<JobSpec> workload = generate_trace(trace);

  const GuritaScheduler::Config base;
  std::vector<Variant> variants;
  variants.push_back({"default (4 queues, CP on, WRR on, delta=8ms)", base});
  {
    GuritaScheduler::Config gc = base;
    gc.use_critical_path = false;
    variants.push_back({"rule 4 off (no critical-path discount)", gc});
  }
  {
    GuritaScheduler::Config gc = base;
    gc.starvation_mitigation = false;
    variants.push_back({"pure SPQ (no WRR starvation mitigation)", gc});
  }
  for (const double delta_ms : {1.0, 4.0, 20.0, 80.0}) {
    GuritaScheduler::Config gc = base;
    gc.delta = delta_ms * kMillisecond;
    variants.push_back({"delta = " + TextTable::num(delta_ms) + " ms", gc});
  }
  for (const int queues : {2, 8}) {
    GuritaScheduler::Config gc = base;
    gc.queues = queues;
    variants.push_back({"queues = " + std::to_string(queues), gc});
  }
  {
    GuritaScheduler::Config gc = base;
    gc.paper_literal_epsilon = true;
    variants.push_back({"paper-literal epsilon branch", gc});
  }
  {
    GuritaScheduler::Config gc = base;
    gc.beta = 0.1;
    variants.push_back({"beta = 0.1 (weak critical-path discount)", gc});
  }
  {
    GuritaScheduler::Config gc = base;
    gc.gamma = 0.75;
    variants.push_back({"gamma = 0.75 (weak skew adjustment)", gc});
  }
  {
    GuritaScheduler::Config gc = base;
    gc.adaptive_thresholds = true;
    variants.push_back({"adaptive (quantile-learned) thresholds", gc});
  }

  // Each variant is self-contained (own scheduler, fresh fabric inside
  // run_one); results land in their variant's slot, so the table below is
  // independent of scheduling order.
  std::vector<double> avg_jct(variants.size(), 0.0);
  run_sharded(variants.size(), jobs, [&](std::size_t i) {
    GuritaScheduler gurita(variants[i].config);
    avg_jct[i] = run_one(config, workload, gurita).average_jct();
  });

  std::cout << "=== Ablation: Gurita design choices (avg JCT in seconds; "
               "lower is better) ===\n\n";
  const double base_jct = avg_jct[0];
  TextTable t({"variant", "avg JCT(s)", "vs default"});
  t.add_row({variants[0].name, TextTable::num(base_jct), "1.000"});
  for (std::size_t i = 1; i < variants.size(); ++i)
    t.add_row({variants[i].name, TextTable::num(avg_jct[i]),
               TextTable::num(avg_jct[i] / base_jct)});
  std::cout << t.to_string() << std::endl;
  return 0;
}
