// Figure 6 — trace-driven scenario: average JCT improvement of Gurita over
// {Baraat, PFS, Stream, Aalo} in the seven Table-1 job-size categories, on
// an 8-pod fat-tree with (a) FB-Tao and (b) TPC-DS DAG structures.
//
// Paper shape to reproduce: Gurita wins across categories, with the largest
// gains for small jobs (categories I-II: up to 8.5x vs PFS, 5x vs Baraat,
// 4x vs Stream) and parity with centralized Aalo.
//
//   ./bench_fig6 [--num-jobs 300] [--seed 7] [--jobs N]
#include <iostream>

#include "exp/args.h"
#include "exp/experiment.h"
#include "exp/runner.h"
#include "metrics/report.h"

namespace gurita {
namespace {

const std::vector<std::string> kOthers = {"baraat", "pfs", "stream", "aalo"};

void print_panel(const std::string& title, const ComparisonResult& result,
                 int num_jobs, std::uint64_t seed) {
  std::cout << title << "  (jobs=" << num_jobs << ", seed=" << seed << ")\n";
  std::cout << category_panel(
                   result.collectors.at("gurita"), "gurita JCT(s)",
                   {"vs baraat", "vs pfs", "vs stream", "vs aalo"},
                   [&](int cat) {
                     std::vector<std::string> cols;
                     for (const std::string& other : kOthers)
                       cols.push_back(TextTable::num(
                           result.improvement("gurita", other, cat)));
                     return cols;
                   })
            << "\n";
}

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  apply_log_level(args);
  const int num_jobs = args.get_int("num-jobs", 300);
  const std::uint64_t seed = args.get_u64("seed", 7);
  const int jobs = resolve_jobs(args);

  std::vector<std::string> all = kOthers;
  all.push_back("gurita");
  std::vector<ExperimentRun> runs;
  runs.push_back({"Fig 6(a): FB-Tao structure",
                  trace_scenario(StructureKind::kFbTao, num_jobs, seed), all});
  runs.push_back({"Fig 6(b): TPC-DS structure",
                  trace_scenario(StructureKind::kTpcDs, num_jobs, seed), all});
  const std::vector<ComparisonResult> results = run_matrix(runs, jobs);

  std::cout << "=== Figure 6: per-category improvement, trace-driven "
               "(improvement > 1 means Gurita faster) ===\n\n";
  for (std::size_t i = 0; i < runs.size(); ++i)
    print_panel(runs[i].label, results[i], num_jobs, seed);
  return 0;
}
