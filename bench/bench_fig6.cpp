// Figure 6 — trace-driven scenario: average JCT improvement of Gurita over
// {Baraat, PFS, Stream, Aalo} in the seven Table-1 job-size categories, on
// an 8-pod fat-tree with (a) FB-Tao and (b) TPC-DS DAG structures.
//
// Paper shape to reproduce: Gurita wins across categories, with the largest
// gains for small jobs (categories I-II: up to 8.5x vs PFS, 5x vs Baraat,
// 4x vs Stream) and parity with centralized Aalo.
//
//   ./bench_fig6 [--jobs 300] [--seed 7] [--schedulers pfs,baraat,...]
#include <iostream>

#include "exp/args.h"
#include "exp/experiment.h"
#include "metrics/report.h"

namespace gurita {
namespace {

void run_panel(const char* title, StructureKind structure, int jobs,
               std::uint64_t seed) {
  ExperimentConfig config = trace_scenario(structure, jobs, seed);
  const std::vector<std::string> others = {"baraat", "pfs", "stream", "aalo"};
  std::vector<std::string> all = others;
  all.push_back("gurita");
  const ComparisonResult result = compare_schedulers(config, all);

  std::cout << title << "  (jobs=" << jobs << ", seed=" << seed << ")\n";
  TextTable table({"category", "jobs", "gurita JCT(s)", "vs baraat", "vs pfs",
                   "vs stream", "vs aalo"});
  for (int cat = 0; cat < kNumCategories; ++cat) {
    const auto& g = result.collectors.at("gurita");
    if (g.jobs(cat) == 0) continue;
    std::vector<std::string> row = {category_name(cat),
                                    std::to_string(g.jobs(cat)),
                                    TextTable::num(g.average_jct(cat))};
    for (const std::string& other : others)
      row.push_back(TextTable::num(result.improvement("gurita", other, cat)));
    table.add_row(row);
  }
  std::vector<std::string> overall = {"all",
                                      std::to_string(result.collectors.at("gurita").total_jobs()),
                                      TextTable::num(result.collectors.at("gurita").average_jct())};
  for (const std::string& other : others)
    overall.push_back(TextTable::num(result.improvement("gurita", other)));
  table.add_row(overall);
  std::cout << table.to_string() << "\n";
}

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  const int jobs = args.get_int("jobs", 300);
  const std::uint64_t seed = args.get_u64("seed", 7);

  std::cout << "=== Figure 6: per-category improvement, trace-driven "
               "(improvement > 1 means Gurita faster) ===\n\n";
  run_panel("Fig 6(a): FB-Tao structure", StructureKind::kFbTao, jobs, seed);
  run_panel("Fig 6(b): TPC-DS structure", StructureKind::kTpcDs, jobs, seed);
  return 0;
}
