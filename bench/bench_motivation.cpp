// Motivation examples — Figure 2 and Figure 4 of the paper, replayed
// through the simulator.
//
// Figure 2: multi-stage job A (bytes 10/1/1/1 per stage, scaled x100) vs
// single-stage jobs B, C, D contending with A's later mouse stages. A
// total-bytes-sent scheduler (Stream) parks every A stage behind fresh
// jobs; per-stage scheduling (Gurita) does not — lowering both A's JCT and
// the average (paper: 6.25 -> 5.5 time units in the toy arithmetic).
//
// Figure 4: blocking impact. Job A is wide (3 flows), jobs B/C/D narrow
// (2 flows), equal totals; the paper's idealized multi-machine arithmetic
// gives 4.25 -> 3.50 time units for serving the less-blocking B/C/D
// first. In a shared-link network encoding the two shapes have *equal*
// blocking areas (ℓ_max·n ties), so LBEF correctly treats them alike and
// lands at fair-sharing parity — the discriminating blocking-effect
// behaviour is exercised by the Figure 6/7 benches instead.
#include <iostream>

#include "core/gurita.h"
#include "flowsim/simulator.h"
#include "metrics/report.h"
#include "sched/pfs.h"
#include "sched/stream.h"
#include "topology/fattree.h"

namespace gurita {
namespace {

JobSpec one_flow_job(Bytes size, int src, int dst, Time arrival = 0) {
  JobSpec job;
  job.arrival_time = arrival;
  CoflowSpec c;
  c.flows.push_back(FlowSpec{src, dst, size});
  job.coflows.push_back(c);
  job.deps = {{}};
  return job;
}

GuritaScheduler::Config toy_gurita_config() {
  GuritaScheduler::Config config;
  config.first_threshold = 75.0;
  config.multiplier = 4.0;
  config.delta = 0.1;
  return config;
}

void figure2() {
  const FatTree fabric(FatTree::Config{4, 100.0});
  auto build = [&](Simulator& sim) {
    JobSpec a;
    const Bytes stage_bytes[4] = {1000.0, 100.0, 100.0, 100.0};
    for (int s = 0; s < 4; ++s) {
      CoflowSpec c;
      c.flows.push_back(FlowSpec{s, s + 1, stage_bytes[s]});
      a.coflows.push_back(c);
    }
    a.deps = {{}, {0}, {1}, {2}};
    sim.submit(a);
    sim.submit(one_flow_job(600.0, 1, 2, 9.0));
    sim.submit(one_flow_job(600.0, 2, 3, 10.5));
    sim.submit(one_flow_job(600.0, 3, 4, 12.0));
  };

  StreamScheduler::Config sc;
  sc.queues = 4;
  sc.first_threshold = 150.0;
  sc.multiplier = 4.0;
  sc.update_interval = 0.1;
  StreamScheduler stream(sc);
  Simulator sim_tbs(fabric, stream);
  build(sim_tbs);
  const SimResults tbs = sim_tbs.run();

  GuritaScheduler gurita(toy_gurita_config());
  Simulator sim_stage(fabric, gurita);
  build(sim_stage);
  const SimResults stage = sim_stage.run();

  std::cout << "Figure 2: TBS vs per-stage scheduling on the motivation "
               "workload\n";
  TextTable t({"scheduler", "job A JCT(s)", "avg JCT(s)"});
  t.add_row({"TBS (Stream)", TextTable::num(tbs.jobs[0].jct()),
             TextTable::num(tbs.average_jct())});
  t.add_row({"per-stage (Gurita)", TextTable::num(stage.jobs[0].jct()),
             TextTable::num(stage.average_jct())});
  std::cout << t.to_string() << "\n";
}

void figure4() {
  const FatTree fabric(FatTree::Config{4, 100.0});
  auto build = [&](Simulator& sim) {
    JobSpec a;
    CoflowSpec ca;
    for (int i = 0; i < 3; ++i) ca.flows.push_back(FlowSpec{0, 1, 200.0});
    a.coflows.push_back(ca);
    a.deps = {{}};
    sim.submit(a);
    for (int j = 0; j < 3; ++j) {
      JobSpec b;
      CoflowSpec cb;
      for (int i = 0; i < 2; ++i) cb.flows.push_back(FlowSpec{0, 1, 300.0});
      b.coflows.push_back(cb);
      b.deps = {{}};
      sim.submit(b);
    }
  };

  PfsScheduler pfs;
  Simulator sim_pfs(fabric, pfs);
  build(sim_pfs);
  const SimResults fair = sim_pfs.run();

  GuritaScheduler gurita(toy_gurita_config());
  Simulator sim_lbef(fabric, gurita);
  build(sim_lbef);
  const SimResults lbef = sim_lbef.run();

  std::cout << "Figure 4: blocking impact (wide job A vs narrow B/C/D, "
               "equal totals;\nequal blocking areas => LBEF ~ fair sharing "
               "on this toy — see header comment)\n";
  TextTable t({"scheduler", "job A JCT(s)", "avg JCT(s)"});
  t.add_row({"fair sharing", TextTable::num(fair.jobs[0].jct()),
             TextTable::num(fair.average_jct())});
  t.add_row({"LBEF (Gurita)", TextTable::num(lbef.jobs[0].jct()),
             TextTable::num(lbef.average_jct())});
  std::cout << t.to_string() << "\n";
}

}  // namespace
}  // namespace gurita

int main() {
  std::cout << "=== Motivation examples (paper Figs. 2 and 4) ===\n\n";
  gurita::figure2();
  gurita::figure4();
  return 0;
}
