// Snapshot subsystem benchmark: checkpoint cost, serialize/deserialize
// throughput and snapshot size on a fig5-scale workload — plus a built-in
// correctness check that the checkpointed-and-restored run reproduces the
// uninterrupted run byte for byte.
//
//   ./bench_snapshot [--num-jobs 300] [--seed 7] [--pods 8]
//                    [--scheduler gurita]   # any registry name
//                    [--checkpoints 8]      # snapshots per checkpointed run
//                    [--reps 3]             # wall-clock best-of repetitions
//                    [--guard]              # exit 1 if checkpointing adds
//                                           # > 5% to the run's wall time
//                    [--guard-threshold F]  # override the 5% (fraction)
//                    [--json FILE]          # machine-readable report
//
// Three phases:
//   1. uninterrupted run() — the wall-clock baseline;
//   2. the same run paused `checkpoints` times at even fractions of the
//      baseline makespan, serializing a full snapshot at each pause (kept
//      in memory; file I/O is the OS's business, not the codec's);
//   3. every snapshot restored into a fresh simulator (deserialize
//      throughput), and the mid-run one resumed to completion and diffed
//      against phase 1 through the results codec.
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/atomic_file.h"
#include "exp/args.h"
#include "exp/experiment.h"
#include "exp/registry.h"
#include "flowsim/simulator.h"
#include "metrics/report.h"
#include "snapshot/snapshot.h"
#include "topology/fattree.h"
#include "workload/trace_gen.h"

namespace gurita {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string results_bytes(const SimResults& results) {
  snapshot::Writer w;
  snapshot::save_results(w, results);
  return w.take();
}

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  apply_log_level(args);
  const int num_jobs = args.get_int("num-jobs", 300);
  const std::uint64_t seed = args.get_u64("seed", 7);
  const int pods = args.get_int("pods", 8);
  const std::string scheduler = args.get_string("scheduler", "gurita");
  const int checkpoints = args.get_int("checkpoints", 8);
  const int reps = args.get_int("reps", 3);
  const bool guard = args.get_bool("guard", false);
  const double guard_threshold = args.get_double("guard-threshold", 0.05);
  const std::string json_path = args.get_string("json", "");
  GURITA_CHECK_MSG(checkpoints >= 1, "--checkpoints must be >= 1");
  GURITA_CHECK_MSG(reps >= 1, "--reps must be >= 1");

  ExperimentConfig config = trace_scenario(StructureKind::kFbTao, num_jobs,
                                           seed);
  config.fat_tree_k = pods;
  const FatTree fabric(FatTree::Config{config.fat_tree_k,
                                       config.link_capacity,
                                       config.ecmp_salt});
  TraceConfig trace = config.trace;
  trace.num_hosts = fabric.num_hosts();
  const std::vector<JobSpec> jobs = generate_trace(trace);

  // Phase 1: uninterrupted baseline (best wall time over --reps).
  double base_seconds = 0;
  std::string reference;
  Time makespan = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const std::unique_ptr<Scheduler> sched = make_scheduler(scheduler);
    Simulator sim(fabric, *sched, Simulator::Config{});
    for (const JobSpec& job : jobs) sim.submit(job);
    const Clock::time_point start = Clock::now();
    const SimResults results = sim.run();
    const double elapsed = seconds_since(start);
    if (rep == 0 || elapsed < base_seconds) base_seconds = elapsed;
    if (rep == 0) {
      reference = results_bytes(results);
      makespan = results.makespan;
    }
  }

  // Phase 2: the identical run paused `checkpoints` times, serializing at
  // each pause. The pauses land at even fractions of the makespan, so the
  // snapshots sample the whole lifecycle (ramp-up, steady state, drain).
  double checkpointed_seconds = 0;
  double serialize_seconds = 0;
  std::vector<std::string> snapshots;
  std::string checkpointed;
  for (int rep = 0; rep < reps; ++rep) {
    const std::unique_ptr<Scheduler> sched = make_scheduler(scheduler);
    Simulator sim(fabric, *sched, Simulator::Config{});
    for (const JobSpec& job : jobs) sim.submit(job);
    double serialize = 0;
    std::vector<std::string> taken;
    const Clock::time_point start = Clock::now();
    for (int i = 1; i <= checkpoints; ++i) {
      (void)sim.run_until(makespan * i / (checkpoints + 1));
      const Clock::time_point snap_start = Clock::now();
      snapshot::Writer w;
      sim.checkpoint(w);
      taken.push_back(w.take());
      serialize += seconds_since(snap_start);
    }
    const SimResults results = sim.finish();
    const double elapsed = seconds_since(start);
    if (rep == 0 || elapsed < checkpointed_seconds) {
      checkpointed_seconds = elapsed;
      serialize_seconds = serialize;
    }
    if (rep == 0) {
      checkpointed = results_bytes(results);
      snapshots = std::move(taken);
    }
  }

  // Phase 3: restore every snapshot into a fresh simulator, and resume the
  // middle one to completion.
  double deserialize_seconds = 0;
  std::uint64_t snapshot_bytes_total = 0;
  std::string resumed;
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    snapshot_bytes_total += snapshots[i].size();
    const std::unique_ptr<Scheduler> sched = make_scheduler(scheduler);
    Simulator sim(fabric, *sched, Simulator::Config{});
    for (const JobSpec& job : jobs) sim.submit(job);
    const Clock::time_point start = Clock::now();
    snapshot::Reader r(snapshots[i]);
    sim.restore(r);
    deserialize_seconds += seconds_since(start);
    if (i == snapshots.size() / 2) resumed = results_bytes(sim.finish());
  }

  const bool identical = checkpointed == reference && resumed == reference;
  const double overhead =
      base_seconds > 0 ? checkpointed_seconds / base_seconds - 1.0 : 0.0;
  const double mean_snapshot_bytes =
      static_cast<double>(snapshot_bytes_total) / snapshots.size();
  const double serialize_mbps = serialize_seconds > 0
      ? snapshot_bytes_total / serialize_seconds / 1e6 : 0.0;
  const double deserialize_mbps = deserialize_seconds > 0
      ? snapshot_bytes_total / deserialize_seconds / 1e6 : 0.0;

  std::cout << "=== Snapshot checkpoint/restore benchmark ===\n"
            << "workload: " << num_jobs << " jobs, " << scheduler << ", "
            << checkpoints << " checkpoints, best of " << reps << " reps\n\n";
  TextTable table({"metric", "value"});
  table.add_row({"uninterrupted run (s)", TextTable::num(base_seconds)});
  table.add_row({"checkpointed run (s)", TextTable::num(checkpointed_seconds)});
  table.add_row({"checkpoint overhead", TextTable::num(overhead * 100) + " %"});
  table.add_row({"mean snapshot size (KB)",
                 TextTable::num(mean_snapshot_bytes / 1e3)});
  table.add_row({"serialize (MB/s)", TextTable::num(serialize_mbps)});
  table.add_row({"deserialize (MB/s)", TextTable::num(deserialize_mbps)});
  table.add_row({"byte-identical resume", identical ? "yes" : "NO"});
  std::cout << table.to_string() << std::endl;

  if (!json_path.empty()) {
    write_file_atomic(json_path, /*binary=*/false, [&](std::ostream& out) {
      out.precision(17);
      out << "{\n  \"bench\": \"snapshot\",\n"
          << "  \"num_jobs\": " << num_jobs << ",\n"
          << "  \"scheduler\": \"" << scheduler << "\",\n"
          << "  \"checkpoints\": " << checkpoints << ",\n"
          << "  \"base_seconds\": " << base_seconds << ",\n"
          << "  \"checkpointed_seconds\": " << checkpointed_seconds << ",\n"
          << "  \"overhead\": " << overhead << ",\n"
          << "  \"mean_snapshot_bytes\": " << mean_snapshot_bytes << ",\n"
          << "  \"serialize_mb_per_s\": " << serialize_mbps << ",\n"
          << "  \"deserialize_mb_per_s\": " << deserialize_mbps << ",\n"
          << "  \"byte_identical\": " << (identical ? "true" : "false")
          << "\n}\n";
    });
    std::cout << "report -> " << json_path << "\n";
  }

  if (!identical) {
    std::cerr << "bench_snapshot: FAIL: restored run diverged from the "
                 "uninterrupted run\n";
    return 1;
  }
  if (guard && overhead > guard_threshold) {
    std::cerr << "bench_snapshot: FAIL: checkpoint overhead "
              << overhead * 100 << " % exceeds the guard threshold "
              << guard_threshold * 100 << " %\n";
    return 1;
  }
  return 0;
}
