// Engine microbenchmark: per-event cost of the event-calendar simulator.
//
// Sweeps the number of simultaneously active flows (1k / 10k / 100k by
// default) over a big-switch fabric with disjoint host pairs, so each
// completion batch disturbs no other flow's rate — the regime where the
// old engine's per-event full-active-set scans hurt most. Two scenarios:
//
//   completions  flow-completion events only (PFS, no ticks)
//   ticks        the same workload under a δ-tick scheduler whose ticks
//                change nothing (the Gurita HR cadence) — every tick is an
//                event the calendar engine handles without touching flows
//
// Reports, per configuration: events, engine flow touches, the equivalent
// legacy full-scan touches (both counted by the engine itself — see
// SimResults), their ratio, and wall time. Writes BENCH_engine.json for
// cross-PR tracking.
//
//   ./bench_engine [--flows 1000,10000,100000] [--groups 32]
//                  [--tick 0.1] [--out BENCH_engine.json]
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "exp/args.h"
#include "flowsim/simulator.h"
#include "sched/pfs.h"
#include "topology/big_switch.h"

namespace gurita {
namespace {

/// PFS priorities with a fixed coordination tick that never changes them:
/// isolates the engine's per-event cost under a Gurita-like δ cadence.
class TickingPfsScheduler final : public Scheduler {
 public:
  explicit TickingPfsScheduler(Time delta) : delta_(delta) {}
  [[nodiscard]] std::string name() const override { return "ticking-pfs"; }
  [[nodiscard]] Time tick_interval() const override { return delta_; }
  bool on_tick(Time now) override {
    (void)now;
    return false;
  }
  void assign(Time now, const std::vector<SimFlow*>& active) override {
    (void)now;
    for (SimFlow* f : active) {
      f->tier = 0;
      f->weight = 1.0;
    }
  }

 private:
  Time delta_;
};

struct BenchRow {
  int flows = 0;
  std::string scenario;
  double wall_ms = 0;
  Time makespan = 0;
  std::uint64_t events = 0;
  std::uint64_t flow_touches = 0;
  std::uint64_t legacy_flow_touches = 0;

  [[nodiscard]] double touch_ratio() const {
    return flow_touches == 0
               ? 0.0
               : static_cast<double>(legacy_flow_touches) /
                     static_cast<double>(flow_touches);
  }
};

/// One job, one coflow, `flows` transfers on disjoint host pairs
/// (i -> flows + i), sizes spread over `groups` distinct values so
/// completions arrive in `groups` batches.
JobSpec disjoint_pairs_job(int flows, int groups) {
  JobSpec job;
  CoflowSpec coflow;
  coflow.flows.reserve(static_cast<std::size_t>(flows));
  for (int i = 0; i < flows; ++i) {
    const Bytes size = 100.0 * static_cast<double>(1 + i % groups);
    coflow.flows.push_back(FlowSpec{i, flows + i, size});
  }
  job.coflows.push_back(std::move(coflow));
  job.deps = {{}};
  return job;
}

BenchRow run_one(int flows, int groups, Time tick, bool ticking) {
  const BigSwitch fabric(BigSwitch::Config{2 * flows, 100.0});
  PfsScheduler pfs;
  TickingPfsScheduler ticking_pfs(tick);
  Scheduler& scheduler =
      ticking ? static_cast<Scheduler&>(ticking_pfs) : pfs;
  Simulator sim(fabric, scheduler);
  sim.submit(disjoint_pairs_job(flows, groups));

  const auto start = std::chrono::steady_clock::now();
  const SimResults results = sim.run();
  const auto stop = std::chrono::steady_clock::now();

  BenchRow row;
  row.flows = flows;
  row.scenario = ticking ? "ticks" : "completions";
  row.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  row.makespan = results.makespan;
  row.events = results.events;
  row.flow_touches = results.flow_touches;
  row.legacy_flow_touches = results.legacy_flow_touches;
  return row;
}

std::vector<int> parse_flow_counts(const std::string& csv) {
  std::vector<int> counts;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      counts.push_back(std::stoi(item));
    } catch (const std::exception&) {
      counts.clear();
    }
    if (counts.empty() || counts.back() <= 0) {
      std::cerr << "--flows expects a comma-separated list of positive "
                   "counts, got \""
                << csv << "\"\n";
      std::exit(1);
    }
  }
  return counts;
}

bool write_json(const std::string& path, const std::vector<BenchRow>& rows) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"engine\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out << "    {\"flows\": " << r.flows << ", \"scenario\": \"" << r.scenario
        << "\", \"events\": " << r.events
        << ", \"flow_touches\": " << r.flow_touches
        << ", \"legacy_flow_touches\": " << r.legacy_flow_touches
        << ", \"touch_ratio\": " << r.touch_ratio()
        << ", \"wall_ms\": " << r.wall_ms << ", \"makespan\": " << r.makespan
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  const std::vector<int> flow_counts =
      parse_flow_counts(args.get_string("flows", "1000,10000,100000"));
  const int groups = args.get_int("groups", 32);
  const Time tick = args.get_double("tick", 0.1);
  const std::string out_path = args.get_string("out", "BENCH_engine.json");

  std::cout << "=== Engine microbenchmark: per-event flow touches ===\n"
               "touch_ratio = legacy full-scan touches / calendar-engine "
               "touches (higher is better).\n\n";
  std::cout << "flows      scenario      events    touches     legacy      "
               "ratio    wall_ms\n";

  std::vector<BenchRow> rows;
  for (const int flows : flow_counts) {
    for (const bool ticking : {false, true}) {
      const BenchRow row = run_one(flows, groups, tick, ticking);
      std::printf("%-10d %-12s %8llu %10llu %10llu %9.1fx %9.2f\n", row.flows,
                  row.scenario.c_str(),
                  static_cast<unsigned long long>(row.events),
                  static_cast<unsigned long long>(row.flow_touches),
                  static_cast<unsigned long long>(row.legacy_flow_touches),
                  row.touch_ratio(), row.wall_ms);
      rows.push_back(row);
    }
  }
  if (!write_json(out_path, rows)) {
    std::cerr << "\nfailed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
