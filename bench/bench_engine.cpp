// Engine microbenchmark: per-event cost of the event-calendar simulator.
//
// Sweeps the number of simultaneously active flows (1k / 10k / 100k by
// default) over a big-switch fabric with disjoint host pairs, so each
// completion batch disturbs no other flow's rate — the regime where the
// old engine's per-event full-active-set scans hurt most. Two scenarios:
//
//   completions  flow-completion events only (PFS, no ticks)
//   ticks        the same workload under a δ-tick scheduler whose ticks
//                change nothing (the Gurita HR cadence) — every tick is an
//                event the calendar engine handles without touching flows
//
// Reports, per configuration: events, engine flow touches, the equivalent
// legacy full-scan touches (both counted by the engine itself — see
// SimResults), their ratio, wall time, and the engine phase profile
// (obs/profiler.h). Writes BENCH_engine.json for cross-PR tracking.
//
// Telemetry overhead guard: with --overhead-guard (default on), the first
// configured flow count is re-run three ways — without any obs wiring,
// with a TraceRecorder attached whose kind mask is empty (the
// disabled-tracing hot path: one null check + one bit test per emission
// site), and additionally with an interval sampler whose first boundary
// lies past the makespan (the disabled-sampling hot path: one comparison
// per event). Min-of-5 trials each; the run breaches if either telemetry
// path is > 2% slower AND more than 0.5 ms absolute — all recorded in
// BENCH_engine.json, nonzero exit on breach.
//
// Allocator matrix: --allocator both (default) runs every configuration
// under the incremental allocator AND the from-scratch oracle, tagging each
// row. --allocator-guard R (R > 0; CI passes 2) then asserts, at the
// largest flow count's completions scenario, that the incremental
// allocator's total allocator-phase time (allocator + alloc_frontier +
// alloc_converge) is at least R times cheaper than the oracle's, and that
// both modes agree on makespan and event count — nonzero exit on breach.
//
//   ./bench_engine [--flows 1000,10000,100000] [--groups 32]
//                  [--tick 0.1] [--out BENCH_engine.json]
//                  [--profile true] [--overhead-guard true]
//                  [--allocator both|incremental|oracle]
//                  [--allocator-guard 0]
//                  [--log-level warn]
#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/atomic_file.h"
#include "exp/args.h"
#include "flowsim/simulator.h"
#include "obs/profiler.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "sched/pfs.h"
#include "topology/big_switch.h"

namespace gurita {
namespace {

/// PFS priorities with a fixed coordination tick that never changes them:
/// isolates the engine's per-event cost under a Gurita-like δ cadence.
class TickingPfsScheduler final : public Scheduler {
 public:
  explicit TickingPfsScheduler(Time delta) : delta_(delta) {}
  [[nodiscard]] std::string name() const override { return "ticking-pfs"; }
  [[nodiscard]] Time tick_interval() const override { return delta_; }
  bool on_tick(Time now) override {
    (void)now;
    return false;
  }
  void assign(Time now, const std::vector<SimFlow*>& active) override {
    (void)now;
    for (SimFlow* f : active) {
      f->tier = 0;
      f->weight = 1.0;
    }
  }

 private:
  Time delta_;
};

struct BenchRow {
  int flows = 0;
  std::string scenario;
  std::string allocator;
  double wall_ms = 0;
  Time makespan = 0;
  std::uint64_t events = 0;
  std::uint64_t flow_touches = 0;
  std::uint64_t legacy_flow_touches = 0;
  AllocStats alloc;
  obs::PhaseProfile profile;
  bool profiled = false;

  /// Total allocator cost: the dispatch phase plus the incremental
  /// sub-phases (exclusive attribution — obs/profiler.h).
  [[nodiscard]] std::uint64_t allocator_ns() const {
    return profile.phases[static_cast<std::size_t>(obs::Phase::kAllocator)]
               .ns +
           profile
               .phases[static_cast<std::size_t>(obs::Phase::kAllocFrontier)]
               .ns +
           profile
               .phases[static_cast<std::size_t>(obs::Phase::kAllocConverge)]
               .ns;
  }

  [[nodiscard]] double touch_ratio() const {
    return flow_touches == 0
               ? 0.0
               : static_cast<double>(legacy_flow_touches) /
                     static_cast<double>(flow_touches);
  }
};

/// One job, one coflow, `flows` transfers on disjoint host pairs
/// (i -> flows + i), sizes spread over `groups` distinct values so
/// completions arrive in `groups` batches.
JobSpec disjoint_pairs_job(int flows, int groups) {
  JobSpec job;
  CoflowSpec coflow;
  coflow.flows.reserve(static_cast<std::size_t>(flows));
  for (int i = 0; i < flows; ++i) {
    const Bytes size = 100.0 * static_cast<double>(1 + i % groups);
    coflow.flows.push_back(FlowSpec{i, flows + i, size});
  }
  job.coflows.push_back(std::move(coflow));
  job.deps = {{}};
  return job;
}

/// How the run is wired to the obs/ subsystem.
enum class ObsWiring {
  kNone,             ///< no recorder, no profiler (the pre-obs hot path)
  kDisabledRecorder, ///< recorder attached with an empty kind mask
  kIdleSampler,      ///< empty-mask recorder + sampler that never fires
  kProfile,          ///< phase profiler attached
};

BenchRow run_one(int flows, int groups, Time tick, bool ticking,
                 ObsWiring wiring,
                 AllocatorKind kind = AllocatorKind::kIncremental) {
  const BigSwitch fabric(BigSwitch::Config{2 * flows, 100.0});
  PfsScheduler pfs;
  TickingPfsScheduler ticking_pfs(tick);
  Scheduler& scheduler =
      ticking ? static_cast<Scheduler&>(ticking_pfs) : pfs;
  obs::TraceRecorder disabled_recorder(/*mask=*/0);
  obs::PhaseProfiler profiler;
  // A sampler whose first boundary lies far past any makespan this bench
  // reaches: the per-event cost is exactly the attached-but-idle poll (one
  // null check + one comparison).
  obs::IntervalSampler idle_sampler(obs::IntervalSampler::Config{1e18});
  Simulator::Config config;
  config.allocator = kind;
  if (wiring == ObsWiring::kDisabledRecorder ||
      wiring == ObsWiring::kIdleSampler)
    config.trace = &disabled_recorder;
  if (wiring == ObsWiring::kIdleSampler) config.sampler = &idle_sampler;
  if (wiring == ObsWiring::kProfile) config.profiler = &profiler;
  Simulator sim(fabric, scheduler, config);
  sim.submit(disjoint_pairs_job(flows, groups));

  const auto start = std::chrono::steady_clock::now();
  const SimResults results = sim.run();
  const auto stop = std::chrono::steady_clock::now();

  BenchRow row;
  row.flows = flows;
  row.scenario = ticking ? "ticks" : "completions";
  row.allocator = to_string(kind);
  row.alloc = sim.allocator_stats();
  row.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  row.makespan = results.makespan;
  row.events = results.events;
  row.flow_touches = results.flow_touches;
  row.legacy_flow_touches = results.legacy_flow_touches;
  if (wiring == ObsWiring::kProfile) {
    row.profile = profiler.snapshot();
    row.profiled = true;
  }
  return row;
}

std::vector<int> parse_flow_counts(const std::string& csv) {
  // Full-token validation (exp/args.h): a bad entry names itself instead
  // of silently truncating the list.
  std::vector<int> counts;
  try {
    counts = parse_int_list(csv);
  } catch (const std::invalid_argument& e) {
    std::cerr << "--flows: " << e.what() << "\n";
    std::exit(1);
  }
  for (const int n : counts) {
    if (n <= 0) {
      std::cerr << "--flows wants positive flow counts, got " << n
                << " in \"" << csv << "\"\n";
      std::exit(1);
    }
  }
  return counts;
}

struct OverheadGuard {
  bool ran = false;
  double baseline_ms = 0;   ///< min-of-trials, no obs wiring
  double disabled_ms = 0;   ///< min-of-trials, empty-mask recorder attached
  double sampler_ms = 0;    ///< min-of-trials, never-firing sampler attached
  bool breached = false;

  [[nodiscard]] double ratio() const {
    return baseline_ms <= 0 ? 0.0 : disabled_ms / baseline_ms;
  }
  [[nodiscard]] double sampler_ratio() const {
    return baseline_ms <= 0 ? 0.0 : sampler_ms / baseline_ms;
  }
};

/// Disabled-telemetry hot-path cost: min-of-`trials` wall time with no obs
/// wiring vs (a) an empty-mask recorder attached (disabled tracing — one
/// null check + one bit test per emission site, plus the sampler null check
/// in step()) and (b) additionally an interval sampler that never fires
/// (disabled sampling — the poll is one comparison). A breach requires both
/// a > 2% ratio AND > 0.5 ms absolute regression on either leg, so
/// sub-millisecond timing noise on tiny configs cannot trip it.
OverheadGuard run_overhead_guard(int flows, int groups, Time tick,
                                 int trials) {
  OverheadGuard guard;
  guard.ran = true;
  double base = std::numeric_limits<double>::infinity();
  double disabled = std::numeric_limits<double>::infinity();
  double sampler = std::numeric_limits<double>::infinity();
  for (int t = 0; t < trials; ++t) {
    base = std::min(
        base,
        run_one(flows, groups, tick, false, ObsWiring::kNone).wall_ms);
    disabled = std::min(
        disabled,
        run_one(flows, groups, tick, false, ObsWiring::kDisabledRecorder)
            .wall_ms);
    sampler = std::min(
        sampler,
        run_one(flows, groups, tick, false, ObsWiring::kIdleSampler)
            .wall_ms);
  }
  guard.baseline_ms = base;
  guard.disabled_ms = disabled;
  guard.sampler_ms = sampler;
  guard.breached =
      (disabled > base * 1.02 && disabled - base > 0.5) ||
      (sampler > base * 1.02 && sampler - base > 0.5);
  return guard;
}

struct AllocatorGuard {
  bool ran = false;
  double threshold = 0;        ///< required oracle/incremental speedup
  int flows = 0;               ///< flow count the guard measured at
  std::uint64_t incremental_ns = 0;
  std::uint64_t oracle_ns = 0;
  bool results_match = true;   ///< makespan/events agree across modes
  bool breached = false;

  [[nodiscard]] double speedup() const {
    return incremental_ns == 0 ? 0.0
                               : static_cast<double>(oracle_ns) /
                                     static_cast<double>(incremental_ns);
  }
};

/// Same-run regression guard: at the largest flow count's completions
/// scenario, the incremental allocator's phase time must beat the oracle's
/// by at least `threshold`, and every (flows, scenario) pair must agree on
/// makespan and event count across the two modes (a cheap byte-identity
/// smoke on top of the differential suite).
AllocatorGuard run_allocator_guard(const std::vector<BenchRow>& rows,
                                   double threshold) {
  AllocatorGuard guard;
  guard.ran = true;
  guard.threshold = threshold;
  const BenchRow* inc = nullptr;
  const BenchRow* ora = nullptr;
  for (const BenchRow& r : rows) {
    if (r.scenario != "completions" || !r.profiled) continue;
    if (r.allocator == "incremental" &&
        (inc == nullptr || r.flows > inc->flows))
      inc = &r;
    if (r.allocator == "oracle" && (ora == nullptr || r.flows > ora->flows))
      ora = &r;
  }
  if (inc == nullptr || ora == nullptr || inc->flows != ora->flows) {
    std::cerr << "allocator guard wants --allocator both and --profile\n";
    guard.breached = true;
    return guard;
  }
  guard.flows = inc->flows;
  guard.incremental_ns = inc->allocator_ns();
  guard.oracle_ns = ora->allocator_ns();
  for (const BenchRow& a : rows) {
    if (a.allocator != "incremental") continue;
    for (const BenchRow& b : rows) {
      if (b.allocator != "oracle" || b.flows != a.flows ||
          b.scenario != a.scenario)
        continue;
      if (a.makespan != b.makespan || a.events != b.events)
        guard.results_match = false;
    }
  }
  guard.breached = guard.speedup() < threshold || !guard.results_match;
  return guard;
}

void write_profile_json(std::ostream& out, const obs::PhaseProfile& profile) {
  out << "\"phases\": {";
  for (int p = 0; p < obs::kNumPhases; ++p) {
    const obs::PhaseProfile::Entry& e =
        profile.phases[static_cast<std::size_t>(p)];
    out << (p == 0 ? "" : ", ") << "\""
        << obs::phase_name(static_cast<obs::Phase>(p)) << "\": " << e.ns;
  }
  out << "}, \"phase_coverage\": " << profile.coverage();
}

bool write_json(const std::string& path, const std::vector<BenchRow>& rows,
                const OverheadGuard& guard,
                const AllocatorGuard& alloc_guard) try {
  write_file_atomic(path, /*binary=*/false, [&](std::ostream& out) {
  out << "{\n  \"bench\": \"engine\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out << "    {\"flows\": " << r.flows << ", \"scenario\": \"" << r.scenario
        << "\", \"allocator\": \"" << r.allocator
        << "\", \"events\": " << r.events
        << ", \"flow_touches\": " << r.flow_touches
        << ", \"legacy_flow_touches\": " << r.legacy_flow_touches
        << ", \"touch_ratio\": " << r.touch_ratio()
        << ", \"allocations\": " << r.alloc.allocations
        << ", \"flows_solved\": " << r.alloc.flows_solved
        << ", \"components_solved\": " << r.alloc.components_solved
        << ", \"dirty_links\": " << r.alloc.dirty_links
        << ", \"wall_ms\": " << r.wall_ms << ", \"makespan\": " << r.makespan;
    if (r.profiled) {
      out << ", ";
      write_profile_json(out, r.profile);
    }
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]";
  if (guard.ran) {
    out << ",\n  \"overhead_guard\": {\"baseline_ms\": " << guard.baseline_ms
        << ", \"disabled_tracing_ms\": " << guard.disabled_ms
        << ", \"ratio\": " << guard.ratio()
        << ", \"disabled_sampling_ms\": " << guard.sampler_ms
        << ", \"sampling_ratio\": " << guard.sampler_ratio()
        << ", \"breached\": " << (guard.breached ? "true" : "false") << "}";
  }
  if (alloc_guard.ran) {
    out << ",\n  \"allocator_guard\": {\"flows\": " << alloc_guard.flows
        << ", \"incremental_ns\": " << alloc_guard.incremental_ns
        << ", \"oracle_ns\": " << alloc_guard.oracle_ns
        << ", \"speedup\": " << alloc_guard.speedup()
        << ", \"threshold\": " << alloc_guard.threshold
        << ", \"results_match\": "
        << (alloc_guard.results_match ? "true" : "false")
        << ", \"breached\": " << (alloc_guard.breached ? "true" : "false")
        << "}";
  }
  out << "\n}\n";
  });
  return true;
} catch (const std::exception&) {
  return false;
}

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  apply_log_level(args);
  const std::vector<int> flow_counts =
      parse_flow_counts(args.get_string("flows", "1000,10000,100000"));
  const int groups = args.get_int("groups", 32);
  const Time tick = args.get_double("tick", 0.1);
  const std::string out_path = args.get_string("out", "BENCH_engine.json");
  const bool profile = args.get_bool("profile", true);
  const bool overhead = args.get_bool("overhead-guard", true);
  const int guard_trials = args.get_int("overhead-trials", 5);
  const std::string allocator_arg = args.get_string("allocator", "both");
  const double allocator_guard = args.get_double("allocator-guard", 0.0);

  std::vector<AllocatorKind> kinds;
  if (allocator_arg == "both")
    kinds = {AllocatorKind::kIncremental, AllocatorKind::kOracle};
  else if (allocator_arg == "incremental")
    kinds = {AllocatorKind::kIncremental};
  else if (allocator_arg == "oracle")
    kinds = {AllocatorKind::kOracle};
  else {
    std::cerr << "--allocator wants both|incremental|oracle, got \""
              << allocator_arg << "\"\n";
    return 1;
  }

  std::cout << "=== Engine microbenchmark: per-event flow touches ===\n"
               "touch_ratio = legacy full-scan touches / calendar-engine "
               "touches (higher is better).\n\n";
  std::cout << "flows      scenario     allocator      events    touches     "
               "legacy      ratio    wall_ms\n";

  std::vector<BenchRow> rows;
  obs::PhaseProfile total;
  for (const int flows : flow_counts) {
    for (const bool ticking : {false, true}) {
      for (const AllocatorKind kind : kinds) {
        const BenchRow row =
            run_one(flows, groups, tick, ticking,
                    profile ? ObsWiring::kProfile : ObsWiring::kNone, kind);
        std::printf("%-10d %-12s %-12s %8llu %10llu %10llu %9.1fx %9.2f\n",
                    row.flows, row.scenario.c_str(), row.allocator.c_str(),
                    static_cast<unsigned long long>(row.events),
                    static_cast<unsigned long long>(row.flow_touches),
                    static_cast<unsigned long long>(row.legacy_flow_touches),
                    row.touch_ratio(), row.wall_ms);
        if (row.profiled) total.merge(row.profile);
        rows.push_back(row);
      }
    }
  }

  if (profile)
    std::cout << "\n=== Engine phase profile (summed over the matrix) ===\n"
              << total.to_table();

  OverheadGuard guard;
  if (overhead) {
    guard = run_overhead_guard(flow_counts.front(), groups, tick,
                               guard_trials);
    std::printf(
        "\noverhead guard (flows=%d, min of %d): baseline %.2f ms, "
        "disabled-tracing %.2f ms (ratio %.4f), disabled-sampling %.2f ms "
        "(ratio %.4f) -> %s\n",
        flow_counts.front(), guard_trials, guard.baseline_ms,
        guard.disabled_ms, guard.ratio(), guard.sampler_ms,
        guard.sampler_ratio(), guard.breached ? "BREACH" : "ok");
  }

  AllocatorGuard alloc_guard;
  if (allocator_guard > 0) {
    alloc_guard = run_allocator_guard(rows, allocator_guard);
    std::printf(
        "\nallocator guard (flows=%d, completions): incremental %.2f ms, "
        "oracle %.2f ms, speedup %.1fx (threshold %.1fx), results %s -> "
        "%s\n",
        alloc_guard.flows,
        static_cast<double>(alloc_guard.incremental_ns) / 1e6,
        static_cast<double>(alloc_guard.oracle_ns) / 1e6,
        alloc_guard.speedup(), alloc_guard.threshold,
        alloc_guard.results_match ? "match" : "DIVERGED",
        alloc_guard.breached ? "BREACH" : "ok");
  }

  if (!write_json(out_path, rows, guard, alloc_guard)) {
    std::cerr << "\nfailed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << out_path << "\n";
  return guard.breached || alloc_guard.breached ? 1 : 0;
}
