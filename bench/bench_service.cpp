// Open-horizon scheduler daemon driver (service/daemon.h, DESIGN.md §15):
// streaming admission with overload control, graceful drain on
// SIGTERM/SIGINT, periodic auto-checkpoints and crash recovery.
//
//   ./bench_service [--scheduler gurita] [--pods 4] [--num-jobs 500]
//                   [--seed 7]
//     source (pick one):
//                   [--feed FILE.jsonl]      # streamed JSONL feed (feed.h)
//                   [--arrival-pattern poisson|bursty] [--load 0.7]
//                   [--arrival-rate R]       # jobs/s; overrides --load
//     admission control:
//                   [--shed-policy reject-new|drop-largest|degrade-to-fifo]
//                   [--queue-cap 64] [--wait-window 512]
//                   [--wm-flows-high N] [--wm-flows-low N]
//                   [--wm-calendar-high N] [--wm-calendar-low N]
//                   [--wm-p99-high T] [--wm-p99-low T]
//     maintenance:
//                   [--compact-every 0.25]   # sim s; 0 disables compaction
//                   [--checkpoint FILE] [--checkpoint-every T]
//                   [--halt-after N]         # crash sim: exit 75 after N ckpts
//                   [--recover-from FILE]    # resume a checkpointed run
//                   [--watchdog-stall S] [--watchdog-marker FILE]
//     drain:
//                   [--drain-deadline 60]    # wall s for the drain phase
//                   [--drain-after T]        # deterministic drain at sim T
//     telemetry:
//                   [--trace FILE] [--trace-binary] [--sample-every T]
//                   [--json FILE]            # machine-readable report
//
// Reports sustained events/sec and the p99 admission wait. Exit codes:
// 0 success, 1 failure/config error, 75 halted-on-purpose (resume with
// --recover-from).
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "common/atomic_file.h"
#include "exp/args.h"
#include "exp/export.h"
#include "metrics/report.h"
#include "service/daemon.h"
#include "service/feed.h"
#include "service/signals.h"
#include "snapshot/snapshot.h"

namespace gurita::service {
namespace {

using Clock = std::chrono::steady_clock;

DaemonOptions options_from_args(const Args& args) {
  DaemonOptions options;
  options.scheduler = args.get_string("scheduler", "gurita");
  options.fat_tree_k = args.get_int("pods", 4);
  options.max_jobs = args.get_u64("num-jobs", 500);

  // Source selection: a feed is a verbatim arrival schedule, so the
  // open-loop shaping flags contradict it. Reject the combination with one
  // aggregated error instead of silently ignoring half the command line.
  const bool use_feed = args.has("feed");
  {
    std::vector<ConfigError::Issue> issues;
    for (const char* flag : {"arrival-rate", "arrival-pattern", "load"}) {
      if (use_feed && args.has(flag))
        issues.push_back({std::string("--") + flag,
                          "conflicts with --feed (the feed fixes arrivals)"});
    }
    if (!issues.empty()) throw ConfigError("bench_service flags", issues);
  }
  if (use_feed) {
    options.use_feed = true;
    const std::string path = args.get_string("feed", "");
    options.feed = load_feed(path);
  } else {
    const std::string pattern = args.get_string("arrival-pattern", "poisson");
    if (pattern == "poisson") {
      options.open_loop.arrivals = ArrivalPattern::kPoisson;
    } else if (pattern == "bursty") {
      options.open_loop.arrivals = ArrivalPattern::kBursty;
    } else {
      throw ConfigError("--arrival-pattern",
                        {{pattern, "expected poisson or bursty"}});
    }
    options.open_loop.shape.seed = args.get_u64("seed", 7);
    options.open_loop.load = args.get_double("load", 0.7);
    const double rate = args.get_double("arrival-rate", 0);
    if (rate > 0) options.open_loop.mean_interarrival = 1.0 / rate;
    const int hosts =
        options.fat_tree_k * options.fat_tree_k * options.fat_tree_k / 4;
    options.open_loop.service_rate = hosts * options.link_capacity;
  }

  options.shed_policy =
      shed_policy_from_name(args.get_string("shed-policy", "reject-new"));
  options.queue_capacity =
      static_cast<std::size_t>(args.get_u64("queue-cap", 64));
  options.wait_window =
      static_cast<std::size_t>(args.get_u64("wait-window", 512));
  Watermarks& wm = options.watermarks;
  wm.active_flows_high = static_cast<std::size_t>(
      args.get_u64("wm-flows-high", wm.active_flows_high));
  wm.active_flows_low = static_cast<std::size_t>(
      args.get_u64("wm-flows-low", wm.active_flows_low));
  wm.calendar_high = static_cast<std::size_t>(
      args.get_u64("wm-calendar-high", wm.calendar_high));
  wm.calendar_low = static_cast<std::size_t>(
      args.get_u64("wm-calendar-low", wm.calendar_low));
  wm.p99_wait_high = args.get_double("wm-p99-high", wm.p99_wait_high);
  wm.p99_wait_low = args.get_double("wm-p99-low", wm.p99_wait_low);

  options.compact_every = args.get_double("compact-every", 0.25);
  options.checkpoint_path = args.get_string("checkpoint", "");
  options.checkpoint_every = args.get_double("checkpoint-every", 0);
  options.halt_after_checkpoints = args.get_int("halt-after", 0);
  options.drain_deadline_wall = args.get_double("drain-deadline", 60.0);
  options.drain_after_sim_time = args.get_double("drain-after", 0);
  options.watchdog_stall = args.get_double("watchdog-stall", 0);
  options.watchdog_marker = args.get_string("watchdog-marker", "");
  options.sample_every = args.get_double("sample-every", 0);
  options.max_sim_time = args.get_double("max-sim-time",
                                         options.max_sim_time);
  if (args.has("trace") || options.sample_every > 0)
    options.trace_mask = obs::TraceRecorder::kDefaultKinds;
  return options;
}

int run(const Args& args) {
  apply_log_level(args);
  const std::string recover_from = args.get_string("recover-from", "");
  const std::string trace_path = args.get_string("trace", "");
  const bool trace_binary = args.get_bool("trace-binary", false);
  const std::string json_path = args.get_string("json", "");

  DaemonOptions options = options_from_args(args);
  const std::string scheduler = options.scheduler;
  install_signal_handlers();

  Daemon daemon(std::move(options));
  const Clock::time_point start = Clock::now();
  DaemonReport report =
      recover_from.empty() ? daemon.run() : daemon.recover(recover_from);
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  const SimResults& results = report.comparison.results.at(scheduler);
  const double events_per_sec =
      wall > 0 ? static_cast<double>(results.events) / wall : 0;

  std::cout << "=== Open-horizon daemon run ===\n"
            << "scheduler: " << scheduler
            << (recover_from.empty() ? "" : "  (recovered)") << "\n\n";
  TextTable table({"metric", "value"});
  table.add_row({"admitted", std::to_string(report.admitted)});
  table.add_row({"completed", std::to_string(report.completed)});
  table.add_row({"shed (queue full)", std::to_string(report.shed_queue_full)});
  table.add_row({"shed (drain)", std::to_string(report.shed_drain)});
  table.add_row({"degrade spells", std::to_string(report.degrade_spells)});
  table.add_row({"compactions", std::to_string(report.compactions)});
  table.add_row({"checkpoints", std::to_string(report.checkpoints)});
  table.add_row({"events", std::to_string(results.events)});
  table.add_row({"events/sec", TextTable::num(events_per_sec)});
  table.add_row({"p99 admission wait (s)", TextTable::num(report.p99_wait)});
  table.add_row({"final sim time (s)", TextTable::num(report.final_sim_time)});
  table.add_row({"peak queue depth", std::to_string(report.peak_queue_depth)});
  table.add_row({"peak active flows",
                 std::to_string(report.peak_active_flows)});
  table.add_row({"peak live jobs", std::to_string(report.peak_live_jobs)});
  if (report.peak_state_bytes > 0)
    table.add_row({"peak state bytes",
                   std::to_string(report.peak_state_bytes)});
  table.add_row({"drain cause",
                 report.drain_cause != 0
                     ? "signal " + std::to_string(report.drain_cause)
                     : "natural/hook"});
  table.add_row({"drain deadline expired",
                 report.drain_deadline_expired ? "YES" : "no"});
  std::cout << table.to_string() << std::endl;

  if (!trace_path.empty()) {
    const std::size_t records = export_traces(
        {"service"}, {report.comparison}, trace_path, trace_binary);
    std::cout << records << " trace records -> " << trace_path << "\n";
  }

  if (!json_path.empty()) {
    write_file_atomic(json_path, /*binary=*/false, [&](std::ostream& out) {
      out.precision(17);
      out << "{\n  \"bench\": \"service\",\n"
          << "  \"scheduler\": \"" << scheduler << "\",\n"
          << "  \"recovered\": " << (recover_from.empty() ? "false" : "true")
          << ",\n"
          << "  \"admitted\": " << report.admitted << ",\n"
          << "  \"completed\": " << report.completed << ",\n"
          << "  \"shed_queue_full\": " << report.shed_queue_full << ",\n"
          << "  \"shed_drain\": " << report.shed_drain << ",\n"
          << "  \"degrade_spells\": " << report.degrade_spells << ",\n"
          << "  \"compactions\": " << report.compactions << ",\n"
          << "  \"checkpoints\": " << report.checkpoints << ",\n"
          << "  \"events\": " << results.events << ",\n"
          << "  \"events_per_sec\": " << events_per_sec << ",\n"
          << "  \"p99_admission_wait\": " << report.p99_wait << ",\n"
          << "  \"final_sim_time\": " << report.final_sim_time << ",\n"
          << "  \"peak_queue_depth\": " << report.peak_queue_depth << ",\n"
          << "  \"peak_active_flows\": " << report.peak_active_flows << ",\n"
          << "  \"peak_live_jobs\": " << report.peak_live_jobs << ",\n"
          << "  \"peak_state_bytes\": " << report.peak_state_bytes << ",\n"
          << "  \"drain_cause\": " << report.drain_cause << ",\n"
          << "  \"drain_deadline_expired\": "
          << (report.drain_deadline_expired ? "true" : "false") << ",\n"
          << "  \"wall_seconds\": " << wall << "\n}\n";
    });
    std::cout << "report -> " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace gurita::service

int main(int argc, char** argv) {
  try {
    const gurita::Args args(argc, argv);
    return gurita::service::run(args);
  } catch (const gurita::snapshot::HaltedError& e) {
    std::cerr << "bench_service: " << e.what() << "\n";
    return 75;  // halted on purpose: resume with --recover-from
  } catch (const std::exception& e) {
    std::cerr << "bench_service: FAIL: " << e.what() << "\n";
    return 1;
  }
}
