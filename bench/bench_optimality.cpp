// Optimality study — how close do the scheduling ideas get to optimal?
//
// Leg 1 (single-machine): the exact optimum of the FFS-MJ collapse
// (core/optimal.h). Three policy families on random stage-skewed instances,
// each normalized by the DP optimum:
//
//   * FIFO                  — Baraat's kernel without multiplexing,
//   * TBS whole-job SJF     — the total-bytes-sent family's kernel; on one
//                             machine with batch arrivals this is provably
//                             optimal (exchange argument), so its ratio is
//                             exactly 1.000 — a correctness anchor,
//   * per-stage greedy      — LBEF's kernel in one dimension.
//
// Leg 2 (network): the fabric scenarios of bench_fig6 have no exact
// optimum, but src/bound/ gives a *sound lower bound* on the average JCT
// (port-load critical path + per-port SRPT ordering relaxation) plus a
// Shafiee–Ghaderi-style achievable reference. Every registry scheduler —
// including `adaptive` — is scored as achieved/bound per Table-1 job-size
// category and per narrow/wide class.
//
// Guards (nonzero exit): the TBS anchor must stay exactly 1.000, and every
// gap cell must be sound (bound <= achieved).
//
//   ./bench_optimality [--trials 200] [--num-jobs 5] [--seed 11]
//                      [--network-jobs 80] [--network-seed 7]
//                      [--json FILE]    # machine-readable report
#include <iostream>

#include "bound/gap.h"
#include "common/atomic_file.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/optimal.h"
#include "exp/args.h"
#include "exp/experiment.h"
#include "exp/registry.h"
#include "metrics/report.h"
#include "topology/fattree.h"
#include "workload/trace_gen.h"

namespace gurita {
namespace {

/// One fabric scenario scored against the bound subsystem.
GapReport network_gap(const std::string& label, StructureKind structure,
                      int num_jobs, std::uint64_t seed) {
  ExperimentConfig config = trace_scenario(structure, num_jobs, seed);
  // Reconstruct the exact workload compare_schedulers replays: the trace's
  // host count comes from the fabric (exp/experiment.cpp does the same).
  const FatTree fabric(
      FatTree::Config{config.fat_tree_k, config.link_capacity});
  TraceConfig trace = config.trace;
  trace.num_hosts = fabric.num_hosts();
  const std::vector<JobSpec> jobs = generate_trace(trace);

  const ComparisonResult result =
      compare_schedulers(config, scheduler_names());
  std::vector<std::pair<std::string, const SimResults*>> achieved;
  for (const std::string& name : scheduler_names())
    achieved.emplace_back(name, &result.results.at(name));
  return make_gap_report(label, jobs, trace.num_hosts, config.link_capacity,
                         achieved);
}

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  apply_log_level(args);
  const int trials = args.get_int("trials", 200);
  const int jobs_n = args.get_int("num-jobs", 5);
  const std::uint64_t seed = args.get_u64("seed", 11);
  const int network_jobs = args.get_int("network-jobs", 80);
  const std::uint64_t network_seed = args.get_u64("network-seed", 7);
  const std::string json_path = args.get_string("json", "");

  Rng rng(seed);
  RunningStats fifo_ratio, tbs_ratio, greedy_ratio;
  for (int t = 0; t < trials; ++t) {
    std::vector<StagedJob> jobs;
    for (int i = 0; i < jobs_n; ++i) {
      StagedJob j;
      const int stages = 1 + static_cast<int>(rng.uniform_int(0, 4));
      for (int s = 0; s < stages; ++s)
        j.stage_demand.push_back(rng.lognormal(0.0, 1.5) + 0.1);
      jobs.push_back(j);
    }
    const double best = optimal_average_jct(jobs);
    fifo_ratio.add(fifo_average_jct(jobs) / best);
    tbs_ratio.add(sjf_tbs_average_jct(jobs) / best);
    greedy_ratio.add(stage_greedy_average_jct(jobs) / best);
  }

  std::cout << "=== Optimality study: avg JCT relative to the exact DP "
               "optimum (single-machine FFS-MJ collapse) ===\n"
            << trials << " random instances of " << jobs_n
            << " stage-skewed jobs, batch arrivals\n\n";
  TextTable table({"policy", "mean ratio", "worst ratio"});
  table.add_row({"FIFO (Baraat kernel, no LM)",
                 TextTable::num(fifo_ratio.mean()),
                 TextTable::num(fifo_ratio.max())});
  table.add_row({"TBS whole-job SJF (optimal here)",
                 TextTable::num(tbs_ratio.mean()),
                 TextTable::num(tbs_ratio.max())});
  table.add_row({"per-stage greedy (LBEF kernel)",
                 TextTable::num(greedy_ratio.mean()),
                 TextTable::num(greedy_ratio.max())});
  std::cout << table.to_string()
            << "\nTakeaway: in this collapse TBS-SJF is exactly optimal and "
               "per-stage greedy stays near\noptimal; the multi-faced "
               "advantage the paper reports arises from network parallelism\n"
               "and online arrivals — measured below against the sound "
               "network-level lower bound.\n\n";

  // The anchor is exact, not approximate: TBS-SJF is provably optimal in
  // this collapse, so any drift is an optimality-oracle regression.
  const bool anchor_ok =
      tbs_ratio.max() <= 1.0 + 1e-9 && tbs_ratio.mean() >= 1.0 - 1e-9;
  if (!anchor_ok)
    std::cerr << "GUARD VIOLATION: TBS-SJF anchor ratio drifted from 1.000 "
                 "(mean "
              << tbs_ratio.mean() << ", worst " << tbs_ratio.max() << ")\n";

  std::cout << "=== Network-level gap to the sound lower bound "
               "(src/bound/; gap = achieved avg JCT / bound) ===\n"
            << "fabric scenarios of bench_fig6, " << network_jobs
            << " jobs, seed " << network_seed << "\n\n";
  std::vector<GapReport> reports;
  reports.push_back(network_gap("fig6a-fbtao", StructureKind::kFbTao,
                                network_jobs, network_seed));
  reports.push_back(network_gap("fig6b-tpcds", StructureKind::kTpcDs,
                                network_jobs, network_seed));

  bool gaps_sound = true;
  for (const GapReport& report : reports) {
    std::cout << "--- " << report.scenario
              << "  (port-load bound " << TextTable::num(report.port_load_bound)
              << "s, ordering bound " << TextTable::num(report.ordering_bound)
              << "s, S-G reference " << TextTable::num(report.reference_avg_jct)
              << "s) ---\n\n";
    std::cout << report.to_table();
    if (!report.sound()) {
      gaps_sound = false;
      std::cerr << "GUARD VIOLATION: a lower bound exceeds an achieved "
                   "average JCT in scenario "
                << report.scenario << "\n";
    }
  }

  if (!json_path.empty()) {
    write_file_atomic(json_path, /*binary=*/false, [&](std::ostream& out) {
      out << "{\n  \"bench\": \"optimality\",\n";
      out << "  \"single_machine\": {\n";
      const auto row = [&](const char* name, const RunningStats& s,
                           bool last) {
        out << "    \"" << name << "\": {\"mean_ratio\": " << s.mean()
            << ", \"worst_ratio\": " << s.max() << "}" << (last ? "\n" : ",\n");
      };
      out.precision(17);
      row("fifo", fifo_ratio, false);
      row("tbs_sjf", tbs_ratio, false);
      row("stage_greedy", greedy_ratio, true);
      out << "  },\n";
      out << "  \"guards\": {\"tbs_anchor\": " << (anchor_ok ? "true" : "false")
          << ", \"gap_sound\": " << (gaps_sound ? "true" : "false") << "},\n";
      out << "  \"network\": [\n";
      for (std::size_t i = 0; i < reports.size(); ++i)
        out << reports[i].to_json() << (i + 1 < reports.size() ? "," : "")
            << "\n";
      out << "  ]\n}\n";
    });
    std::cout << "report -> " << json_path << "\n";
  }

  if (!anchor_ok || !gaps_sound) return 1;
  return 0;
}
