// Optimality study — how close do the scheduling ideas get to the exact
// optimum of the single-machine FFS-MJ collapse (core/optimal.h)?
//
// Three policy families on random stage-skewed instances, each normalized
// by the DP optimum:
//
//   * FIFO                  — Baraat's kernel without multiplexing,
//   * TBS whole-job SJF     — the total-bytes-sent family's kernel; on one
//                             machine with batch arrivals this is provably
//                             optimal (exchange argument), so its ratio is
//                             exactly 1.000 — a correctness anchor,
//   * per-stage greedy      — LBEF's kernel in one dimension.
//
// The interesting observation this bench documents: the multi-faced
// advantage the paper measures does NOT exist in the single-machine
// collapse (TBS is optimal there); it comes from network parallelism and
// online arrivals — which is exactly what bench_fig5..7 exercise.
//
//   ./bench_optimality [--trials 200] [--num-jobs 5] [--seed 11]
#include <iostream>

#include "common/rng.h"
#include "common/stats.h"
#include "core/optimal.h"
#include "exp/args.h"
#include "metrics/report.h"

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  apply_log_level(args);
  const int trials = args.get_int("trials", 200);
  const int jobs_n = args.get_int("num-jobs", 5);
  const std::uint64_t seed = args.get_u64("seed", 11);

  Rng rng(seed);
  RunningStats fifo_ratio, tbs_ratio, greedy_ratio;
  for (int t = 0; t < trials; ++t) {
    std::vector<StagedJob> jobs;
    for (int i = 0; i < jobs_n; ++i) {
      StagedJob j;
      const int stages = 1 + static_cast<int>(rng.uniform_int(0, 4));
      for (int s = 0; s < stages; ++s)
        j.stage_demand.push_back(rng.lognormal(0.0, 1.5) + 0.1);
      jobs.push_back(j);
    }
    const double best = optimal_average_jct(jobs);
    fifo_ratio.add(fifo_average_jct(jobs) / best);
    tbs_ratio.add(sjf_tbs_average_jct(jobs) / best);
    greedy_ratio.add(stage_greedy_average_jct(jobs) / best);
  }

  std::cout << "=== Optimality study: avg JCT relative to the exact DP "
               "optimum (single-machine FFS-MJ collapse) ===\n"
            << trials << " random instances of " << jobs_n
            << " stage-skewed jobs, batch arrivals\n\n";
  TextTable table({"policy", "mean ratio", "worst ratio"});
  table.add_row({"FIFO (Baraat kernel, no LM)",
                 TextTable::num(fifo_ratio.mean()),
                 TextTable::num(fifo_ratio.max())});
  table.add_row({"TBS whole-job SJF (optimal here)",
                 TextTable::num(tbs_ratio.mean()),
                 TextTable::num(tbs_ratio.max())});
  table.add_row({"per-stage greedy (LBEF kernel)",
                 TextTable::num(greedy_ratio.mean()),
                 TextTable::num(greedy_ratio.max())});
  std::cout << table.to_string()
            << "\nTakeaway: in this collapse TBS-SJF is exactly optimal and "
               "per-stage greedy stays near\noptimal; the multi-faced "
               "advantage the paper reports arises from network parallelism\n"
               "and online arrivals — see bench_fig5..7."
            << std::endl;
  return 0;
}
