// Microbenchmarks (google-benchmark) for the performance-critical pieces:
// fat-tree path computation, ECMP routing, water-filling allocation,
// critical-path analysis, blocking-effect evaluation, trace generation, and
// the telemetry cost contract (engine run with no obs wiring vs a
// disabled-mask trace recorder vs full tracing).
#include <benchmark/benchmark.h>

#include "coflow/critical_path.h"
#include "coflow/shapes.h"
#include "core/blocking_effect.h"
#include "flowsim/allocator.h"
#include "flowsim/simulator.h"
#include "obs/trace.h"
#include "sched/pfs.h"
#include "topology/big_switch.h"
#include "topology/ecmp.h"
#include "topology/fattree.h"
#include "workload/trace_gen.h"

namespace gurita {
namespace {

void BM_FatTreeBuild(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const FatTree ft(FatTree::Config{k, gbps(10.0)});
    benchmark::DoNotOptimize(ft.num_hosts());
  }
}
BENCHMARK(BM_FatTreeBuild)->Arg(4)->Arg(8)->Arg(16)->Arg(48);

void BM_EcmpRoute(benchmark::State& state) {
  const FatTree ft(FatTree::Config{8, gbps(10.0)});
  const EcmpRouter router(ft);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto path = router.route(FlowId{i}, static_cast<int>(i % 128),
                                   static_cast<int>((i * 7 + 1) % 128) == static_cast<int>(i % 128)
                                       ? static_cast<int>((i * 7 + 2) % 128)
                                       : static_cast<int>((i * 7 + 1) % 128));
    benchmark::DoNotOptimize(path.data());
    ++i;
  }
}
BENCHMARK(BM_EcmpRoute);

void BM_Waterfill(benchmark::State& state) {
  const int num_flows = static_cast<int>(state.range(0));
  const FatTree ft(FatTree::Config{8, gbps(10.0)});
  const EcmpRouter router(ft);
  std::vector<SimFlow> flows(static_cast<std::size_t>(num_flows));
  for (int i = 0; i < num_flows; ++i) {
    SimFlow& f = flows[static_cast<std::size_t>(i)];
    f.id = FlowId{static_cast<std::uint64_t>(i)};
    f.size = f.remaining = 1e6;
    f.start_time = 0;
    const int src = i % 128;
    const int dst = (i * 31 + 1) % 128 == src ? (src + 1) % 128 : (i * 31 + 1) % 128;
    f.path = router.route(f.id, src, dst);
    f.tier = i % 4;
    f.weight = 1.0;
  }
  for (auto _ : state) {
    std::vector<SimFlow*> ptrs;
    ptrs.reserve(flows.size());
    for (auto& f : flows) ptrs.push_back(&f);
    allocate_rates(ft.topology(), ptrs);
    benchmark::DoNotOptimize(flows[0].rate);
  }
}
BENCHMARK(BM_Waterfill)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_CriticalPath(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  JobSpec job;
  job.deps = shapes::random_dag(rng, n, 0.2);
  for (int i = 0; i < n; ++i) {
    CoflowSpec c;
    c.flows.push_back(FlowSpec{0, 1, rng.uniform(1.0, 100.0)});
    job.coflows.push_back(c);
  }
  for (auto _ : state) {
    const auto info =
        compute_critical_path(job, estimated_cct_costs(job, gbps(10.0)));
    benchmark::DoNotOptimize(info.length);
  }
}
BENCHMARK(BM_CriticalPath)->Arg(8)->Arg(64)->Arg(512);

void BM_BlockingEffect(benchmark::State& state) {
  BlockingInputs in;
  in.omega = 0.5;
  in.epsilon = 0.6;
  in.ell_max = 1e8;
  in.width = 40;
  in.beta = 0.5;
  in.on_critical_path = true;
  for (auto _ : state) benchmark::DoNotOptimize(blocking_effect(in));
}
BENCHMARK(BM_BlockingEffect);

/// Engine run on disjoint host pairs (the bench_engine "completions"
/// scenario, scaled down): arg selects the obs wiring — 0 none, 1 recorder
/// attached with an empty kind mask (the disabled-tracing hot path the
/// < 2% overhead contract covers), 2 recorder with every kind on. The
/// bench_engine overhead guard asserts the 0-vs-1 gap; this case tracks it
/// per-iteration.
void BM_EngineRunObs(benchmark::State& state) {
  constexpr int kFlows = 2000;
  for (auto _ : state) {
    state.PauseTiming();
    const BigSwitch fabric(BigSwitch::Config{2 * kFlows, 100.0});
    PfsScheduler scheduler;
    obs::TraceRecorder recorder(
        state.range(0) == 2 ? obs::TraceRecorder::kAllKinds : 0u);
    Simulator::Config config;
    if (state.range(0) != 0) config.trace = &recorder;
    Simulator sim(fabric, scheduler, config);
    JobSpec job;
    CoflowSpec coflow;
    coflow.flows.reserve(kFlows);
    for (int i = 0; i < kFlows; ++i)
      coflow.flows.push_back(
          FlowSpec{i, kFlows + i, 100.0 * static_cast<double>(1 + i % 32)});
    job.coflows.push_back(std::move(coflow));
    job.deps = {{}};
    sim.submit(job);
    state.ResumeTiming();
    const SimResults results = sim.run();
    benchmark::DoNotOptimize(results.events);
  }
}
BENCHMARK(BM_EngineRunObs)
    ->Arg(0)   // no obs wiring
    ->Arg(1)   // disabled-mask recorder (null-check + bit-test hot path)
    ->Arg(2);  // full tracing

void BM_TraceGeneration(benchmark::State& state) {
  TraceConfig config;
  config.num_jobs = static_cast<int>(state.range(0));
  config.num_hosts = 128;
  for (auto _ : state) {
    const auto jobs = generate_trace(config);
    benchmark::DoNotOptimize(jobs.size());
  }
}
BENCHMARK(BM_TraceGeneration)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace gurita

BENCHMARK_MAIN();
