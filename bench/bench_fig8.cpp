// Figure 8 — Gurita vs GuritaPlus (the clairvoyant upper bound with exact
// per-stage in-flight bytes, instant information and free promotion), per
// size category, with (a) FB-Tao and (b) TPC-DS structures.
//
// Paper shape: Gurita matches GuritaPlus across categories, "at most within
// 0.15% of GuritaPlus' performance" — i.e. the ratio hovers at ~1.0 and
// never collapses. Receiver-side observation suffices.
//
//   ./bench_fig8 [--num-jobs 300] [--seed 7] [--jobs N]
#include <iostream>

#include "exp/args.h"
#include "exp/experiment.h"
#include "exp/runner.h"
#include "metrics/report.h"

namespace gurita {
namespace {

void print_panel(const std::string& title, const ComparisonResult& result,
                 int num_jobs, std::uint64_t seed) {
  std::cout << title << "  (jobs=" << num_jobs << ", seed=" << seed << ")\n";
  const auto& g = result.collectors.at("gurita");
  const auto& p = result.collectors.at("gurita_plus");
  std::cout << category_panel(
                   g, "gurita JCT(s)",
                   {"gurita+ JCT(s)", "gurita/gurita+ ratio"},
                   [&](int cat) -> std::vector<std::string> {
                     if (cat < 0)
                       return {TextTable::num(p.average_jct()),
                               TextTable::num(g.average_jct() /
                                              p.average_jct())};
                     const double ratio = p.average_jct(cat) > 0
                                              ? g.average_jct(cat) /
                                                    p.average_jct(cat)
                                              : 0;
                     return {TextTable::num(p.average_jct(cat)),
                             TextTable::num(ratio)};
                   })
            << "\n";
}

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  apply_log_level(args);
  const int num_jobs = args.get_int("num-jobs", 300);
  const std::uint64_t seed = args.get_u64("seed", 7);
  const int jobs = resolve_jobs(args);

  std::vector<ExperimentRun> runs;
  runs.push_back({"Fig 8(a): FB-Tao structure",
                  trace_scenario(StructureKind::kFbTao, num_jobs, seed),
                  {"gurita", "gurita_plus"}});
  runs.push_back({"Fig 8(b): TPC-DS structure",
                  trace_scenario(StructureKind::kTpcDs, num_jobs, seed),
                  {"gurita", "gurita_plus"}});
  const std::vector<ComparisonResult> results = run_matrix(runs, jobs);

  std::cout << "=== Figure 8: Gurita vs the clairvoyant GuritaPlus "
               "(ratio ~ 1.0 = receiver-side estimation suffices) ===\n\n";
  for (std::size_t i = 0; i < runs.size(); ++i)
    print_panel(runs[i].label, results[i], num_jobs, seed);
  return 0;
}
