// Figure 8 — Gurita vs GuritaPlus (the clairvoyant upper bound with exact
// per-stage in-flight bytes, instant information and free promotion), per
// size category, with (a) FB-Tao and (b) TPC-DS structures.
//
// Paper shape: Gurita matches GuritaPlus across categories, "at most within
// 0.15% of GuritaPlus' performance" — i.e. the ratio hovers at ~1.0 and
// never collapses. Receiver-side observation suffices.
//
//   ./bench_fig8 [--jobs 300] [--seed 7]
#include <iostream>

#include "exp/args.h"
#include "exp/experiment.h"
#include "metrics/report.h"

namespace gurita {
namespace {

void run_panel(const char* title, StructureKind structure, int jobs,
               std::uint64_t seed) {
  ExperimentConfig config = trace_scenario(structure, jobs, seed);
  const ComparisonResult result =
      compare_schedulers(config, {"gurita", "gurita_plus"});

  std::cout << title << "  (jobs=" << jobs << ", seed=" << seed << ")\n";
  TextTable table({"category", "jobs", "gurita JCT(s)", "gurita+ JCT(s)",
                   "gurita/gurita+ ratio"});
  const auto& g = result.collectors.at("gurita");
  const auto& p = result.collectors.at("gurita_plus");
  for (int cat = 0; cat < kNumCategories; ++cat) {
    if (g.jobs(cat) == 0) continue;
    const double ratio =
        p.average_jct(cat) > 0 ? g.average_jct(cat) / p.average_jct(cat) : 0;
    table.add_row({category_name(cat), std::to_string(g.jobs(cat)),
                   TextTable::num(g.average_jct(cat)),
                   TextTable::num(p.average_jct(cat)),
                   TextTable::num(ratio)});
  }
  table.add_row({"all", std::to_string(g.total_jobs()),
                 TextTable::num(g.average_jct()),
                 TextTable::num(p.average_jct()),
                 TextTable::num(g.average_jct() / p.average_jct())});
  std::cout << table.to_string() << "\n";
}

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  const int jobs = args.get_int("jobs", 300);
  const std::uint64_t seed = args.get_u64("seed", 7);

  std::cout << "=== Figure 8: Gurita vs the clairvoyant GuritaPlus "
               "(ratio ~ 1.0 = receiver-side estimation suffices) ===\n\n";
  run_panel("Fig 8(a): FB-Tao structure", StructureKind::kFbTao, jobs, seed);
  run_panel("Fig 8(b): TPC-DS structure", StructureKind::kTpcDs, jobs, seed);
  return 0;
}
