// Figure 7 — bursty traffic in a large-scale network: per-category
// improvement of Gurita over {Baraat, PFS, Stream, Aalo} when jobs arrive
// 2 µs apart, with (a) FB-Tao and (b) TPC-DS structures.
//
// The paper runs 10,000 jobs on a 48-pod fat-tree (27,648 servers); the
// default here is scaled down so the suite completes quickly. Reproduce at
// paper scale with:  ./bench_fig7 --pods 48 --num-jobs 10000
//
// Paper shape: up to 2x vs PFS, 1.8x vs Baraat, 1.9x vs Stream across
// categories — EXCEPT category I where Stream's pure SPQ lets it beat
// Gurita, which reserves a trickle of bandwidth for starving elephants.
//
//   ./bench_fig7 [--num-jobs 300] [--pods 8] [--seed 7] [--jobs N]
#include <iostream>

#include "exp/args.h"
#include "exp/experiment.h"
#include "exp/runner.h"
#include "metrics/report.h"

namespace gurita {
namespace {

const std::vector<std::string> kOthers = {"baraat", "pfs", "stream", "aalo"};

void print_panel(const std::string& title, const ComparisonResult& result,
                 int num_jobs, std::uint64_t seed, int pods) {
  std::cout << title << "  (jobs=" << num_jobs << ", pods=" << pods
            << ", seed=" << seed << ")\n";
  std::cout << category_panel(
                   result.collectors.at("gurita"), "gurita JCT(s)",
                   {"vs baraat", "vs pfs", "vs stream", "vs aalo"},
                   [&](int cat) {
                     std::vector<std::string> cols;
                     for (const std::string& other : kOthers)
                       cols.push_back(TextTable::num(
                           result.improvement("gurita", other, cat)));
                     return cols;
                   },
                   /*overall=*/false)
            << "\n";
}

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  apply_log_level(args);
  const int num_jobs = args.get_int("num-jobs", 300);
  const int pods = args.get_int("pods", 8);
  const std::uint64_t seed = args.get_u64("seed", 7);
  const int jobs = resolve_jobs(args);

  std::vector<std::string> all = kOthers;
  all.push_back("gurita");
  std::vector<ExperimentRun> runs;
  runs.push_back(
      {"Fig 7(a): FB-Tao structure",
       bursty_scenario(StructureKind::kFbTao, num_jobs, seed, pods), all});
  runs.push_back(
      {"Fig 7(b): TPC-DS structure",
       bursty_scenario(StructureKind::kTpcDs, num_jobs, seed, pods), all});
  const std::vector<ComparisonResult> results = run_matrix(runs, jobs);

  std::cout << "=== Figure 7: per-category improvement, bursty arrivals "
               "(2 us spacing; improvement > 1 means Gurita faster) ===\n\n";
  for (std::size_t i = 0; i < runs.size(); ++i)
    print_panel(runs[i].label, results[i], num_jobs, seed, pods);
  return 0;
}
