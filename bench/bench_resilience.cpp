// Resilience curves: JCT inflation vs fault rate, per scheduler.
//
// Replays one workload under every scheduler while scaling a base fault
// plan (host crashes, link flaps, stragglers, scheduler-state losses) by a
// list of rate factors. Factor 0 is the fault-free baseline each curve is
// normalized against — and because a zero-rate plan compiles to zero
// events, that row is byte-identical to a run without fault support at all.
//
//   ./bench_resilience [--num-jobs 120] [--seed 7] [--pods 4]
//                      [--rates 0,0.5,1,2,4]   # fault-rate scale factors
//                      [--jobs N]    # worker threads; output identical at
//                                    # any N (the determinism contract)
//
// Base plan (scaled by each factor; override with the shared fault flags,
// see exp/args.h): 2 host crashes/s, 1 link flap/s, 4 straggler windows/s,
// 0.5 state losses/s over a 1 s horizon.
//
// Output:
//   --json FILE    machine-readable curves (atomic write; no wall-clock
//                  fields, so files diff clean across runs and --jobs)
//   --trace FILE   structured trace of every run × scheduler (exp/export.h;
//                  includes fault / flow_abort / flow_retry / job_fail
//                  records), plus FILE.summary.json
//   --trace-filter CSV, --trace-binary, --log-level as everywhere else;
//   --timeline / --timeline-every / --timeline-wall / --chrome-trace /
//   --diagnostics as in bench_fig5.
//
// Checkpoint/restore (exp/args.h; DESIGN.md §12): --checkpoint-every,
// --checkpoint-dir, --resume-from, --checkpoint-halt-after. A deliberate
// mid-run halt exits with status 75 ("halted, resume me"); re-running with
// --resume-from produces output byte-identical to an uninterrupted run.
#include <iostream>
#include <sstream>
#include <vector>

#include "common/atomic_file.h"
#include "exp/args.h"
#include "exp/experiment.h"
#include "exp/export.h"
#include "exp/runner.h"
#include "metrics/report.h"
#include "obs/trace.h"
#include "snapshot/snapshot.h"

namespace gurita {
namespace {

std::vector<double> parse_rates(const std::string& csv) {
  std::vector<double> rates;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    rates.push_back(std::stod(item));
    GURITA_CHECK_MSG(rates.back() >= 0, "rate factors must be >= 0");
  }
  GURITA_CHECK_MSG(!rates.empty(), "--rates must name at least one factor");
  return rates;
}

std::string factor_label(double factor) {
  std::ostringstream os;
  os << "rate x" << factor;
  return os.str();
}

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  apply_log_level(args);
  const int num_jobs = args.get_int("num-jobs", 120);
  const std::uint64_t seed = args.get_u64("seed", 7);
  const int pods = args.get_int("pods", 4);
  const int jobs = resolve_jobs(args);
  const std::vector<double> rates =
      parse_rates(args.get_string("rates", "0,0.5,1,2,4"));
  const std::string json_path = args.get_string("json", "");
  std::string trace_path = args.get_string("trace", "");
  const bool trace_binary = args.get_bool("trace-binary", false);
  const std::string chrome_path = args.get_string("chrome-trace", "");

  ExperimentConfig base = trace_scenario(StructureKind::kFbTao, num_jobs, seed);
  base.fat_tree_k = pods;
  base.obs.trace = !trace_path.empty();
  base.obs.trace_mask =
      obs::parse_trace_filter(args.get_string("trace-filter", "default"));
  base.obs.spans = !chrome_path.empty();
  apply_timeline_flags(args, base);
  if (base.obs.timeline_every > 0 && trace_path.empty())
    trace_path = "timeline.jsonl";
  // The shared --fault-* flags tune the base plan; the rate factors below
  // scale its four event rates together.
  base.faults.plan.host_crash_rate = 2.0;
  base.faults.plan.link_flap_rate = 1.0;
  base.faults.plan.straggler_rate = 4.0;
  base.faults.plan.state_loss_rate = 0.5;
  apply_fault_flags(args, base);
  apply_checkpoint_flags(args, base);

  const std::vector<std::string> schedulers = {"gurita", "gurita_plus", "aalo",
                                               "baraat", "varys"};

  std::vector<ExperimentRun> runs;
  for (double factor : rates) {
    ExperimentRun run;
    run.label = factor_label(factor);
    run.config = base;
    run.config.faults.enabled = true;
    run.config.faults.plan.host_crash_rate *= factor;
    run.config.faults.plan.link_flap_rate *= factor;
    run.config.faults.plan.straggler_rate *= factor;
    run.config.faults.plan.state_loss_rate *= factor;
    run.schedulers = schedulers;
    runs.push_back(std::move(run));
  }

  ThreadPool::Stats pool_stats;
  std::vector<ComparisonResult> results;
  try {
    results = run_matrix(runs, jobs, &pool_stats);
  } catch (const snapshot::HaltedError& e) {
    // Deliberate --checkpoint-halt-after crash: distinct exit status so CI
    // can assert the halt happened and then re-invoke with --resume-from.
    std::cerr << "bench_resilience: " << e.what() << "\n";
    return 75;
  }

  // Baseline per scheduler: the smallest requested factor (conventionally
  // 0 — the fault-free run).
  std::size_t base_idx = 0;
  for (std::size_t i = 1; i < rates.size(); ++i)
    if (rates[i] < rates[base_idx]) base_idx = i;

  std::cout << "=== Resilience: JCT inflation vs fault rate ===\n"
               "Inflation = avg JCT (surviving jobs) / avg JCT at the "
               "baseline factor "
            << rates[base_idx]
            << ".\nFailed jobs are excluded from JCT averages and reported "
               "separately.\n\n";
  TextTable table({"factor", "scheduler", "avg JCT (s)", "inflation",
                   "failed", "aborts", "retries", "lost (MB)"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    for (const std::string& name : schedulers) {
      const SimResults& res = results[i].results.at(name);
      const SimResults& ref = results[base_idx].results.at(name);
      const double jct = res.average_jct();
      const double inflation =
          ref.average_jct() > 0 ? jct / ref.average_jct() : 0.0;
      table.add_row({factor_label(rates[i]), name, TextTable::num(jct),
                     TextTable::num(inflation),
                     std::to_string(res.failed_jobs),
                     std::to_string(res.flow_aborts),
                     std::to_string(res.flow_retries),
                     TextTable::num(res.bytes_lost / 1e6)});
    }
  }
  std::cout << table.to_string() << std::endl;

  if (!json_path.empty()) {
    write_file_atomic(json_path, /*binary=*/false, [&](std::ostream& out) {
      out.precision(17);
      out << "{\n  \"bench\": \"resilience\",\n  \"num_jobs\": " << num_jobs
          << ",\n  \"seed\": " << seed << ",\n  \"rows\": [\n";
      bool first = true;
      for (std::size_t i = 0; i < runs.size(); ++i) {
        for (const std::string& name : schedulers) {
          const SimResults& res = results[i].results.at(name);
          const SimResults& ref = results[base_idx].results.at(name);
          out << (first ? "" : ",\n") << "    {\"factor\": " << rates[i]
              << ", \"scheduler\": \"" << name
              << "\", \"avg_jct\": " << res.average_jct()
              << ", \"inflation\": "
              << (ref.average_jct() > 0 ? res.average_jct() / ref.average_jct()
                                        : 0.0)
              << ", \"failed_jobs\": " << res.failed_jobs
              << ", \"flow_aborts\": " << res.flow_aborts
              << ", \"flow_retries\": " << res.flow_retries
              << ", \"bytes_lost\": " << res.bytes_lost
              << ", \"bytes_retransmitted\": " << res.bytes_retransmitted
              << ", \"total_recovery_latency\": " << res.total_recovery_latency
              << ", \"makespan\": " << res.makespan << "}";
          first = false;
        }
      }
      out << "\n  ]\n}\n";
    });
    std::cout << "curves -> " << json_path << "\n";
  }

  std::vector<std::string> labels;
  for (const ExperimentRun& run : runs) labels.push_back(run.label);
  if (!trace_path.empty()) {
    ExportOptions export_options;
    export_options.diagnostics = base.obs.diagnostics;
    export_options.pool_stats = pool_stats;
    const std::size_t total =
        export_traces(labels, results, trace_path, trace_binary,
                      export_options);
    std::cout << "trace: " << total << " records -> " << trace_path
              << " (summary: " << trace_path << ".summary.json)\n";
  }
  if (!chrome_path.empty()) {
    export_chrome_trace(labels, results, chrome_path);
    std::cout << "chrome trace -> " << chrome_path
              << " (load at ui.perfetto.dev)\n";
  }
  return 0;
}
