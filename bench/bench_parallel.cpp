// Parallel-runner bench: wall-clock of one replicated experiment sweep at
// several worker counts, with a bit-identity check across all of them.
//
// The sweep is the evaluation's common shape — one scenario × several
// schedulers × many trace seeds — executed by exp/runner.h. For every
// entry of --jobs-list the identical sweep runs again and its pooled
// result is fingerprinted (every per-job finish time bit-exact, plus the
// merged engine counters); the bench FAILS if any fingerprint differs from
// the serial one, so the speedup numbers it reports are certified to come
// from the same results. Writes BENCH_parallel.json for cross-PR tracking.
//
//   ./bench_parallel [--num-jobs 120] [--replicates 16] [--seed 7]
//                    [--jobs-list 1,2,4,8] [--out BENCH_parallel.json]
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/atomic_file.h"
#include "exp/args.h"
#include "exp/runner.h"

namespace gurita {
namespace {

/// FNV-1a fingerprint of a pooled comparison: bit-exact on every job's
/// (id, arrival, finish) per scheduler plus the merged cost counters.
std::uint64_t fingerprint(const ComparisonResult& result) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  const auto mix_double = [&](double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  for (const auto& [name, results] : result.results) {
    for (const char c : name) mix(static_cast<unsigned char>(c));
    for (const SimResults::JobResult& j : results.jobs) {
      mix(j.id.value());
      mix_double(j.arrival);
      mix_double(j.finish);
    }
    mix(results.events);
    mix(results.flow_touches);
    mix(results.rate_recomputations);
    mix_double(results.makespan);
  }
  return h;
}

struct BenchRow {
  int jobs = 0;
  double wall_ms = 0;
  double speedup = 1.0;
  std::uint64_t fingerprint = 0;
};

std::vector<int> parse_jobs_list(const std::string& csv) {
  std::vector<int> counts;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      counts.push_back(std::stoi(item));
    } catch (const std::exception&) {
      counts.clear();
    }
    if (counts.empty() || counts.back() <= 0) {
      std::cerr << "--jobs-list expects comma-separated positive counts, "
                   "got \""
                << csv << "\"\n";
      std::exit(1);
    }
  }
  return counts;
}

bool write_json(const std::string& path, const std::vector<BenchRow>& rows,
                int replicates, int num_jobs) try {
  write_file_atomic(path, /*binary=*/false, [&](std::ostream& out) {
  out << "{\n  \"bench\": \"parallel\",\n  \"replicates\": " << replicates
      << ",\n  \"num_jobs\": " << num_jobs << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out << "    {\"jobs\": " << r.jobs << ", \"wall_ms\": " << r.wall_ms
        << ", \"speedup\": " << r.speedup << ", \"fingerprint\": \""
        << std::hex << r.fingerprint << std::dec << "\", \"identical\": "
        << (r.fingerprint == rows[0].fingerprint ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  });
  return true;
} catch (const std::exception&) {
  return false;
}

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  apply_log_level(args);
  const int num_jobs = args.get_int("num-jobs", 120);
  const int replicates = args.get_int("replicates", 16);
  const std::uint64_t seed = args.get_u64("seed", 7);
  const std::vector<int> jobs_list =
      parse_jobs_list(args.get_string("jobs-list", "1,2,4,8"));
  const std::string out_path = args.get_string("out", "BENCH_parallel.json");

  SweepSpec sweep;
  sweep.experiment = "bench_parallel";
  sweep.configs = {trace_scenario(StructureKind::kTpcDs, num_jobs, seed)};
  sweep.schedulers = {"gurita", "aalo", "pfs", "baraat"};
  sweep.replicates = replicates;

  std::cout << "=== Parallel sweep: " << replicates << " seeds x "
            << sweep.schedulers.size() << " schedulers, " << num_jobs
            << " jobs each ===\n"
               "Identical fingerprints certify bit-identical pooled results "
               "at every worker count.\n\n"
               "jobs    wall_ms     speedup   fingerprint\n";

  std::vector<BenchRow> rows;
  for (const int jobs : jobs_list) {
    const auto start = std::chrono::steady_clock::now();
    const std::vector<ComparisonResult> pooled = run_sweep(sweep, jobs);
    const auto stop = std::chrono::steady_clock::now();
    BenchRow row;
    row.jobs = jobs;
    row.wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    row.speedup = rows.empty() ? 1.0 : rows[0].wall_ms / row.wall_ms;
    row.fingerprint = fingerprint(pooled[0]);
    rows.push_back(row);
    std::printf("%-7d %9.1f %9.2fx   %016" PRIx64 "\n", row.jobs, row.wall_ms,
                row.speedup, row.fingerprint);
    if (row.fingerprint != rows[0].fingerprint) {
      std::cerr << "\nFATAL: results at --jobs " << jobs
                << " differ from --jobs " << rows[0].jobs << "\n";
      return 1;
    }
  }

  if (!write_json(out_path, rows, replicates, num_jobs)) {
    std::cerr << "\nfailed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
