// Parallel-runner bench: wall-clock of one replicated experiment sweep at
// several worker counts, with a bit-identity check across all of them.
//
// The sweep is the evaluation's common shape — one scenario × several
// schedulers × many trace seeds — executed by exp/runner.h. For every
// entry of --jobs-list the identical sweep runs again and its pooled
// result is fingerprinted (every per-job finish time bit-exact, plus the
// merged engine counters); the bench FAILS if any fingerprint differs from
// the serial one, so the speedup numbers it reports are certified to come
// from the same results. Writes BENCH_parallel.json for cross-PR tracking.
//
//   ./bench_parallel [--num-jobs 120] [--replicates 16] [--seed 7]
//                    [--jobs-list 1,2,4,8] [--out BENCH_parallel.json]
//                    [--profile] [--speedup-guard 4]
//
// --profile attaches the engine phase profiler (obs/profiler.h) and prints
// the pooled phase table per worker count — the before/after methodology
// EXPERIMENTS.md's parallel section uses. --speedup-guard X fails the
// bench (exit 1) if the largest worker count's speedup lands below X,
// scaled by min(1, hardware_threads/8) so small CI runners are held to a
// proportional bar; machines with fewer than 2 hardware threads skip the
// guard (parallelism is unmeasurable there).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "common/atomic_file.h"
#include "common/thread_pool.h"
#include "exp/args.h"
#include "exp/runner.h"
#include "obs/profiler.h"

namespace gurita {
namespace {

/// FNV-1a fingerprint of a pooled comparison: bit-exact on every job's
/// (id, arrival, finish) per scheduler plus the merged cost counters.
std::uint64_t fingerprint(const ComparisonResult& result) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  const auto mix_double = [&](double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  for (const auto& [name, results] : result.results) {
    for (const char c : name) mix(static_cast<unsigned char>(c));
    for (const SimResults::JobResult& j : results.jobs) {
      mix(j.id.value());
      mix_double(j.arrival);
      mix_double(j.finish);
    }
    mix(results.events);
    mix(results.flow_touches);
    mix(results.rate_recomputations);
    mix_double(results.makespan);
  }
  return h;
}

struct BenchRow {
  int jobs = 0;
  double wall_ms = 0;
  double speedup = 1.0;
  std::uint64_t fingerprint = 0;
};

std::vector<int> parse_jobs_list(const std::string& csv) {
  // parse_int_list validates every token fully (exp/args.h) — "4x8" or a
  // late bad entry reports the offending token instead of silently running
  // a truncated worker-count list.
  std::vector<int> counts;
  try {
    counts = parse_int_list(csv);
  } catch (const std::invalid_argument& e) {
    std::cerr << "--jobs-list: " << e.what() << "\n";
    std::exit(1);
  }
  for (const int n : counts) {
    if (n <= 0) {
      std::cerr << "--jobs-list wants positive worker counts, got " << n
                << " in \"" << csv << "\"\n";
      std::exit(1);
    }
  }
  return counts;
}

bool write_json(const std::string& path, const std::vector<BenchRow>& rows,
                int replicates, int num_jobs) try {
  write_file_atomic(path, /*binary=*/false, [&](std::ostream& out) {
  out << "{\n  \"bench\": \"parallel\",\n  \"replicates\": " << replicates
      << ",\n  \"num_jobs\": " << num_jobs << ",\n  \"hardware_threads\": "
      << ThreadPool::hardware_threads() << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out << "    {\"jobs\": " << r.jobs << ", \"wall_ms\": " << r.wall_ms
        << ", \"speedup\": " << r.speedup << ", \"fingerprint\": \""
        << std::hex << r.fingerprint << std::dec << "\", \"identical\": "
        << (r.fingerprint == rows[0].fingerprint ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  });
  return true;
} catch (const std::exception&) {
  return false;
}

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  apply_log_level(args);
  const int num_jobs = args.get_int("num-jobs", 120);
  const int replicates = args.get_int("replicates", 16);
  const std::uint64_t seed = args.get_u64("seed", 7);
  const std::vector<int> jobs_list =
      parse_jobs_list(args.get_string("jobs-list", "1,2,4,8"));
  const std::string out_path = args.get_string("out", "BENCH_parallel.json");
  const bool profile = args.get_bool("profile", false);

  SweepSpec sweep;
  sweep.experiment = "bench_parallel";
  sweep.configs = {trace_scenario(StructureKind::kTpcDs, num_jobs, seed)};
  sweep.configs[0].obs.profile = profile;
  sweep.schedulers = {"gurita", "aalo", "pfs", "baraat"};
  sweep.replicates = replicates;

  std::cout << "=== Parallel sweep: " << replicates << " seeds x "
            << sweep.schedulers.size() << " schedulers, " << num_jobs
            << " jobs each ===\n"
               "Identical fingerprints certify bit-identical pooled results "
               "at every worker count.\n\n"
               "jobs    wall_ms     speedup   fingerprint\n";

  std::vector<BenchRow> rows;
  for (const int jobs : jobs_list) {
    const auto start = std::chrono::steady_clock::now();
    const std::vector<ComparisonResult> pooled = run_sweep(sweep, jobs);
    const auto stop = std::chrono::steady_clock::now();
    BenchRow row;
    row.jobs = jobs;
    row.wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    row.speedup = rows.empty() ? 1.0 : rows[0].wall_ms / row.wall_ms;
    row.fingerprint = fingerprint(pooled[0]);
    rows.push_back(row);
    std::printf("%-7d %9.1f %9.2fx   %016" PRIx64 "\n", row.jobs, row.wall_ms,
                row.speedup, row.fingerprint);
    if (row.fingerprint != rows[0].fingerprint) {
      std::cerr << "\nFATAL: results at --jobs " << jobs
                << " differ from --jobs " << rows[0].jobs << "\n";
      return 1;
    }
    if (profile) {
      // Phase timings pooled over every run of the sweep (absorb merges
      // per-run snapshots in slot order); the wall attribution shows where
      // the workers actually spend their time at this worker count.
      obs::PhaseProfile pooled_profile;
      for (const auto& [name, results] : pooled[0].results)
        pooled_profile.merge(results.profile);
      std::cout << "\n--- phase profile at --jobs " << jobs << " ---\n"
                << pooled_profile.to_table() << "\n";
    }
  }

  if (!write_json(out_path, rows, replicates, num_jobs)) {
    std::cerr << "\nfailed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << out_path << "\n";

  if (args.has("speedup-guard")) {
    // Guard on the largest worker count's speedup, with the bar scaled to
    // the machine: a 4-core CI runner cannot reach 4x, so it is held to
    // 4 * (4/8) = 2x instead. Below 2 hardware threads there is no
    // parallelism to measure — skip rather than fail.
    const double guard = args.get_double("speedup-guard", 0.0);
    const int hw = ThreadPool::hardware_threads();
    const BenchRow& widest = *std::max_element(
        rows.begin(), rows.end(),
        [](const BenchRow& a, const BenchRow& b) { return a.jobs < b.jobs; });
    if (hw < 2) {
      std::cout << "\nspeedup guard skipped: " << hw
                << " hardware thread(s), parallel speedup is unmeasurable\n";
    } else {
      const double effective = guard * std::min(1.0, hw / 8.0);
      std::printf(
          "\nspeedup guard: %.2fx at --jobs %d vs threshold %.2fx "
          "(%.2fx scaled for %d hardware threads)\n",
          widest.speedup, widest.jobs, effective, guard, hw);
      if (widest.speedup < effective) {
        std::cerr << "FATAL: parallel speedup regressed below the guard\n";
        return 1;
      }
    }
  }
  return 0;
}
