// Figure 5 — headline averages: improvement of Gurita over {Baraat, PFS,
// Stream, Aalo} across the four evaluation scenarios: trace-driven and
// bursty, each with FB-Tao (FB) and TPC-DS (CD, the Cloudera benchmark)
// DAG structures.
//
// Paper shape to reproduce: up to ~2x vs PFS, ~1.8x vs Baraat, ~1.5x vs
// Stream, ~parity with Aalo (1.05x trace-driven, 0.99x bursty).
//
//   ./bench_fig5 [--jobs 300] [--bursty-jobs 400] [--seed 7] [--pods 8]
#include <iostream>

#include "exp/args.h"
#include "exp/experiment.h"
#include "metrics/report.h"

namespace gurita {
namespace {

/// Returns (avg-JCT improvement, mean per-job speedup) per comparator.
std::vector<std::pair<double, double>> run_scenario(
    const ExperimentConfig& config, const std::vector<std::string>& others) {
  std::vector<std::string> all = others;
  all.push_back("gurita");
  const ComparisonResult result = compare_schedulers(config, all);
  std::vector<std::pair<double, double>> improvements;
  improvements.reserve(others.size());
  for (const std::string& other : others)
    improvements.emplace_back(result.improvement("gurita", other),
                              result.per_job_speedup("gurita", other));
  return improvements;
}

std::string cell(const std::pair<double, double>& v) {
  return TextTable::num(v.first) + " / " + TextTable::num(v.second);
}

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  const int jobs = args.get_int("jobs", 300);
  const int bursty_jobs = args.get_int("bursty-jobs", 200);
  const std::uint64_t seed = args.get_u64("seed", 7);
  const int bursty_pods = args.get_int("pods", 8);

  const std::vector<std::string> others = {"baraat", "pfs", "stream", "aalo"};

  std::cout << "=== Figure 5: average improvement of Gurita per scenario ===\n"
               "Each cell: avg-JCT ratio / mean per-job speedup "
               "(> 1 means Gurita faster).\n"
               "The avg-JCT ratio is dominated by the few giant jobs; the\n"
               "per-job speedup weights every job equally and carries the\n"
               "paper's headline magnitudes.\n\n";
  TextTable table(
      {"scenario", "vs baraat", "vs pfs", "vs stream", "vs aalo"});

  struct Row {
    const char* name;
    ExperimentConfig config;
  };
  const Row rows[] = {
      {"FB-t (FB-Tao, trace)",
       trace_scenario(StructureKind::kFbTao, jobs, seed)},
      {"CD-t (TPC-DS, trace)",
       trace_scenario(StructureKind::kTpcDs, jobs, seed)},
      {"FB-b (FB-Tao, bursty)",
       bursty_scenario(StructureKind::kFbTao, bursty_jobs, seed, bursty_pods)},
      {"CD-b (TPC-DS, bursty)",
       bursty_scenario(StructureKind::kTpcDs, bursty_jobs, seed, bursty_pods)},
  };
  for (const Row& row : rows) {
    const auto imp = run_scenario(row.config, others);
    table.add_row(
        {row.name, cell(imp[0]), cell(imp[1]), cell(imp[2]), cell(imp[3])});
  }
  std::cout << table.to_string() << std::endl;
  return 0;
}
