// Figure 5 — headline averages: improvement of Gurita over {Baraat, PFS,
// Stream, Aalo} across the four evaluation scenarios: trace-driven and
// bursty, each with FB-Tao (FB) and TPC-DS (CD, the Cloudera benchmark)
// DAG structures.
//
// Paper shape to reproduce: up to ~2x vs PFS, ~1.8x vs Baraat, ~1.5x vs
// Stream, ~parity with Aalo (1.05x trace-driven, 0.99x bursty).
//
//   ./bench_fig5 [--num-jobs 300] [--bursty-jobs 400] [--seed 7] [--pods 8]
//                [--jobs N]   # worker threads; output identical at any N
#include <iostream>

#include "exp/args.h"
#include "exp/experiment.h"
#include "exp/runner.h"
#include "metrics/report.h"

namespace gurita {
namespace {

std::string cell(const ComparisonResult& result, const std::string& other) {
  return TextTable::num(result.improvement("gurita", other)) + " / " +
         TextTable::num(result.per_job_speedup("gurita", other));
}

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  const int num_jobs = args.get_int("num-jobs", 300);
  const int bursty_jobs = args.get_int("bursty-jobs", 200);
  const std::uint64_t seed = args.get_u64("seed", 7);
  const int bursty_pods = args.get_int("pods", 8);
  const int jobs = resolve_jobs(args);

  const std::vector<std::string> others = {"baraat", "pfs", "stream", "aalo"};
  std::vector<std::string> all = others;
  all.push_back("gurita");

  std::vector<ExperimentRun> runs;
  runs.push_back({"FB-t (FB-Tao, trace)",
                  trace_scenario(StructureKind::kFbTao, num_jobs, seed), all});
  runs.push_back({"CD-t (TPC-DS, trace)",
                  trace_scenario(StructureKind::kTpcDs, num_jobs, seed), all});
  runs.push_back(
      {"FB-b (FB-Tao, bursty)",
       bursty_scenario(StructureKind::kFbTao, bursty_jobs, seed, bursty_pods),
       all});
  runs.push_back(
      {"CD-b (TPC-DS, bursty)",
       bursty_scenario(StructureKind::kTpcDs, bursty_jobs, seed, bursty_pods),
       all});

  const std::vector<ComparisonResult> results = run_matrix(runs, jobs);

  std::cout << "=== Figure 5: average improvement of Gurita per scenario ===\n"
               "Each cell: avg-JCT ratio / mean per-job speedup "
               "(> 1 means Gurita faster).\n"
               "The avg-JCT ratio is dominated by the few giant jobs; the\n"
               "per-job speedup weights every job equally and carries the\n"
               "paper's headline magnitudes.\n\n";
  TextTable table(
      {"scenario", "vs baraat", "vs pfs", "vs stream", "vs aalo"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::vector<std::string> row = {runs[i].label};
    for (const std::string& other : others)
      row.push_back(cell(results[i], other));
    table.add_row(row);
  }
  std::cout << table.to_string() << std::endl;
  return 0;
}
