// Figure 5 — headline averages: improvement of Gurita over {Baraat, PFS,
// Stream, Aalo} across the four evaluation scenarios: trace-driven and
// bursty, each with FB-Tao (FB) and TPC-DS (CD, the Cloudera benchmark)
// DAG structures.
//
// Paper shape to reproduce: up to ~2x vs PFS, ~1.8x vs Baraat, ~1.5x vs
// Stream, ~parity with Aalo (1.05x trace-driven, 0.99x bursty).
//
//   ./bench_fig5 [--num-jobs 300] [--bursty-jobs 400] [--seed 7] [--pods 8]
//                [--jobs N]   # worker threads; output identical at any N
//
// Telemetry (obs/):
//   --trace FILE        export a structured trace of every run (JSONL; one
//                       section per run×scheduler, labeled "run/scheduler").
//                       Also writes FILE.summary.json with per-kind record
//                       counts and the engine cost counters.
//   --trace-filter CSV  record kinds ("all", "default", or a comma list of
//                       kind names — see obs/trace.h)
//   --trace-binary      write the compact binary format instead of JSONL
//   --profile           print the engine phase profile summed over all runs
//   --timeline          deterministic interval sampler: periodic kSample /
//                       kMemSample records in the trace (byte-identical at
//                       any --jobs; defaults the export to timeline.jsonl
//                       when --trace is absent)
//   --timeline-every T  sampling cadence in simulated seconds (default 0.05)
//   --timeline-wall     opt-in wall-clock samples (NOT deterministic)
//   --chrome-trace FILE Chrome Trace Event JSON (phase spans + sampler
//                       tracks) for ui.perfetto.dev / chrome://tracing
//   --diagnostics       non-deterministic run health (allocator work,
//                       memory peaks, pool stats) in the summary JSON
//   --log-level LVL     debug|info|warn|error|off
//
// Checkpoint/restore (exp/args.h; DESIGN.md §12): --checkpoint-every,
// --checkpoint-dir, --resume-from, --checkpoint-halt-after. A deliberate
// mid-run halt exits with status 75 ("halted, resume me"); re-running with
// --resume-from produces output byte-identical to an uninterrupted run.
#include <iostream>

#include "exp/args.h"
#include "exp/experiment.h"
#include "exp/export.h"
#include "exp/runner.h"
#include "metrics/report.h"
#include "obs/trace.h"
#include "snapshot/snapshot.h"

namespace gurita {
namespace {

std::string cell(const ComparisonResult& result, const std::string& other) {
  return TextTable::num(result.improvement("gurita", other)) + " / " +
         TextTable::num(result.per_job_speedup("gurita", other));
}

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  apply_log_level(args);
  const int num_jobs = args.get_int("num-jobs", 300);
  const int bursty_jobs = args.get_int("bursty-jobs", 200);
  const std::uint64_t seed = args.get_u64("seed", 7);
  const int bursty_pods = args.get_int("pods", 8);
  const int jobs = resolve_jobs(args);
  std::string trace_path = args.get_string("trace", "");
  const bool trace_binary = args.get_bool("trace-binary", false);
  const bool profile = args.get_bool("profile", false);
  const std::string chrome_path = args.get_string("chrome-trace", "");

  ExperimentConfig::ObsOptions obs_options;
  obs_options.trace = !trace_path.empty();
  obs_options.trace_mask =
      obs::parse_trace_filter(args.get_string("trace-filter", "default"));
  obs_options.profile = profile;
  obs_options.spans = !chrome_path.empty();
  {
    ExperimentConfig scratch;
    scratch.obs = obs_options;
    apply_timeline_flags(args, scratch);
    obs_options = scratch.obs;
  }
  // A timeline without an export path still needs a file to land in.
  if (obs_options.timeline_every > 0 && trace_path.empty())
    trace_path = "timeline.jsonl";

  const std::vector<std::string> others = {"baraat", "pfs", "stream", "aalo"};
  std::vector<std::string> all = others;
  all.push_back("gurita");

  std::vector<ExperimentRun> runs;
  runs.push_back({"FB-t (FB-Tao, trace)",
                  trace_scenario(StructureKind::kFbTao, num_jobs, seed), all});
  runs.push_back({"CD-t (TPC-DS, trace)",
                  trace_scenario(StructureKind::kTpcDs, num_jobs, seed), all});
  runs.push_back(
      {"FB-b (FB-Tao, bursty)",
       bursty_scenario(StructureKind::kFbTao, bursty_jobs, seed, bursty_pods),
       all});
  runs.push_back(
      {"CD-b (TPC-DS, bursty)",
       bursty_scenario(StructureKind::kTpcDs, bursty_jobs, seed, bursty_pods),
       all});
  for (ExperimentRun& run : runs) {
    run.config.obs = obs_options;
    apply_checkpoint_flags(args, run.config);
  }

  ThreadPool::Stats pool_stats;
  std::vector<ComparisonResult> results;
  try {
    results = run_matrix(runs, jobs, &pool_stats);
  } catch (const snapshot::HaltedError& e) {
    // Deliberate --checkpoint-halt-after crash: distinct exit status so CI
    // can assert the halt happened and then re-invoke with --resume-from.
    std::cerr << "bench_fig5: " << e.what() << "\n";
    return 75;
  }

  std::cout << "=== Figure 5: average improvement of Gurita per scenario ===\n"
               "Each cell: avg-JCT ratio / mean per-job speedup "
               "(> 1 means Gurita faster).\n"
               "The avg-JCT ratio is dominated by the few giant jobs; the\n"
               "per-job speedup weights every job equally and carries the\n"
               "paper's headline magnitudes.\n\n";
  TextTable table(
      {"scenario", "vs baraat", "vs pfs", "vs stream", "vs aalo"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::vector<std::string> row = {runs[i].label};
    for (const std::string& other : others)
      row.push_back(cell(results[i], other));
    table.add_row(row);
  }
  std::cout << table.to_string() << std::endl;

  // Trace export (exp/export.h): sections in run-matrix slot order,
  // schedulers in map (name) order within a run — the same walk at any
  // --jobs, so the file is byte-identical at any worker count. Both files
  // are written atomically (tmp + rename).
  std::vector<std::string> labels;
  for (const ExperimentRun& run : runs) labels.push_back(run.label);
  if (!trace_path.empty()) {
    ExportOptions export_options;
    export_options.diagnostics = obs_options.diagnostics;
    export_options.pool_stats = pool_stats;
    const std::size_t total_records =
        export_traces(labels, results, trace_path, trace_binary,
                      export_options);
    std::cout << "trace: " << total_records << " records -> " << trace_path
              << " (summary: " << trace_path << ".summary.json)\n";
  }
  if (!chrome_path.empty()) {
    export_chrome_trace(labels, results, chrome_path);
    std::cout << "chrome trace -> " << chrome_path
              << " (load at ui.perfetto.dev)\n";
  }

  if (profile) {
    obs::PhaseProfile total;
    for (const ComparisonResult& result : results)
      for (const auto& [name, res] : result.results) total.merge(res.profile);
    std::cout << "\n=== Engine phase profile (summed over "
              << total.runs << " runs) ===\n"
              << total.to_table();
  }
  return 0;
}
