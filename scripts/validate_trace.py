#!/usr/bin/env python3
"""Validate a structured simulation trace exported by a bench driver.

Usage: validate_trace.py TRACE.jsonl [TRACE.jsonl.summary.json]
                         [--continuation PARTIAL.jsonl]

Checks, in order:
  1. every line parses as JSON and carries "t" (a number) and a known "kind";
  2. kQueueChange records carry the queue transition (old/new/cause) and, for
     Gurita HR decisions, the full Psi factor breakdown (omega, epsilon,
     ell_max, n, cp_discount, psi); fault-model records (fault, flow_abort,
     flow_retry, job_fail) carry their typed fields; interval-sampler
     records (sample, mem_sample, wall_sample — a bench driver's --timeline
     flag) carry theirs, and mem_sample's total_bytes equals the sum of its
     per-subsystem fields;
  3. the event stream pairs up, fault-aware:
       job_arrival    == job_finish + job_fail
       coflow_release == coflow_finish + sum(job_fail.cancelled_coflows)
       flow_release + flow_retry ==
           flow_finish + flow_abort + sum(job_fail.cancelled_running)
     (a parked flow cancelled by its job's failure already produced a
     flow_abort, so it is counted by cancelled_parked, not here);
  4. when the summary is given, per-kind line counts equal the registry's
     "trace.<kind>" counters exactly;
  5. with --continuation, TRACE must be a *seamless continuation* of
     PARTIAL: section by section, PARTIAL's records are a byte-exact prefix
     of TRACE's, and the first record TRACE adds past the seam never steps
     backwards in time. This is how CI checks that a run resumed from a
     checkpoint (DESIGN.md §12) extends its history instead of rewriting it.

Exit code 0 on success, 1 with a diagnostic on the first failure.
"""
import collections
import json
import sys

KNOWN_KINDS = {
    "job_arrival", "coflow_release", "flow_release", "flow_rate_change",
    "flow_finish", "coflow_finish", "stage_complete", "job_finish",
    "queue_change", "starvation_weights", "capacity_change", "heavy_mark",
    "fault", "flow_abort", "flow_retry", "job_fail",
    "sample", "mem_sample", "wall_sample",
    # Open-horizon service records (src/service/, DESIGN.md §15).
    "admit", "shed", "drain_start", "compact", "degrade",
}
# Interval-sampler record fields (obs/sampler.h; --timeline in the bench
# drivers). kSample counts live entities and engine counters; kMemSample
# carries logical per-subsystem byte totals.
SAMPLE_INT_FIELDS = ("active_flows", "active_coflows", "active_jobs")
SAMPLE_NUM_FIELDS = ("events", "events_per_sec", "calendar", "flow_touches",
                     "rate_recomputations", "trace_records")
MEM_SAMPLE_FIELDS = ("state_bytes", "calendar_bytes", "retry_bytes",
                     "trace_bytes", "active_set_bytes", "total_bytes")
WALL_SAMPLE_FIELDS = ("wall_ms", "events", "events_per_wall_sec")
# FaultKind enum range (fault/fault.h).
NUM_FAULT_KINDS = 7
# QueueChangeCause::kHrDecision — the cause whose records must carry the
# full Psi breakdown (obs/trace.h).
CAUSE_HR_DECISION = 1
PSI_FIELDS = ("omega", "epsilon", "ell_max", "n", "cp_discount", "psi")


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require_int(rec, lineno, line, kind, fields, minimum=None):
    for field in fields:
        value = rec.get(field)
        if not isinstance(value, int):
            fail(f"line {lineno} {kind} lacks integer '{field}': {line[:120]}")
        if minimum is not None and value < minimum:
            fail(f"line {lineno} {kind} has {field}={value} < {minimum}: "
                 f"{line[:120]}")


def validate_line(lineno, line, counts, tallies):
    try:
        rec = json.loads(line)
    except json.JSONDecodeError as e:
        fail(f"line {lineno} is not valid JSON ({e}): {line[:120]}")
    if not isinstance(rec.get("t"), (int, float)):
        fail(f"line {lineno} has no numeric 't': {line[:120]}")
    kind = rec.get("kind")
    if kind not in KNOWN_KINDS:
        fail(f"line {lineno} has unknown kind {kind!r}: {line[:120]}")
    counts[kind] += 1
    if kind == "queue_change":
        for field in ("old", "new", "cause"):
            if not isinstance(rec.get(field), int):
                fail(f"line {lineno} queue_change lacks integer "
                     f"'{field}': {line[:120]}")
        if rec["cause"] == CAUSE_HR_DECISION:
            for field in PSI_FIELDS:
                if not isinstance(rec.get(field), (int, float)):
                    fail(f"line {lineno} HR-decision queue_change lacks Psi "
                         f"factor '{field}': {line[:120]}")
    elif kind == "fault":
        require_int(rec, lineno, line, kind, ("fault_kind", "host", "link"))
        if not 0 <= rec["fault_kind"] < NUM_FAULT_KINDS:
            fail(f"line {lineno} fault has fault_kind={rec['fault_kind']} "
                 f"outside [0, {NUM_FAULT_KINDS}): {line[:120]}")
    elif kind == "flow_abort":
        require_int(rec, lineno, line, kind, ("attempt", "cause"))
        if not isinstance(rec.get("lost"), (int, float)) or rec["lost"] < 0:
            fail(f"line {lineno} flow_abort lacks non-negative 'lost': "
                 f"{line[:120]}")
    elif kind == "flow_retry":
        require_int(rec, lineno, line, kind, ("attempt",))
        if not isinstance(rec.get("latency"), (int, float)):
            fail(f"line {lineno} flow_retry lacks numeric 'latency': "
                 f"{line[:120]}")
    elif kind == "job_fail":
        require_int(rec, lineno, line, kind,
                    ("cancelled_coflows", "cancelled_running",
                     "cancelled_parked"), minimum=0)
        tallies["cancelled_coflows"] += rec["cancelled_coflows"]
        tallies["cancelled_running"] += rec["cancelled_running"]
    elif kind == "sample":
        require_int(rec, lineno, line, kind, SAMPLE_INT_FIELDS, minimum=0)
        for field in SAMPLE_NUM_FIELDS:
            value = rec.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                fail(f"line {lineno} sample lacks non-negative '{field}': "
                     f"{line[:120]}")
    elif kind == "mem_sample":
        total = 0
        for field in MEM_SAMPLE_FIELDS:
            value = rec.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                fail(f"line {lineno} mem_sample lacks non-negative "
                     f"'{field}': {line[:120]}")
            if field != "total_bytes":
                total += value
        if rec["total_bytes"] != total:
            fail(f"line {lineno} mem_sample total_bytes={rec['total_bytes']} "
                 f"!= sum of subsystems {total}: {line[:120]}")
    elif kind == "wall_sample":
        for field in WALL_SAMPLE_FIELDS:
            if not isinstance(rec.get(field), (int, float)):
                fail(f"line {lineno} wall_sample lacks numeric '{field}': "
                     f"{line[:120]}")
    elif kind == "admit":
        require_int(rec, lineno, line, kind, ("queue_depth",), minimum=0)
        for field in ("arrival", "queue_wait"):
            if not isinstance(rec.get(field), (int, float)):
                fail(f"line {lineno} admit lacks numeric '{field}': "
                     f"{line[:120]}")
    elif kind == "shed":
        require_int(rec, lineno, line, kind, ("policy", "reason"))
        require_int(rec, lineno, line, kind, ("queue_depth",), minimum=0)
        if not isinstance(rec.get("bytes"), (int, float)) or rec["bytes"] < 0:
            fail(f"line {lineno} shed lacks non-negative 'bytes': "
                 f"{line[:120]}")
    elif kind == "drain_start":
        require_int(rec, lineno, line, kind, ("cause",))
        require_int(rec, lineno, line, kind, ("queued",), minimum=0)
    elif kind == "compact":
        require_int(rec, lineno, line, kind,
                    ("jobs_evicted", "coflows_evicted", "flows_evicted"),
                    minimum=0)
    elif kind == "degrade":
        require_int(rec, lineno, line, kind, ("entered",))


def read_sections(path):
    """Raw lines grouped by their "section" field, in first-seen order."""
    sections = collections.OrderedDict()
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                section = json.loads(line).get("section", "")
            except json.JSONDecodeError as e:
                fail(f"{path}: not valid JSON ({e}): {line[:120]}")
            sections.setdefault(section, []).append(line)
    return sections


def check_continuation(trace_path, partial_path):
    """TRACE must extend PARTIAL: per section a byte-exact prefix, and the
    first appended record must not step backwards in time."""
    full = read_sections(trace_path)
    partial = read_sections(partial_path)
    carried = 0
    for section, plines in partial.items():
        flines = full.get(section)
        if flines is None:
            fail(f"continuation: section {section!r} of {partial_path} "
                 f"is missing from {trace_path}")
        if len(flines) < len(plines):
            fail(f"continuation: section {section!r} shrank from "
                 f"{len(plines)} to {len(flines)} records")
        for i, (p, f) in enumerate(zip(plines, flines)):
            if p != f:
                fail(f"continuation: section {section!r} record {i} was "
                     f"rewritten:\n  partial: {p[:120]}\n  full:    {f[:120]}")
        if len(flines) > len(plines) and plines:
            t_seam = json.loads(plines[-1])["t"]
            t_next = json.loads(flines[len(plines)])["t"]
            if t_next < t_seam:
                fail(f"continuation: section {section!r} steps backwards "
                     f"across the seam: t={t_next} after t={t_seam}")
        carried += len(plines)
    print(f"validate_trace: continuation OK: {trace_path} extends "
          f"{carried} records of {partial_path} across "
          f"{len(partial)} section(s)")


def main():
    args = sys.argv[1:]
    continuation = None
    if "--continuation" in args:
        idx = args.index("--continuation")
        if idx + 1 >= len(args):
            fail("--continuation needs a PARTIAL.jsonl argument")
        continuation = args[idx + 1]
        del args[idx:idx + 2]
    if len(args) not in (1, 2):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    sys.argv = [sys.argv[0]] + args
    trace_path = sys.argv[1]
    counts = collections.Counter()
    tallies = collections.Counter()
    lines = 0
    with open(trace_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            lines += 1
            validate_line(lineno, line, counts, tallies)
    if lines == 0:
        fail(f"{trace_path} contains no records")

    # Fault-aware pairing: every entity that enters the system leaves it,
    # through completion, abort-and-park, or its job's failure.
    jobs_out = counts["job_finish"] + counts["job_fail"]
    if counts["job_arrival"] != jobs_out:
        fail(f"unpaired events: job_arrival={counts['job_arrival']} but "
             f"job_finish+job_fail={jobs_out}")
    coflows_out = counts["coflow_finish"] + tallies["cancelled_coflows"]
    if counts["coflow_release"] != coflows_out:
        fail(f"unpaired events: coflow_release={counts['coflow_release']} but "
             f"coflow_finish+cancelled_coflows={coflows_out}")
    flows_in = counts["flow_release"] + counts["flow_retry"]
    flows_out = (counts["flow_finish"] + counts["flow_abort"] +
                 tallies["cancelled_running"])
    if flows_in != flows_out:
        fail(f"unpaired events: flow_release+flow_retry={flows_in} but "
             f"flow_finish+flow_abort+cancelled_running={flows_out}")

    if len(sys.argv) == 3:
        with open(sys.argv[2], encoding="utf-8") as f:
            summary = json.load(f)
        registry = summary.get("counters", {})
        for kind in sorted(KNOWN_KINDS):
            expected = registry.get(f"trace.{kind}", 0)
            if counts[kind] != expected:
                fail(f"count mismatch for {kind}: trace has {counts[kind]} "
                     f"records, summary counter says {expected}")
        if registry.get("trace.dropped", 0):
            fail(f"trace dropped {registry['trace.dropped']} records "
                 f"(recorder cap hit); raise the cap for CI smoke runs")

    by_kind = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"validate_trace: OK: {lines} records ({by_kind})")

    if continuation is not None:
        check_continuation(trace_path, continuation)


if __name__ == "__main__":
    main()
