#!/usr/bin/env python3
"""Validate a structured simulation trace exported by a bench driver.

Usage: validate_trace.py TRACE.jsonl [TRACE.jsonl.summary.json]

Checks, in order:
  1. every line parses as JSON and carries "t" (a number) and a known "kind";
  2. kQueueChange records carry the queue transition (old/new/cause) and, for
     Gurita HR decisions, the full Psi factor breakdown (omega, epsilon,
     ell_max, n, cp_discount, psi);
  3. the event stream pairs up: job_arrival == job_finish,
     coflow_release == coflow_finish, flow_release == flow_finish;
  4. when the summary is given, per-kind line counts equal the registry's
     "trace.<kind>" counters exactly.

Exit code 0 on success, 1 with a diagnostic on the first failure.
"""
import collections
import json
import sys

KNOWN_KINDS = {
    "job_arrival", "coflow_release", "flow_release", "flow_rate_change",
    "flow_finish", "coflow_finish", "stage_complete", "job_finish",
    "queue_change", "starvation_weights", "capacity_change", "heavy_mark",
}
# QueueChangeCause::kHrDecision — the cause whose records must carry the
# full Psi breakdown (obs/trace.h).
CAUSE_HR_DECISION = 1
PSI_FIELDS = ("omega", "epsilon", "ell_max", "n", "cp_discount", "psi")


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_line(lineno, line, counts):
    try:
        rec = json.loads(line)
    except json.JSONDecodeError as e:
        fail(f"line {lineno} is not valid JSON ({e}): {line[:120]}")
    if not isinstance(rec.get("t"), (int, float)):
        fail(f"line {lineno} has no numeric 't': {line[:120]}")
    kind = rec.get("kind")
    if kind not in KNOWN_KINDS:
        fail(f"line {lineno} has unknown kind {kind!r}: {line[:120]}")
    counts[kind] += 1
    if kind == "queue_change":
        for field in ("old", "new", "cause"):
            if not isinstance(rec.get(field), int):
                fail(f"line {lineno} queue_change lacks integer "
                     f"'{field}': {line[:120]}")
        if rec["cause"] == CAUSE_HR_DECISION:
            for field in PSI_FIELDS:
                if not isinstance(rec.get(field), (int, float)):
                    fail(f"line {lineno} HR-decision queue_change lacks Psi "
                         f"factor '{field}': {line[:120]}")


def main():
    if len(sys.argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    trace_path = sys.argv[1]
    counts = collections.Counter()
    lines = 0
    with open(trace_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            lines += 1
            validate_line(lineno, line, counts)
    if lines == 0:
        fail(f"{trace_path} contains no records")

    for released, finished in (("job_arrival", "job_finish"),
                               ("coflow_release", "coflow_finish"),
                               ("flow_release", "flow_finish")):
        if counts[released] != counts[finished]:
            fail(f"unpaired events: {released}={counts[released]} but "
                 f"{finished}={counts[finished]}")

    if len(sys.argv) == 3:
        with open(sys.argv[2], encoding="utf-8") as f:
            summary = json.load(f)
        registry = summary.get("counters", {})
        for kind in sorted(KNOWN_KINDS):
            expected = registry.get(f"trace.{kind}", 0)
            if counts[kind] != expected:
                fail(f"count mismatch for {kind}: trace has {counts[kind]} "
                     f"records, summary counter says {expected}")
        if registry.get("trace.dropped", 0):
            fail(f"trace dropped {registry['trace.dropped']} records "
                 f"(recorder cap hit); raise the cap for CI smoke runs")

    by_kind = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"validate_trace: OK: {lines} records ({by_kind})")


if __name__ == "__main__":
    main()
