file(REMOVE_RECURSE
  "CMakeFiles/bench_optimality.dir/bench_optimality.cpp.o"
  "CMakeFiles/bench_optimality.dir/bench_optimality.cpp.o.d"
  "bench_optimality"
  "bench_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
