# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/coflow_test[1]_include.cmake")
include("/root/repo/build/tests/shapes_test[1]_include.cmake")
include("/root/repo/build/tests/critical_path_test[1]_include.cmake")
include("/root/repo/build/tests/allocator_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/thresholds_test[1]_include.cmake")
include("/root/repo/build/tests/sched_baselines_test[1]_include.cmake")
include("/root/repo/build/tests/blocking_effect_test[1]_include.cmake")
include("/root/repo/build/tests/starvation_test[1]_include.cmake")
include("/root/repo/build/tests/gurita_test[1]_include.cmake")
include("/root/repo/build/tests/gurita_plus_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/exp_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_thresholds_test[1]_include.cmake")
include("/root/repo/build/tests/varys_test[1]_include.cmake")
include("/root/repo/build/tests/optimal_test[1]_include.cmake")
include("/root/repo/build/tests/extended_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/big_switch_test[1]_include.cmake")
include("/root/repo/build/tests/gurita_stats_test[1]_include.cmake")
include("/root/repo/build/tests/disruption_property_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_ramp_test[1]_include.cmake")
include("/root/repo/build/tests/deadlines_test[1]_include.cmake")
