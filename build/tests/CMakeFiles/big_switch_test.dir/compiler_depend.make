# Empty compiler generated dependencies file for big_switch_test.
# This may be replaced when dependencies are built.
