file(REMOVE_RECURSE
  "CMakeFiles/big_switch_test.dir/big_switch_test.cpp.o"
  "CMakeFiles/big_switch_test.dir/big_switch_test.cpp.o.d"
  "big_switch_test"
  "big_switch_test.pdb"
  "big_switch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/big_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
