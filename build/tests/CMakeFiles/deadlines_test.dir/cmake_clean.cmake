file(REMOVE_RECURSE
  "CMakeFiles/deadlines_test.dir/deadlines_test.cpp.o"
  "CMakeFiles/deadlines_test.dir/deadlines_test.cpp.o.d"
  "deadlines_test"
  "deadlines_test.pdb"
  "deadlines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
