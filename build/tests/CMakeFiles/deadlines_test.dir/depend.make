# Empty dependencies file for deadlines_test.
# This may be replaced when dependencies are built.
