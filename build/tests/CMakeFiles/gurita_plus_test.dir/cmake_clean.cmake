file(REMOVE_RECURSE
  "CMakeFiles/gurita_plus_test.dir/gurita_plus_test.cpp.o"
  "CMakeFiles/gurita_plus_test.dir/gurita_plus_test.cpp.o.d"
  "gurita_plus_test"
  "gurita_plus_test.pdb"
  "gurita_plus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gurita_plus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
