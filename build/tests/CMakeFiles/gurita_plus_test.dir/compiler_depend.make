# Empty compiler generated dependencies file for gurita_plus_test.
# This may be replaced when dependencies are built.
