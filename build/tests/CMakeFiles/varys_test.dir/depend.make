# Empty dependencies file for varys_test.
# This may be replaced when dependencies are built.
