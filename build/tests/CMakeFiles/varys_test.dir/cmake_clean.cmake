file(REMOVE_RECURSE
  "CMakeFiles/varys_test.dir/varys_test.cpp.o"
  "CMakeFiles/varys_test.dir/varys_test.cpp.o.d"
  "varys_test"
  "varys_test.pdb"
  "varys_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/varys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
