# Empty dependencies file for extended_metrics_test.
# This may be replaced when dependencies are built.
