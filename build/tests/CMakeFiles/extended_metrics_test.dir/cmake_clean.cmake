file(REMOVE_RECURSE
  "CMakeFiles/extended_metrics_test.dir/extended_metrics_test.cpp.o"
  "CMakeFiles/extended_metrics_test.dir/extended_metrics_test.cpp.o.d"
  "extended_metrics_test"
  "extended_metrics_test.pdb"
  "extended_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
