file(REMOVE_RECURSE
  "CMakeFiles/disruption_property_test.dir/disruption_property_test.cpp.o"
  "CMakeFiles/disruption_property_test.dir/disruption_property_test.cpp.o.d"
  "disruption_property_test"
  "disruption_property_test.pdb"
  "disruption_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disruption_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
