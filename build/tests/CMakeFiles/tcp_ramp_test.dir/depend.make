# Empty dependencies file for tcp_ramp_test.
# This may be replaced when dependencies are built.
