file(REMOVE_RECURSE
  "CMakeFiles/tcp_ramp_test.dir/tcp_ramp_test.cpp.o"
  "CMakeFiles/tcp_ramp_test.dir/tcp_ramp_test.cpp.o.d"
  "tcp_ramp_test"
  "tcp_ramp_test.pdb"
  "tcp_ramp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_ramp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
