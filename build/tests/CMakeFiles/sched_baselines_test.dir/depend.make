# Empty dependencies file for sched_baselines_test.
# This may be replaced when dependencies are built.
