file(REMOVE_RECURSE
  "CMakeFiles/gurita_test.dir/gurita_test.cpp.o"
  "CMakeFiles/gurita_test.dir/gurita_test.cpp.o.d"
  "gurita_test"
  "gurita_test.pdb"
  "gurita_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gurita_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
