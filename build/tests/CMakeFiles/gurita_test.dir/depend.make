# Empty dependencies file for gurita_test.
# This may be replaced when dependencies are built.
