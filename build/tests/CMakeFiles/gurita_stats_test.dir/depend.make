# Empty dependencies file for gurita_stats_test.
# This may be replaced when dependencies are built.
