file(REMOVE_RECURSE
  "CMakeFiles/gurita_stats_test.dir/gurita_stats_test.cpp.o"
  "CMakeFiles/gurita_stats_test.dir/gurita_stats_test.cpp.o.d"
  "gurita_stats_test"
  "gurita_stats_test.pdb"
  "gurita_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gurita_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
