# Empty compiler generated dependencies file for blocking_effect_test.
# This may be replaced when dependencies are built.
