
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/blocking_effect_test.cpp" "tests/CMakeFiles/blocking_effect_test.dir/blocking_effect_test.cpp.o" "gcc" "tests/CMakeFiles/blocking_effect_test.dir/blocking_effect_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/gurita_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gurita_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/gurita_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gurita_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gurita_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/flowsim/CMakeFiles/gurita_flowsim.dir/DependInfo.cmake"
  "/root/repo/build/src/coflow/CMakeFiles/gurita_coflow.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gurita_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gurita_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
