file(REMOVE_RECURSE
  "CMakeFiles/blocking_effect_test.dir/blocking_effect_test.cpp.o"
  "CMakeFiles/blocking_effect_test.dir/blocking_effect_test.cpp.o.d"
  "blocking_effect_test"
  "blocking_effect_test.pdb"
  "blocking_effect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_effect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
