file(REMOVE_RECURSE
  "CMakeFiles/adaptive_thresholds_test.dir/adaptive_thresholds_test.cpp.o"
  "CMakeFiles/adaptive_thresholds_test.dir/adaptive_thresholds_test.cpp.o.d"
  "adaptive_thresholds_test"
  "adaptive_thresholds_test.pdb"
  "adaptive_thresholds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_thresholds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
