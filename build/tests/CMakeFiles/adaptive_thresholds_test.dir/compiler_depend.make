# Empty compiler generated dependencies file for adaptive_thresholds_test.
# This may be replaced when dependencies are built.
