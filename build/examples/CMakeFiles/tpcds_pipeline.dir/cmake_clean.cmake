file(REMOVE_RECURSE
  "CMakeFiles/tpcds_pipeline.dir/tpcds_pipeline.cpp.o"
  "CMakeFiles/tpcds_pipeline.dir/tpcds_pipeline.cpp.o.d"
  "tpcds_pipeline"
  "tpcds_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcds_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
