# Empty compiler generated dependencies file for tpcds_pipeline.
# This may be replaced when dependencies are built.
