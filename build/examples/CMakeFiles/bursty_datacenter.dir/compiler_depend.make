# Empty compiler generated dependencies file for bursty_datacenter.
# This may be replaced when dependencies are built.
