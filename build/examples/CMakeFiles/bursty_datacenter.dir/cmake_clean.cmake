file(REMOVE_RECURSE
  "CMakeFiles/bursty_datacenter.dir/bursty_datacenter.cpp.o"
  "CMakeFiles/bursty_datacenter.dir/bursty_datacenter.cpp.o.d"
  "bursty_datacenter"
  "bursty_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursty_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
