# Empty dependencies file for gurita_sim.
# This may be replaced when dependencies are built.
