file(REMOVE_RECURSE
  "CMakeFiles/gurita_sim.dir/gurita_sim.cpp.o"
  "CMakeFiles/gurita_sim.dir/gurita_sim.cpp.o.d"
  "gurita_sim"
  "gurita_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gurita_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
