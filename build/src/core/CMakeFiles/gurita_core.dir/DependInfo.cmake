
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_thresholds.cpp" "src/core/CMakeFiles/gurita_core.dir/adaptive_thresholds.cpp.o" "gcc" "src/core/CMakeFiles/gurita_core.dir/adaptive_thresholds.cpp.o.d"
  "/root/repo/src/core/ava.cpp" "src/core/CMakeFiles/gurita_core.dir/ava.cpp.o" "gcc" "src/core/CMakeFiles/gurita_core.dir/ava.cpp.o.d"
  "/root/repo/src/core/blocking_effect.cpp" "src/core/CMakeFiles/gurita_core.dir/blocking_effect.cpp.o" "gcc" "src/core/CMakeFiles/gurita_core.dir/blocking_effect.cpp.o.d"
  "/root/repo/src/core/gurita.cpp" "src/core/CMakeFiles/gurita_core.dir/gurita.cpp.o" "gcc" "src/core/CMakeFiles/gurita_core.dir/gurita.cpp.o.d"
  "/root/repo/src/core/gurita_plus.cpp" "src/core/CMakeFiles/gurita_core.dir/gurita_plus.cpp.o" "gcc" "src/core/CMakeFiles/gurita_core.dir/gurita_plus.cpp.o.d"
  "/root/repo/src/core/head_receiver.cpp" "src/core/CMakeFiles/gurita_core.dir/head_receiver.cpp.o" "gcc" "src/core/CMakeFiles/gurita_core.dir/head_receiver.cpp.o.d"
  "/root/repo/src/core/optimal.cpp" "src/core/CMakeFiles/gurita_core.dir/optimal.cpp.o" "gcc" "src/core/CMakeFiles/gurita_core.dir/optimal.cpp.o.d"
  "/root/repo/src/core/starvation.cpp" "src/core/CMakeFiles/gurita_core.dir/starvation.cpp.o" "gcc" "src/core/CMakeFiles/gurita_core.dir/starvation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/gurita_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/flowsim/CMakeFiles/gurita_flowsim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gurita_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/coflow/CMakeFiles/gurita_coflow.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gurita_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
