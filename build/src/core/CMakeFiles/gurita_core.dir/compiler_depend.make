# Empty compiler generated dependencies file for gurita_core.
# This may be replaced when dependencies are built.
