file(REMOVE_RECURSE
  "CMakeFiles/gurita_core.dir/adaptive_thresholds.cpp.o"
  "CMakeFiles/gurita_core.dir/adaptive_thresholds.cpp.o.d"
  "CMakeFiles/gurita_core.dir/ava.cpp.o"
  "CMakeFiles/gurita_core.dir/ava.cpp.o.d"
  "CMakeFiles/gurita_core.dir/blocking_effect.cpp.o"
  "CMakeFiles/gurita_core.dir/blocking_effect.cpp.o.d"
  "CMakeFiles/gurita_core.dir/gurita.cpp.o"
  "CMakeFiles/gurita_core.dir/gurita.cpp.o.d"
  "CMakeFiles/gurita_core.dir/gurita_plus.cpp.o"
  "CMakeFiles/gurita_core.dir/gurita_plus.cpp.o.d"
  "CMakeFiles/gurita_core.dir/head_receiver.cpp.o"
  "CMakeFiles/gurita_core.dir/head_receiver.cpp.o.d"
  "CMakeFiles/gurita_core.dir/optimal.cpp.o"
  "CMakeFiles/gurita_core.dir/optimal.cpp.o.d"
  "CMakeFiles/gurita_core.dir/starvation.cpp.o"
  "CMakeFiles/gurita_core.dir/starvation.cpp.o.d"
  "libgurita_core.a"
  "libgurita_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gurita_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
