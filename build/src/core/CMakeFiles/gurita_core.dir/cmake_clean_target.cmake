file(REMOVE_RECURSE
  "libgurita_core.a"
)
