# Empty dependencies file for gurita_exp.
# This may be replaced when dependencies are built.
