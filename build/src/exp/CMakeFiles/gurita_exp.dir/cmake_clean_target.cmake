file(REMOVE_RECURSE
  "libgurita_exp.a"
)
