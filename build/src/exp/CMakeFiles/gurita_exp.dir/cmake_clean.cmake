file(REMOVE_RECURSE
  "CMakeFiles/gurita_exp.dir/args.cpp.o"
  "CMakeFiles/gurita_exp.dir/args.cpp.o.d"
  "CMakeFiles/gurita_exp.dir/experiment.cpp.o"
  "CMakeFiles/gurita_exp.dir/experiment.cpp.o.d"
  "CMakeFiles/gurita_exp.dir/registry.cpp.o"
  "CMakeFiles/gurita_exp.dir/registry.cpp.o.d"
  "libgurita_exp.a"
  "libgurita_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gurita_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
