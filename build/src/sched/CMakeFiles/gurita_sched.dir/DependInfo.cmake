
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/aalo.cpp" "src/sched/CMakeFiles/gurita_sched.dir/aalo.cpp.o" "gcc" "src/sched/CMakeFiles/gurita_sched.dir/aalo.cpp.o.d"
  "/root/repo/src/sched/baraat.cpp" "src/sched/CMakeFiles/gurita_sched.dir/baraat.cpp.o" "gcc" "src/sched/CMakeFiles/gurita_sched.dir/baraat.cpp.o.d"
  "/root/repo/src/sched/mcs.cpp" "src/sched/CMakeFiles/gurita_sched.dir/mcs.cpp.o" "gcc" "src/sched/CMakeFiles/gurita_sched.dir/mcs.cpp.o.d"
  "/root/repo/src/sched/stream.cpp" "src/sched/CMakeFiles/gurita_sched.dir/stream.cpp.o" "gcc" "src/sched/CMakeFiles/gurita_sched.dir/stream.cpp.o.d"
  "/root/repo/src/sched/thresholds.cpp" "src/sched/CMakeFiles/gurita_sched.dir/thresholds.cpp.o" "gcc" "src/sched/CMakeFiles/gurita_sched.dir/thresholds.cpp.o.d"
  "/root/repo/src/sched/varys.cpp" "src/sched/CMakeFiles/gurita_sched.dir/varys.cpp.o" "gcc" "src/sched/CMakeFiles/gurita_sched.dir/varys.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flowsim/CMakeFiles/gurita_flowsim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gurita_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/coflow/CMakeFiles/gurita_coflow.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gurita_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
