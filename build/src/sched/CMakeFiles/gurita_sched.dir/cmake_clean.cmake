file(REMOVE_RECURSE
  "CMakeFiles/gurita_sched.dir/aalo.cpp.o"
  "CMakeFiles/gurita_sched.dir/aalo.cpp.o.d"
  "CMakeFiles/gurita_sched.dir/baraat.cpp.o"
  "CMakeFiles/gurita_sched.dir/baraat.cpp.o.d"
  "CMakeFiles/gurita_sched.dir/mcs.cpp.o"
  "CMakeFiles/gurita_sched.dir/mcs.cpp.o.d"
  "CMakeFiles/gurita_sched.dir/stream.cpp.o"
  "CMakeFiles/gurita_sched.dir/stream.cpp.o.d"
  "CMakeFiles/gurita_sched.dir/thresholds.cpp.o"
  "CMakeFiles/gurita_sched.dir/thresholds.cpp.o.d"
  "CMakeFiles/gurita_sched.dir/varys.cpp.o"
  "CMakeFiles/gurita_sched.dir/varys.cpp.o.d"
  "libgurita_sched.a"
  "libgurita_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gurita_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
