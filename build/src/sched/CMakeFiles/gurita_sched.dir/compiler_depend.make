# Empty compiler generated dependencies file for gurita_sched.
# This may be replaced when dependencies are built.
