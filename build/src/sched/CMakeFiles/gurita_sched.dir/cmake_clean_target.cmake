file(REMOVE_RECURSE
  "libgurita_sched.a"
)
