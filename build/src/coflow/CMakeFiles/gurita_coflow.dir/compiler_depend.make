# Empty compiler generated dependencies file for gurita_coflow.
# This may be replaced when dependencies are built.
