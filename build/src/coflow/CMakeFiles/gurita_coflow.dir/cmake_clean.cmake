file(REMOVE_RECURSE
  "CMakeFiles/gurita_coflow.dir/critical_path.cpp.o"
  "CMakeFiles/gurita_coflow.dir/critical_path.cpp.o.d"
  "CMakeFiles/gurita_coflow.dir/job.cpp.o"
  "CMakeFiles/gurita_coflow.dir/job.cpp.o.d"
  "CMakeFiles/gurita_coflow.dir/shapes.cpp.o"
  "CMakeFiles/gurita_coflow.dir/shapes.cpp.o.d"
  "libgurita_coflow.a"
  "libgurita_coflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gurita_coflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
