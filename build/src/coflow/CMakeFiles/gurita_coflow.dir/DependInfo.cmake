
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coflow/critical_path.cpp" "src/coflow/CMakeFiles/gurita_coflow.dir/critical_path.cpp.o" "gcc" "src/coflow/CMakeFiles/gurita_coflow.dir/critical_path.cpp.o.d"
  "/root/repo/src/coflow/job.cpp" "src/coflow/CMakeFiles/gurita_coflow.dir/job.cpp.o" "gcc" "src/coflow/CMakeFiles/gurita_coflow.dir/job.cpp.o.d"
  "/root/repo/src/coflow/shapes.cpp" "src/coflow/CMakeFiles/gurita_coflow.dir/shapes.cpp.o" "gcc" "src/coflow/CMakeFiles/gurita_coflow.dir/shapes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gurita_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
