file(REMOVE_RECURSE
  "libgurita_coflow.a"
)
