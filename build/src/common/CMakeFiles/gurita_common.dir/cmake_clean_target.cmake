file(REMOVE_RECURSE
  "libgurita_common.a"
)
