file(REMOVE_RECURSE
  "CMakeFiles/gurita_common.dir/log.cpp.o"
  "CMakeFiles/gurita_common.dir/log.cpp.o.d"
  "CMakeFiles/gurita_common.dir/rng.cpp.o"
  "CMakeFiles/gurita_common.dir/rng.cpp.o.d"
  "CMakeFiles/gurita_common.dir/stats.cpp.o"
  "CMakeFiles/gurita_common.dir/stats.cpp.o.d"
  "libgurita_common.a"
  "libgurita_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gurita_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
