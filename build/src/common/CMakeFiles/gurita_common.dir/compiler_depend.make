# Empty compiler generated dependencies file for gurita_common.
# This may be replaced when dependencies are built.
