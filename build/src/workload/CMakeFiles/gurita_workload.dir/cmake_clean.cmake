file(REMOVE_RECURSE
  "CMakeFiles/gurita_workload.dir/structures.cpp.o"
  "CMakeFiles/gurita_workload.dir/structures.cpp.o.d"
  "CMakeFiles/gurita_workload.dir/trace_gen.cpp.o"
  "CMakeFiles/gurita_workload.dir/trace_gen.cpp.o.d"
  "CMakeFiles/gurita_workload.dir/trace_io.cpp.o"
  "CMakeFiles/gurita_workload.dir/trace_io.cpp.o.d"
  "libgurita_workload.a"
  "libgurita_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gurita_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
