file(REMOVE_RECURSE
  "libgurita_workload.a"
)
