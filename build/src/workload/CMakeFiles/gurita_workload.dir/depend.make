# Empty dependencies file for gurita_workload.
# This may be replaced when dependencies are built.
