
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/structures.cpp" "src/workload/CMakeFiles/gurita_workload.dir/structures.cpp.o" "gcc" "src/workload/CMakeFiles/gurita_workload.dir/structures.cpp.o.d"
  "/root/repo/src/workload/trace_gen.cpp" "src/workload/CMakeFiles/gurita_workload.dir/trace_gen.cpp.o" "gcc" "src/workload/CMakeFiles/gurita_workload.dir/trace_gen.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/workload/CMakeFiles/gurita_workload.dir/trace_io.cpp.o" "gcc" "src/workload/CMakeFiles/gurita_workload.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coflow/CMakeFiles/gurita_coflow.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gurita_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/flowsim/CMakeFiles/gurita_flowsim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gurita_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gurita_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
