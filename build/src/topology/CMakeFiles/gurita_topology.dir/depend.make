# Empty dependencies file for gurita_topology.
# This may be replaced when dependencies are built.
