
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/big_switch.cpp" "src/topology/CMakeFiles/gurita_topology.dir/big_switch.cpp.o" "gcc" "src/topology/CMakeFiles/gurita_topology.dir/big_switch.cpp.o.d"
  "/root/repo/src/topology/ecmp.cpp" "src/topology/CMakeFiles/gurita_topology.dir/ecmp.cpp.o" "gcc" "src/topology/CMakeFiles/gurita_topology.dir/ecmp.cpp.o.d"
  "/root/repo/src/topology/fattree.cpp" "src/topology/CMakeFiles/gurita_topology.dir/fattree.cpp.o" "gcc" "src/topology/CMakeFiles/gurita_topology.dir/fattree.cpp.o.d"
  "/root/repo/src/topology/graph.cpp" "src/topology/CMakeFiles/gurita_topology.dir/graph.cpp.o" "gcc" "src/topology/CMakeFiles/gurita_topology.dir/graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gurita_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
