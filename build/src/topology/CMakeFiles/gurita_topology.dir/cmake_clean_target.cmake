file(REMOVE_RECURSE
  "libgurita_topology.a"
)
