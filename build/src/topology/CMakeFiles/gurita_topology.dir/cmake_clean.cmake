file(REMOVE_RECURSE
  "CMakeFiles/gurita_topology.dir/big_switch.cpp.o"
  "CMakeFiles/gurita_topology.dir/big_switch.cpp.o.d"
  "CMakeFiles/gurita_topology.dir/ecmp.cpp.o"
  "CMakeFiles/gurita_topology.dir/ecmp.cpp.o.d"
  "CMakeFiles/gurita_topology.dir/fattree.cpp.o"
  "CMakeFiles/gurita_topology.dir/fattree.cpp.o.d"
  "CMakeFiles/gurita_topology.dir/graph.cpp.o"
  "CMakeFiles/gurita_topology.dir/graph.cpp.o.d"
  "libgurita_topology.a"
  "libgurita_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gurita_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
