file(REMOVE_RECURSE
  "CMakeFiles/gurita_flowsim.dir/allocator.cpp.o"
  "CMakeFiles/gurita_flowsim.dir/allocator.cpp.o.d"
  "CMakeFiles/gurita_flowsim.dir/simulator.cpp.o"
  "CMakeFiles/gurita_flowsim.dir/simulator.cpp.o.d"
  "libgurita_flowsim.a"
  "libgurita_flowsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gurita_flowsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
