file(REMOVE_RECURSE
  "libgurita_flowsim.a"
)
