
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flowsim/allocator.cpp" "src/flowsim/CMakeFiles/gurita_flowsim.dir/allocator.cpp.o" "gcc" "src/flowsim/CMakeFiles/gurita_flowsim.dir/allocator.cpp.o.d"
  "/root/repo/src/flowsim/simulator.cpp" "src/flowsim/CMakeFiles/gurita_flowsim.dir/simulator.cpp.o" "gcc" "src/flowsim/CMakeFiles/gurita_flowsim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gurita_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gurita_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/coflow/CMakeFiles/gurita_coflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
