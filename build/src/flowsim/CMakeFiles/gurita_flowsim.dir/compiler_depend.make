# Empty compiler generated dependencies file for gurita_flowsim.
# This may be replaced when dependencies are built.
