file(REMOVE_RECURSE
  "CMakeFiles/gurita_metrics.dir/category.cpp.o"
  "CMakeFiles/gurita_metrics.dir/category.cpp.o.d"
  "CMakeFiles/gurita_metrics.dir/collector.cpp.o"
  "CMakeFiles/gurita_metrics.dir/collector.cpp.o.d"
  "CMakeFiles/gurita_metrics.dir/deadlines.cpp.o"
  "CMakeFiles/gurita_metrics.dir/deadlines.cpp.o.d"
  "CMakeFiles/gurita_metrics.dir/extended.cpp.o"
  "CMakeFiles/gurita_metrics.dir/extended.cpp.o.d"
  "CMakeFiles/gurita_metrics.dir/report.cpp.o"
  "CMakeFiles/gurita_metrics.dir/report.cpp.o.d"
  "libgurita_metrics.a"
  "libgurita_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gurita_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
