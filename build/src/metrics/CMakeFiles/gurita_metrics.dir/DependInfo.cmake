
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/category.cpp" "src/metrics/CMakeFiles/gurita_metrics.dir/category.cpp.o" "gcc" "src/metrics/CMakeFiles/gurita_metrics.dir/category.cpp.o.d"
  "/root/repo/src/metrics/collector.cpp" "src/metrics/CMakeFiles/gurita_metrics.dir/collector.cpp.o" "gcc" "src/metrics/CMakeFiles/gurita_metrics.dir/collector.cpp.o.d"
  "/root/repo/src/metrics/deadlines.cpp" "src/metrics/CMakeFiles/gurita_metrics.dir/deadlines.cpp.o" "gcc" "src/metrics/CMakeFiles/gurita_metrics.dir/deadlines.cpp.o.d"
  "/root/repo/src/metrics/extended.cpp" "src/metrics/CMakeFiles/gurita_metrics.dir/extended.cpp.o" "gcc" "src/metrics/CMakeFiles/gurita_metrics.dir/extended.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/metrics/CMakeFiles/gurita_metrics.dir/report.cpp.o" "gcc" "src/metrics/CMakeFiles/gurita_metrics.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gurita_common.dir/DependInfo.cmake"
  "/root/repo/build/src/coflow/CMakeFiles/gurita_coflow.dir/DependInfo.cmake"
  "/root/repo/build/src/flowsim/CMakeFiles/gurita_flowsim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gurita_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
