# Empty dependencies file for gurita_metrics.
# This may be replaced when dependencies are built.
