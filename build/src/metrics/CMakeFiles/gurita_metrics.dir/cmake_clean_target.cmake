file(REMOVE_RECURSE
  "libgurita_metrics.a"
)
