// gurita_sim — command-line front-end for the whole library: generate (or
// load) a workload, run it under any scheduler on any fat-tree size, and
// print (or export) the results.
//
//   ./gurita_sim --scheduler gurita --structure tpcds --num-jobs 200 --seed 7
//   ./gurita_sim --scheduler pfs --arrivals bursty --pods 16
//   ./gurita_sim --save-trace /tmp/w.trace            # generate + archive
//   ./gurita_sim --load-trace /tmp/w.trace --scheduler aalo
//   ./gurita_sim --csv-out /tmp/jobs.csv              # per-job results CSV
#include <fstream>
#include <iostream>

#include "common/atomic_file.h"
#include "exp/args.h"
#include "exp/experiment.h"
#include "exp/registry.h"
#include "metrics/extended.h"
#include "metrics/report.h"
#include "workload/trace_io.h"

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  apply_log_level(args);

  const std::string scheduler_name = args.get_string("scheduler", "gurita");
  const int pods = args.get_int("pods", 8);

  ExperimentConfig config;
  config.fat_tree_k = pods;
  config.trace.num_jobs = args.get_int("num-jobs", 200);
  config.trace.seed = args.get_u64("seed", 7);
  config.trace.structure =
      structure_from_string(args.get_string("structure", "mixed"));
  const std::string arrivals = args.get_string("arrivals", "poisson");
  if (arrivals == "bursty") {
    config.trace.arrivals = ArrivalPattern::kBursty;
  } else if (arrivals == "poisson") {
    config.trace.arrivals = ArrivalPattern::kPoisson;
  } else {
    std::cerr << "unknown --arrivals value: " << arrivals << "\n";
    return 1;
  }

  const FatTree fabric(FatTree::Config{config.fat_tree_k, config.link_capacity});
  config.trace.num_hosts = fabric.num_hosts();

  std::vector<JobSpec> jobs;
  if (args.has("load-trace")) {
    jobs = load_trace(args.get_string("load-trace", ""));
    std::cout << "loaded " << jobs.size() << " jobs from trace\n";
  } else {
    jobs = generate_trace(config.trace);
  }
  if (args.has("save-trace")) {
    save_trace(args.get_string("save-trace", ""), jobs);
    std::cout << "saved " << jobs.size() << " jobs to "
              << args.get_string("save-trace", "") << "\n";
  }

  const auto scheduler = make_scheduler(scheduler_name);
  const SimResults results = run_one(config, jobs, *scheduler);

  JctCollector jct;
  jct.add(results);
  CctCollector cct;
  cct.add(results);
  const auto slowdowns = job_slowdowns(jobs, results, config.link_capacity);
  Samples slow;
  for (double s : slowdowns) slow.add(s);

  std::cout << "\nscheduler: " << scheduler_name << "   fabric: " << pods
            << "-pod fat-tree (" << fabric.num_hosts() << " hosts)\n\n";
  TextTable summary({"metric", "value"});
  summary.add_row({"jobs", std::to_string(results.jobs.size())});
  summary.add_row({"coflows", std::to_string(results.coflows.size())});
  summary.add_row({"avg JCT (s)", TextTable::num(jct.average_jct())});
  summary.add_row({"p95 JCT (s)", TextTable::num(jct.p95_jct())});
  summary.add_row({"avg CCT (s)", TextTable::num(cct.average_cct())});
  summary.add_row({"mean slowdown (x bound)", TextTable::num(slow.mean())});
  summary.add_row({"p95 slowdown", TextTable::num(slow.percentile(95))});
  summary.add_row(
      {"slowdown fairness (Jain)", TextTable::num(jain_fairness(slowdowns))});
  summary.add_row({"makespan (s)", TextTable::num(results.makespan)});
  std::cout << summary.to_string() << "\n";

  TextTable by_cat({"category", "jobs", "avg JCT (s)"});
  for (int c = 0; c < kNumCategories; ++c) {
    if (jct.jobs(c) == 0) continue;
    by_cat.add_row({category_name(c), std::to_string(jct.jobs(c)),
                    TextTable::num(jct.average_jct(c))});
  }
  std::cout << by_cat.to_string();

  if (args.has("csv-out")) {
    const std::string path = args.get_string("csv-out", "");
    write_file_atomic(path, /*binary=*/false, [&](std::ostream& csv) {
      csv << "job,arrival,finish,jct,total_bytes,category,stages,slowdown\n";
      for (std::size_t i = 0; i < results.jobs.size(); ++i) {
        const auto& j = results.jobs[i];
        csv << j.id << "," << j.arrival << "," << j.finish << "," << j.jct()
            << "," << j.total_bytes << ","
            << category_name(category_of(j.total_bytes)) << "," << j.num_stages
            << "," << slowdowns[i] << "\n";
      }
    });
    std::cout << "\nper-job results written to " << path << "\n";
  }
  return 0;
}
