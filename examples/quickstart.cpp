// Quickstart: build a fat-tree fabric, submit a small multi-stage job mix,
// and compare Gurita against the PFS baseline.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API: topology -> workload -> scheduler ->
// simulator -> metrics.
#include <iostream>

#include "core/gurita.h"
#include "exp/experiment.h"
#include "exp/registry.h"
#include "metrics/report.h"

int main() {
  using namespace gurita;

  // 1. A trace-driven scenario on an 8-pod fat-tree (128 hosts, 80
  //    switches, 10G links) with 200 TPC-DS-shaped jobs under Poisson
  //    arrivals — enough contention for scheduling to matter.
  ExperimentConfig config = trace_scenario(StructureKind::kTpcDs,
                                           /*num_jobs=*/200, /*seed=*/7);

  // 2. Replay the identical workload under each scheduler.
  const std::vector<std::string> schedulers = {"pfs", "baraat", "stream",
                                               "aalo", "gurita"};
  const ComparisonResult result = compare_schedulers(config, schedulers);

  // 3. Report average JCT and Gurita's improvement factors.
  TextTable table({"scheduler", "avg JCT (s)", "p95 JCT (s)",
                   "avg-JCT ratio vs gurita", "per-job speedup vs gurita"});
  for (const std::string& name : schedulers) {
    const JctCollector& c = result.collectors.at(name);
    table.add_row({name, TextTable::num(c.average_jct()),
                   TextTable::num(c.p95_jct()),
                   TextTable::num(result.improvement("gurita", name)),
                   TextTable::num(result.per_job_speedup("gurita", name))});
  }
  std::cout << table.to_string() << "\n"
            << "values > 1 mean Gurita finished jobs faster." << std::endl;
  return 0;
}
