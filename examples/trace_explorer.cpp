// Trace explorer. Two modes:
//
// Workload mode (default): generate a synthetic Facebook-like multi-stage
// trace and dump its statistics — category mix, width and depth
// distributions, byte skew — so users can sanity-check a workload before
// running experiments.
//
//   ./trace_explorer [--num-jobs 1000] [--seed 42]
//                    [--structure mixed|tpcds|fbtao]
//
// Telemetry mode (--trace FILE): read a structured simulation trace
// exported by a bench driver (JSONL, or the compact binary format when the
// file ends in .bin — see obs/trace.h) and summarize the scheduler's
// behavior: per-kind record counts, the coflow queue-transition matrix with
// transition causes, Ψ̈ decision-value statistics, and per-queue residency.
// When the trace carries interval-sampler records (a bench driver's
// --timeline flag; obs/sampler.h) a per-section timeline summary is printed
// too — peak live entities, peak calendar size, and peak accounted memory.
//
//   ./trace_explorer --trace trace.jsonl [--section LABEL-SUBSTRING]
//                    [--timeline]   # also dump the sample series row by row
//
// Gap-report mode (--gap-report FILE): summarize a gap-to-bound JSON report
// written by `bench_optimality --json` (src/bound/gap.h) — per scenario,
// one row per scheduler with its achieved average JCT, the sound lower
// bound, the overall/narrow/wide gaps, and the worst per-category gap.
//
//   ./trace_explorer --gap-report BENCH_optimality.json
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <vector>

#include "common/stats.h"
#include "exp/args.h"
#include "metrics/category.h"
#include "metrics/report.h"
#include "obs/trace.h"
#include "workload/trace_gen.h"

namespace gurita {
namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

const char* cause_name(int cause) {
  switch (static_cast<obs::QueueChangeCause>(cause)) {
    case obs::QueueChangeCause::kRelease: return "release";
    case obs::QueueChangeCause::kHrDecision: return "hr_decision";
    case obs::QueueChangeCause::kSelfDemote: return "self_demote";
    case obs::QueueChangeCause::kBytesSent: return "bytes_sent";
    case obs::QueueChangeCause::kRecompute: return "recompute";
    case obs::QueueChangeCause::kFaultReset: return "fault_reset";
  }
  return "?";
}

/// Per-section rollup of the interval-sampler records (kSample /
/// kMemSample; obs/sampler.h). Field layout per obs/trace.cpp: kSample
/// carries live-entity counts in i0..i2 and engine counters in v0..v5;
/// kMemSample carries per-subsystem byte counts in v0..v4 and their total
/// in v5.
struct TimelineSummary {
  std::size_t samples = 0;
  double first_time = 0, last_time = 0;
  std::int32_t peak_flows = 0, peak_coflows = 0, peak_jobs = 0;
  double peak_calendar = 0;
  double peak_mem_bytes = 0;

  void add(const obs::TraceRecord& r) {
    if (r.kind == obs::TraceEventKind::kSample) {
      if (samples == 0) first_time = r.time;
      last_time = r.time;
      ++samples;
      peak_flows = std::max(peak_flows, r.i0);
      peak_coflows = std::max(peak_coflows, r.i1);
      peak_jobs = std::max(peak_jobs, r.i2);
      peak_calendar = std::max(peak_calendar, r.v2);
    } else if (r.kind == obs::TraceEventKind::kMemSample) {
      peak_mem_bytes = std::max(peak_mem_bytes, r.v5);
    }
  }
};

void print_sample_series(const std::vector<obs::TraceSection>& sections) {
  for (const obs::TraceSection& section : sections) {
    TextTable rows({"t (s)", "flows", "coflows", "jobs", "events", "events/s",
                    "calendar", "mem (MB)"});
    // A boundary's kMemSample carries the same timestamp as its kSample
    // (both are stamped with the exact boundary k*every), so the byte total
    // can be joined by time.
    std::map<double, double> mem_at;
    for (const obs::TraceRecord& r : section.records)
      if (r.kind == obs::TraceEventKind::kMemSample) mem_at[r.time] = r.v5;
    bool any = false;
    for (const obs::TraceRecord& r : section.records) {
      if (r.kind != obs::TraceEventKind::kSample) continue;
      any = true;
      const auto mem = mem_at.find(r.time);
      rows.add_row({TextTable::num(r.time), std::to_string(r.i0),
                    std::to_string(r.i1), std::to_string(r.i2),
                    TextTable::num(r.v0), TextTable::num(r.v1),
                    TextTable::num(r.v2),
                    mem == mem_at.end() ? std::string("-")
                                        : TextTable::num(mem->second / 1e6)});
    }
    if (any)
      std::cout << "Timeline for \"" << section.label << "\":\n"
                << rows.to_string() << "\n";
  }
}

int explore_trace(const std::string& path, const std::string& section_filter,
                  bool dump_timeline) {
  std::ifstream in(path, ends_with(path, ".bin")
                             ? std::ios::in | std::ios::binary
                             : std::ios::in);
  if (!in.is_open()) {
    std::cerr << "cannot open trace file " << path << "\n";
    return 1;
  }
  std::vector<obs::TraceSection> sections = ends_with(path, ".bin")
                                                ? obs::read_binary(in)
                                                : obs::read_jsonl(in);
  if (!section_filter.empty()) {
    sections.erase(std::remove_if(sections.begin(), sections.end(),
                                  [&](const obs::TraceSection& s) {
                                    return s.label.find(section_filter) ==
                                           std::string::npos;
                                  }),
                   sections.end());
  }

  std::size_t total = 0;
  std::uint64_t kind_count[obs::kNumTraceEventKinds] = {};
  std::vector<TimelineSummary> timelines(sections.size());
  // Queue transitions: (old, new) -> count, plus per-cause counts. old = -1
  // is the release-time assignment into the top queue.
  std::map<std::pair<int, int>, std::uint64_t> transitions;
  std::map<int, std::uint64_t> cause_count;
  RunningStats psi;
  // Residency: records seen per new-queue value (a cheap occupancy proxy).
  std::map<int, std::uint64_t> entered_queue;
  for (std::size_t s = 0; s < sections.size(); ++s) {
    const obs::TraceSection& section = sections[s];
    total += section.records.size();
    for (const obs::TraceRecord& r : section.records) {
      ++kind_count[static_cast<int>(r.kind)];
      timelines[s].add(r);
      if (r.kind != obs::TraceEventKind::kQueueChange) continue;
      ++transitions[{r.i0, r.i1}];
      ++cause_count[r.i2];
      ++entered_queue[r.i1];
      if (r.v5 > 0) psi.add(r.v5);
    }
  }

  std::cout << "Trace " << path << ": " << sections.size() << " section(s), "
            << total << " records";
  if (!section_filter.empty())
    std::cout << " (filtered by \"" << section_filter << "\")";
  std::cout << "\n\n";

  TextTable kinds({"kind", "records"});
  for (int k = 0; k < obs::kNumTraceEventKinds; ++k) {
    if (kind_count[k] == 0) continue;
    kinds.add_row({obs::kind_name(static_cast<obs::TraceEventKind>(k)),
                   std::to_string(kind_count[k])});
  }
  std::cout << kinds.to_string() << "\n";

  if (!transitions.empty()) {
    TextTable trans({"old queue", "new queue", "count"});
    for (const auto& [key, count] : transitions)
      trans.add_row({key.first < 0 ? std::string("(release)")
                                   : std::to_string(key.first),
                     std::to_string(key.second), std::to_string(count)});
    std::cout << "Coflow queue transitions:\n" << trans.to_string() << "\n";

    TextTable causes({"cause", "count"});
    for (const auto& [cause, count] : cause_count)
      causes.add_row({cause_name(cause), std::to_string(count)});
    std::cout << "Transition causes:\n" << causes.to_string() << "\n";

    TextTable entered({"new queue", "transitions in"});
    for (const auto& [queue, count] : entered_queue)
      entered.add_row({std::to_string(queue), std::to_string(count)});
    std::cout << "Queue entries (residency proxy):\n"
              << entered.to_string() << "\n";
  }
  bool any_timeline = false;
  for (const TimelineSummary& t : timelines) any_timeline |= t.samples > 0;
  if (any_timeline) {
    TextTable timeline({"section", "samples", "span (s)", "peak flows",
                        "peak coflows", "peak jobs", "peak calendar",
                        "peak mem (MB)"});
    for (std::size_t s = 0; s < sections.size(); ++s) {
      const TimelineSummary& t = timelines[s];
      if (t.samples == 0) continue;
      timeline.add_row(
          {sections[s].label, std::to_string(t.samples),
           TextTable::num(t.first_time) + " - " + TextTable::num(t.last_time),
           std::to_string(t.peak_flows), std::to_string(t.peak_coflows),
           std::to_string(t.peak_jobs), TextTable::num(t.peak_calendar),
           TextTable::num(t.peak_mem_bytes / 1e6)});
    }
    std::cout << "Interval-sampler timelines (obs/sampler.h):\n"
              << timeline.to_string() << "\n";
    if (dump_timeline) print_sample_series(sections);
  } else if (dump_timeline) {
    std::cout << "No interval-sampler records in this trace — re-export with "
                 "a bench driver's --timeline flag.\n\n";
  }
  if (psi.count() > 0) {
    std::cout << "Psi decision values (demotions with a factor breakdown): "
              << psi.count() << " samples, mean " << TextTable::num(psi.mean())
              << ", min " << TextTable::num(psi.min()) << ", max "
              << TextTable::num(psi.max()) << "\n";
  }
  return 0;
}

/// One parsed gap cell of the report (bound/gap.h JSON layout).
struct GapCellView {
  bool ok = false;
  std::size_t jobs = 0;
  double achieved = 0, bound = 0, gap = 0;
};

/// Scans `[from, to)` of the report text for `"key": { ... }` and pulls the
/// cell fields. The format is this repo's own (GapReport::to_json), so a
/// targeted scan is enough — no general JSON parser needed.
GapCellView parse_cell(const std::string& text, std::size_t from,
                       std::size_t to, const std::string& key) {
  const std::string needle = "\"" + key + "\": {";
  const std::size_t p = text.find(needle, from);
  if (p == std::string::npos || p >= to) return {};
  const std::size_t end = text.find('}', p);
  if (end == std::string::npos) return {};
  const auto field = [&](const char* name) -> double {
    const std::string fn = std::string("\"") + name + "\": ";
    const std::size_t q = text.find(fn, p);
    if (q == std::string::npos || q > end) return 0;
    return std::strtod(text.c_str() + q + fn.size(), nullptr);
  };
  GapCellView c;
  c.ok = true;
  c.jobs = static_cast<std::size_t>(field("jobs"));
  c.achieved = field("achieved");
  c.bound = field("bound");
  c.gap = field("gap");
  return c;
}

double parse_scalar(const std::string& text, std::size_t from, std::size_t to,
                    const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t p = text.find(needle, from);
  if (p == std::string::npos || p >= to) return 0;
  return std::strtod(text.c_str() + p + needle.size(), nullptr);
}

int explore_gap_report(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::cerr << "cannot open gap report " << path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const std::string scenario_key = "\"scenario\": \"";
  const std::string scheduler_key = "\"scheduler\": \"";
  std::size_t scen = text.find(scenario_key);
  if (scen == std::string::npos) {
    std::cerr << path << " holds no gap-report scenarios (expected the JSON "
                         "written by bench_optimality --json)\n";
    return 1;
  }
  std::cout << "Gap-to-bound report " << path << "\n\n";
  while (scen != std::string::npos) {
    const std::size_t name_end = text.find('"', scen + scenario_key.size());
    const std::string scenario =
        text.substr(scen + scenario_key.size(),
                    name_end - scen - scenario_key.size());
    const std::size_t scen_end = text.find(scenario_key, scen + 1);
    const std::size_t limit =
        scen_end == std::string::npos ? text.size() : scen_end;

    std::cout << "Scenario " << scenario << ": port-load bound "
              << TextTable::num(parse_scalar(text, scen, limit,
                                             "port_load_bound"))
              << "s, ordering bound "
              << TextTable::num(parse_scalar(text, scen, limit,
                                             "ordering_bound"))
              << "s, S-G reference "
              << TextTable::num(parse_scalar(text, scen, limit,
                                             "reference_avg_jct"))
              << "s\n";
    TextTable table({"scheduler", "jobs", "achieved JCT(s)", "bound JCT(s)",
                     "gap", "narrow gap", "wide gap", "worst category"});
    std::size_t sched = text.find(scheduler_key, scen);
    while (sched != std::string::npos && sched < limit) {
      const std::size_t sched_name_end =
          text.find('"', sched + scheduler_key.size());
      const std::string scheduler = text.substr(
          sched + scheduler_key.size(),
          sched_name_end - sched - scheduler_key.size());
      std::size_t block_end = text.find(scheduler_key, sched + 1);
      block_end = std::min(block_end == std::string::npos ? limit : block_end,
                           limit);
      const GapCellView overall =
          parse_cell(text, sched, block_end, "overall");
      const GapCellView narrow = parse_cell(text, sched, block_end, "narrow");
      const GapCellView wide = parse_cell(text, sched, block_end, "wide");
      double worst_gap = 0;
      std::string worst_cat = "-";
      for (int cat = 0; cat < kNumCategories; ++cat) {
        const GapCellView c =
            parse_cell(text, sched, block_end, category_name(cat));
        if (c.ok && c.jobs > 0 && c.gap > worst_gap) {
          worst_gap = c.gap;
          worst_cat = category_name(cat);
        }
      }
      table.add_row({scheduler, std::to_string(overall.jobs),
                     TextTable::num(overall.achieved),
                     TextTable::num(overall.bound),
                     TextTable::num(overall.gap),
                     narrow.jobs ? TextTable::num(narrow.gap)
                                 : std::string("-"),
                     wide.jobs ? TextTable::num(wide.gap) : std::string("-"),
                     worst_cat + " (" + TextTable::num(worst_gap) + ")"});
      sched = text.find(scheduler_key, sched + 1);
      if (sched >= limit) break;
    }
    std::cout << table.to_string() << "\n";
    scen = scen_end;
  }
  std::cout << "gap = achieved / bound; 1.000 means the scheduler met the "
               "sound lower bound exactly.\n";
  return 0;
}

int explore_workload(const Args& args) {
  TraceConfig config;
  config.num_jobs = args.get_int("num-jobs", 1000);
  config.seed = args.get_u64("seed", 42);
  config.structure =
      structure_from_string(args.get_string("structure", "mixed"));

  const std::vector<JobSpec> jobs = generate_trace(config);

  std::size_t category_count[kNumCategories] = {};
  Bytes category_bytes[kNumCategories] = {};
  RunningStats widths, depths, coflows_per_job, flow_sizes;
  Bytes total_bytes = 0;
  for (const JobSpec& job : jobs) {
    const Bytes jb = job.total_bytes();
    total_bytes += jb;
    const int cat = category_of(jb);
    ++category_count[cat];
    category_bytes[cat] += jb;
    depths.add(stage_count(job));
    coflows_per_job.add(static_cast<double>(job.coflows.size()));
    for (const CoflowSpec& c : job.coflows) {
      widths.add(static_cast<double>(c.width()));
      for (const FlowSpec& f : c.flows) flow_sizes.add(f.size);
    }
  }

  std::cout << "Synthetic trace: " << jobs.size() << " jobs ("
            << to_string(config.structure) << " structure), "
            << TextTable::num(total_bytes / kTB) << " TB total\n\n";

  TextTable cats({"category", "jobs", "% of jobs", "% of bytes"});
  for (int c = 0; c < kNumCategories; ++c) {
    cats.add_row({category_name(c), std::to_string(category_count[c]),
                  TextTable::num(100.0 * static_cast<double>(category_count[c]) /
                                 static_cast<double>(jobs.size())),
                  TextTable::num(100.0 * category_bytes[c] / total_bytes)});
  }
  std::cout << cats.to_string() << "\n";

  TextTable shape({"metric", "mean", "min", "max"});
  shape.add_row({"stages per job", TextTable::num(depths.mean()),
                 TextTable::num(depths.min()), TextTable::num(depths.max())});
  shape.add_row({"coflows per job", TextTable::num(coflows_per_job.mean()),
                 TextTable::num(coflows_per_job.min()),
                 TextTable::num(coflows_per_job.max())});
  shape.add_row({"coflow width (flows)", TextTable::num(widths.mean()),
                 TextTable::num(widths.min()), TextTable::num(widths.max())});
  shape.add_row({"flow size (MB)", TextTable::num(flow_sizes.mean() / kMB),
                 TextTable::num(flow_sizes.min() / kMB),
                 TextTable::num(flow_sizes.max() / kMB)});
  std::cout << shape.to_string()
            << "\nHeavy tail check: most jobs sit in categories I-III while "
               "most bytes belong to VI-VII."
            << std::endl;
  return 0;
}

}  // namespace
}  // namespace gurita

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  apply_log_level(args);
  const std::string gap_path = args.get_string("gap-report", "");
  if (!gap_path.empty()) return explore_gap_report(gap_path);
  const std::string trace_path = args.get_string("trace", "");
  if (!trace_path.empty())
    return explore_trace(trace_path, args.get_string("section", ""),
                         args.get_bool("timeline", false));
  return explore_workload(args);
}
