// Trace explorer: generate a synthetic Facebook-like multi-stage trace and
// dump its statistics — category mix, width and depth distributions, byte
// skew — so users can sanity-check a workload before running experiments.
//
//   ./trace_explorer [--num-jobs 1000] [--seed 42] [--structure mixed|tpcds|fbtao]
#include <iostream>

#include "common/stats.h"
#include "exp/args.h"
#include "metrics/category.h"
#include "metrics/report.h"
#include "workload/trace_gen.h"

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);

  TraceConfig config;
  config.num_jobs = args.get_int("num-jobs", 1000);
  config.seed = args.get_u64("seed", 42);
  config.structure = structure_from_string(args.get_string("structure", "mixed"));

  const std::vector<JobSpec> jobs = generate_trace(config);

  std::size_t category_count[kNumCategories] = {};
  Bytes category_bytes[kNumCategories] = {};
  RunningStats widths, depths, coflows_per_job, flow_sizes;
  Bytes total_bytes = 0;
  for (const JobSpec& job : jobs) {
    const Bytes jb = job.total_bytes();
    total_bytes += jb;
    const int cat = category_of(jb);
    ++category_count[cat];
    category_bytes[cat] += jb;
    depths.add(stage_count(job));
    coflows_per_job.add(static_cast<double>(job.coflows.size()));
    for (const CoflowSpec& c : job.coflows) {
      widths.add(static_cast<double>(c.width()));
      for (const FlowSpec& f : c.flows) flow_sizes.add(f.size);
    }
  }

  std::cout << "Synthetic trace: " << jobs.size() << " jobs ("
            << to_string(config.structure) << " structure), "
            << TextTable::num(total_bytes / kTB) << " TB total\n\n";

  TextTable cats({"category", "jobs", "% of jobs", "% of bytes"});
  for (int c = 0; c < kNumCategories; ++c) {
    cats.add_row({category_name(c), std::to_string(category_count[c]),
                  TextTable::num(100.0 * static_cast<double>(category_count[c]) /
                                 static_cast<double>(jobs.size())),
                  TextTable::num(100.0 * category_bytes[c] / total_bytes)});
  }
  std::cout << cats.to_string() << "\n";

  TextTable shape({"metric", "mean", "min", "max"});
  shape.add_row({"stages per job", TextTable::num(depths.mean()),
                 TextTable::num(depths.min()), TextTable::num(depths.max())});
  shape.add_row({"coflows per job", TextTable::num(coflows_per_job.mean()),
                 TextTable::num(coflows_per_job.min()),
                 TextTable::num(coflows_per_job.max())});
  shape.add_row({"coflow width (flows)", TextTable::num(widths.mean()),
                 TextTable::num(widths.min()), TextTable::num(widths.max())});
  shape.add_row({"flow size (MB)", TextTable::num(flow_sizes.mean() / kMB),
                 TextTable::num(flow_sizes.min() / kMB),
                 TextTable::num(flow_sizes.max() / kMB)});
  std::cout << shape.to_string()
            << "\nHeavy tail check: most jobs sit in categories I-III while "
               "most bytes belong to VI-VII."
            << std::endl;
  return 0;
}
