// TPC-DS pipeline walkthrough: build one query-42-shaped multi-stage job
// by hand, trace its execution under Gurita, and print the per-coflow
// timeline — release, completion, stage, critical-path membership.
//
// Shows the coflow/job modeling API: CoflowSpec, JobSpec, deps, stages and
// critical-path analysis, plus direct Simulator use (no harness).
#include <iostream>

#include "coflow/critical_path.h"
#include "core/gurita.h"
#include "flowsim/simulator.h"
#include "metrics/report.h"
#include "topology/fattree.h"
#include "workload/structures.h"

int main() {
  using namespace gurita;

  // The fabric: 8-pod fat-tree, 128 hosts, 10G links.
  const FatTree fabric(FatTree::Config{8, gbps(10.0)});

  // Query 42 aggregates store_sales joined with date_dim and item:
  //   0 scan(date_dim)    1 scan(store_sales)   2 scan(item)
  //   3 join(dd x ss)     4 join(x item)        5 aggregate   6 sort
  JobSpec query;
  query.deps = tpcds_q42_deps();
  const char* names[7] = {"scan(date_dim)", "scan(store_sales)",
                          "scan(item)",     "join(dd x ss)",
                          "join(x item)",   "aggregate",
                          "sort/limit"};
  // Shuffle sizes: the fact-table scan dominates; later stages shrink.
  const Bytes bytes[7] = {40 * kMB, 3 * kGB,   80 * kMB, 900 * kMB,
                          500 * kMB, 120 * kMB, 8 * kMB};
  const int widths[7] = {4, 32, 4, 16, 12, 6, 2};
  for (int c = 0; c < 7; ++c) {
    CoflowSpec coflow;
    for (int f = 0; f < widths[c]; ++f) {
      FlowSpec flow;
      flow.src_host = (c * 17 + f * 5) % 128;
      flow.dst_host = (c * 29 + f * 11 + 64) % 128;
      if (flow.dst_host == flow.src_host) flow.dst_host = (flow.dst_host + 1) % 128;
      flow.size = bytes[c] / widths[c];
      coflow.flows.push_back(flow);
    }
    query.coflows.push_back(coflow);
  }

  // Static analysis before running: stages and the critical path.
  const std::vector<int> stages = stages_of(query);
  const CriticalPathInfo cp = compute_critical_path(
      query, estimated_cct_costs(query, gbps(10.0)));
  std::cout << "TPC-DS query-42 plan: " << query.coflows.size()
            << " coflows, " << stage_count(query) << " stages, "
            << "critical path >= " << TextTable::num(cp.length)
            << " s at line rate\n\n";

  // Execute under Gurita, alone on the fabric.
  GuritaScheduler gurita;
  Simulator sim(fabric, gurita);
  sim.submit(query);
  const SimResults results = sim.run();

  TextTable table({"coflow", "stage", "bytes (MB)", "width", "critical",
                   "release (s)", "finish (s)", "CCT (s)"});
  for (std::size_t c = 0; c < results.coflows.size(); ++c) {
    const auto& r = results.coflows[c];
    table.add_row({names[c], std::to_string(r.stage),
                   TextTable::num(bytes[c] / kMB), std::to_string(widths[c]),
                   cp.on_critical[c] ? "yes" : "no",
                   TextTable::num(r.release), TextTable::num(r.finish),
                   TextTable::num(r.cct())});
  }
  std::cout << table.to_string() << "\n"
            << "Job completion time: " << TextTable::num(results.jobs[0].jct())
            << " s (lower bound " << TextTable::num(cp.length) << " s)"
            << std::endl;
  return 0;
}
