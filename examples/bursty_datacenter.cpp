// Bursty datacenter scenario: jobs arrive in 2 µs-spaced batches (the
// paper's §V bursty setting) on an FB-Tao-shaped workload, comparing a
// pure-SPQ Gurita against the default WRR-emulating Gurita to show the
// starvation mitigation working, and against Stream.
//
//   ./bursty_datacenter [--num-jobs 200] [--seed 3] [--pods 8]
#include <iostream>

#include "core/gurita.h"
#include "exp/args.h"
#include "exp/experiment.h"
#include "metrics/report.h"
#include "sched/stream.h"

int main(int argc, char** argv) {
  using namespace gurita;
  const Args args(argc, argv);
  apply_log_level(args);
  const int jobs_n = args.get_int("num-jobs", 200);
  const std::uint64_t seed = args.get_u64("seed", 3);
  const int pods = args.get_int("pods", 8);

  ExperimentConfig config =
      bursty_scenario(StructureKind::kFbTao, jobs_n, seed, pods);
  const FatTree fabric(FatTree::Config{config.fat_tree_k, config.link_capacity});
  TraceConfig trace = config.trace;
  trace.num_hosts = fabric.num_hosts();
  const std::vector<JobSpec> workload = generate_trace(trace);

  std::cout << "Bursty scenario: " << jobs_n << " FB-Tao jobs in batches of "
            << trace.burst_size << " at "
            << trace.burst_spacing / kMicrosecond << " us spacing, "
            << fabric.num_hosts() << "-host fat-tree\n\n";

  struct Variant {
    const char* name;
    SimResults results;
  };
  std::vector<Variant> variants;

  {
    GuritaScheduler gurita;  // default: WRR starvation mitigation on
    variants.push_back({"gurita (WRR mitigation)",
                        run_one(config, workload, gurita)});
  }
  {
    GuritaScheduler::Config gc;
    gc.starvation_mitigation = false;
    GuritaScheduler spq(gc);
    variants.push_back({"gurita (pure SPQ)", run_one(config, workload, spq)});
  }
  {
    StreamScheduler stream;
    variants.push_back({"stream (TBS, strict SPQ)",
                        run_one(config, workload, stream)});
  }

  TextTable table({"variant", "avg JCT (s)", "p95 JCT (s)", "max JCT (s)",
                   "makespan (s)"});
  for (const Variant& v : variants) {
    JctCollector c;
    c.add(v.results);
    double max_jct = 0;
    for (const auto& j : v.results.jobs) max_jct = std::max(max_jct, j.jct());
    table.add_row({v.name, TextTable::num(c.average_jct()),
                   TextTable::num(c.p95_jct()), TextTable::num(max_jct),
                   TextTable::num(v.results.makespan)});
  }
  std::cout << table.to_string() << "\n"
            << "Compare the p95 column: WRR emulation spreads burst pain "
               "most evenly, pure SPQ\nis close behind, and the TBS-based "
               "Stream — which parks whole jobs, not stages —\nsuffers the "
               "heaviest tail."
            << std::endl;
  return 0;
}
