// Umbrella header: the complete public API of the Gurita reproduction.
//
//   #include "gurita.h"
//
// pulls in the fabric builders, the job/coflow model, the flow-level
// simulator, every scheduler, the workload generators and the metrics.
// Fine-grained headers remain available for faster builds.
#pragma once

// Primitives
#include "common/ids.h"       // IWYU pragma: export
#include "common/rng.h"       // IWYU pragma: export
#include "common/stats.h"     // IWYU pragma: export
#include "common/units.h"     // IWYU pragma: export

// Fabrics
#include "topology/big_switch.h"  // IWYU pragma: export
#include "topology/ecmp.h"        // IWYU pragma: export
#include "topology/fabric.h"      // IWYU pragma: export
#include "topology/fattree.h"     // IWYU pragma: export

// Job / coflow model
#include "coflow/coflow.h"         // IWYU pragma: export
#include "coflow/critical_path.h"  // IWYU pragma: export
#include "coflow/job.h"            // IWYU pragma: export
#include "coflow/shapes.h"         // IWYU pragma: export

// Simulator
#include "flowsim/scheduler.h"  // IWYU pragma: export
#include "flowsim/simulator.h"  // IWYU pragma: export

// Schedulers
#include "core/gurita.h"       // IWYU pragma: export
#include "core/gurita_plus.h"  // IWYU pragma: export
#include "core/optimal.h"      // IWYU pragma: export
#include "sched/aalo.h"        // IWYU pragma: export
#include "sched/baraat.h"      // IWYU pragma: export
#include "sched/mcs.h"         // IWYU pragma: export
#include "sched/pfs.h"         // IWYU pragma: export
#include "sched/stream.h"      // IWYU pragma: export
#include "sched/varys.h"       // IWYU pragma: export

// Workloads & metrics & harness
#include "exp/experiment.h"     // IWYU pragma: export
#include "exp/registry.h"       // IWYU pragma: export
#include "metrics/category.h"   // IWYU pragma: export
#include "metrics/collector.h"  // IWYU pragma: export
#include "metrics/extended.h"   // IWYU pragma: export
#include "workload/trace_gen.h" // IWYU pragma: export
#include "workload/trace_io.h"  // IWYU pragma: export
