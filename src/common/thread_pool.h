// Low-contention work-stealing thread pool for embarrassingly parallel
// experiment sweeps.
//
// Each worker owns a deque guarded by its own (cache-line-isolated) mutex:
// it pops its newest task from the back (LIFO keeps caches warm for
// recursively submitted work) and steals the oldest task from the front of
// a sibling's deque when its own is empty (FIFO stealing takes the largest
// pending subtrees first). External submissions are distributed
// round-robin; submissions from inside a worker go to that worker's own
// deque.
//
// Contention design: the submit/take fast path touches NO global mutex.
// The shared state is three atomics — `queued_` (tasks sitting in some
// deque or mid-push), `stop_` and the round-robin cursor — plus the
// per-worker deque mutexes, which only collide on an actual steal. The
// global `idle_mutex_` exists solely for the sleep/wake slow path: a
// worker that finds nothing after a bounded number of scan-and-yield
// rounds parks on `idle_cv_`; submitters wake a sleeper only when
// `sleepers_ > 0`. `queued_` is decremented at pop time (inside the deque
// lock), so `queued_ > 0` with all deques empty can only happen during the
// sub-microsecond window of an in-flight push — idle workers never spin
// against a long-running task.
//
// Shutdown protocol (the destructor/worker drain race): `submit()`
// increments `queued_` *before* checking `stop_`, and a worker exits only
// on `stop_ && queued_ == 0` (both seq_cst). By the usual store/load
// (Dekker) argument, a submit racing the stop flag either observes
// `stop_` — it undoes the increment and fails loudly with a
// std::logic_error — or its increment is ordered before every worker's
// exit check, so no worker can exit while the task is queued or mid-push:
// every accepted task runs before the destructor joins
// (ThreadPoolTest.DestructorDrainsTasksStillQueuedWhenTeardownStarts).
//
// Lifetime rule: destruction follows normal C++ object rules — a foreign
// thread must not still be inside submit()/parallel_for() when the
// destructor *returns* (no design can fix that: even throwing "pool is
// stopping" reads members). Submissions from worker tasks are exempt: the
// destructor joins the workers, so a worker-side submit can race teardown
// freely and gets the loud std::logic_error
// (ThreadPoolTest.SubmitOnStoppingPoolThrowsLogicError, run under TSan).
//
// Determinism contract: the pool guarantees nothing about execution order —
// callers that need reproducible results must make every task independent
// (own RNG, own output slot) and merge outputs in task-index order.
// parallel_for() below is the canonical shape: results land in caller-owned
// slots indexed by loop index, and the first exception *by index* (not by
// completion time) is rethrown, so failures are as deterministic as
// successes. exp/runner.h builds the experiment matrix on top of this.
//
// parallel_for is batched: one shared heap record per loop, and the
// workers split the index range through an atomic cursor — no per-index
// task object, no per-index allocation, no per-index queue traffic. The
// caller claims indices directly from the same cursor (so a worker blocked
// in a nested parallel_for always makes progress on its own loop — nested
// parallelism cannot deadlock the pool at any size) and then sleeps on a
// real completion notification from the last finishing iteration; there is
// no timed polling anywhere.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gurita {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means one per hardware thread. A pool of
  /// size 1 still runs tasks on its single worker thread (not inline), so
  /// the concurrency machinery is exercised at every size.
  explicit ThreadPool(int threads = 0);

  /// Drains every queued task, then joins the workers. Tasks submitted
  /// during destruction are rejected loudly (std::logic_error); tasks
  /// accepted before the rejection point are guaranteed to run (see the
  /// shutdown protocol above).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a fire-and-forget task (one heap node per task — the batched
  /// parallel_for path below does not pay this). Exceptions escaping `task`
  /// terminate (wrap work that can throw via parallel_for, which captures
  /// them). Throws std::logic_error on a stopping pool.
  void submit(std::function<void()> task);

  /// Runs fn(0) ... fn(n-1) across the pool and blocks until all complete.
  /// The calling thread claims indices alongside the workers. If any
  /// invocations throw, the exception of the smallest failing index is
  /// rethrown (deterministic regardless of completion order); the remaining
  /// invocations still run to completion first.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Number of hardware threads, at least 1.
  [[nodiscard]] static int hardware_threads();

  /// Lifetime diagnostic counters, aggregated over all workers. Approximate
  /// under concurrency (relaxed reads); exact once the pool is quiescent.
  /// `failed_scans` is the bounded-idle-spinning observable: every take
  /// that found no task anywhere counts one, and a worker parks after at
  /// most kMaxEmptyScans consecutive failures, so failed scans are bounded
  /// by executed work plus a small constant per wake-up (asserted by the
  /// contention stress test).
  struct Stats {
    std::uint64_t executed = 0;      ///< tasks / batch handles run by workers
    std::uint64_t steals = 0;        ///< takes served from a sibling's deque
    std::uint64_t failed_scans = 0;  ///< takes that found nothing anywhere
    std::uint64_t sleeps = 0;        ///< times a worker parked on idle_cv_
  };
  [[nodiscard]] Stats stats() const;

  /// Consecutive empty scans a worker tolerates (yielding between scans,
  /// to ride out in-flight pushes) before parking on the idle CV.
  static constexpr int kMaxEmptyScans = 16;

 private:
  /// 16-byte POD task handle: no allocation, no type erasure overhead in
  /// the deques. Generic submissions wrap their std::function in one heap
  /// node; batch handles point at the loop's shared record.
  struct TaskRef {
    void (*run)(void*) = nullptr;
    void* ctx = nullptr;
  };

  /// Cache-line isolated so one worker's deque traffic (and diagnostic
  /// counters) never false-shares with a sibling's.
  struct alignas(64) Worker {
    std::mutex mutex;
    std::deque<TaskRef> tasks;
    // Diagnostics (Stats): relaxed, owner-written except for steals.
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> failed_scans{0};
    std::atomic<std::uint64_t> sleeps{0};
  };

  struct Batch;  ///< shared per-parallel_for record (thread_pool.cpp)

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // --- hot shared state (no mutex) ---
  /// Tasks in some deque or mid-push. Incremented before the push (and
  /// before the stop check — shutdown protocol), decremented at pop time
  /// inside the deque lock. seq_cst: paired with stop_/sleepers_ by the
  /// Dekker arguments above.
  std::atomic<std::size_t> queued_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> next_queue_{0};  ///< round-robin cursor

  // --- sleep/wake slow path only ---
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::atomic<int> sleepers_{0};

  /// Pushes onto worker `target`'s deque and wakes a sleeper if any.
  /// Throws std::logic_error (after undoing the queued_ increment) on a
  /// stopping pool; ownership of `task.ctx` stays with the caller until
  /// this returns.
  void push_task(std::size_t target, TaskRef task);
  /// Worker deque index for a task submitted by the current thread.
  [[nodiscard]] std::size_t submitter_queue();
  /// Pops one task (own deque back first, then steals front-of-sibling
  /// starting after `self`), decrementing queued_ at pop time. Returns
  /// {nullptr, nullptr} if none found.
  TaskRef take_task(std::size_t self);
  void worker_loop(std::size_t self);
  /// Wakes sleepers after a push (empty idle_mutex_ critical section closes
  /// the check-then-sleep race).
  void wake_sleepers(bool all);
};

}  // namespace gurita
