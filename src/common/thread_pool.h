// Work-stealing thread pool for embarrassingly parallel experiment sweeps.
//
// Each worker owns a deque guarded by its own mutex: it pops its newest task
// from the back (LIFO keeps caches warm for recursively submitted work) and
// steals the oldest task from the front of a sibling's deque when its own is
// empty (FIFO stealing takes the largest pending subtrees first). External
// submissions are distributed round-robin; submissions from inside a worker
// go to that worker's own deque.
//
// Determinism contract: the pool guarantees nothing about execution order —
// callers that need reproducible results must make every task independent
// (own RNG, own output slot) and merge outputs in task-index order.
// parallel_for() below is the canonical shape: results land in caller-owned
// slots indexed by loop index, and the first exception *by index* (not by
// completion time) is rethrown, so failures are as deterministic as
// successes. exp/runner.h builds the experiment matrix on top of this.
//
// Blocking waits help: a thread waiting inside parallel_for() (including a
// worker running a nested parallel_for) executes queued tasks instead of
// sleeping, so nested parallelism cannot deadlock the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gurita {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means one per hardware thread. A pool of
  /// size 1 still runs tasks on its single worker thread (not inline), so
  /// the concurrency machinery is exercised at every size.
  explicit ThreadPool(int threads = 0);

  /// Drains every queued task, then joins the workers. Tasks submitted
  /// during destruction are rejected.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a fire-and-forget task. Exceptions escaping `task` terminate
  /// (wrap work that can throw via parallel_for, which captures them).
  void submit(std::function<void()> task);

  /// Runs fn(0) ... fn(n-1) across the pool and blocks until all complete.
  /// The calling thread helps execute tasks while waiting. If any
  /// invocations throw, the exception of the smallest failing index is
  /// rethrown (deterministic regardless of completion order); the remaining
  /// invocations still run to completion first.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Number of hardware threads, at least 1.
  [[nodiscard]] static int hardware_threads();

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::size_t queued_ = 0;  ///< tasks sitting in some deque (guarded by idle_mutex_)
  bool stop_ = false;       ///< destructor has begun (guarded by idle_mutex_)

  std::size_t next_queue_ = 0;  ///< round-robin cursor (guarded by idle_mutex_)

  void worker_loop(std::size_t self);
  /// Pops one task (own deque back first, then steals front-of-sibling
  /// starting after `self`). Returns an empty function if none found.
  std::function<void()> take_task(std::size_t self);
  /// Runs one queued task if any is available; returns whether it did.
  bool try_help(std::size_t self);
};

}  // namespace gurita
