// Precondition / invariant checking.
//
// GURITA_CHECK is always on (simulation correctness beats the nanoseconds);
// failures throw std::logic_error with file:line context so tests can assert
// on contract violations instead of crashing the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gurita::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace gurita::detail

/// Checks `cond`; on failure throws std::logic_error carrying `msg`.
#define GURITA_CHECK_MSG(cond, msg)                                   \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::gurita::detail::check_failed(#cond, __FILE__, __LINE__, msg); \
    }                                                                 \
  } while (false)

/// Checks `cond`; on failure throws std::logic_error.
#define GURITA_CHECK(cond) GURITA_CHECK_MSG(cond, "")
