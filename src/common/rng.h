// Deterministic random number generation.
//
// All randomness in the simulator flows from one seeded generator so every
// experiment is exactly reproducible from its config. The generator is
// SplitMix64 (fast, well distributed, trivially seedable) with distribution
// helpers for the shapes the workload generator needs: uniform, exponential,
// log-normal, bounded Pareto and weighted choice.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace gurita {

/// SplitMix64 PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    GURITA_CHECK_MSG(lo <= hi, "uniform bounds inverted");
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Log-normal: exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma);

  /// Standard normal via Box-Muller.
  double normal(double mean, double stddev);

  /// Bounded Pareto on [lo, hi] with tail index alpha > 0.
  double bounded_pareto(double lo, double hi, double alpha);

  /// Index drawn proportionally to `weights` (all >= 0, sum > 0).
  std::size_t weighted_choice(const std::vector<double>& weights);

  /// Derives an independent child generator (for per-subsystem streams).
  Rng split() { return Rng(next_u64() ^ 0x6a09e667f3bcc909ULL); }

 private:
  std::uint64_t state_;
};

}  // namespace gurita
