// Strongly typed integer identifiers.
//
// Every entity in the simulator (node, link, flow, coflow, job) is referred
// to by an id. Using a distinct C++ type per entity kind makes it impossible
// to pass a FlowId where a LinkId is expected — a class of bug that plain
// `int` ids invite in event-driven simulators.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace gurita {

/// A strongly typed, trivially copyable integer id.
///
/// `Tag` is a phantom type that distinguishes id families. Ids are ordered
/// and hashable so they can be used as map keys and sorted deterministically.
template <typename Tag>
class TypedId {
 public:
  using underlying_type = std::uint64_t;

  constexpr TypedId() = default;
  constexpr explicit TypedId(underlying_type v) : value_(v) {}

  /// Sentinel id meaning "no entity".
  static constexpr TypedId invalid() {
    return TypedId{std::numeric_limits<underlying_type>::max()};
  }

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const {
    return value_ != invalid().value_;
  }

  friend constexpr bool operator==(TypedId a, TypedId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(TypedId a, TypedId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(TypedId a, TypedId b) {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator>(TypedId a, TypedId b) {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator<=(TypedId a, TypedId b) {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>=(TypedId a, TypedId b) {
    return a.value_ >= b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, TypedId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  underlying_type value_ = invalid().value_;
};

struct NodeTag {};
struct LinkTag {};
struct FlowTag {};
struct CoflowTag {};
struct JobTag {};

/// Identifies a node (host or switch) in the topology.
using NodeId = TypedId<NodeTag>;
/// Identifies a directed link in the topology.
using LinkId = TypedId<LinkTag>;
/// Identifies a single network flow.
using FlowId = TypedId<FlowTag>;
/// Identifies a coflow (a group of flows between two job stages).
using CoflowId = TypedId<CoflowTag>;
/// Identifies a multi-stage job (a DAG of coflows).
using JobId = TypedId<JobTag>;

/// Monotonic id factory; hands out 0, 1, 2, ...
template <typename Id>
class IdAllocator {
 public:
  Id next() { return Id{next_++}; }
  [[nodiscard]] std::uint64_t count() const { return next_; }
  void reset() { next_ = 0; }

 private:
  std::uint64_t next_ = 0;
};

}  // namespace gurita

namespace std {
template <typename Tag>
struct hash<gurita::TypedId<Tag>> {
  size_t operator()(gurita::TypedId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
