// Scalar units used throughout the simulator.
//
// The fluid flow-level model does heavy floating point arithmetic on sizes,
// times and rates, so these are plain doubles with named aliases and unit
// constants rather than wrapper classes. The aliases document intent at
// interfaces; the constants (`kMB`, `kGbps`, ...) keep magic numbers out of
// call sites.
#pragma once

namespace gurita {

/// Simulated time in seconds.
using Time = double;
/// Data volume in bytes (fractional during fluid transfer).
using Bytes = double;
/// Transfer rate in bytes per second.
using Rate = double;

inline constexpr Bytes kKB = 1e3;
inline constexpr Bytes kMB = 1e6;
inline constexpr Bytes kGB = 1e9;
inline constexpr Bytes kTB = 1e12;

/// Converts link speed in gigabits/s to bytes/s.
constexpr Rate gbps(double g) { return g * 1e9 / 8.0; }

inline constexpr Time kMicrosecond = 1e-6;
inline constexpr Time kMillisecond = 1e-3;

/// Completion guard: a flow with fewer than this many bytes left is done.
/// Keeps floating-point residue from generating zero-length "events".
inline constexpr Bytes kByteEpsilon = 1e-6;

/// Two simulation timestamps closer than this are the same instant.
inline constexpr Time kTimeEpsilon = 1e-12;

}  // namespace gurita
