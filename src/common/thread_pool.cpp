#include "common/thread_pool.h"

#include <exception>
#include <utility>

#include "common/check.h"

namespace gurita {

namespace {
/// Pool and worker index the current thread runs as (nullptr / npos on
/// foreign threads). Lets submit() route nested submissions to the
/// submitter's own deque — but only for the pool being submitted to, so a
/// worker of pool A submitting into a nested pool B falls back to B's
/// round-robin instead of writing through A's index.
thread_local const void* t_pool = nullptr;
thread_local std::size_t t_worker_index = static_cast<std::size_t>(-1);
}  // namespace

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads) {
  const int n = threads > 0 ? threads : hardware_threads();
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    threads_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true);  // seq_cst — see the shutdown protocol in the header
  wake_sleepers(/*all=*/true);
  for (std::thread& t : threads_) t.join();
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  for (const auto& w : workers_) {
    s.executed += w->executed.load(std::memory_order_relaxed);
    s.steals += w->steals.load(std::memory_order_relaxed);
    s.failed_scans += w->failed_scans.load(std::memory_order_relaxed);
    s.sleeps += w->sleeps.load(std::memory_order_relaxed);
  }
  return s;
}

std::size_t ThreadPool::submitter_queue() {
  if (t_pool == this && t_worker_index < workers_.size())
    return t_worker_index;
  return next_queue_.fetch_add(1, std::memory_order_relaxed) %
         workers_.size();
}

void ThreadPool::wake_sleepers(bool all) {
  if (sleepers_.load() == 0 && !all) return;
  // The empty critical section orders this wake against a worker that has
  // evaluated its wait predicate (under idle_mutex_) but not yet slept:
  // either its predicate load saw our queued_/stop_ write, or it reaches
  // the wait before we acquire the mutex and the notify lands.
  { std::lock_guard<std::mutex> lock(idle_mutex_); }
  if (all)
    idle_cv_.notify_all();
  else
    idle_cv_.notify_one();
}

void ThreadPool::push_task(std::size_t target, TaskRef task) {
  // Increment-before-stop-check: see the shutdown protocol in the header.
  queued_.fetch_add(1);
  if (stop_.load()) {
    queued_.fetch_sub(1);
    GURITA_CHECK_MSG(false, "submit on a stopping pool");
  }
  {
    Worker& w = *workers_[target];
    std::lock_guard<std::mutex> lock(w.mutex);
    w.tasks.push_back(task);
  }
  wake_sleepers(/*all=*/false);
}

ThreadPool::TaskRef ThreadPool::take_task(std::size_t self) {
  const std::size_t n = workers_.size();
  // Own deque first (back = newest), then steal round the ring (front =
  // oldest, the biggest pending piece of someone else's backlog). queued_
  // is decremented inside the deque lock, so it never counts a task that
  // has already left every deque.
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      TaskRef task = own.tasks.back();
      own.tasks.pop_back();
      queued_.fetch_sub(1);
      return task;
    }
  }
  for (std::size_t k = 1; k < n; ++k) {
    Worker& victim = *workers_[(self + k) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      TaskRef task = victim.tasks.front();
      victim.tasks.pop_front();
      queued_.fetch_sub(1);
      workers_[self]->steals.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return {};
}

void ThreadPool::worker_loop(std::size_t self) {
  t_pool = this;
  t_worker_index = self;
  Worker& me = *workers_[self];
  int empty_scans = 0;
  for (;;) {
    if (TaskRef task = take_task(self); task.run != nullptr) {
      empty_scans = 0;
      me.executed.fetch_add(1, std::memory_order_relaxed);
      task.run(task.ctx);
      continue;
    }
    me.failed_scans.fetch_add(1, std::memory_order_relaxed);
    // Drain-before-stop: exit only once no task remains anywhere (queued or
    // mid-push), so the destructor's contract (every accepted task runs)
    // holds.
    if (stop_.load() && queued_.load() == 0) return;
    if (queued_.load() > 0 && ++empty_scans < kMaxEmptyScans) {
      // A task exists but the scan missed it (in-flight push, or a sibling
      // popped it between our count read and the scan). Transient by
      // construction — re-scan after yielding rather than parking.
      std::this_thread::yield();
      continue;
    }
    empty_scans = 0;
    std::unique_lock<std::mutex> lock(idle_mutex_);
    sleepers_.fetch_add(1);
    me.sleeps.fetch_add(1, std::memory_order_relaxed);
    // Predicate evaluated under idle_mutex_; paired with wake_sleepers'
    // empty critical section and the seq_cst queued_/sleepers_ accesses
    // (Dekker) so a wake is never lost.
    idle_cv_.wait(lock, [this] {
      return queued_.load() > 0 || stop_.load();
    });
    sleepers_.fetch_sub(1);
  }
}

namespace {
/// Heap node for a generic submit(); run once, then freed.
struct FnTask {
  std::function<void()> fn;
  static void run(void* ctx) {
    std::unique_ptr<FnTask> self(static_cast<FnTask*>(ctx));
    self->fn();
  }
};
}  // namespace

void ThreadPool::submit(std::function<void()> task) {
  GURITA_CHECK_MSG(task != nullptr, "submitted an empty task");
  auto node = std::make_unique<FnTask>(FnTask{std::move(task)});
  push_task(submitter_queue(), TaskRef{&FnTask::run, node.get()});
  // push_task throws on a stopping pool before publishing the node; the
  // unique_ptr frees it. On success the queue owns it.
  node.release();  // NOLINT(bugprone-unused-return-value)
}

/// Shared record of one parallel_for call: the workers and the caller
/// split [0, n) through the `next` cursor, so the loop costs one heap
/// allocation total (this record) instead of one task object per index.
/// Freed by whoever drops the last reference — the caller plus one per
/// queued handle — which may be a worker popping a handle long after the
/// caller returned (every index is then already claimed, so `fn` is never
/// dereferenced past the caller's lifetime).
struct ThreadPool::Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};     ///< index claim cursor
  std::atomic<std::size_t> pending{0};  ///< iterations not yet completed
  std::atomic<int> refs{0};             ///< queued handles + the caller
  std::mutex mutex;                     ///< completion wait only
  std::condition_variable done;
  std::vector<std::exception_ptr> errors;  ///< slot i written only by task i

  /// Claims and runs iterations until the cursor is exhausted. The thread
  /// that completes the last iteration notifies the caller — real
  /// completion signalling, no timed polling.
  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*fn)(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        { std::lock_guard<std::mutex> lock(mutex); }
        done.notify_all();
      }
    }
  }

  static void run_handle(void* ctx) {
    Batch* batch = static_cast<Batch*>(ctx);
    batch->drain();
    batch->unref();
  }

  void unref() {
    if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }
};

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  GURITA_CHECK_MSG(!stop_.load(), "parallel_for on a stopping pool");

  Batch* batch = new Batch;
  batch->n = n;
  batch->fn = &fn;
  batch->pending.store(n, std::memory_order_relaxed);
  batch->errors.resize(n);
  // One handle per worker (fewer if the loop is shorter), posted directly
  // to each worker's deque so every worker can join without stealing.
  const std::size_t handles = std::min(workers_.size(), n);
  batch->refs.store(static_cast<int>(handles) + 1,
                    std::memory_order_relaxed);
  std::size_t posted = 0;
  try {
    for (; posted < handles; ++posted)
      push_task(posted, TaskRef{&Batch::run_handle, batch});
  } catch (...) {
    // Stopping pool (racing destructor): stop new claims, drop the refs of
    // the unposted handles and fail loudly.
    batch->next.store(batch->n);
    batch->refs.fetch_sub(static_cast<int>(handles - posted));
    batch->unref();
    throw;
  }

  // The caller claims indices like any worker — this is what makes nested
  // parallel_for deadlock-free at every pool size: a blocked caller always
  // has its own loop's unclaimed work to run.
  batch->drain();
  {
    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->done.wait(lock, [&] {
      return batch->pending.load(std::memory_order_acquire) == 0;
    });
  }

  // Move the error slots out before dropping our reference: the last
  // reference may be a worker's late no-op handle, and its `delete` must
  // not release exception objects the caller is about to rethrow and read
  // (all slot writes happen-before the pending==0 acquire above, so the
  // move is safe; the worker then destroys an empty vector).
  std::vector<std::exception_ptr> errors = std::move(batch->errors);
  batch->unref();
  // First failure by index, not by completion time: deterministic.
  std::exception_ptr first;
  for (std::size_t i = 0; i < n && !first; ++i)
    if (errors[i]) first = errors[i];
  if (first) std::rethrow_exception(first);
}

}  // namespace gurita
