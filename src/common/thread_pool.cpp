#include "common/thread_pool.h"

#include <chrono>
#include <exception>
#include <utility>

#include "common/check.h"

namespace gurita {

namespace {
/// Index of the worker the current thread runs as, or npos on foreign
/// threads. Lets submit() route nested submissions to the submitter's own
/// deque and lets waiting threads start stealing from a distinct victim.
thread_local std::size_t t_worker_index = static_cast<std::size_t>(-1);
}  // namespace

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads) {
  const int n = threads > 0 ? threads : hardware_threads();
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    threads_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  GURITA_CHECK_MSG(task != nullptr, "submitted an empty task");
  const std::size_t self = t_worker_index;
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    GURITA_CHECK_MSG(!stop_, "submit on a stopping pool");
    target = self < workers_.size() ? self : next_queue_++ % workers_.size();
    ++queued_;
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->tasks.push_back(std::move(task));
  }
  idle_cv_.notify_one();
}

std::function<void()> ThreadPool::take_task(std::size_t self) {
  const std::size_t n = workers_.size();
  // Own deque first (back = newest), then steal round the ring (front =
  // oldest, the biggest pending piece of someone else's backlog).
  if (self < n) {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      auto task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return task;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (self + 1 + k) % n;
    if (victim == self) continue;
    Worker& w = *workers_[victim];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.tasks.empty()) {
      auto task = std::move(w.tasks.front());
      w.tasks.pop_front();
      return task;
    }
  }
  return {};
}

bool ThreadPool::try_help(std::size_t self) {
  std::function<void()> task = take_task(self);
  if (!task) return false;
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    --queued_;
  }
  task();
  return true;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_worker_index = self;
  for (;;) {
    if (try_help(self)) continue;
    std::unique_lock<std::mutex> lock(idle_mutex_);
    // Drain-before-stop: exit only once no task remains anywhere, so the
    // destructor's contract (every submitted task runs) holds.
    if (stop_ && queued_ == 0) return;
    if (queued_ == 0 && !stop_) idle_cv_.wait(lock);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  struct Join {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::vector<std::exception_ptr> errors;  ///< slot i written only by task i
  };
  auto join = std::make_shared<Join>();
  join->remaining = n;
  join->errors.resize(n);

  for (std::size_t i = 0; i < n; ++i) {
    submit([join, &fn, i] {
      try {
        fn(i);
      } catch (...) {
        join->errors[i] = std::current_exception();
      }
      std::size_t left;
      {
        std::lock_guard<std::mutex> lock(join->mutex);
        left = --join->remaining;
      }
      if (left == 0) join->done.notify_all();
    });
  }

  // Help while waiting: run queued tasks (this loop's or anyone's) instead
  // of sleeping, so a worker blocked in a nested parallel_for still makes
  // progress. The timed wait covers the window where the remaining tasks
  // are all mid-execution on other threads.
  const std::size_t self = t_worker_index;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(join->mutex);
      if (join->remaining == 0) break;
    }
    if (try_help(self)) continue;
    std::unique_lock<std::mutex> lock(join->mutex);
    join->done.wait_for(lock, std::chrono::milliseconds(1),
                        [&] { return join->remaining == 0; });
    if (join->remaining == 0) break;
  }

  // First failure by index, not by completion time: deterministic.
  for (std::size_t i = 0; i < n; ++i)
    if (join->errors[i]) std::rethrow_exception(join->errors[i]);
}

}  // namespace gurita
