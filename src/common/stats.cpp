#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace gurita {

std::size_t percentile_rank_index(double p, std::size_t n) {
  GURITA_CHECK_MSG(n > 0, "percentile of empty collection");
  GURITA_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile out of range");
  if (p <= 0.0) return 0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  return std::min(rank == 0 ? 0 : rank - 1, n - 1);
}

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::merge(const Samples& other) {
  xs_.insert(xs_.end(), other.xs_.begin(), other.xs_.end());
  sorted_ = false;
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Samples::percentile(double p) const {
  GURITA_CHECK_MSG(!xs_.empty(), "percentile of empty sample set");
  ensure_sorted();
  return xs_[percentile_rank_index(p, xs_.size())];
}

LogHistogram::LogHistogram(double base) : base_(base) {
  GURITA_CHECK_MSG(base > 1.0, "histogram base must exceed 1");
}

int LogHistogram::bucket_index(double x) const {
  GURITA_CHECK_MSG(x > 0.0, "log histogram needs positive values");
  return static_cast<int>(std::floor(std::log(x) / std::log(base_)));
}

double LogHistogram::percentile(double p) const {
  const std::size_t idx = percentile_rank_index(p, total_);
  if (idx < zeros_) return 0.0;
  std::size_t seen = zeros_;
  for (const auto& [i, c] : buckets_) {
    seen += c;
    if (idx < seen) return std::pow(base_, i + 1);
  }
  GURITA_CHECK_MSG(false, "log histogram bucket counts disagree with total");
  return 0.0;
}

void LogHistogram::merge(const LogHistogram& other) {
  GURITA_CHECK_MSG(base_ == other.base_,
                   "merging log histograms with different bases");
  total_ += other.total_;
  zeros_ += other.zeros_;
  for (const auto& [i, c] : other.buckets_) *find_or_insert(i) += c;
}

std::size_t* LogHistogram::find_or_insert(int idx) {
  for (auto& [i, c] : buckets_) {
    if (i == idx) return &c;
  }
  buckets_.emplace_back(idx, 0);
  std::sort(buckets_.begin(), buckets_.end());
  return find_or_insert(idx);
}

void LogHistogram::add(double x) {
  GURITA_CHECK_MSG(x >= 0.0, "log histogram needs non-negative values");
  if (x == 0.0) {
    ++zeros_;
  } else {
    ++*find_or_insert(bucket_index(x));
  }
  ++total_;
}

std::size_t LogHistogram::count_in_bucket_of(double x) const {
  const int idx = bucket_index(x);
  for (const auto& [i, c] : buckets_) {
    if (i == idx) return c;
  }
  return 0;
}

std::string LogHistogram::to_string() const {
  std::ostringstream os;
  for (const auto& [i, c] : buckets_) {
    os << "[" << std::pow(base_, i) << ", " << std::pow(base_, i + 1)
       << "): " << c << "\n";
  }
  return os.str();
}

}  // namespace gurita
