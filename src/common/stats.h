// Lightweight online statistics and histograms for experiment reporting.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace gurita {

/// The single nearest-rank percentile kernel every percentile query in the
/// repo routes through (Samples, LogHistogram, metrics collectors): for a
/// sorted collection of `n > 0` elements, the percentile `p` in [0, 100] is
/// the element at this index (rank = ceil(p/100 * n), clamped to [0, n-1]).
[[nodiscard]] std::size_t percentile_rank_index(double p, std::size_t n);

/// Welford online accumulator: mean / variance / min / max / count.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample collector with exact percentile queries (keeps all samples).
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] double mean() const;
  /// Nearest-rank percentile; `p` in [0, 100]. Requires non-empty.
  [[nodiscard]] double percentile(double p) const;
  /// Empty-safe percentile: `fallback` when no samples were recorded.
  [[nodiscard]] double percentile_or(double p, double fallback) const {
    return xs_.empty() ? fallback : percentile(p);
  }
  [[nodiscard]] const std::vector<double>& values() const { return xs_; }

  /// Appends `other`'s samples in their insertion order, so merging shard
  /// collectors in shard order reproduces the serial insertion sequence
  /// exactly (the parallel runner's determinism contract).
  void merge(const Samples& other);

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Log-spaced histogram over [0, +inf); useful for heavy-tailed sizes.
/// Zero values (e.g. a coflow released the instant its job arrived, so its
/// queue wait is exactly 0) land in a dedicated zero bucket rather than
/// crashing the log. Negative values are rejected.
class LogHistogram {
 public:
  /// Buckets are [base^i, base^(i+1)); `base` > 1.
  explicit LogHistogram(double base = 10.0);

  void add(double x);
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t zeros() const { return zeros_; }
  [[nodiscard]] double base() const { return base_; }
  /// Sorted (bucket index -> count) pairs; indices can be negative for
  /// x < 1. Excludes the zero bucket (see zeros()).
  [[nodiscard]] const std::vector<std::pair<int, std::size_t>>& buckets()
      const {
    return buckets_;
  }
  /// Human-readable dump, one bucket per line.
  [[nodiscard]] std::string to_string() const;
  /// Count in bucket containing x.
  [[nodiscard]] std::size_t count_in_bucket_of(double x) const;

  /// Nearest-rank percentile over the bucketed distribution; `p` in
  /// [0, 100]. Returns the *upper edge* base^(i+1) of the bucket holding
  /// the nearest-rank sample (an upper bound on the true percentile, so
  /// tail reports never understate), or 0 when that sample is a recorded
  /// zero. Requires total() > 0.
  [[nodiscard]] double percentile(double p) const;

  /// Commutative, order-independent merge (bucket-count sums). Requires
  /// identical base: merging differently-spaced histograms is a bug.
  void merge(const LogHistogram& other);

 private:
  double base_;
  std::size_t total_ = 0;
  std::size_t zeros_ = 0;
  // bucket index -> count; indices can be negative for x < 1.
  std::vector<std::pair<int, std::size_t>> buckets_;
  [[nodiscard]] int bucket_index(double x) const;
  std::size_t* find_or_insert(int idx);
};

}  // namespace gurita
