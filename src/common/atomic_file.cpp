#include "common/atomic_file.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace gurita {

void write_file_atomic(const std::string& path, bool binary,
                       const std::function<void(std::ostream&)>& fn) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, binary ? std::ios::out | std::ios::binary
                                  : std::ios::out);
    if (!out.is_open())
      throw std::runtime_error("cannot open temp file " + tmp);
    try {
      fn(out);
    } catch (...) {
      out.close();
      std::remove(tmp.c_str());
      throw;
    }
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("write to " + tmp + " failed");
    }
  }
  // std::rename replaces an existing destination atomically on POSIX.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " to " + path);
  }
}

}  // namespace gurita
