#include "common/log.h"

#include <iostream>

namespace gurita::log {

namespace {
Level g_level = Level::kWarn;

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_level(Level level) { g_level = level; }
Level level() { return g_level; }

void write(Level lvl, const std::string& msg) {
  if (lvl < g_level) return;
  std::cerr << "[" << level_name(lvl) << "] " << msg << "\n";
}

}  // namespace gurita::log
