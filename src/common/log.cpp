#include "common/log.h"

#include <atomic>
#include <iostream>
#include <mutex>
#include <stdexcept>

namespace gurita::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};
/// Serializes writes so lines from the parallel runner's workers never
/// interleave mid-line.
std::mutex g_write_mutex;

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_level(Level level) {
  g_level.store(level, std::memory_order_relaxed);
}
Level level() { return g_level.load(std::memory_order_relaxed); }

Level level_from_string(const std::string& name) {
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  if (name == "off") return Level::kOff;
  throw std::logic_error("unknown log level: " + name +
                         " (want debug|info|warn|error|off)");
}

void write(Level lvl, const std::string& msg) {
  if (lvl < level()) return;
  // Compose the full line first, then emit it under the lock with a single
  // stream insertion, so concurrent writers produce whole lines.
  std::string line;
  line.reserve(msg.size() + 10);
  line += "[";
  line += level_name(lvl);
  line += "] ";
  line += msg;
  line += "\n";
  const std::lock_guard<std::mutex> lock(g_write_mutex);
  std::cerr << line;
}

}  // namespace gurita::log
