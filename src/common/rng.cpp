#include "common/rng.h"

#include <cmath>

namespace gurita {

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  GURITA_CHECK_MSG(lo <= hi, "uniform_int bounds inverted");
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + v % span;
}

double Rng::exponential(double mean) {
  GURITA_CHECK_MSG(mean > 0, "exponential mean must be positive");
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::bounded_pareto(double lo, double hi, double alpha) {
  GURITA_CHECK_MSG(lo > 0 && hi > lo && alpha > 0, "bad bounded_pareto args");
  const double u = next_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(1.0 / x, 1.0 / alpha);
}

std::size_t Rng::weighted_choice(const std::vector<double>& weights) {
  GURITA_CHECK_MSG(!weights.empty(), "weighted_choice on empty weights");
  double total = 0;
  for (double w : weights) {
    GURITA_CHECK_MSG(w >= 0, "negative weight");
    total += w;
  }
  GURITA_CHECK_MSG(total > 0, "weighted_choice weights sum to zero");
  double r = uniform(0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return weights.size() - 1;  // floating point residue lands on last bucket
}

}  // namespace gurita
