// Crash-safe file writes: write to `<path>.tmp`, flush, then rename over
// the destination. A crash (or a thrown exception) mid-write leaves either
// the previous file intact or a stray .tmp — never a truncated artifact
// that a downstream reader (validate_trace.py, trace_explorer, result
// diffing in CI) would half-parse.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace gurita {

/// Writes `path` atomically: opens `<path>.tmp` (binary mode when `binary`),
/// hands the stream to `fn`, flushes, closes and renames onto `path`.
/// Throws std::runtime_error if the temp file cannot be opened, the stream
/// goes bad, or the rename fails; on failure the temp file is removed and
/// any previous `path` is left untouched. Exceptions from `fn` propagate
/// after the same cleanup.
void write_file_atomic(const std::string& path, bool binary,
                       const std::function<void(std::ostream&)>& fn);

}  // namespace gurita
