// Minimal leveled logging to stderr.
//
// The simulator is mostly silent; logging exists for debugging experiment
// runs (`Level::kDebug` traces every scheduling decision). Thread-safe: the
// level is an atomic read on the fast path, and write() serializes fully
// composed lines under a mutex, so messages from the parallel runner's
// workers never interleave mid-line.
#pragma once

#include <sstream>
#include <string>

namespace gurita::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level that will be emitted.
void set_level(Level level);
[[nodiscard]] Level level();

/// Parses "debug" | "info" | "warn" | "error" | "off" (the --log-level flag
/// values); throws std::logic_error on anything else.
[[nodiscard]] Level level_from_string(const std::string& name);

/// Emits `msg` at `lvl` if enabled. Thread-safe; whole lines only.
void write(Level lvl, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(Args&&... args) {
  if (level() <= Level::kDebug)
    write(Level::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void info(Args&&... args) {
  if (level() <= Level::kInfo)
    write(Level::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void warn(Args&&... args) {
  if (level() <= Level::kWarn)
    write(Level::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void error(Args&&... args) {
  if (level() <= Level::kError)
    write(Level::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace gurita::log
