// Minimal leveled logging to stderr.
//
// The simulator is mostly silent; logging exists for debugging experiment
// runs (`Level::kDebug` traces every scheduling decision). The level is a
// process-wide setting deliberately kept simple — it is configuration, not
// mutable program state.
#pragma once

#include <sstream>
#include <string>

namespace gurita::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level that will be emitted.
void set_level(Level level);
[[nodiscard]] Level level();

/// Emits `msg` at `lvl` if enabled. Thread-compatible (single writer).
void write(Level lvl, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(Args&&... args) {
  if (level() <= Level::kDebug)
    write(Level::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void info(Args&&... args) {
  if (level() <= Level::kInfo)
    write(Level::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void warn(Args&&... args) {
  if (level() <= Level::kWarn)
    write(Level::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void error(Args&&... args) {
  if (level() <= Level::kError)
    write(Level::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace gurita::log
