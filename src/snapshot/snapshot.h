// Deterministic checkpoint/restore subsystem (DESIGN.md §12).
//
// A snapshot captures the *complete dynamic state* of a paused simulation —
// event calendar (verbatim heap array, tombstones included), per-coflow
// aggregates, flow progress, parked/retry fault state, fault-plan cursor,
// partial result counters, the trace recorder's buffer and the scheduler's
// policy state — at an event boundary, such that
//
//     run_until(T); checkpoint; [new process] restore; finish()
//
// is byte-identical (JCTs, counters, traces, exports) to an uninterrupted
// run(). Static structure (topology, job specs, routes, sorted fault plan)
// is NOT serialized: the restoring side reconstructs the simulator from the
// same inputs, and a fingerprint embedded in the snapshot rejects
// mismatched inputs with SnapshotError.
//
// Format: `u32 magic, u32 version, u8 payload kind`, then length-prefixed
// sections of codec.h primitives. Versioning rule: bump kFormatVersion on
// any layout change — snapshots are short-lived resume artifacts, not an
// archival format, so no cross-version migration is attempted (a reader
// refuses old versions instead of guessing). Within a version, writers may
// append fields at the *end* of a section; readers skip unknown trailing
// bytes via Reader::skip_to.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "flowsim/simulator.h"
#include "snapshot/codec.h"

namespace gurita::snapshot {

/// "GSNP" little-endian.
inline constexpr std::uint32_t kMagic = 0x504e5347u;
/// v2: added the interval-sampler fingerprint fields and cursor section.
/// v3: flow routes are serialized verbatim (compaction renumbers flow ids,
/// so routes are no longer a pure function of the id), the engine section
/// carries the horizon-pause carry flags, and the kServiceState payload
/// wraps a simulator snapshot with daemon state (DESIGN.md §15).
inline constexpr std::uint32_t kFormatVersion = 3;

/// Payload kind byte following the header.
enum class PayloadKind : std::uint8_t {
  kSimulatorState = 1,  ///< Simulator::checkpoint / Simulator::restore
  kResultsCache = 2,    ///< save_results / load_results (finished shard)
  kServiceState = 3,    ///< service daemon auto-checkpoint (service/daemon.h)
};

/// Thrown by the experiment runner when --checkpoint-halt-after stops a run
/// on purpose after writing N snapshots (crash simulation for resume
/// testing). Distinct from SnapshotError so drivers can exit with a
/// "halted, resume me" status instead of reporting corruption.
class HaltedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes the standard snapshot header.
void write_header(Writer& w, PayloadKind kind);
/// Verifies magic/version and returns the payload kind; throws
/// SnapshotError on a mismatch.
[[nodiscard]] PayloadKind read_header(Reader& r);

/// Serializes one trace record field-by-field (shared by the simulator
/// checkpoint and the results cache).
void write_trace_record(Writer& w, const obs::TraceRecord& record);
[[nodiscard]] obs::TraceRecord read_trace_record(Reader& r);

/// Serializes one JobSpec field-by-field. The kServiceState payload embeds
/// the daemon's in-sim and queued job specs — unlike batch restore, an
/// open-horizon resume cannot reconstruct the admitted population from the
/// original inputs (it grew at runtime).
void write_job_spec(Writer& w, const JobSpec& spec);
[[nodiscard]] JobSpec read_job_spec(Reader& r);

/// Serializes a finished run's SimResults — jobs, coflows, every counter,
/// link stats and the trace. The profile is deliberately NOT serialized:
/// it is wall-clock telemetry outside the determinism contract, and a
/// resumed sweep's cached shards report zero profile time (EXPERIMENTS.md).
void save_results(Writer& w, const SimResults& results);
[[nodiscard]] SimResults load_results(Reader& r);

/// Atomically writes `payload` (a Writer buffer) to `path` via
/// `<path>.tmp` + rename, so a crash mid-checkpoint never leaves a
/// truncated snapshot for the resume path to trip over.
void write_snapshot_file(const std::string& path, const std::string& payload);
/// Reads a file written by write_snapshot_file; throws SnapshotError if it
/// cannot be opened.
[[nodiscard]] std::string read_snapshot_file(const std::string& path);

}  // namespace gurita::snapshot
