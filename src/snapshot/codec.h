// Byte-level codec for simulator snapshots (DESIGN.md §12).
//
// A snapshot is a flat byte string built from fixed-width little-endian
// primitives and length-prefixed variable parts. The encoding is chosen for
// *bit-exact* round-trips, not compactness: doubles travel as their IEEE-754
// bit pattern (never through decimal formatting), so a restored simulator
// resumes from exactly the floating-point state it was checkpointed with —
// the foundation of the byte-identical-resume invariant.
//
// Layering: this header depends only on common/ so that flowsim, sched and
// core code can declare save/load hooks without a dependency cycle; the
// snapshot *format* (sections, fingerprint, file I/O) lives one level up in
// snapshot/snapshot.h.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gurita::snapshot {

/// Malformed, truncated or mismatched snapshot bytes. Deliberately distinct
/// from ConfigError (setup validation) and logic_error (engine invariants):
/// callers may catch it to fall back to a from-scratch run.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends primitives to a byte buffer. All integers are little-endian
/// fixed-width; doubles are bit-cast to their 8-byte IEEE-754 pattern.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }

  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  /// Exact bit pattern: NaNs, infinities and signed zeros all survive.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(std::string_view v) {
    u64(v.size());
    buf_.append(v.data(), v.size());
  }

  /// Opens a length-prefixed section: writes an 8-byte placeholder and
  /// returns a token for end_section, which patches the placeholder with
  /// the number of bytes written in between. Sections let the reader verify
  /// that every nested decoder consumed exactly what its encoder produced.
  [[nodiscard]] std::size_t begin_section() {
    const std::size_t pos = buf_.size();
    u64(0);
    return pos;
  }

  void end_section(std::size_t token) {
    const std::uint64_t len =
        static_cast<std::uint64_t>(buf_.size() - token - 8);
    for (int i = 0; i < 8; ++i)
      buf_[token + static_cast<std::size_t>(i)] =
          static_cast<char>((len >> (8 * i)) & 0xff);
  }

  [[nodiscard]] const std::string& buffer() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Consumes a byte buffer written by Writer. Every read is bounds-checked;
/// overruns throw SnapshotError instead of reading garbage.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return v;
  }

  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] bool boolean() { return u8() != 0; }

  [[nodiscard]] std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string out(data_.substr(pos_, n));
    pos_ += n;
    return out;
  }

  /// Reads a section length and returns the cursor position where the
  /// section must end; pass it to end_section after decoding the contents.
  [[nodiscard]] std::size_t begin_section() {
    const std::uint64_t len = u64();
    need(len);
    return pos_ + static_cast<std::size_t>(len);
  }

  void end_section(std::size_t end) {
    if (pos_ != end)
      throw SnapshotError(
          "snapshot section size mismatch: decoder consumed " +
          std::to_string(pos_) + " bytes, section ends at " +
          std::to_string(end));
  }

  /// Skips to the end of a section without decoding (forward-compat: a
  /// reader may ignore trailing fields appended by a newer writer).
  void skip_to(std::size_t end) {
    if (end < pos_ || end > data_.size())
      throw SnapshotError("snapshot section bound out of range");
    pos_ = end;
  }

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  void need(std::uint64_t n) const {
    if (pos_ + n > data_.size())
      throw SnapshotError("truncated snapshot: need " + std::to_string(n) +
                          " bytes at offset " + std::to_string(pos_) +
                          ", have " + std::to_string(data_.size() - pos_));
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace gurita::snapshot
