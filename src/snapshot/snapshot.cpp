#include "snapshot/snapshot.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/atomic_file.h"

namespace gurita {

namespace {

using snapshot::Reader;
using snapshot::SnapshotError;
using snapshot::Writer;

/// FNV-1a over 64-bit words; doubles are mixed via their bit pattern so the
/// fingerprint is exact, not format-rounded.
class Fnv {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 1099511628211ull;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ull;
};

}  // namespace

/// Serializer for the simulator's private dynamic state. A separate class
/// (befriended by Simulator and SimState) keeps the field-by-field encoding
/// knowledge out of the engine: simulator.cpp never mentions the snapshot
/// format, and this file never duplicates engine logic — it copies state.
class SnapshotCodec {
 public:
  /// Everything the snapshot does NOT carry but correctness depends on:
  /// the restoring simulator must be built from the same fabric, scheduler,
  /// config and submitted job set. Mismatches throw SnapshotError before
  /// any state is touched.
  static void save_fingerprint(const Simulator& s, Writer& w) {
    const std::size_t token = w.begin_section();
    w.str(s.scheduler_->name());
    w.u64(static_cast<std::uint64_t>(s.fabric_->num_hosts()));
    w.u64(s.fabric_->topology().link_count());
    w.u64(s.state_.jobs_.size());
    w.u64(s.state_.coflows_.size());
    w.boolean(s.config_.collect_link_stats);
    w.f64(s.config_.tcp_ramp_time);
    w.f64(s.config_.tcp_initial_window);
    w.boolean(s.config_.trace != nullptr);
    w.u32(s.config_.trace != nullptr ? s.config_.trace->mask() : 0);
    // Sampler presence + config: a resumed run with a different sampling
    // grid would interleave different kSample records into the trace, so
    // it is structure, not just telemetry.
    const obs::IntervalSampler* sampler = s.config_.sampler;
    w.boolean(sampler != nullptr);
    w.f64(sampler != nullptr ? sampler->config().every : 0.0);
    w.boolean(sampler != nullptr && sampler->config().memory);
    w.boolean(sampler != nullptr && sampler->config().wall);
    w.u64(static_fingerprint(s));
    w.end_section(token);
  }

  static void verify_fingerprint(const Simulator& s, Reader& r) {
    const std::size_t end = r.begin_section();
    check(r.str() == s.scheduler_->name(), "scheduler mismatch");
    check(r.u64() == static_cast<std::uint64_t>(s.fabric_->num_hosts()),
          "host count mismatch");
    check(r.u64() == s.fabric_->topology().link_count(),
          "link count mismatch");
    check(r.u64() == s.state_.jobs_.size(), "job population mismatch");
    check(r.u64() == s.state_.coflows_.size(), "coflow population mismatch");
    check(r.boolean() == s.config_.collect_link_stats,
          "link-stats setting mismatch");
    check(r.f64() == s.config_.tcp_ramp_time, "tcp_ramp_time mismatch");
    check(r.f64() == s.config_.tcp_initial_window,
          "tcp_initial_window mismatch");
    check(r.boolean() == (s.config_.trace != nullptr),
          "trace recorder attached on one side only");
    check(r.u32() ==
              (s.config_.trace != nullptr ? s.config_.trace->mask() : 0),
          "trace filter mask mismatch");
    const obs::IntervalSampler* sampler = s.config_.sampler;
    check(r.boolean() == (sampler != nullptr),
          "interval sampler attached on one side only");
    check(r.f64() == (sampler != nullptr ? sampler->config().every : 0.0),
          "sampler interval mismatch");
    check(r.boolean() == (sampler != nullptr && sampler->config().memory),
          "sampler memory setting mismatch");
    check(r.boolean() == (sampler != nullptr && sampler->config().wall),
          "sampler wall setting mismatch");
    check(r.u64() == static_fingerprint(s),
          "job/disruption/fault inputs mismatch");
    r.end_section(end);
  }

  static void save(const Simulator& s, Writer& w) {
    save_engine(s, w);
    save_trace(s, w);
    save_sampler(s, w);
    const std::size_t token = w.begin_section();
    s.scheduler_->save_state(w);
    w.end_section(token);
  }

  static void load(Simulator& s, Reader& r) {
    load_engine(s, r);
    load_trace(s, r);
    load_sampler(s, r);
    const std::size_t end = r.begin_section();
    s.scheduler_->load_state(r);
    r.end_section(end);
  }

 private:
  static void check(bool ok, const char* what) {
    if (!ok)
      throw SnapshotError(std::string("snapshot fingerprint rejected: ") +
                          what);
  }

  /// Hash of the static inputs reconstructed (not serialized) on restore:
  /// submitted jobs, scheduled disruptions and the fault plan. The flow
  /// population and routes derive from these plus the topology, which the
  /// explicit host/link counts already pin down.
  static std::uint64_t static_fingerprint(const Simulator& s) {
    Fnv h;
    for (const SimJob& j : s.state_.jobs_) {
      h.mix(j.arrival_time);
      h.mix(j.total_bytes);
      h.mix(static_cast<std::uint64_t>(j.num_stages));
      h.mix(static_cast<std::uint64_t>(j.coflows.size()));
    }
    h.mix(static_cast<std::uint64_t>(s.config_.disruptions.size()));
    for (const CapacityChange& c : s.config_.disruptions) {
      h.mix(c.time);
      h.mix(c.link.value());
      h.mix(c.new_capacity);
    }
    h.mix(static_cast<std::uint64_t>(s.config_.faults.events.size()));
    for (const FaultEvent& e : s.config_.faults.events) {
      h.mix(e.time);
      h.mix(static_cast<std::uint64_t>(e.kind));
      h.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(e.host)));
      h.mix(e.link.value());
      h.mix(e.factor);
    }
    h.mix(s.config_.faults.seed);
    h.mix(static_cast<std::uint64_t>(s.config_.faults.retry.max_attempts));
    h.mix(s.config_.faults.retry.base_delay);
    return h.value();
  }

  static void save_engine(const Simulator& s, Writer& w) {
    const std::size_t token = w.begin_section();
    w.f64(s.now_);
    w.boolean(s.dirty_);
    // Horizon-pause carry flags (run_to): a daemon checkpoint lands at a
    // pause boundary, where the ramp-refresh mark and dirty-entry
    // accounting of the rolled-back event are still pending.
    w.boolean(s.pending_ramp_);
    w.boolean(s.pending_was_dirty_);
    w.u64(s.iterations_);
    w.u64(s.next_arrival_);
    w.f64(s.next_tick_);
    w.u64(s.next_disruption_);

    w.u64(s.capacities_.size());
    for (Rate c : s.capacities_) w.f64(c);

    // Flow store: everything except the id (the index). The route travels
    // verbatim (v3): it was drawn by ECMP-hashing the flow's id at release,
    // and compaction renumbers ids — recomputing from the current id would
    // silently re-route every compacted flow.
    w.u64(s.state_.flows_.size());
    for (const SimFlow& f : s.state_.flows_) {
      w.u64(f.job.value());
      w.i32(f.coflow_index);
      w.i32(f.src_host);
      w.i32(f.dst_host);
      w.u64(f.path.size());
      for (LinkId l : f.path) w.u64(l.value());
      w.f64(f.size);
      w.f64(f.remaining);
      w.f64(f.start_time);
      w.f64(f.finish_time);
      w.f64(f.rate);
      w.f64(f.last_touched);
      w.i64(f.tier);
      w.f64(f.weight);
      w.i32(f.attempts);
      w.f64(f.lost_bytes);
      w.f64(f.abort_time);
      w.boolean(f.cancelled);
    }

    // Coflow/job dynamic fields (static fields are rebuilt by submit()).
    w.u64(s.state_.coflows_.size());
    for (const SimCoflow& c : s.state_.coflows_) {
      w.u64(c.flows.size());
      for (FlowId fid : c.flows) w.u64(fid.value());
      w.i32(c.flows_remaining);
      w.i32(c.deps_remaining);
      w.f64(c.release_time);
      w.f64(c.finish_time);
    }
    w.u64(s.state_.jobs_.size());
    for (const SimJob& j : s.state_.jobs_) {
      w.i32(j.coflows_remaining);
      w.f64(j.finish_time);
      w.boolean(j.failed);
      w.i32(j.completed_stages);
    }
    for (const SimState::CoflowAggregate& a : s.state_.aggregates_) {
      w.f64(a.base_bytes);
      w.f64(a.rate_sum);
      w.f64(a.rate_time_sum);
      w.f64(a.ell_max_settled);
      w.i32(a.open_connections);
    }

    w.u64(s.gen_.size());
    for (std::uint32_t g : s.gen_) w.u32(g);

    // Active set in its exact order (arrival order modulo swap-with-last
    // removals): the order feeds the allocator and scheduler, so it is
    // state, not an implementation detail.
    w.u64(s.active_.size());
    for (const SimFlow* f : s.active_) w.u64(f->id.value());

    // Calendar heap array VERBATIM, tombstones included: pop order among
    // equal keys depends on the array layout, and the layout encodes the
    // whole push/pop history (see SnapshotableHeap).
    w.u64(s.calendar_.container().size());
    for (const Simulator::CalendarEntry& e : s.calendar_.container()) {
      w.f64(e.key);
      w.u32(e.gen);
      w.u64(e.flow.value());
    }

    // Partial result counters of the paused run.
    w.u64(s.results_.rate_recomputations);
    w.u64(s.results_.events);
    w.u64(s.results_.flow_touches);
    w.u64(s.results_.legacy_flow_touches);
    w.u64(s.results_.flow_aborts);
    w.u64(s.results_.flow_retries);
    w.u64(s.results_.failed_jobs);
    w.f64(s.results_.bytes_lost);
    w.f64(s.results_.bytes_retransmitted);
    w.f64(s.results_.total_recovery_latency);
    w.u64(s.results_.link_bytes.size());
    for (Bytes b : s.results_.link_bytes) w.f64(b);

    // Fault-injection runtime.
    w.boolean(s.have_faults_);
    if (s.have_faults_) {
      w.u64(s.next_fault_);
      w.u64(s.host_down_.size());
      for (char d : s.host_down_) w.u8(static_cast<std::uint8_t>(d));
      w.u64(s.link_down_.size());
      for (char d : s.link_down_) w.u8(static_cast<std::uint8_t>(d));
      for (double f : s.straggler_) w.f64(f);
      for (Rate c : s.saved_capacity_) w.f64(c);
      w.u64(s.parked_.size());
      for (FlowId fid : s.parked_) w.u64(fid.value());
      w.u64(s.retries_.container().size());
      for (const Simulator::RetryEntry& e : s.retries_.container()) {
        w.f64(e.time);
        w.u64(e.flow.value());
      }
      w.u64(s.outstanding_);
    }
    w.end_section(token);
  }

  static void load_engine(Simulator& s, Reader& r) {
    const std::size_t end = r.begin_section();
    s.now_ = r.f64();
    s.dirty_ = r.boolean();
    s.pending_ramp_ = r.boolean();
    s.pending_was_dirty_ = r.boolean();
    s.iterations_ = r.u64();
    s.next_arrival_ = r.u64();
    s.next_tick_ = r.f64();
    s.next_disruption_ = r.u64();

    const std::uint64_t n_caps = r.u64();
    check(n_caps == s.capacities_.size(), "link capacity vector size");
    for (Rate& c : s.capacities_) c = r.f64();

    // prepare_structures() reserved the flow store for the full population;
    // refill it with the serialized routes (v3, see save_engine).
    const std::uint64_t n_flows = r.u64();
    check(n_flows <= s.state_.flows_.capacity(),
          "flow count exceeds the submitted population");
    s.state_.flows_.clear();
    for (std::uint64_t i = 0; i < n_flows; ++i) {
      SimFlow f;
      f.id = FlowId{i};
      f.job = JobId{r.u64()};
      f.coflow_index = r.i32();
      f.src_host = r.i32();
      f.dst_host = r.i32();
      const std::uint64_t n_hops = r.u64();
      f.path.reserve(n_hops);
      for (std::uint64_t h = 0; h < n_hops; ++h)
        f.path.push_back(LinkId{r.u64()});
      f.size = r.f64();
      f.remaining = r.f64();
      f.start_time = r.f64();
      f.finish_time = r.f64();
      f.rate = r.f64();
      f.last_touched = r.f64();
      f.tier = r.i64();
      f.weight = r.f64();
      f.attempts = r.i32();
      f.lost_bytes = r.f64();
      f.abort_time = r.f64();
      f.cancelled = r.boolean();
      s.state_.flows_.push_back(std::move(f));
    }

    check(r.u64() == s.state_.coflows_.size(), "coflow count");
    for (SimCoflow& c : s.state_.coflows_) {
      c.flows.clear();
      const std::uint64_t n = r.u64();
      for (std::uint64_t i = 0; i < n; ++i) c.flows.push_back(FlowId{r.u64()});
      c.flows_remaining = r.i32();
      c.deps_remaining = r.i32();
      c.release_time = r.f64();
      c.finish_time = r.f64();
    }
    check(r.u64() == s.state_.jobs_.size(), "job count");
    for (SimJob& j : s.state_.jobs_) {
      j.coflows_remaining = r.i32();
      j.finish_time = r.f64();
      j.failed = r.boolean();
      j.completed_stages = r.i32();
    }
    for (SimState::CoflowAggregate& a : s.state_.aggregates_) {
      a.base_bytes = r.f64();
      a.rate_sum = r.f64();
      a.rate_time_sum = r.f64();
      a.ell_max_settled = r.f64();
      a.open_connections = r.i32();
    }

    const std::uint64_t n_gen = r.u64();
    check(n_gen == n_flows, "generation vector size");
    s.gen_.clear();
    for (std::uint64_t i = 0; i < n_gen; ++i) s.gen_.push_back(r.u32());

    const std::uint64_t n_active = r.u64();
    check(n_active <= n_flows, "active set larger than the flow store");
    s.active_.clear();
    s.pos_in_active_.assign(s.state_.flows_.size(), 0);
    for (std::uint64_t i = 0; i < n_active; ++i) {
      const std::uint64_t fid = r.u64();
      check(fid < s.state_.flows_.size(), "active flow id out of range");
      s.pos_in_active_[fid] = static_cast<std::uint32_t>(i);
      s.active_.push_back(&s.state_.flows_[fid]);
    }

    const std::uint64_t n_cal = r.u64();
    std::vector<Simulator::CalendarEntry> calendar;
    calendar.reserve(n_cal);
    for (std::uint64_t i = 0; i < n_cal; ++i) {
      Simulator::CalendarEntry e;
      e.key = r.f64();
      e.gen = r.u32();
      e.flow = FlowId{r.u64()};
      calendar.push_back(e);
    }
    s.calendar_.restore(std::move(calendar));

    s.results_.rate_recomputations = r.u64();
    s.results_.events = r.u64();
    s.results_.flow_touches = r.u64();
    s.results_.legacy_flow_touches = r.u64();
    s.results_.flow_aborts = r.u64();
    s.results_.flow_retries = r.u64();
    s.results_.failed_jobs = r.u64();
    s.results_.bytes_lost = r.f64();
    s.results_.bytes_retransmitted = r.f64();
    s.results_.total_recovery_latency = r.f64();
    const std::uint64_t n_links = r.u64();
    s.results_.link_bytes.resize(n_links);
    for (Bytes& b : s.results_.link_bytes) b = r.f64();

    check(r.boolean() == s.have_faults_, "fault plan presence");
    if (s.have_faults_) {
      s.next_fault_ = r.u64();
      check(r.u64() == s.host_down_.size(), "host vector size");
      for (char& d : s.host_down_) d = static_cast<char>(r.u8());
      check(r.u64() == s.link_down_.size(), "link vector size");
      for (char& d : s.link_down_) d = static_cast<char>(r.u8());
      for (double& f : s.straggler_) f = r.f64();
      for (Rate& c : s.saved_capacity_) c = r.f64();
      const std::uint64_t n_parked = r.u64();
      s.parked_.clear();
      for (std::uint64_t i = 0; i < n_parked; ++i)
        s.parked_.push_back(FlowId{r.u64()});
      const std::uint64_t n_retries = r.u64();
      std::vector<Simulator::RetryEntry> retries;
      retries.reserve(n_retries);
      for (std::uint64_t i = 0; i < n_retries; ++i) {
        Simulator::RetryEntry e;
        e.time = r.f64();
        e.flow = FlowId{r.u64()};
        retries.push_back(e);
      }
      s.retries_.restore(std::move(retries));
      s.outstanding_ = r.u64();
    }
    s.state_.now_ = s.now_;
    r.end_section(end);
  }

  static void save_trace(const Simulator& s, Writer& w) {
    const std::size_t token = w.begin_section();
    const obs::TraceRecorder* tr = s.config_.trace;
    w.boolean(tr != nullptr);
    if (tr != nullptr) {
      w.u64(tr->dropped());
      w.u64(tr->records().size());
      for (const obs::TraceRecord& rec : tr->records())
        snapshot::write_trace_record(w, rec);
    }
    w.end_section(token);
  }

  static void load_trace(Simulator& s, Reader& r) {
    const std::size_t end = r.begin_section();
    const bool attached = r.boolean();
    // Presence already fingerprint-checked; re-check defensively.
    check(attached == (s.config_.trace != nullptr),
          "trace recorder presence");
    if (attached) {
      const std::uint64_t dropped = r.u64();
      const std::uint64_t n = r.u64();
      std::vector<obs::TraceRecord> records;
      records.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i)
        records.push_back(snapshot::read_trace_record(r));
      s.config_.trace->restore(std::move(records), dropped);
    }
    r.end_section(end);
  }

  /// Sampler boundary cursor: grid index and the event count at the last
  /// emitted boundary. Already-emitted sample records ride the trace
  /// section; the cursor makes the *next* boundary land exactly where the
  /// uninterrupted run's would. Wall-clock state is deliberately absent
  /// (DESIGN.md §14).
  static void save_sampler(const Simulator& s, Writer& w) {
    const std::size_t token = w.begin_section();
    const obs::IntervalSampler* sampler = s.config_.sampler;
    w.boolean(sampler != nullptr);
    if (sampler != nullptr) {
      const obs::IntervalSampler::Cursor c = sampler->cursor();
      w.u64(c.k);
      w.u64(c.last_events);
    }
    w.end_section(token);
  }

  static void load_sampler(Simulator& s, Reader& r) {
    const std::size_t end = r.begin_section();
    const bool attached = r.boolean();
    check(attached == (s.config_.sampler != nullptr),
          "interval sampler presence");
    if (attached) {
      obs::IntervalSampler::Cursor c;
      c.k = r.u64();
      c.last_events = r.u64();
      s.config_.sampler->restore_cursor(c);
    }
    r.end_section(end);
  }
};

void Simulator::checkpoint(snapshot::Writer& w) const {
  GURITA_CHECK_MSG(prepared_ && !collected_,
                   "checkpoint() outside a paused run (use run_until first)");
  snapshot::write_header(w, snapshot::PayloadKind::kSimulatorState);
  SnapshotCodec::save_fingerprint(*this, w);
  SnapshotCodec::save(*this, w);
}

void Simulator::restore(snapshot::Reader& r) {
  GURITA_CHECK_MSG(!prepared_ && !ran_,
                   "restore() into a simulator that already ran");
  const snapshot::PayloadKind kind = snapshot::read_header(r);
  if (kind != snapshot::PayloadKind::kSimulatorState)
    throw snapshot::SnapshotError("not a simulator-state snapshot");
  obs::PhaseProfiler* prof = config_.profiler;
  if (prof != nullptr) prof->begin_run();
  const int setup_prev =
      prof != nullptr ? prof->enter(obs::Phase::kSetup) : -1;
  // Same static setup as a fresh run; the fingerprint then proves the
  // reconstructed structures match what the checkpointed run was built on,
  // and the codec overwrites every dynamic field.
  prepare_structures();
  SnapshotCodec::verify_fingerprint(*this, r);
  SnapshotCodec::load(*this, r);
  // The incremental allocator's membership/frontier state is not
  // serialized: rebuilding it from the restored active set leaves every
  // member link dirty, so the first allocation re-solves the whole set —
  // byte-identical to the cached rates an uninterrupted run carries,
  // because allocation is a pure function of (flows, tiers, weights, caps).
  alloc_.rebuild(active_);
  ran_ = true;
  prepared_ = true;
  // Wall deltas restart from the resume point (wall state is not part of
  // the snapshot; only sim-time samples are deterministic).
  if (config_.sampler != nullptr) config_.sampler->start_wall();
  if (prof != nullptr) prof->leave(setup_prev);
}

namespace snapshot {

void write_header(Writer& w, PayloadKind kind) {
  w.u32(kMagic);
  w.u32(kFormatVersion);
  w.u8(static_cast<std::uint8_t>(kind));
}

PayloadKind read_header(Reader& r) {
  if (r.u32() != kMagic)
    throw SnapshotError("bad snapshot magic (not a snapshot file?)");
  const std::uint32_t version = r.u32();
  if (version != kFormatVersion)
    throw SnapshotError("unsupported snapshot format version " +
                        std::to_string(version) + " (this build reads " +
                        std::to_string(kFormatVersion) + ")");
  const std::uint8_t kind = r.u8();
  if (kind != static_cast<std::uint8_t>(PayloadKind::kSimulatorState) &&
      kind != static_cast<std::uint8_t>(PayloadKind::kResultsCache) &&
      kind != static_cast<std::uint8_t>(PayloadKind::kServiceState))
    throw SnapshotError("unknown snapshot payload kind " +
                        std::to_string(kind));
  return static_cast<PayloadKind>(kind);
}

void write_trace_record(Writer& w, const obs::TraceRecord& record) {
  w.f64(record.time);
  w.u64(record.job);
  w.u64(record.coflow);
  w.u64(record.flow);
  w.f64(record.v0);
  w.f64(record.v1);
  w.f64(record.v2);
  w.f64(record.v3);
  w.f64(record.v4);
  w.f64(record.v5);
  w.i32(record.i0);
  w.i32(record.i1);
  w.i32(record.i2);
  w.u8(static_cast<std::uint8_t>(record.kind));
}

obs::TraceRecord read_trace_record(Reader& r) {
  obs::TraceRecord rec;
  rec.time = r.f64();
  rec.job = r.u64();
  rec.coflow = r.u64();
  rec.flow = r.u64();
  rec.v0 = r.f64();
  rec.v1 = r.f64();
  rec.v2 = r.f64();
  rec.v3 = r.f64();
  rec.v4 = r.f64();
  rec.v5 = r.f64();
  rec.i0 = r.i32();
  rec.i1 = r.i32();
  rec.i2 = r.i32();
  const std::uint8_t kind = r.u8();
  if (kind >= obs::kNumTraceEventKinds)
    throw SnapshotError("unknown trace record kind in snapshot");
  rec.kind = static_cast<obs::TraceEventKind>(kind);
  return rec;
}

void write_job_spec(Writer& w, const JobSpec& spec) {
  w.f64(spec.arrival_time);
  w.f64(spec.deadline);
  w.u64(spec.coflows.size());
  for (const CoflowSpec& c : spec.coflows) {
    w.u64(c.flows.size());
    for (const FlowSpec& f : c.flows) {
      w.i32(f.src_host);
      w.i32(f.dst_host);
      w.f64(f.size);
    }
  }
  w.u64(spec.deps.size());
  for (const std::vector<int>& d : spec.deps) {
    w.u64(d.size());
    for (int dep : d) w.i32(dep);
  }
}

JobSpec read_job_spec(Reader& r) {
  JobSpec spec;
  spec.arrival_time = r.f64();
  spec.deadline = r.f64();
  spec.coflows.resize(r.u64());
  for (CoflowSpec& c : spec.coflows) {
    c.flows.resize(r.u64());
    for (FlowSpec& f : c.flows) {
      f.src_host = r.i32();
      f.dst_host = r.i32();
      f.size = r.f64();
    }
  }
  spec.deps.resize(r.u64());
  for (std::vector<int>& d : spec.deps) {
    d.resize(r.u64());
    for (int& dep : d) dep = r.i32();
  }
  return spec;
}

void save_results(Writer& w, const SimResults& results) {
  write_header(w, PayloadKind::kResultsCache);
  const std::size_t token = w.begin_section();
  w.u64(results.jobs.size());
  for (const SimResults::JobResult& j : results.jobs) {
    w.u64(j.id.value());
    w.f64(j.arrival);
    w.f64(j.finish);
    w.f64(j.total_bytes);
    w.i32(j.num_stages);
    w.boolean(j.failed);
  }
  w.u64(results.coflows.size());
  for (const SimResults::CoflowResult& c : results.coflows) {
    w.u64(c.id.value());
    w.u64(c.job.value());
    w.i32(c.stage);
    w.f64(c.release);
    w.f64(c.finish);
    w.f64(c.total_bytes);
    w.boolean(c.failed);
  }
  w.f64(results.makespan);
  w.u64(results.rate_recomputations);
  w.u64(results.events);
  w.u64(results.flow_touches);
  w.u64(results.legacy_flow_touches);
  w.u64(results.flow_aborts);
  w.u64(results.flow_retries);
  w.u64(results.failed_jobs);
  w.f64(results.bytes_lost);
  w.f64(results.bytes_retransmitted);
  w.f64(results.total_recovery_latency);
  w.u64(results.link_bytes.size());
  for (Bytes b : results.link_bytes) w.f64(b);
  w.u64(results.trace.size());
  for (const obs::TraceRecord& rec : results.trace)
    write_trace_record(w, rec);
  // The profile is intentionally absent (wall-clock telemetry; see header).
  w.end_section(token);
}

SimResults load_results(Reader& r) {
  if (read_header(r) != PayloadKind::kResultsCache)
    throw SnapshotError("not a results-cache snapshot");
  const std::size_t end = r.begin_section();
  SimResults results;
  const std::uint64_t n_jobs = r.u64();
  results.jobs.reserve(n_jobs);
  for (std::uint64_t i = 0; i < n_jobs; ++i) {
    SimResults::JobResult j;
    j.id = JobId{r.u64()};
    j.arrival = r.f64();
    j.finish = r.f64();
    j.total_bytes = r.f64();
    j.num_stages = r.i32();
    j.failed = r.boolean();
    results.jobs.push_back(j);
  }
  const std::uint64_t n_coflows = r.u64();
  results.coflows.reserve(n_coflows);
  for (std::uint64_t i = 0; i < n_coflows; ++i) {
    SimResults::CoflowResult c;
    c.id = CoflowId{r.u64()};
    c.job = JobId{r.u64()};
    c.stage = r.i32();
    c.release = r.f64();
    c.finish = r.f64();
    c.total_bytes = r.f64();
    c.failed = r.boolean();
    results.coflows.push_back(c);
  }
  results.makespan = r.f64();
  results.rate_recomputations = r.u64();
  results.events = r.u64();
  results.flow_touches = r.u64();
  results.legacy_flow_touches = r.u64();
  results.flow_aborts = r.u64();
  results.flow_retries = r.u64();
  results.failed_jobs = r.u64();
  results.bytes_lost = r.f64();
  results.bytes_retransmitted = r.f64();
  results.total_recovery_latency = r.f64();
  const std::uint64_t n_links = r.u64();
  results.link_bytes.resize(n_links);
  for (Bytes& b : results.link_bytes) b = r.f64();
  const std::uint64_t n_trace = r.u64();
  results.trace.reserve(n_trace);
  for (std::uint64_t i = 0; i < n_trace; ++i)
    results.trace.push_back(read_trace_record(r));
  r.end_section(end);
  return results;
}

void write_snapshot_file(const std::string& path,
                         const std::string& payload) {
  write_file_atomic(path, /*binary=*/true, [&](std::ostream& out) {
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
  });
}

std::string read_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw SnapshotError("cannot open snapshot file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof())
    throw SnapshotError("error reading snapshot file: " + path);
  return std::move(buf).str();
}

}  // namespace snapshot
}  // namespace gurita
