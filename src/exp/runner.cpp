#include "exp/runner.h"

#include <algorithm>
#include <cstdlib>

#include "common/check.h"
#include "common/thread_pool.h"

namespace gurita {

namespace {

/// SplitMix64 finalizer (the Rng's output scrambler): a 64-bit bijection
/// with full avalanche, so nearby keys land on unrelated seeds.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a over the experiment name: stable across platforms and runs.
std::uint64_t hash_name(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t derive_run_seed(std::uint64_t base_seed,
                              const std::string& experiment,
                              std::uint64_t config_index,
                              std::uint64_t replicate) {
  std::uint64_t h = mix64(base_seed);
  h = mix64(h ^ hash_name(experiment));
  h = mix64(h ^ config_index);
  h = mix64(h ^ replicate);
  return h;
}

int resolve_jobs(const Args& args) {
  int jobs = 1;
  if (const char* env = std::getenv("GURITA_JOBS")) {
    try {
      jobs = parse_int_strict(env);
    } catch (const std::exception&) {
      GURITA_CHECK_MSG(false,
                       std::string("GURITA_JOBS is not an integer: ") + env);
    }
  }
  jobs = args.get_int("jobs", jobs);
  GURITA_CHECK_MSG(jobs >= 0, "--jobs must be >= 0 (0 = all hardware threads)");
  return jobs == 0 ? ThreadPool::hardware_threads() : jobs;
}

void run_sharded(std::size_t n, int jobs,
                 const std::function<void(std::size_t)>& fn,
                 ThreadPool::Stats* pool_stats) {
  if (n == 0) return;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // No reason to spawn more workers than runs; the pool dies with the call
  // (sweeps are long, pool startup is microseconds).
  ThreadPool pool(static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs), n)));
  pool.parallel_for(n, fn);
  // Harvest before destruction; stats accumulate across run_sharded calls
  // of the same sweep when the caller reuses one Stats out-param.
  if (pool_stats != nullptr) {
    const ThreadPool::Stats s = pool.stats();
    pool_stats->executed += s.executed;
    pool_stats->steals += s.steals;
    pool_stats->failed_scans += s.failed_scans;
    pool_stats->sleeps += s.sleeps;
  }
}

std::vector<ComparisonResult> run_matrix(const std::vector<ExperimentRun>& runs,
                                         int jobs,
                                         ThreadPool::Stats* pool_stats) {
  // Result slots are cache-line aligned while the workers write them: a
  // ComparisonResult is a pair of small maps, so adjacent slots of a plain
  // vector share lines and concurrent writers false-share on the final
  // move-assign of every run. The padded slots are moved into the plain
  // return vector afterwards (serial, so no sharing by then).
  struct alignas(64) Slot {
    ComparisonResult value;
  };
  std::vector<Slot> slots(runs.size());
  run_sharded(runs.size(), jobs, [&](std::size_t i) {
    slots[i].value = compare_schedulers(runs[i].config, runs[i].schedulers,
                                        runs[i].checkpoint_key.empty()
                                            ? "cell" + std::to_string(i)
                                            : runs[i].checkpoint_key);
  }, pool_stats);
  std::vector<ComparisonResult> results;
  results.reserve(runs.size());
  for (Slot& slot : slots) results.push_back(std::move(slot.value));
  return results;
}

std::vector<ComparisonResult> run_sweep(const SweepSpec& sweep, int jobs,
                                        ThreadPool::Stats* pool_stats) {
  GURITA_CHECK_MSG(sweep.replicates >= 1, "need at least one replicate");
  GURITA_CHECK_MSG(!sweep.configs.empty(), "sweep has no configs");

  const std::size_t reps = static_cast<std::size_t>(sweep.replicates);
  std::vector<ExperimentRun> cells;
  cells.reserve(sweep.configs.size() * reps);
  for (std::size_t c = 0; c < sweep.configs.size(); ++c) {
    for (std::size_t r = 0; r < reps; ++r) {
      ExperimentRun run;
      run.label = sweep.experiment;
      run.config = sweep.configs[c];
      run.config.trace.seed =
          derive_run_seed(sweep.configs[c].trace.seed, sweep.experiment, c, r);
      run.schedulers = sweep.schedulers;
      run.checkpoint_key = "c" + std::to_string(c) + "r" + std::to_string(r);
      cells.push_back(std::move(run));
    }
  }

  std::vector<ComparisonResult> flat = run_matrix(cells, jobs, pool_stats);

  std::vector<ComparisonResult> pooled(sweep.configs.size());
  for (std::size_t c = 0; c < sweep.configs.size(); ++c)
    for (std::size_t r = 0; r < reps; ++r)
      pooled[c].absorb(flat[c * reps + r]);
  return pooled;
}

}  // namespace gurita
