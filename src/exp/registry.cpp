#include "exp/registry.h"

#include "common/check.h"
#include "core/gurita.h"
#include "core/gurita_plus.h"
#include "sched/aalo.h"
#include "sched/adaptive.h"
#include "sched/baraat.h"
#include "sched/mcs.h"
#include "sched/pfs.h"
#include "sched/stream.h"
#include "sched/varys.h"

namespace gurita {

const std::vector<std::string>& scheduler_names() {
  static const std::vector<std::string> names = {
      "pfs",    "baraat",      "stream", "aalo", "gurita",
      "gurita_plus", "varys", "mcs",    "adaptive"};
  return names;
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  if (name == "pfs") return std::make_unique<PfsScheduler>();
  if (name == "baraat") return std::make_unique<BaraatScheduler>();
  if (name == "stream") return std::make_unique<StreamScheduler>();
  if (name == "aalo") return std::make_unique<AaloScheduler>();
  if (name == "gurita") return std::make_unique<GuritaScheduler>();
  if (name == "gurita_plus") return std::make_unique<GuritaPlusScheduler>();
  if (name == "varys") return std::make_unique<VarysScheduler>();
  if (name == "mcs") return std::make_unique<McsScheduler>();
  if (name == "adaptive") {
    // Child order is part of the adaptive contract (and of its checkpoint
    // layout): 0 = gurita (deep / fault pressure), 1 = stream (shallow),
    // 2 = baraat (shallow + bursty).
    std::vector<std::unique_ptr<Scheduler>> children;
    children.push_back(std::make_unique<GuritaScheduler>());
    children.push_back(std::make_unique<StreamScheduler>());
    children.push_back(std::make_unique<BaraatScheduler>());
    return std::make_unique<AdaptiveScheduler>(AdaptiveScheduler::Config{},
                                               std::move(children));
  }
  GURITA_CHECK_MSG(false, "unknown scheduler: " + name);
  return nullptr;  // unreachable
}

}  // namespace gurita
