// Experiment harness: runs a workload through one or more schedulers on a
// fat-tree fabric and aggregates the paper's metrics. Every bench binary is
// a thin wrapper over this.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "flowsim/simulator.h"
#include "metrics/collector.h"
#include "topology/fattree.h"
#include "workload/trace_gen.h"

namespace gurita {

struct ExperimentConfig {
  int fat_tree_k = 8;              ///< paper's trace scenario: 8 pods
  Rate link_capacity = gbps(10.0); ///< 10G switches
  TraceConfig trace;
  std::uint64_t ecmp_salt = 0;
};

/// Outcome per scheduler, keyed by scheduler name.
struct ComparisonResult {
  std::map<std::string, JctCollector> collectors;
  std::map<std::string, SimResults> results;

  /// The paper's improvement factor of Gurita over `other`
  /// (category = -1 → overall average).
  [[nodiscard]] double improvement(const std::string& reference,
                                   const std::string& other,
                                   int category = -1) const;

  /// Mean per-job speedup of `reference` over `other` (every job weighted
  /// equally; category = -1 → all jobs).
  [[nodiscard]] double per_job_speedup(const std::string& reference,
                                       const std::string& other,
                                       int category = -1) const;
};

/// Runs `jobs` under `scheduler` on a fresh fabric; returns the results.
[[nodiscard]] SimResults run_one(const ExperimentConfig& config,
                                 const std::vector<JobSpec>& jobs,
                                 Scheduler& scheduler);

/// Generates the workload once, replays the *identical* job set under each
/// named scheduler, and returns per-scheduler collectors.
[[nodiscard]] ComparisonResult compare_schedulers(
    const ExperimentConfig& config, const std::vector<std::string>& names);

/// Statistical variant: repeats compare_schedulers over `num_seeds`
/// workloads (seed, seed+1, ...) and pools the per-job results, so
/// improvement factors and speedups average across trace randomness.
[[nodiscard]] ComparisonResult compare_schedulers_seeds(
    ExperimentConfig config, const std::vector<std::string>& names,
    int num_seeds);

/// Canonical configurations for the paper's scenarios.
/// Trace-driven (§V, Figs. 5/6/8): 8-pod fat-tree, Poisson arrivals.
[[nodiscard]] ExperimentConfig trace_scenario(StructureKind structure,
                                              int num_jobs,
                                              std::uint64_t seed);
/// Bursty (§V, Figs. 5/7): jobs arrive 2 µs apart in batches on a larger
/// fabric. The paper uses 48 pods and 10,000 jobs; defaults are scaled down
/// so the suite completes quickly — pass the paper's numbers to reproduce
/// at full scale.
[[nodiscard]] ExperimentConfig bursty_scenario(StructureKind structure,
                                               int num_jobs,
                                               std::uint64_t seed,
                                               int fat_tree_k = 8);

}  // namespace gurita
