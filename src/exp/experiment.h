// Experiment harness: runs a workload through one or more schedulers on a
// fat-tree fabric and aggregates the paper's metrics. Every bench binary is
// a thin wrapper over this.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "flowsim/simulator.h"
#include "metrics/collector.h"
#include "topology/fattree.h"
#include "workload/trace_gen.h"

namespace gurita {

struct ExperimentConfig {
  int fat_tree_k = 8;              ///< paper's trace scenario: 8 pods
  Rate link_capacity = gbps(10.0); ///< 10G switches
  TraceConfig trace;
  std::uint64_t ecmp_salt = 0;

  /// Telemetry switches (obs/). Both default off, so the hot path keeps its
  /// zero-cost contract; bench drivers flip them from --trace / --profile.
  struct ObsOptions {
    bool trace = false;  ///< record a structured trace into SimResults::trace
    std::uint32_t trace_mask = obs::TraceRecorder::kDefaultKinds;
    bool profile = false;  ///< fill SimResults::profile with phase timings
  };
  ObsOptions obs;

  /// Fault injection (fault/). When enabled, run_one compiles `plan` into a
  /// concrete FaultPlan whose seed derives from the run's trace seed through
  /// the stable key ("fault-plan", 0, 0) — so a given workload always meets
  /// the identical fault schedule, independent of worker count, matrix
  /// position or which scheduler is replaying it. Disabled (the default)
  /// costs nothing and is byte-identical to a build without fault support.
  struct FaultOptions {
    bool enabled = false;
    FaultPlanConfig plan;
  };
  FaultOptions faults;
};

/// Outcome per scheduler, keyed by scheduler name.
struct ComparisonResult {
  std::map<std::string, JctCollector> collectors;
  std::map<std::string, SimResults> results;

  /// Pools another comparison (same scheduler names) into this one:
  /// collectors merge sample-order-preserving, job populations concatenate
  /// with re-assigned ids (so per-job speedups stay aligned across
  /// schedulers), coflow populations likewise, and engine-cost counters
  /// merge explicitly (SimResults::merge_counters). Absorbing replicates in
  /// replicate order reproduces a serial multi-seed run exactly — the
  /// ordered-merge half of the parallel runner's determinism contract.
  void absorb(const ComparisonResult& other);

  /// The paper's improvement factor of Gurita over `other`
  /// (category = -1 → overall average).
  [[nodiscard]] double improvement(const std::string& reference,
                                   const std::string& other,
                                   int category = -1) const;

  /// Mean per-job speedup of `reference` over `other` (every job weighted
  /// equally; category = -1 → all jobs).
  [[nodiscard]] double per_job_speedup(const std::string& reference,
                                       const std::string& other,
                                       int category = -1) const;
};

/// Runs `jobs` under `scheduler` on a fresh fabric; returns the results.
[[nodiscard]] SimResults run_one(const ExperimentConfig& config,
                                 const std::vector<JobSpec>& jobs,
                                 Scheduler& scheduler);

/// Generates the workload once, replays the *identical* job set under each
/// named scheduler, and returns per-scheduler collectors.
[[nodiscard]] ComparisonResult compare_schedulers(
    const ExperimentConfig& config, const std::vector<std::string>& names);

/// Statistical variant: repeats compare_schedulers over `num_seeds`
/// workloads (seed, seed+1, ... — the legacy schedule, kept so recorded
/// results stay reproducible) and pools the per-job results, so improvement
/// factors and speedups average across trace randomness. The replicates
/// run sharded over `jobs` workers (exp/runner.h); the pooled result is
/// bit-identical at any `jobs` value, including the serial default.
/// New sweeps should prefer run_sweep (runner.h), whose replicate seeds
/// derive from the full (experiment, config, replicate) key.
[[nodiscard]] ComparisonResult compare_schedulers_seeds(
    ExperimentConfig config, const std::vector<std::string>& names,
    int num_seeds, int jobs = 1);

/// Canonical configurations for the paper's scenarios.
/// Trace-driven (§V, Figs. 5/6/8): 8-pod fat-tree, Poisson arrivals.
[[nodiscard]] ExperimentConfig trace_scenario(StructureKind structure,
                                              int num_jobs,
                                              std::uint64_t seed);
/// Bursty (§V, Figs. 5/7): jobs arrive 2 µs apart in batches on a larger
/// fabric. The paper uses 48 pods and 10,000 jobs; defaults are scaled down
/// so the suite completes quickly — pass the paper's numbers to reproduce
/// at full scale.
[[nodiscard]] ExperimentConfig bursty_scenario(StructureKind structure,
                                               int num_jobs,
                                               std::uint64_t seed,
                                               int fat_tree_k = 8);

}  // namespace gurita
