// Experiment harness: runs a workload through one or more schedulers on a
// fat-tree fabric and aggregates the paper's metrics. Every bench binary is
// a thin wrapper over this.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "flowsim/simulator.h"
#include "metrics/collector.h"
#include "topology/fattree.h"
#include "workload/trace_gen.h"

namespace gurita {

struct ExperimentConfig {
  int fat_tree_k = 8;              ///< paper's trace scenario: 8 pods
  Rate link_capacity = gbps(10.0); ///< 10G switches
  TraceConfig trace;
  std::uint64_t ecmp_salt = 0;
  /// Rate allocator the runs drive (flowsim/allocator.h); results are
  /// byte-identical either way — the oracle exists for differential
  /// testing and the ALLOCATOR=oracle CI leg.
  AllocatorKind allocator = default_allocator_kind();

  /// Telemetry switches (obs/). All default off, so the hot path keeps its
  /// zero-cost contract; bench drivers flip them from --trace / --profile /
  /// --timeline / --chrome-trace / --diagnostics.
  struct ObsOptions {
    bool trace = false;  ///< record a structured trace into SimResults::trace
    std::uint32_t trace_mask = obs::TraceRecorder::kDefaultKinds;
    bool profile = false;  ///< fill SimResults::profile with phase timings
    /// > 0: attach a deterministic interval sampler at this sim-time
    /// cadence (obs/sampler.h). Implies a trace recorder (kSample /
    /// kMemSample are OR-ed into the mask); the resulting timeline is
    /// byte-identical at any worker count (DESIGN.md §14).
    double timeline_every = 0;
    /// Also emit opt-in wall-clock samples (kWallSample) at each boundary.
    /// NOT deterministic — excluded from fingerprints and determinism legs.
    bool timeline_wall = false;
    /// Capture per-slice phase spans into SimResults::spans for
    /// Chrome-trace export (implies profile). Wall-clock telemetry.
    bool spans = false;
    /// Harvest non-deterministic run health (allocator work counters,
    /// reserved memory footprint) into SimResults::diagnostics. Kept out
    /// of determinism fingerprints, result caches and snapshots.
    bool diagnostics = false;
  };
  ObsOptions obs;

  /// Fault injection (fault/). When enabled, run_one compiles `plan` into a
  /// concrete FaultPlan whose seed derives from the run's trace seed through
  /// the stable key ("fault-plan", 0, 0) — so a given workload always meets
  /// the identical fault schedule, independent of worker count, matrix
  /// position or which scheduler is replaying it. Disabled (the default)
  /// costs nothing and is byte-identical to a build without fault support.
  struct FaultOptions {
    bool enabled = false;
    FaultPlanConfig plan;
  };
  FaultOptions faults;

  /// Checkpoint/restore (snapshot/). When `dir` is set and the caller
  /// supplies a checkpoint key, run_one snapshots the paused simulator every
  /// `every` simulated seconds to `dir/<key>.<scheduler>.ckpt` (atomic
  /// write), and records each finished run's results in a matching `.done`
  /// cache. With `resume` set it picks up from whichever artifact exists —
  /// `.done` short-circuits the run entirely, `.ckpt` restores mid-flight —
  /// and the resumed sweep's output is byte-identical to an uninterrupted
  /// one (snapshot/snapshot.h). `halt_after` > 0 throws HaltedError after
  /// that many snapshots: a deterministic crash for resume testing.
  struct CheckpointOptions {
    Time every = 0;       ///< snapshot cadence in simulated seconds; 0 = off
    std::string dir;      ///< artifact directory; empty disables everything
    bool resume = false;  ///< resume from dir's .done/.ckpt artifacts
    int halt_after = 0;   ///< > 0: HaltedError after N snapshots (testing)

    [[nodiscard]] bool active() const { return !dir.empty(); }
  };
  CheckpointOptions checkpoint;
};

/// Outcome per scheduler, keyed by scheduler name.
struct ComparisonResult {
  std::map<std::string, JctCollector> collectors;
  std::map<std::string, SimResults> results;

  /// Pools another comparison (same scheduler names) into this one:
  /// collectors merge sample-order-preserving, job populations concatenate
  /// with re-assigned ids (so per-job speedups stay aligned across
  /// schedulers), coflow populations likewise, and engine-cost counters
  /// merge explicitly (SimResults::merge_counters). Absorbing replicates in
  /// replicate order reproduces a serial multi-seed run exactly — the
  /// ordered-merge half of the parallel runner's determinism contract.
  void absorb(const ComparisonResult& other);

  /// The paper's improvement factor of Gurita over `other`
  /// (category = -1 → overall average).
  [[nodiscard]] double improvement(const std::string& reference,
                                   const std::string& other,
                                   int category = -1) const;

  /// Mean per-job speedup of `reference` over `other` (every job weighted
  /// equally; category = -1 → all jobs).
  [[nodiscard]] double per_job_speedup(const std::string& reference,
                                       const std::string& other,
                                       int category = -1) const;
};

/// Runs `jobs` under `scheduler` on a fresh fabric; returns the results.
/// `checkpoint_key` names this run's snapshot artifacts (the file stem
/// inside config.checkpoint.dir); when it is empty or checkpointing is not
/// configured, the run is a plain uninterrupted run(). Checkpointing never
/// perturbs results: a checkpointed (or halted-and-resumed) run is
/// byte-identical to an uninterrupted one.
[[nodiscard]] SimResults run_one(const ExperimentConfig& config,
                                 const std::vector<JobSpec>& jobs,
                                 Scheduler& scheduler,
                                 const std::string& checkpoint_key = "");

/// Generates the workload once, replays the *identical* job set under each
/// named scheduler, and returns per-scheduler collectors. `checkpoint_key`
/// prefixes each scheduler's snapshot artifacts ("<key>.<scheduler>"); see
/// run_one.
[[nodiscard]] ComparisonResult compare_schedulers(
    const ExperimentConfig& config, const std::vector<std::string>& names,
    const std::string& checkpoint_key = "");

/// Statistical variant: repeats compare_schedulers over `num_seeds`
/// workloads (seed, seed+1, ... — the legacy schedule, kept so recorded
/// results stay reproducible) and pools the per-job results, so improvement
/// factors and speedups average across trace randomness. The replicates
/// run sharded over `jobs` workers (exp/runner.h); the pooled result is
/// bit-identical at any `jobs` value, including the serial default.
/// New sweeps should prefer run_sweep (runner.h), whose replicate seeds
/// derive from the full (experiment, config, replicate) key.
[[nodiscard]] ComparisonResult compare_schedulers_seeds(
    ExperimentConfig config, const std::vector<std::string>& names,
    int num_seeds, int jobs = 1);

/// Canonical configurations for the paper's scenarios.
/// Trace-driven (§V, Figs. 5/6/8): 8-pod fat-tree, Poisson arrivals.
[[nodiscard]] ExperimentConfig trace_scenario(StructureKind structure,
                                              int num_jobs,
                                              std::uint64_t seed);
/// Bursty (§V, Figs. 5/7): jobs arrive 2 µs apart in batches on a larger
/// fabric. The paper uses 48 pods and 10,000 jobs; defaults are scaled down
/// so the suite completes quickly — pass the paper's numbers to reproduce
/// at full scale.
[[nodiscard]] ExperimentConfig bursty_scenario(StructureKind structure,
                                               int num_jobs,
                                               std::uint64_t seed,
                                               int fat_tree_k = 8);

}  // namespace gurita
