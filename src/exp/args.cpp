#include "exp/args.h"

#include "common/check.h"

namespace gurita {

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    GURITA_CHECK_MSG(arg.rfind("--", 0) == 0, "expected --flag, got " + arg);
    GURITA_CHECK_MSG(i + 1 < argc, "flag " + arg + " needs a value");
    values_[arg.substr(2)] = argv[++i];
  }
}

bool Args::has(const std::string& key) const { return values_.count(key) > 0; }

int Args::get_int(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoi(it->second);
}

std::uint64_t Args::get_u64(const std::string& key,
                            std::uint64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback
                             : static_cast<std::uint64_t>(std::stoull(it->second));
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

}  // namespace gurita
