#include "exp/args.h"

#include <iterator>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "exp/experiment.h"
#include "fault/fault.h"

namespace gurita {

namespace {

/// Wraps the std::sto* family with a full-token check: std::stoi("4x8")
/// happily returns 4, which silently runs a different experiment than the
/// one asked for.
template <typename T, typename Parse>
T parse_full_token(const std::string& text, const char* what, Parse parse) {
  std::size_t consumed = 0;
  T value{};
  try {
    value = parse(text, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("not ") + what + ": \"" + text +
                                "\"");
  }
  if (consumed != text.size())
    throw std::invalid_argument(std::string("trailing garbage after ") +
                                what + ": \"" + text + "\"");
  return value;
}

}  // namespace

int parse_int_strict(const std::string& text) {
  return parse_full_token<int>(
      text, "an integer",
      [](const std::string& s, std::size_t* pos) { return std::stoi(s, pos); });
}

std::uint64_t parse_u64_strict(const std::string& text) {
  // stoull accepts a leading '-' (wrapping); reject it explicitly.
  if (!text.empty() && text[0] == '-')
    throw std::invalid_argument("not an unsigned integer: \"" + text + "\"");
  return parse_full_token<std::uint64_t>(
      text, "an unsigned integer", [](const std::string& s, std::size_t* pos) {
        return static_cast<std::uint64_t>(std::stoull(s, pos));
      });
}

double parse_double_strict(const std::string& text) {
  return parse_full_token<double>(
      text, "a number",
      [](const std::string& s, std::size_t* pos) { return std::stod(s, pos); });
}

std::vector<int> parse_int_list(const std::string& csv) {
  // Validate every token fully before returning anything: a late bad token
  // must report itself, not clobber (or ship) the already-parsed prefix.
  std::vector<int> values;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = csv.find(',', start);
    const std::string token = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    try {
      values.push_back(parse_int_strict(token));
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("bad list entry \"" + token + "\" in \"" +
                                  csv + "\"");
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

Args::Args(int argc, char** argv) {
  // Collect *every* repeated flag before throwing, so a long sweep command
  // line gets one complete report instead of a whack-a-mole loop.
  std::vector<ConfigError::Issue> duplicates;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    GURITA_CHECK_MSG(arg.rfind("--", 0) == 0, "expected --flag, got " + arg);
    const std::string key = arg.substr(2);
    std::string value;
    // A flag followed by another flag (or by nothing) is a bare boolean.
    if (!(i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0))
      value = argv[++i];
    if (values_.count(key) > 0) {
      duplicates.push_back(
          {arg, "defined more than once (previously \"" + values_[key] +
                    "\", now \"" + value + "\")"});
    } else {
      values_.emplace(key, std::move(value));
    }
  }
  if (!duplicates.empty())
    throw ConfigError("duplicate command-line flags", std::move(duplicates));
}

bool Args::has(const std::string& key) const { return values_.count(key) > 0; }

std::vector<std::string> Args::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> keys;
  for (auto it = values_.lower_bound(prefix);
       it != values_.end() && it->first.rfind(prefix, 0) == 0; ++it)
    keys.push_back(it->first);
  return keys;
}

int Args::get_int(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return parse_int_strict(it->second);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("flag --" + key + ": " + e.what());
  }
}

std::uint64_t Args::get_u64(const std::string& key,
                            std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return parse_u64_strict(it->second);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("flag --" + key + ": " + e.what());
  }
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return parse_double_strict(it->second);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("flag --" + key + ": " + e.what());
  }
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  throw std::logic_error("flag --" + key + " wants a boolean, got " + v);
}

void apply_log_level(const Args& args) {
  if (args.has("log-level"))
    log::set_level(log::level_from_string(args.get_string("log-level", "")));
}

namespace {

/// Rejects every parsed flag in `prefix`'s namespace that is not in the
/// `known` table — a typo like --fault-host-rat must not silently run the
/// experiment with default rates.
void reject_unknown_flags(const Args& args, const std::string& prefix,
                          const std::vector<std::string>& known,
                          const std::string& context) {
  std::vector<ConfigError::Issue> issues;
  for (const std::string& key : args.keys_with_prefix(prefix)) {
    bool found = false;
    for (const std::string& k : known) found = found || k == key;
    if (!found)
      issues.push_back({"--" + key, "unknown flag (known " + prefix +
                                        "* flags are listed in exp/args.h)"});
  }
  if (!issues.empty()) throw ConfigError(context, std::move(issues));
}

}  // namespace

void apply_fault_flags(const Args& args, ExperimentConfig& config) {
  static const char* kFlags[] = {
      "fault-host-rate",     "fault-link-rate",    "fault-straggler-rate",
      "fault-state-loss-rate", "fault-horizon",    "fault-downtime",
      "fault-straggle",      "fault-straggle-factor", "fault-retry",
      "fault-retry-base",    "fault-retry-multiplier", "fault-retry-max-delay",
      "fault-retry-jitter",  "fault-retry-max-attempts"};
  reject_unknown_flags(args, "fault-",
                       std::vector<std::string>(std::begin(kFlags),
                                                std::end(kFlags)),
                       "unknown fault flags");
  bool any = args.get_bool("faults", false);
  for (const char* flag : kFlags) any = any || args.has(flag);
  if (!any) return;
  config.faults.enabled = true;
  FaultPlanConfig& plan = config.faults.plan;
  plan.host_crash_rate = args.get_double("fault-host-rate", plan.host_crash_rate);
  plan.link_flap_rate = args.get_double("fault-link-rate", plan.link_flap_rate);
  plan.straggler_rate =
      args.get_double("fault-straggler-rate", plan.straggler_rate);
  plan.state_loss_rate =
      args.get_double("fault-state-loss-rate", plan.state_loss_rate);
  plan.horizon = args.get_double("fault-horizon", plan.horizon);
  plan.mean_downtime = args.get_double("fault-downtime", plan.mean_downtime);
  plan.mean_straggle = args.get_double("fault-straggle", plan.mean_straggle);
  plan.straggler_factor =
      args.get_double("fault-straggle-factor", plan.straggler_factor);
  if (args.has("fault-retry")) {
    const std::string shape = args.get_string("fault-retry", "");
    if (shape == "fixed") {
      plan.retry.backoff = RetryPolicy::Backoff::kFixed;
    } else if (shape == "exponential") {
      plan.retry.backoff = RetryPolicy::Backoff::kExponential;
    } else {
      throw std::logic_error("--fault-retry wants fixed|exponential, got " +
                             shape);
    }
  }
  plan.retry.base_delay = args.get_double("fault-retry-base", plan.retry.base_delay);
  plan.retry.multiplier =
      args.get_double("fault-retry-multiplier", plan.retry.multiplier);
  plan.retry.max_delay =
      args.get_double("fault-retry-max-delay", plan.retry.max_delay);
  plan.retry.jitter = args.get_double("fault-retry-jitter", plan.retry.jitter);
  plan.retry.max_attempts =
      args.get_int("fault-retry-max-attempts", plan.retry.max_attempts);
}

void apply_checkpoint_flags(const Args& args, ExperimentConfig& config) {
  reject_unknown_flags(
      args, "checkpoint-",
      {"checkpoint-every", "checkpoint-dir", "checkpoint-halt-after"},
      "unknown checkpoint flags");
  if (!args.has("checkpoint-every") && !args.has("checkpoint-dir") &&
      !args.has("resume-from") && !args.has("checkpoint-halt-after"))
    return;

  std::vector<ConfigError::Issue> issues;
  ExperimentConfig::CheckpointOptions& ckpt = config.checkpoint;
  ckpt.every = args.get_double("checkpoint-every", ckpt.every);
  ckpt.dir = args.get_string("checkpoint-dir", ckpt.dir);
  if (args.has("resume-from")) {
    const std::string from = args.get_string("resume-from", "");
    if (from.empty())
      issues.push_back({"--resume-from", "wants a directory"});
    if (!ckpt.dir.empty() && ckpt.dir != from)
      issues.push_back({"--resume-from",
                        "conflicts with --checkpoint-dir " + ckpt.dir});
    ckpt.dir = from;
    ckpt.resume = true;
  }
  ckpt.halt_after = args.get_int("checkpoint-halt-after", ckpt.halt_after);

  if (args.has("checkpoint-every") && ckpt.every <= 0)
    issues.push_back({"--checkpoint-every", "wants a cadence > 0 seconds"});
  if (ckpt.every > 0 && ckpt.dir.empty())
    issues.push_back(
        {"--checkpoint-every",
         "wants a directory (--checkpoint-dir or --resume-from)"});
  if (args.has("checkpoint-halt-after") && ckpt.halt_after <= 0)
    issues.push_back({"--checkpoint-halt-after", "wants a count > 0"});
  if (ckpt.halt_after > 0 && !(ckpt.every > 0))
    issues.push_back(
        {"--checkpoint-halt-after", "wants --checkpoint-every as well"});
  if (args.has("checkpoint-dir") && ckpt.dir.empty())
    issues.push_back({"--checkpoint-dir", "wants a directory"});
  if (!issues.empty())
    throw ConfigError("invalid checkpoint flags", std::move(issues));
}

void apply_timeline_flags(const Args& args, ExperimentConfig& config) {
  reject_unknown_flags(args, "timeline-", {"timeline-every", "timeline-wall"},
                       "unknown timeline flags");
  ExperimentConfig::ObsOptions& obs = config.obs;
  const bool timeline = args.get_bool("timeline", false) ||
                        args.has("timeline-every") ||
                        args.get_bool("timeline-wall", false);
  if (timeline) {
    obs.timeline_every = args.get_double("timeline-every", 0.05);
    if (!(obs.timeline_every > 0))
      throw ConfigError("invalid timeline flags",
                        {{"--timeline-every", "wants a positive cadence"}});
    obs.timeline_wall = args.get_bool("timeline-wall", false);
  }
  obs.diagnostics = args.get_bool("diagnostics", false);
}

}  // namespace gurita
