#include "exp/args.h"

#include "common/check.h"
#include "common/log.h"

namespace gurita {

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    GURITA_CHECK_MSG(arg.rfind("--", 0) == 0, "expected --flag, got " + arg);
    // A flag followed by another flag (or by nothing) is a bare boolean.
    if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
      values_[arg.substr(2)] = "";
    } else {
      values_[arg.substr(2)] = argv[++i];
    }
  }
}

bool Args::has(const std::string& key) const { return values_.count(key) > 0; }

int Args::get_int(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoi(it->second);
}

std::uint64_t Args::get_u64(const std::string& key,
                            std::uint64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback
                             : static_cast<std::uint64_t>(std::stoull(it->second));
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  throw std::logic_error("flag --" + key + " wants a boolean, got " + v);
}

void apply_log_level(const Args& args) {
  if (args.has("log-level"))
    log::set_level(log::level_from_string(args.get_string("log-level", "")));
}

}  // namespace gurita
