#include "exp/args.h"

#include "common/check.h"
#include "common/log.h"
#include "exp/experiment.h"

namespace gurita {

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    GURITA_CHECK_MSG(arg.rfind("--", 0) == 0, "expected --flag, got " + arg);
    // A flag followed by another flag (or by nothing) is a bare boolean.
    if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
      values_[arg.substr(2)] = "";
    } else {
      values_[arg.substr(2)] = argv[++i];
    }
  }
}

bool Args::has(const std::string& key) const { return values_.count(key) > 0; }

int Args::get_int(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoi(it->second);
}

std::uint64_t Args::get_u64(const std::string& key,
                            std::uint64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback
                             : static_cast<std::uint64_t>(std::stoull(it->second));
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  throw std::logic_error("flag --" + key + " wants a boolean, got " + v);
}

void apply_log_level(const Args& args) {
  if (args.has("log-level"))
    log::set_level(log::level_from_string(args.get_string("log-level", "")));
}

void apply_fault_flags(const Args& args, ExperimentConfig& config) {
  static const char* kFlags[] = {
      "fault-host-rate",     "fault-link-rate",    "fault-straggler-rate",
      "fault-state-loss-rate", "fault-horizon",    "fault-downtime",
      "fault-straggle",      "fault-straggle-factor", "fault-retry",
      "fault-retry-base",    "fault-retry-multiplier", "fault-retry-max-delay",
      "fault-retry-jitter",  "fault-retry-max-attempts"};
  bool any = args.get_bool("faults", false);
  for (const char* flag : kFlags) any = any || args.has(flag);
  if (!any) return;
  config.faults.enabled = true;
  FaultPlanConfig& plan = config.faults.plan;
  plan.host_crash_rate = args.get_double("fault-host-rate", plan.host_crash_rate);
  plan.link_flap_rate = args.get_double("fault-link-rate", plan.link_flap_rate);
  plan.straggler_rate =
      args.get_double("fault-straggler-rate", plan.straggler_rate);
  plan.state_loss_rate =
      args.get_double("fault-state-loss-rate", plan.state_loss_rate);
  plan.horizon = args.get_double("fault-horizon", plan.horizon);
  plan.mean_downtime = args.get_double("fault-downtime", plan.mean_downtime);
  plan.mean_straggle = args.get_double("fault-straggle", plan.mean_straggle);
  plan.straggler_factor =
      args.get_double("fault-straggle-factor", plan.straggler_factor);
  if (args.has("fault-retry")) {
    const std::string shape = args.get_string("fault-retry", "");
    if (shape == "fixed") {
      plan.retry.backoff = RetryPolicy::Backoff::kFixed;
    } else if (shape == "exponential") {
      plan.retry.backoff = RetryPolicy::Backoff::kExponential;
    } else {
      throw std::logic_error("--fault-retry wants fixed|exponential, got " +
                             shape);
    }
  }
  plan.retry.base_delay = args.get_double("fault-retry-base", plan.retry.base_delay);
  plan.retry.multiplier =
      args.get_double("fault-retry-multiplier", plan.retry.multiplier);
  plan.retry.max_delay =
      args.get_double("fault-retry-max-delay", plan.retry.max_delay);
  plan.retry.jitter = args.get_double("fault-retry-jitter", plan.retry.jitter);
  plan.retry.max_attempts =
      args.get_int("fault-retry-max-attempts", plan.retry.max_attempts);
}

}  // namespace gurita
