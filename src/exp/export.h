// Shared trace/summary export for bench drivers.
//
// Every driver that takes --trace used to hand-roll the same loop: walk the
// run matrix in slot order, schedulers in name order within a run, write
// one labeled section per (run, scheduler) and a .summary.json with the
// pooled counters. This module is that loop, written once — and crash-safe:
// both files go through write_file_atomic (common/atomic_file.h), so an
// interrupted export never leaves a truncated trace for validate_trace.py
// to choke on.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "exp/experiment.h"

namespace gurita {

/// Optional extras for export_traces.
struct ExportOptions {
  /// Splice a "diagnostics" object into the summary JSON: the pooled
  /// allocator work counters (component-size percentiles included), the
  /// per-subsystem reserved-memory peaks and the thread-pool work-stealing
  /// counters. Everything under that key is NON-deterministic (wall-clock,
  /// capacity and contention dependent) and is deliberately excluded from
  /// the determinism fingerprint legs, which never pass --diagnostics.
  bool diagnostics = false;
  /// Pool counters to report (run_sharded's out-param); all-zero for
  /// serial runs.
  ThreadPool::Stats pool_stats{};
};

/// Exports the traces of `results` to `path` (JSONL, or the compact binary
/// format when `binary`), one section per run × scheduler labeled
/// "<labels[i]>/<scheduler>", plus `<path>.summary.json` holding per-kind
/// record counts, the engine cost counters pooled over every run, and
/// deterministic latency histograms ("jct", "queue_wait", "retry_backoff")
/// with p50/p95/p99. The walk is slot order then map (name) order — the
/// same at any worker count, so the files are byte-identical at any
/// --jobs (diagnostics excepted; see ExportOptions). `labels` must be
/// parallel to `results`. Returns the total record count written.
std::size_t export_traces(const std::vector<std::string>& labels,
                          const std::vector<ComparisonResult>& results,
                          const std::string& path, bool binary,
                          const ExportOptions& options = {});

/// Exports phase spans (SimResults::spans) and sampler records as a Chrome
/// Trace Event Format JSON (obs/chrome_trace.h) at `path`, one track per
/// run × scheduler. Load it at ui.perfetto.dev or chrome://tracing.
/// Wall-clock telemetry; never part of determinism checks.
void export_chrome_trace(const std::vector<std::string>& labels,
                         const std::vector<ComparisonResult>& results,
                         const std::string& path);

}  // namespace gurita
