// Shared trace/summary export for bench drivers.
//
// Every driver that takes --trace used to hand-roll the same loop: walk the
// run matrix in slot order, schedulers in name order within a run, write
// one labeled section per (run, scheduler) and a .summary.json with the
// pooled counters. This module is that loop, written once — and crash-safe:
// both files go through write_file_atomic (common/atomic_file.h), so an
// interrupted export never leaves a truncated trace for validate_trace.py
// to choke on.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "exp/experiment.h"

namespace gurita {

/// Exports the traces of `results` to `path` (JSONL, or the compact binary
/// format when `binary`), one section per run × scheduler labeled
/// "<labels[i]>/<scheduler>", plus `<path>.summary.json` holding per-kind
/// record counts and the engine cost counters pooled over every run. The
/// walk is slot order then map (name) order — the same at any worker
/// count, so the files are byte-identical at any --jobs. `labels` must be
/// parallel to `results`. Returns the total record count written.
std::size_t export_traces(const std::vector<std::string>& labels,
                          const std::vector<ComparisonResult>& results,
                          const std::string& path, bool binary);

}  // namespace gurita
