#include "exp/experiment.h"

#include "common/check.h"
#include "exp/registry.h"
#include "exp/runner.h"

namespace gurita {

double ComparisonResult::improvement(const std::string& reference,
                                     const std::string& other,
                                     int category) const {
  const auto ref = collectors.find(reference);
  const auto oth = collectors.find(other);
  GURITA_CHECK_MSG(ref != collectors.end(), "no results for " + reference);
  GURITA_CHECK_MSG(oth != collectors.end(), "no results for " + other);
  return improvement_factor(ref->second, oth->second, category);
}

double ComparisonResult::per_job_speedup(const std::string& reference,
                                         const std::string& other,
                                         int category) const {
  const auto ref = results.find(reference);
  const auto oth = results.find(other);
  GURITA_CHECK_MSG(ref != results.end(), "no results for " + reference);
  GURITA_CHECK_MSG(oth != results.end(), "no results for " + other);
  return mean_per_job_speedup(ref->second, oth->second, category);
}

SimResults run_one(const ExperimentConfig& config,
                   const std::vector<JobSpec>& jobs, Scheduler& scheduler) {
  const FatTree fabric(FatTree::Config{config.fat_tree_k,
                                       config.link_capacity,
                                       config.ecmp_salt});
  // Per-run recorder/profiler on the stack: each run owns its telemetry and
  // the parallel runner pools the snapshots in slot order (absorb), so the
  // exported trace is byte-identical at any worker count.
  obs::TraceRecorder recorder(config.obs.trace_mask);
  obs::PhaseProfiler profiler;
  Simulator::Config sim_config;
  if (config.obs.trace) sim_config.trace = &recorder;
  if (config.obs.profile) sim_config.profiler = &profiler;
  if (config.faults.enabled) {
    // The plan seed derives from the trace seed through a stable key, so
    // fault schedules replicate exactly wherever this workload runs.
    sim_config.faults = generate_fault_plan(
        config.faults.plan,
        derive_run_seed(config.trace.seed, "fault-plan", 0, 0),
        fabric.num_hosts(), fabric.topology().link_count());
  }
  Simulator sim(fabric, scheduler, sim_config);
  for (const JobSpec& job : jobs) sim.submit(job);
  SimResults results = sim.run();
  if (config.obs.trace) results.trace = recorder.take();
  if (config.obs.profile) results.profile = profiler.snapshot();
  return results;
}

ComparisonResult compare_schedulers(const ExperimentConfig& config,
                                    const std::vector<std::string>& names) {
  TraceConfig trace = config.trace;
  const FatTree fabric(
      FatTree::Config{config.fat_tree_k, config.link_capacity});
  trace.num_hosts = fabric.num_hosts();
  const std::vector<JobSpec> jobs = generate_trace(trace);

  ComparisonResult out;
  for (const std::string& name : names) {
    const std::unique_ptr<Scheduler> scheduler = make_scheduler(name);
    SimResults results = run_one(config, jobs, *scheduler);
    JctCollector collector;
    collector.add(results);
    out.collectors.emplace(name, std::move(collector));
    out.results.emplace(name, std::move(results));
  }
  return out;
}

void ComparisonResult::absorb(const ComparisonResult& other) {
  for (const auto& [name, collector] : other.collectors)
    collectors[name].merge(collector);
  for (const auto& [name, src] : other.results) {
    SimResults& dst = results[name];
    // Re-id jobs/coflows so pooled populations stay aligned across
    // schedulers (per-job speedups match jobs up by id).
    const std::uint64_t job_base = dst.jobs.size();
    for (SimResults::JobResult j : src.jobs) {
      j.id = JobId{job_base + j.id.value()};
      dst.jobs.push_back(j);
    }
    const std::uint64_t coflow_base = dst.coflows.size();
    for (SimResults::CoflowResult c : src.coflows) {
      c.id = CoflowId{coflow_base + c.id.value()};
      c.job = JobId{job_base + c.job.value()};
      dst.coflows.push_back(c);
    }
    // Trace records pool alongside the populations: append in replicate
    // order with job/coflow ids re-based the same way (flow ids and
    // timestamps stay run-local — a trace reader groups by job).
    dst.trace.reserve(dst.trace.size() + src.trace.size());
    for (obs::TraceRecord r : src.trace) {
      if (r.job != obs::kNoTraceId) r.job += job_base;
      if (r.coflow != obs::kNoTraceId) r.coflow += coflow_base;
      dst.trace.push_back(r);
    }
    dst.profile.merge(src.profile);
    dst.merge_counters(src);
  }
}

ComparisonResult compare_schedulers_seeds(ExperimentConfig config,
                                          const std::vector<std::string>& names,
                                          int num_seeds, int jobs) {
  GURITA_CHECK_MSG(num_seeds >= 1, "need at least one seed");
  // Legacy seed schedule (seed, seed+1, ...): every replicate's workload is
  // fixed up front, so the replicates are independent runs that can execute
  // on any worker in any order.
  std::vector<ExperimentRun> runs(static_cast<std::size_t>(num_seeds));
  for (int s = 0; s < num_seeds; ++s) {
    runs[static_cast<std::size_t>(s)].config = config;
    runs[static_cast<std::size_t>(s)].schedulers = names;
    ++config.trace.seed;
  }
  const std::vector<ComparisonResult> one = run_matrix(runs, jobs);
  // Ordered merge: replicate order, regardless of completion order.
  ComparisonResult pooled;
  for (const ComparisonResult& r : one) pooled.absorb(r);
  return pooled;
}

ExperimentConfig trace_scenario(StructureKind structure, int num_jobs,
                                std::uint64_t seed) {
  ExperimentConfig config;
  config.fat_tree_k = 8;
  config.trace.structure = structure;
  config.trace.num_jobs = num_jobs;
  config.trace.arrivals = ArrivalPattern::kPoisson;
  config.trace.seed = seed;
  return config;
}

ExperimentConfig bursty_scenario(StructureKind structure, int num_jobs,
                                 std::uint64_t seed, int fat_tree_k) {
  ExperimentConfig config;
  config.fat_tree_k = fat_tree_k;
  config.trace.structure = structure;
  config.trace.num_jobs = num_jobs;
  config.trace.arrivals = ArrivalPattern::kBursty;
  config.trace.burst_spacing = 2 * kMicrosecond;  // paper: 2 µs intervals
  config.trace.seed = seed;
  return config;
}

}  // namespace gurita
