#include "exp/experiment.h"

#include "common/check.h"
#include "exp/registry.h"

namespace gurita {

double ComparisonResult::improvement(const std::string& reference,
                                     const std::string& other,
                                     int category) const {
  const auto ref = collectors.find(reference);
  const auto oth = collectors.find(other);
  GURITA_CHECK_MSG(ref != collectors.end(), "no results for " + reference);
  GURITA_CHECK_MSG(oth != collectors.end(), "no results for " + other);
  return improvement_factor(ref->second, oth->second, category);
}

double ComparisonResult::per_job_speedup(const std::string& reference,
                                         const std::string& other,
                                         int category) const {
  const auto ref = results.find(reference);
  const auto oth = results.find(other);
  GURITA_CHECK_MSG(ref != results.end(), "no results for " + reference);
  GURITA_CHECK_MSG(oth != results.end(), "no results for " + other);
  return mean_per_job_speedup(ref->second, oth->second, category);
}

SimResults run_one(const ExperimentConfig& config,
                   const std::vector<JobSpec>& jobs, Scheduler& scheduler) {
  const FatTree fabric(FatTree::Config{config.fat_tree_k,
                                       config.link_capacity,
                                       config.ecmp_salt});
  Simulator sim(fabric, scheduler);
  for (const JobSpec& job : jobs) sim.submit(job);
  return sim.run();
}

ComparisonResult compare_schedulers(const ExperimentConfig& config,
                                    const std::vector<std::string>& names) {
  TraceConfig trace = config.trace;
  const FatTree fabric(
      FatTree::Config{config.fat_tree_k, config.link_capacity});
  trace.num_hosts = fabric.num_hosts();
  const std::vector<JobSpec> jobs = generate_trace(trace);

  ComparisonResult out;
  for (const std::string& name : names) {
    const std::unique_ptr<Scheduler> scheduler = make_scheduler(name);
    SimResults results = run_one(config, jobs, *scheduler);
    JctCollector collector;
    collector.add(results);
    out.collectors.emplace(name, std::move(collector));
    out.results.emplace(name, std::move(results));
  }
  return out;
}

ComparisonResult compare_schedulers_seeds(ExperimentConfig config,
                                          const std::vector<std::string>& names,
                                          int num_seeds) {
  GURITA_CHECK_MSG(num_seeds >= 1, "need at least one seed");
  ComparisonResult pooled;
  for (int s = 0; s < num_seeds; ++s) {
    ComparisonResult one = compare_schedulers(config, names);
    for (const std::string& name : names) {
      pooled.collectors[name].add(one.results.at(name));
      SimResults& dst = pooled.results[name];
      SimResults& src = one.results.at(name);
      // Re-id jobs so pooled populations stay aligned across schedulers.
      const std::uint64_t base = dst.jobs.size();
      for (SimResults::JobResult& j : src.jobs) {
        j.id = JobId{base + j.id.value()};
        dst.jobs.push_back(j);
      }
      dst.makespan = std::max(dst.makespan, src.makespan);
      dst.rate_recomputations += src.rate_recomputations;
    }
    ++config.trace.seed;
  }
  return pooled;
}

ExperimentConfig trace_scenario(StructureKind structure, int num_jobs,
                                std::uint64_t seed) {
  ExperimentConfig config;
  config.fat_tree_k = 8;
  config.trace.structure = structure;
  config.trace.num_jobs = num_jobs;
  config.trace.arrivals = ArrivalPattern::kPoisson;
  config.trace.seed = seed;
  return config;
}

ExperimentConfig bursty_scenario(StructureKind structure, int num_jobs,
                                 std::uint64_t seed, int fat_tree_k) {
  ExperimentConfig config;
  config.fat_tree_k = fat_tree_k;
  config.trace.structure = structure;
  config.trace.num_jobs = num_jobs;
  config.trace.arrivals = ArrivalPattern::kBursty;
  config.trace.burst_spacing = 2 * kMicrosecond;  // paper: 2 µs intervals
  config.trace.seed = seed;
  return config;
}

}  // namespace gurita
