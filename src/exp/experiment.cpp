#include "exp/experiment.h"

#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "exp/arena.h"
#include "exp/registry.h"
#include "exp/runner.h"
#include "snapshot/snapshot.h"

namespace gurita {

namespace {

bool file_exists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).good();
}

/// Runs `sim` to completion under the checkpoint policy: snapshot every
/// `every` simulated seconds (counting from the simulator's current time,
/// so a resumed run keeps its own cadence), halt deliberately after
/// `halt_after` snapshots when asked. Pausing and checkpointing are
/// invisible to the simulation — step boundaries are exact, checkpoint() is
/// const — so the returned results match an uninterrupted run() bit for bit.
SimResults run_checkpointed(Simulator& sim,
                            const ExperimentConfig::CheckpointOptions& opts,
                            const std::string& ckpt_path) {
  int snapshots = 0;
  while (sim.run_until(sim.now() + opts.every)) {
    snapshot::Writer w;
    sim.checkpoint(w);
    snapshot::write_snapshot_file(ckpt_path, w.buffer());
    ++snapshots;
    if (opts.halt_after > 0 && snapshots >= opts.halt_after)
      throw snapshot::HaltedError("halted on purpose after " +
                                  std::to_string(snapshots) +
                                  " snapshot(s); resume from " + ckpt_path);
  }
  return sim.finish();
}

}  // namespace

double ComparisonResult::improvement(const std::string& reference,
                                     const std::string& other,
                                     int category) const {
  const auto ref = collectors.find(reference);
  const auto oth = collectors.find(other);
  GURITA_CHECK_MSG(ref != collectors.end(), "no results for " + reference);
  GURITA_CHECK_MSG(oth != collectors.end(), "no results for " + other);
  return improvement_factor(ref->second, oth->second, category);
}

double ComparisonResult::per_job_speedup(const std::string& reference,
                                         const std::string& other,
                                         int category) const {
  const auto ref = results.find(reference);
  const auto oth = results.find(other);
  GURITA_CHECK_MSG(ref != results.end(), "no results for " + reference);
  GURITA_CHECK_MSG(oth != results.end(), "no results for " + other);
  return mean_per_job_speedup(ref->second, oth->second, category);
}

SimResults run_one(const ExperimentConfig& config,
                   const std::vector<JobSpec>& jobs, Scheduler& scheduler,
                   const std::string& checkpoint_key) {
  const bool checkpointing =
      config.checkpoint.active() && !checkpoint_key.empty();
  const std::string stem =
      checkpointing ? config.checkpoint.dir + "/" + checkpoint_key : "";
  const std::string ckpt_path = stem + ".ckpt";
  const std::string done_path = stem + ".done";
  if (checkpointing) {
    // A finished shard's cached results short-circuit the whole run (the
    // cache holds the byte-identical SimResults, trace included, minus the
    // wall-clock profile — snapshot/snapshot.h).
    if (config.checkpoint.resume && file_exists(done_path)) {
      snapshot::Reader r(snapshot::read_snapshot_file(done_path));
      if (snapshot::read_header(r) != snapshot::PayloadKind::kResultsCache)
        throw snapshot::SnapshotError(done_path +
                                      " is not a results cache snapshot");
      return snapshot::load_results(r);
    }
    std::filesystem::create_directories(config.checkpoint.dir);
  }
  // The worker's arena caches the (immutable) fabric across cells and
  // recycles the simulator's container capacity — rebuilding both per run
  // is what made the sharded sweep allocator-bound (DESIGN.md §9).
  RunArena& arena = RunArena::local();
  const FatTree& fabric = arena.fabric(FatTree::Config{
      config.fat_tree_k, config.link_capacity, config.ecmp_salt});
  // Per-run recorder/profiler/sampler on the stack: each run owns its
  // telemetry and the parallel runner pools the snapshots in slot order
  // (absorb), so the exported trace is byte-identical at any worker count.
  const bool timeline = config.obs.timeline_every > 0;
  std::uint32_t mask = config.obs.trace_mask;
  if (timeline) {
    mask |= obs::TraceRecorder::kTimelineKinds;
    if (config.obs.timeline_wall)
      mask |= obs::mask_of(obs::TraceEventKind::kWallSample);
  }
  obs::TraceRecorder recorder(mask);
  obs::PhaseProfiler profiler;
  if (config.obs.spans) profiler.enable_spans();
  obs::IntervalSampler sampler(obs::IntervalSampler::Config{
      timeline ? config.obs.timeline_every : 1.0,
      /*memory=*/true, config.obs.timeline_wall});
  obs::MemoryAccountant accountant;
  Simulator::Config sim_config;
  sim_config.allocator = config.allocator;
  sim_config.recycle = &arena.sim_buffers();
  if (config.obs.trace || timeline) sim_config.trace = &recorder;
  if (config.obs.profile || config.obs.spans)
    sim_config.profiler = &profiler;
  if (timeline) sim_config.sampler = &sampler;
  if (config.obs.diagnostics) sim_config.memory = &accountant;
  if (config.faults.enabled) {
    // The plan seed derives from the trace seed through a stable key, so
    // fault schedules replicate exactly wherever this workload runs.
    sim_config.faults = generate_fault_plan(
        config.faults.plan,
        derive_run_seed(config.trace.seed, "fault-plan", 0, 0),
        fabric.num_hosts(), fabric.topology().link_count());
  }
  Simulator sim(fabric, scheduler, sim_config);
  for (const JobSpec& job : jobs) sim.submit(job);
  SimResults results;
  if (checkpointing) {
    // Mid-flight resume: rebuild the simulator from the same inputs (done
    // above), then overwrite its dynamic state from the snapshot. The
    // embedded fingerprint rejects artifacts from a different workload.
    const bool resuming =
        config.checkpoint.resume && file_exists(ckpt_path);
    if (resuming) {
      const std::string bytes = snapshot::read_snapshot_file(ckpt_path);
      snapshot::Reader r(bytes);
      sim.restore(r);
    }
    if (config.checkpoint.every > 0)
      results = run_checkpointed(sim, config.checkpoint, ckpt_path);
    else
      results = resuming ? sim.finish() : sim.run();
  } else {
    results = sim.run();
  }
  if (config.obs.trace || timeline) results.trace = recorder.take();
  if (config.obs.profile || config.obs.spans)
    results.profile = profiler.snapshot();
  if (config.obs.spans) results.spans = profiler.take_spans();
  if (config.obs.diagnostics) {
    // Non-deterministic run health; stays out of the .done results cache
    // (a cached shard reports zero diagnostics, like the profile).
    results.diagnostics.alloc = sim.allocator_stats();
    results.diagnostics.memory = accountant;
  }
  if (checkpointing) {
    // Record the finished shard so a later resume skips it entirely.
    snapshot::Writer w;
    snapshot::write_header(w, snapshot::PayloadKind::kResultsCache);
    snapshot::save_results(w, results);
    snapshot::write_snapshot_file(done_path, w.buffer());
  }
  return results;
}

ComparisonResult compare_schedulers(const ExperimentConfig& config,
                                    const std::vector<std::string>& names,
                                    const std::string& checkpoint_key) {
  TraceConfig trace = config.trace;
  // Sizing only — but grabbing it from the arena (same worker, usually the
  // same config run_one asks for) makes this lookup free instead of a
  // second full FatTree construction per cell.
  RunArena& arena = RunArena::local();
  const FatTree& fabric = arena.fabric(
      FatTree::Config{config.fat_tree_k, config.link_capacity});
  trace.num_hosts = fabric.num_hosts();
  std::vector<JobSpec>& jobs = arena.job_buffer();
  generate_trace_into(trace, jobs);

  ComparisonResult out;
  for (const std::string& name : names) {
    const std::unique_ptr<Scheduler> scheduler = make_scheduler(name);
    SimResults results = run_one(
        config, jobs, *scheduler,
        checkpoint_key.empty() ? checkpoint_key : checkpoint_key + "." + name);
    JctCollector collector;
    collector.add(results);
    out.collectors.emplace(name, std::move(collector));
    out.results.emplace(name, std::move(results));
  }
  return out;
}

void ComparisonResult::absorb(const ComparisonResult& other) {
  for (const auto& [name, collector] : other.collectors)
    collectors[name].merge(collector);
  for (const auto& [name, src] : other.results) {
    SimResults& dst = results[name];
    // Re-id jobs/coflows so pooled populations stay aligned across
    // schedulers (per-job speedups match jobs up by id).
    const std::uint64_t job_base = dst.jobs.size();
    for (SimResults::JobResult j : src.jobs) {
      j.id = JobId{job_base + j.id.value()};
      dst.jobs.push_back(j);
    }
    const std::uint64_t coflow_base = dst.coflows.size();
    for (SimResults::CoflowResult c : src.coflows) {
      c.id = CoflowId{coflow_base + c.id.value()};
      c.job = JobId{job_base + c.job.value()};
      dst.coflows.push_back(c);
    }
    // Trace records pool alongside the populations: append in replicate
    // order with job/coflow ids re-based the same way (flow ids and
    // timestamps stay run-local — a trace reader groups by job).
    dst.trace.reserve(dst.trace.size() + src.trace.size());
    for (obs::TraceRecord r : src.trace) {
      if (r.job != obs::kNoTraceId) r.job += job_base;
      if (r.coflow != obs::kNoTraceId) r.coflow += coflow_base;
      dst.trace.push_back(r);
    }
    dst.profile.merge(src.profile);
    // Spans concatenate in replicate order; diagnostics merge (counter
    // sums, peak maxes). Both are wall-clock/diagnostic telemetry outside
    // the determinism contract.
    dst.spans.insert(dst.spans.end(), src.spans.begin(), src.spans.end());
    dst.diagnostics.merge(src.diagnostics);
    dst.merge_counters(src);
  }
}

ComparisonResult compare_schedulers_seeds(ExperimentConfig config,
                                          const std::vector<std::string>& names,
                                          int num_seeds, int jobs) {
  GURITA_CHECK_MSG(num_seeds >= 1, "need at least one seed");
  // Legacy seed schedule (seed, seed+1, ...): every replicate's workload is
  // fixed up front, so the replicates are independent runs that can execute
  // on any worker in any order.
  std::vector<ExperimentRun> runs(static_cast<std::size_t>(num_seeds));
  for (int s = 0; s < num_seeds; ++s) {
    runs[static_cast<std::size_t>(s)].config = config;
    runs[static_cast<std::size_t>(s)].schedulers = names;
    ++config.trace.seed;
  }
  const std::vector<ComparisonResult> one = run_matrix(runs, jobs);
  // Ordered merge: replicate order, regardless of completion order.
  ComparisonResult pooled;
  for (const ComparisonResult& r : one) pooled.absorb(r);
  return pooled;
}

ExperimentConfig trace_scenario(StructureKind structure, int num_jobs,
                                std::uint64_t seed) {
  ExperimentConfig config;
  config.fat_tree_k = 8;
  config.trace.structure = structure;
  config.trace.num_jobs = num_jobs;
  config.trace.arrivals = ArrivalPattern::kPoisson;
  config.trace.seed = seed;
  return config;
}

ExperimentConfig bursty_scenario(StructureKind structure, int num_jobs,
                                 std::uint64_t seed, int fat_tree_k) {
  ExperimentConfig config;
  config.fat_tree_k = fat_tree_k;
  config.trace.structure = structure;
  config.trace.num_jobs = num_jobs;
  config.trace.arrivals = ArrivalPattern::kBursty;
  config.trace.burst_spacing = 2 * kMicrosecond;  // paper: 2 µs intervals
  config.trace.seed = seed;
  return config;
}

}  // namespace gurita
