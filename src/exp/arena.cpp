#include "exp/arena.h"

namespace gurita {

RunArena& RunArena::local() {
  thread_local RunArena arena;
  return arena;
}

const FatTree& RunArena::fabric(const FatTree::Config& config) {
  for (const CachedFabric& cached : fabrics_) {
    if (cached.config.k == config.k &&
        cached.config.link_capacity == config.link_capacity &&
        cached.config.ecmp_salt == config.ecmp_salt)
      return *cached.tree;
  }
  fabrics_.push_back({config, std::make_unique<FatTree>(config)});
  return *fabrics_.back().tree;
}

}  // namespace gurita
