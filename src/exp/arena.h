// Per-worker run arena: thread-local reusable state for the sharded
// experiment runner.
//
// Every cell of a sweep used to rebuild its world from nothing — two
// FatTree constructions (one in compare_schedulers for sizing, one in
// run_one for simulation), a fresh JobSpec vector from the trace
// generator, and a Simulator whose flow store, calendar and fault runtime
// allocate (then free) several megabytes. Under the parallel runner that
// churn hits the allocator's mmap/munmap path from every worker at once,
// serializing them on kernel-side locks — the proximate cause of the
// *negative* scaling this arena removes (DESIGN.md §9).
//
// The arena is strictly thread-local (RunArena::local()); nothing in it is
// shared or locked. It caches:
//   - constructed FatTree fabrics keyed by their full Config (k, capacity,
//     ECMP salt) — immutable after construction, so reuse is trivially
//     byte-identical;
//   - a SimBufferPool (flowsim/simulator.h) that consecutive simulators on
//     this worker adopt and return, recycling container *capacity* only —
//     every adopted container is cleared before use;
//   - a JobSpec buffer for generate_trace_into, reusing the outer trace
//     vector across cells.
//
// Determinism contract: the arena only ever recycles capacity and caches
// immutable objects, so results are byte-identical with or without it, at
// any worker count, in any cell execution order. The 1/2/8-worker
// byte-identity tests (parallel_runner_test.cpp) pin this down.
#pragma once

#include <memory>
#include <vector>

#include "coflow/job.h"
#include "flowsim/simulator.h"
#include "topology/fattree.h"

namespace gurita {

class RunArena {
 public:
  /// The calling thread's arena (thread_local singleton). Lives until the
  /// thread exits; pool workers are long-lived, so cached state spans every
  /// cell a worker executes.
  static RunArena& local();

  /// A fabric constructed with exactly `config`, cached across calls.
  /// FatTree is immutable after construction, so the returned reference is
  /// safe to share among all runs on this thread; it stays valid for the
  /// thread's lifetime.
  const FatTree& fabric(const FatTree::Config& config);

  /// Recyclable simulator container pack; hand it to Simulator::Config::
  /// recycle. One live borrower at a time is the intended shape — a nested
  /// second simulator finds moved-from empty buffers and silently falls
  /// back to fresh allocation.
  [[nodiscard]] SimBufferPool& sim_buffers() { return sim_buffers_; }

  /// Reusable JobSpec buffer for generate_trace_into. Contents are
  /// whatever the previous cell left; the generator clears it first.
  [[nodiscard]] std::vector<JobSpec>& job_buffer() { return jobs_; }

  RunArena(const RunArena&) = delete;
  RunArena& operator=(const RunArena&) = delete;

 private:
  RunArena() = default;

  struct CachedFabric {
    FatTree::Config config;
    std::unique_ptr<FatTree> tree;
  };
  /// Linear scan: a sweep touches one or two distinct configs.
  std::vector<CachedFabric> fabrics_;
  SimBufferPool sim_buffers_;
  std::vector<JobSpec> jobs_;
};

}  // namespace gurita
