// Deterministic parallel experiment runner.
//
// The paper's evaluation is hundreds of independent (scheduler × trace ×
// seed) simulation runs — embarrassingly parallel. This module shards a run
// matrix over the work-stealing ThreadPool (common/thread_pool.h) while
// keeping every result **bit-identical to a serial run**, at any worker
// count and under any completion order. Two rules make that hold:
//
//   1. *Independent seeding.* No run ever continues another run's RNG
//      stream. A replicated sweep derives each run's trace seed from the
//      stable key (experiment name, config index, replicate) via
//      derive_run_seed(), so the seed of run (c, r) does not depend on how
//      many runs exist, which workers execute them, or in what order.
//   2. *Ordered merging.* Workers write into index-addressed result slots;
//      pooling walks those slots in matrix order and merges through the
//      explicit, order-preserving merge APIs (JctCollector::merge,
//      SimResults::merge_counters, ComparisonResult::absorb). Nothing is
//      accumulated concurrently.
//
// DESIGN.md ("Determinism contract") documents the invariants; the
// ParallelRunner tests assert byte-identical metric reports for 1, 2 and 8
// threads; the differential harness in tests/ guards the engine itself.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "exp/args.h"
#include "exp/experiment.h"

namespace gurita {

/// Stable per-run seed: mixes `base_seed` with the run's identity — the
/// experiment's name, the index of its config on the sweep's config axis
/// and the replicate number — through SplitMix64 finalizers. The result
/// depends only on these four values (never on thread count, matrix size or
/// execution order), collides only accidentally (64-bit), and is fixed
/// forever: changing this function invalidates every recorded experiment.
[[nodiscard]] std::uint64_t derive_run_seed(std::uint64_t base_seed,
                                            const std::string& experiment,
                                            std::uint64_t config_index,
                                            std::uint64_t replicate);

/// Worker-count resolution for bench drivers: the `--jobs N` flag wins,
/// else the GURITA_JOBS environment variable, else 1 (serial). N = 0 means
/// one worker per hardware thread. Returns the resolved positive count.
[[nodiscard]] int resolve_jobs(const Args& args);

/// Runs fn(0) ... fn(n-1) across `jobs` workers (jobs <= 1 → plain serial
/// loop, no threads). Every invocation must be self-contained — own RNG,
/// own fabric/scheduler instances, results written only to slot i of a
/// caller-owned, pre-sized container. If invocations throw, the exception
/// of the smallest failing index propagates. `pool_stats`, when non-null,
/// receives the pool's work-stealing counters (common/thread_pool.h) —
/// non-deterministic diagnostics (all-zero on the serial path), reported
/// only behind --diagnostics and never fingerprinted.
void run_sharded(std::size_t n, int jobs,
                 const std::function<void(std::size_t)>& fn,
                 ThreadPool::Stats* pool_stats = nullptr);

/// One fully-specified cell of an experiment matrix: a workload (the
/// config's trace seed is final — no derivation) replayed under each named
/// scheduler, exactly like compare_schedulers().
struct ExperimentRun {
  std::string label;  ///< for reports; not part of any seed
  ExperimentConfig config;
  std::vector<std::string> schedulers;
  /// Stable stem for this cell's snapshot artifacts when the config enables
  /// checkpointing (experiment.h). Empty → run_matrix falls back to
  /// "cell<i>", which is stable only while the matrix layout is: sweeps set
  /// an index-derived key ("c<config>r<replicate>") so resume survives
  /// relayout.
  std::string checkpoint_key = {};
};

/// Executes every run, sharded over `jobs` workers; slot i of the returned
/// vector holds run i's result. Bit-identical to calling
/// compare_schedulers() in a loop. `pool_stats` as in run_sharded.
[[nodiscard]] std::vector<ComparisonResult> run_matrix(
    const std::vector<ExperimentRun>& runs, int jobs,
    ThreadPool::Stats* pool_stats = nullptr);

/// A replicated sweep: every config is run `replicates` times, the trace
/// seed of cell (config c, replicate r) being
/// derive_run_seed(configs[c].trace.seed, experiment, c, r).
struct SweepSpec {
  std::string experiment;  ///< stable name; part of every run's seed key
  std::vector<ExperimentConfig> configs;
  std::vector<std::string> schedulers;
  int replicates = 1;
};

/// Runs the sweep and pools the replicates of each config in replicate
/// order (ComparisonResult::absorb): out[c] aggregates configs[c]'s
/// replicates. Deterministic at any `jobs`. `pool_stats` as in run_sharded.
[[nodiscard]] std::vector<ComparisonResult> run_sweep(
    const SweepSpec& sweep, int jobs,
    ThreadPool::Stats* pool_stats = nullptr);

}  // namespace gurita
