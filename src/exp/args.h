// Tiny command-line flag parser for bench binaries:
//   ./bench_fig6 --num-jobs 300 --seed 7 --pods 8 --jobs 4
// Unknown flags throw, so typos fail loudly.
//
// Conventions shared by every driver: `--num-jobs` sizes the workload,
// `--seed` picks the trace seed, and `--jobs N` sets the worker-thread
// count of the parallel experiment runner (resolve_jobs() in exp/runner.h;
// the GURITA_JOBS environment variable is the flagless default, N = 0
// means all hardware threads). Results are bit-identical at any N.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gurita {

/// Strict full-token numeric parses: the whole token must be consumed, so
/// trailing garbage ("4x8", "1.5.2", "7 beta") is an error instead of a
/// silent truncation. Throw std::invalid_argument naming the offending
/// token. The Args getters below and every bench list flag build on these.
[[nodiscard]] int parse_int_strict(const std::string& text);
[[nodiscard]] std::uint64_t parse_u64_strict(const std::string& text);
[[nodiscard]] double parse_double_strict(const std::string& text);

/// Parses a comma-separated integer list ("1,2,8"). Every token is
/// validated fully before anything is accepted; on a bad token (including
/// an empty one, or an empty list) throws std::invalid_argument naming the
/// offending token — never a silently truncated prefix of the list.
[[nodiscard]] std::vector<int> parse_int_list(const std::string& csv);

class Args {
 public:
  /// Parses "--key value" pairs and bare "--flag" booleans (a flag followed
  /// by another flag, or by nothing, stores the empty string — read it back
  /// with get_bool/has). Throws std::logic_error on malformed input, and
  /// ConfigError (fault/fault.h) listing *every* flag that was defined more
  /// than once — repeated flags are a silent last-write-wins trap in long
  /// sweep invocations, so they fail loudly instead.
  Args(int argc, char** argv);

  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  /// Boolean flag: absent → fallback; bare "--flag" → true; otherwise the
  /// value must be "true"/"1" or "false"/"0".
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  [[nodiscard]] bool has(const std::string& key) const;

  /// All parsed flag names starting with `prefix`, in sorted order. Lets
  /// the apply_*_flags helpers reject unknown flags in their namespace
  /// ("--fault-*", "--checkpoint-*") instead of silently ignoring typos.
  [[nodiscard]] std::vector<std::string> keys_with_prefix(
      const std::string& prefix) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Applies the shared --log-level flag (debug|info|warn|error|off) to the
/// process-wide log level; a no-op when the flag is absent. Every bench
/// driver calls this right after parsing.
void apply_log_level(const Args& args);

struct ExperimentConfig;

/// Applies the shared fault-injection flags to `config.faults`:
///   --faults                      enable with the config's current rates
///   --fault-host-rate R           host down/up pairs per simulated second
///   --fault-link-rate R           link down/up pairs per second
///   --fault-straggler-rate R      straggler windows per second
///   --fault-state-loss-rate R     scheduler-state losses per second
///   --fault-horizon T             inject faults in [0, T) seconds
///   --fault-downtime T            mean crash/flap outage (seconds)
///   --fault-straggle T            mean straggler window (seconds)
///   --fault-straggle-factor F     surviving rate fraction while slow, (0,1)
///   --fault-retry fixed|exponential   backoff shape
///   --fault-retry-base T          base retry delay (seconds)
///   --fault-retry-multiplier M    exponential growth per attempt
///   --fault-retry-max-delay T     backoff cap (seconds)
///   --fault-retry-jitter J        max jitter fraction added to each delay
///   --fault-retry-max-attempts N  aborts beyond this fail the job
/// Any of these flags implies --faults. Throws std::logic_error on an
/// unknown --fault-retry value, and ConfigError listing every "--fault-*"
/// flag that is not in the table above (typo protection).
void apply_fault_flags(const Args& args, ExperimentConfig& config);

/// Applies the shared checkpoint/resume flags to `config.checkpoint`
/// (experiment.h; DESIGN.md §12):
///   --checkpoint-every T       snapshot cadence in simulated seconds (> 0)
///   --checkpoint-dir D         artifact directory (.ckpt/.done files)
///   --resume-from D            resume from D's artifacts (implies dir D)
///   --checkpoint-halt-after N  crash on purpose after N snapshots (> 0);
///                              drivers catch HaltedError and exit 75
/// Throws ConfigError aggregating every problem: unknown "--checkpoint-*"
/// flags, --checkpoint-every without a directory, a non-positive cadence,
/// --checkpoint-halt-after without --checkpoint-every, and conflicting
/// --checkpoint-dir/--resume-from directories.
void apply_checkpoint_flags(const Args& args, ExperimentConfig& config);

/// Applies the shared timeline/diagnostics telemetry flags to `config.obs`
/// (experiment.h; DESIGN.md §14):
///   --timeline            attach the deterministic interval sampler at the
///                         default cadence (0.05 simulated seconds)
///   --timeline-every T    sampling cadence in simulated seconds (> 0;
///                         implies --timeline)
///   --timeline-wall       also emit wall-clock samples (kWallSample) —
///                         NON-deterministic, excluded from fingerprints
///   --diagnostics         non-deterministic run health (allocator work,
///                         memory peaks, pool stats) in the summary JSON
/// Throws ConfigError on unknown "--timeline-*" flags or a non-positive
/// cadence.
void apply_timeline_flags(const Args& args, ExperimentConfig& config);

}  // namespace gurita
