// Tiny command-line flag parser for bench binaries:
//   ./bench_fig6 --jobs 300 --seed 7 --pods 8
// Unknown flags throw, so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace gurita {

class Args {
 public:
  /// Parses "--key value" pairs; throws std::logic_error on malformed input.
  Args(int argc, char** argv);

  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] bool has(const std::string& key) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace gurita
