// Scheduler factory: builds any of the six schemes evaluated in the paper
// by name. Used by benches and examples so experiment code stays uniform.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "flowsim/scheduler.h"

namespace gurita {

/// Names accepted by make_scheduler, in the paper's comparison order.
[[nodiscard]] const std::vector<std::string>& scheduler_names();

/// Builds "pfs", "baraat", "stream", "aalo", "gurita", "gurita_plus",
/// "varys" or "mcs" with its default configuration. Throws on an unknown
/// name.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    const std::string& name);

}  // namespace gurita
