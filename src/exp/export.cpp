#include "exp/export.h"

#include <ostream>

#include "common/atomic_file.h"
#include "common/check.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace gurita {

std::size_t export_traces(const std::vector<std::string>& labels,
                          const std::vector<ComparisonResult>& results,
                          const std::string& path, bool binary) {
  GURITA_CHECK_MSG(labels.size() == results.size(),
                   "labels and results must be parallel");
  obs::Registry registry;
  std::size_t total_records = 0;
  write_file_atomic(path, binary, [&](std::ostream& out) {
    if (binary) obs::write_binary_header(out);
    for (std::size_t i = 0; i < results.size(); ++i) {
      for (const auto& [name, res] : results[i].results) {
        const std::string label = labels[i] + "/" + name;
        if (binary) {
          obs::write_binary_section(out, label, res.trace);
        } else {
          obs::write_jsonl(out, res.trace, label);
        }
        obs::export_trace_counters(res.trace, 0, registry);
        res.export_counters(registry);
        total_records += res.trace.size();
      }
    }
  });
  write_file_atomic(path + ".summary.json", /*binary=*/false,
                    [&](std::ostream& out) { out << registry.to_json() << "\n"; });
  return total_records;
}

}  // namespace gurita
