#include "exp/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <ostream>

#include "common/atomic_file.h"
#include "common/check.h"
#include "obs/chrome_trace.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace gurita {

namespace {

/// Feeds the deterministic latency histograms from one run's results:
/// "jct" (non-failed jobs), "queue_wait" (coflow release − job arrival;
/// zero for stage-1 coflows released at arrival) and "retry_backoff"
/// (kFlowRetry latency records). All pure functions of the pooled results,
/// so the exported percentiles are byte-identical at any worker count.
void observe_latencies(const SimResults& res, obs::Registry& registry) {
  for (const SimResults::JobResult& j : res.jobs) {
    if (j.failed) continue;
    registry.observe("jct", j.jct());
  }
  for (const SimResults::CoflowResult& c : res.coflows) {
    if (c.failed || c.release < 0) continue;
    // Look the owning job up by id, not by index: batch populations are
    // dense, but a daemon run's external ids keep the gaps left by shed
    // jobs (service/daemon.h), so jobs[i].id == i does not hold there.
    const auto it = std::lower_bound(
        res.jobs.begin(), res.jobs.end(), c.job.value(),
        [](const SimResults::JobResult& j, std::uint64_t id) {
          return j.id.value() < id;
        });
    if (it == res.jobs.end() || it->id.value() != c.job.value()) continue;
    registry.observe("queue_wait", c.release - it->arrival);
  }
  for (const obs::TraceRecord& r : res.trace)
    if (r.kind == obs::TraceEventKind::kFlowRetry)
      registry.observe("retry_backoff", r.v0);
}

void append_u64(std::string& out, const char* key, std::uint64_t v,
                bool* first) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s\"%s\": %" PRIu64, *first ? "" : ", ",
                key, v);
  *first = false;
  out += buf;
}

void append_f64(std::string& out, const char* key, double v, bool* first) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%s\"%s\": %.17g", *first ? "" : ", ", key,
                v);
  *first = false;
  out += buf;
}

/// The non-deterministic "diagnostics" object (ExportOptions): pooled
/// allocator work counters, reserved-memory peaks and thread-pool stats.
std::string diagnostics_json(const SimResults::Diagnostics& diag,
                             const ThreadPool::Stats& pool) {
  std::string out = "{\n    \"alloc\": {";
  bool first = true;
  append_u64(out, "allocations", diag.alloc.allocations, &first);
  append_u64(out, "flows_solved", diag.alloc.flows_solved, &first);
  append_u64(out, "components_solved", diag.alloc.components_solved, &first);
  append_u64(out, "dirty_links", diag.alloc.dirty_links, &first);
  out += ", \"component_flows\": {";
  first = true;
  const LogHistogram& h = diag.alloc.component_flows;
  append_u64(out, "count", h.total(), &first);
  append_f64(out, "p50", h.total() > 0 ? h.percentile(50) : 0.0, &first);
  append_f64(out, "p95", h.total() > 0 ? h.percentile(95) : 0.0, &first);
  append_f64(out, "p99", h.total() > 0 ? h.percentile(99) : 0.0, &first);
  out += "}},\n    \"memory\": {";
  first = true;
  using S = obs::MemoryAccountant::Subsystem;
  for (int i = 0; i < obs::MemoryAccountant::kNumSubsystems; ++i) {
    const S s = static_cast<S>(i);
    const std::string key =
        std::string(obs::MemoryAccountant::subsystem_name(s)) + "_peak_bytes";
    append_u64(out, key.c_str(), diag.memory.peak(s), &first);
  }
  append_u64(out, "total_peak_bytes", diag.memory.peak_total(), &first);
  out += "},\n    \"pool\": {";
  first = true;
  append_u64(out, "executed", pool.executed, &first);
  append_u64(out, "steals", pool.steals, &first);
  append_u64(out, "failed_scans", pool.failed_scans, &first);
  append_u64(out, "sleeps", pool.sleeps, &first);
  out += "}\n  }";
  return out;
}

}  // namespace

std::size_t export_traces(const std::vector<std::string>& labels,
                          const std::vector<ComparisonResult>& results,
                          const std::string& path, bool binary,
                          const ExportOptions& options) {
  GURITA_CHECK_MSG(labels.size() == results.size(),
                   "labels and results must be parallel");
  obs::Registry registry;
  SimResults::Diagnostics diag;
  std::size_t total_records = 0;
  write_file_atomic(path, binary, [&](std::ostream& out) {
    if (binary) obs::write_binary_header(out);
    for (std::size_t i = 0; i < results.size(); ++i) {
      for (const auto& [name, res] : results[i].results) {
        const std::string label = labels[i] + "/" + name;
        if (binary) {
          obs::write_binary_section(out, label, res.trace);
        } else {
          obs::write_jsonl(out, res.trace, label);
        }
        obs::export_trace_counters(res.trace, 0, registry);
        res.export_counters(registry);
        observe_latencies(res, registry);
        if (options.diagnostics) diag.merge(res.diagnostics);
        total_records += res.trace.size();
      }
    }
  });
  std::string json = registry.to_json();
  if (options.diagnostics) {
    // Splice the non-fingerprinted diagnostics object before the closing
    // brace. Determinism legs never pass --diagnostics, so the fingerprint
    // always covers a diagnostics-free summary.
    const std::size_t pos = json.rfind('}');
    GURITA_CHECK_MSG(pos != std::string::npos, "malformed summary JSON");
    std::size_t cut = pos;
    while (cut > 0 && (json[cut - 1] == '\n' || json[cut - 1] == ' ')) --cut;
    json = json.substr(0, cut) + ",\n  \"diagnostics\": " +
           diagnostics_json(diag, options.pool_stats) + "\n}\n";
  }
  write_file_atomic(path + ".summary.json", /*binary=*/false,
                    [&](std::ostream& out) { out << json; });
  return total_records;
}

void export_chrome_trace(const std::vector<std::string>& labels,
                         const std::vector<ComparisonResult>& results,
                         const std::string& path) {
  GURITA_CHECK_MSG(labels.size() == results.size(),
                   "labels and results must be parallel");
  std::vector<obs::ChromeTrack> tracks;
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (const auto& [name, res] : results[i].results) {
      obs::ChromeTrack track;
      track.name = labels[i] + "/" + name;
      track.spans = res.spans;
      for (const obs::TraceRecord& r : res.trace)
        if (r.kind == obs::TraceEventKind::kSample ||
            r.kind == obs::TraceEventKind::kMemSample ||
            r.kind == obs::TraceEventKind::kWallSample)
          track.samples.push_back(r);
      tracks.push_back(std::move(track));
    }
  }
  write_file_atomic(path, /*binary=*/false, [&](std::ostream& out) {
    obs::write_chrome_trace(out, tracks);
  });
}

}  // namespace gurita
