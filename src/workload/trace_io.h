// Plain-text trace serialization, so workloads can be generated once,
// archived, diffed and replayed across machines/tools.
//
// Format (line-oriented, '#' comments allowed):
//
//   gurita-trace v1
//   J <arrival_seconds> <num_coflows> [deadline_seconds]
//   C <num_deps> <dep_index>...        # one per coflow, in local order
//   F <src_host> <dst_host> <bytes>    # flows of the preceding coflow
//
// Flows belong to the most recent C record; coflows to the most recent J.
#pragma once

#include <string>
#include <vector>

#include "coflow/job.h"

namespace gurita {

/// Serializes jobs to `path`. Throws on I/O failure.
void save_trace(const std::string& path, const std::vector<JobSpec>& jobs);

/// Parses a trace file; validates structure (not host ranges — those
/// depend on the target fabric, checked at submit). Throws with a line
/// number on malformed input.
[[nodiscard]] std::vector<JobSpec> load_trace(const std::string& path);

}  // namespace gurita
