#include "workload/structures.h"

#include "common/check.h"

namespace gurita {

const char* to_string(StructureKind kind) {
  switch (kind) {
    case StructureKind::kTpcDs:
      return "tpcds";
    case StructureKind::kFbTao:
      return "fbtao";
    case StructureKind::kMixed:
      return "mixed";
  }
  return "?";
}

StructureKind structure_from_string(const std::string& name) {
  if (name == "tpcds") return StructureKind::kTpcDs;
  if (name == "fbtao") return StructureKind::kFbTao;
  if (name == "mixed") return StructureKind::kMixed;
  GURITA_CHECK_MSG(false, "unknown structure kind: " + name);
  return StructureKind::kMixed;  // unreachable
}

shapes::Deps tpcds_q42_deps() {
  shapes::Deps deps(7);
  deps[3] = {0, 1};  // join1 <- scan(date_dim), scan(store_sales)
  deps[4] = {3, 2};  // join2 <- join1, scan(item)
  deps[5] = {4};     // aggregate <- join2
  deps[6] = {5};     // sort/limit <- aggregate
  return deps;
}

shapes::Deps fb_tao_deps() {
  shapes::Deps deps(7);
  deps[4] = {0, 1};  // follower agg A <- shards 0,1
  deps[5] = {2, 3};  // follower agg B <- shards 2,3
  deps[6] = {4, 5};  // leader <- both follower aggregations
  return deps;
}

shapes::Deps mixed_deps(Rng& rng) {
  // Microsoft production study mix (Graphene, OSDI'16): ~40% trees; the
  // remainder split across simple and composite shapes. Depths average ~5.
  const std::vector<double> weights = {
      0.40,  // tree
      0.15,  // chain
      0.10,  // single stage
      0.10,  // inverted V
      0.10,  // W
      0.08,  // parallel chains
      0.07,  // multi-root
  };
  switch (rng.weighted_choice(weights)) {
    case 0: {
      const int depth = static_cast<int>(rng.uniform_int(2, 4));
      return shapes::tree(depth, 2);
    }
    case 1: {
      const int length = static_cast<int>(rng.uniform_int(2, 10));
      return shapes::chain(length);
    }
    case 2:
      return shapes::single();
    case 3:
      return shapes::inverted_v(static_cast<int>(rng.uniform_int(2, 6)));
    case 4:
      return shapes::w_shape();
    case 5:
      return shapes::parallel_chains(static_cast<int>(rng.uniform_int(2, 3)),
                                     static_cast<int>(rng.uniform_int(2, 5)));
    default:
      return shapes::multi_root(static_cast<int>(rng.uniform_int(2, 3)),
                                static_cast<int>(rng.uniform_int(2, 4)));
  }
}

shapes::Deps draw_deps(StructureKind kind, Rng& rng) {
  switch (kind) {
    case StructureKind::kTpcDs:
      return tpcds_q42_deps();
    case StructureKind::kFbTao:
      return fb_tao_deps();
    case StructureKind::kMixed:
      return mixed_deps(rng);
  }
  GURITA_CHECK_MSG(false, "unknown structure kind");
  return {};
}

}  // namespace gurita
