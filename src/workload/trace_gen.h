// Synthetic Facebook-like multi-stage job trace generator.
//
// The paper replays coflows from the Facebook 150-rack/3000-machine
// production trace [Varys SIGCOMM'14], stitched into TPC-DS / FB-Tao DAG
// shapes. That trace is not redistributable here, so we synthesize one with
// the same qualitative properties (substitution #1, DESIGN.md):
//
//  * Job sizes are heavy-tailed across Table 1's seven categories — most
//    jobs are small, most *bytes* belong to a few huge jobs. A category is
//    drawn from a skewed mixture, then the total is log-uniform inside it,
//    guaranteeing every evaluation category is populated.
//  * Coflow widths span one to hundreds of flows (capped by the fabric),
//    drawn from a bounded Pareto like the published width distribution.
//  * Per-coflow byte shares within a job are log-normally skewed, producing
//    the paper's "on-and-off" jobs that transmit much in some stages and
//    almost nothing in others.
//  * Flow sizes within a coflow are log-normally skewed around the mean so
//    ℓ_max / ℓ_avg varies (the ε dimension).
//  * Senders/receivers are uniform over hosts; each coflow has a smaller
//    receiver set than sender set (many-to-few shuffles).
//
// Arrivals: Poisson for the trace-driven scenario; for the bursty scenario
// jobs arrive in back-to-back batches 2 µs apart separated by long idle
// gaps, "when jobs arrive within small time intervals, a common occurrence
// in datacenters [17]" (§V).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "coflow/job.h"
#include "workload/structures.h"

namespace gurita {

enum class ArrivalPattern {
  kPoisson,  ///< exponential inter-arrival times
  kBursty,   ///< batches at 2 µs spacing with idle gaps between batches
};

[[nodiscard]] const char* to_string(ArrivalPattern pattern);

struct TraceConfig {
  int num_jobs = 200;
  int num_hosts = 128;           ///< endpoints drawn from [0, num_hosts)
  StructureKind structure = StructureKind::kMixed;
  ArrivalPattern arrivals = ArrivalPattern::kPoisson;
  Time mean_interarrival = 50 * kMillisecond;  ///< Poisson mean
  int burst_size = 50;                         ///< jobs per burst
  Time burst_spacing = 2 * kMicrosecond;       ///< intra-burst gap (paper: 2µs)
  Time burst_gap = 5.0;                        ///< idle time between bursts
  /// Mixture weight of each Table-1 size category (normalized internally).
  /// Skewed small like the production trace: most jobs are small, most
  /// bytes belong to the few giants.
  std::vector<double> category_weights = {0.36, 0.26, 0.18, 0.08,
                                          0.07, 0.03, 0.02};
  int max_width = 64;            ///< cap on flows per coflow
  double width_pareto_alpha = 1.2;
  double flow_skew_sigma = 1.0;  ///< lognormal σ of flow sizes in a coflow
  double stage_skew_sigma = 1.6; ///< lognormal σ of per-coflow byte shares
  std::uint64_t seed = 42;
};

/// Generates one validated job body (DAG, coflows, flows) from `rng`,
/// consuming exactly the draws generate_trace_into makes per job.
/// arrival_time is left 0: batch generation stamps it from a pre-drawn
/// arrival vector, the open-loop generator (open_loop.h) from its arrival
/// process cursor.
[[nodiscard]] JobSpec generate_job(const TraceConfig& config, Rng& rng);

/// Generates `config.num_jobs` validated JobSpecs, sorted by arrival time.
[[nodiscard]] std::vector<JobSpec> generate_trace(const TraceConfig& config);

/// In-place variant: clears `out` and fills it with exactly the jobs
/// generate_trace(config) would return, reusing the outer vector's capacity
/// (per-job inner vectors still allocate — clear() destroys them). The
/// per-worker run arena (exp/arena.h) threads its buffer through here so a
/// sharded sweep doesn't reallocate the trace container every cell.
void generate_trace_into(const TraceConfig& config, std::vector<JobSpec>& out);

}  // namespace gurita
