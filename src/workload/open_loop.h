// Open-loop job source for the service daemon (DESIGN.md §15).
//
// Batch generation (trace_gen.h) draws every job up front from one serial
// RNG; an open-horizon daemon needs the opposite: jobs materialized one at
// a time, forever, with a cursor small enough to ride a checkpoint. Each
// job body is drawn from an RNG derived from (seed, index), so job i is a
// pure function of the config — the stream can be resumed at any index
// without replaying the prefix, and two daemons with the same config
// produce byte-identical job sequences regardless of when they admit them.
//
// Arrivals target a load factor: the generator calibrates E[job bytes]
// from a disjoint probe stream and spaces arrivals so that offered load =
// `load` × `service_rate`. Poisson draws each inter-arrival gap from a
// per-index stream; bursty replays the paper's batched pattern (back-to-
// back arrivals at `burst_spacing`, idle gaps sized to keep the same
// average rate).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/units.h"
#include "coflow/job.h"
#include "workload/trace_gen.h"

namespace gurita {

class OpenLoopGenerator {
 public:
  struct Config {
    /// Job-shape parameters. num_jobs, arrivals, mean_interarrival and the
    /// burst fields of the shape are ignored: the horizon is open and
    /// arrivals come from this class.
    TraceConfig shape;
    ArrivalPattern arrivals = ArrivalPattern::kPoisson;
    /// Target load factor: offered bytes/s as a fraction of service_rate.
    double load = 0.7;
    /// Aggregate drain capacity the load factor is measured against
    /// (host count × access-link rate is the natural choice).
    Rate service_rate = 128 * gbps(10.0);
    /// Overrides the load-derived mean inter-arrival when > 0.
    Time mean_interarrival = 0;
    /// Probe jobs drawn (on a disjoint derivation stream) to estimate
    /// E[job bytes] for the load → inter-arrival calibration.
    int calibration_jobs = 64;
    int burst_size = 50;
    Time burst_spacing = 2 * kMicrosecond;
  };

  /// Resume cursor — everything needed to continue the stream exactly.
  /// Rides the daemon checkpoint (snapshot v3, kServiceState).
  struct Cursor {
    std::uint64_t next_index = 0;
    Time clock = 0;  ///< arrival time of job `next_index`
  };

  explicit OpenLoopGenerator(const Config& config);

  /// Arrival time of the next job, without consuming it.
  [[nodiscard]] Time peek_arrival() const { return cursor_.clock; }
  /// Generates the next job with its arrival stamped; advances the cursor.
  [[nodiscard]] JobSpec next();

  [[nodiscard]] const Cursor& cursor() const { return cursor_; }
  void restore_cursor(const Cursor& c) { cursor_ = c; }

  /// The calibrated (or overridden) mean inter-arrival time.
  [[nodiscard]] Time mean_interarrival() const { return mean_interarrival_; }
  /// Calibrated mean job size from the probe stream.
  [[nodiscard]] Bytes mean_job_bytes() const { return mean_job_bytes_; }

 private:
  Config config_;
  Time mean_interarrival_ = 0;
  Bytes mean_job_bytes_ = 0;
  Cursor cursor_;
};

}  // namespace gurita
