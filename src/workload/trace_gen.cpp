#include "workload/trace_gen.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "metrics/category.h"

namespace gurita {

const char* to_string(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kPoisson:
      return "poisson";
    case ArrivalPattern::kBursty:
      return "bursty";
  }
  return "?";
}

namespace {

/// Draws a job's total bytes: pick a Table-1 category from the mixture,
/// then log-uniform within the category's bounds.
Bytes draw_total_bytes(Rng& rng, const std::vector<double>& weights) {
  const auto& bounds = category_lower_bounds();
  const std::size_t cat = rng.weighted_choice(weights);
  const Bytes lo = bounds[cat];
  const Bytes hi = cat + 1 < bounds.size() ? bounds[cat + 1] : 3 * kTB;
  const double u = rng.next_double();
  return lo * std::pow(hi / lo, u);
}

/// Splits `total` across `parts` with log-normal skew; every share > 0.
std::vector<Bytes> skewed_split(Rng& rng, Bytes total, int parts,
                                double sigma) {
  GURITA_CHECK_MSG(parts >= 1, "split into zero parts");
  std::vector<Bytes> shares(static_cast<std::size_t>(parts));
  double sum = 0;
  for (Bytes& s : shares) {
    s = rng.lognormal(0.0, sigma);
    sum += s;
  }
  for (Bytes& s : shares) s = std::max(1.0, s / sum * total);
  return shares;
}

int draw_width(Rng& rng, const TraceConfig& cfg, Bytes coflow_bytes) {
  // Wider coflows for bigger coflows, Pareto-skewed, capped by fabric size.
  const double scale =
      std::clamp(std::log10(std::max(coflow_bytes, 1.0) / kMB), 1.0, 6.0);
  const double raw =
      rng.bounded_pareto(1.0, cfg.max_width, cfg.width_pareto_alpha) * scale /
      3.0;
  // Floor: shuffle partitions bound per-flow size, so a large coflow is
  // never a single serial flow (~256 MB per flow at most on average).
  const int min_width =
      static_cast<int>(std::ceil(coflow_bytes / (256 * kMB)));
  const int cap = std::min(cfg.max_width, cfg.num_hosts - 1);
  return std::clamp(std::max(static_cast<int>(raw), min_width), 1, cap);
}

CoflowSpec make_coflow(Rng& rng, const TraceConfig& cfg, Bytes bytes) {
  CoflowSpec c;
  const int width = draw_width(rng, cfg, bytes);
  const std::vector<Bytes> sizes =
      skewed_split(rng, bytes, width, cfg.flow_skew_sigma);

  // Many-to-few shuffle: receivers are a smaller set than senders.
  const int num_receivers =
      std::max(1, width / static_cast<int>(rng.uniform_int(1, 4)));
  std::vector<int> receivers;
  receivers.reserve(static_cast<std::size_t>(num_receivers));
  for (int i = 0; i < num_receivers; ++i)
    receivers.push_back(
        static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(cfg.num_hosts) - 1)));

  c.flows.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    FlowSpec f;
    f.dst_host = receivers[static_cast<std::size_t>(i % num_receivers)];
    do {
      f.src_host = static_cast<int>(
          rng.uniform_int(0, static_cast<std::uint64_t>(cfg.num_hosts) - 1));
    } while (f.src_host == f.dst_host);
    f.size = sizes[static_cast<std::size_t>(i)];
    c.flows.push_back(f);
  }
  return c;
}

std::vector<Time> make_arrivals(Rng& rng, const TraceConfig& cfg) {
  std::vector<Time> at(static_cast<std::size_t>(cfg.num_jobs));
  Time t = 0;
  if (cfg.arrivals == ArrivalPattern::kPoisson) {
    for (Time& a : at) {
      t += rng.exponential(cfg.mean_interarrival);
      a = t;
    }
  } else {
    int in_burst = 0;
    for (Time& a : at) {
      a = t;
      if (++in_burst >= cfg.burst_size) {
        in_burst = 0;
        t += cfg.burst_gap;
      } else {
        t += cfg.burst_spacing;
      }
    }
  }
  return at;
}

}  // namespace

JobSpec generate_job(const TraceConfig& config, Rng& rng) {
  GURITA_CHECK_MSG(config.num_hosts >= 2, "need at least two hosts");
  GURITA_CHECK_MSG(
      config.category_weights.size() == static_cast<std::size_t>(kNumCategories),
      "category_weights must have seven entries");
  JobSpec job;
  job.deps = draw_deps(config.structure, rng);

  const Bytes total = draw_total_bytes(rng, config.category_weights);
  const int n = static_cast<int>(job.deps.size());
  // On-and-off byte profile: per-coflow shares are log-normally skewed.
  const std::vector<Bytes> shares =
      skewed_split(rng, total, n, config.stage_skew_sigma);
  job.coflows.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c)
    job.coflows.push_back(
        make_coflow(rng, config, shares[static_cast<std::size_t>(c)]));

  validate(job, config.num_hosts);
  return job;
}

std::vector<JobSpec> generate_trace(const TraceConfig& config) {
  std::vector<JobSpec> jobs;
  generate_trace_into(config, jobs);
  return jobs;
}

void generate_trace_into(const TraceConfig& config,
                         std::vector<JobSpec>& jobs) {
  GURITA_CHECK_MSG(config.num_jobs >= 1, "need at least one job");
  GURITA_CHECK_MSG(config.num_hosts >= 2, "need at least two hosts");
  GURITA_CHECK_MSG(
      config.category_weights.size() == static_cast<std::size_t>(kNumCategories),
      "category_weights must have seven entries");

  Rng rng(config.seed);
  Rng arrivals_rng = rng.split();
  const std::vector<Time> arrivals = make_arrivals(arrivals_rng, config);

  jobs.clear();
  jobs.reserve(static_cast<std::size_t>(config.num_jobs));
  for (int j = 0; j < config.num_jobs; ++j) {
    JobSpec job = generate_job(config, rng);
    job.arrival_time = arrivals[static_cast<std::size_t>(j)];
    jobs.push_back(std::move(job));
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const JobSpec& a, const JobSpec& b) {
              return a.arrival_time < b.arrival_time;
            });
}

}  // namespace gurita
