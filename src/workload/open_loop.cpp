#include "workload/open_loop.h"

#include <algorithm>

#include "common/check.h"

namespace gurita {

namespace {

// Derivation streams. Disjoint constants keep the job bodies, the arrival
// gaps and the calibration probes statistically independent.
constexpr std::uint64_t kJobStream = 1;
constexpr std::uint64_t kArrivalStream = 2;
constexpr std::uint64_t kCalibrationStream = 3;

/// Seed for element `index` of derivation stream `stream`: two SplitMix64
/// rounds over (seed, stream, index) so neighbouring indices land far apart
/// in state space.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream,
                          std::uint64_t index) {
  Rng outer(seed + 0x9e3779b97f4a7c15ULL * stream);
  Rng inner(outer.next_u64() + 0x94d049bb133111ebULL * index);
  return inner.next_u64();
}

}  // namespace

OpenLoopGenerator::OpenLoopGenerator(const Config& config) : config_(config) {
  GURITA_CHECK_MSG(config.load > 0, "load factor must be positive");
  GURITA_CHECK_MSG(config.service_rate > 0, "service rate must be positive");
  GURITA_CHECK_MSG(config.calibration_jobs >= 1,
                   "need at least one calibration probe");
  GURITA_CHECK_MSG(config.burst_size >= 1, "burst size must be positive");

  // Estimate E[job bytes] on the probe stream. Probe indices never collide
  // with served job indices (disjoint stream constant), so calibration does
  // not perturb the served sequence.
  double sum = 0;
  for (int i = 0; i < config.calibration_jobs; ++i) {
    Rng rng(derive_seed(config.shape.seed, kCalibrationStream,
                        static_cast<std::uint64_t>(i)));
    sum += generate_job(config.shape, rng).total_bytes();
  }
  mean_job_bytes_ = sum / config.calibration_jobs;

  mean_interarrival_ =
      config.mean_interarrival > 0
          ? config.mean_interarrival
          : mean_job_bytes_ / (config.load * config.service_rate);
}

JobSpec OpenLoopGenerator::next() {
  Rng body_rng(
      derive_seed(config_.shape.seed, kJobStream, cursor_.next_index));
  JobSpec job = generate_job(config_.shape, body_rng);
  job.arrival_time = cursor_.clock;

  if (config_.arrivals == ArrivalPattern::kPoisson) {
    Rng gap_rng(
        derive_seed(config_.shape.seed, kArrivalStream, cursor_.next_index));
    cursor_.clock += gap_rng.exponential(mean_interarrival_);
  } else {
    // Bursty with the same average rate: a burst cycle spans
    // burst_size × mean_interarrival, of which the back-to-back prefix
    // uses (burst_size-1) × burst_spacing and the idle gap the rest.
    const std::uint64_t pos =
        cursor_.next_index % static_cast<std::uint64_t>(config_.burst_size);
    if (pos + 1 < static_cast<std::uint64_t>(config_.burst_size)) {
      cursor_.clock += config_.burst_spacing;
    } else {
      const Time cycle = config_.burst_size * mean_interarrival_;
      const Time prefix = (config_.burst_size - 1) * config_.burst_spacing;
      cursor_.clock += std::max(config_.burst_spacing, cycle - prefix);
    }
  }
  ++cursor_.next_index;
  return job;
}

}  // namespace gurita
