// Benchmark DAG structures used in the paper's evaluation (§V "Traffic
// pattern and load"):
//
//  * TPC-DS query-42 — a multi-stage SQL query plan. Query 42 aggregates
//    store_sales joined with date_dim and item: three scan stages feed two
//    join stages, then an aggregation and a final sort/limit. Seven
//    coflows, five stages (matching the production average depth of five).
//
//  * FB-Tao — Facebook's TAO social-graph serving structure (Bronson et
//    al., ATC'13): a wide, shallow fan-in. Web-tier requests hit many
//    leaf cache shards in parallel; two follower-cache aggregations feed a
//    single leader/root. Seven coflows, three stages — wide and shallow
//    where TPC-DS is narrow and deep, exercising the horizontal vs. depth
//    dimensions differently.
//
// The original benchmark files are not distributed with the paper; like the
// authors, we replicate trace-derived coflows into these fixed shapes
// (substitution #2 in DESIGN.md).
#pragma once

#include <string>

#include "coflow/shapes.h"

namespace gurita {

enum class StructureKind {
  kTpcDs,   ///< TPC-DS query-42 plan (deep, 5 stages)
  kFbTao,   ///< FB-Tao fan-in (wide, 3 stages)
  kMixed,   ///< production mix of shapes per the Microsoft study [28]
};

[[nodiscard]] const char* to_string(StructureKind kind);
/// Parses "tpcds" | "fbtao" | "mixed"; throws on anything else.
[[nodiscard]] StructureKind structure_from_string(const std::string& name);

/// Dependency relation of the TPC-DS query-42 plan.
/// Index map: 0 scan(date_dim), 1 scan(store_sales), 2 scan(item),
/// 3 join(date_dim ⋈ store_sales), 4 join(⋈ item), 5 aggregate, 6 sort.
[[nodiscard]] shapes::Deps tpcds_q42_deps();

/// Dependency relation of the FB-Tao fan-in.
/// Index map: 0..3 leaf cache shards, 4..5 follower aggregations
/// (two shards each), 6 leader/root.
[[nodiscard]] shapes::Deps fb_tao_deps();

/// A randomly drawn production-mix shape (Microsoft study: ~40% trees, the
/// rest chains, W, inverted-V, parallel chains, multi-root and single-stage
/// jobs; average depth ≈ 5, up to > 10 stages).
[[nodiscard]] shapes::Deps mixed_deps(Rng& rng);

/// Draws a deps relation for the given structure kind.
[[nodiscard]] shapes::Deps draw_deps(StructureKind kind, Rng& rng);

}  // namespace gurita
