#include "workload/trace_io.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace gurita {

namespace {
constexpr const char* kMagic = "gurita-trace v1";

[[noreturn]] void parse_error(std::size_t line, const std::string& what) {
  std::ostringstream os;
  os << "trace parse error at line " << line << ": " << what;
  throw std::logic_error(os.str());
}
}  // namespace

void save_trace(const std::string& path, const std::vector<JobSpec>& jobs) {
  std::ofstream out(path);
  GURITA_CHECK_MSG(out.good(), "cannot open trace file for writing: " + path);
  out.precision(17);
  out << kMagic << "\n";
  out << "# jobs: " << jobs.size() << "\n";
  for (const JobSpec& job : jobs) {
    out << "J " << job.arrival_time << " " << job.coflows.size();
    if (job.has_deadline()) out << " " << job.deadline;
    out << "\n";
    for (std::size_t c = 0; c < job.coflows.size(); ++c) {
      out << "C " << job.deps[c].size();
      for (int d : job.deps[c]) out << " " << d;
      out << "\n";
      for (const FlowSpec& f : job.coflows[c].flows)
        out << "F " << f.src_host << " " << f.dst_host << " " << f.size
            << "\n";
    }
  }
  GURITA_CHECK_MSG(out.good(), "write failed: " + path);
}

std::vector<JobSpec> load_trace(const std::string& path) {
  std::ifstream in(path);
  GURITA_CHECK_MSG(in.good(), "cannot open trace file: " + path);

  std::vector<JobSpec> jobs;
  std::string line;
  std::size_t lineno = 0;

  GURITA_CHECK_MSG(std::getline(in, line) && line == kMagic,
                   "missing trace magic header in " + path);
  ++lineno;

  JobSpec* job = nullptr;
  std::size_t expected_coflows = 0;
  bool have_coflow = false;

  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "J") {
      Time arrival;
      std::size_t ncoflows;
      if (!(is >> arrival >> ncoflows) || ncoflows == 0)
        parse_error(lineno, "bad J record");
      Time deadline = 0;
      is >> deadline;  // optional trailing field
      if (job != nullptr && job->coflows.size() != expected_coflows)
        parse_error(lineno, "previous job has wrong coflow count");
      jobs.emplace_back();
      job = &jobs.back();
      job->arrival_time = arrival;
      job->deadline = deadline;
      expected_coflows = ncoflows;
      have_coflow = false;
    } else if (tag == "C") {
      if (job == nullptr) parse_error(lineno, "C before any J");
      std::size_t ndeps;
      if (!(is >> ndeps)) parse_error(lineno, "bad C record");
      std::vector<int> deps(ndeps);
      for (std::size_t i = 0; i < ndeps; ++i)
        if (!(is >> deps[i])) parse_error(lineno, "truncated dep list");
      if (job->coflows.size() >= expected_coflows)
        parse_error(lineno, "more coflows than declared");
      job->coflows.emplace_back();
      job->deps.push_back(std::move(deps));
      have_coflow = true;
    } else if (tag == "F") {
      if (!have_coflow) parse_error(lineno, "F before any C");
      FlowSpec f;
      if (!(is >> f.src_host >> f.dst_host >> f.size))
        parse_error(lineno, "bad F record");
      job->coflows.back().flows.push_back(f);
    } else {
      parse_error(lineno, "unknown record tag '" + tag + "'");
    }
  }
  if (job != nullptr && job->coflows.size() != expected_coflows)
    parse_error(lineno, "last job has wrong coflow count");

  // Structural validation independent of the target fabric.
  for (const JobSpec& j : jobs) {
    GURITA_CHECK_MSG(!j.coflows.empty(), "trace job with no coflows");
    (void)topological_order(j);  // throws on cycles / bad indices
    for (const CoflowSpec& c : j.coflows) {
      GURITA_CHECK_MSG(!c.flows.empty(), "trace coflow with no flows");
      for (const FlowSpec& f : c.flows)
        GURITA_CHECK_MSG(f.size > 0, "trace flow with non-positive size");
    }
  }
  return jobs;
}

}  // namespace gurita
