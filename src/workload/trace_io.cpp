#include "workload/trace_io.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/check.h"

namespace gurita {

namespace {
constexpr const char* kMagic = "gurita-trace v1";

[[noreturn]] void parse_error(std::size_t line, const std::string& what) {
  std::ostringstream os;
  os << "trace parse error at line " << line << ": " << what;
  throw std::logic_error(os.str());
}

/// A record consumed all its fields; anything left on the line is a
/// corruption signal (e.g. a line wrapped into the next), not noise.
void reject_trailing(std::istringstream& is, std::size_t lineno) {
  std::string extra;
  if (is >> extra)
    parse_error(lineno, "trailing token '" + extra + "' after record");
}
}  // namespace

void save_trace(const std::string& path, const std::vector<JobSpec>& jobs) {
  // tmp + rename (common/atomic_file.h): a crash mid-save leaves any
  // previous archive intact instead of a truncated trace.
  write_file_atomic(path, /*binary=*/false, [&](std::ostream& out) {
    out.precision(17);
    out << kMagic << "\n";
    out << "# jobs: " << jobs.size() << "\n";
    for (const JobSpec& job : jobs) {
      out << "J " << job.arrival_time << " " << job.coflows.size();
      if (job.has_deadline()) out << " " << job.deadline;
      out << "\n";
      for (std::size_t c = 0; c < job.coflows.size(); ++c) {
        out << "C " << job.deps[c].size();
        for (int d : job.deps[c]) out << " " << d;
        out << "\n";
        for (const FlowSpec& f : job.coflows[c].flows)
          out << "F " << f.src_host << " " << f.dst_host << " " << f.size
              << "\n";
      }
    }
  });
}

std::vector<JobSpec> load_trace(const std::string& path) {
  std::ifstream in(path);
  GURITA_CHECK_MSG(in.good(), "cannot open trace file: " + path);

  std::vector<JobSpec> jobs;
  std::string line;
  std::size_t lineno = 1;

  if (!std::getline(in, line) || line != kMagic)
    parse_error(1, std::string("bad or missing magic header (want '") +
                       kMagic + "')");

  JobSpec* job = nullptr;
  std::size_t expected_coflows = 0;
  bool have_coflow = false;
  std::size_t coflow_line = 0;  ///< line of the most recent C record

  const auto close_coflow = [&](std::size_t at_line) {
    if (have_coflow && job->coflows.back().flows.empty())
      parse_error(at_line, "coflow declared at line " +
                               std::to_string(coflow_line) + " has no flows");
  };

  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "J") {
      Time arrival;
      std::size_t ncoflows;
      if (!(is >> arrival >> ncoflows)) parse_error(lineno, "bad J record");
      if (!std::isfinite(arrival) || arrival < 0)
        parse_error(lineno, "job arrival time must be finite and >= 0");
      if (ncoflows == 0) parse_error(lineno, "job declares zero coflows");
      Time deadline = 0;
      if (is >> deadline) {  // optional trailing field
        if (!std::isfinite(deadline) || deadline < 0)
          parse_error(lineno, "job deadline must be finite and >= 0");
      } else {
        is.clear();
      }
      reject_trailing(is, lineno);
      if (job != nullptr && job->coflows.size() != expected_coflows)
        parse_error(lineno,
                    "previous job has " + std::to_string(job->coflows.size()) +
                        " coflows, declared " +
                        std::to_string(expected_coflows));
      close_coflow(lineno);
      jobs.emplace_back();
      job = &jobs.back();
      job->arrival_time = arrival;
      job->deadline = deadline;
      expected_coflows = ncoflows;
      have_coflow = false;
    } else if (tag == "C") {
      if (job == nullptr) parse_error(lineno, "C before any J");
      std::size_t ndeps;
      if (!(is >> ndeps)) parse_error(lineno, "bad C record");
      std::vector<int> deps(ndeps);
      for (std::size_t i = 0; i < ndeps; ++i) {
        if (!(is >> deps[i])) parse_error(lineno, "truncated dep list");
        if (deps[i] < 0) parse_error(lineno, "negative dep index");
      }
      reject_trailing(is, lineno);
      if (job->coflows.size() >= expected_coflows)
        parse_error(lineno, "more coflows than declared");
      close_coflow(lineno);
      job->coflows.emplace_back();
      job->deps.push_back(std::move(deps));
      have_coflow = true;
      coflow_line = lineno;
    } else if (tag == "F") {
      if (!have_coflow) parse_error(lineno, "F before any C");
      FlowSpec f;
      if (!(is >> f.src_host >> f.dst_host >> f.size))
        parse_error(lineno, "bad F record");
      reject_trailing(is, lineno);
      if (f.src_host < 0 || f.dst_host < 0)
        parse_error(lineno, "negative host index");
      if (f.src_host == f.dst_host)
        parse_error(lineno, "flow with identical src and dst host");
      if (!std::isfinite(f.size) || f.size <= 0)
        parse_error(lineno, "flow size must be finite and positive");
      job->coflows.back().flows.push_back(f);
    } else {
      parse_error(lineno, "unknown record tag '" + tag + "'");
    }
  }
  if (job != nullptr && job->coflows.size() != expected_coflows)
    parse_error(lineno,
                "last job has " + std::to_string(job->coflows.size()) +
                    " coflows, declared " + std::to_string(expected_coflows));
  close_coflow(lineno);

  // Structural validation independent of the target fabric.
  for (const JobSpec& j : jobs) {
    GURITA_CHECK_MSG(!j.coflows.empty(), "trace job with no coflows");
    (void)topological_order(j);  // throws on cycles / bad indices
  }
  return jobs;
}

}  // namespace gurita
