#include "core/starvation.h"

#include "common/check.h"

namespace gurita {

std::vector<double> spq_waiting_times(const std::vector<double>& rho) {
  GURITA_CHECK_MSG(!rho.empty(), "no queues");
  double sigma = 0;
  for (double r : rho) {
    GURITA_CHECK_MSG(r >= 0, "negative load");
    sigma += r;
  }
  GURITA_CHECK_MSG(sigma < 1.0, "total load must be < 1 for stability");

  std::vector<double> w;
  w.reserve(rho.size());
  double sigma_prev = 0;
  double sigma_cur = 0;
  for (double r : rho) {
    sigma_cur += r;
    w.push_back(1.0 / ((1.0 - sigma_prev) * (1.0 - sigma_cur)));
    sigma_prev = sigma_cur;
  }
  // Normalize so W_0 = 1 (only ratios matter downstream).
  const double w0 = w.front();
  for (double& x : w) x /= w0;
  return w;
}

std::vector<double> wrr_weights(const std::vector<double>& waiting_times,
                                double min_queue_ratio) {
  GURITA_CHECK_MSG(!waiting_times.empty(), "no queues");
  GURITA_CHECK_MSG(min_queue_ratio >= 1.0, "min_queue_ratio must be >= 1");
  std::vector<double> inv;
  inv.reserve(waiting_times.size());
  for (double w : waiting_times) {
    GURITA_CHECK_MSG(w > 0, "waiting time must be positive");
    inv.push_back(1.0 / w);
  }
  for (std::size_t i = 1; i < inv.size(); ++i)
    inv[i] = std::min(inv[i], inv[i - 1] / min_queue_ratio);
  double total = 0;
  for (double x : inv) total += x;
  for (double& x : inv) x /= total;
  return inv;
}

std::vector<double> wrr_weights_from_demand(const std::vector<double>& demand,
                                            double total_utilization,
                                            double min_queue_ratio) {
  GURITA_CHECK_MSG(!demand.empty(), "no queues");
  GURITA_CHECK_MSG(total_utilization > 0 && total_utilization < 1,
                   "total utilization must be in (0,1)");
  double total = 0;
  for (double d : demand) {
    GURITA_CHECK_MSG(d >= 0, "negative demand");
    total += d;
  }
  std::vector<double> rho(demand.size(), 0.0);
  if (total > 0) {
    for (std::size_t i = 0; i < demand.size(); ++i)
      rho[i] = demand[i] / total * total_utilization;
  }
  return wrr_weights(spq_waiting_times(rho), min_queue_ratio);
}

}  // namespace gurita
