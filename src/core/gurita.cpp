#include "core/gurita.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "core/blocking_effect.h"
#include "core/starvation.h"

namespace gurita {

GuritaScheduler::GuritaScheduler(const Config& config)
    : config_(config),
      thresholds_(config.queues, config.first_threshold, config.multiplier),
      adaptive_(config.queues) {
  GURITA_CHECK_MSG(config.delta > 0, "HR update interval must be positive");
}

int GuritaScheduler::psi_level(double psi) const {
  return config_.adaptive_thresholds ? adaptive_.level(psi)
                                     : thresholds_.level(psi);
}

void GuritaScheduler::observe_psi(double psi) {
  if (config_.adaptive_thresholds) adaptive_.observe(psi);
}

void GuritaScheduler::on_job_arrival(const SimJob& job, Time now) {
  (void)now;
  head_receivers_.emplace(job.id, HeadReceiver(job.id));
}

void GuritaScheduler::on_coflow_release(const SimCoflow& coflow, Time now) {
  // "Newly-arriving flows of a coflow are automatically assigned the
  // highest priority ... until a threshold is exceeded or an update is
  // received from HR." Both demotion causes fire at the next tick.
  coflow_queue_.emplace(coflow.id, 0);
  obs::TraceRecorder* tr = trace_recorder();
  if (tr && tr->wants(obs::TraceEventKind::kQueueChange)) {
    obs::TraceRecord r;
    r.kind = obs::TraceEventKind::kQueueChange;
    r.time = now;
    r.job = coflow.job.value();
    r.coflow = coflow.id.value();
    r.i0 = -1;
    r.i1 = 0;
    r.i2 = static_cast<std::int32_t>(obs::QueueChangeCause::kRelease);
    tr->emit(r);
  }
}

void GuritaScheduler::on_coflow_finish(const SimCoflow& coflow, Time now) {
  (void)now;
  // Feed AVA with the coflow's final observed ℓ̈_max: the largest per-flow
  // byte count actually received, not the clairvoyant flow size — the two
  // only coincide when every flow ran to natural completion, and the online
  // estimator must stay honest when they don't.
  Bytes ell_max = 0;
  for (FlowId fid : coflow.flows)
    ell_max = std::max(ell_max, state().flow(fid).bytes_sent());
  ava_.observe(ell_max);
  coflow_queue_.erase(coflow.id);
}

void GuritaScheduler::on_job_finish(const SimJob& job, Time now) {
  (void)now;
  head_receivers_.erase(job.id);
}

void GuritaScheduler::on_job_fail(const SimJob& job, Time now) {
  (void)now;
  head_receivers_.erase(job.id);
  for (CoflowId cid : job.coflows) coflow_queue_.erase(cid);
}

void GuritaScheduler::on_compact(const CompactionRemap& remap) {
  // Monotone renumbering keeps both maps sorted, so the rebuild preserves
  // iteration (and hence Ψ̈ fold and trace emission) order over survivors.
  std::map<JobId, HeadReceiver> survivors;
  for (auto& [jid, hr] : head_receivers_) {
    const std::uint64_t to = remap.job_map[jid.value()];
    if (to == CompactionRemap::kEvicted) continue;
    // Whole-job eviction: a surviving job's coflows all survive, so every
    // observation key has a mapping.
    std::map<CoflowId, CoflowObservation> observations;
    for (const auto& [cid, o] : hr.observations())
      observations.emplace(CoflowId{remap.coflow_map[cid.value()]}, o);
    hr.rekey(JobId{to}, std::move(observations));
    survivors.emplace(JobId{to}, std::move(hr));
  }
  head_receivers_ = std::move(survivors);
  remap_table(coflow_queue_, remap.coflow_map);
}

void GuritaScheduler::on_fault(const FaultEvent& event, Time now) {
  if (event.kind != FaultKind::kSchedulerStateLoss) return;
  // A restarted HR has no memory: the byte observations, the AVA history
  // behind the critical-path discount and any learned thresholds are gone.
  // Every live coflow re-enters the highest queue and earns its demotions
  // again from fresh (stale-Ψ̈) observations, just like at release.
  head_receivers_.clear();
  coflow_queue_.clear();
  ava_ = AvaEstimator{};
  adaptive_ = AdaptiveThresholds(config_.queues);
  obs::TraceRecorder* tr = trace_recorder();
  const bool trace_queues =
      tr != nullptr && tr->wants(obs::TraceEventKind::kQueueChange);
  for (std::size_t j = 0; j < state().job_count(); ++j) {
    const SimJob& job = state().job(JobId(j));
    if (job.finished() || job.arrival_time > now) continue;
    head_receivers_.emplace(job.id, HeadReceiver(job.id));
    for (CoflowId cid : job.coflows) {
      const SimCoflow& coflow = state().coflow(cid);
      if (!coflow.released() || coflow.finished()) continue;
      coflow_queue_.emplace(cid, 0);
      if (trace_queues) {
        obs::TraceRecord r;
        r.kind = obs::TraceEventKind::kQueueChange;
        r.time = now;
        r.job = job.id.value();
        r.coflow = cid.value();
        r.i0 = -1;
        r.i1 = 0;
        r.i2 = static_cast<std::int32_t>(obs::QueueChangeCause::kFaultReset);
        tr->emit(r);
      }
    }
  }
}

double GuritaScheduler::slack_factor(const SimJob& job, Time now) const {
  if (config_.slack_discount <= 0 || !job.spec.has_deadline()) return 1.0;
  const double budget = job.spec.deadline - job.arrival_time;
  if (budget <= 0) return 1.0;
  const double spent = (now - job.arrival_time) / budget;
  return spent >= config_.slack_urgency ? 1.0 - config_.slack_discount : 1.0;
}

bool GuritaScheduler::decide_priorities(HeadReceiver& hr, Time now) {
  // Ψ̈ per coflow, then per-stage sums Ψ̈_J(k), scaled by the slack factor
  // (rule 4 of Johnson's rules: jobs running out of deadline budget get a
  // priority boost via a smaller effective blocking effect).
  const SimJob& job = state().job(hr.job());
  const double slack = slack_factor(job, now);
  const double omega = omega_online(hr.completed_stages());
  obs::TraceRecorder* tr = trace_recorder();
  const bool trace_queues =
      tr != nullptr && tr->wants(obs::TraceEventKind::kQueueChange);
  std::map<int, double> psi_stage;
  std::unordered_map<CoflowId, int> stage_of;
  std::unordered_map<CoflowId, BlockingInputs> inputs_of;
  for (const auto& [cid, obs] : hr.observations()) {
    BlockingInputs in;
    in.omega = omega;
    in.epsilon = epsilon_skew(obs.ell_avg_observed, obs.ell_max_observed,
                              config_.gamma, config_.paper_literal_epsilon);
    in.ell_max = obs.ell_max_observed;
    in.width = obs.open_connections;
    in.beta = config_.beta;
    in.on_critical_path = config_.use_critical_path &&
                          ava_.likely_critical(obs.ell_max_observed);
    if (in.on_critical_path) ++stats_.critical_path_hits;
    psi_stage[obs.stage] += blocking_effect(in) * slack;
    stage_of[cid] = obs.stage;
    if (trace_queues) inputs_of.emplace(cid, in);
  }
  // LBEF demotion: coflows inherit their stage's queue; existing flows may
  // only be demoted (promotions would reorder in-flight TCP segments).
  for (const auto& [stage, psi] : psi_stage) {
    (void)stage;
    observe_psi(psi);
  }
  bool changed = false;
  for (const auto& [cid, stage] : stage_of) {
    const int queue = psi_level(psi_stage.at(stage));
    auto it = coflow_queue_.find(cid);
    GURITA_CHECK_MSG(it != coflow_queue_.end(), "observed unknown coflow");
    if (queue > it->second) {
      if (trace_queues) {
        const BlockingInputs& in = inputs_of.at(cid);
        obs::TraceRecord r;
        r.kind = obs::TraceEventKind::kQueueChange;
        r.time = now;
        r.job = job.id.value();
        r.coflow = cid.value();
        r.v0 = in.omega;
        r.v1 = in.epsilon;
        r.v2 = in.ell_max;
        r.v3 = in.width;
        r.v4 = in.on_critical_path ? 1.0 - in.beta : 1.0;
        r.v5 = psi_stage.at(stage);
        r.i0 = it->second;
        r.i1 = queue;
        r.i2 = static_cast<std::int32_t>(obs::QueueChangeCause::kHrDecision);
        tr->emit(r);
      }
      it->second = queue;
      ++stats_.demotions;
      changed = true;
    }
  }
  return changed;
}

bool GuritaScheduler::on_tick(Time now) {
  bool changed = false;
  for (auto& [jid, hr] : head_receivers_) {
    if (state().job(jid).finished()) continue;
    hr.update(state(), now);
    ++stats_.hr_updates;
    if (decide_priorities(hr, now)) changed = true;
  }
  return changed;
}

int GuritaScheduler::coflow_queue(CoflowId id) const {
  const auto it = coflow_queue_.find(id);
  return it == coflow_queue_.end() ? 0 : it->second;
}

void GuritaScheduler::self_demote(CoflowId cid, int& queue, Time now) {
  ++stats_.self_demote_checks;
  const SimCoflow& coflow = state().coflow(cid);
  const SimJob& job = state().job(coflow.job);
  // Receiver-local estimate of this coflow's own blocking effect; the HR's
  // last-known completed-stage count supplies ω̈. The byte signals come
  // from the engine's incremental aggregates (O(1) for the sums, no
  // per-flow re-summation).
  const auto hr = head_receivers_.find(coflow.job);
  const int completed =
      hr != head_receivers_.end() ? hr->second.completed_stages() : 0;
  const Bytes ell_max = state().coflow_ell_max(cid);
  const Bytes total = state().coflow_bytes_sent(cid);
  const int open = state().coflow_open_connections(cid);
  BlockingInputs in;
  in.omega = omega_online(completed);
  in.epsilon = epsilon_skew(
      coflow.flows.empty() ? 0.0 : total / static_cast<double>(coflow.flows.size()),
      ell_max, config_.gamma, config_.paper_literal_epsilon);
  in.ell_max = ell_max;
  in.width = open;
  in.beta = config_.beta;
  in.on_critical_path =
      config_.use_critical_path && ava_.likely_critical(ell_max);
  // The job knows its own deadline, so rule 4's slack boost applies to the
  // receiver-local check as well.
  const double psi = blocking_effect(in) * slack_factor(job, now);
  const int level = psi_level(psi);
  if (level > queue) {
    obs::TraceRecorder* tr = trace_recorder();
    if (tr && tr->wants(obs::TraceEventKind::kQueueChange)) {
      obs::TraceRecord r;
      r.kind = obs::TraceEventKind::kQueueChange;
      r.time = now;
      r.job = coflow.job.value();
      r.coflow = cid.value();
      r.v0 = in.omega;
      r.v1 = in.epsilon;
      r.v2 = in.ell_max;
      r.v3 = in.width;
      r.v4 = in.on_critical_path ? 1.0 - in.beta : 1.0;
      r.v5 = psi;
      r.i0 = queue;
      r.i1 = level;
      r.i2 = static_cast<std::int32_t>(obs::QueueChangeCause::kSelfDemote);
      tr->emit(r);
    }
    queue = level;
    ++stats_.self_demotions;
  }
}

void GuritaScheduler::save_state(snapshot::Writer& w) const {
  w.u64(head_receivers_.size());
  for (const auto& [jid, hr] : head_receivers_) {
    w.u64(jid.value());
    hr.save_state(w);
  }
  w.u64(coflow_queue_.size());
  for (const auto& [cid, queue] : coflow_queue_) {
    w.u64(cid.value());
    w.i32(queue);
  }
  ava_.save_state(w);
  adaptive_.save_state(w);
  w.u64(stats_.hr_updates);
  w.u64(stats_.demotions);
  w.u64(stats_.self_demote_checks);
  w.u64(stats_.self_demotions);
  w.u64(stats_.critical_path_hits);
}

void GuritaScheduler::load_state(snapshot::Reader& r) {
  head_receivers_.clear();
  const std::uint64_t n_hr = r.u64();
  for (std::uint64_t i = 0; i < n_hr; ++i) {
    const JobId jid{r.u64()};
    HeadReceiver hr(jid);
    hr.load_state(r);
    head_receivers_.emplace(jid, std::move(hr));
  }
  coflow_queue_.clear();
  const std::uint64_t n_q = r.u64();
  for (std::uint64_t i = 0; i < n_q; ++i) {
    const CoflowId cid{r.u64()};
    coflow_queue_.emplace(cid, r.i32());
  }
  ava_.load_state(r);
  adaptive_.load_state(r);
  stats_.hr_updates = r.u64();
  stats_.demotions = r.u64();
  stats_.self_demote_checks = r.u64();
  stats_.self_demotions = r.u64();
  stats_.critical_path_hits = r.u64();
}

void GuritaScheduler::assign(Time now, const std::vector<SimFlow*>& active) {
  // Continuous receiver-local threshold check: exactly once per released,
  // unfinished coflow. coflow_queue_ is that set (entries are added at
  // release and erased at finish), so iterating it directly never depends
  // on the active list keeping a coflow's flows contiguous — the old
  // previous-flow dedup silently skipped coflows under interleaved orders.
  for (auto& [cid, queue] : coflow_queue_) self_demote(cid, queue, now);
  if (!config_.starvation_mitigation) {
    for (SimFlow* f : active) {
      const SimJob& job = state().job(f->job);
      f->tier = coflow_queue(job.coflows[f->coflow_index]);
      f->weight = 1.0;
    }
    return;
  }

  // WRR emulation of SPQ: per-queue demand is the number of active flows
  // currently assigned to the queue ("arrival rate ... can be retrieved
  // from switches"); queue weights come from the SPQ waiting-time model and
  // are split evenly among the queue's flows. Every flow lives in one
  // allocator tier so nothing starves.
  std::vector<double> demand(static_cast<std::size_t>(config_.queues), 0.0);
  std::vector<int> queue_of_flow(active.size(), 0);
  for (std::size_t i = 0; i < active.size(); ++i) {
    const SimJob& job = state().job(active[i]->job);
    const int q = coflow_queue(job.coflows[active[i]->coflow_index]);
    queue_of_flow[i] = q;
    demand[static_cast<std::size_t>(q)] += 1.0;
  }
  const std::vector<double> weights = wrr_weights_from_demand(
      demand, config_.wrr_total_utilization, config_.wrr_min_queue_ratio);
  obs::TraceRecorder* tr = trace_recorder();
  if (tr && tr->wants(obs::TraceEventKind::kStarvationWeights)) {
    obs::TraceRecord r;
    r.kind = obs::TraceEventKind::kStarvationWeights;
    r.time = now;
    r.i0 = config_.queues;
    if (!weights.empty()) r.v0 = weights[0];
    if (weights.size() > 1) r.v1 = weights[1];
    if (weights.size() > 2) r.v2 = weights[2];
    if (weights.size() > 3) r.v3 = weights[3];
    tr->emit(r);
  }
  for (std::size_t i = 0; i < active.size(); ++i) {
    const int q = queue_of_flow[i];
    const double flows_in_q = demand[static_cast<std::size_t>(q)];
    active[i]->tier = 0;
    active[i]->weight =
        std::max(weights[static_cast<std::size_t>(q)] / flows_in_q, 1e-9);
  }
}

}  // namespace gurita
