// GuritaPlus — the clairvoyant upper bound Gurita is compared against in
// Fig. 8: "an enhanced version ... where information on the total amount of
// bytes sent per stage is available and job priority can be adjusted
// spontaneously without concerning TCP out of order problem."
//
// Differences from Gurita:
//   * No δ staleness: Ψ is recomputed from exact state at every rate
//     recomputation.
//   * Exact dimensions: ω = 1 − k/k_total with the true stage count;
//     ℓ_max / width / ε from true *in-flight (remaining)* bytes per flow.
//   * Exact critical path: computed from the job DAG at arrival
//     (costs = ℓ_max at line rate), no AVA estimation.
//   * Priorities move freely in both directions (no demote-only rule).
#pragma once

#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "flowsim/scheduler.h"
#include "sched/thresholds.h"

namespace gurita {

class GuritaPlusScheduler final : public Scheduler {
 public:
  struct Config {
    int queues = 4;
    double first_threshold = 2e7;
    double multiplier = 16.0;
    double gamma = 0.25;
    double beta = 0.5;
    bool use_critical_path = true;
    bool starvation_mitigation = true;
    double wrr_total_utilization = 0.97;
    double wrr_min_queue_ratio = 16.0;
    /// Line rate used for critical-path costs (matches fabric capacity).
    Rate line_rate = gbps(10.0);
  };

  GuritaPlusScheduler() : GuritaPlusScheduler(Config{}) {}
  explicit GuritaPlusScheduler(const Config& config);

  [[nodiscard]] std::string name() const override { return "gurita_plus"; }

  void on_job_arrival(const SimJob& job, Time now) override;
  void on_coflow_finish(const SimCoflow& coflow, Time now) override;
  /// kSchedulerStateLoss clears the traced-queue map only: the clairvoyant
  /// policy re-derives every queue from exact state at the next assign(), so
  /// a controller restart costs it nothing — which is precisely why Fig. 8
  /// treats it as the upper bound. Critical-path membership is DAG
  /// knowledge (recomputable from the job spec), not learned state, and
  /// survives the loss.
  void on_fault(const FaultEvent& event, Time now) override;
  /// Drops the failed job's critical-path vector and traced queues.
  void on_job_fail(const SimJob& job, Time now) override;
  /// Re-keys the critical-path and traced-queue tables across an engine
  /// compaction. Local coflow indices are preserved by whole-job eviction,
  /// so the per-job membership vectors travel unchanged.
  void on_compact(const CompactionRemap& remap) override;
  void assign(Time now, const std::vector<SimFlow*>& active) override;
  /// Checkpoint hooks (DESIGN.md §12): critical-path membership (DAG
  /// knowledge computed at arrival) and the traced-queue map (needed so a
  /// restored run emits kQueueChange records on exactly the same
  /// transitions). Serialized in sorted-key order; the tables stay
  /// unordered (assign() never iterates them).
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  Config config_;
  ExpThresholds thresholds_;
  /// Critical-path membership per job (indexed by local coflow index).
  std::unordered_map<JobId, std::vector<bool>> on_critical_;
  /// Last traced queue per live coflow (tracing only). Unlike Gurita's
  /// demote-only coflow_queue_, the clairvoyant policy re-derives queues
  /// from scratch each recomputation, so this map exists purely to emit
  /// kQueueChange records in both directions on actual transitions.
  std::unordered_map<CoflowId, int> last_queue_;
};

}  // namespace gurita
