// SPQ → WRR starvation mitigation (§IV.B "Starvation Mitigation").
//
// Pure strict-priority queuing denies all bandwidth to low-priority traffic
// whenever higher queues are backlogged. The paper emulates SPQ with
// Weighted Round Robin: compute the average waiting time W_i each queue
// would suffer under SPQ (the classic non-preemptive priority-queue
// formula), then give queue i a WRR weight that shrinks with W_i, so lower
// priority queues transmit at a much lower — but non-zero — rate.
//
//   σ_i = Σ_{j<=i} ρ_j                 (cumulative load through queue i)
//   W_i ∝ 1 / ((1 − σ_{i−1})(1 − σ_i)) (relative SPQ waiting time)
//   w_i = (1/W_i) / Σ_j (1/W_j)        (WRR weight; Σ w_i = 1)
//
// Inverting W keeps the SPQ ordering (short wait ⇒ large share) while
// guaranteeing progress everywhere. Loads ρ_i are measured from the bytes
// each queue admitted over a sliding window, normalized to a configurable
// total utilization so the formula stays inside its stability region.
#pragma once

#include <vector>

namespace gurita {

/// Relative SPQ waiting times W_i for per-queue loads `rho` (each >= 0,
/// cumulative sum < 1). W_0 is normalized to 1.
[[nodiscard]] std::vector<double> spq_waiting_times(
    const std::vector<double>& rho);

/// WRR weights w_i ∝ 1/W_i, normalized to sum to 1.
///
/// `min_queue_ratio` (>= 1) additionally enforces w_{i+1} <= w_i /
/// min_queue_ratio before normalizing. The waiting-time model alone gives
/// only weak separation between adjacent queues when per-queue loads are
/// small (W_{i+1}/W_i -> 1 as ρ -> 0), which would let low-priority bulk
/// traffic take a large share — the opposite of the SPQ behaviour being
/// emulated. The floor restores strict-priority-like preemption while the
/// waiting-time model still sets the shape under load.
[[nodiscard]] std::vector<double> wrr_weights(
    const std::vector<double>& waiting_times, double min_queue_ratio = 1.0);

/// Convenience: normalizes raw per-queue demand (e.g. bytes admitted per
/// queue) to loads summing to `total_utilization` (< 1), then returns the
/// WRR weights. Queues with zero demand get zero load but still a finite
/// weight. `demand` must be non-empty with no negative entries.
[[nodiscard]] std::vector<double> wrr_weights_from_demand(
    const std::vector<double>& demand, double total_utilization = 0.9,
    double min_queue_ratio = 1.0);

}  // namespace gurita
