// Adaptive Ψ demotion thresholds — the paper's future-work direction made
// concrete: "As part of our future work, we will extend the study in [35,
// Poupart et al., online flow size prediction] on using machine learning to
// determine thresholds" (§IV.B).
//
// Fixed exponential thresholds must be tuned to the workload's Ψ scale; a
// mis-scaled set collapses every coflow into one queue. This learner keeps
// a reservoir of recently observed per-stage blocking effects and places
// the Q-1 demotion boundaries at evenly spaced quantiles of that empirical
// distribution, so the queues stay balanced as the workload drifts — a
// simple, online, distribution-free estimator (the same role the cited
// flow-size predictor plays for TBS thresholds).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "snapshot/codec.h"

namespace gurita {

class AdaptiveThresholds {
 public:
  /// `queues` >= 1; boundaries are recomputed every `refresh_every`
  /// observations from a reservoir of `capacity` recent samples.
  AdaptiveThresholds(int queues, std::size_t capacity = 1024,
                     std::size_t refresh_every = 64);

  [[nodiscard]] int queues() const { return queues_; }

  /// Feeds one observed Ψ value (>= 0).
  void observe(double psi);

  /// Queue (0 = highest priority) for signal `x` >= 0. Before enough
  /// observations arrive (fewer than `queues`), everything maps to 0 —
  /// matching Gurita's start-at-highest-priority rule.
  [[nodiscard]] int level(double x) const;

  [[nodiscard]] std::size_t observations() const { return total_; }
  /// Current boundaries (size queues-1; empty until first refresh).
  [[nodiscard]] const std::vector<double>& boundaries() const {
    return boundaries_;
  }

  /// Checkpoint hooks (DESIGN.md §12). Configuration (queues, capacity,
  /// refresh cadence) is NOT serialized — the restoring side reconstructs
  /// the learner from the same Config; only learned state travels. The
  /// reservoir ring (including slot positions) must round-trip exactly:
  /// future refreshes sort a copy of it, so element order matters.
  void save_state(snapshot::Writer& w) const {
    w.u64(static_cast<std::uint64_t>(total_));
    w.u64(static_cast<std::uint64_t>(since_refresh_));
    w.u64(static_cast<std::uint64_t>(next_slot_));
    w.u64(reservoir_.size());
    for (double v : reservoir_) w.f64(v);
    w.u64(boundaries_.size());
    for (double v : boundaries_) w.f64(v);
  }
  void load_state(snapshot::Reader& r) {
    total_ = static_cast<std::size_t>(r.u64());
    since_refresh_ = static_cast<std::size_t>(r.u64());
    next_slot_ = static_cast<std::size_t>(r.u64());
    reservoir_.resize(static_cast<std::size_t>(r.u64()));
    for (double& v : reservoir_) v = r.f64();
    boundaries_.resize(static_cast<std::size_t>(r.u64()));
    for (double& v : boundaries_) v = r.f64();
  }

 private:
  int queues_;
  std::size_t capacity_;
  std::size_t refresh_every_;
  std::size_t total_ = 0;
  std::size_t since_refresh_ = 0;
  std::vector<double> reservoir_;  ///< ring buffer of recent Ψ samples
  std::size_t next_slot_ = 0;
  std::vector<double> boundaries_;

  void refresh();
};

}  // namespace gurita
