// Adaptive Ψ demotion thresholds — the paper's future-work direction made
// concrete: "As part of our future work, we will extend the study in [35,
// Poupart et al., online flow size prediction] on using machine learning to
// determine thresholds" (§IV.B).
//
// Fixed exponential thresholds must be tuned to the workload's Ψ scale; a
// mis-scaled set collapses every coflow into one queue. This learner keeps
// a reservoir of recently observed per-stage blocking effects and places
// the Q-1 demotion boundaries at evenly spaced quantiles of that empirical
// distribution, so the queues stay balanced as the workload drifts — a
// simple, online, distribution-free estimator (the same role the cited
// flow-size predictor plays for TBS thresholds).
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace gurita {

class AdaptiveThresholds {
 public:
  /// `queues` >= 1; boundaries are recomputed every `refresh_every`
  /// observations from a reservoir of `capacity` recent samples.
  AdaptiveThresholds(int queues, std::size_t capacity = 1024,
                     std::size_t refresh_every = 64);

  [[nodiscard]] int queues() const { return queues_; }

  /// Feeds one observed Ψ value (>= 0).
  void observe(double psi);

  /// Queue (0 = highest priority) for signal `x` >= 0. Before enough
  /// observations arrive (fewer than `queues`), everything maps to 0 —
  /// matching Gurita's start-at-highest-priority rule.
  [[nodiscard]] int level(double x) const;

  [[nodiscard]] std::size_t observations() const { return total_; }
  /// Current boundaries (size queues-1; empty until first refresh).
  [[nodiscard]] const std::vector<double>& boundaries() const {
    return boundaries_;
  }

 private:
  int queues_;
  std::size_t capacity_;
  std::size_t refresh_every_;
  std::size_t total_ = 0;
  std::size_t since_refresh_ = 0;
  std::vector<double> reservoir_;  ///< ring buffer of recent Ψ samples
  std::size_t next_slot_ = 0;
  std::vector<double> boundaries_;

  void refresh();
};

}  // namespace gurita
