#include "core/optimal.h"
#include <functional>

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "common/check.h"

namespace gurita {

namespace {

void validate_jobs(const std::vector<StagedJob>& jobs) {
  GURITA_CHECK_MSG(!jobs.empty(), "no jobs");
  for (const StagedJob& j : jobs) {
    GURITA_CHECK_MSG(!j.stage_demand.empty(), "job with no stages");
    for (double d : j.stage_demand)
      GURITA_CHECK_MSG(d > 0, "stage demand must be positive");
  }
}

/// Packs a progress vector into a mixed-radix integer state key.
class StateCodec {
 public:
  /// Hard cap on the DP state space (Π over jobs of stages+1): beyond this
  /// the memo table would not fit a reasonable memory budget.
  static constexpr std::uint64_t kMaxStates = 50'000'000;

  explicit StateCodec(const std::vector<StagedJob>& jobs) {
    // Size the space as a long double first so an over-limit instance can
    // report its actual magnitude instead of a bare failure (the product
    // overflows u64 long before the guard would fire job by job).
    long double total = 1.0L;
    for (const StagedJob& j : jobs)
      total *= static_cast<long double>(j.stage_demand.size() + 1);
    if (total > static_cast<long double>(kMaxStates)) {
      std::ostringstream os;
      os << "optimal DP state space too large: ";
      if (total < 1e15L)
        os << static_cast<std::uint64_t>(total);
      else
        os << std::scientific << std::setprecision(3)
           << static_cast<double>(total);
      os << " states for " << jobs.size() << " jobs exceeds the limit of "
         << kMaxStates;
      GURITA_CHECK_MSG(false, os.str());
    }
    radix_.reserve(jobs.size());
    for (const StagedJob& j : jobs)
      radix_.push_back(j.stage_demand.size() + 1);
  }

  [[nodiscard]] std::uint64_t encode(const std::vector<std::size_t>& progress) const {
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < progress.size(); ++i)
      key = key * radix_[i] + progress[i];
    return key;
  }

 private:
  std::vector<std::uint64_t> radix_;
};

}  // namespace

double optimal_average_jct(const std::vector<StagedJob>& jobs) {
  validate_jobs(jobs);
  const std::size_t n = jobs.size();
  const StateCodec codec(jobs);

  // memo[state] = minimum total JCT achievable from `state` onward, where
  // elapsed time at `state` is implied (sum of completed stage demands).
  std::unordered_map<std::uint64_t, double> memo;

  std::vector<std::size_t> progress(n, 0);

  // Recursive lambda over the progress vector; elapsed passed explicitly.
  const std::function<double(double)> solve = [&](double elapsed) -> double {
    bool done = true;
    for (std::size_t i = 0; i < n; ++i)
      if (progress[i] < jobs[i].stage_demand.size()) done = false;
    if (done) return 0.0;

    const std::uint64_t key = codec.encode(progress);
    const auto it = memo.find(key);
    if (it != memo.end()) return it->second;

    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t stage = progress[i];
      if (stage >= jobs[i].stage_demand.size()) continue;
      const double demand = jobs[i].stage_demand[stage];
      progress[i] = stage + 1;
      double cost = solve(elapsed + demand);
      if (progress[i] == jobs[i].stage_demand.size())
        cost += elapsed + demand;  // job i's JCT accrues now
      progress[i] = stage;
      best = std::min(best, cost);
    }
    memo.emplace(key, best);
    return best;
  };

  return solve(0.0) / static_cast<double>(n);
}

namespace {

/// Runs whole jobs back-to-back in the given order.
double serial_average_jct(const std::vector<StagedJob>& jobs,
                          const std::vector<std::size_t>& order) {
  double elapsed = 0;
  double total_jct = 0;
  for (std::size_t i : order) {
    elapsed += jobs[i].total();
    total_jct += elapsed;
  }
  return total_jct / static_cast<double>(jobs.size());
}

}  // namespace

double fifo_average_jct(const std::vector<StagedJob>& jobs) {
  validate_jobs(jobs);
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  return serial_average_jct(jobs, order);
}

double sjf_tbs_average_jct(const std::vector<StagedJob>& jobs) {
  validate_jobs(jobs);
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (jobs[a].total() != jobs[b].total())
      return jobs[a].total() < jobs[b].total();
    return a < b;
  });
  return serial_average_jct(jobs, order);
}

double stage_greedy_average_jct(const std::vector<StagedJob>& jobs) {
  validate_jobs(jobs);
  const std::size_t n = jobs.size();
  std::vector<std::size_t> progress(n, 0);
  double elapsed = 0;
  double total_jct = 0;
  std::size_t finished = 0;
  while (finished < n) {
    // Pick the available stage with the smallest demand (ties: lowest id).
    std::size_t pick = n;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (progress[i] >= jobs[i].stage_demand.size()) continue;
      const double d = jobs[i].stage_demand[progress[i]];
      if (d < best) {
        best = d;
        pick = i;
      }
    }
    elapsed += best;
    if (++progress[pick] == jobs[pick].stage_demand.size()) {
      total_jct += elapsed;
      ++finished;
    }
  }
  return total_jct / static_cast<double>(n);
}

}  // namespace gurita
