#include "core/ava.h"

#include "common/check.h"

namespace gurita {

void AvaEstimator::observe(double ell_max) {
  GURITA_CHECK_MSG(ell_max >= 0, "negative ℓ_max observation");
  sum_ += ell_max;
  ++n_;
}

bool AvaEstimator::likely_critical(double ell_max) const {
  if (n_ == 0) return false;
  return ell_max >= mean();
}

}  // namespace gurita
