// Gurita — the paper's contribution (§IV): decentralized Least-Blocking-
// Effect-First (LBEF) scheduling of multi-stage job coflows.
//
// Mechanics implemented here, mapped to the paper:
//
//  * Per-stage blocking effect. Every δ seconds (the HR update interval)
//    each job's head receiver aggregates receiver-local observations
//    (bytes received per flow, open connections) and estimates
//    Ψ̈_c = ω̈·ε̈·ℓ̈_max·n̈ per active coflow (eq. 3), discounted for
//    AVA-estimated critical-path membership (rule 4). Per-stage sums
//    Ψ̈_J(k) map onto priority queues through exponentially spaced
//    thresholds (LBEF, Algorithm 1).
//
//  * Priority dynamics. A newly released coflow starts at the highest
//    priority (too small to wait for an HR decision); HR updates can only
//    *demote* a running coflow's flows — promotions apply to subsequently
//    released flows only, which avoids TCP reordering.
//
//  * Enforcement. Strict priority queuing by default maps queues onto
//    allocator tiers; with starvation mitigation enabled (the paper's
//    recommended mode) queues are emulated with WRR weights derived from
//    the SPQ waiting-time model, so low-priority traffic keeps a trickle.
//
// Everything the scheduler reads between ticks comes from the HR caches —
// never from the engine's instantaneous state — which is what makes this a
// faithful model of a controller-less, receiver-driven scheme.
#pragma once

#include <map>

#include "common/units.h"
#include "core/adaptive_thresholds.h"
#include "core/ava.h"
#include "core/head_receiver.h"
#include "flowsim/scheduler.h"
#include "sched/thresholds.h"

namespace gurita {

class GuritaScheduler final : public Scheduler {
 public:
  struct Config {
    int queues = 4;                 ///< priority queues (paper evaluates 4)
    /// First Ψ demotion threshold. Ψ is (bytes × width)-scaled; the default
    /// puts a 10 MB-widest, 10-wide, stage-1 coflow near the first boundary.
    double first_threshold = 2e7;
    double multiplier = 16.0;       ///< exponential threshold spacing
    Time delta = 8 * kMillisecond;  ///< HR update interval δ
    double gamma = 0.25;            ///< ε skew constant, in (0,1)
    double beta = 0.5;              ///< critical-path discount, in (0,1]
    bool use_critical_path = true;  ///< rule 4 on/off (ablation)
    bool starvation_mitigation = true;  ///< WRR emulation vs pure SPQ
    bool paper_literal_epsilon = false; ///< ε's ambiguous d>=1 branch
    double wrr_total_utilization = 0.97; ///< load normalization for WRR
    /// Minimum weight ratio between adjacent queues (SPQ-like preemption
    /// even at low per-queue load); see starvation.h.
    double wrr_min_queue_ratio = 16.0;
    /// Learn demotion thresholds online from the observed Ψ distribution
    /// (quantile placement; adaptive_thresholds.h) instead of the fixed
    /// exponential ladder — the paper's stated future-work direction.
    bool adaptive_thresholds = false;
    /// Johnson's fourth rule (avoid tardiness): multiply Ψ of jobs whose
    /// deadline budget is mostly spent by (1 - slack_discount), boosting
    /// their priority. 0 disables; only affects jobs carrying deadlines.
    double slack_discount = 0.0;
    /// Fraction of the arrival→deadline budget after which the slack
    /// discount kicks in.
    double slack_urgency = 0.7;
  };

  GuritaScheduler() : GuritaScheduler(Config{}) {}
  explicit GuritaScheduler(const Config& config);

  [[nodiscard]] std::string name() const override { return "gurita"; }

  [[nodiscard]] Time tick_interval() const override { return config_.delta; }
  bool on_tick(Time now) override;
  void on_job_arrival(const SimJob& job, Time now) override;
  void on_coflow_release(const SimCoflow& coflow, Time now) override;
  void on_coflow_finish(const SimCoflow& coflow, Time now) override;
  void on_job_finish(const SimJob& job, Time now) override;
  /// Graceful degradation (DESIGN.md §11): kSchedulerStateLoss drops every
  /// HR cache, the learned AVA history and adaptive thresholds, then
  /// re-admits all live coflows at the highest queue — they re-earn their
  /// demotions from fresh observations with stale Ψ̈, exactly like a
  /// restarted head receiver. Host/link faults need no handling here: the
  /// HR caches re-observe the surviving flows at the next δ round.
  void on_fault(const FaultEvent& event, Time now) override;
  /// Drops the failed job's HR and its coflows' queue entries (the job
  /// never reaches on_job_finish).
  void on_job_fail(const SimJob& job, Time now) override;
  /// Re-keys the HR caches (including each HR's per-coflow observation
  /// cache) and the coflow queue table across an engine compaction. The AVA
  /// mean and adaptive-threshold reservoir are population statistics, not
  /// id-keyed, and survive untouched.
  void on_compact(const CompactionRemap& remap) override;
  void assign(Time now, const std::vector<SimFlow*>& active) override;
  /// Checkpoint hooks (DESIGN.md §12): HR caches, queue table, AVA history,
  /// adaptive-threshold reservoir and introspection counters all travel
  /// with the snapshot — a restored Gurita is indistinguishable from one
  /// that ran the whole horizon.
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

  /// Exposed for tests: queue currently assigned to a coflow (0 if none).
  [[nodiscard]] int coflow_queue(CoflowId id) const;

  /// Introspection counters for analysis and tests.
  struct Stats {
    std::uint64_t hr_updates = 0;       ///< per-job HR refresh rounds
    std::uint64_t demotions = 0;        ///< HR-decided queue demotions
    std::uint64_t self_demote_checks = 0;  ///< receiver-local evaluations
    std::uint64_t self_demotions = 0;   ///< receiver-local threshold hits
    std::uint64_t critical_path_hits = 0;  ///< coflows AVA flagged critical
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  Config config_;
  ExpThresholds thresholds_;
  AdaptiveThresholds adaptive_;
  AvaEstimator ava_;
  Stats stats_;

  /// Demotion level for a Ψ value under the configured threshold policy.
  [[nodiscard]] int psi_level(double psi) const;
  /// Feeds a Ψ observation to the adaptive learner (no-op when fixed).
  void observe_psi(double psi);
  /// Ordered maps, not hash maps: on_tick and assign iterate these, and
  /// both trace-record emission order and Ψ̈ floating-point fold order must
  /// be a pure function of logical state for byte-identical restore —
  /// a rehashed unordered_map's bucket order is not reconstructible.
  std::map<JobId, HeadReceiver> head_receivers_;
  /// Queue assigned to each released coflow; demote-only while it runs.
  std::map<CoflowId, int> coflow_queue_;

  /// Recomputes Ψ̈ and stage queues for one job from its HR cache.
  /// Returns true if any coflow's queue changed.
  bool decide_priorities(HeadReceiver& hr, Time now);

  /// (1 - slack_discount) for a deadline job deep into its budget, else 1.
  [[nodiscard]] double slack_factor(const SimJob& job, Time now) const;

  /// Receiver-local self-demotion: "newly-arriving flows ... transmit at
  /// [the highest] priority until a threshold is exceeded or an update is
  /// received from HR." A receiver sees its own byte counts continuously,
  /// so this check needs no δ coordination; only the job-level stage sums
  /// (decide_priorities) wait for the HR round. `queue` is the coflow's
  /// entry in coflow_queue_ (demote-only, updated in place).
  void self_demote(CoflowId cid, int& queue, Time now);
};

}  // namespace gurita
