// Head-receiver (HR) coordination state (§IV.B "Priority decision").
//
// Each job designates its first-invoked receiver as head receiver. Peer
// receivers report locally observed flow information — bytes received per
// flow and the number of open connections — every δ seconds; the HR
// aggregates them into per-coflow observations, estimates Ψ̈, and decides
// the job's per-stage priority queue.
//
// This module holds the *observation cache*: everything the HR knew as of
// the last δ update. The Gurita scheduler reads only this cache between
// ticks, which is what makes the scheme decentralized in the simulation —
// decisions are made on stale, receiver-local information, never on the
// engine's instantaneous global state.
#pragma once

#include <map>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "flowsim/state.h"
#include "snapshot/codec.h"

namespace gurita {

/// What the HR knows about one active coflow after an update round.
struct CoflowObservation {
  int stage = 1;
  double open_connections = 0;   ///< n̈: flows still transmitting
  Bytes ell_max_observed = 0;    ///< ℓ̈_max: largest per-flow bytes received
  Bytes ell_avg_observed = 0;    ///< ℓ̈_avg: mean per-flow bytes received
  Bytes bytes_received = 0;      ///< aggregate, used for self-demotion
};

/// Per-job HR cache, refreshed on ticks by the Gurita scheduler.
class HeadReceiver {
 public:
  explicit HeadReceiver(JobId job) : job_(job) {}

  [[nodiscard]] JobId job() const { return job_; }

  /// Gathers receiver-side observations for every released, unfinished
  /// coflow of the job. `now` is recorded as the update time.
  void update(const SimState& state, Time now);

  [[nodiscard]] Time last_update() const { return last_update_; }
  [[nodiscard]] bool has(CoflowId id) const {
    return observations_.count(id) > 0;
  }
  [[nodiscard]] const CoflowObservation& observation(CoflowId id) const;
  /// Ordered by coflow id: decide_priorities() folds these observations into
  /// per-stage Ψ̈ sums, and floating-point addition order is part of the
  /// byte-identical determinism contract — an ordered map makes the fold
  /// order a pure function of logical state (a restored HR iterates exactly
  /// like the original; a rehashed hash map would not).
  [[nodiscard]] const std::map<CoflowId, CoflowObservation>& observations()
      const {
    return observations_;
  }

  /// Completed-stage count as of the last update (from the job master,
  /// which receivers learn through the coflow registration API).
  [[nodiscard]] int completed_stages() const { return completed_stages_; }

  /// Checkpoint hooks (DESIGN.md §12): the full δ-stale observation cache
  /// travels with the snapshot so a restored run makes identical decisions
  /// until its next HR round.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

  /// Compaction support (DESIGN.md §15): adopts the renumbered job id and a
  /// re-keyed observation cache built by GuritaScheduler::on_compact.
  /// Update time and completed-stage count are id-free and stay put.
  void rekey(JobId job, std::map<CoflowId, CoflowObservation> observations) {
    job_ = job;
    observations_ = std::move(observations);
  }

 private:
  JobId job_;
  Time last_update_ = -1;
  int completed_stages_ = 0;
  std::map<CoflowId, CoflowObservation> observations_;
};

}  // namespace gurita
