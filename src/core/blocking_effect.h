// The coflow blocking effect Ψ (paper §IV.B, eq. 2/3).
//
//   Ψ_c = ω · ε · ℓ_max · n            (eq. 2)
//
// — the scheduler's estimate of how likely a coflow is to delay the
// completion of other jobs' coflows:
//
//   ω      final-stage weight (rule 3): shrinks as the job nears its last
//          stage so almost-done jobs are not held back.
//   ε      flow-size skew adjustment (rule 1): a coflow whose flows are all
//          near ℓ_max keeps machines busy longest; a skewed coflow (one
//          elephant among mice) blocks less than ℓ_max·n suggests.
//   ℓ_max  vertical dimension: size of the largest flow.
//   n      horizontal dimension: number of flows.
//
// The online variant (eq. 3) replaces every term with the receiver-observed
// approximation and subtracts a critical-path bonus β·α (rule 4). The
// paper's "− β·α" with β ≤ 1 is dimensionally negligible against ℓ_max·n
// (bytes), so we implement the bonus as the multiplicative discount
// Ψ' = Ψ·(1 − β·α), which realizes the stated intent — prioritize
// critical-path coflows whose blocking effect is marginally larger than the
// least — and reduces to the paper's expression under normalization.
// (Interpretation recorded in DESIGN.md §6.)
#pragma once

#include "common/units.h"

namespace gurita {

/// ω for the clairvoyant scheduler: 1 − k/k_total, where k is the number of
/// completed stages and k_total the job's total stages. Reaches 0 at the
/// final stage boundary (rule 3: jobs at the end finish quickly). We clamp
/// to a small positive floor so Ψ stays ordered among final-stage coflows.
[[nodiscard]] double omega_clairvoyant(int completed_stages, int total_stages);

/// ω̈ for the online scheduler, where k_total is unknown a priori:
/// ω̈ = 1/(1+k). "The influence diminishes as k → ∞ to prevent false
/// positives of nearing the final stage caused by jobs with many stages."
[[nodiscard]] double omega_online(int completed_stages);

/// ε from flow-size skew: d = ℓ_avg/ℓ_max ∈ (0, 1];  ε = 1 − γ^d
/// (γ ∈ (0,1)). Uniform coflows (d → 1) approach 1 − γ (strong blocking);
/// highly skewed coflows (d → 0) approach 0. `paper_literal` switches the
/// d ≥ 1 branch to the paper's literal "0.1·γ" figure (ablation only; the
/// text is ambiguous there — see DESIGN.md).
[[nodiscard]] double epsilon_skew(Bytes ell_avg, Bytes ell_max, double gamma,
                                  bool paper_literal = false);

struct BlockingInputs {
  double omega = 1.0;     ///< final-stage weight (either variant)
  double epsilon = 1.0;   ///< flow-size skew adjustment
  Bytes ell_max = 0;      ///< (observed) largest flow size, bytes
  double width = 0;       ///< (observed) number of flows
  bool on_critical_path = false;  ///< α
  double beta = 0;        ///< critical-path discount in (0, 1]
};

/// Ψ_c. Non-negative; larger = more blocking = lower priority.
[[nodiscard]] double blocking_effect(const BlockingInputs& in);

}  // namespace gurita
