#include "core/adaptive_thresholds.h"

#include <algorithm>

namespace gurita {

AdaptiveThresholds::AdaptiveThresholds(int queues, std::size_t capacity,
                                       std::size_t refresh_every)
    : queues_(queues), capacity_(capacity), refresh_every_(refresh_every) {
  GURITA_CHECK_MSG(queues >= 1, "need at least one queue");
  GURITA_CHECK_MSG(capacity >= static_cast<std::size_t>(queues),
                   "reservoir must hold at least one sample per queue");
  GURITA_CHECK_MSG(refresh_every >= 1, "refresh_every must be positive");
  reservoir_.reserve(capacity);
}

void AdaptiveThresholds::observe(double psi) {
  GURITA_CHECK_MSG(psi >= 0, "negative blocking effect");
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(psi);
  } else {
    reservoir_[next_slot_] = psi;
    next_slot_ = (next_slot_ + 1) % capacity_;
  }
  ++total_;
  if (++since_refresh_ >= refresh_every_ ||
      boundaries_.empty()) {  // bootstrap eagerly, then refresh periodically
    refresh();
    since_refresh_ = 0;
  }
}

void AdaptiveThresholds::refresh() {
  if (reservoir_.size() < static_cast<std::size_t>(queues_)) return;
  std::vector<double> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  boundaries_.clear();
  boundaries_.reserve(static_cast<std::size_t>(queues_) - 1);
  // Boundary i at quantile (i+1)/queues of the empirical Ψ distribution.
  for (int i = 1; i < queues_; ++i) {
    const std::size_t rank = std::min(
        sorted.size() - 1,
        sorted.size() * static_cast<std::size_t>(i) / static_cast<std::size_t>(queues_));
    boundaries_.push_back(sorted[rank]);
  }
}

int AdaptiveThresholds::level(double x) const {
  GURITA_CHECK_MSG(x >= 0, "negative signal value");
  int lvl = 0;
  for (double b : boundaries_) {
    if (x >= b && lvl + 1 < queues_) {
      ++lvl;
    } else {
      break;
    }
  }
  return lvl;
}

}  // namespace gurita
