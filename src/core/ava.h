// Average Value Approximation (AVA) critical-path estimation (§IV.B).
//
// Without the job structure, Gurita cannot compute the critical path
// exactly. The paper observes that critical paths are dominated by coflows
// with large CCTs, and CCT is driven by ℓ_max; since ℓ_max "behaves like a
// random variable" online, AVA replaces it by its running mean: a coflow
// whose observed ℓ̈_max is at or above the mean of all ℓ̈_max observations so
// far is flagged as *possibly on a critical path* (α = 1). The paper bounds
// observations per job by the average production job depth (k_total < 5).
#pragma once

#include <cstddef>
#include <cstdint>

#include "snapshot/codec.h"

namespace gurita {

class AvaEstimator {
 public:
  /// Feeds one ℓ̈_max observation (bytes, >= 0).
  void observe(double ell_max);

  /// α: is a coflow with this ℓ̈_max likely on a critical path?
  /// Conservative before any observations (returns false).
  [[nodiscard]] bool likely_critical(double ell_max) const;

  [[nodiscard]] double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] std::size_t observations() const { return n_; }

  /// Checkpoint hooks (DESIGN.md §12): the running mean is learned state.
  void save_state(snapshot::Writer& w) const {
    w.f64(sum_);
    w.u64(static_cast<std::uint64_t>(n_));
  }
  void load_state(snapshot::Reader& r) {
    sum_ = r.f64();
    n_ = static_cast<std::size_t>(r.u64());
  }

 private:
  double sum_ = 0;
  std::size_t n_ = 0;
};

}  // namespace gurita
