// Exact optimum for the single-machine abstraction of FFS-MJ (§III.B) —
// the yardstick behind the paper's "near optimal" claim.
//
// Model: n jobs are present at time zero; each job is a *chain* of stages
// with known processing demands (seconds on the machine). One machine
// serves one stage at a time, non-preemptively; a job's next stage becomes
// available when its previous stage completes (constraint 1.a collapsed to
// a chain); the machine never idles. Objective: minimize average JCT.
//
// General FFS-MJ is NP-hard (Theorem 1), but this single-machine collapse
// admits exact dynamic programming over progress vectors: the elapsed time
// at a state is the sum of all completed stage demands (work conservation),
// so states are just "how many stages each job has finished" —
// Π(stages_i + 1) states, each with n transitions.
//
// Alongside the optimum we evaluate the three policies the paper's
// motivation contrasts (Fig. 2): FIFO, job-level SJF by total bytes (the
// TBS strawman) and per-stage smallest-demand-first (the LBEF idea reduced
// to this model), so benches can quantify "near optimal" directly.
#pragma once

#include <vector>

namespace gurita {

struct StagedJob {
  /// Sequential stage demands in machine-seconds; all > 0.
  std::vector<double> stage_demand;

  [[nodiscard]] double total() const {
    double t = 0;
    for (double d : stage_demand) t += d;
    return t;
  }
};

/// Minimum achievable average JCT (exact, DP). Jobs must be non-empty with
/// positive stage demands; state-space size Π(stages+1) must stay sane
/// (guarded at ~50M states).
[[nodiscard]] double optimal_average_jct(const std::vector<StagedJob>& jobs);

/// FIFO: jobs run to completion in input order.
[[nodiscard]] double fifo_average_jct(const std::vector<StagedJob>& jobs);

/// Job-level shortest-job-first by *total* demand, run to completion —
/// the total-bytes-sent strawman.
[[nodiscard]] double sjf_tbs_average_jct(const std::vector<StagedJob>& jobs);

/// Per-stage greedy: whenever the machine frees, run the available stage
/// with the smallest demand (stage-level SJF — the kernel of LBEF's
/// rule 1/2 in one dimension).
[[nodiscard]] double stage_greedy_average_jct(
    const std::vector<StagedJob>& jobs);

}  // namespace gurita
