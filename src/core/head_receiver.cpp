#include "core/head_receiver.h"

#include <algorithm>

#include "common/check.h"

namespace gurita {

void HeadReceiver::update(const SimState& state, Time now) {
  const SimJob& job = state.job(job_);
  last_update_ = now;
  completed_stages_ = job.completed_stages;
  observations_.clear();

  for (std::size_t i = 0; i < job.coflows.size(); ++i) {
    const SimCoflow& c = state.coflow(job.coflows[i]);
    if (!c.released() || c.finished()) continue;

    CoflowObservation obs;
    obs.stage = c.stage;
    // A receiver observes bytes received so far, for open and closed
    // connections alike; open-connection count covers active flows only.
    // All three signals come from the engine's incremental per-coflow
    // aggregates instead of a per-flow re-summation.
    const Bytes total_seen = state.coflow_bytes_sent(c.id);
    obs.open_connections = state.coflow_open_connections(c.id);
    obs.ell_max_observed = state.coflow_ell_max(c.id);
    obs.ell_avg_observed =
        c.flows.empty() ? 0.0 : total_seen / static_cast<double>(c.flows.size());
    obs.bytes_received = total_seen;
    observations_.emplace(c.id, obs);
  }
}

const CoflowObservation& HeadReceiver::observation(CoflowId id) const {
  const auto it = observations_.find(id);
  GURITA_CHECK_MSG(it != observations_.end(),
                   "no HR observation for this coflow");
  return it->second;
}

}  // namespace gurita
