#include "core/head_receiver.h"

#include <algorithm>

#include "common/check.h"

namespace gurita {

void HeadReceiver::update(const SimState& state, Time now) {
  const SimJob& job = state.job(job_);
  last_update_ = now;
  completed_stages_ = job.completed_stages;
  observations_.clear();

  for (std::size_t i = 0; i < job.coflows.size(); ++i) {
    const SimCoflow& c = state.coflow(job.coflows[i]);
    if (!c.released() || c.finished()) continue;

    CoflowObservation obs;
    obs.stage = c.stage;
    // A receiver observes bytes received so far, for open and closed
    // connections alike; open-connection count covers active flows only.
    // All three signals come from the engine's incremental per-coflow
    // aggregates instead of a per-flow re-summation.
    const Bytes total_seen = state.coflow_bytes_sent(c.id);
    obs.open_connections = state.coflow_open_connections(c.id);
    obs.ell_max_observed = state.coflow_ell_max(c.id);
    obs.ell_avg_observed =
        c.flows.empty() ? 0.0 : total_seen / static_cast<double>(c.flows.size());
    obs.bytes_received = total_seen;
    observations_.emplace(c.id, obs);
  }
}

const CoflowObservation& HeadReceiver::observation(CoflowId id) const {
  const auto it = observations_.find(id);
  GURITA_CHECK_MSG(it != observations_.end(),
                   "no HR observation for this coflow");
  return it->second;
}

void HeadReceiver::save_state(snapshot::Writer& w) const {
  w.f64(last_update_);
  w.i32(completed_stages_);
  w.u64(observations_.size());
  for (const auto& [cid, obs] : observations_) {
    w.u64(cid.value());
    w.i32(obs.stage);
    w.f64(obs.open_connections);
    w.f64(obs.ell_max_observed);
    w.f64(obs.ell_avg_observed);
    w.f64(obs.bytes_received);
  }
}

void HeadReceiver::load_state(snapshot::Reader& r) {
  last_update_ = r.f64();
  completed_stages_ = r.i32();
  observations_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const CoflowId cid{r.u64()};
    CoflowObservation obs;
    obs.stage = r.i32();
    obs.open_connections = r.f64();
    obs.ell_max_observed = r.f64();
    obs.ell_avg_observed = r.f64();
    obs.bytes_received = r.f64();
    observations_.emplace(cid, obs);
  }
}

}  // namespace gurita
