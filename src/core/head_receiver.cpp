#include "core/head_receiver.h"

#include <algorithm>

#include "common/check.h"

namespace gurita {

void HeadReceiver::update(const SimState& state, Time now) {
  const SimJob& job = state.job(job_);
  last_update_ = now;
  completed_stages_ = job.completed_stages;
  observations_.clear();

  for (std::size_t i = 0; i < job.coflows.size(); ++i) {
    const SimCoflow& c = state.coflow(job.coflows[i]);
    if (!c.released() || c.finished()) continue;

    CoflowObservation obs;
    obs.stage = c.stage;
    Bytes max_seen = 0;
    Bytes total_seen = 0;
    int open = 0;
    for (FlowId fid : c.flows) {
      const SimFlow& f = state.flow(fid);
      // A receiver observes bytes received so far, for open and closed
      // connections alike; open-connection count covers active flows only.
      max_seen = std::max(max_seen, f.bytes_sent());
      total_seen += f.bytes_sent();
      if (f.active()) ++open;
    }
    obs.open_connections = open;
    obs.ell_max_observed = max_seen;
    obs.ell_avg_observed =
        c.flows.empty() ? 0.0 : total_seen / static_cast<double>(c.flows.size());
    obs.bytes_received = total_seen;
    observations_.emplace(c.id, obs);
  }
}

const CoflowObservation& HeadReceiver::observation(CoflowId id) const {
  const auto it = observations_.find(id);
  GURITA_CHECK_MSG(it != observations_.end(),
                   "no HR observation for this coflow");
  return it->second;
}

}  // namespace gurita
