#include "core/blocking_effect.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gurita {

namespace {
// Keeps ω strictly positive so Ψ remains ordered within the final stage.
constexpr double kOmegaFloor = 1e-3;
}  // namespace

double omega_clairvoyant(int completed_stages, int total_stages) {
  GURITA_CHECK_MSG(total_stages >= 1, "job must have at least one stage");
  GURITA_CHECK_MSG(completed_stages >= 0 && completed_stages <= total_stages,
                   "completed stages out of range");
  const double w = 1.0 - static_cast<double>(completed_stages) /
                             static_cast<double>(total_stages);
  return std::max(w, kOmegaFloor);
}

double omega_online(int completed_stages) {
  GURITA_CHECK_MSG(completed_stages >= 0, "negative completed stages");
  return 1.0 / (1.0 + static_cast<double>(completed_stages));
}

double epsilon_skew(Bytes ell_avg, Bytes ell_max, double gamma,
                    bool paper_literal) {
  GURITA_CHECK_MSG(gamma > 0.0 && gamma < 1.0, "gamma must be in (0,1)");
  GURITA_CHECK_MSG(ell_avg >= 0 && ell_max >= 0, "negative flow sizes");
  if (ell_max <= 0) return 1.0 - gamma;  // nothing observed yet: neutral
  const double d = std::min(1.0, ell_avg / ell_max);
  if (paper_literal && d >= 1.0) return 0.1 * gamma;
  return 1.0 - std::pow(gamma, d);
}

double blocking_effect(const BlockingInputs& in) {
  GURITA_CHECK_MSG(in.omega >= 0 && in.epsilon >= 0, "negative Ψ factors");
  GURITA_CHECK_MSG(in.ell_max >= 0 && in.width >= 0, "negative Ψ dimensions");
  GURITA_CHECK_MSG(in.beta >= 0 && in.beta <= 1, "beta out of (0,1]");
  double psi = in.omega * in.epsilon * in.ell_max * in.width;
  if (in.on_critical_path) psi *= (1.0 - in.beta);
  return psi;
}

}  // namespace gurita
