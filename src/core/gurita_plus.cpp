#include "core/gurita_plus.h"

#include <algorithm>
#include <map>

#include "coflow/critical_path.h"
#include "core/blocking_effect.h"
#include "core/starvation.h"

namespace gurita {

GuritaPlusScheduler::GuritaPlusScheduler(const Config& config)
    : config_(config),
      thresholds_(config.queues, config.first_threshold, config.multiplier) {}

void GuritaPlusScheduler::on_job_arrival(const SimJob& job, Time now) {
  (void)now;
  const CriticalPathInfo info = compute_critical_path(
      job.spec, estimated_cct_costs(job.spec, config_.line_rate));
  on_critical_.emplace(job.id, info.on_critical);
}

void GuritaPlusScheduler::on_coflow_finish(const SimCoflow& coflow, Time now) {
  (void)now;
  last_queue_.erase(coflow.id);
}

void GuritaPlusScheduler::on_fault(const FaultEvent& event, Time now) {
  (void)now;
  if (event.kind != FaultKind::kSchedulerStateLoss) return;
  // Queues are re-derived from exact state next assign(); only the tracing
  // baseline resets (live coflows re-announce their queue as a fresh
  // sighting). on_critical_ is spec-derived and deliberately kept.
  last_queue_.clear();
}

void GuritaPlusScheduler::on_job_fail(const SimJob& job, Time now) {
  (void)now;
  on_critical_.erase(job.id);
  for (CoflowId cid : job.coflows) last_queue_.erase(cid);
}

void GuritaPlusScheduler::on_compact(const CompactionRemap& remap) {
  remap_table(on_critical_, remap.job_map);
  remap_table(last_queue_, remap.coflow_map);
}

void GuritaPlusScheduler::assign(Time now, const std::vector<SimFlow*>& active) {
  // Exact per-stage blocking effect from in-flight (remaining) bytes.
  // Key: (job, stage) -> Ψ_J(k).
  struct CoflowAgg {
    Bytes ell_max = 0;
    Bytes total = 0;
    double width = 0;
    int stage = 1;
    JobId job;
    int index = 0;
    BlockingInputs in;  ///< filled by the Ψ pass; read back when tracing
  };
  std::map<std::uint64_t, CoflowAgg> agg;  // by coflow id value
  for (const SimFlow* f : active) {
    const SimJob& job = state().job(f->job);
    const CoflowId cid = job.coflows[f->coflow_index];
    CoflowAgg& a = agg[cid.value()];
    const Bytes remaining = f->remaining_at(now);
    a.ell_max = std::max(a.ell_max, remaining);
    a.total += remaining;
    a.width += 1.0;
    a.stage = state().coflow(cid).stage;
    a.job = f->job;
    a.index = f->coflow_index;
  }

  std::map<std::pair<std::uint64_t, int>, double> psi_stage;
  for (auto& [cid, a] : agg) {
    (void)cid;
    const SimJob& job = state().job(a.job);
    BlockingInputs in;
    in.omega = omega_clairvoyant(job.completed_stages, job.num_stages);
    in.epsilon = epsilon_skew(a.width > 0 ? a.total / a.width : 0.0, a.ell_max,
                              config_.gamma);
    in.ell_max = a.ell_max;
    in.width = a.width;
    in.beta = config_.beta;
    in.on_critical_path =
        config_.use_critical_path &&
        on_critical_.at(a.job)[static_cast<std::size_t>(a.index)];
    psi_stage[{a.job.value(), a.stage}] += blocking_effect(in);
    a.in = in;
  }

  // Queue per coflow = thresholded per-stage Ψ (freely adjustable). agg is
  // an ordered map, so trace records come out in ascending coflow id.
  obs::TraceRecorder* tr = trace_recorder();
  const bool trace_queues =
      tr != nullptr && tr->wants(obs::TraceEventKind::kQueueChange);
  std::map<std::uint64_t, int> queue_of_coflow;
  for (const auto& [cid, a] : agg) {
    const double psi = psi_stage.at({a.job.value(), a.stage});
    const int q = thresholds_.level(psi);
    queue_of_coflow[cid] = q;
    if (trace_queues) {
      auto [it, first_sight] = last_queue_.emplace(CoflowId{cid}, -1);
      if (it->second != q) {
        obs::TraceRecord r;
        r.kind = obs::TraceEventKind::kQueueChange;
        r.time = now;
        r.job = a.job.value();
        r.coflow = cid;
        r.v0 = a.in.omega;
        r.v1 = a.in.epsilon;
        r.v2 = a.in.ell_max;
        r.v3 = a.in.width;
        r.v4 = a.in.on_critical_path ? 1.0 - a.in.beta : 1.0;
        r.v5 = psi;
        r.i0 = it->second;
        r.i1 = q;
        r.i2 = static_cast<std::int32_t>(first_sight
                                             ? obs::QueueChangeCause::kRelease
                                             : obs::QueueChangeCause::kRecompute);
        tr->emit(r);
        it->second = q;
      }
    }
  }

  std::vector<int> queue_of_flow(active.size(), 0);
  std::vector<double> demand(static_cast<std::size_t>(config_.queues), 0.0);
  for (std::size_t i = 0; i < active.size(); ++i) {
    const SimFlow* f = active[i];
    const SimJob& job = state().job(f->job);
    const CoflowId cid = job.coflows[f->coflow_index];
    const int q = queue_of_coflow.at(cid.value());
    queue_of_flow[i] = q;
    demand[static_cast<std::size_t>(q)] += 1.0;
  }

  if (!config_.starvation_mitigation) {
    for (std::size_t i = 0; i < active.size(); ++i) {
      active[i]->tier = queue_of_flow[i];
      active[i]->weight = 1.0;
    }
    return;
  }
  const std::vector<double> weights = wrr_weights_from_demand(
      demand, config_.wrr_total_utilization, config_.wrr_min_queue_ratio);
  for (std::size_t i = 0; i < active.size(); ++i) {
    const int q = queue_of_flow[i];
    active[i]->tier = 0;
    active[i]->weight = std::max(
        weights[static_cast<std::size_t>(q)] / demand[static_cast<std::size_t>(q)],
        1e-9);
  }
}

void GuritaPlusScheduler::save_state(snapshot::Writer& w) const {
  std::vector<std::pair<JobId, std::vector<bool>>> critical(
      on_critical_.begin(), on_critical_.end());
  std::sort(critical.begin(), critical.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(critical.size());
  for (const auto& [jid, flags] : critical) {
    w.u64(jid.value());
    w.u64(flags.size());
    for (bool f : flags) w.boolean(f);
  }
  std::vector<std::pair<CoflowId, int>> queues(last_queue_.begin(),
                                               last_queue_.end());
  std::sort(queues.begin(), queues.end());
  w.u64(queues.size());
  for (const auto& [cid, q] : queues) {
    w.u64(cid.value());
    w.i32(q);
  }
}

void GuritaPlusScheduler::load_state(snapshot::Reader& r) {
  on_critical_.clear();
  const std::uint64_t n_critical = r.u64();
  for (std::uint64_t i = 0; i < n_critical; ++i) {
    const JobId jid{r.u64()};
    std::vector<bool> flags(static_cast<std::size_t>(r.u64()));
    for (std::size_t k = 0; k < flags.size(); ++k) flags[k] = r.boolean();
    on_critical_.emplace(jid, std::move(flags));
  }
  last_queue_.clear();
  const std::uint64_t n_queues = r.u64();
  for (std::uint64_t i = 0; i < n_queues; ++i) {
    const CoflowId cid{r.u64()};
    last_queue_.emplace(cid, r.i32());
  }
}

}  // namespace gurita
