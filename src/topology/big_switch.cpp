#include "topology/big_switch.h"

namespace gurita {

BigSwitch::BigSwitch(const Config& config) : num_hosts_(config.num_hosts) {
  GURITA_CHECK_MSG(config.num_hosts >= 2, "big switch needs >= 2 hosts");
  GURITA_CHECK_MSG(config.port_rate > 0, "port rate must be positive");
  core_ = topo_.add_node(NodeKind::kCoreSwitch, -1, 0);
  hosts_.reserve(static_cast<std::size_t>(num_hosts_));
  uplinks_.reserve(static_cast<std::size_t>(num_hosts_));
  downlinks_.reserve(static_cast<std::size_t>(num_hosts_));
  for (int h = 0; h < num_hosts_; ++h) {
    const NodeId host = topo_.add_node(NodeKind::kHost, 0, h);
    hosts_.push_back(host);
    uplinks_.push_back(topo_.add_link(host, core_, config.port_rate));
    downlinks_.push_back(topo_.add_link(core_, host, config.port_rate));
  }
}

LinkId BigSwitch::uplink(int host) const {
  GURITA_CHECK_MSG(host >= 0 && host < num_hosts_, "host out of range");
  return uplinks_[static_cast<std::size_t>(host)];
}

LinkId BigSwitch::downlink(int host) const {
  GURITA_CHECK_MSG(host >= 0 && host < num_hosts_, "host out of range");
  return downlinks_[static_cast<std::size_t>(host)];
}

std::vector<LinkId> BigSwitch::route(FlowId flow, int src_host,
                                     int dst_host) const {
  (void)flow;  // a single path exists; nothing to hash
  GURITA_CHECK_MSG(src_host != dst_host, "route between identical hosts");
  return {uplink(src_host), downlink(dst_host)};
}

}  // namespace gurita
