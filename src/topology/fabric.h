// Fabric abstraction: what the flow simulator needs from a network — a
// directed capacity graph, a host count, and a (stable-per-flow) route
// between two hosts.
//
// Two concrete fabrics implement it:
//  * FatTree (fattree.h) — the paper's evaluation topology, routed by ECMP;
//  * BigSwitch (big_switch.h) — the non-blocking "datacenter fabric as one
//    big switch" abstraction of §II used by the Varys/Aalo line of work,
//    where only host ingress/egress ports can congest.
#pragma once

#include <vector>

#include "common/ids.h"
#include "topology/graph.h"

namespace gurita {

class Fabric {
 public:
  virtual ~Fabric() = default;

  [[nodiscard]] virtual const Topology& topology() const = 0;
  [[nodiscard]] virtual int num_hosts() const = 0;

  /// Directed link path from src_host to dst_host for `flow`; must be
  /// stable for a given (flow, src, dst) triple. Precondition: src != dst,
  /// both in [0, num_hosts()).
  [[nodiscard]] virtual std::vector<LinkId> route(FlowId flow, int src_host,
                                                  int dst_host) const = 0;
};

}  // namespace gurita
