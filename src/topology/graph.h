// Generic directed network graph: nodes (hosts / switches) and directed
// capacity-bearing links. The fat-tree builder (fattree.h) populates this;
// the flow simulator consumes it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"

namespace gurita {

enum class NodeKind { kHost, kEdgeSwitch, kAggSwitch, kCoreSwitch };

[[nodiscard]] const char* to_string(NodeKind kind);

struct Node {
  NodeId id;
  NodeKind kind = NodeKind::kHost;
  /// Pod number for host/edge/agg nodes; -1 for core switches.
  int pod = -1;
  /// Index of the node within its (kind, pod) group.
  int index = 0;
};

/// A directed, fixed-capacity link. Full-duplex cables are modeled as two
/// independent directed links.
struct Link {
  LinkId id;
  NodeId src;
  NodeId dst;
  Rate capacity = 0;
};

/// An immutable-after-build directed graph.
class Topology {
 public:
  NodeId add_node(NodeKind kind, int pod, int index);
  LinkId add_link(NodeId src, NodeId dst, Rate capacity);
  /// Adds both directions with the same capacity; returns the forward link.
  LinkId add_duplex(NodeId a, NodeId b, Rate capacity);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const {
    GURITA_CHECK_MSG(id.value() < nodes_.size(), "node id out of range");
    return nodes_[id.value()];
  }
  [[nodiscard]] const Link& link(LinkId id) const {
    GURITA_CHECK_MSG(id.value() < links_.size(), "link id out of range");
    return links_[id.value()];
  }

  /// LinkId for the directed edge src -> dst; invalid() if absent.
  [[nodiscard]] LinkId find_link(NodeId src, NodeId dst) const;

  /// All links leaving `node`.
  [[nodiscard]] const std::vector<LinkId>& out_links(NodeId node) const;

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// Number of nodes of the given kind.
  [[nodiscard]] std::size_t count(NodeKind kind) const;

 private:
  static std::uint64_t key(NodeId src, NodeId dst) {
    return (src.value() << 32) | (dst.value() & 0xffffffffULL);
  }
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_;
  std::unordered_map<std::uint64_t, LinkId> by_endpoints_;
};

}  // namespace gurita
