// Equal-Cost Multi-Path (ECMP) routing over the fat-tree.
//
// Real switches hash the 5-tuple to pick among equal-cost next hops; we hash
// the (flow id, src, dst) triple — stable for a flow's lifetime, independent
// across flows — and let the fat-tree resolve the hash into a concrete path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "topology/fattree.h"

namespace gurita {

class EcmpRouter {
 public:
  /// `salt` perturbs the hash so experiments can vary routing independently
  /// of workload randomness.
  explicit EcmpRouter(const FatTree& fabric, std::uint64_t salt = 0)
      : fabric_(&fabric), salt_(salt) {}

  /// Path for `flow` from src_host to dst_host (host indices).
  [[nodiscard]] std::vector<LinkId> route(FlowId flow, int src_host,
                                          int dst_host) const;

  /// The hash ECMP would use for this flow (exposed for tests).
  [[nodiscard]] std::uint64_t hash(FlowId flow, int src_host,
                                   int dst_host) const;

 private:
  const FatTree* fabric_;
  std::uint64_t salt_;
};

}  // namespace gurita
