// k-ary fat-tree datacenter topology (Al-Fares et al., SIGCOMM 2008),
// the topology used in the paper's evaluation: 8 pods → 128 servers and
// 80 switches; 48 pods → 27,648 servers and 2,880 switches.
//
// Layout for even k:
//   - k pods; each pod has k/2 edge switches and k/2 aggregation switches;
//   - each edge switch serves k/2 hosts → k^3/4 hosts total;
//   - (k/2)^2 core switches in k/2 groups of k/2; core group g attaches to
//     aggregation switch g of every pod.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "topology/fabric.h"
#include "topology/graph.h"

namespace gurita {

class FatTree final : public Fabric {
 public:
  struct Config {
    int k = 8;                         ///< pod count; must be even, >= 2
    Rate link_capacity = gbps(10.0);   ///< uniform everywhere (10G switches)
    std::uint64_t ecmp_salt = 0;       ///< perturbs ECMP hashing
  };

  explicit FatTree(const Config& config);

  [[nodiscard]] const Topology& topology() const override { return topo_; }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int num_hosts() const override { return k_ * k_ * k_ / 4; }

  /// ECMP route (Fabric interface): hashes (flow, src, dst) with the
  /// configured salt into one of the equal-cost paths.
  [[nodiscard]] std::vector<LinkId> route(FlowId flow, int src_host,
                                          int dst_host) const override;
  [[nodiscard]] int num_switches() const {
    return k_ * k_ + k_ * k_ / 4;  // k*(k/2 edge + k/2 agg) + (k/2)^2 core
  }

  /// NodeId of host `h` in [0, num_hosts).
  [[nodiscard]] NodeId host(int h) const;
  [[nodiscard]] int pod_of_host(int h) const;
  /// Edge switch serving host `h`.
  [[nodiscard]] NodeId edge_of_host(int h) const;

  [[nodiscard]] NodeId edge_switch(int pod, int index) const;
  [[nodiscard]] NodeId agg_switch(int pod, int index) const;
  /// Core switch in group `group` (attached to agg index `group`), member
  /// `member`, both in [0, k/2).
  [[nodiscard]] NodeId core_switch(int group, int member) const;

  /// Shortest path (as directed link ids) from src host to dst host.
  /// `up_choice` / `core_choice` pick among the equal-cost alternatives
  /// (callers hash flow identity into them; ECMP lives in ecmp.h).
  /// Precondition: src_host != dst_host.
  [[nodiscard]] std::vector<LinkId> path(int src_host, int dst_host,
                                         std::uint64_t up_choice,
                                         std::uint64_t core_choice) const;

  /// Number of equal-cost paths between two distinct hosts.
  [[nodiscard]] std::size_t path_count(int src_host, int dst_host) const;

 private:
  int k_;
  int half_;  // k/2
  std::uint64_t ecmp_salt_;
  Topology topo_;
  std::vector<NodeId> hosts_;
  std::vector<NodeId> edges_;  // pod-major: pod * half_ + index
  std::vector<NodeId> aggs_;   // pod-major
  std::vector<NodeId> cores_;  // group-major: group * half_ + member
  void check_host(int h) const;
};

}  // namespace gurita
