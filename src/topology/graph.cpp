#include "topology/graph.h"

namespace gurita {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kHost:
      return "host";
    case NodeKind::kEdgeSwitch:
      return "edge";
    case NodeKind::kAggSwitch:
      return "agg";
    case NodeKind::kCoreSwitch:
      return "core";
  }
  return "?";
}

NodeId Topology::add_node(NodeKind kind, int pod, int index) {
  const NodeId id{nodes_.size()};
  nodes_.push_back(Node{id, kind, pod, index});
  out_.emplace_back();
  return id;
}

LinkId Topology::add_link(NodeId src, NodeId dst, Rate capacity) {
  GURITA_CHECK_MSG(src.value() < nodes_.size(), "link src out of range");
  GURITA_CHECK_MSG(dst.value() < nodes_.size(), "link dst out of range");
  GURITA_CHECK_MSG(src != dst, "self loop");
  GURITA_CHECK_MSG(capacity > 0, "link capacity must be positive");
  GURITA_CHECK_MSG(!find_link(src, dst).valid(), "duplicate link");
  const LinkId id{links_.size()};
  links_.push_back(Link{id, src, dst, capacity});
  out_[src.value()].push_back(id);
  by_endpoints_.emplace(key(src, dst), id);
  return id;
}

LinkId Topology::add_duplex(NodeId a, NodeId b, Rate capacity) {
  const LinkId forward = add_link(a, b, capacity);
  add_link(b, a, capacity);
  return forward;
}

LinkId Topology::find_link(NodeId src, NodeId dst) const {
  const auto it = by_endpoints_.find(key(src, dst));
  return it == by_endpoints_.end() ? LinkId::invalid() : it->second;
}

const std::vector<LinkId>& Topology::out_links(NodeId node) const {
  GURITA_CHECK_MSG(node.value() < out_.size(), "node id out of range");
  return out_[node.value()];
}

std::size_t Topology::count(NodeKind kind) const {
  std::size_t n = 0;
  for (const Node& node : nodes_) {
    if (node.kind == kind) ++n;
  }
  return n;
}

}  // namespace gurita
