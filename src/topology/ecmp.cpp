#include "topology/ecmp.h"

namespace gurita {

namespace {
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

std::uint64_t EcmpRouter::hash(FlowId flow, int src_host,
                               int dst_host) const {
  std::uint64_t h = salt_ ^ 0x9e3779b97f4a7c15ULL;
  h = mix(h ^ flow.value());
  h = mix(h ^ static_cast<std::uint64_t>(src_host));
  h = mix(h ^ static_cast<std::uint64_t>(dst_host));
  return h;
}

std::vector<LinkId> EcmpRouter::route(FlowId flow, int src_host,
                                      int dst_host) const {
  const std::uint64_t h = hash(flow, src_host, dst_host);
  // Split the hash into two independent choices (up path, core member).
  return fabric_->path(src_host, dst_host, h & 0xffffffffULL, h >> 32);
}

}  // namespace gurita
