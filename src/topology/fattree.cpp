#include "topology/fattree.h"

#include "topology/ecmp.h"

namespace gurita {

std::vector<LinkId> FatTree::route(FlowId flow, int src_host,
                                   int dst_host) const {
  return EcmpRouter(*this, ecmp_salt_).route(flow, src_host, dst_host);
}

FatTree::FatTree(const Config& config)
    : k_(config.k), half_(config.k / 2), ecmp_salt_(config.ecmp_salt) {
  GURITA_CHECK_MSG(k_ >= 2 && k_ % 2 == 0, "fat-tree k must be even, >= 2");
  GURITA_CHECK_MSG(config.link_capacity > 0, "capacity must be positive");

  const int hosts_per_pod = half_ * half_;
  hosts_.reserve(static_cast<std::size_t>(k_) * hosts_per_pod);
  edges_.reserve(static_cast<std::size_t>(k_) * half_);
  aggs_.reserve(static_cast<std::size_t>(k_) * half_);
  cores_.reserve(static_cast<std::size_t>(half_) * half_);

  for (int pod = 0; pod < k_; ++pod) {
    for (int e = 0; e < half_; ++e)
      edges_.push_back(topo_.add_node(NodeKind::kEdgeSwitch, pod, e));
    for (int a = 0; a < half_; ++a)
      aggs_.push_back(topo_.add_node(NodeKind::kAggSwitch, pod, a));
    for (int h = 0; h < hosts_per_pod; ++h)
      hosts_.push_back(topo_.add_node(NodeKind::kHost, pod, h));
  }
  for (int group = 0; group < half_; ++group) {
    for (int member = 0; member < half_; ++member)
      cores_.push_back(
          topo_.add_node(NodeKind::kCoreSwitch, -1, group * half_ + member));
  }

  // host <-> edge
  for (int h = 0; h < num_hosts(); ++h)
    topo_.add_duplex(hosts_[h], edge_of_host(h), config.link_capacity);
  // edge <-> agg (full bipartite within pod)
  for (int pod = 0; pod < k_; ++pod)
    for (int e = 0; e < half_; ++e)
      for (int a = 0; a < half_; ++a)
        topo_.add_duplex(edge_switch(pod, e), agg_switch(pod, a),
                         config.link_capacity);
  // agg <-> core: agg `g` of each pod connects to all cores in group `g`
  for (int pod = 0; pod < k_; ++pod)
    for (int g = 0; g < half_; ++g)
      for (int m = 0; m < half_; ++m)
        topo_.add_duplex(agg_switch(pod, g), core_switch(g, m),
                         config.link_capacity);
}

void FatTree::check_host(int h) const {
  GURITA_CHECK_MSG(h >= 0 && h < num_hosts(), "host index out of range");
}

NodeId FatTree::host(int h) const {
  check_host(h);
  return hosts_[h];
}

int FatTree::pod_of_host(int h) const {
  check_host(h);
  return h / (half_ * half_);
}

NodeId FatTree::edge_of_host(int h) const {
  check_host(h);
  const int pod = pod_of_host(h);
  const int within = h % (half_ * half_);
  return edge_switch(pod, within / half_);
}

NodeId FatTree::edge_switch(int pod, int index) const {
  GURITA_CHECK_MSG(pod >= 0 && pod < k_ && index >= 0 && index < half_,
                   "edge switch coordinates out of range");
  return edges_[pod * half_ + index];
}

NodeId FatTree::agg_switch(int pod, int index) const {
  GURITA_CHECK_MSG(pod >= 0 && pod < k_ && index >= 0 && index < half_,
                   "agg switch coordinates out of range");
  return aggs_[pod * half_ + index];
}

NodeId FatTree::core_switch(int group, int member) const {
  GURITA_CHECK_MSG(group >= 0 && group < half_ && member >= 0 &&
                       member < half_,
                   "core switch coordinates out of range");
  return cores_[group * half_ + member];
}

std::size_t FatTree::path_count(int src_host, int dst_host) const {
  check_host(src_host);
  check_host(dst_host);
  GURITA_CHECK_MSG(src_host != dst_host, "path between identical hosts");
  if (edge_of_host(src_host) == edge_of_host(dst_host)) return 1;
  if (pod_of_host(src_host) == pod_of_host(dst_host))
    return static_cast<std::size_t>(half_);
  return static_cast<std::size_t>(half_) * half_;
}

std::vector<LinkId> FatTree::path(int src_host, int dst_host,
                                  std::uint64_t up_choice,
                                  std::uint64_t core_choice) const {
  check_host(src_host);
  check_host(dst_host);
  GURITA_CHECK_MSG(src_host != dst_host, "path between identical hosts");

  const NodeId src = hosts_[src_host];
  const NodeId dst = hosts_[dst_host];
  const NodeId src_edge = edge_of_host(src_host);
  const NodeId dst_edge = edge_of_host(dst_host);

  std::vector<LinkId> links;
  const auto push = [&](NodeId a, NodeId b) {
    const LinkId id = topo_.find_link(a, b);
    GURITA_CHECK_MSG(id.valid(), "fat-tree path traversed a missing link");
    links.push_back(id);
  };

  if (src_edge == dst_edge) {
    push(src, src_edge);
    push(src_edge, dst);
    return links;
  }

  const int src_pod = pod_of_host(src_host);
  const int dst_pod = pod_of_host(dst_host);
  const int agg_idx = static_cast<int>(up_choice % static_cast<std::uint64_t>(half_));

  if (src_pod == dst_pod) {
    const NodeId agg = agg_switch(src_pod, agg_idx);
    push(src, src_edge);
    push(src_edge, agg);
    push(agg, dst_edge);
    push(dst_edge, dst);
    return links;
  }

  const int member =
      static_cast<int>(core_choice % static_cast<std::uint64_t>(half_));
  const NodeId up_agg = agg_switch(src_pod, agg_idx);
  const NodeId core = core_switch(agg_idx, member);
  const NodeId down_agg = agg_switch(dst_pod, agg_idx);
  push(src, src_edge);
  push(src_edge, up_agg);
  push(up_agg, core);
  push(core, down_agg);
  push(down_agg, dst_edge);
  push(dst_edge, dst);
  return links;
}

}  // namespace gurita
