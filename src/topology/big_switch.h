// The "one big switch" fabric (§II Settings): a non-blocking core
// connecting N hosts, where the only contention points are the hosts'
// ingress (uplink) and egress (downlink) ports — the abstraction under
// which Varys/Aalo-style analyses reason about coflows.
//
// Realized as N hosts around a single switch node with one duplex link per
// host; every route is exactly [src uplink, dst downlink].
#pragma once

#include "common/units.h"
#include "topology/fabric.h"

namespace gurita {

class BigSwitch final : public Fabric {
 public:
  struct Config {
    int num_hosts = 128;
    Rate port_rate = gbps(10.0);
  };

  explicit BigSwitch(const Config& config);

  [[nodiscard]] const Topology& topology() const override { return topo_; }
  [[nodiscard]] int num_hosts() const override { return num_hosts_; }
  [[nodiscard]] std::vector<LinkId> route(FlowId flow, int src_host,
                                          int dst_host) const override;

  /// Uplink (host -> core) of host `h`; the host's sender port.
  [[nodiscard]] LinkId uplink(int host) const;
  /// Downlink (core -> host) of host `h`; the host's receiver port.
  [[nodiscard]] LinkId downlink(int host) const;

 private:
  int num_hosts_;
  Topology topo_;
  NodeId core_;
  std::vector<NodeId> hosts_;
  std::vector<LinkId> uplinks_;
  std::vector<LinkId> downlinks_;
};

}  // namespace gurita
