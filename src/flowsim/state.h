// Runtime state of the flow-level simulation: flows, coflows and jobs with
// their progress, plus the scheduling attributes the active scheduler
// assigns. Schedulers receive `const SimState&` and may only mutate the
// (tier, weight) attributes through the engine's assignment pass.
//
// Lazy byte accounting: the engine does NOT sweep every flow on every
// event. A flow's `remaining` is exact only as of `last_touched` (the last
// time its rate changed); between rate changes it drains linearly at
// `rate`. Use `remaining_at(now)` / `bytes_sent_at(now)` — or the O(1)
// SimState aggregate getters, which fold the linear term in — for values
// that are exact at the current simulation clock (`SimState::now()`).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"
#include "coflow/job.h"

namespace gurita {

/// Priority tier: lower value = strictly higher priority. Tiers express SPQ
/// queues (0..Q-1), Baraat's FIFO batch serials, or composite orderings.
using Tier = std::int64_t;

struct SimFlow {
  FlowId id;
  JobId job;
  /// Local coflow index within the owning job.
  int coflow_index = 0;
  int src_host = 0;
  int dst_host = 0;
  Bytes size = 0;
  /// Residual bytes as of `last_touched` (NOT necessarily as of the current
  /// clock — see remaining_at()).
  Bytes remaining = 0;
  Time start_time = -1;
  Time finish_time = -1;
  std::vector<LinkId> path;

  // --- set by the rate allocator each recomputation ---
  Rate rate = 0;
  /// Settle point of the lazy drain: `remaining` is exact at this instant
  /// and drains at `rate` afterwards. Maintained by the engine at every
  /// rate change and at finish.
  Time last_touched = 0;

  // --- set by the scheduler ---
  Tier tier = 0;
  double weight = 1.0;

  // --- fault bookkeeping (fault/fault.h) ---
  /// Times this flow was aborted by a fault while transmitting; attempt
  /// number of the next retry. Park-at-release (flow born onto a dead
  /// host/link) does not count.
  int attempts = 0;
  /// In-flight bytes lost across all aborts (re-sent on retry).
  Bytes lost_bytes = 0;
  /// When the flow was last aborted; >= 0 exactly while parked or waiting
  /// in the retry queue, -1 while transmitting / finished / cancelled.
  Time abort_time = -1;
  /// Permanently stopped: its job failed. Never transmits again.
  bool cancelled = false;

  [[nodiscard]] bool started() const { return start_time >= 0; }
  [[nodiscard]] bool finished() const { return finish_time >= 0; }
  [[nodiscard]] bool active() const { return started() && !finished(); }
  /// Residual bytes as of the settle point (use remaining_at(now) for a
  /// value that is exact at the current clock).
  [[nodiscard]] Bytes bytes_sent() const { return size - remaining; }
  /// Exact residual bytes at time `now` (>= last_touched): the settled
  /// residue minus the linear drain since the last settle point.
  [[nodiscard]] Bytes remaining_at(Time now) const {
    if (rate <= 0 || now <= last_touched) return remaining;
    const Bytes r = remaining - rate * (now - last_touched);
    return r > 0 ? r : 0.0;
  }
  /// Exact bytes sent at time `now`.
  [[nodiscard]] Bytes bytes_sent_at(Time now) const {
    return size - remaining_at(now);
  }
};

struct SimCoflow {
  CoflowId id;
  JobId job;
  /// Local index within the owning job's JobSpec.
  int index = 0;
  /// 1-based stage of this coflow within the job DAG.
  int stage = 1;
  std::vector<FlowId> flows;
  int flows_remaining = 0;
  int deps_remaining = 0;
  Time release_time = -1;  ///< when dependencies completed and flows started
  Time finish_time = -1;

  [[nodiscard]] bool released() const { return release_time >= 0; }
  [[nodiscard]] bool finished() const { return finish_time >= 0; }
};

struct SimJob {
  JobId id;
  JobSpec spec;
  /// Global coflow ids of this job's coflows, parallel to spec.coflows.
  std::vector<CoflowId> coflows;
  /// 1-based stage per local coflow index.
  std::vector<int> stage_of;
  int num_stages = 1;
  int coflows_remaining = 0;
  Time arrival_time = 0;
  Time finish_time = -1;
  Bytes total_bytes = 0;
  /// A flow of this job exhausted its retry budget (or could never recover);
  /// the job was abandoned at finish_time with its surviving flows
  /// cancelled. Failed jobs are excluded from JCT statistics.
  bool failed = false;

  [[nodiscard]] bool finished() const { return finish_time >= 0; }
  /// Number of fully completed stages: the largest k such that every coflow
  /// with stage <= k has finished. Maintained by the engine.
  int completed_stages = 0;
};

/// The complete simulation state; owned by the engine, read by schedulers.
///
/// Per-coflow aggregates (bytes sent, open connections, settled ℓ̈_max) are
/// maintained incrementally at rate-change and finish boundaries, so the
/// byte-count getters below are O(1) in the number of flows (exact at
/// `now()`, folding in the linear drain term), and `coflow_ell_max` only
/// scans the coflow's still-active flows.
class SimState {
 public:
  [[nodiscard]] const SimFlow& flow(FlowId id) const {
    GURITA_CHECK_MSG(id.value() < flows_.size(), "flow id out of range");
    return flows_[id.value()];
  }
  [[nodiscard]] const SimCoflow& coflow(CoflowId id) const {
    GURITA_CHECK_MSG(id.value() < coflows_.size(), "coflow id out of range");
    return coflows_[id.value()];
  }
  [[nodiscard]] const SimJob& job(JobId id) const {
    GURITA_CHECK_MSG(id.value() < jobs_.size(), "job id out of range");
    return jobs_[id.value()];
  }

  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  [[nodiscard]] std::size_t coflow_count() const { return coflows_.size(); }
  [[nodiscard]] std::size_t job_count() const { return jobs_.size(); }

  /// Current simulation clock (mirrors the engine's event time; all byte
  /// getters below are exact at this instant).
  [[nodiscard]] Time now() const { return now_; }

  /// Bytes sent so far by flow `id`, exact at now(). O(1).
  [[nodiscard]] Bytes flow_bytes_sent(FlowId id) const {
    return flow(id).bytes_sent_at(now_);
  }
  /// Bytes sent so far by coflow `id` (sum over its flows). O(1).
  [[nodiscard]] Bytes coflow_bytes_sent(CoflowId id) const;
  /// Total bytes of coflow `id`.
  [[nodiscard]] Bytes coflow_total_bytes(CoflowId id) const;
  /// Largest per-flow bytes sent of coflow `id` (ℓ̈_max as receivers observe
  /// it). O(active flows of the coflow): finished flows are covered by the
  /// settled running max, active flows are extrapolated to now().
  [[nodiscard]] Bytes coflow_ell_max(CoflowId id) const;
  /// Bytes sent so far by job `id` in stage `stage`. O(coflows of the job).
  [[nodiscard]] Bytes job_stage_bytes_sent(JobId id, int stage) const;
  /// Bytes sent so far by job `id` across all stages (the TBS signal the
  /// paper's baselines schedule on). O(coflows of the job).
  [[nodiscard]] Bytes job_bytes_sent(JobId id) const;
  /// Number of currently transmitting (active) flows of coflow `id` —
  /// "open connections" as observed at receivers. O(1).
  [[nodiscard]] int coflow_open_connections(CoflowId id) const;

 private:
  friend class Simulator;
  /// Recyclable container pack (flowsim/simulator.h): holds this state's
  /// emptied vectors between runs so consecutive simulators on a worker
  /// reuse their capacity instead of re-mallocing it.
  friend class SimBufferPool;
  /// The checkpoint/restore serializer (snapshot/snapshot.cpp): reads and
  /// rebuilds the dynamic fields directly rather than replaying events.
  friend class SnapshotCodec;
  /// The differential-oracle reference engine (tests/oracle_sim.h): a
  /// deliberately simple O(active-flows) re-implementation of the
  /// allocation/drain loop that must maintain this state with bit-identical
  /// arithmetic so real schedulers drive both engines to the same
  /// trajectory. Test-only; never linked into the library.
  friend class OracleSimulator;

  /// Incrementally maintained per-coflow aggregate. Invariant, for every
  /// time t between the last boundary and the next rate change:
  ///   bytes_sent(t) = base_bytes + rate_sum * t - rate_time_sum
  /// where base_bytes = Σ_f bytes_sent(last_touched_f),
  ///       rate_sum   = Σ_f rate_f              (active flows), and
  ///       rate_time_sum = Σ_f rate_f * last_touched_f.
  /// The engine updates all three whenever a flow's rate changes or the
  /// flow finishes ("boundaries"); between boundaries the linear form is
  /// exact because every rate is constant.
  struct CoflowAggregate {
    Bytes base_bytes = 0;
    double rate_sum = 0;
    double rate_time_sum = 0;
    /// Running max of per-flow bytes sent over all settle points; covers
    /// every finished flow exactly (they settle at finish with all bytes).
    Bytes ell_max_settled = 0;
    int open_connections = 0;
  };

  std::vector<SimFlow> flows_;
  std::vector<SimCoflow> coflows_;
  std::vector<SimJob> jobs_;
  std::vector<CoflowAggregate> aggregates_;  ///< parallel to coflows_
  Time now_ = 0;
};

}  // namespace gurita
