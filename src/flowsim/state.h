// Runtime state of the flow-level simulation: flows, coflows and jobs with
// their progress, plus the scheduling attributes the active scheduler
// assigns. Schedulers receive `const SimState&` and may only mutate the
// (tier, weight) attributes through the engine's assignment pass.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"
#include "coflow/job.h"

namespace gurita {

/// Priority tier: lower value = strictly higher priority. Tiers express SPQ
/// queues (0..Q-1), Baraat's FIFO batch serials, or composite orderings.
using Tier = std::int64_t;

struct SimFlow {
  FlowId id;
  JobId job;
  /// Local coflow index within the owning job.
  int coflow_index = 0;
  int src_host = 0;
  int dst_host = 0;
  Bytes size = 0;
  Bytes remaining = 0;
  Time start_time = -1;
  Time finish_time = -1;
  std::vector<LinkId> path;

  // --- set by the rate allocator each recomputation ---
  Rate rate = 0;

  // --- set by the scheduler ---
  Tier tier = 0;
  double weight = 1.0;

  [[nodiscard]] bool started() const { return start_time >= 0; }
  [[nodiscard]] bool finished() const { return finish_time >= 0; }
  [[nodiscard]] bool active() const { return started() && !finished(); }
  [[nodiscard]] Bytes bytes_sent() const { return size - remaining; }
};

struct SimCoflow {
  CoflowId id;
  JobId job;
  /// Local index within the owning job's JobSpec.
  int index = 0;
  /// 1-based stage of this coflow within the job DAG.
  int stage = 1;
  std::vector<FlowId> flows;
  int flows_remaining = 0;
  int deps_remaining = 0;
  Time release_time = -1;  ///< when dependencies completed and flows started
  Time finish_time = -1;

  [[nodiscard]] bool released() const { return release_time >= 0; }
  [[nodiscard]] bool finished() const { return finish_time >= 0; }
};

struct SimJob {
  JobId id;
  JobSpec spec;
  /// Global coflow ids of this job's coflows, parallel to spec.coflows.
  std::vector<CoflowId> coflows;
  /// 1-based stage per local coflow index.
  std::vector<int> stage_of;
  int num_stages = 1;
  int coflows_remaining = 0;
  Time arrival_time = 0;
  Time finish_time = -1;
  Bytes total_bytes = 0;

  [[nodiscard]] bool finished() const { return finish_time >= 0; }
  /// Number of fully completed stages: the largest k such that every coflow
  /// with stage <= k has finished. Maintained by the engine.
  int completed_stages = 0;
};

/// The complete simulation state; owned by the engine, read by schedulers.
class SimState {
 public:
  [[nodiscard]] const SimFlow& flow(FlowId id) const {
    GURITA_CHECK_MSG(id.value() < flows_.size(), "flow id out of range");
    return flows_[id.value()];
  }
  [[nodiscard]] const SimCoflow& coflow(CoflowId id) const {
    GURITA_CHECK_MSG(id.value() < coflows_.size(), "coflow id out of range");
    return coflows_[id.value()];
  }
  [[nodiscard]] const SimJob& job(JobId id) const {
    GURITA_CHECK_MSG(id.value() < jobs_.size(), "job id out of range");
    return jobs_[id.value()];
  }

  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  [[nodiscard]] std::size_t coflow_count() const { return coflows_.size(); }
  [[nodiscard]] std::size_t job_count() const { return jobs_.size(); }

  /// Bytes sent so far by coflow `id` (sum over its flows).
  [[nodiscard]] Bytes coflow_bytes_sent(CoflowId id) const;
  /// Total bytes of coflow `id`.
  [[nodiscard]] Bytes coflow_total_bytes(CoflowId id) const;
  /// Bytes sent so far by job `id` in stage `stage`.
  [[nodiscard]] Bytes job_stage_bytes_sent(JobId id, int stage) const;
  /// Bytes sent so far by job `id` across all stages (the TBS signal the
  /// paper's baselines schedule on).
  [[nodiscard]] Bytes job_bytes_sent(JobId id) const;
  /// Number of currently transmitting (active) flows of coflow `id` —
  /// "open connections" as observed at receivers.
  [[nodiscard]] int coflow_open_connections(CoflowId id) const;

 private:
  friend class Simulator;
  std::vector<SimFlow> flows_;
  std::vector<SimCoflow> coflows_;
  std::vector<SimJob> jobs_;
};

}  // namespace gurita
