#include "flowsim/allocator.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace gurita {

const char* to_string(AllocatorKind kind) {
  switch (kind) {
    case AllocatorKind::kIncremental: return "incremental";
    case AllocatorKind::kOracle: return "oracle";
  }
  return "?";
}

AllocatorKind default_allocator_kind() {
  static const AllocatorKind kind = [] {
    const char* v = std::getenv("GURITA_ALLOCATOR");
    if (v == nullptr || *v == '\0') v = std::getenv("ALLOCATOR");
    if (v != nullptr && std::strcmp(v, "oracle") == 0)
      return AllocatorKind::kOracle;
    return AllocatorKind::kIncremental;
  }();
  return kind;
}

void WaterfillScratch::ensure(std::size_t links) {
  if (link_weight.size() < links) {
    link_weight.resize(links, 0.0);
    link_unfrozen.resize(links, 0);
    link_nflows.resize(links, 0);
    link_off.resize(links, 0);
    link_cur.resize(links, 0);
    residual.resize(links, 0.0);
    residual_init.resize(links, 0);
  }
}

namespace {

/// One tier group's progressive filling. `group[0..n)` all share one tier;
/// `residual` (indexed by LinkId value) must be valid for every link the
/// group touches and is consumed in place. The arithmetic — including the
/// bottleneck tolerance clauses — is the original allocator's verbatim, so
/// rates are bit-identical to the historical implementation whenever the
/// bottleneck shares are not within one part in 10^12 of each other across
/// components (exact ties produce the exact same share either way).
void waterfill_group(SimFlow* const* group, std::size_t n, Rate* residual,
                     WaterfillScratch& s) {
  // CSR build, two passes in flow order: count flows per link, assign
  // slices in first-touch order, fill. Iteration order over both links
  // (s.touched) and each link's flows (csr slice) matches the old
  // vector-of-vectors exactly.
  s.touched.clear();
  for (std::size_t i = 0; i < n; ++i) {
    SimFlow* f = group[i];
    GURITA_CHECK_MSG(!f->path.empty(), "active flow with empty path");
    GURITA_CHECK_MSG(f->weight > 0, "flow weight must be positive");
    f->rate = 0;
    for (LinkId l : f->path) {
      if (s.link_nflows[l.value()] == 0) s.touched.push_back(l);
      ++s.link_nflows[l.value()];
      s.link_weight[l.value()] += f->weight;
      ++s.link_unfrozen[l.value()];
    }
  }
  std::uint32_t base = 0;
  for (LinkId l : s.touched) {
    s.link_off[l.value()] = base;
    s.link_cur[l.value()] = base;
    base += s.link_nflows[l.value()];
  }
  if (s.csr.size() < base) s.csr.resize(base);
  for (std::size_t i = 0; i < n; ++i) {
    for (LinkId l : group[i]->path)
      s.csr[s.link_cur[l.value()]++] = static_cast<std::uint32_t>(i);
  }

  s.frozen.assign(n, 0);
  std::size_t remaining = n;

  // Progressive filling: each round finds the bottleneck share, freezes
  // every flow crossing a bottleneck link, consumes capacity, repeats.
  // Work per round is O(touched links + flows frozen this round), so the
  // total is O(rounds * links + flows * path length).
  while (remaining > 0) {
    double best_share = std::numeric_limits<double>::infinity();
    for (LinkId l : s.touched) {
      if (s.link_unfrozen[l.value()] == 0) continue;
      const double w = std::max(s.link_weight[l.value()], 1e-300);
      best_share = std::min(best_share, residual[l.value()] / w);
    }
    GURITA_CHECK_MSG(best_share < std::numeric_limits<double>::infinity(),
                     "unfrozen flows but no carrying link");
    best_share = std::max(best_share, 0.0);

    // Freezing a flow preserves the share of every other link it crosses
    // (weight and capacity leave together), so collecting the bottleneck
    // links once per round is sound.
    bool froze_any = false;
    for (LinkId l : s.touched) {
      if (s.link_unfrozen[l.value()] == 0) continue;
      const double w = std::max(s.link_weight[l.value()], 1e-300);
      if (residual[l.value()] / w > best_share * (1 + 1e-12) &&
          residual[l.value()] > 1e-9)
        continue;
      const std::uint32_t off = s.link_off[l.value()];
      const std::uint32_t cnt = s.link_nflows[l.value()];
      for (std::uint32_t k = 0; k < cnt; ++k) {
        const std::uint32_t idx = s.csr[off + k];
        if (s.frozen[idx]) continue;
        SimFlow* f = group[idx];
        f->rate = f->weight * best_share;
        s.frozen[idx] = 1;
        froze_any = true;
        --remaining;
        for (LinkId pl : f->path) {
          s.link_weight[pl.value()] -= f->weight;
          --s.link_unfrozen[pl.value()];
          residual[pl.value()] -= f->rate;
          if (residual[pl.value()] < 0) residual[pl.value()] = 0;
        }
      }
    }
    GURITA_CHECK_MSG(froze_any, "waterfill failed to make progress");
  }

  // Reset the per-link accumulators for the next group. link_weight can
  // carry a floating-point residue from the subtractions above; zero it.
  for (LinkId l : s.touched) {
    s.link_weight[l.value()] = 0.0;
    s.link_unfrozen[l.value()] = 0;
    s.link_nflows[l.value()] = 0;
  }
  s.touched.clear();
}

}  // namespace

void solve_component(const Topology& topo, SimFlow* const* flows,
                     std::size_t n, const std::vector<Rate>& capacities,
                     WaterfillScratch& scratch) {
  scratch.ensure(topo.link_count());
  // Residual capacity, initialized lazily for just this component's links
  // and carried across its tier groups (SPQ: lower tiers consume first).
  for (std::size_t i = 0; i < n; ++i) {
    for (LinkId l : flows[i]->path) {
      if (scratch.residual_init[l.value()]) continue;
      scratch.residual_init[l.value()] = 1;
      scratch.residual[l.value()] = capacities[l.value()];
      scratch.residual_links.push_back(l);
    }
  }
  std::size_t i = 0;
  while (i < n) {
    const std::size_t start = i;
    const Tier tier = flows[i]->tier;
    while (i < n && flows[i]->tier == tier) ++i;
    waterfill_group(flows + start, i - start, scratch.residual.data(),
                    scratch);
  }
  for (LinkId l : scratch.residual_links)
    scratch.residual_init[l.value()] = 0;
  scratch.residual_links.clear();
}

void waterfill(const Topology& topo, std::vector<SimFlow*>& group,
               std::vector<Rate>& residual) {
  GURITA_CHECK_MSG(residual.size() == topo.link_count(),
                   "residual vector must cover every link");
  WaterfillScratch scratch;
  scratch.ensure(topo.link_count());
  waterfill_group(group.data(), group.size(), residual.data(), scratch);
}

namespace {

std::uint32_t uf_find(std::vector<std::uint32_t>& parent, std::uint32_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

}  // namespace

void allocate_rates(const Topology& topo, const std::vector<Rate>& capacities,
                    const std::vector<SimFlow*>& flows,
                    std::vector<RateChange>* changed, AllocStats* stats) {
  GURITA_CHECK_MSG(capacities.size() == topo.link_count(),
                   "capacity vector must cover every link");
  for (Rate c : capacities) GURITA_CHECK_MSG(c >= 0, "negative capacity");

  std::vector<Rate> old_rates;
  if (changed != nullptr) {
    changed->clear();
    old_rates.reserve(flows.size());
    for (const SimFlow* f : flows) old_rates.push_back(f->rate);
  }

  // Stable order: by tier, then by flow id for determinism. Sorting a copy
  // keeps the caller's order intact (the engine hands in its persistent
  // active list); the total order depends only on (tier, id), so the rates
  // produced are independent of the caller's order.
  std::vector<SimFlow*> order(flows);
  std::sort(order.begin(), order.end(), [](const SimFlow* a, const SimFlow* b) {
    if (a->tier != b->tier) return a->tier < b->tier;
    return a->id < b->id;
  });

  // Link-connected components via union-find: flows sharing any link share
  // a component. Bucketing in `order` keeps each component (tier, id)
  // sorted, as solve_component requires.
  const std::uint32_t n = static_cast<std::uint32_t>(order.size());
  std::vector<std::uint32_t> parent(n);
  for (std::uint32_t i = 0; i < n; ++i) parent[i] = i;
  constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> link_first(topo.link_count(), kNone);
  std::uint64_t used_links = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (LinkId l : order[i]->path) {
      std::uint32_t& first = link_first[l.value()];
      if (first == kNone) {
        first = i;
        ++used_links;
      } else {
        const std::uint32_t a = uf_find(parent, i);
        const std::uint32_t b = uf_find(parent, first);
        if (a != b) parent[a] = b;
      }
    }
  }
  std::vector<std::uint32_t> comp_of_root(n, kNone);
  std::vector<std::vector<SimFlow*>> comps;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = uf_find(parent, i);
    if (comp_of_root[r] == kNone) {
      comp_of_root[r] = static_cast<std::uint32_t>(comps.size());
      comps.emplace_back();
    }
    comps[comp_of_root[r]].push_back(order[i]);
  }

  WaterfillScratch scratch;
  for (std::vector<SimFlow*>& comp : comps)
    solve_component(topo, comp.data(), comp.size(), capacities, scratch);

  if (stats != nullptr) {
    ++stats->allocations;
    stats->flows_solved += flows.size();
    stats->components_solved += comps.size();
    stats->dirty_links += used_links;
    for (const std::vector<SimFlow*>& comp : comps)
      stats->component_flows.add(static_cast<double>(comp.size()));
  }

  if (changed != nullptr) {
    for (std::size_t j = 0; j < flows.size(); ++j) {
      if (flows[j]->rate != old_rates[j])
        changed->push_back(RateChange{flows[j], old_rates[j]});
    }
  }
}

void allocate_rates(const Topology& topo, const std::vector<SimFlow*>& flows) {
  std::vector<Rate> capacities(topo.link_count());
  for (std::size_t i = 0; i < capacities.size(); ++i)
    capacities[i] = topo.link(LinkId{i}).capacity;
  allocate_rates(topo, capacities, flows);
}

// --- RateAllocator -----------------------------------------------------------

void RateAllocator::reset(const Topology* topo, AllocatorKind kind,
                          std::size_t flow_capacity) {
  topo_ = topo;
  kind_ = kind;
  stats_ = AllocStats{};
  const std::size_t links = topo->link_count();
  head_.assign(links, kNil);
  link_dirty_.assign(links, 0);
  link_claimed_.assign(links, 0);
  dirty_list_.clear();
  claimed_links_.clear();
  ent_flow_.clear();
  ent_next_.clear();
  ent_prev_.clear();
  slot_offset_.clear();
  in_.clear();
  tier_mirror_.clear();
  weight_mirror_.clear();
  old_rate_.clear();
  flow_mark_.clear();
  affected_.clear();
  component_.clear();
  if (kind_ == AllocatorKind::kOracle) return;
  slot_offset_.reserve(flow_capacity);
  in_.reserve(flow_capacity);
  tier_mirror_.reserve(flow_capacity);
  weight_mirror_.reserve(flow_capacity);
  old_rate_.reserve(flow_capacity);
  flow_mark_.reserve(flow_capacity);
  scratch_.ensure(links);
}

void RateAllocator::ensure_flow(std::size_t fid) {
  if (fid < in_.size()) return;
  const std::size_t n = std::max(fid + 1, in_.size() * 2);
  in_.resize(n, 0);
  slot_offset_.resize(n, kNil);
  tier_mirror_.resize(n, 0);
  weight_mirror_.resize(n, 0.0);
  old_rate_.resize(n, 0.0);
  flow_mark_.resize(n, 0);
}

void RateAllocator::dirty_link(LinkId link) {
  if (kind_ == AllocatorKind::kOracle) return;
  if (link_dirty_[link.value()]) return;
  link_dirty_[link.value()] = 1;
  dirty_list_.push_back(link);
}

void RateAllocator::add_flow(SimFlow* flow) {
  if (kind_ == AllocatorKind::kOracle) return;
  const std::size_t fid = flow->id.value();
  ensure_flow(fid);
  std::int32_t slot = slot_offset_[fid];
  if (slot == kNil) {
    slot = static_cast<std::int32_t>(ent_flow_.size());
    slot_offset_[fid] = slot;
    ent_flow_.resize(ent_flow_.size() + flow->path.size(), nullptr);
    ent_next_.resize(ent_flow_.size(), kNil);
    ent_prev_.resize(ent_flow_.size(), kNil);
  }
  for (std::size_t k = 0; k < flow->path.size(); ++k) {
    const std::int32_t e = slot + static_cast<std::int32_t>(k);
    const std::size_t l = flow->path[k].value();
    ent_flow_[e] = flow;
    ent_prev_[e] = kNil;
    ent_next_[e] = head_[l];
    if (head_[l] != kNil) ent_prev_[head_[l]] = e;
    head_[l] = e;
    dirty_link(flow->path[k]);
  }
  in_[fid] = 1;
  tier_mirror_[fid] = flow->tier;
  weight_mirror_[fid] = flow->weight;
}

void RateAllocator::remove_flow(SimFlow* flow) {
  if (kind_ == AllocatorKind::kOracle) return;
  const std::size_t fid = flow->id.value();
  if (fid >= in_.size() || !in_[fid]) return;
  const std::int32_t slot = slot_offset_[fid];
  for (std::size_t k = 0; k < flow->path.size(); ++k) {
    const std::int32_t e = slot + static_cast<std::int32_t>(k);
    const std::size_t l = flow->path[k].value();
    if (ent_prev_[e] != kNil)
      ent_next_[ent_prev_[e]] = ent_next_[e];
    else
      head_[l] = ent_next_[e];
    if (ent_next_[e] != kNil) ent_prev_[ent_next_[e]] = ent_prev_[e];
    ent_next_[e] = kNil;
    ent_prev_[e] = kNil;
    dirty_link(flow->path[k]);
  }
  in_[fid] = 0;
}

void RateAllocator::touch_flow(SimFlow* flow) {
  if (kind_ == AllocatorKind::kOracle) return;
  const std::size_t fid = flow->id.value();
  if (fid >= in_.size() || !in_[fid]) return;
  for (LinkId l : flow->path) dirty_link(l);
}

void RateAllocator::rebuild(const std::vector<SimFlow*>& active) {
  if (kind_ == AllocatorKind::kOracle) return;
  std::fill(head_.begin(), head_.end(), kNil);
  std::fill(link_dirty_.begin(), link_dirty_.end(), 0);
  dirty_list_.clear();
  ent_flow_.clear();
  ent_next_.clear();
  ent_prev_.clear();
  std::fill(in_.begin(), in_.end(), 0);
  std::fill(slot_offset_.begin(), slot_offset_.end(), kNil);
  std::fill(flow_mark_.begin(), flow_mark_.end(), 0);
  for (SimFlow* f : active) add_flow(f);
}

void RateAllocator::allocate(const std::vector<Rate>& capacities,
                             const std::vector<SimFlow*>& active,
                             std::vector<RateChange>* changed,
                             obs::PhaseProfiler* profiler) {
  if (kind_ == AllocatorKind::kOracle) {
    obs::ScopedPhase converge(profiler, obs::Phase::kAllocConverge);
    allocate_rates(*topo_, capacities, active, changed, &stats_);
    return;
  }
  ++stats_.allocations;

  {
    obs::ScopedPhase frontier(profiler, obs::Phase::kAllocFrontier);
    // Priority rewrites leave no event trail of their own: schedulers
    // mutate tier/weight in place during assign(). One O(active) mirror
    // scan per recomputation catches them — still O(1) per flow, versus
    // the oracle's full sort + re-solve.
    for (SimFlow* f : active) {
      const std::size_t fid = f->id.value();
      if (f->tier != tier_mirror_[fid] || f->weight != weight_mirror_[fid]) {
        tier_mirror_[fid] = f->tier;
        weight_mirror_[fid] = f->weight;
        for (LinkId l : f->path) dirty_link(l);
      }
    }
    // Frontier closure: a dirty link re-solves its flows; a re-solved flow
    // re-solves every link it crosses (its share there may shift). The
    // fixpoint is the union of the link-connected components containing
    // any seed — exactly the set whose rates can legally change.
    for (std::size_t i = 0; i < dirty_list_.size(); ++i) {
      const std::size_t l = dirty_list_[i].value();
      for (std::int32_t e = head_[l]; e != kNil; e = ent_next_[e]) {
        SimFlow* f = ent_flow_[e];
        const std::size_t fid = f->id.value();
        if (flow_mark_[fid] != 0) continue;
        flow_mark_[fid] = 1;
        old_rate_[fid] = f->rate;
        affected_.push_back(f);
        for (LinkId pl : f->path) dirty_link(pl);
      }
    }
    stats_.dirty_links += dirty_list_.size();
    stats_.flows_solved += affected_.size();
  }

  {
    obs::ScopedPhase converge(profiler, obs::Phase::kAllocConverge);
    // Split the affected set into its components (the closure above pulled
    // in every member of each) and re-solve each with the shared kernel.
    for (SimFlow* seed : affected_) {
      if (flow_mark_[seed->id.value()] != 1) continue;
      component_.clear();
      component_.push_back(seed);
      flow_mark_[seed->id.value()] = 2;
      for (std::size_t i = 0; i < component_.size(); ++i) {
        for (LinkId l : component_[i]->path) {
          if (link_claimed_[l.value()]) continue;
          link_claimed_[l.value()] = 1;
          claimed_links_.push_back(l);
          for (std::int32_t e = head_[l.value()]; e != kNil;
               e = ent_next_[e]) {
            SimFlow* f = ent_flow_[e];
            if (flow_mark_[f->id.value()] != 1) continue;
            flow_mark_[f->id.value()] = 2;
            component_.push_back(f);
          }
        }
      }
      std::sort(component_.begin(), component_.end(),
                [](const SimFlow* a, const SimFlow* b) {
                  if (a->tier != b->tier) return a->tier < b->tier;
                  return a->id < b->id;
                });
      solve_component(*topo_, component_.data(), component_.size(),
                      capacities, scratch_);
      ++stats_.components_solved;
      stats_.component_flows.add(static_cast<double>(component_.size()));
    }

    // Changed flows, in active order — the exact list (content and order)
    // the oracle reports: an unaffected flow's cached rate is bitwise what
    // a re-solve would produce, so it cannot have "changed".
    if (changed != nullptr) {
      changed->clear();
      for (SimFlow* f : active) {
        const std::size_t fid = f->id.value();
        if (flow_mark_[fid] != 0 && f->rate != old_rate_[fid])
          changed->push_back(RateChange{f, old_rate_[fid]});
      }
    }

    for (const SimFlow* f : affected_) flow_mark_[f->id.value()] = 0;
    affected_.clear();
    for (LinkId l : claimed_links_) link_claimed_[l.value()] = 0;
    claimed_links_.clear();
    for (LinkId l : dirty_list_) link_dirty_[l.value()] = 0;
    dirty_list_.clear();
  }
}

namespace {

template <typename T>
std::size_t vec_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace

std::size_t WaterfillScratch::memory_bytes() const {
  return vec_bytes(link_weight) + vec_bytes(link_unfrozen) +
         vec_bytes(link_nflows) + vec_bytes(link_off) + vec_bytes(link_cur) +
         vec_bytes(csr) + vec_bytes(touched) + vec_bytes(frozen) +
         vec_bytes(residual) + vec_bytes(residual_init) +
         vec_bytes(residual_links);
}

std::size_t RateAllocator::memory_bytes() const {
  return vec_bytes(head_) + vec_bytes(ent_flow_) + vec_bytes(ent_next_) +
         vec_bytes(ent_prev_) + vec_bytes(slot_offset_) + vec_bytes(in_) +
         vec_bytes(tier_mirror_) + vec_bytes(weight_mirror_) +
         vec_bytes(old_rate_) + vec_bytes(flow_mark_) +
         vec_bytes(link_dirty_) + vec_bytes(dirty_list_) +
         vec_bytes(affected_) + vec_bytes(component_) +
         vec_bytes(link_claimed_) + vec_bytes(claimed_links_) +
         scratch_.memory_bytes();
}

}  // namespace gurita
