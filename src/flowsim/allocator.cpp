#include "flowsim/allocator.h"

#include <algorithm>
#include <limits>

namespace gurita {

void waterfill(const Topology& topo, std::vector<SimFlow*>& group,
               std::vector<Rate>& residual) {
  GURITA_CHECK_MSG(residual.size() == topo.link_count(),
                   "residual vector must cover every link");

  // Per-link: sum of weights and count of unfrozen flows, plus the flows
  // crossing it. Only links actually touched by this group are tracked.
  // The integer count, not the floating weight, decides whether a link is
  // still active — repeated subtraction can leave a nonzero weight residue
  // on a link whose flows are all frozen, which must not become a
  // "bottleneck" nothing can be frozen against.
  std::vector<double> link_weight(topo.link_count(), 0.0);
  std::vector<std::uint32_t> link_unfrozen(topo.link_count(), 0);
  std::vector<std::vector<std::uint32_t>> link_flows(topo.link_count());
  std::vector<LinkId> touched;

  for (std::uint32_t i = 0; i < group.size(); ++i) {
    SimFlow* f = group[i];
    GURITA_CHECK_MSG(!f->path.empty(), "active flow with empty path");
    GURITA_CHECK_MSG(f->weight > 0, "flow weight must be positive");
    f->rate = 0;
    for (LinkId l : f->path) {
      if (link_flows[l.value()].empty()) touched.push_back(l);
      link_flows[l.value()].push_back(i);
      link_weight[l.value()] += f->weight;
      ++link_unfrozen[l.value()];
    }
  }

  std::vector<bool> frozen(group.size(), false);
  std::size_t remaining = group.size();

  // Progressive filling: each round finds the bottleneck share, freezes
  // every flow crossing a bottleneck link, consumes capacity, repeats.
  // Work per round is O(touched links + flows frozen this round), so the
  // total is O(rounds * links + flows * path length).
  while (remaining > 0) {
    double best_share = std::numeric_limits<double>::infinity();
    for (LinkId l : touched) {
      if (link_unfrozen[l.value()] == 0) continue;
      const double w = std::max(link_weight[l.value()], 1e-300);
      best_share = std::min(best_share, residual[l.value()] / w);
    }
    GURITA_CHECK_MSG(best_share < std::numeric_limits<double>::infinity(),
                     "unfrozen flows but no carrying link");
    best_share = std::max(best_share, 0.0);

    // Freezing a flow preserves the share of every other link it crosses
    // (weight and capacity leave together), so collecting the bottleneck
    // links once per round is sound.
    bool froze_any = false;
    for (LinkId l : touched) {
      if (link_unfrozen[l.value()] == 0) continue;
      const double w = std::max(link_weight[l.value()], 1e-300);
      if (residual[l.value()] / w > best_share * (1 + 1e-12) &&
          residual[l.value()] > 1e-9)
        continue;
      for (std::uint32_t idx : link_flows[l.value()]) {
        if (frozen[idx]) continue;
        SimFlow* f = group[idx];
        f->rate = f->weight * best_share;
        frozen[idx] = true;
        froze_any = true;
        --remaining;
        for (LinkId pl : f->path) {
          link_weight[pl.value()] -= f->weight;
          --link_unfrozen[pl.value()];
          residual[pl.value()] -= f->rate;
          if (residual[pl.value()] < 0) residual[pl.value()] = 0;
        }
      }
    }
    GURITA_CHECK_MSG(froze_any, "waterfill failed to make progress");
  }
}

void allocate_rates(const Topology& topo, const std::vector<Rate>& capacities,
                    const std::vector<SimFlow*>& flows,
                    std::vector<RateChange>* changed) {
  GURITA_CHECK_MSG(capacities.size() == topo.link_count(),
                   "capacity vector must cover every link");
  for (Rate c : capacities) GURITA_CHECK_MSG(c >= 0, "negative capacity");
  std::vector<Rate> residual = capacities;

  std::vector<Rate> old_rates;
  if (changed != nullptr) {
    changed->clear();
    old_rates.reserve(flows.size());
    for (const SimFlow* f : flows) old_rates.push_back(f->rate);
  }

  // Stable order: by tier, then by flow id for determinism. Sorting a copy
  // keeps the caller's order intact (the engine hands in its persistent
  // active list); the total order depends only on (tier, id), so the rates
  // produced are independent of the caller's order.
  std::vector<SimFlow*> order(flows);
  std::sort(order.begin(), order.end(), [](const SimFlow* a, const SimFlow* b) {
    if (a->tier != b->tier) return a->tier < b->tier;
    return a->id < b->id;
  });

  std::vector<SimFlow*> group;
  std::size_t i = 0;
  while (i < order.size()) {
    group.clear();
    const Tier tier = order[i]->tier;
    while (i < order.size() && order[i]->tier == tier) group.push_back(order[i++]);
    waterfill(topo, group, residual);
  }

  if (changed != nullptr) {
    for (std::size_t j = 0; j < flows.size(); ++j) {
      if (flows[j]->rate != old_rates[j])
        changed->push_back(RateChange{flows[j], old_rates[j]});
    }
  }
}

void allocate_rates(const Topology& topo, const std::vector<SimFlow*>& flows) {
  std::vector<Rate> capacities(topo.link_count());
  for (std::size_t i = 0; i < capacities.size(); ++i)
    capacities[i] = topo.link(LinkId{i}).capacity;
  allocate_rates(topo, capacities, flows);
}

}  // namespace gurita
