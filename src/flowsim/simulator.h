// Event-driven flow-level network simulator.
//
// This is the evaluation substrate the paper describes in §V: "a flow-level
// simulator [that] accounts for the flow arrival and departure events,
// rather than packet sending and receiving events. It updates the rate and
// the remaining volume of each flow when an event occurs."
//
// Fluid model: between events every flow transfers at a constant rate
// computed by the tiered weighted max-min allocator; events are job
// arrivals, flow completions (computed analytically), DAG releases and
// scheduler coordination ticks (δ). ECMP assigns each flow a stable path
// through the fat-tree at release time.
//
// The engine is incremental: completions come from a lazily-invalidated
// min-heap event calendar keyed on each flow's projected finish time, and
// bytes drain lazily per flow from (last_touched, rate) instead of a
// whole-active-set sweep per event. Per-event work is therefore
// proportional to the flows whose rate actually changed, not to the number
// of active flows. DESIGN.md ("Event-calendar engine") documents the
// invariants.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.h"
#include "coflow/job.h"
#include "flowsim/allocator.h"
#include "flowsim/scheduler.h"
#include "flowsim/state.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "topology/fabric.h"

namespace gurita {

/// A scheduled change to one link's capacity (failure injection: degrade a
/// link mid-run, restore it later). A capacity of 0 models a hard failure;
/// note flows already routed across a dead link can never finish — the
/// engine then throws its stall guard, which is the honest outcome for a
/// fabric without re-routing.
struct CapacityChange {
  Time time = 0;
  LinkId link;
  Rate new_capacity = 0;
};

/// Outcome of one simulation run.
struct SimResults {
  struct JobResult {
    JobId id;
    Time arrival = 0;
    Time finish = 0;
    Bytes total_bytes = 0;
    int num_stages = 1;
    [[nodiscard]] Time jct() const { return finish - arrival; }
  };
  struct CoflowResult {
    CoflowId id;
    JobId job;
    int stage = 1;
    Time release = 0;
    Time finish = 0;
    Bytes total_bytes = 0;
    [[nodiscard]] Time cct() const { return finish - release; }
  };

  std::vector<JobResult> jobs;
  std::vector<CoflowResult> coflows;
  Time makespan = 0;
  std::uint64_t rate_recomputations = 0;

  // --- engine-cost counters (speedup tracking across PRs) ---
  /// Main-loop iterations, including idle jumps to the next arrival.
  std::uint64_t events = 0;
  /// Per-flow units of work the event-calendar engine performed: flow
  /// releases, settles/re-keys after a rate change, calendar pops (valid
  /// and stale) and finishes.
  std::uint64_t flow_touches = 0;
  /// Per-flow units of work the pre-calendar engine would have performed on
  /// the same event sequence: one full active-set scan each for the
  /// completion-time min search and the completion check every event, plus
  /// the byte drain when time advances, the ramp-cap pass when the TCP ramp
  /// is enabled, and the rebuild/assign pass on dirty events. Maintained so
  /// bench_engine can report the touch ratio without running the old code.
  std::uint64_t legacy_flow_touches = 0;

  /// Bytes carried per link over the run (indexed by LinkId value); only
  /// populated when Config::collect_link_stats is set.
  std::vector<Bytes> link_bytes;

  // --- telemetry (populated by the experiment harness when enabled) ---
  /// Structured trace of the run (obs/trace.h); empty unless a recorder was
  /// attached. ComparisonResult::absorb appends traces in replicate order
  /// with job/coflow ids re-based alongside the pooled populations (flow
  /// ids and timestamps stay run-local).
  std::vector<obs::TraceRecord> trace;
  /// Phase-time breakdown of the run (obs/profiler.h); all-zero unless a
  /// profiler was attached. absorb() sums profiles across runs.
  obs::PhaseProfile profile;

  /// Utilization of link `id` given its capacity: carried bytes divided by
  /// capacity × makespan. Requires link stats collection.
  [[nodiscard]] double link_utilization(LinkId id, Rate capacity) const;

  /// Folds another run's cost counters (events, flow_touches,
  /// legacy_flow_touches, rate_recomputations) and makespan into this
  /// result. Counters are strictly per-run — the engine only ever writes
  /// the SimResults of its own run() — and pooling across runs happens
  /// through this explicit merge, so parallel sweeps aggregate them
  /// deterministically in merge order instead of interleaving updates.
  /// Does not touch jobs/coflows (population pooling re-ids those), nor
  /// the trace/profile telemetry (absorb() pools those).
  void merge_counters(const SimResults& other);

  /// Projects the engine-cost counters into a registry ("engine.events",
  /// "engine.flow_touches", "engine.legacy_flow_touches",
  /// "engine.rate_recomputations") plus the "engine.makespan" gauge.
  /// Registry::merge over per-run exports agrees with merge_counters
  /// (counters sum, makespan maxes) — the regression tests hold the two
  /// pooling paths to identical totals at any worker count.
  void export_counters(obs::Registry& registry) const;

  [[nodiscard]] double average_jct() const;
  [[nodiscard]] double average_cct() const;
};

class Simulator {
 public:
  struct Config {
    /// Hard wall on simulated time; exceeding it throws (deadlock guard).
    Time max_time = std::numeric_limits<Time>::infinity();
    /// Hard wall on main-loop iterations; exceeding it throws with
    /// diagnostics (live-lock guard).
    std::uint64_t max_iterations = 500'000'000;
    /// Scheduled link-capacity changes (failure injection), any order.
    std::vector<CapacityChange> disruptions;
    /// Record per-link carried bytes (adds O(path length) work per flow per
    /// rate change; off by default).
    bool collect_link_stats = false;
    /// TCP slow-start approximation (§V: "we implement [a] rate limiter
    /// that behaves like TCP"): a flow's rate is additionally capped at
    /// (tcp_initial_window + bytes_sent) / tcp_ramp_time — the fluid
    /// analogue of a congestion window doubling every RTT. 0 disables the
    /// ramp (pure max-min steady state, the default).
    Time tcp_ramp_time = 0;
    Bytes tcp_initial_window = 64 * kKB;
    /// Structured trace sink (obs/trace.h), or nullptr for no tracing. The
    /// engine emits event records and hands the recorder to the scheduler
    /// (Scheduler::set_trace_recorder) so decision records interleave in
    /// emission order. Must outlive run(). Disabled-path cost: one pointer
    /// null-check per emission site.
    obs::TraceRecorder* trace = nullptr;
    /// Engine phase profiler (obs/profiler.h), or nullptr. Timing only —
    /// attaching a profiler never changes simulation results.
    obs::PhaseProfiler* profiler = nullptr;
  };

  /// `fabric` and `scheduler` must outlive the simulator. Any Fabric
  /// works: the paper's fat-tree or the big-switch abstraction.
  Simulator(const Fabric& fabric, Scheduler& scheduler, Config config);
  Simulator(const Fabric& fabric, Scheduler& scheduler)
      : Simulator(fabric, scheduler, Config{}) {}

  /// Registers a job (validated against the fabric). All jobs must be
  /// submitted before run(). Returns the assigned job id.
  JobId submit(const JobSpec& job);

  /// Runs to completion of all submitted jobs and returns the results.
  /// May be called once.
  SimResults run();

  [[nodiscard]] const SimState& state() const { return state_; }

 private:
  /// One entry of the completion calendar: flow `flow` is projected to
  /// drain to zero at `key`. Entries are never updated in place; a rate
  /// change bumps the flow's generation counter and pushes a fresh entry,
  /// and stale entries (entry gen != current gen) are discarded on pop.
  struct CalendarEntry {
    Time key = 0;
    std::uint32_t gen = 0;
    FlowId flow;
  };
  struct CalendarLater {
    bool operator()(const CalendarEntry& a, const CalendarEntry& b) const {
      return a.key > b.key;
    }
  };

  const Fabric* fabric_;
  Scheduler* scheduler_;
  Config config_;
  SimState state_;
  bool ran_ = false;

  /// Persistent active set (raw pointers into state_.flows_, which is
  /// reserved up front so it never reallocates mid-run). Removal is
  /// swap-with-last via pos_in_active_, so the order is arrival order
  /// modulo those swaps — schedulers and the allocator are order-blind.
  std::vector<SimFlow*> active_;
  /// Index of each flow in active_ (by flow id; stale once removed).
  std::vector<std::uint32_t> pos_in_active_;
  /// Calendar generation per flow (by flow id); see CalendarEntry.
  std::vector<std::uint32_t> gen_;
  std::priority_queue<CalendarEntry, std::vector<CalendarEntry>, CalendarLater>
      calendar_;
  /// Scratch for allocate_rates change reporting (reused across events).
  std::vector<RateChange> rate_changes_;
  /// Results of the in-progress run (settles accrue link stats/counters).
  SimResults* live_results_ = nullptr;

  Time now_ = 0;
  /// Current link capacities (nominal, mutated by disruptions).
  std::vector<Rate> capacities_;

  /// Aggregate of the coflow owning `flow`.
  SimState::CoflowAggregate& aggregate_of(const SimFlow& flow);
  /// Settles `flow`'s lazy drain at now_: `remaining` becomes exact,
  /// drained bytes move into the coflow aggregate and per-link stats.
  void settle(SimFlow& flow);
  /// Applies a new rate to a settled flow, keeping aggregates consistent.
  void set_rate(SimFlow& flow, Rate new_rate);
  /// (Re-)registers a settled flow's projected finish in the calendar.
  void push_key(SimFlow& flow);
  void remove_from_active(SimFlow& flow);

  void release_coflow(SimCoflow& coflow);
  void finish_flow(SimFlow& flow);
  void finish_coflow(SimCoflow& coflow);
  void arrive_job(SimJob& job);
};

}  // namespace gurita
