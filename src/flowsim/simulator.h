// Event-driven flow-level network simulator.
//
// This is the evaluation substrate the paper describes in §V: "a flow-level
// simulator [that] accounts for the flow arrival and departure events,
// rather than packet sending and receiving events. It updates the rate and
// the remaining volume of each flow when an event occurs."
//
// Fluid model: between events every flow transfers at a constant rate
// computed by the tiered weighted max-min allocator; events are job
// arrivals, flow completions (computed analytically), DAG releases and
// scheduler coordination ticks (δ). ECMP assigns each flow a stable path
// through the fat-tree at release time.
//
// The engine is incremental: completions come from a lazily-invalidated
// min-heap event calendar keyed on each flow's projected finish time, and
// bytes drain lazily per flow from (last_touched, rate) instead of a
// whole-active-set sweep per event. Per-event work is therefore
// proportional to the flows whose rate actually changed, not to the number
// of active flows. DESIGN.md ("Event-calendar engine") documents the
// invariants.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/units.h"
#include "coflow/job.h"
#include "fault/fault.h"
#include "flowsim/allocator.h"
#include "flowsim/scheduler.h"
#include "flowsim/state.h"
#include "obs/memory.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "topology/fabric.h"

namespace gurita {

namespace snapshot {
class Writer;
class Reader;
}  // namespace snapshot

/// Min-heap with std::priority_queue's exact push/pop mechanics
/// (std::push_heap / std::pop_heap over a contiguous array) plus access to
/// the underlying array. Pop order among *equal* keys depends on the array
/// layout, which in turn depends on the whole push/pop history — so a
/// snapshot cannot rebuild "the same heap" from its elements; it must
/// serialize the array verbatim and restore it bit-for-bit. That is the one
/// capability std::priority_queue withholds, and the only reason this
/// wrapper exists; behaviour is otherwise identical.
template <typename T, typename Later>
class SnapshotableHeap {
 public:
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] const T& top() const { return heap_.front(); }

  void push(const T& v) {
    heap_.push_back(v);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  void pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }

  /// The heap array in layout order (NOT sorted order) — serialize verbatim.
  [[nodiscard]] const std::vector<T>& container() const { return heap_; }
  /// Restores an array previously obtained from container(). The caller
  /// must not reorder it: layout is state. (Buffer recycling also enters
  /// here, with a *cleared* vector whose capacity is being reused — an
  /// empty array is trivially a valid layout.)
  void restore(std::vector<T> container) { heap_ = std::move(container); }
  /// Moves the backing array out for buffer recycling, leaving the heap
  /// empty and valid.
  [[nodiscard]] std::vector<T> take_container() {
    std::vector<T> out = std::move(heap_);
    heap_.clear();
    return out;
  }

 private:
  std::vector<T> heap_;
};

/// Outcome of one simulation run.
struct SimResults {
  struct JobResult {
    JobId id;
    Time arrival = 0;
    Time finish = 0;
    Bytes total_bytes = 0;
    int num_stages = 1;
    /// Abandoned by fault injection (retry budget exhausted / unrecoverable);
    /// `finish` is the abandonment time, not a completion. Excluded from
    /// JCT statistics.
    bool failed = false;
    [[nodiscard]] Time jct() const { return finish - arrival; }
  };
  struct CoflowResult {
    CoflowId id;
    JobId job;
    int stage = 1;
    Time release = 0;
    Time finish = 0;
    Bytes total_bytes = 0;
    /// Belongs to a failed job and never completed (possibly never even
    /// released: release and finish stay -1). Excluded from CCT statistics.
    bool failed = false;
    [[nodiscard]] Time cct() const { return finish - release; }
  };

  std::vector<JobResult> jobs;
  std::vector<CoflowResult> coflows;
  Time makespan = 0;
  std::uint64_t rate_recomputations = 0;

  // --- engine-cost counters (speedup tracking across PRs) ---
  /// Main-loop iterations, including idle jumps to the next arrival.
  std::uint64_t events = 0;
  /// Per-flow units of work the event-calendar engine performed: flow
  /// releases, settles/re-keys after a rate change, calendar pops (valid
  /// and stale) and finishes.
  std::uint64_t flow_touches = 0;
  /// Per-flow units of work the pre-calendar engine would have performed on
  /// the same event sequence: one full active-set scan each for the
  /// completion-time min search and the completion check every event, plus
  /// the byte drain when time advances, the ramp-cap pass when the TCP ramp
  /// is enabled, and the rebuild/assign pass on dirty events. Maintained so
  /// bench_engine can report the touch ratio without running the old code.
  std::uint64_t legacy_flow_touches = 0;

  // --- fault-injection accounting (fault/fault.h; all zero without a
  // fault plan) ---
  /// Flow aborts caused by host/link faults (including park-at-release).
  std::uint64_t flow_aborts = 0;
  /// Retries that actually restarted a flow.
  std::uint64_t flow_retries = 0;
  /// Jobs abandoned after a flow exhausted its retry budget or could never
  /// recover.
  std::uint64_t failed_jobs = 0;
  /// In-flight bytes lost to aborts (work destroyed by faults).
  Bytes bytes_lost = 0;
  /// Lost bytes that were eventually re-sent by flows that finished
  /// (bytes_lost minus the losses of cancelled flows).
  Bytes bytes_retransmitted = 0;
  /// Sum over retries of (restart time − abort time): time flows spent
  /// parked or backing off before re-entering.
  Time total_recovery_latency = 0;

  /// Bytes carried per link over the run (indexed by LinkId value); only
  /// populated when Config::collect_link_stats is set.
  std::vector<Bytes> link_bytes;

  // --- telemetry (populated by the experiment harness when enabled) ---
  /// Structured trace of the run (obs/trace.h); empty unless a recorder was
  /// attached. ComparisonResult::absorb appends traces in replicate order
  /// with job/coflow ids re-based alongside the pooled populations (flow
  /// ids and timestamps stay run-local).
  std::vector<obs::TraceRecord> trace;
  /// Phase-time breakdown of the run (obs/profiler.h); all-zero unless a
  /// profiler was attached. absorb() sums profiles across runs.
  obs::PhaseProfile profile;
  /// Individual phase slices (obs/profiler.h); empty unless the attached
  /// profiler had span capture enabled. Wall-clock telemetry, outside the
  /// determinism contract: never serialized, never fingerprinted. absorb()
  /// concatenates spans in replicate order.
  std::vector<obs::PhaseSpan> spans;

  /// Non-deterministic run health (allocator work counters, reserved
  /// memory footprint). Populated by the experiment harness only when
  /// diagnostics are requested; excluded from determinism fingerprints,
  /// result caches and snapshots — a restored run re-solves everything on
  /// its first allocation, so these legitimately differ between a resumed
  /// and an uninterrupted run whose simulation bytes are identical.
  struct Diagnostics {
    AllocStats alloc;
    obs::MemoryAccountant memory;
    void merge(const Diagnostics& other) {
      alloc.merge(other.alloc);
      memory.merge(other.memory);
    }
  };
  Diagnostics diagnostics;

  /// Utilization of link `id` given its capacity: carried bytes divided by
  /// capacity × makespan. Requires link stats collection.
  [[nodiscard]] double link_utilization(LinkId id, Rate capacity) const;

  /// Folds another run's cost counters (events, flow_touches,
  /// legacy_flow_touches, rate_recomputations, the fault counters
  /// and byte/latency totals) and makespan into this
  /// result. Counters are strictly per-run — the engine only ever writes
  /// the SimResults of its own run() — and pooling across runs happens
  /// through this explicit merge, so parallel sweeps aggregate them
  /// deterministically in merge order instead of interleaving updates.
  /// Does not touch jobs/coflows (population pooling re-ids those), nor
  /// the trace/profile telemetry (absorb() pools those).
  void merge_counters(const SimResults& other);

  /// Projects the engine-cost counters into a registry ("engine.events",
  /// "engine.flow_touches", "engine.legacy_flow_touches",
  /// "engine.rate_recomputations"), the integer fault counters
  /// ("fault.flow_aborts", "fault.flow_retries", "fault.failed_jobs"),
  /// plus the "engine.makespan" gauge. The double-valued fault totals
  /// (bytes, latency) are deliberately not exported: registry gauges merge
  /// by max, which would disagree with merge_counters' summation.
  /// Registry::merge over per-run exports agrees with merge_counters
  /// (counters sum, makespan maxes) — the regression tests hold the two
  /// pooling paths to identical totals at any worker count.
  void export_counters(obs::Registry& registry) const;

  [[nodiscard]] double average_jct() const;
  [[nodiscard]] double average_cct() const;
};

class SimBufferPool;

class Simulator {
 public:
  struct Config {
    /// Hard wall on simulated time; exceeding it throws (deadlock guard).
    Time max_time = std::numeric_limits<Time>::infinity();
    /// Hard wall on main-loop iterations; exceeding it throws with
    /// diagnostics (live-lock guard).
    std::uint64_t max_iterations = 500'000'000;
    /// Scheduled link-capacity changes (failure injection), any order.
    /// Validated against the fabric at construction (fault/validation.h).
    std::vector<CapacityChange> disruptions;
    /// Fault plan (host crashes, link flaps, stragglers, scheduler-state
    /// loss) with abort/retry semantics — see fault/fault.h. Validated at
    /// construction. An empty plan leaves the engine's behaviour and
    /// results byte-identical to a build without fault support.
    FaultPlan faults;
    /// Record per-link carried bytes (adds O(path length) work per flow per
    /// rate change; off by default).
    bool collect_link_stats = false;
    /// TCP slow-start approximation (§V: "we implement [a] rate limiter
    /// that behaves like TCP"): a flow's rate is additionally capped at
    /// (tcp_initial_window + bytes_sent) / tcp_ramp_time — the fluid
    /// analogue of a congestion window doubling every RTT. 0 disables the
    /// ramp (pure max-min steady state, the default).
    Time tcp_ramp_time = 0;
    Bytes tcp_initial_window = 64 * kKB;
    /// Which rate allocator drives the run (flowsim/allocator.h). The
    /// incremental allocator is the default; kOracle forces the
    /// from-scratch reference implementation, which every run is held
    /// byte-identical to (the differential suite's contract). Defaults
    /// from the GURITA_ALLOCATOR / ALLOCATOR environment variables so CI
    /// can force the oracle across a whole binary.
    AllocatorKind allocator = default_allocator_kind();
    /// Structured trace sink (obs/trace.h), or nullptr for no tracing. The
    /// engine emits event records and hands the recorder to the scheduler
    /// (Scheduler::set_trace_recorder) so decision records interleave in
    /// emission order. Must outlive run(). Disabled-path cost: one pointer
    /// null-check per emission site.
    obs::TraceRecorder* trace = nullptr;
    /// Engine phase profiler (obs/profiler.h), or nullptr. Timing only —
    /// attaching a profiler never changes simulation results.
    obs::PhaseProfiler* profiler = nullptr;
    /// Recycled container pack (SimBufferPool below), or nullptr. When set,
    /// the simulator adopts the pool's emptied vectors at construction
    /// (clearing them — values are never reused, only capacity) and returns
    /// them at destruction, so consecutive runs on a worker skip the
    /// multi-megabyte allocate/free cycle of the flow store, calendar and
    /// fault runtime. Results are byte-identical with or without a pool.
    /// Must outlive the simulator.
    SimBufferPool* recycle = nullptr;
    /// Deterministic interval sampler (obs/sampler.h), or nullptr. Requires
    /// Config::trace: samples are emitted into the recorder as kSample /
    /// kMemSample (and opt-in kWallSample) records. Polled after every
    /// processed event; sim-time sample fields are pure functions of the
    /// serialized engine state, so timelines are byte-identical across
    /// worker counts and checkpoint/restore splits (DESIGN.md §14). Must
    /// outlive run().
    obs::IntervalSampler* sampler = nullptr;
    /// Reserved-footprint accountant (obs/memory.h), or nullptr.
    /// Capacity-based diagnostics only — excluded from determinism
    /// fingerprints. Observed at every sampler boundary (if a sampler is
    /// set) and once at collect(). Must outlive run().
    obs::MemoryAccountant* memory = nullptr;
  };

  /// `fabric` and `scheduler` must outlive the simulator. Any Fabric
  /// works: the paper's fat-tree or the big-switch abstraction.
  Simulator(const Fabric& fabric, Scheduler& scheduler, Config config);
  Simulator(const Fabric& fabric, Scheduler& scheduler)
      : Simulator(fabric, scheduler, Config{}) {}

  /// Returns the adopted containers to Config::recycle, if one was set.
  ~Simulator();

  /// Registers a job (validated against the fabric). All jobs must be
  /// submitted before run(). Returns the assigned job id.
  JobId submit(const JobSpec& job);

  /// Open-horizon admission: registers a job *while the run is open*
  /// (after prepare()/restore(), before results were collected). Legal only
  /// at an event boundary — between run_to()/run_until() calls. The job's
  /// arrival_time may lie at or after now(); an arrival at or before now()
  /// is processed by the next event at the current clock. Grows the flow
  /// store when needed (re-pointing the active set and rebuilding the
  /// allocator — a pure re-solve, so rates and results are unaffected).
  /// Returns the assigned job id.
  JobId admit(const JobSpec& job);

  /// Open-horizon drive: processes every event with time strictly below
  /// `bound`, then pauses *before* the first event at or beyond it (the
  /// iteration is rolled back, so a paused+resumed run counts exactly the
  /// events an uninterrupted one does). Pausing never perturbs the run:
  /// admit() at the pause point behaves as if the job had been submitted up
  /// front, and checkpoint() captures the boundary losslessly. With `bound`
  /// = +infinity this is exactly finish()'s drain loop (no pause). Returns
  /// true while work remains.
  bool run_to(Time bound);

  /// Outcome of one compact() pass: the evicted jobs' results, harvested
  /// exactly as collect() would have reported them (ids are the
  /// pre-compaction ids; callers tracking external ids map through the
  /// remap they observed via Scheduler::on_compact).
  struct Compaction {
    std::size_t jobs_evicted = 0;
    std::size_t coflows_evicted = 0;
    std::size_t flows_evicted = 0;
    std::vector<SimResults::JobResult> jobs;
    std::vector<SimResults::CoflowResult> coflows;
  };

  /// Open-horizon state eviction: removes every terminal (finished or
  /// failed) job with its coflows and flows from the stores, renumbers the
  /// survivors densely, rebuilds the calendar/retry heaps and the
  /// allocator, and notifies the scheduler (on_compact). Steady-state
  /// memory under sustained admission is therefore O(active) instead of
  /// O(ever-submitted). Legal only at an event boundary. Determinism is
  /// per-configuration: identical inputs and compaction cadence give
  /// byte-identical everything. Relative to an *uncompacted* run the
  /// populations agree job-for-job, but not to the last bit: the allocator
  /// rebuild re-sums link loads in the survivors' renumbered order, which
  /// can move rates by an ulp and lets trajectories drift slightly, and
  /// the flow_touches counter may run below (evicted flows' stale calendar
  /// tombstones are dropped instead of popped).
  Compaction compact();

  /// Runs to completion of all submitted jobs and returns the results.
  /// May be called once.
  SimResults run();

  /// Partial drive: processes events until the clock reaches `deadline` (or
  /// all work completes). Returns true while events remain. The pause point
  /// is always an event boundary — the top of the main loop — so the
  /// simulator state between run_until calls is exactly the state an
  /// uninterrupted run() passes through, and checkpoint() at that boundary
  /// captures it losslessly. run_until + finish() is byte-identical to a
  /// single run().
  bool run_until(Time deadline);

  /// Drains the remaining events after run_until()/restore() and returns
  /// the results, exactly as run() would have. May be called once.
  SimResults finish();

  /// Current simulation clock (the time of the last processed event).
  [[nodiscard]] Time now() const { return now_; }

  // --- open-horizon observability (watermark inputs for the service
  // daemon; every value is a pure function of the serialized state, so
  // shedding decisions built on them are deterministic) ---
  /// Work remains: pending arrivals, active flows or parked/retrying flows.
  [[nodiscard]] bool pending() const {
    return next_arrival_ < arrival_order_.size() || !active_.empty() ||
           outstanding_ > 0;
  }
  [[nodiscard]] std::size_t active_flow_count() const {
    return active_.size();
  }
  [[nodiscard]] std::size_t calendar_size() const { return calendar_.size(); }
  /// Partial counters of the in-progress run (events, flow_touches, ...).
  /// Valid between prepare()/restore() and collect().
  [[nodiscard]] const SimResults& partial_results() const { return results_; }
  /// The run is open: prepared (or restored) and not yet collected.
  [[nodiscard]] bool open() const { return prepared_ && !collected_; }

  /// Serializes the complete dynamic simulation state — event calendar
  /// (verbatim heap array, including lazy-drain tombstones), per-coflow
  /// aggregates, flow progress, parked/retry fault state, fault-plan
  /// cursor, partial result counters, the attached trace recorder's buffer
  /// and the scheduler's policy state (Scheduler::save_state) — into `w`.
  /// Must be called at an event boundary (between run_until calls); const,
  /// so checkpointing never perturbs the run. Implemented in
  /// snapshot/snapshot.cpp (link gurita_snapshot to use it).
  void checkpoint(snapshot::Writer& w) const;

  /// Inverse of checkpoint(): rebuilds the simulator mid-run from `r`.
  /// Contract: the simulator must be freshly constructed with an *identical*
  /// fabric, scheduler, config and submitted job set as the checkpointed
  /// one (the snapshot carries a fingerprint and throws SnapshotError on a
  /// mismatch) — the snapshot holds dynamic state only, so static structure
  /// (topology, specs, routes) is reconstructed from those inputs. After
  /// restore, run_until()/finish() continue byte-identically to the
  /// uninterrupted run. Implemented in snapshot/snapshot.cpp.
  void restore(snapshot::Reader& r);

  [[nodiscard]] const SimState& state() const { return state_; }

  /// Which allocator this run drives (Config::allocator).
  [[nodiscard]] AllocatorKind allocator_kind() const {
    return config_.allocator;
  }
  /// Allocator work counters (flowsim/allocator.h). Diagnostic only —
  /// deliberately not part of SimResults: a restored run re-solves
  /// everything on its first allocation, so these differ between a resumed
  /// and an uninterrupted run whose simulation bytes are identical.
  [[nodiscard]] const AllocStats& allocator_stats() const {
    return alloc_.stats();
  }

 private:
  friend class SnapshotCodec;  ///< snapshot/snapshot.cpp serializer
  friend class SimBufferPool;  ///< recyclable container pack (below)
  /// One entry of the completion calendar: flow `flow` is projected to
  /// drain to zero at `key`. Entries are never updated in place; a rate
  /// change bumps the flow's generation counter and pushes a fresh entry,
  /// and stale entries (entry gen != current gen) are discarded on pop.
  struct CalendarEntry {
    Time key = 0;
    std::uint32_t gen = 0;
    FlowId flow;
  };
  struct CalendarLater {
    bool operator()(const CalendarEntry& a, const CalendarEntry& b) const {
      return a.key > b.key;
    }
  };

  const Fabric* fabric_;
  Scheduler* scheduler_;
  Config config_;
  SimState state_;
  bool ran_ = false;
  /// prepare() (or restore()) has initialized the run-loop state.
  bool prepared_ = false;
  /// collect() has harvested the results; the simulator is spent.
  bool collected_ = false;

  /// Persistent active set (raw pointers into state_.flows_, which is
  /// reserved up front so it never reallocates mid-run). Removal is
  /// swap-with-last via pos_in_active_, so the order is arrival order
  /// modulo those swaps — schedulers and the allocator are order-blind.
  std::vector<SimFlow*> active_;
  /// Index of each flow in active_ (by flow id; stale once removed).
  std::vector<std::uint32_t> pos_in_active_;
  /// Calendar generation per flow (by flow id); see CalendarEntry.
  std::vector<std::uint32_t> gen_;
  SnapshotableHeap<CalendarEntry, CalendarLater> calendar_;
  /// Scratch for rate-change reporting (reused across events).
  std::vector<RateChange> rate_changes_;
  /// The incremental rate allocator (or the oracle delegate, per
  /// Config::allocator). Holds only state rebuildable from the active set
  /// (rebuild()), so snapshots don't serialize it.
  RateAllocator alloc_;
  /// Flows whose stored rate was capped below their pure allocation at the
  /// last recomputation (TCP ramp, straggler windows). Re-touched before
  /// every allocation: the allocator must re-report them (allocation !=
  /// stored rate) exactly as the from-scratch oracle would. Rebuilt each
  /// recomputation from the application loop; not serialized — a restored
  /// run's first allocation re-solves everything, which subsumes it.
  std::vector<FlowId> capped_;
  /// Results of the in-progress run (settles accrue link stats/counters).
  /// Owned here (not a run() local) so a paused run's partial counters are
  /// part of the snapshot; collect() moves it out.
  SimResults results_;
  SimResults* live_results_ = nullptr;

  // --- run-loop state (locals of the old monolithic run(), hoisted so a
  // run can pause at any event boundary and the pause state is exactly
  // these members; everything here is either serialized by checkpoint() or
  // recomputed by prepare()/restore() from the static inputs) ---
  /// Job ids sorted by (arrival_time, id); recomputed, not serialized.
  std::vector<JobId> arrival_order_;
  std::size_t next_arrival_ = 0;
  /// Scheduler coordination interval; cached from tick_interval().
  Time tick_ = 0;
  Time next_tick_ = std::numeric_limits<Time>::infinity();
  /// Sorted copy of config_.disruptions; recomputed, not serialized.
  std::vector<CapacityChange> disruptions_;
  std::size_t next_disruption_ = 0;
  std::uint64_t iterations_ = 0;
  /// Scratch for the completion pop loop (dead between iterations).
  std::vector<FlowId> done_;

  Time now_ = 0;
  /// Current link capacities (nominal, mutated by disruptions and link
  /// faults).
  std::vector<Rate> capacities_;
  /// Rates must be recomputed before the next projection (scheduler state,
  /// topology or population changed since the last allocation).
  bool dirty_ = true;

  // --- open-horizon pause state (run_to; DESIGN.md §15) ---
  /// Events at or beyond this time pause instead of executing. +infinity
  /// outside run_to, so batch runs never pause.
  Time horizon_ = std::numeric_limits<Time>::infinity();
  /// step() paused before an event at/beyond horizon_ (transient: reset by
  /// run_to on entry and exit).
  bool paused_at_horizon_ = false;
  /// A paused event had already marked the TCP-ramp refresh; replay it on
  /// resume (the allocation itself already ran). Serialized (snapshot v3).
  bool pending_ramp_ = false;
  /// A paused event entered with dirty_ set; its legacy-cost accounting is
  /// owed when the event finally executes. Serialized (snapshot v3).
  bool pending_was_dirty_ = false;
  /// Flow-store reservation watermark: released flows plus the unreleased
  /// flows of every registered job. admit() grows the store (re-pointing
  /// active_) when a new job pushes this past capacity; release_coflow's
  /// no-reallocation invariant holds against it.
  std::size_t flows_reserved_ = 0;

  // --- fault-injection runtime (all idle unless Config::faults is
  // non-empty; the zero-fault run is byte-identical to a fault-free
  // engine) ---
  /// One pending retry: `flow` restarts at `time` (if still unblocked).
  struct RetryEntry {
    Time time = 0;
    FlowId flow;
  };
  struct RetryLater {
    bool operator()(const RetryEntry& a, const RetryEntry& b) const {
      // Min-heap by time; flow id breaks ties so pop order (and hence
      // restart order) is deterministic.
      if (a.time != b.time) return a.time > b.time;
      return a.flow > b.flow;
    }
  };
  bool have_faults_ = false;
  std::vector<FaultEvent> fault_events_;  ///< plan events, sorted by time
  std::size_t next_fault_ = 0;
  std::vector<char> host_down_;      ///< by host index
  std::vector<char> link_down_;      ///< by link id
  std::vector<double> straggler_;    ///< per-host rate factor; 1.0 nominal
  std::vector<Rate> saved_capacity_; ///< pre-fault capacity of downed links
  /// Flows aborted and waiting for every blocking entity to recover.
  std::vector<FlowId> parked_;
  SnapshotableHeap<RetryEntry, RetryLater> retries_;
  /// Parked flows + scheduled retries not yet cancelled: the run cannot end
  /// while > 0 even if the active set is momentarily empty.
  std::uint64_t outstanding_ = 0;

  /// True while a down host or link blocks this flow from transmitting.
  [[nodiscard]] bool flow_blocked(const SimFlow& flow) const;
  /// Aborts a transmitting (or just-released) flow: in-flight bytes are
  /// lost, the flow leaves the active set and either parks for retry or —
  /// once `count_attempt` pushes it past max_attempts — fails its job.
  void abort_flow(SimFlow& flow, FaultKind cause, bool count_attempt);
  /// Marks `job` failed at now_: cancels its surviving flows (parked,
  /// scheduled and transmitting), emits kJobFail, tells the scheduler.
  void fail_job(SimJob& job);
  /// Moves a parked flow into the retry queue with its backoff delay.
  void schedule_retry(SimFlow& flow);
  /// After a recovery: parked flows whose blockers all recovered get their
  /// retry scheduled.
  void reconsider_parked();
  /// Restarts flows whose retry time has come (re-entering from byte zero).
  void fire_due_retries();
  void apply_fault(const FaultEvent& event);
  void apply_due_faults();
  [[nodiscard]] Time next_retry_time() const;
  /// Both calendars are empty but flows are parked with no recovery left in
  /// the plan: their jobs can never finish — fail them now instead of
  /// simulating forever.
  void fail_stranded_jobs();

  /// Aggregate of the coflow owning `flow`.
  SimState::CoflowAggregate& aggregate_of(const SimFlow& flow);
  /// Settles `flow`'s lazy drain at now_: `remaining` becomes exact,
  /// drained bytes move into the coflow aggregate and per-link stats.
  void settle(SimFlow& flow);
  /// Applies a new rate to a settled flow, keeping aggregates consistent.
  void set_rate(SimFlow& flow, Rate new_rate);
  /// (Re-)registers a settled flow's projected finish in the calendar.
  void push_key(SimFlow& flow);
  void remove_from_active(SimFlow& flow);

  void release_coflow(SimCoflow& coflow);
  void finish_flow(SimFlow& flow);
  void finish_coflow(SimCoflow& coflow);
  void arrive_job(SimJob& job);
  /// Shared body of submit()/admit(): appends the SimJob and its SimCoflow
  /// records (the spec must already be validated).
  JobId register_job(const JobSpec& spec);
  /// admit() helper: grows the flow store to hold flows_reserved_ flows,
  /// re-pointing the active set and rebuilding the allocator (pure
  /// re-solve; byte-identical rates).
  void grow_flow_store();

  // --- run-loop decomposition (run() == prepare(); while (pending())
  // step(); collect()) ---
  /// Static structures shared by prepare() and restore(): scheduler attach,
  /// flow-store reservation, arrival order, sorted disruptions, tick cache.
  void prepare_structures();
  /// Full fresh-run initialization (prepare_structures + dynamic defaults).
  void prepare();
  /// One main-loop iteration (one event). Thin wrapper over step_impl()
  /// that polls the interval sampler afterwards, so every exit path of the
  /// event body (idle early-outs included) is sampled.
  void step();
  void step_impl();
  /// Emits due kSample/kMemSample/kWallSample records (Config::sampler) and
  /// refreshes the memory accountant. Called after every event.
  void poll_sampler();
  /// Observes the current reserved footprint into Config::memory.
  void account_memory();
  /// Harvests results_ after the loop drains; may be called once.
  SimResults collect();
  /// Applies due scheduled capacity changes (failure injection).
  void apply_due_disruptions();

  /// Buffer recycling (Config::recycle): moves the pool's containers into
  /// the members (clearing each — capacity reuse only, never values), and
  /// back again at destruction. A pool borrowed twice concurrently (it
  /// must not be shared across threads, but a second simulator on the same
  /// thread is legal) simply finds moved-from empty containers and falls
  /// back to fresh allocation — reuse degrades, correctness doesn't.
  void adopt_buffers(SimBufferPool& pool);
  void return_buffers(SimBufferPool& pool);
};

/// Recyclable pack of a Simulator's large per-run containers — the flow /
/// coflow / job stores, calendar and retry heap arrays, active-set and
/// fault-runtime vectors. One simulation over a 100k-flow trace allocates
/// (and frees) several megabytes of these; when every run of a sharded
/// sweep pays that, the allocator's mmap/munmap traffic serializes the
/// workers and the parallel runner scales *negatively*. A per-worker pool
/// (exp/arena.h) lets each run adopt its predecessor's capacity instead.
///
/// Ownership rules: a pool belongs to one thread (no internal locking) and
/// to at most one live Simulator at a time; while borrowed, its containers
/// are moved-from and empty. The simulator clears every adopted container
/// before use, so pooled and fresh runs are byte-identical.
class SimBufferPool {
 public:
  SimBufferPool() = default;
  SimBufferPool(const SimBufferPool&) = delete;
  SimBufferPool& operator=(const SimBufferPool&) = delete;

 private:
  friend class Simulator;
  std::vector<SimFlow> flows;
  std::vector<SimCoflow> coflows;
  std::vector<SimJob> jobs;
  std::vector<SimState::CoflowAggregate> aggregates;
  std::vector<SimFlow*> active;
  std::vector<std::uint32_t> pos_in_active;
  std::vector<std::uint32_t> gen;
  std::vector<Simulator::CalendarEntry> calendar;
  std::vector<RateChange> rate_changes;
  std::vector<JobId> arrival_order;
  std::vector<CapacityChange> disruptions;
  std::vector<FlowId> done;
  std::vector<Rate> capacities;
  std::vector<FaultEvent> fault_events;
  std::vector<char> host_down;
  std::vector<char> link_down;
  std::vector<double> straggler;
  std::vector<Rate> saved_capacity;
  std::vector<FlowId> parked;
  std::vector<Simulator::RetryEntry> retries;
  std::vector<FlowId> capped;
  RateAllocator allocator;  ///< recycled whole: reset() reuses its arrays
};

}  // namespace gurita
