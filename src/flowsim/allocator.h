// Tiered weighted max-min rate allocation.
//
// All six schedulers in the reproduction share one allocation mechanism:
//
//   1. Active flows are grouped by `tier` (ascending). Tier t is allocated
//      only the capacity tiers < t left unused — this is strict priority
//      queuing (SPQ), the enforcement primitive the paper relies on, and
//      also expresses Baraat's FIFO-LM (tier = batch serial) and Aalo's
//      priority queues.
//   2. Within one tier, rates follow *weighted max-min fairness* computed by
//      progressive filling (water-filling): repeatedly find the bottleneck
//      link (smallest residual capacity per unit weight), freeze its flows
//      at their fair share, and continue. Weight 1 everywhere reproduces
//      per-flow fair sharing (the PFS baseline / TCP approximation); the
//      WRR starvation-mitigation mode maps queue weights onto flow weights.
//
// The result is work-conserving: no link with an unfrozen flow is left with
// spare capacity.
#pragma once

#include <vector>

#include "flowsim/state.h"
#include "topology/graph.h"

namespace gurita {

/// One flow whose allocated rate differs (bitwise) from the rate it carried
/// going into the recomputation, together with that previous rate. The old
/// rate is what the engine needs to settle the flow's lazy byte drain over
/// the interval the flow actually transmitted at it.
struct RateChange {
  SimFlow* flow = nullptr;
  Rate old_rate = 0;
};

/// Computes and writes `rate` for every flow in `flows` (all must be
/// active, with non-empty paths). Rates of flows not in `flows` are not
/// touched; the order of `flows` is preserved. `capacities` overrides the
/// links' nominal capacities (indexed by LinkId value; entries may be 0 for
/// a failed link) — the engine uses this for failure injection.
///
/// When `changed` is non-null it is cleared and filled (in `flows` order)
/// with the flows whose rate actually moved. Identical inputs produce
/// bit-identical rates, so an event that does not disturb the allocation
/// reports no changes — the hook the event-calendar engine uses to touch
/// only flows whose projected finish time shifted.
void allocate_rates(const Topology& topo, const std::vector<Rate>& capacities,
                    const std::vector<SimFlow*>& flows,
                    std::vector<RateChange>* changed = nullptr);

/// Convenience overload using the topology's nominal capacities.
void allocate_rates(const Topology& topo, const std::vector<SimFlow*>& flows);

/// Weighted max-min within a single group, honoring `residual` capacities
/// (indexed by LinkId value). Consumes capacity from `residual` and writes
/// flow rates. Exposed separately for unit testing.
void waterfill(const Topology& topo, std::vector<SimFlow*>& group,
               std::vector<Rate>& residual);

}  // namespace gurita
